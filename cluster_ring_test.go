package swp

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/loopgen"
	"repro/internal/wire"
)

// suiteRouteKeys fingerprints the paper-scale loop suite under the config
// grid a real fleet serves: every suite loop crossed with the cluster
// counts and copy models the benchmarks sweep. These are the actual keys
// the ring routes in production, unlike the synthetic uniform keys the
// cluster package's own balance test uses.
func suiteRouteKeys() []uint64 {
	loops := loopgen.Suite()
	keys := make([]uint64, 0, len(loops)*12)
	for _, l := range loops {
		src := l.Body.String()
		for _, clusters := range []int{2, 4, 8} {
			for _, model := range []string{"copyunit", "embedded"} {
				for _, refine := range []bool{false, true} {
					keys = append(keys, cluster.RouteKey(&wire.CompileRequest{
						Name:    l.Name,
						Source:  src,
						Machine: wire.MachineSpec{Clusters: clusters, CopyModel: model},
						Refine:  refine,
					}))
				}
			}
		}
	}
	return keys
}

// TestRingBalanceOnSuiteFingerprints pins the load split a fleet actually
// sees: across 2, 3 and 5 replicas, no replica's share of the suite's
// route keys may sit more than 15% off the fair share.
func TestRingBalanceOnSuiteFingerprints(t *testing.T) {
	keys := suiteRouteKeys()
	if len(keys) < 2000 {
		t.Fatalf("suite grid yields only %d keys — population too small for a balance bound", len(keys))
	}
	for _, n := range []int{2, 3, 5} {
		peers := make([]string, n)
		for i := range peers {
			peers[i] = fmt.Sprintf("http://replica%d:8080", i)
		}
		r := cluster.NewRing(peers, 0)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for peer, c := range counts {
			dev := (float64(c) - fair) / fair
			t.Logf("n=%d: %s owns %d/%d (%+.1f%%)", n, peer, c, len(keys), dev*100)
			if dev > 0.15 || dev < -0.15 {
				t.Errorf("n=%d: %s owns %d suite keys, %.1f%% off the fair share %.0f",
					n, peer, c, dev*100, fair)
			}
		}
	}
}
