package swp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/server"
	"repro/internal/trace"
)

// BenchmarkServerCompile measures one full round trip through the swpd
// service — HTTP, JSON, queueing, and the pipeline itself — for a suite
// loop on the 4-cluster embedded machine. The shared cache makes every
// iteration after the first a cache-served response, so the number is the
// daemon's steady-state latency floor, to compare against the raw
// in-process compile benchmarks.
func BenchmarkServerCompile(b *testing.B) {
	svc := server.New(server.Config{
		Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(&server.CompileRequest{
		Name:    "bench",
		Source:  Suite()[0].Body.String(),
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var out server.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.PartII == 0 {
			b.Fatal("empty response")
		}
	}
}

// BenchmarkServerCompileUncached is the same round trip with no cache:
// every request pays the full pipeline, which is the daemon's cold-path
// cost per distinct loop.
func BenchmarkServerCompileUncached(b *testing.B) {
	svc := server.New(server.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(&server.CompileRequest{
		Name:    "bench",
		Source:  Suite()[0].Body.String(),
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkServerBatch measures the /compile/batch round trip: one JSON
// decode carrying a dozen suite loops, fanned out across the worker pool,
// answered as one buffered response. batch_loops_per_sec is the daemon's
// bulk throughput to set against the per-request BenchmarkServerCompile
// latency; the shared cache makes iterations after the first warm, which
// is the steady state a long-lived batch client sees.
func BenchmarkServerBatch(b *testing.B) {
	svc := server.New(server.Config{
		Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const nItems = 12
	breq := server.BatchRequest{Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"}}
	for _, l := range Suite()[:nItems] {
		breq.Items = append(breq.Items, server.CompileRequest{
			Name:   l.Name,
			Source: l.Body.String(),
		})
	}
	body, err := json.Marshal(&breq)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var out server.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.Errors != 0 || len(out.Items) != nItems {
			b.Fatalf("batch: %d items, %d errors", len(out.Items), out.Errors)
		}
	}
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(b.N*nItems)/elapsed.Seconds(), "batch_loops_per_sec")
	}
}
