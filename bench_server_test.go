package swp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// BenchmarkServerCompile measures one full round trip through the swpd
// service — HTTP, JSON, queueing, and the pipeline itself — for a suite
// loop on the 4-cluster embedded machine. The shared cache makes every
// iteration after the first a cache-served response, so the number is the
// daemon's steady-state latency floor, to compare against the raw
// in-process compile benchmarks.
func BenchmarkServerCompile(b *testing.B) {
	svc := server.New(server.Config{
		Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(&server.CompileRequest{
		Name:    "bench",
		Source:  Suite()[0].Body.String(),
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var out server.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.PartII == 0 {
			b.Fatal("empty response")
		}
	}
}

// BenchmarkServerCompileUncached is the same round trip with no cache:
// every request pays the full pipeline, which is the daemon's cold-path
// cost per distinct loop.
func BenchmarkServerCompileUncached(b *testing.B) {
	svc := server.New(server.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(&server.CompileRequest{
		Name:    "bench",
		Source:  Suite()[0].Body.String(),
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// BenchmarkServerBatch measures the /compile/batch round trip: one JSON
// decode carrying a dozen suite loops, fanned out across the worker pool,
// answered as one buffered response. batch_loops_per_sec is the daemon's
// bulk throughput to set against the per-request BenchmarkServerCompile
// latency; the shared cache makes iterations after the first warm, which
// is the steady state a long-lived batch client sees.
func BenchmarkServerBatch(b *testing.B) {
	svc := server.New(server.Config{
		Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const nItems = 12
	breq := server.BatchRequest{RequestDefaults: server.RequestDefaults{
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	}}
	for _, l := range Suite()[:nItems] {
		breq.Items = append(breq.Items, server.CompileRequest{
			Name:   l.Name,
			Source: l.Body.String(),
		})
	}
	body, err := json.Marshal(&breq)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/compile/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var out server.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.Errors != 0 || len(out.Items) != nItems {
			b.Fatalf("batch: %d items, %d errors", len(out.Items), out.Errors)
		}
	}
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(b.N*nItems)/elapsed.Seconds(), "batch_loops_per_sec")
	}
}

// benchWarmRoundTrip measures the warm (cache-served) compile round trip
// through the full handler stack — mux, negotiation, codec, cache — but
// not the kernel TCP stack: requests go straight into ServeHTTP so the
// number isolates what the daemon itself costs per call. It reports the
// median latency as p50_us, which is the PR 8 target metric.
func benchWarmRoundTrip(b *testing.B, f wire.Format) {
	seed := NewIISeed(0)
	svc := server.New(server.Config{
		Pipeline: codegen.Config{Cache: cache.New(), IISeed: seed},
	})
	defer svc.Close()
	h := svc.Handler()

	req := &server.CompileRequest{
		Name:    "bench",
		Source:  Suite()[0].Body.String(),
		Machine: server.MachineSpec{Clusters: 4, CopyModel: "embedded"},
	}
	var body []byte
	var err error
	if f == wire.FormatBinary {
		body = wire.AppendCompileRequest(nil, req)
	} else if body, err = json.Marshal(req); err != nil {
		b.Fatal(err)
	}
	ct := f.ContentType()

	run := func() int {
		hr, err := http.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		hr.Header.Set("Content-Type", ct)
		hr.Header.Set("Accept", ct)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, hr)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Len()
	}
	run() // warm the cache: every timed iteration is the steady state

	durs := make([]time.Duration, 0, b.N)
	var bytesOut int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		bytesOut = run()
		durs = append(durs, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	b.ReportMetric(float64(durs[len(durs)/2].Nanoseconds())/1e3, "p50_us")
	b.ReportMetric(float64(bytesOut), "resp_bytes")
}

// BenchmarkServerCompileJSON is the warm round trip in the default JSON
// codec — the baseline the binary codec is measured against.
func BenchmarkServerCompileJSON(b *testing.B) { benchWarmRoundTrip(b, wire.FormatJSON) }

// BenchmarkServerCompileBinary is the warm round trip in the
// application/x-swp-bin codec. The PR 8 acceptance bar: p50 under 50µs,
// or at least 3x faster than BenchmarkServerCompileJSON.
func BenchmarkServerCompileBinary(b *testing.B) { benchWarmRoundTrip(b, wire.FormatBinary) }

// BenchmarkServerCompileSeeded measures the II-seed table on the cold
// path: no compile memo, so every request re-runs the full pipeline, but
// the shared seed table predicts the starting II after the first pass
// over each loop. One op is a sweep of all 32 loops, so ns/op is the
// working set's cost, not one compile's.
//
// All three seed metrics are deltas over the timed iterations only — an
// untimed warm-up sweep populates the table first, so the numbers are the
// steady state a long-lived daemon sees rather than an average diluted by
// the cold first pass. ii_seed_found_rate is the table's coverage: the
// fraction of modulo searches that found a recorded entry, which must be
// ~1 once the working set has been seen (scripts/bench.sh enforces 0.9).
// ii_seed_hit_rate is the strict subset that started from a recorded II
// above minII — searches whose last run escalated, which is where the
// copy-unit machine lives (its single shared copy unit makes minII
// infeasible for copy-heavy loops). Most of this suite schedules at
// minII, so the hit rate is legitimately small; coverage is the health
// signal, hits and ii_attempts_saved are the payoff where escalation
// exists.
func BenchmarkServerCompileSeeded(b *testing.B) {
	seed := NewIISeed(0)
	svc := server.New(server.Config{Pipeline: codegen.Config{IISeed: seed}})
	defer svc.Close()
	h := svc.Handler()

	loops := Suite()[:32]
	bodies := make([][]byte, len(loops))
	for i, l := range loops {
		bodies[i] = wire.AppendCompileRequest(nil, &server.CompileRequest{
			Name:    l.Name,
			Source:  l.Body.String(),
			Machine: server.MachineSpec{Clusters: 4, CopyModel: "copyunit"},
		})
	}
	sweep := func() {
		for _, body := range bodies {
			hr, err := http.NewRequest(http.MethodPost, "/v1/compile", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			hr.Header.Set("Content-Type", wire.ContentTypeBinary)
			hr.Header.Set("Accept", wire.ContentTypeBinary)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, hr)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	sweep() // populate the table: timed sweeps measure the steady state
	base := seed.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
	b.StopTimer()
	if st := seed.Stats(); st.Lookups > base.Lookups {
		lookups := float64(st.Lookups - base.Lookups)
		b.ReportMetric(float64(st.Found-base.Found)/lookups, "ii_seed_found_rate")
		b.ReportMetric(float64(st.Hits-base.Hits)/lookups, "ii_seed_hit_rate")
		b.ReportMetric(float64(st.SavedAttempts-base.SavedAttempts), "ii_attempts_saved")
	}
}
