package swp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/exper"
	"repro/internal/machine"
)

// TestCompilerRunReproducesGoldenTables is the API redesign's
// no-regression gate: the context-first Compiler must render Table 1 and
// Table 2 byte-identically to the golden frozen before the redesign
// (internal/exper/testdata, maintained by TestGoldenTables).
func TestCompilerRunReproducesGoldenTables(t *testing.T) {
	loops := SmallSuite(40) // the golden's 40-loop slice
	c := New(WithSkipAlloc())
	results, err := c.Run(context.Background(), loops, PaperMachines())
	if err != nil {
		t.Fatal(err)
	}
	got := Table1(results) + "\n" + Table2(results)
	golden, err := os.ReadFile(filepath.Join("internal", "exper", "testdata", "tables_n40.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(golden), got+"\n") {
		t.Errorf("Compiler.Run tables drifted from the golden:\n--- got\n%s\n--- golden\n%s", got, golden)
	}
}

func TestCompilerOptionsApply(t *testing.T) {
	tr := NewTracer()
	cc := NewCache()
	parts := Partitioners()
	c := New(WithPartitioner(parts[1]), WithCache(cc), WithTracer(tr),
		WithBudgetRatio(9), WithWorkers(3), WithSkipAlloc())
	cfg := c.Config()
	if cfg.Partitioner != parts[1] || cfg.Cache != cc || cfg.Tracer != tr ||
		cfg.BudgetRatio != 9 || cfg.Workers != 3 || !cfg.SkipAlloc {
		t.Errorf("options not applied: %+v", cfg)
	}
}

func TestCompilerCompileCancellable(t *testing.T) {
	c := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Compile(ctx, SmallSuite(1)[0], Machine(4, Embedded))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Compile returned %v", err)
	}
}

func TestCompilerRunCancelPartial(t *testing.T) {
	c := New(WithSkipAlloc())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	results, err := c.Run(ctx, Suite(), PaperMachines())
	if err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap the deadline: %v", err)
	}
	if len(results) != len(PaperMachines()) {
		t.Errorf("partial results lost shape: %d", len(results))
	}
}

// TestDeprecatedWrappersStillWork keeps the legacy facade alive: the old
// free functions must keep compiling loops exactly as before.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	loops := SmallSuite(3)
	cfg := Machine(4, Embedded)
	old, err := CompileLoop(loops[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	via, err := New().Compile(context.Background(), loops[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if old.PartII() != via.PartII() || old.Degradation() != via.Degradation() {
		t.Error("CompileLoop and Compiler.Compile disagree")
	}
	results := RunExperiments(loops, []*machine.Config{cfg}, 2)
	if len(results) != 1 || len(results[0].Outcomes) != len(loops) {
		t.Errorf("RunExperiments shape broken")
	}
	var _ []*exper.ConfigResult = results
}
