package swp

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestFacadeSmoke(t *testing.T) {
	loops := SmallSuite(12)
	if len(loops) != 12 {
		t.Fatalf("SmallSuite(12) returned %d loops", len(loops))
	}
	cfg := Machine(4, Embedded)
	if cfg.Clusters != 4 || cfg.Model != machine.Embedded {
		t.Fatal("Machine(4, Embedded) misconfigured")
	}
	res, err := CompileLoop(loops[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation() < 100 {
		t.Errorf("degradation %f below 100", res.Degradation())
	}
}

func TestFacadeExperimentsRender(t *testing.T) {
	loops := SmallSuite(10)
	results := RunExperiments(loops, PaperMachines(), 0)
	if len(results) != 6 {
		t.Fatalf("got %d results", len(results))
	}
	if s := Table1(results); !strings.Contains(s, "Clustered") {
		t.Error("Table1 malformed")
	}
	if s := Table2(results); !strings.Contains(s, "Harmonic") {
		t.Error("Table2 malformed")
	}
	if s := FigureHistogram(results, 4); !strings.Contains(s, "0.00%") {
		t.Error("FigureHistogram malformed")
	}
	if s := Summary(results); !strings.Contains(s, "machine") {
		t.Error("Summary malformed")
	}
}

func TestFacadeExtendedAPI(t *testing.T) {
	loops := SmallSuite(6)
	cfg := Machine(4, Embedded)

	if got := len(Partitioners()); got != 6 {
		t.Errorf("%d partitioners", got)
	}
	res, err := CompileLoopWith(loops[0], cfg, Partitioners()[1]) // BUG
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ExpandPipeline(res, res.PartSched.Stages()+4)
	if err != nil {
		t.Fatal(err)
	}
	if exp.InstanceCount() != (res.PartSched.Stages()+4)*len(res.Copies.Body.Ops) {
		t.Error("pipeline expansion incomplete")
	}

	un, err := Unroll(loops[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Body.Ops) < 2*len(loops[0].Body.Ops) {
		t.Error("unroll too small")
	}

	rec, resB, min := MinII(loops[0], cfg)
	if min < rec || min < resB || min < 1 {
		t.Errorf("MinII inconsistent: rec=%d res=%d min=%d", rec, resB, min)
	}

	parsed, err := ParseLoop("p", loops[0].Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Body.String() != loops[0].Body.String() {
		t.Error("facade parse round trip failed")
	}

	tr := TuneWeights(SmallSuite(5), []*machine.Config{cfg}, 4, 1)
	if tr.Score > tr.StartScore {
		t.Error("tuning regressed past the incumbent")
	}
}

func TestFacadeStraightLineAndFunction(t *testing.T) {
	l := SmallSuite(1)[0].Clone()
	l.Body.Depth = 0
	// Straight-line compilation requires an acyclic body: generated loops
	// may carry accumulators, so strip carried semantics by renaming is
	// overkill — instead build a tiny block.
	sl, err := ParseLoop("sl", "load f1, a[0]\nmult f2, f1, f1\nstore b[0], f2")
	if err != nil {
		t.Fatal(err)
	}
	sl.Body.Depth = 0
	blk, err := CompileStraightLine(sl, Machine(2, Embedded))
	if err != nil {
		t.Fatal(err)
	}
	if blk.PartLength() < blk.IdealLength() {
		t.Error("clustered block schedule beat the ideal")
	}

	f := ir.NewFunction("facade")
	b0 := f.NewBlock(1)
	bd := ir.NewBlockBuilder(f, b0)
	x := bd.Load(ir.Float, ir.MemRef{Base: "a"})
	bd.Store(bd.Mul(x, x), ir.MemRef{Base: "b"})
	fr, err := CompileFunction(f, Machine(2, Embedded))
	if err != nil {
		t.Fatal(err)
	}
	if fr.WeightedDegradation() < 100 {
		t.Error("function degradation below 100")
	}
}

func TestIdealMachineIsMonolithic(t *testing.T) {
	if !Ideal().Monolithic() {
		t.Error("Ideal() must have one bank")
	}
	if got := len(Suite()); got != 211 {
		t.Errorf("Suite() has %d loops, want the paper's 211", got)
	}
}
