// Quickstart walks the paper's Section 4.2 worked example end to end: the
// statement
//
//	xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
//
// compiled for a machine with two functional units, each with its own
// register bank (unit latencies). It prints the intermediate code, the
// register component graph, the ideal 7-cycle schedule (Figure 1), the
// chosen partition, and the partitioned schedule with its inter-cluster
// copies (Figure 3).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/fixtures"
	"repro/internal/machine"
)

func main() {
	loop, _ := fixtures.PaperExample()
	cfg := machine.Example2x1()

	fmt.Println("=== Intermediate code (paper Figure 2) ===")
	fmt.Print(loop.Body)

	res, err := codegen.CompileBlock(context.Background(), loop, cfg, codegen.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Register component graph (node weight, edge weights) ===")
	fmt.Print(res.RCG)

	fmt.Println("\n=== Connected components ===")
	for i, comp := range res.RCG.Components() {
		fmt.Printf("component %d: %v\n", i, comp)
	}

	fmt.Printf("\n=== Ideal schedule: %d cycles on one multi-ported bank (paper Figure 1: 7) ===\n", res.IdealLength())
	printListSchedule(res)

	fmt.Println("\n=== Greedy partition (paper Section 5) ===")
	for _, r := range loop.Body.Registers() {
		fmt.Printf("  %-4s -> bank %d\n", r, res.Assignment.Bank(r))
	}

	fmt.Printf("\n=== Partitioned code with copies (%d copies; paper Figure 3 uses 2) ===\n", res.Copies.KernelCopies)
	fmt.Print(res.Copies.Body)

	fmt.Printf("\n=== Partitioned schedule: %d cycles (paper Figure 3: 9) ===\n", res.PartLength())
	fmt.Printf("degradation: %.0f%% over ideal\n", res.Degradation()-100)

	fmt.Println("\n=== Per-bank register assignment (Chaitin/Briggs) ===")
	for b, alloc := range res.Alloc {
		fmt.Printf("bank %d: pressure %d, %d machine registers used, %d spills\n",
			b, alloc.MaxLive, alloc.UsedColors, len(alloc.Spilled))
	}
}

func printListSchedule(res *codegen.BlockResult) {
	instrs := res.IdealSched.Instructions()
	for cycle, ids := range instrs {
		fmt.Printf("cycle %d:", cycle)
		for _, id := range ids {
			fmt.Printf("  %s;", res.IdealGraph.Ops[id])
		}
		fmt.Println()
	}
}
