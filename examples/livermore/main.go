// Livermore compiles the twelve classic Livermore kernels for the
// 4-cluster embedded machine, as written and after 4-way unrolling, and
// shows why the paper's SPEC95 loops (which reached the pipeliner after
// conventional unrolling) partition so much better than raw source loops:
// a single un-unrolled expression tree is one connected dataflow that any
// partition must cut, while unrolled lanes give the partitioner
// independent work to deal out to clusters.
//
// Run with:
//
//	go run ./examples/livermore
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/transform"
)

func main() {
	cfg := machine.MustClustered16(4, machine.Embedded)
	fmt.Printf("Livermore kernels on %s\n\n", cfg.Name)
	fmt.Printf("%-28s %-16s | %-16s | %-16s\n", "", "as written", "unrolled x4", "unrolled+reassoc")
	fmt.Printf("%-28s %4s %6s %4s | %4s %6s %4s | %4s %6s %4s\n",
		"kernel", "II", "deg%", "cp", "II", "deg%", "cp", "II", "deg%", "cp")

	var rawDeg, unrolledDeg, reassocDeg float64
	n := 0
	for _, l := range loopgen.Livermore() {
		raw, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{SkipAlloc: true})
		if err != nil {
			log.Fatal(err)
		}
		un, err := transform.Unroll(l.Clone(), 4)
		if err != nil {
			log.Fatal(err)
		}
		unres, err := codegen.Compile(context.Background(), un, cfg, codegen.Options{SkipAlloc: true})
		if err != nil {
			log.Fatal(err)
		}
		ra, _, err := transform.UnrollReassoc(l.Clone(), 4)
		if err != nil {
			log.Fatal(err)
		}
		rares, err := codegen.Compile(context.Background(), ra, cfg, codegen.Options{SkipAlloc: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d %5.0f%% %4d | %4d %5.0f%% %4d | %4d %5.0f%% %4d\n",
			l.Name,
			raw.PartII(), raw.Degradation()-100, raw.Copies.KernelCopies,
			unres.PartII(), unres.Degradation()-100, unres.Copies.KernelCopies,
			rares.PartII(), rares.Degradation()-100, rares.Copies.KernelCopies)
		rawDeg += raw.Degradation()
		unrolledDeg += unres.Degradation()
		reassocDeg += rares.Degradation()
		n++
	}
	fmt.Printf("\nmean degradation: %.0f as written, %.0f unrolled, %.0f unrolled+reassociated\n",
		rawDeg/float64(n), unrolledDeg/float64(n), reassocDeg/float64(n))
	fmt.Println("\nThree stages of the preprocessing story. As written, each kernel is")
	fmt.Println("one expression tree that any partition must cut. Plain unrolling")
	fmt.Println("hands the partitioner independent lanes — but chains reductions like")
	fmt.Println("the inner product (k03) serially, making them worse. Re-association")
	fmt.Println("(transform.UnrollReassoc) splits those accumulators into per-lane")
	fmt.Println("partial sums, recovering the reductions too — the preparation the")
	fmt.Println("paper's SPEC95 loops had received before software pipelining.")
}
