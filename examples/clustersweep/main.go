// Clustersweep runs a slice of the synthetic SPEC95-style loop suite over
// every paper machine and over all partitioning methods, reproducing the
// evaluation's central comparison in miniature: how much schedule quality
// each clustering costs, and how much of that cost is the partitioner's
// fault (RCG greedy vs. BUG vs. blind baselines).
//
// Run with:
//
//	go run ./examples/clustersweep [-n loops]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/exper"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

func main() {
	n := flag.Int("n", 60, "suite loops to sweep")
	flag.Parse()
	loops := loopgen.Generate(loopgen.Params{N: *n, Seed: loopgen.DefaultParams().Seed})
	cfgs := machine.PaperConfigs()

	methods := []partition.Partitioner{
		partition.Greedy{},
		partition.BUG{},
		partition.UAS{},
		partition.RoundRobin{},
		partition.SingleBank{},
	}
	fmt.Printf("sweeping %d loops x %d machines x %d partitioners\n\n", len(loops), len(cfgs), len(methods))

	fmt.Printf("%-12s", "method")
	for _, cfg := range cfgs {
		fmt.Printf("  %9s", fmt.Sprintf("%dcl/%s", cfg.Clusters, short(cfg)))
	}
	fmt.Println("   (arith mean degradation; 100 = ideal)")

	for _, m := range methods {
		results := exper.RunSuite(loops, cfgs, exper.Options{
			Codegen: codegen.Options{Partitioner: m, SkipAlloc: true},
		})
		for _, r := range results {
			if errs := r.Errors(); len(errs) > 0 {
				log.Fatal(errs[0])
			}
		}
		fmt.Printf("%-12s", m.Name())
		for _, r := range results {
			a, _ := r.MeanDegradation()
			fmt.Printf("  %9.0f", a)
		}
		fmt.Println()
	}

	fmt.Println("\nShapes to notice (they mirror the paper's Section 3 discussion):")
	fmt.Println("  - rcg-greedy leads; bug and uas (the schedule-driven methods) trail it;")
	fmt.Println("  - the blind baselines are far worse everywhere;")
	fmt.Println("  - single-bank is catastrophic at 8 clusters (everything on 2 FUs);")
	fmt.Println("  - degradation grows with cluster count for every method.")
}

func short(cfg *machine.Config) string {
	if cfg.Model == machine.CopyUnit {
		return "cu"
	}
	return "emb"
}
