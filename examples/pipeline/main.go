// Pipeline shows the complete software-pipelining code shape the paper's
// Section 2 describes: a loop is modulo-scheduled, its kernel is unrolled
// and renamed by modulo variable expansion (values living longer than the
// II get multiple names), and prelude/postlude code is generated to fill
// and drain the pipeline. The program prints each artifact and closes by
// executing both the original loop and the rewritten kernel on concrete
// data to show they compute identical results.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
)

func main() {
	// A first-order filter: y[i] = x*a + b[i]; x = y[i] — a real
	// recurrence plus streaming traffic.
	l := ir.NewLoop("pipeline.filter")
	b := ir.NewLoopBuilder(l)
	x := l.NewReg(ir.Float)
	a := l.NewReg(ir.Float)
	lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	t := l.NewReg(ir.Float)
	b.MulInto(t, x, a)
	b.AddInto(x, t, lb)
	b.Store(x, ir.MemRef{Base: "y", Coeff: 1})
	side := b.Load(ir.Float, ir.MemRef{Base: "c", Coeff: 1})
	b.Store(b.Mul(side, a), ir.MemRef{Base: "d", Coeff: 1})

	cfg := machine.Ideal16()
	fmt.Println("=== Loop body ===")
	fmt.Print(l.Body)

	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	fmt.Printf("\nRecMII = %d (mul 2 + add 2 around the carried x)\n", g.RecMII())

	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Modulo schedule: II=%d, %d stages, IPC %.2f ===\n", s.II, s.Stages(), s.IPC())
	fmt.Print(s.Kernel(l.Body.Ops))

	const trip = 12
	e, err := modulo.Expand(s, l.Body, trip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Expanded pipeline for %d iterations ===\n", trip)
	fmt.Print(e)
	fmt.Printf("total %d cycles vs %d sequential (%.1fx speedup), code growth %.1fx\n",
		e.TotalCycles, trip*s.Length, float64(trip*s.Length)/float64(e.TotalCycles),
		e.CodeGrowth(len(l.Body.Ops)))

	// Modulo variable expansion needs lifetimes longer than the II to
	// bite; a two-lane product loop scheduled at II=2 has 3-cycle
	// load-to-multiply spans, so several values need two names each.
	l2 := ir.NewLoop("pipeline.products")
	b2 := ir.NewLoopBuilder(l2)
	for k := 0; k < 2; k++ {
		la := b2.Load(ir.Float, ir.MemRef{Base: "p", Coeff: 2, Offset: k})
		lc := b2.Load(ir.Float, ir.MemRef{Base: "q", Coeff: 2, Offset: k})
		m := b2.Mul(la, lc)
		b2.Store(m, ir.MemRef{Base: "r", Coeff: 2, Offset: k})
	}
	g2 := ddg.Build(l2.Body, cfg, ddg.Options{Carried: true})
	s2, err := modulo.Run(context.Background(), g2, cfg, modulo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	work := l2.Clone()
	mve, err := codegen.ExpandVariables(work, g2, s2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Modulo variable expansion on %s (II=%d): unroll %d ===\n",
		l2.Name, s2.II, mve.Unroll)
	for r, n := range mve.Names {
		if n > 1 {
			fmt.Printf("  %s needs %d names (lifetime > II): %v\n", r, n, mve.NameOf[r])
		}
	}
	fmt.Print(mve.Body)

	// Execute both versions of the second loop.
	const seed = 2026
	mveTrip := mve.Unroll * 6
	orig := interp.New(seed)
	orig.SeedLiveIns(l2.Body)
	if err := orig.RunLoop(l2.Body, mveTrip); err != nil {
		log.Fatal(err)
	}
	ren := interp.New(seed)
	ren.SeedLiveIns(l2.Body)
	for r, bank := range mve.NameOf {
		v := ren.LiveInValue(r)
		for _, nr := range bank {
			ren.Regs[nr] = v
		}
	}
	if err := ren.RunLoop(mve.Body, mveTrip/mve.Unroll); err != nil {
		log.Fatal(err)
	}
	if err := interp.SameStores(orig.Stores, ren.Stores); err != nil {
		log.Fatalf("semantics diverged: %v", err)
	}
	fmt.Printf("\nexecuted original and renamed kernels for %d iterations: %d stores, identical streams\n",
		mveTrip, len(orig.Stores))
	mveCost, rotCost := mve.RegisterCost()
	fmt.Printf("register names: %d with software MVE vs %d with a rotating register file\n",
		mveCost, rotCost)
}
