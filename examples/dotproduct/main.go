// Dotproduct software-pipelines an unrolled dot-product loop
//
//	for i: s += a[i] * b[i]     (4 lanes, one partial sum each)
//
// on the paper's six clustered machines and the 16-wide ideal machine,
// showing how the initiation interval, copy count and register pressure
// react to cluster count and copy model. It then prints the clustered
// kernel for the 4x4 embedded machine so the modulo schedule's stages and
// inter-cluster copies are visible.
//
// Run with:
//
//	go run ./examples/dotproduct
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/fixtures"
	"repro/internal/machine"
)

func main() {
	loop := fixtures.DotProduct(4)
	fmt.Println("=== Loop body (4 lanes, one accumulator each) ===")
	fmt.Print(loop.Body)

	fmt.Println("\n=== Across machines ===")
	fmt.Printf("%-38s %4s %4s %7s %7s %6s %7s\n", "machine", "II", "deg%", "IPC", "copies", "press", "spills")

	ideal := machine.Ideal16()
	res, err := codegen.Compile(context.Background(), loop, ideal, codegen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report(ideal.Name, res)

	var show *codegen.Result
	for _, cfg := range machine.PaperConfigs() {
		res, err := codegen.Compile(context.Background(), loop, cfg, codegen.Options{})
		if err != nil {
			log.Fatal(err)
		}
		report(cfg.Name, res)
		if cfg.Clusters == 4 && cfg.Model == machine.Embedded {
			show = res
		}
	}

	fmt.Printf("\n=== Clustered kernel on %s (II=%d, %d stages) ===\n",
		show.Cfg.Name, show.PartII(), show.PartSched.Stages())
	fmt.Print(show.PartSched.Kernel(show.Copies.Body.Ops))

	fmt.Println("\nEach kernel row issues once per II; [cN sM] marks the cluster and")
	fmt.Println("pipeline stage. The carried accumulator adds bound the II at the")
	fmt.Println("float-add latency; the partitioner keeps each lane's chain in one")
	fmt.Println("bank so no copy lands on the recurrence.")
}

func report(name string, res *codegen.Result) {
	fmt.Printf("%-38s %4d %4.0f %7.2f %7d %6d %7d\n",
		name, res.PartII(), res.Degradation()-100, res.ClusteredIPC(),
		res.Copies.KernelCopies, res.MaxPressure(), res.Spills())
}
