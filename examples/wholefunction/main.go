// Wholefunction applies the register component graph partitioning to
// straight-line (non-loop) code, exercising the claim the paper makes in
// its comparison with Nystrom and Eichenberger: "our greedy partitioning
// method is easily applicable to entire programs, since we could easily
// use both non-loop and loop code to build our register component graph".
//
// The program builds a basic block mixing two independent floating-point
// expression trees with an integer address computation, compiles it for
// 2- and 4-cluster machines, and shows the schedule cost of partitioning
// straight-line code (where every copy's latency lands directly on the
// makespan, unlike in a pipelined kernel).
//
// Run with:
//
//	go run ./examples/wholefunction
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

func buildBlock() *ir.Loop {
	l := ir.NewLoop("wholefunction.block")
	l.Body.Depth = 0
	b := ir.NewLoopBuilder(l)

	// Tree 1: e1 = (a*b + c) * (a + c)
	a := b.Load(ir.Float, ir.MemRef{Base: "a"})
	c := b.Load(ir.Float, ir.MemRef{Base: "c"})
	ab := b.Mul(a, b.Load(ir.Float, ir.MemRef{Base: "b"}))
	t1 := b.Add(ab, c)
	t2 := b.Add(a, c)
	e1 := b.Mul(t1, t2)
	b.Store(e1, ir.MemRef{Base: "e1"})

	// Tree 2: e2 = (d - f) / (d + f)
	d := b.Load(ir.Float, ir.MemRef{Base: "d"})
	f := b.Load(ir.Float, ir.MemRef{Base: "f"})
	num := b.Sub(d, f)
	den := b.Add(d, f)
	e2 := b.Div(num, den)
	b.Store(e2, ir.MemRef{Base: "e2"})

	// Integer address computation: idx = ((i << 2) + j) & mask
	i := b.Load(ir.Int, ir.MemRef{Base: "i"})
	j := b.Load(ir.Int, ir.MemRef{Base: "j"})
	two := b.Imm(ir.Int, 2)
	sh := b.Shl(i, two)
	sum := b.Add(sh, j)
	mask := b.Imm(ir.Int, 1023)
	idx := b.And(sum, mask)
	b.Store(idx, ir.MemRef{Base: "idx"})
	return l
}

func main() {
	loop := buildBlock()
	fmt.Println("=== Straight-line block ===")
	fmt.Print(loop.Body)

	for _, clusters := range []int{2, 4} {
		cfg, err := machine.Clustered16(clusters, machine.Embedded)
		if err != nil {
			log.Fatal(err)
		}
		res, err := codegen.CompileBlock(context.Background(), loop, cfg, codegen.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", cfg.Name)
		fmt.Printf("ideal makespan %d cycles; partitioned %d cycles (%.0f%% degradation), %d copies\n",
			res.IdealLength(), res.PartLength(), res.Degradation()-100, res.Copies.KernelCopies)
		fmt.Println("components of the register graph (independent trees separate freely):")
		for i, comp := range res.RCG.Components() {
			fmt.Printf("  component %d: %v\n", i, comp)
		}
		counts := res.Assignment.Counts()
		fmt.Printf("bank occupancy: %v\n", counts)
	}

	fmt.Println("\nThe two floating-point trees and the integer address chain form")
	fmt.Println("separate affinity components, so the partitioner's first move is to")
	fmt.Println("deal whole components to different banks. The remaining copies come")
	fmt.Println("from Figure 4's balance term splitting the larger trees for issue")
	fmt.Println("bandwidth — and unlike in a pipelined kernel, each copy's latency")
	fmt.Println("lands directly on the straight-line makespan, which is why the")
	fmt.Println("paper concentrates its evaluation on software-pipelined loops.")
}
