package swp

import (
	"context"
	"testing"

	"repro/internal/codegen"
	"repro/internal/fixtures"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/scratch"
)

// Allocation-regression guards for the compile pipeline's hot paths. The
// dense-index/scratch-arena work keeps a warm-arena compile down to a
// couple hundred allocations (the result objects themselves — schedules,
// the rewritten body's slabs, coloring results); before it, the same
// compile allocated tens of thousands of times. The budgets below carry
// roughly 2x headroom over the measured counts, so they never flake on
// runtime noise but fail loudly if a hot path regresses to per-op or
// per-register allocation.

// TestCompileAllocBudget pins the steady-state allocation count of a full
// five-stage compile reusing one scratch arena (the suite-runner and
// server configuration).
func TestCompileAllocBudget(t *testing.T) {
	const budget = 320 // measured ~155 on a 64-op loop

	loop := fixtures.DotProduct(16)
	cfg := machine.MustClustered16(4, machine.Embedded)
	ar := scratch.Get()
	defer ar.Release()
	opt := codegen.Config{Scratch: ar}
	ctx := context.Background()
	// Warm the arena: first compile sizes every stage's buffers.
	if _, err := codegen.Compile(ctx, loop, cfg, opt); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := codegen.Compile(ctx, loop, cfg, opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("codegen.Compile: %.1f allocs/run (budget %d)", n, budget)
	if n > budget {
		t.Errorf("codegen.Compile allocates %.1f times per warm-arena compile, budget %d — a hot path regressed to per-op/per-register allocation", n, budget)
	}
}

// TestColorAllocBudget pins the allocation count of per-bank
// Chaitin/Briggs coloring on real kernel live ranges with a warm arena.
func TestColorAllocBudget(t *testing.T) {
	const budget = 80 // measured ~38 across 4 banks

	loop := fixtures.DotProduct(16)
	cfg := machine.MustClustered16(4, machine.Embedded)
	ar := scratch.Get()
	defer ar.Release()
	res, err := codegen.Compile(context.Background(), loop, cfg, codegen.Config{Scratch: ar})
	if err != nil {
		t.Fatal(err)
	}
	ranges := regalloc.KernelRanges(res.PartGraph, res.PartSched)
	byBank := make([][]regalloc.LiveRange, cfg.Clusters)
	for _, lr := range ranges {
		b := res.Assignment.Bank(lr.Reg)
		byBank[b] = append(byBank[b], lr)
	}
	// Warm the arena's coloring slot.
	for b := range byBank {
		regalloc.ColorScratch(byBank[b], res.PartSched.II, cfg.RegsPerBank, nil, nil, ar)
	}
	n := testing.AllocsPerRun(20, func() {
		for b := range byBank {
			regalloc.ColorScratch(byBank[b], res.PartSched.II, cfg.RegsPerBank, nil, nil, ar)
		}
	})
	t.Logf("regalloc.Color (all banks): %.1f allocs/run (budget %d)", n, budget)
	if n > budget {
		t.Errorf("regalloc.Color allocates %.1f times per warm-arena coloring, budget %d — the allocator regressed to per-range allocation", n, budget)
	}
}
