#!/bin/sh
# Repo hygiene: no tracked file may exceed 1MB unless allowlisted.
# Build outputs (a 4.3MB `experiments` binary once slipped in) and
# profiler dumps belong in .gitignore, not in history.
set -eu
cd "$(dirname "$0")/.."

LIMIT=1048576
# Tracked files permitted to exceed the limit, one path per line between
# the markers. Empty today; add a path only with a written justification.
allowed() {
    case "$1" in
        # example/allowed/file.bin) return 0 ;;
        *) return 1 ;;
    esac
}

big=$(git ls-files | while IFS= read -r f; do
    [ -f "$f" ] || continue
    size=$(wc -c < "$f")
    [ "$size" -gt "$LIMIT" ] || continue
    allowed "$f" || printf '%8s  %s\n' "$size" "$f"
done)

if [ -n "$big" ]; then
    echo "hygiene: tracked files over $LIMIT bytes:" >&2
    echo "$big" >&2
    exit 1
fi
echo "hygiene: all tracked files under $LIMIT bytes"
