#!/bin/sh
# Repo hygiene: no tracked file may exceed 1MB unless allowlisted.
# Build outputs (a 4.3MB `experiments` binary once slipped in) and
# profiler dumps belong in .gitignore, not in history.
set -eu
cd "$(dirname "$0")/.."

LIMIT=1048576
# Tracked files permitted to exceed the limit, one path per line between
# the markers. Empty today; add a path only with a written justification.
allowed() {
    case "$1" in
        # example/allowed/file.bin) return 0 ;;
        *) return 1 ;;
    esac
}

big=$(git ls-files | while IFS= read -r f; do
    [ -f "$f" ] || continue
    size=$(wc -c < "$f")
    [ "$size" -gt "$LIMIT" ] || continue
    allowed "$f" || printf '%8s  %s\n' "$size" "$f"
done)

if [ -n "$big" ]; then
    echo "hygiene: tracked files over $LIMIT bytes:" >&2
    echo "$big" >&2
    exit 1
fi
echo "hygiene: all tracked files under $LIMIT bytes"

# Compiled test binaries (`go test -c`, or a crashed -bench run) are
# .gitignore'd, so they can never be committed — but they still linger in
# working trees at 10MB+ apiece and end up inside editor indexes and
# container image layers. Flag any the toolchain left behind.
stray=$(find . -name '*.test' -type f -not -path './.git/*' | sed 's|^\./||')
if [ -n "$stray" ]; then
    echo "hygiene: untracked compiled test binaries lingering in the tree:" >&2
    echo "$stray" | while IFS= read -r f; do
        printf '%8s  %s\n' "$(wc -c < "$f")" "$f" >&2
    done
    echo "hygiene: remove them (go clean -testcache does not; plain rm does)" >&2
    exit 1
fi
echo "hygiene: no stray *.test binaries"
