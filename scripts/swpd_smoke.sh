#!/bin/sh
# Smoke-tests the swpd daemon end to end: build it, start it, compile one
# suite loop over HTTP on the 4-cluster embedded machine, and cross-check
# the clustered II against the in-process answer from swpc. Also verifies
# /healthz, /metrics, and a clean SIGTERM drain. Used by CI's swpd job and
# by scripts/reproduce.sh.
#
#   scripts/swpd_smoke.sh            # pass/fail, exit status tells
#   PORT=9999 scripts/swpd_smoke.sh
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
TMP=$(mktemp -d)
PID=
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building swpd and swpc ==" >&2
go build -o "$TMP/swpd" ./cmd/swpd
go build -o "$TMP/swpc" ./cmd/swpc

"$TMP/swpd" -addr "127.0.0.1:$PORT" -quiet 2> "$TMP/swpd.log" &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" > "$TMP/health.json" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "swpd never became healthy; log:" >&2
    cat "$TMP/swpd.log" >&2
    exit 1
fi
grep -q '"status": "ok"' "$TMP/health.json"

# Loop 0 of the deterministic suite, in the printer format the API accepts.
go run ./cmd/loopgen -n 1 -dump -stats=false | grep -E '^ *[0-9]+:' > "$TMP/loop.txt"
[ -s "$TMP/loop.txt" ]

# The source lines contain no quotes or backslashes, so embedding them
# into JSON with literal \n separators is safe.
SRC=$(awk '{printf "%s\\n", $0}' "$TMP/loop.txt")
printf '{"name": "smoke", "source": "%s", "machine": {"clusters": 4, "copy_model": "embedded"}}' "$SRC" > "$TMP/req.json"

curl -fsS -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$PORT/compile" > "$TMP/resp.json"
DAEMON_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/resp.json" | head -1)
if [ -z "$DAEMON_II" ]; then
    echo "daemon response carries no part_ii:" >&2
    cat "$TMP/resp.json" >&2
    exit 1
fi

# The same loop and machine compiled in-process must give the same II.
SWPC_II=$("$TMP/swpc" -n 1 -loop 0 -clusters 4 -model embedded |
    sed -n 's/.*clustered II=\([0-9][0-9]*\).*/\1/p' | head -1)
if [ "$DAEMON_II" != "$SWPC_II" ]; then
    echo "II mismatch: daemon says $DAEMON_II, swpc says $SWPC_II" >&2
    exit 1
fi
echo "clustered II agrees: daemon=$DAEMON_II swpc=$SWPC_II" >&2

curl -fsS "http://127.0.0.1:$PORT/metrics" > "$TMP/metrics.txt"
grep -q 'swpd_requests_total{code="200"} 1' "$TMP/metrics.txt"
grep -q 'swpd_request_seconds_count 1' "$TMP/metrics.txt"

# SIGTERM must drain and exit cleanly.
kill -TERM "$PID"
wait "$PID"
PID=
echo "swpd smoke: OK" >&2
