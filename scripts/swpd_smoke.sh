#!/bin/sh
# Smoke-tests the swpd daemon end to end: build it, start it, compile one
# suite loop over HTTP on the 4-cluster embedded machine, and cross-check
# the clustered II against the in-process answer from swpc. Also verifies
# /healthz, /metrics, and a clean SIGTERM drain. Used by CI's swpd job and
# by scripts/reproduce.sh.
#
#   scripts/swpd_smoke.sh            # pass/fail, exit status tells
#   PORT=9999 scripts/swpd_smoke.sh
set -eu
cd "$(dirname "$0")/.."

PORT=${PORT:-18080}
TMP=$(mktemp -d)
PID=
R1PID=
R2PID=
GWPID=
cleanup() {
    for p in "$PID" "$R1PID" "$R2PID" "$GWPID"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

# wait_healthy <url> <logfile>: poll /healthz until the daemon answers.
wait_healthy() {
    i=0
    while [ $i -lt 50 ]; do
        if curl -fsS "$1/healthz" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
        i=$((i+1))
    done
    echo "daemon at $1 never became healthy; log:" >&2
    cat "$2" >&2
    return 1
}

echo "== building swpd and swpc ==" >&2
go build -o "$TMP/swpd" ./cmd/swpd
go build -o "$TMP/swpc" ./cmd/swpc

CACHEDIR="$TMP/cachedir"
"$TMP/swpd" -addr "127.0.0.1:$PORT" -cache-dir "$CACHEDIR" -quiet 2> "$TMP/swpd.log" &
PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" > "$TMP/health.json" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "swpd never became healthy; log:" >&2
    cat "$TMP/swpd.log" >&2
    exit 1
fi
grep -q '"status": "ok"' "$TMP/health.json"

# Loop 0 of the deterministic suite, in the printer format the API accepts.
go run ./cmd/loopgen -n 1 -dump -stats=false | grep -E '^ *[0-9]+:' > "$TMP/loop.txt"
[ -s "$TMP/loop.txt" ]

# The source lines contain no quotes or backslashes, so embedding them
# into JSON with literal \n separators is safe.
SRC=$(awk '{printf "%s\\n", $0}' "$TMP/loop.txt")
printf '{"name": "smoke", "source": "%s", "machine": {"clusters": 4, "copy_model": "embedded"}}' "$SRC" > "$TMP/req.json"

curl -fsS -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$PORT/compile" > "$TMP/resp.json"
DAEMON_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/resp.json" | head -1)
if [ -z "$DAEMON_II" ]; then
    echo "daemon response carries no part_ii:" >&2
    cat "$TMP/resp.json" >&2
    exit 1
fi

# The same loop and machine compiled in-process must give the same II.
SWPC_II=$("$TMP/swpc" -n 1 -loop 0 -clusters 4 -model embedded |
    sed -n 's/.*clustered II=\([0-9][0-9]*\).*/\1/p' | head -1)
if [ "$DAEMON_II" != "$SWPC_II" ]; then
    echo "II mismatch: daemon says $DAEMON_II, swpc says $SWPC_II" >&2
    exit 1
fi
echo "clustered II agrees: daemon=$DAEMON_II swpc=$SWPC_II" >&2

curl -fsS "http://127.0.0.1:$PORT/metrics" > "$TMP/metrics.txt"
grep -q 'swpd_requests_total{code="200"} 1' "$TMP/metrics.txt"
grep -q 'swpd_request_seconds_count 1' "$TMP/metrics.txt"

# Versioned surface: /v1/compile is the canonical route and must not carry
# a Deprecation header; the bare legacy route must answer identically while
# announcing its successor. Cache provenance fields are the only legal
# difference between the two bodies, so they are stripped before comparing.
curl -fsS -D "$TMP/v1.hdr" -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$PORT/v1/compile" > "$TMP/v1.json"
if grep -qi '^deprecation:' "$TMP/v1.hdr"; then
    echo "/v1/compile must not be marked deprecated" >&2
    exit 1
fi
curl -fsS -D "$TMP/legacy.hdr" -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$PORT/compile" > "$TMP/legacy.json"
grep -qi '^deprecation:' "$TMP/legacy.hdr"
grep -qi 'successor-version' "$TMP/legacy.hdr"
grep -v '"cache_hit"\|"cache_tier"' "$TMP/v1.json" > "$TMP/v1.norm"
grep -v '"cache_hit"\|"cache_tier"' "$TMP/legacy.json" > "$TMP/legacy.norm"
if ! cmp -s "$TMP/v1.norm" "$TMP/legacy.norm"; then
    echo "legacy /compile and /v1/compile answers differ:" >&2
    diff "$TMP/v1.norm" "$TMP/legacy.norm" >&2 || true
    exit 1
fi
echo "v1 smoke: legacy route deprecated, answers identical" >&2

# Binary wire codec through a real client: swpc -server -wire binary posts
# an application/x-swp-bin frame and must report the same clustered II the
# JSON path produced.
BIN_II=$("$TMP/swpc" -server "http://127.0.0.1:$PORT" -wire binary -n 1 -loop 0 -clusters 4 -model embedded |
    sed -n 's/.*clustered II=\([0-9][0-9]*\).*/\1/p' | head -1)
if [ "$BIN_II" != "$DAEMON_II" ]; then
    echo "binary codec II mismatch: binary says $BIN_II, JSON said $DAEMON_II" >&2
    exit 1
fi
echo "binary codec smoke: II agrees over application/x-swp-bin (II=$BIN_II)" >&2

# Batch endpoint: two good items plus one malformed loop must yield HTTP
# 200 with exactly one item-level error, and the streaming mode must
# emit one NDJSON line per item.
printf '{"machine": {"clusters": 4}, "items": [{"name": "a", "source": "%s"}, {"name": "bad", "source": "0: not a loop"}, {"name": "b", "source": "%s"}]}' "$SRC" "$SRC" > "$TMP/batch.json"
curl -fsS -H 'Content-Type: application/json' -d @"$TMP/batch.json" \
    "http://127.0.0.1:$PORT/compile/batch" > "$TMP/batchresp.json"
grep -q '"errors": 1' "$TMP/batchresp.json"
BATCH_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/batchresp.json" | head -1)
if [ "$BATCH_II" != "$DAEMON_II" ]; then
    echo "batch II mismatch: batch says $BATCH_II, single says $DAEMON_II" >&2
    exit 1
fi
curl -fsS -H 'Content-Type: application/json' -d @"$TMP/batch.json" \
    "http://127.0.0.1:$PORT/compile/batch?stream=1" > "$TMP/stream.ndjson"
LINES=$(wc -l < "$TMP/stream.ndjson")
if [ "$LINES" != 3 ]; then
    echo "streaming batch emitted $LINES lines, want 3" >&2
    cat "$TMP/stream.ndjson" >&2
    exit 1
fi
curl -fsS "http://127.0.0.1:$PORT/metrics" > "$TMP/batch-metrics.txt"
grep -q 'swpd_batch_items_total 6' "$TMP/batch-metrics.txt"
echo "batch smoke: buffered and streaming agree" >&2

# SIGTERM must drain and exit cleanly (flushing the disk write-behind).
kill -TERM "$PID"
wait "$PID"
PID=

# A restarted daemon over the same cache directory must serve the same
# request from the disk tier: warmth survives the restart.
"$TMP/swpd" -addr "127.0.0.1:$PORT" -cache-dir "$CACHEDIR" -quiet 2>> "$TMP/swpd.log" &
PID=$!
ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" > /dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.1
done
[ "$ok" = 1 ]
curl -fsS -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$PORT/compile" > "$TMP/warm.json"
grep -q '"cache_tier": "disk"' "$TMP/warm.json"
WARM_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/warm.json" | head -1)
if [ "$WARM_II" != "$DAEMON_II" ]; then
    echo "warm-restart II mismatch: warm says $WARM_II, cold said $DAEMON_II" >&2
    exit 1
fi
curl -fsS "http://127.0.0.1:$PORT/metrics" > "$TMP/warm-metrics.txt"
grep -Eq 'swpd_disk_cache_hits_total [1-9]' "$TMP/warm-metrics.txt"
grep -q 'swpd_disk_cache_verify_failures_total 0' "$TMP/warm-metrics.txt"
echo "disk tier smoke: restart served from disk (II=$WARM_II)" >&2

kill -TERM "$PID"
wait "$PID"
PID=

# Cluster tier smoke: two fresh replica daemons behind a swpgw gateway.
# The gateway must route the compile to its ring owner without changing
# the answer, and a repeat of the same request must land on the same
# replica and be served from its cache across the wire — the
# warm-state-sharing property the ring exists for.
echo "== cluster smoke: 2 replicas behind swpgw ==" >&2
go build -o "$TMP/swpgw" ./cmd/swpgw
R1=$((PORT+1)); R2=$((PORT+2)); GW=$((PORT+3))
"$TMP/swpd" -addr "127.0.0.1:$R1" -quiet 2> "$TMP/replica1.log" &
R1PID=$!
"$TMP/swpd" -addr "127.0.0.1:$R2" -quiet 2> "$TMP/replica2.log" &
R2PID=$!
"$TMP/swpgw" -addr "127.0.0.1:$GW" \
    -peers "http://127.0.0.1:$R1,http://127.0.0.1:$R2" \
    -quiet 2> "$TMP/swpgw.log" &
GWPID=$!
wait_healthy "http://127.0.0.1:$R1" "$TMP/replica1.log"
wait_healthy "http://127.0.0.1:$R2" "$TMP/replica2.log"
wait_healthy "http://127.0.0.1:$GW" "$TMP/swpgw.log"

# Cold pass through the gateway: routed output must match the single-node
# answer from the start of this script.
curl -fsS -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$GW/v1/compile" > "$TMP/ring-cold.json"
RING_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/ring-cold.json" | head -1)
if [ "$RING_II" != "$DAEMON_II" ]; then
    echo "routed II mismatch: gateway says $RING_II, single node said $DAEMON_II" >&2
    exit 1
fi

# Warm pass: the fingerprint routes to the same replica, whose cache now
# owns the result — the hit crosses the gateway hop.
curl -fsS -H 'Content-Type: application/json' -d @"$TMP/req.json" \
    "http://127.0.0.1:$GW/v1/compile" > "$TMP/ring-warm.json"
grep -q '"cache_hit": true' "$TMP/ring-warm.json"
grep -q '"cache_tier": "memory"' "$TMP/ring-warm.json"
WARM_RING_II=$(sed -n 's/.*"part_ii": *\([0-9][0-9]*\).*/\1/p' "$TMP/ring-warm.json" | head -1)
[ "$WARM_RING_II" = "$DAEMON_II" ]

# The gateway's own metrics must show both requests proxied to ring
# peers, nothing compiled locally and no failovers taken.
curl -fsS "http://127.0.0.1:$GW/metrics" > "$TMP/gw-metrics.txt"
grep -q 'swpd_cluster_remote_total 2' "$TMP/gw-metrics.txt"
grep -q 'swpd_cluster_local_total 0' "$TMP/gw-metrics.txt"
grep -q 'swpd_cluster_failovers_total 0' "$TMP/gw-metrics.txt"
grep -Eq 'swpd_cluster_peer_healthy\{peer="[^"]*"\} 1' "$TMP/gw-metrics.txt"

# Exactly one replica must have served both requests (fingerprint
# stickiness), and it answered the repeat from its cache.
HITS1=$(curl -fsS "http://127.0.0.1:$R1/metrics" | sed -n 's/^swpd_cache_hits_total \([0-9][0-9]*\)$/\1/p')
HITS2=$(curl -fsS "http://127.0.0.1:$R2/metrics" | sed -n 's/^swpd_cache_hits_total \([0-9][0-9]*\)$/\1/p')
if [ "${HITS1:-0}" = 0 ] && [ "${HITS2:-0}" = 0 ]; then
    echo "no replica reports a cache hit for the repeated request" >&2
    exit 1
fi

# swpc's client-side ring mode must compute the same owner the gateway
# used and report the warm answer straight from the replica.
PEER_II=$("$TMP/swpc" -peers "http://127.0.0.1:$R1,http://127.0.0.1:$R2" \
    -n 1 -loop 0 -clusters 4 -model embedded |
    sed -n 's/.*clustered II=\([0-9][0-9]*\).*/\1/p' | head -1)
if [ "$PEER_II" != "$DAEMON_II" ]; then
    echo "swpc -peers II mismatch: ring client says $PEER_II, want $DAEMON_II" >&2
    exit 1
fi
echo "cluster smoke: routed II=$RING_II, warm repeat hit across the ring" >&2

kill -TERM "$GWPID"; wait "$GWPID"; GWPID=
kill -TERM "$R1PID"; wait "$R1PID"; R1PID=
kill -TERM "$R2PID"; wait "$R2PID"; R2PID=
echo "swpd smoke: OK" >&2
