#!/bin/sh
# Runs the benchmark suite and records the results as JSON, including the
# headline PR-2 number — the speedup of the content-addressed compile
# cache on the full 211-loop x 2/4/8-cluster x copy-model experiment grid
# (BenchmarkSuiteCached vs BenchmarkSuiteUncached) — and the PR-3 number,
# the swpd daemon's cached round-trip latency (BenchmarkServerCompile).
#
#   scripts/bench.sh                 # full run -> BENCH_pr3.json
#   BENCHTIME=1x scripts/bench.sh    # CI smoke: one iteration per benchmark
#   OUT=/tmp/b.json scripts/bench.sh
#
# Only the standard toolchain is used: `go test -bench` output is parsed
# with awk into {benchmarks: {name: {ns_per_op, ...}}, derived: {...}}.
set -eu
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_pr3.json}
BENCHTIME=${BENCHTIME:-10x}
PATTERN=${PATTERN:-.}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench $PATTERN -benchtime $BENCHTIME ==" >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v goversion="$(go version)" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip GOMAXPROCS suffix if present
    ns[name] = ""; bytes[name] = ""; allocs[name] = ""; extras[name] = ""
    order[++n] = name
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i; unit = $(i + 1)
        if (unit == "ns/op")           ns[name] = v
        else if (unit == "B/op")       bytes[name] = v
        else if (unit == "allocs/op")  allocs[name] = v
        else {
            gsub(/[^A-Za-z0-9_]/, "_", unit)
            if (extras[name] != "") extras[name] = extras[name] ", "
            extras[name] = extras[name] "\"" unit "\": " v
        }
    }
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (bytes[name] != "")  printf ", \"bytes_per_op\": %s", bytes[name]
        if (allocs[name] != "") printf ", \"allocs_per_op\": %s", allocs[name]
        if (extras[name] != "") printf ", %s", extras[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    if (ns["BenchmarkSuiteUncached"] != "" && ns["BenchmarkSuiteCached"] != "")
        printf "    \"suite_cache_speedup\": %.3f,\n", ns["BenchmarkSuiteUncached"] / ns["BenchmarkSuiteCached"]
    else
        printf "    \"suite_cache_speedup\": null,\n"
    if (ns["BenchmarkServerCompile"] != "")
        printf "    \"server_roundtrip_us\": %.1f\n", ns["BenchmarkServerCompile"] / 1000
    else
        printf "    \"server_roundtrip_us\": null\n"
    printf "  }\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
grep -E '"suite_cache_speedup"' "$OUT" >&2
