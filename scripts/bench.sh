#!/bin/sh
# Runs the benchmark suite and records the results as JSON, including the
# headline PR-2 number — the speedup of the content-addressed compile
# cache on the full 211-loop x 2/4/8-cluster x copy-model experiment grid
# (BenchmarkSuiteCached vs BenchmarkSuiteUncached) — the PR-3 number, the
# swpd daemon's cached round-trip latency (BenchmarkServerCompile), the
# PR-4 numbers (uncached-suite speedup, single-loop allocs/op), and the
# PR-7 numbers: the persistent disk tier's cold-start-to-warm speedup
# (BenchmarkSuiteDiskCold vs BenchmarkSuiteDiskWarm, with the warm run's
# disk_hit_pct), the /compile/batch throughput in loops per second
# (BenchmarkServerBatch), and the PR-8 numbers: the warm /v1/compile
# round trip in each codec (BenchmarkServerCompileJSON vs
# BenchmarkServerCompileBinary, with p50_us and allocs/op) plus the
# II-seed table's hit rate on repeat scheduling
# (BenchmarkServerCompileSeeded's ii_seed_hit_rate), and the PR-9
# numbers: the consistent-hash cluster tier's cross-replica warm hit rate
# (BenchmarkClusterWarm) and the capacity scaling of a fingerprint-routed
# 3-replica fleet over a single replica with the same per-replica cache
# budget (BenchmarkClusterBatch1 vs BenchmarkClusterBatch3), and the PR-10
# numbers: the feature-conditioned adaptive-weights arm on the full suite
# (BenchmarkAdaptiveWeights: adaptive_never_worse, adaptive_wins and the
# greedy-vs-adaptive mean degradations).
#
# These comparisons are ENFORCED (exit nonzero so CI catches them):
#   - PR-8: the binary warm round trip must beat JSON;
#   - PR-9: cross_replica_warm_hit_rate must reach 0.9 — fingerprint
#     routing is the whole point of the ring, so repeats must land warm;
#   - PR-9: the 3-replica batch sweep must beat the 1-replica sweep;
#   - PR-9 satellite: ii_seed_found_rate must reach 0.9 — the seed
#     table's steady-state coverage of the working set;
#   - PR-10: adaptive_never_worse must be true — the adaptive candidate is
#     appended behind strict-improvement scoring, so a single degraded
#     (loop, machine) cell means the selection contract broke.
# Set ENFORCE=0 to disable (e.g. for exploratory runs on noisy machines).
#
#   scripts/bench.sh                 # full run -> BENCH_pr10.json
#   BENCHTIME=1x scripts/bench.sh    # CI smoke: one iteration per benchmark
#   OUT=/tmp/b.json scripts/bench.sh
#   BASELINE=BENCH_pr2.json scripts/bench.sh   # compare against another PR
#
# After writing OUT, results are compared benchmark-by-benchmark against
# BASELINE (default BENCH_pr9.json) and the time/alloc deltas are printed.
# The comparison is informational only: it never fails the run, so CI
# fails on build/test errors but not on machine-speed noise.
#
# Only the standard toolchain is used: `go test -bench` output is parsed
# with awk into {benchmarks: {name: {ns_per_op, ...}}, derived: {...}}.
set -eu
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_pr10.json}
BASELINE=${BASELINE:-BENCH_pr9.json}
ENFORCE=${ENFORCE:-1}
BENCHTIME=${BENCHTIME:-10x}
PATTERN=${PATTERN:-.}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Baseline headline numbers, folded into this run's derived block so the
# JSON record itself carries the PR-4 before/after story.
BASE_SUITE_NS=""
BASE_PIPE_ALLOCS=""
if [ -f "$BASELINE" ] && [ "$BASELINE" != "$OUT" ]; then
    BASE_SUITE_NS=$(awk -F'"ns_per_op": ' '/"BenchmarkSuiteUncached"/ {split($2, a, /[,}]/); print a[1]}' "$BASELINE")
    BASE_PIPE_ALLOCS=$(awk -F'"allocs_per_op": ' '/"BenchmarkFullPipelineSingleLoop"/ {split($2, a, /[,}]/); print a[1]}' "$BASELINE")
fi

echo "== go test -bench $PATTERN -benchtime $BENCHTIME ==" >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v goversion="$(go version)" -v benchtime="$BENCHTIME" \
    -v base_suite_ns="$BASE_SUITE_NS" -v base_pipe_allocs="$BASE_PIPE_ALLOCS" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip GOMAXPROCS suffix if present
    ns[name] = ""; bytes[name] = ""; allocs[name] = ""; extras[name] = ""
    order[++n] = name
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i; unit = $(i + 1)
        if (unit == "ns/op")           ns[name] = v
        else if (unit == "B/op")       bytes[name] = v
        else if (unit == "allocs/op")  allocs[name] = v
        else {
            gsub(/[^A-Za-z0-9_]/, "_", unit)
            if (unit == "p50_us")           p50[name] = v
            if (unit == "ii_seed_hit_rate") seedhit[name] = v
            if (unit == "ii_seed_found_rate") seedfound[name] = v
            if (unit == "cross_replica_warm_hit_rate") clusterwarm[name] = v
            if (unit == "batch_loops_per_sec") batchlps[name] = v
            if (unit == "adaptive_never_worse") adnw[name] = v
            if (unit == "adaptive_wins")        adwins[name] = v
            if (extras[name] != "") extras[name] = extras[name] ", "
            extras[name] = extras[name] "\"" unit "\": " v
        }
    }
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (bytes[name] != "")  printf ", \"bytes_per_op\": %s", bytes[name]
        if (allocs[name] != "") printf ", \"allocs_per_op\": %s", allocs[name]
        if (extras[name] != "") printf ", %s", extras[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    if (ns["BenchmarkSuiteUncached"] != "" && ns["BenchmarkSuiteCached"] != "")
        printf "    \"suite_cache_speedup\": %.3f,\n", ns["BenchmarkSuiteUncached"] / ns["BenchmarkSuiteCached"]
    else
        printf "    \"suite_cache_speedup\": null,\n"
    if (ns["BenchmarkServerCompile"] != "")
        printf "    \"server_roundtrip_us\": %.1f,\n", ns["BenchmarkServerCompile"] / 1000
    else
        printf "    \"server_roundtrip_us\": null,\n"
    if (base_suite_ns != "" && ns["BenchmarkSuiteUncached"] != "")
        printf "    \"uncached_suite_speedup_vs_baseline\": %.3f,\n", base_suite_ns / ns["BenchmarkSuiteUncached"]
    else
        printf "    \"uncached_suite_speedup_vs_baseline\": null,\n"
    if (base_pipe_allocs != "" && allocs["BenchmarkFullPipelineSingleLoop"] != "")
        printf "    \"single_loop_allocs_delta_pct\": %.1f,\n", (allocs["BenchmarkFullPipelineSingleLoop"] - base_pipe_allocs) / base_pipe_allocs * 100
    else
        printf "    \"single_loop_allocs_delta_pct\": null,\n"
    if (ns["BenchmarkSuiteDiskCold"] != "" && ns["BenchmarkSuiteDiskWarm"] != "")
        printf "    \"disk_warm_speedup\": %.3f,\n", ns["BenchmarkSuiteDiskCold"] / ns["BenchmarkSuiteDiskWarm"]
    else
        printf "    \"disk_warm_speedup\": null,\n"
    if (ns["BenchmarkSuiteDiskCold"] != "" && ns["BenchmarkSuiteDiskWarm"] != "")
        printf "    \"disk_cold_to_warm_saved_ms\": %.1f,\n", (ns["BenchmarkSuiteDiskCold"] - ns["BenchmarkSuiteDiskWarm"]) / 1e6
    else
        printf "    \"disk_cold_to_warm_saved_ms\": null,\n"
    if (p50["BenchmarkServerCompileBinary"] != "")
        printf "    \"warm_binary_p50_us\": %s,\n", p50["BenchmarkServerCompileBinary"]
    else
        printf "    \"warm_binary_p50_us\": null,\n"
    if (p50["BenchmarkServerCompileJSON"] != "")
        printf "    \"warm_json_p50_us\": %s,\n", p50["BenchmarkServerCompileJSON"]
    else
        printf "    \"warm_json_p50_us\": null,\n"
    if (ns["BenchmarkServerCompileJSON"] != "" && ns["BenchmarkServerCompileBinary"] != "")
        printf "    \"binary_vs_json_speedup\": %.3f,\n", ns["BenchmarkServerCompileJSON"] / ns["BenchmarkServerCompileBinary"]
    else
        printf "    \"binary_vs_json_speedup\": null,\n"
    if (allocs["BenchmarkServerCompileBinary"] != "")
        printf "    \"warm_binary_allocs_per_op\": %s,\n", allocs["BenchmarkServerCompileBinary"]
    else
        printf "    \"warm_binary_allocs_per_op\": null,\n"
    if (seedhit["BenchmarkServerCompileSeeded"] != "")
        printf "    \"ii_seed_hit_rate\": %s,\n", seedhit["BenchmarkServerCompileSeeded"]
    else
        printf "    \"ii_seed_hit_rate\": null,\n"
    if (seedfound["BenchmarkServerCompileSeeded"] != "")
        printf "    \"ii_seed_found_rate\": %s,\n", seedfound["BenchmarkServerCompileSeeded"]
    else
        printf "    \"ii_seed_found_rate\": null,\n"
    if (clusterwarm["BenchmarkClusterWarm"] != "")
        printf "    \"cross_replica_warm_hit_rate\": %s,\n", clusterwarm["BenchmarkClusterWarm"]
    else
        printf "    \"cross_replica_warm_hit_rate\": null,\n"
    if (batchlps["BenchmarkClusterBatch1"] != "")
        printf "    \"cluster_batch_loops_per_sec_1\": %s,\n", batchlps["BenchmarkClusterBatch1"]
    else
        printf "    \"cluster_batch_loops_per_sec_1\": null,\n"
    if (batchlps["BenchmarkClusterBatch3"] != "")
        printf "    \"cluster_batch_loops_per_sec_3\": %s,\n", batchlps["BenchmarkClusterBatch3"]
    else
        printf "    \"cluster_batch_loops_per_sec_3\": null,\n"
    if (ns["BenchmarkClusterBatch1"] != "" && ns["BenchmarkClusterBatch3"] != "")
        printf "    \"cluster_batch_scaling\": %.3f,\n", ns["BenchmarkClusterBatch1"] / ns["BenchmarkClusterBatch3"]
    else
        printf "    \"cluster_batch_scaling\": null,\n"
    if (adnw["BenchmarkAdaptiveWeights"] != "")
        printf "    \"adaptive_never_worse\": %s,\n", (adnw["BenchmarkAdaptiveWeights"] >= 1 ? "true" : "false")
    else
        printf "    \"adaptive_never_worse\": null,\n"
    if (adwins["BenchmarkAdaptiveWeights"] != "")
        printf "    \"adaptive_wins\": %s\n", adwins["BenchmarkAdaptiveWeights"]
    else
        printf "    \"adaptive_wins\": null\n"
    printf "  }\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
grep -E '"suite_cache_speedup"|"disk_warm_speedup"|"warm_binary_p50_us"|"binary_vs_json_speedup"|"ii_seed_hit_rate"|"ii_seed_found_rate"|"cross_replica_warm_hit_rate"|"cluster_batch_scaling"|"adaptive_never_worse"|"adaptive_wins"' "$OUT" >&2

# grab_derived pulls one numeric value out of OUT's derived block. The
# same key can also appear on a benchmark's extras line, so keep only the
# last occurrence — the derived block closes the file.
grab_derived() {
    awk -F"\"$1\": " '$2 != "" {split($2, a, /[,}\n]/); v = a[1]}
        END {if (v != "" && v != "null") print v}' "$OUT"
}

# PR-8 enforcement: the binary codec must beat JSON on the warm round
# trip whenever both benchmarks were part of this run. PR-9 enforcement:
# the cluster's cross-replica warm hit rate and the seed table's coverage
# must each reach 0.9, and the 3-replica batch sweep must beat 1-replica.
if [ "$ENFORCE" = "1" ]; then
    JSON_NS=$(awk -F'"ns_per_op": ' '/"BenchmarkServerCompileJSON"/ {split($2, a, /[,}]/); print a[1]}' "$OUT")
    BIN_NS=$(awk -F'"ns_per_op": ' '/"BenchmarkServerCompileBinary"/ {split($2, a, /[,}]/); print a[1]}' "$OUT")
    if [ -n "$JSON_NS" ] && [ -n "$BIN_NS" ]; then
        if awk "BEGIN { exit !($BIN_NS < $JSON_NS) }"; then
            echo "ok: binary warm round trip ${BIN_NS}ns beats JSON ${JSON_NS}ns" >&2
        else
            echo "FAIL: binary warm round trip ${BIN_NS}ns is not faster than JSON ${JSON_NS}ns" >&2
            exit 1
        fi
    fi
    WARMHIT=$(grab_derived cross_replica_warm_hit_rate)
    if [ -n "$WARMHIT" ]; then
        if awk "BEGIN { exit !($WARMHIT >= 0.9) }"; then
            echo "ok: cross-replica warm hit rate $WARMHIT >= 0.9" >&2
        else
            echo "FAIL: cross-replica warm hit rate $WARMHIT below the 0.9 floor" >&2
            exit 1
        fi
    fi
    SCALING=$(grab_derived cluster_batch_scaling)
    if [ -n "$SCALING" ]; then
        if awk "BEGIN { exit !($SCALING > 1) }"; then
            echo "ok: 3-replica batch sweep ${SCALING}x the 1-replica sweep" >&2
        else
            echo "FAIL: 3-replica batch scaling $SCALING is not above 1" >&2
            exit 1
        fi
    fi
    SEEDFOUND=$(grab_derived ii_seed_found_rate)
    if [ -n "$SEEDFOUND" ]; then
        if awk "BEGIN { exit !($SEEDFOUND >= 0.9) }"; then
            echo "ok: ii-seed steady-state coverage $SEEDFOUND >= 0.9" >&2
        else
            echo "FAIL: ii-seed steady-state coverage $SEEDFOUND below the 0.9 floor" >&2
            exit 1
        fi
    fi
    # PR-10 enforcement: the adaptive arm must never degrade a cell.
    ADNW=$(awk -F'"adaptive_never_worse": ' '$2 != "" {split($2, a, /[,}\n]/); v = a[1]} END {if (v != "" && v != "null") print v}' "$OUT")
    if [ -n "$ADNW" ]; then
        if [ "$ADNW" = "true" ]; then
            echo "ok: adaptive arm never degraded a (loop, machine) cell" >&2
        else
            echo "FAIL: adaptive arm degraded at least one (loop, machine) cell" >&2
            exit 1
        fi
    fi
fi

# Before/after comparison against the baseline record. Parses the flat
# per-benchmark lines out of both JSON files (our own known format, so a
# line-oriented awk pass is enough) and prints time and allocation deltas
# for every benchmark present in both. Informational only — `|| true`
# keeps baseline drift or a missing file from failing the run.
if [ -f "$BASELINE" ] && [ "$BASELINE" != "$OUT" ]; then
    echo "== comparison vs $BASELINE (negative % = improvement) ==" >&2
    awk '
    function grab(line, key,   v) {
        if (match(line, "\"" key "\": [0-9.eE+-]+")) {
            v = substr(line, RSTART, RLENGTH)
            sub(/^[^:]*: /, "", v)
            return v
        }
        return ""
    }
    /^    "Benchmark/ {
        name = $1
        gsub(/[":]/, "", name)
        if (FNR == NR) { bns[name] = grab($0, "ns_per_op"); bal[name] = grab($0, "allocs_per_op") }
        else           { ons[name] = grab($0, "ns_per_op"); oal[name] = grab($0, "allocs_per_op"); order[++n] = name }
    }
    END {
        printf "%-36s %14s %9s %14s %9s\n", "benchmark", "ns/op", "time%", "allocs/op", "allocs%"
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (!(name in bns) || bns[name] == "" || ons[name] == "") continue
            dt = (ons[name] - bns[name]) / bns[name] * 100
            line = sprintf("%-36s %14.0f %+8.1f%%", name, ons[name], dt)
            if (bal[name] != "" && oal[name] != "" && bal[name] + 0 > 0) {
                da = (oal[name] - bal[name]) / bal[name] * 100
                line = line sprintf(" %14.0f %+8.1f%%", oal[name], da)
            }
            print line
        }
    }' "$BASELINE" "$OUT" >&2 || true
fi
