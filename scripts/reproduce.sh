#!/bin/sh
# Regenerates every number in EXPERIMENTS.md from scratch, plus the build,
# vet, test and benchmark evidence. Everything is deterministic: two runs
# of this script produce byte-identical experiment output.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
go vet ./...

echo "== tests (race detector) =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzGreedyPartition -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzModuloSchedule -fuzztime=10s ./internal/modulo

echo "== Tables 1-2, Figures 5-7 (paper Section 6) =="
go run ./cmd/experiments

echo "== Partitioner comparison (Section 3/6.3) =="
go run ./cmd/experiments -compare

echo "== Copy-latency sensitivity (Section 6.3) =="
go run ./cmd/experiments -latency

echo "== Register pressure (Section 1 trade-off) =="
go run ./cmd/experiments -pressure

echo "== Iterative refinement (Section 6.3) =="
go run ./cmd/experiments -refine

echo "== Scheduler modes (Section 6.3, Swing axis) =="
go run ./cmd/experiments -scheduler

echo "== Unit generality (Section 6.1 aside) =="
go run ./cmd/experiments -units

echo "== Livermore kernels =="
go run ./cmd/experiments -suite livermore
go run ./examples/livermore

echo "== Worked example (Section 4.2) =="
go run ./examples/quickstart

echo "== Benchmarks (same metrics via testing.B) =="
go test -bench . -benchmem -benchtime 1x .
