#!/bin/sh
# Regenerates every number in EXPERIMENTS.md from scratch, plus the build,
# vet, test and benchmark evidence. Everything is deterministic: two runs
# of this script produce byte-identical experiment output.
set -eu
cd "$(dirname "$0")/.."

echo "== repo hygiene =="
sh scripts/check_hygiene.sh

echo "== build =="
go build ./...
go vet ./...

echo "== tests (race detector) =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzGreedyPartition -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzModuloSchedule -fuzztime=10s ./internal/modulo
go test -run='^$' -fuzz=FuzzCacheEquivalence -fuzztime=10s ./internal/codegen
go test -run='^$' -fuzz=FuzzExactPartition -fuzztime=10s ./internal/exact
go test -run='^$' -fuzz=FuzzDiskCacheCodec -fuzztime=10s ./internal/cache
go test -run='^$' -fuzz=FuzzWireCodec -fuzztime=10s ./internal/wire

echo "== exact-solver coverage floor (90%) =="
go test -coverprofile=/tmp/exact-cover.out -coverpkg=./internal/exact ./internal/exact
go tool cover -func=/tmp/exact-cover.out | awk '/^total:/ {gsub(/%/, "", $NF); if ($NF + 0 < 90) { print "coverage " $NF "% is below the 90% floor"; exit 1 } print "coverage " $NF "% meets the 90% floor"}'

echo "== disk-cache coverage floor (85%) =="
go test -coverprofile=/tmp/cache-cover.out -coverpkg=./internal/cache ./internal/cache
go tool cover -func=/tmp/cache-cover.out | awk '/^total:/ {gsub(/%/, "", $NF); if ($NF + 0 < 85) { print "coverage " $NF "% is below the 85% floor"; exit 1 } print "coverage " $NF "% meets the 85% floor"}'

echo "== adaptive table drift (regenerate and diff) =="
# The feature->weights table is training output checked in as Go source;
# regenerating it with the committed trainer and its fixed seed must
# reproduce the committed bytes exactly.
go run ./cmd/tune -emit /tmp/table_check.go
diff -u internal/features/table_default.go /tmp/table_check.go
echo "table reproduces byte-for-byte"

echo "== Adaptive arm never-worse sweep (full suite) =="
go test -run TestAdaptiveNeverWorseSuite ./internal/codegen

echo "== Tables 1-2, Figures 5-7 (paper Section 6) =="
go run ./cmd/experiments

echo "== Partitioner comparison (Section 3/6.3) =="
go run ./cmd/experiments -compare

echo "== Copy-latency sensitivity (Section 6.3) =="
go run ./cmd/experiments -latency

echo "== Register pressure (Section 1 trade-off) =="
go run ./cmd/experiments -pressure

echo "== Iterative refinement (Section 6.3) =="
go run ./cmd/experiments -refine

echo "== Scheduler modes (Section 6.3, Swing axis) =="
go run ./cmd/experiments -scheduler

echo "== Unit generality (Section 6.1 aside) =="
go run ./cmd/experiments -units

echo "== Optimality gap (exact branch-and-bound arms) =="
# Deterministic: the node budget, not the wall clock, bounds the search.
go run ./cmd/experiments -exactgap -n 60 -exact-nodes 20000

echo "== Livermore kernels =="
go run ./cmd/experiments -suite livermore
go run ./examples/livermore

echo "== Worked example (Section 4.2) =="
go run ./examples/quickstart

echo "== Benchmarks (same metrics via testing.B, JSON record) =="
BENCHTIME=1x OUT=/tmp/bench-reproduce.json scripts/bench.sh

echo "== Cached grid equals uncached grid, byte for byte =="
go run ./cmd/experiments > /tmp/grid-uncached.txt
go run ./cmd/experiments -cache > /tmp/grid-cached.txt
cmp /tmp/grid-uncached.txt /tmp/grid-cached.txt
echo "identical"

echo "== Portfolio partitioning (cached comparison sweep) =="
go run ./cmd/experiments -compare -cache > /dev/null

echo "== swpd daemon (HTTP answer equals in-process answer) =="
sh scripts/swpd_smoke.sh

echo "== bounded-cache soak (short) =="
# Sustained randomized traffic against a finite cache budget: resident
# bytes must hold at the budget with a nonzero hit rate under eviction
# churn. Short here; raise SWPD_SOAK_REQUESTS for a longer soak.
SWPD_SOAK_REQUESTS=300 go test -race -run TestSoakBoundedCache ./internal/server

echo "== disk tier: grid equality and crash/corruption layer =="
# The persisted tier must never change an answer: golden tables and the
# differential sweep re-run cold and warm over a disk directory, then the
# corruption tests truncate/bit-flip/zero records and demand recomputing
# misses with quarantine, and the batch+disk soak crosses a restart under
# the race detector.
go test -race -run 'TestGoldenTablesDiskCache' ./internal/exper
go test -race -run 'TestDifferentialSweepDiskCache' ./internal/codegen
go test -race -run 'TestDisk' ./internal/cache
go test -race -run 'TestSoakBatchDisk' ./internal/server
