package swp_test

import (
	"fmt"

	swp "repro"
)

// ExampleCompileLoop compiles one synthetic loop (a first-order
// recurrence) for the paper's 4-cluster embedded machine: the recurrence
// bounds the II at 4 cycles and partitioning costs nothing — the copy off
// the critical path hides in a spare issue slot.
func ExampleCompileLoop() {
	loop := swp.SmallSuite(2)[1]
	cfg := swp.Machine(4, swp.Embedded)
	res, err := swp.CompileLoop(loop, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ideal II=%d clustered II=%d degradation=%.0f copies=%d\n",
		res.IdealII(), res.PartII(), res.Degradation(), res.Copies.KernelCopies)
	// Output:
	// ideal II=4 clustered II=4 degradation=100 copies=1
}

// ExampleMinII shows the initiation-interval lower bounds of a parsed
// accumulator loop: the float add's 2-cycle latency bounds the recurrence.
func ExampleMinII() {
	loop, err := swp.ParseLoop("acc", `
		load f2, a[1*i]
		add f1, f1, f2
	`)
	if err != nil {
		panic(err)
	}
	rec, res, min := swp.MinII(loop, swp.Ideal())
	fmt.Printf("RecMII=%d ResMII=%d MinII=%d\n", rec, res, min)
	// Output:
	// RecMII=2 ResMII=1 MinII=2
}

// ExampleParseLoop round-trips a loop through the text format.
func ExampleParseLoop() {
	loop, err := swp.ParseLoop("dot", `
		load f2, a[1*i]
		load f3, b[1*i]
		mult f4, f2, f3
		add f1, f1, f4
	`)
	if err != nil {
		panic(err)
	}
	fmt.Print(loop.Body)
	// Output:
	//   0: load f2, a[1*i]
	//   1: load f3, b[1*i]
	//   2: mult f4, f2, f3
	//   3: add f1, f1, f4
}

// ExampleUnroll doubles a loop body, renaming per-copy values and
// rewriting subscripts for the widened iteration step.
func ExampleUnroll() {
	loop, err := swp.ParseLoop("scale", `
		load f2, a[1*i]
		mult f3, f2, f1
		store b[1*i], f3
	`)
	if err != nil {
		panic(err)
	}
	un, err := swp.Unroll(loop, 2)
	if err != nil {
		panic(err)
	}
	fmt.Print(un.Body)
	// Output:
	//   0: load f2, a[2*i]
	//   1: mult f3, f2, f1
	//   2: store b[2*i], f3
	//   3: load f4, a[2*i+1]
	//   4: mult f5, f4, f1
	//   5: store b[2*i+1], f5
}

// ExampleCompileLoopWith runs the same recurrence loop under the paper's
// greedy and under Ellis's BUG baseline: BUG's placement puts copies on
// the recurrence and more than doubles the II.
func ExampleCompileLoopWith() {
	loop := swp.SmallSuite(2)[1]
	cfg := swp.Machine(4, swp.Embedded)
	for _, p := range swp.Partitioners()[:2] {
		res, err := swp.CompileLoopWith(loop, cfg, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s II=%d copies=%d\n", res.PartitionerName, res.PartII(), res.Copies.KernelCopies)
	}
	// Output:
	// rcg-greedy II=4 copies=1
	// bug        II=10 copies=3
}
