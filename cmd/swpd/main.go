// Command swpd runs the compile service: the five-step pipeline behind a
// long-lived HTTP/JSON API. Start it, then POST loops at /compile:
//
//	swpd -addr :8080 &
//	curl -s localhost:8080/compile -d '{
//	  "name": "dot",
//	  "source": "0: load f2, a[1*i]\n1: load f3, b[1*i]\n2: mult f4, f2, f3\n3: add f1, f1, f4",
//	  "machine": {"clusters": 4, "copy_model": "embedded"}
//	}'
//
// The daemon compiles on a bounded worker pool (-workers), sheds overload
// with 429 once the queue (-queue) is full, enforces per-request deadlines
// (-timeout, or "timeout_ms" per request), cancels compiles whose client
// disconnected, and drains gracefully on SIGINT/SIGTERM. /healthz reports
// liveness, /metrics exports counters in the Prometheus text format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/features"
	"repro/internal/modulo"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent compiles (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued compiles before shedding 429s (0 = 2x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request compile deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on request-supplied deadlines")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	exactBudget := flag.Duration("exact-budget", 0, "enable the exact-solver arms with this wall-clock ceiling per stage (0 = off)")
	exactNodes := flag.Int64("exact-nodes", 0, "deterministic search-node budget for the exact arms (0 = solver defaults)")
	adaptive := flag.Bool("adaptive", false, "enable the feature-conditioned adaptive-weights arm on portfolio-capable requests")
	useCache := flag.Bool("cache", true, "share a content-addressed compile cache across requests")
	cacheBudget := flag.String("cache-budget", "", "byte budget for the compile cache, e.g. 64MiB (empty or 0 = unlimited, none = retain nothing)")
	cacheDir := flag.String("cache-dir", "", "directory for a persistent disk cache tier behind the in-memory cache (implies -cache; empty = memory only)")
	cacheDiskBudget := flag.String("cache-disk-budget", "", "byte budget for the disk cache tier, e.g. 256MiB (empty or 0 = unlimited)")
	iiseed := flag.Bool("iiseed", true, "share a per-loop II prediction table so repeat scheduling starts at the last known II")
	iiseedCap := flag.Int("iiseed-cap", 0, "entries retained in the II seed table (0 = default 65536)")
	peers := flag.String("peers", "", "comma-separated replica base URLs forming a consistent-hash ring; requests this node does not own are proxied to their ring owner")
	self := flag.String("self", "", "this node's own entry in -peers (empty with -peers = pure gateway, compiles nothing locally)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the ring (0 = default 256)")
	peerProbe := flag.Duration("peer-probe", 2*time.Second, "active /healthz probe interval for ring peers (0 = passive health only)")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	flag.Parse()

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *queue <= 0 {
		*queue = 2 * *workers
	}
	scfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	scfg.Pipeline.Tracer = trace.New()
	scfg.Pipeline.ExactBudget = *exactBudget
	scfg.Pipeline.ExactNodes = *exactNodes
	if *adaptive {
		scfg.Pipeline.Adaptive = features.Default()
	}
	if *iiseed {
		scfg.Pipeline.IISeed = modulo.NewSeedTable(*iiseedCap)
	}
	if *useCache || *cacheDir != "" {
		budget, err := cache.ParseBudget(*cacheBudget)
		if err != nil {
			log.Fatal(err)
		}
		scfg.Pipeline.Cache = cache.NewBounded(budget)
		scfg.Pipeline.CacheBudget = budget
	}
	var disk *cache.Disk
	if *cacheDir != "" {
		diskBudget, err := cache.ParseBudget(*cacheDiskBudget)
		if err != nil {
			log.Fatal(err)
		}
		disk, err = cache.OpenDisk(*cacheDir, diskBudget)
		if err != nil {
			log.Fatal(err)
		}
		scfg.Pipeline.Disk = disk
		log.Printf("swpd: disk cache at %s (%d records warm)", *cacheDir, disk.Stats().Entries)
	}
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimRight(strings.TrimSpace(list[i]), "/")
		}
		selfID := strings.TrimRight(strings.TrimSpace(*self), "/")
		rt := cluster.NewRouter(cluster.Config{Peers: list, Self: selfID, Vnodes: *vnodes})
		rt.StartProbing(*peerProbe)
		scfg.Cluster = rt
		mode := "replica"
		if selfID == "" {
			mode = "gateway"
		}
		log.Printf("swpd: cluster %s over %s (self=%q)", mode, rt.Ring(), selfID)
	}
	if !*quiet {
		scfg.Log = log.New(os.Stderr, "swpd: ", log.LstdFlags|log.Lmicroseconds)
	}
	svc := server.New(scfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("swpd listening on %s (workers=%d queue=%d timeout=%s)",
		*addr, *workers, *queue, *timeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("swpd: %s received, draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("swpd: shutdown: %v", err)
		}
		svc.Close()
		if disk != nil {
			disk.Close() // flush pending write-behinds so the next start is warm
		}
		log.Printf("swpd: drained, bye")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "swpd: serve: %v\n", err)
		os.Exit(1)
	}
}
