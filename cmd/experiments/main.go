// Command experiments regenerates the paper's evaluation (Section 6):
// Table 1 (IPC of clustered software pipelines), Table 2 (degradation over
// ideal schedules, normalized) and Figures 5-7 (histograms of per-loop
// degradation on the 2-, 4- and 8-cluster machines), plus a comparison of
// partitioning methods as an ablation.
//
// Usage:
//
//	experiments [-n loops] [-workers n] [-table 1|2] [-figure 5|6|7] [-compare] [-v]
//
// With no selection flags every table and figure is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/exper"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

func main() {
	n := flag.Int("n", 211, "number of suite loops (211 = paper scale)")
	workers := flag.Int("workers", 0, "parallel compilations (0 = all CPUs)")
	table := flag.Int("table", 0, "print only this table (1 or 2)")
	figure := flag.Int("figure", 0, "print only this figure (5, 6 or 7)")
	compare := flag.Bool("compare", false, "compare partitioning methods (ablation)")
	latency := flag.Bool("latency", false, "copy-latency sensitivity sweep (Section 6.3)")
	pressure := flag.Bool("pressure", false, "register pressure and spill study")
	refine := flag.Bool("refine", false, "iterative partition refinement study (Section 6.3)")
	scheduler := flag.Bool("scheduler", false, "Rau vs lifetime-sensitive scheduler study (Section 6.3)")
	units := flag.Bool("units", false, "general-purpose vs C6x-style typed units study (Section 6.1)")
	jsonOut := flag.Bool("json", false, "emit per-loop results as JSON instead of tables")
	all := flag.Bool("all", false, "run every table, figure and side study")
	suite := flag.String("suite", "spec", "workload: spec (synthetic SPEC95-style) or livermore")
	verbose := flag.Bool("v", false, "also print the per-machine summary")
	flag.Parse()

	var loops []*ir.Loop
	switch *suite {
	case "spec":
		loops = loopgen.Generate(loopgen.Params{N: *n, Seed: loopgen.DefaultParams().Seed})
	case "livermore":
		loops = loopgen.Livermore()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		os.Exit(2)
	}
	cfgs := machine.PaperConfigs()

	if *compare {
		runComparison(loops, cfgs, *workers)
		return
	}
	if *pressure {
		fmt.Print(exper.FormatPressure(exper.PressureStudy(loops, *workers)))
		return
	}
	if *refine {
		fmt.Print(exper.FormatRefine(exper.RefineStudy(loops, cfgs, *workers)))
		return
	}
	if *scheduler {
		study := []*machine.Config{machine.Ideal16()}
		study = append(study, cfgs...)
		fmt.Print(exper.FormatScheduler(exper.SchedulerStudy(loops, study, *workers)))
		return
	}
	if *units {
		fmt.Print(exper.FormatUnits(exper.UnitsStudy(loops, *workers)))
		return
	}
	if *latency {
		for _, clusters := range []int{2, 4, 8} {
			points, err := exper.CopyLatencySweep(loops, clusters, machine.CopyUnit, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.FormatCopyLatencySweep(points, clusters, machine.CopyUnit))
		}
		return
	}

	results := exper.RunSuite(loops, cfgs, exper.Options{Workers: *workers})
	reportErrors(results)

	if *jsonOut {
		if err := exper.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	printAll := *table == 0 && *figure == 0
	if printAll || *table == 1 {
		fmt.Println(exper.Table1(results))
	}
	if printAll || *table == 2 {
		fmt.Println(exper.Table2(results))
	}
	for fig, clusters := range map[int]int{5: 2, 6: 4, 7: 8} {
		if printAll || *figure == fig {
			fmt.Printf("Figure %d. ", fig)
			fmt.Println(exper.Figure(results, clusters))
		}
	}
	if *verbose {
		fmt.Println(exper.Summary(results))
	}
	if *all {
		fmt.Println(exper.Summary(results))
		fmt.Println("== Partitioner comparison ==")
		runComparison(loops, cfgs, *workers)
		fmt.Println("\n== Copy-latency sensitivity ==")
		for _, clusters := range []int{2, 4, 8} {
			points, err := exper.CopyLatencySweep(loops, clusters, machine.CopyUnit, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(exper.FormatCopyLatencySweep(points, clusters, machine.CopyUnit))
		}
		fmt.Println("== Register pressure ==")
		fmt.Println(exper.FormatPressure(exper.PressureStudy(loops, *workers)))
		fmt.Println("== Iterative refinement ==")
		fmt.Println(exper.FormatRefine(exper.RefineStudy(loops, cfgs, *workers)))
		fmt.Println("== Scheduler modes ==")
		study := append([]*machine.Config{machine.Ideal16()}, cfgs...)
		fmt.Println(exper.FormatScheduler(exper.SchedulerStudy(loops, study, *workers)))
		fmt.Println("== Unit generality ==")
		fmt.Println(exper.FormatUnits(exper.UnitsStudy(loops, *workers)))
	}
}

// runComparison reruns the suite with each partitioning method and prints
// the Table-2 style means side by side: the Section 3/6.3 context (RCG
// greedy vs. Ellis's BUG) plus the round-robin/random/single-bank ablation
// floor and ceiling.
func runComparison(loops []*ir.Loop, cfgs []*machine.Config, workers int) {
	methods := []partition.Partitioner{
		partition.Greedy{},
		partition.BUG{},
		partition.UAS{},
		partition.RoundRobin{},
		partition.Random{Seed: 1},
		partition.SingleBank{},
	}
	fmt.Printf("%-12s", "method")
	for _, cfg := range cfgs {
		fmt.Printf("  %9s", fmt.Sprintf("%dcl/%s", cfg.Clusters, model(cfg)))
	}
	fmt.Println("   (arithmetic mean degradation, 100 = ideal)")
	for _, m := range methods {
		results := exper.RunSuite(loops, cfgs, exper.Options{
			Workers: workers,
			Codegen: codegen.Options{Partitioner: m, SkipAlloc: true},
		})
		reportErrors(results)
		fmt.Printf("%-12s", m.Name())
		for _, r := range results {
			a, _ := r.MeanDegradation()
			fmt.Printf("  %9.0f", a)
		}
		fmt.Println()
	}
}

func model(cfg *machine.Config) string {
	if cfg.Model == machine.CopyUnit {
		return "cu"
	}
	return "emb"
}

func reportErrors(results []*exper.ConfigResult) {
	for _, r := range results {
		for _, err := range r.Errors() {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}
