// Command experiments regenerates the paper's evaluation (Section 6):
// Table 1 (IPC of clustered software pipelines), Table 2 (degradation over
// ideal schedules, normalized) and Figures 5-7 (histograms of per-loop
// degradation on the 2-, 4- and 8-cluster machines), plus a comparison of
// partitioning methods as an ablation.
//
// Usage:
//
//	experiments [-n loops] [-workers n] [-table 1|2] [-figure 5|6|7] [-compare] [-v]
//	            [-exactgap] [-exact-budget d] [-exact-nodes n] [-adaptive] [-weights w.json]
//	            [-cache] [-trace out.json] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// With no selection flags every table and figure is printed. -trace
// writes the pipeline's JSON event stream (see internal/trace) and
// appends the aggregate per-stage wall-time/counter tables to the
// summary; -cache memoizes dependence graphs and modulo schedules by
// content fingerprint across the machine grid (see internal/cache) and
// reports the hit rate; -cpuprofile/-memprofile write standard pprof
// profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/profiling"
	"repro/internal/trace"
	"repro/internal/tune"
)

type options struct {
	n           int
	workers     int
	table       int
	figure      int
	compare     bool
	latency     bool
	pressure    bool
	refine      bool
	sched       bool
	units       bool
	exactGap    bool
	jsonOut     bool
	all         bool
	suite       string
	verbose     bool
	exactBudget time.Duration
	exactNodes  int64
	adaptive    *features.Table
	weights     *core.Weights
	tracer      *trace.Tracer
	cache       *cache.Cache
}

func main() {
	opt := options{}
	flag.IntVar(&opt.n, "n", 211, "number of suite loops (211 = paper scale)")
	flag.IntVar(&opt.workers, "workers", 0, "parallel compilations across (machine, loop) pairs (0 = all CPUs)")
	flag.IntVar(&opt.table, "table", 0, "print only this table (1 or 2)")
	flag.IntVar(&opt.figure, "figure", 0, "print only this figure (5, 6 or 7)")
	flag.BoolVar(&opt.compare, "compare", false, "compare partitioning methods (ablation)")
	flag.BoolVar(&opt.latency, "latency", false, "copy-latency sensitivity sweep (Section 6.3)")
	flag.BoolVar(&opt.pressure, "pressure", false, "register pressure and spill study")
	flag.BoolVar(&opt.refine, "refine", false, "iterative partition refinement study (Section 6.3)")
	flag.BoolVar(&opt.sched, "scheduler", false, "Rau vs lifetime-sensitive scheduler study (Section 6.3)")
	flag.BoolVar(&opt.units, "units", false, "general-purpose vs C6x-style typed units study (Section 6.1)")
	flag.BoolVar(&opt.exactGap, "exactgap", false, "optimality-gap study: heuristic vs exact branch-and-bound arms")
	flag.BoolVar(&opt.jsonOut, "json", false, "emit per-loop results as JSON instead of tables")
	flag.BoolVar(&opt.all, "all", false, "run every table, figure and side study")
	flag.StringVar(&opt.suite, "suite", "spec", "workload: spec (synthetic SPEC95-style) or livermore")
	flag.BoolVar(&opt.verbose, "v", false, "also print the per-machine summary")
	flag.DurationVar(&opt.exactBudget, "exact-budget", 0, "enable the exact-solver arms in the main runs with this wall-clock ceiling per stage (0 = off)")
	flag.Int64Var(&opt.exactNodes, "exact-nodes", 0, "deterministic search-node budget for the exact arms (0 = solver defaults)")
	adaptive := flag.Bool("adaptive", false, "enable the feature-conditioned adaptive-weights arm in the main runs (portfolio partitioning)")
	weightsFile := flag.String("weights", "", "override the partitioner weights with this JSON file (see internal/tune.LoadWeights)")
	useCache := flag.Bool("cache", false, "memoize dependence graphs and modulo schedules across the machine grid")
	cacheBudget := flag.String("cache-budget", "", "byte budget for the compile cache, e.g. 64MiB (implies -cache; empty or 0 = unlimited, none = retain nothing)")
	cacheDir := flag.String("cache-dir", "", "directory for a persistent disk cache tier behind the in-memory cache (implies -cache; empty = memory only)")
	cacheDiskBudget := flag.String("cache-disk-budget", "", "byte budget for the disk cache tier, e.g. 256MiB (empty or 0 = unlimited)")
	traceOut := flag.String("trace", "", "write the pipeline's JSON trace event stream to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceOut != "" {
		opt.tracer = trace.New()
	}
	if *adaptive {
		opt.adaptive = features.Default()
	}
	if *weightsFile != "" {
		w, err := tune.LoadWeights(*weightsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.weights = w
	}
	if *useCache || *cacheBudget != "" || *cacheDir != "" {
		budget, err := cache.ParseBudget(*cacheBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.cache = cache.NewBounded(budget)
	}
	var disk *cache.Disk
	if *cacheDir != "" {
		diskBudget, err := cache.ParseBudget(*cacheDiskBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		disk, err = cache.OpenDisk(*cacheDir, diskBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.cache.AttachDisk(disk)
	}

	code := run(opt)

	if disk != nil {
		disk.Close() // flush write-behinds so the stats below are final
	}
	if opt.cache.Enabled() {
		fmt.Fprintf(os.Stderr, "cache: %s\n", opt.cache.Stats())
	}

	if opt.tracer != nil {
		if err := writeTrace(*traceOut, opt.tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}
	stopCPU()
	if err := profiling.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteJSON(f)
}

func run(opt options) int {
	var loops []*ir.Loop
	switch opt.suite {
	case "spec":
		loops = loopgen.Generate(loopgen.Params{N: opt.n, Seed: loopgen.DefaultParams().Seed})
	case "livermore":
		loops = loopgen.Livermore()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", opt.suite)
		return 2
	}
	cfgs := machine.PaperConfigs()

	if opt.compare {
		runComparison(loops, cfgs, opt.workers, opt.tracer, opt.cache)
		return 0
	}
	if opt.pressure {
		fmt.Print(exper.FormatPressure(exper.PressureStudy(loops, opt.workers)))
		return 0
	}
	if opt.refine {
		fmt.Print(exper.FormatRefine(exper.RefineStudy(loops, cfgs, opt.workers)))
		return 0
	}
	if opt.sched {
		study := []*machine.Config{machine.Ideal16()}
		study = append(study, cfgs...)
		fmt.Print(exper.FormatScheduler(exper.SchedulerStudy(loops, study, opt.workers)))
		return 0
	}
	if opt.units {
		fmt.Print(exper.FormatUnits(exper.UnitsStudy(loops, opt.workers)))
		return 0
	}
	if opt.exactGap {
		fmt.Print(exper.FormatExactGap(exper.ExactGapStudy(loops, cfgs, opt.workers, opt.exactNodes)))
		return 0
	}
	if opt.latency {
		for _, clusters := range []int{2, 4, 8} {
			points, err := exper.CopyLatencySweep(loops, clusters, machine.CopyUnit, opt.workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(exper.FormatCopyLatencySweep(points, clusters, machine.CopyUnit))
		}
		return 0
	}

	cg := codegen.Options{Cache: opt.cache, Weights: opt.weights,
		ExactBudget: opt.exactBudget, ExactNodes: opt.exactNodes}
	if opt.adaptive != nil {
		// The adaptive arm engages only on portfolio-capable partitioners.
		cg.Adaptive = opt.adaptive
		cg.Partitioner = partition.Portfolio{}
	}
	results := exper.RunSuite(loops, cfgs, exper.Options{
		Workers: opt.workers,
		Tracer:  opt.tracer,
		Codegen: cg,
	})
	reportErrors(results)

	if opt.jsonOut {
		if err := exper.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	printAll := opt.table == 0 && opt.figure == 0
	if printAll || opt.table == 1 {
		fmt.Println(exper.Table1(results))
	}
	if printAll || opt.table == 2 {
		fmt.Println(exper.Table2(results))
	}
	for _, fc := range [][2]int{{5, 2}, {6, 4}, {7, 8}} {
		fig, clusters := fc[0], fc[1]
		if printAll || opt.figure == fig {
			fmt.Printf("Figure %d. ", fig)
			fmt.Println(exper.Figure(results, clusters))
		}
	}
	if opt.verbose || opt.tracer != nil {
		fmt.Println(exper.SummaryWithTrace(results, opt.tracer))
	}
	if opt.all {
		if !opt.verbose && opt.tracer == nil {
			fmt.Println(exper.Summary(results))
		}
		fmt.Println("== Partitioner comparison ==")
		runComparison(loops, cfgs, opt.workers, nil, opt.cache)
		fmt.Println("\n== Copy-latency sensitivity ==")
		for _, clusters := range []int{2, 4, 8} {
			points, err := exper.CopyLatencySweep(loops, clusters, machine.CopyUnit, opt.workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(exper.FormatCopyLatencySweep(points, clusters, machine.CopyUnit))
		}
		fmt.Println("== Register pressure ==")
		fmt.Println(exper.FormatPressure(exper.PressureStudy(loops, opt.workers)))
		fmt.Println("== Iterative refinement ==")
		fmt.Println(exper.FormatRefine(exper.RefineStudy(loops, cfgs, opt.workers)))
		fmt.Println("== Scheduler modes ==")
		study := append([]*machine.Config{machine.Ideal16()}, cfgs...)
		fmt.Println(exper.FormatScheduler(exper.SchedulerStudy(loops, study, opt.workers)))
		fmt.Println("== Unit generality ==")
		fmt.Println(exper.FormatUnits(exper.UnitsStudy(loops, opt.workers)))
	}
	return 0
}

// runComparison reruns the suite with each partitioning method and prints
// the Table-2 style means side by side: the Section 3/6.3 context (RCG
// greedy vs. Ellis's BUG) plus the round-robin/random/single-bank ablation
// floor and ceiling.
func runComparison(loops []*ir.Loop, cfgs []*machine.Config, workers int, tr *trace.Tracer, c *cache.Cache) {
	methods := []partition.Partitioner{
		partition.Greedy{},
		partition.Portfolio{},
		partition.BUG{},
		partition.UAS{},
		partition.RoundRobin{},
		partition.Random{Seed: 1},
		partition.SingleBank{},
	}
	fmt.Printf("%-12s", "method")
	for _, cfg := range cfgs {
		fmt.Printf("  %9s", fmt.Sprintf("%dcl/%s", cfg.Clusters, model(cfg)))
	}
	fmt.Println("   (arithmetic mean degradation, 100 = ideal)")
	for _, m := range methods {
		results := exper.RunSuite(loops, cfgs, exper.Options{
			Workers: workers,
			Tracer:  tr,
			Codegen: codegen.Options{Partitioner: m, SkipAlloc: true, Cache: c},
		})
		reportErrors(results)
		fmt.Printf("%-12s", m.Name())
		for _, r := range results {
			a, _ := r.MeanDegradation()
			fmt.Printf("  %9.0f", a)
		}
		fmt.Println()
	}
	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Summary())
	}
}

func model(cfg *machine.Config) string {
	if cfg.Model == machine.CopyUnit {
		return "cu"
	}
	return "emb"
}

func reportErrors(results []*exper.ConfigResult) {
	for _, r := range results {
		for _, err := range r.Errors() {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}
