// Command tune runs the paper's Section 7 future-work experiment:
// off-line stochastic optimization of the RCG weighting heuristic. It
// tunes on a training slice of the loop suite, then reports how the tuned
// weights generalize to a held-out slice — for the default coefficients
// and the tuned ones side by side.
//
// With -emit, the command instead trains the feature-conditioned
// adaptive-weights table: the training loops are bucketed by their
// quantized feature key (see internal/features), each populated bucket
// gets its own per-bucket search with a seed derived deterministically
// from -seed, and the buckets whose tuned vector strictly beats the
// defaults are written out as the checked-in Go table. The canonical
// regeneration command — what CI diffs against — is:
//
//	go run ./cmd/tune -emit internal/features/table_default.go
//
// Usage:
//
//	tune [-train n] [-test n] [-iters n] [-seed s] [-clusters n] [-emit path]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/tune"
)

func main() {
	trainN := flag.Int("train", 60, "training loops")
	testN := flag.Int("test", 120, "held-out loops")
	iters := flag.Int("iters", 40, "search iterations")
	seed := flag.Int64("seed", 1, "search seed")
	clusters := flag.Int("clusters", 0, "tune for one cluster count only (0 = all six machines)")
	emit := flag.String("emit", "", "train the per-bucket adaptive table and write it to this Go file")
	flag.Parse()

	if *emit != "" {
		if err := emitTable(*emit, *trainN, *iters, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tune:", err)
			os.Exit(1)
		}
		return
	}

	base := loopgen.DefaultParams()
	train := loopgen.Generate(loopgen.Params{N: *trainN, Seed: base.Seed + 1})
	heldOut := loopgen.Generate(loopgen.Params{N: *testN, Seed: base.Seed + 2})

	cfgs := machine.PaperConfigs()
	if *clusters != 0 {
		cfgs = nil
		for _, m := range []machine.CopyModel{machine.Embedded, machine.CopyUnit} {
			cfgs = append(cfgs, machine.MustClustered16(*clusters, m))
		}
	}

	trainObj := tune.SuiteObjective(train, cfgs, 0)
	testObj := tune.SuiteObjective(heldOut, cfgs, 0)

	fmt.Printf("tuning on %d loops, %d machines, %d iterations...\n", len(train), len(cfgs), *iters)
	res := tune.Search(trainObj, tune.Options{Iterations: *iters, Seed: *seed})

	fmt.Printf("\n%-22s %12s %12s\n", "", "train deg.", "held-out deg.")
	fmt.Printf("%-22s %12.2f %12.2f\n", "default weights", res.StartScore, testObj(res.Start))
	fmt.Printf("%-22s %12.2f %12.2f\n", "tuned weights", res.Score, testObj(res.Best))

	fmt.Printf("\ntuned coefficients (default in parentheses):\n")
	d := core.DefaultWeights()
	fmt.Printf("  Affinity       %7.3f  (%.3f)\n", res.Best.Affinity, d.Affinity)
	fmt.Printf("  AntiAffinity   %7.3f  (%.3f)\n", res.Best.AntiAffinity, d.AntiAffinity)
	fmt.Printf("  CriticalBonus  %7.3f  (%.3f)\n", res.Best.CriticalBonus, d.CriticalBonus)
	fmt.Printf("  DepthBase      %7.3f  (%.3f)\n", res.Best.DepthBase, d.DepthBase)
	fmt.Printf("  Balance        %7.3f  (%.3f)\n", res.Best.Balance, d.Balance)
	fmt.Printf("  InvariantScale %7.3f  (%.3f)\n", res.Best.InvariantScale, d.InvariantScale)

	fmt.Printf("\naccepted points (* = improved on the best so far):\n")
	for _, s := range res.History {
		mark := " "
		if s.Improved {
			mark = "*"
		}
		fmt.Printf("  iter %3d: %s %.2f\n", s.Iteration, mark, s.Score)
	}
}

// keyOf computes one training loop's quantized feature key the same way
// the runtime adaptive arm does: ideal compile on the monolithic machine,
// IdealView, RCG build under the default weights, feature extraction
// against the clustered reference target.
func keyOf(l *ir.Loop, ref *machine.Config) (features.Key, error) {
	ideal := machine.Ideal16()
	res, err := codegen.Compile(context.Background(), l, ideal, codegen.Options{SkipAlloc: true})
	if err != nil {
		return features.Key{}, fmt.Errorf("ideal compile of %q: %w", l.Name, err)
	}
	view := codegen.IdealView(l.Body, res.IdealGraph, res.IdealCfg, res.IdealSched)
	rcg := core.Build([]core.ScheduledBlock{view}, core.DefaultWeights())
	return features.Extract(rcg, view, res.IdealGraph, ref).Key(), nil
}

// minBucket is the smallest training-bucket population worth tuning: a
// vector fit to fewer loops memorizes them instead of the bucket.
const minBucket = 4

// emitTable trains the per-bucket adaptive table and writes it as the Go
// source file the features package embeds. Deterministic end to end: the
// loop suite, the bucketing, the per-bucket search seeds and the emitted
// formatting are all pure functions of the flags.
func emitTable(path string, trainN, iters int, seed int64) error {
	base := loopgen.DefaultParams()
	train := loopgen.Generate(loopgen.Params{N: trainN, Seed: base.Seed + 1})

	// The reference target: the paper's central 4-cluster machine, both
	// copy models, so a bucket's vector must help under either model to
	// win. The bucket key itself is machine-robust (all paper machines are
	// 16-wide), so one key per loop suffices.
	ref := machine.MustClustered16(4, machine.Embedded)
	cfgs := []*machine.Config{ref, machine.MustClustered16(4, machine.CopyUnit)}

	buckets := map[features.Key][]*ir.Loop{}
	for _, l := range train {
		k, err := keyOf(l, ref)
		if err != nil {
			return err
		}
		buckets[k] = append(buckets[k], l)
	}
	keys := make([]features.Key, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Rec != b.Rec {
			return a.Rec < b.Rec
		}
		if a.Dens != b.Dens {
			return a.Dens < b.Dens
		}
		return a.Bound < b.Bound
	})

	table := &features.Table{Version: 1, Seed: seed}
	for _, k := range keys {
		loops := buckets[k]
		if len(loops) < minBucket {
			fmt.Printf("bucket %s: %d loops, too few — skipped\n", k, len(loops))
			continue
		}
		obj := tune.SuiteObjective(loops, cfgs, 0)
		// One independent, reproducible perturbation stream per bucket.
		bseed := seed*1000 + int64(k.Rec*100+k.Dens*10+k.Bound)
		res := tune.Search(obj, tune.Options{Iterations: iters, Seed: bseed})
		if res.Score >= res.StartScore {
			fmt.Printf("bucket %s: %d loops, no improvement (%.2f) — skipped\n", k, len(loops), res.StartScore)
			continue
		}
		fmt.Printf("bucket %s: %d loops, %.2f -> %.2f\n", k, len(loops), res.StartScore, res.Score)
		table.Entries = append(table.Entries, features.Entry{Key: k, Weights: res.Best, Loops: len(loops)})
	}
	table.Sort()

	src := renderTable(table)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries to %s\n", len(table.Entries), path)
	return nil
}

// renderTable formats the table as the features package's generated
// source file, gofmt-clean by construction.
func renderTable(t *features.Table) string {
	var b strings.Builder
	b.WriteString(`// Code generated by "go run ./cmd/tune -emit internal/features/table_default.go"; DO NOT EDIT.

package features

`)
	if len(t.Entries) > 0 {
		b.WriteString("import \"repro/internal/core\"\n\n")
	}
	b.WriteString(`// Default returns the checked-in feature→weights table, trained off-line
// by cmd/tune with the fixed seed below. Regenerate with:
//
//	go run ./cmd/tune -emit internal/features/table_default.go
func Default() *Table {
	return &Table{
`)
	fmt.Fprintf(&b, "\t\tVersion: %d,\n", t.Version)
	fmt.Fprintf(&b, "\t\tSeed:    %d,\n", t.Seed)
	if len(t.Entries) == 0 {
		b.WriteString("\t\tEntries: []Entry{},\n")
	} else {
		b.WriteString("\t\tEntries: []Entry{\n")
		for _, e := range t.Entries {
			fmt.Fprintf(&b, "\t\t\t{\n\t\t\t\tKey:   Key{Rec: %d, Dens: %d, Bound: %d},\n\t\t\t\tLoops: %d,\n",
				e.Key.Rec, e.Key.Dens, e.Key.Bound, e.Loops)
			w := e.Weights
			fmt.Fprintf(&b, "\t\t\t\tWeights: core.Weights{\n")
			fmt.Fprintf(&b, "\t\t\t\t\tAffinity:        %s,\n", g(w.Affinity))
			fmt.Fprintf(&b, "\t\t\t\t\tAntiAffinity:    %s,\n", g(w.AntiAffinity))
			fmt.Fprintf(&b, "\t\t\t\t\tCriticalBonus:   %s,\n", g(w.CriticalBonus))
			fmt.Fprintf(&b, "\t\t\t\t\tDepthBase:       %s,\n", g(w.DepthBase))
			fmt.Fprintf(&b, "\t\t\t\t\tMaxDepth:        %d,\n", w.MaxDepth)
			fmt.Fprintf(&b, "\t\t\t\t\tBalance:         %s,\n", g(w.Balance))
			fmt.Fprintf(&b, "\t\t\t\t\tInvariantScale:  %s,\n", g(w.InvariantScale))
			fmt.Fprintf(&b, "\t\t\t\t\tRecurrenceBonus: %s,\n", g(w.RecurrenceBonus))
			b.WriteString("\t\t\t\t},\n\t\t\t},\n")
		}
		b.WriteString("\t\t},\n")
	}
	b.WriteString("\t}\n}\n")
	return b.String()
}

// g renders a float64 with the shortest representation that round-trips,
// so the emitted table is byte-stable across regenerations.
func g(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s
}
