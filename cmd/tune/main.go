// Command tune runs the paper's Section 7 future-work experiment:
// off-line stochastic optimization of the RCG weighting heuristic. It
// tunes on a training slice of the loop suite, then reports how the tuned
// weights generalize to a held-out slice — for the default coefficients
// and the tuned ones side by side.
//
// Usage:
//
//	tune [-train n] [-test n] [-iters n] [-seed s] [-clusters n]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/tune"
)

func main() {
	trainN := flag.Int("train", 60, "training loops")
	testN := flag.Int("test", 120, "held-out loops")
	iters := flag.Int("iters", 40, "search iterations")
	seed := flag.Int64("seed", 1, "search seed")
	clusters := flag.Int("clusters", 0, "tune for one cluster count only (0 = all six machines)")
	flag.Parse()

	base := loopgen.DefaultParams()
	train := loopgen.Generate(loopgen.Params{N: *trainN, Seed: base.Seed + 1})
	heldOut := loopgen.Generate(loopgen.Params{N: *testN, Seed: base.Seed + 2})

	cfgs := machine.PaperConfigs()
	if *clusters != 0 {
		cfgs = nil
		for _, m := range []machine.CopyModel{machine.Embedded, machine.CopyUnit} {
			cfgs = append(cfgs, machine.MustClustered16(*clusters, m))
		}
	}

	trainObj := tune.SuiteObjective(train, cfgs, 0)
	testObj := tune.SuiteObjective(heldOut, cfgs, 0)

	fmt.Printf("tuning on %d loops, %d machines, %d iterations...\n", len(train), len(cfgs), *iters)
	res := tune.Search(trainObj, tune.Options{Iterations: *iters, Seed: *seed})

	fmt.Printf("\n%-22s %12s %12s\n", "", "train deg.", "held-out deg.")
	fmt.Printf("%-22s %12.2f %12.2f\n", "default weights", res.StartScore, testObj(res.Start))
	fmt.Printf("%-22s %12.2f %12.2f\n", "tuned weights", res.Score, testObj(res.Best))

	fmt.Printf("\ntuned coefficients (default in parentheses):\n")
	d := core.DefaultWeights()
	fmt.Printf("  Affinity       %7.3f  (%.3f)\n", res.Best.Affinity, d.Affinity)
	fmt.Printf("  AntiAffinity   %7.3f  (%.3f)\n", res.Best.AntiAffinity, d.AntiAffinity)
	fmt.Printf("  CriticalBonus  %7.3f  (%.3f)\n", res.Best.CriticalBonus, d.CriticalBonus)
	fmt.Printf("  DepthBase      %7.3f  (%.3f)\n", res.Best.DepthBase, d.DepthBase)
	fmt.Printf("  Balance        %7.3f  (%.3f)\n", res.Best.Balance, d.Balance)
	fmt.Printf("  InvariantScale %7.3f  (%.3f)\n", res.Best.InvariantScale, d.InvariantScale)

	fmt.Printf("\naccepted improvements:\n")
	for _, s := range res.History {
		fmt.Printf("  iter %3d: %.2f\n", s.Iteration, s.Score)
	}
}
