// Command loopgen dumps the synthetic loop suite standing in for the
// paper's 211 SPEC95 FORTRAN innermost loops: per-loop statistics, an
// aggregate profile, and optionally full IR listings.
//
// Usage:
//
//	loopgen [-n loops] [-seed s] [-dump] [-stats]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func main() {
	n := flag.Int("n", 211, "number of loops")
	seed := flag.Int64("seed", loopgen.DefaultParams().Seed, "generator seed")
	dump := flag.Bool("dump", false, "print full IR for every loop")
	stats := flag.Bool("stats", true, "print the aggregate profile")
	flag.Parse()

	loops := loopgen.Generate(loopgen.Params{N: *n, Seed: *seed})
	cfg := machine.Ideal16()

	byKind := map[string]int{}
	totalOps, totalRegs, totalMem := 0, 0, 0
	minOps, maxOps := 1<<30, 0
	recBound := 0
	fmt.Printf("%-26s %5s %5s %5s %7s %7s\n", "loop", "ops", "regs", "mem", "RecMII", "ResMII")
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		rec := g.RecMII()
		res := ddg.ResMII(len(l.Body.Ops), cfg.Width)
		mem := countMem(l)
		fmt.Printf("%-26s %5d %5d %5d %7d %7d\n", l.Name, len(l.Body.Ops), len(l.Body.Registers()), mem, rec, res)
		if *dump {
			fmt.Print(l.Body)
		}
		parts := strings.Split(l.Name, ".")
		byKind[parts[len(parts)-1]]++
		totalOps += len(l.Body.Ops)
		totalRegs += len(l.Body.Registers())
		totalMem += mem
		if len(l.Body.Ops) < minOps {
			minOps = len(l.Body.Ops)
		}
		if len(l.Body.Ops) > maxOps {
			maxOps = len(l.Body.Ops)
		}
		if rec > res {
			recBound++
		}
	}
	if *stats {
		fmt.Printf("\n%d loops; ops min/mean/max = %d/%.1f/%d; %.1f registers and %.1f memory refs per loop\n",
			len(loops), minOps, float64(totalOps)/float64(len(loops)), maxOps,
			float64(totalRegs)/float64(len(loops)), float64(totalMem)/float64(len(loops)))
		fmt.Printf("%d loops (%.0f%%) are recurrence-bound on the ideal machine\n",
			recBound, 100*float64(recBound)/float64(len(loops)))
		fmt.Println("archetype mix:")
		for _, a := range []string{"triad", "dot", "stencil", "shared", "butterfly", "intkernel", "mixed", "firstorder", "memrec", "serial"} {
			fmt.Printf("  %-11s %4d\n", a, byKind[a])
		}
	}
}

func countMem(l *ir.Loop) int {
	n := 0
	for _, op := range l.Body.Ops {
		if op.Mem != nil {
			n++
		}
	}
	return n
}
