package main

// swpc's client mode: -server posts the loop to a running swpd over the
// versioned /v1/ surface instead of compiling in-process, speaking either
// codec (-wire json or binary). The binary path exercises the exact frame
// layout the daemon's own differential tests pin, so the smoke script can
// assert the two codecs agree end to end from a real client.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/loopgen"
	"repro/internal/wire"
)

// runRemote compiles one loop through a remote swpd and prints a summary
// in the same shape as the in-process report. With peers set, the client
// builds the same consistent-hash ring the fleet uses and posts straight
// to the replica owning the request fingerprint — the gateway hop
// skipped, warm-state locality kept.
func runRemote(serverURL, peers, codec, file, partName, modelName string, n, loopIdx, clusters int, refined bool) error {
	req := &wire.CompileRequest{
		Machine:     wire.MachineSpec{Clusters: clusters, CopyModel: modelName},
		Partitioner: partName,
		Refine:      refined,
	}
	if clusters <= 1 {
		req.Machine = wire.MachineSpec{}
	}
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		req.Name, req.Source = file, string(src)
	} else {
		if loopIdx < 0 {
			loopIdx = 0
		}
		loops := loopgen.Generate(loopgen.Params{N: n, Seed: loopgen.DefaultParams().Seed})
		if loopIdx >= len(loops) {
			return fmt.Errorf("loop %d out of range (suite has %d)", loopIdx, len(loops))
		}
		req.Name, req.Source = loops[loopIdx].Name, loops[loopIdx].Body.String()
	}

	if peers != "" {
		list := strings.Split(peers, ",")
		for i := range list {
			list[i] = strings.TrimRight(strings.TrimSpace(list[i]), "/")
		}
		ring := cluster.NewRing(list, 0)
		owner := ring.Owner(cluster.RouteKey(req))
		if owner == "" {
			return fmt.Errorf("-peers %q names no usable replica", peers)
		}
		fmt.Printf("ring: %d replicas, owner %s\n", ring.Len(), owner)
		serverURL = owner
	}

	var resp *wire.CompileResponse
	var err error
	started := time.Now()
	switch codec {
	case "json":
		resp, err = postCompileJSON(serverURL, req)
	case "binary", "bin":
		resp, err = postCompileBinary(serverURL, req)
	default:
		return fmt.Errorf("unknown wire codec %q (want json or binary)", codec)
	}
	if err != nil {
		return err
	}
	rtt := time.Since(started)

	fmt.Printf("loop %s on %s via %s (partitioner %s, %s codec)\n",
		resp.Name, resp.Machine, serverURL, resp.Partitioner, codec)
	fmt.Printf("  ideal II=%d   clustered II=%d   degradation=%.0f%%\n",
		resp.IdealII, resp.PartII, resp.Degradation-100)
	fmt.Printf("  kernel copies=%d  spills=%d  schedule rows=%d\n",
		resp.KernelCopies, resp.Spills, len(resp.Schedule))
	if resp.CacheHit {
		fmt.Printf("  cache hit (%s tier)\n", resp.CacheTier)
	}
	fmt.Printf("  round trip %s\n", rtt.Round(time.Microsecond))
	return nil
}

func postCompileJSON(serverURL string, req *wire.CompileRequest) (*wire.CompileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hresp, err := http.Post(serverURL+"/v1/compile", wire.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var e wire.ErrorResponse
		if json.NewDecoder(hresp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %d: %s", hresp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("server: status %d", hresp.StatusCode)
	}
	var out wire.CompileResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &out, nil
}

func postCompileBinary(serverURL string, req *wire.CompileRequest) (*wire.CompileResponse, error) {
	frame := wire.AppendCompileRequest(nil, req)
	hreq, err := http.NewRequest(http.MethodPost, serverURL+"/v1/compile", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", wire.ContentTypeBinary)
	hreq.Header.Set("Accept", wire.ContentTypeBinary)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	dec, err := wire.DecodeResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("decoding binary response (status %d): %w", hresp.StatusCode, err)
	}
	if dec.Err != nil {
		return nil, fmt.Errorf("server: %d: %s", dec.Code, dec.Err.Error)
	}
	if dec.Compile == nil {
		return nil, fmt.Errorf("unexpected frame kind in response (status %d)", hresp.StatusCode)
	}
	return dec.Compile, nil
}
