// Command swpc compiles loops from the synthetic suite through the full
// partitioning pipeline and reports per-loop detail: the ideal and
// clustered kernels, the register component graph partition, copy counts,
// per-bank pressure and the initiation intervals.
//
// Usage:
//
//	swpc [-n suiteSize] [-loop index] [-clusters n] [-model embedded|copyunit]
//	     [-partitioner rcg|bug|roundrobin|random|single] [-dump] [-worst k]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/exper"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swpc: ")
	n := flag.Int("n", 211, "suite size")
	loopIdx := flag.Int("loop", -1, "compile only this loop index")
	clusters := flag.Int("clusters", 4, "cluster count (2, 4 or 8)")
	modelName := flag.String("model", "embedded", "copy model: embedded or copyunit")
	partName := flag.String("partitioner", "rcg", "rcg, bug, roundrobin, random or single")
	dump := flag.Bool("dump", false, "dump IR, partition and kernels")
	worst := flag.Int("worst", 0, "report the k worst-degrading loops")
	breakdown := flag.Bool("breakdown", false, "report per-archetype aggregates")
	file := flag.String("file", "", "compile a loop parsed from this file instead of the suite")
	refined := flag.Bool("refined", false, "apply iterative partition refinement (with -loop or -file)")
	machineFile := flag.String("machine", "", "target a machine parsed from this description file")
	emit := flag.Bool("emit", false, "print the final pipelined machine code (with -loop or -file)")
	flag.Parse()

	var cfg *machine.Config
	if *machineFile != "" {
		src, err := os.ReadFile(*machineFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err = machine.Parse(string(src))
		if err != nil {
			log.Fatal(err)
		}
	} else {
		model := machine.Embedded
		switch *modelName {
		case "embedded":
		case "copyunit":
			model = machine.CopyUnit
		default:
			log.Fatalf("unknown model %q", *modelName)
		}
		var err error
		cfg, err = machine.Clustered16(*clusters, model)
		if err != nil {
			log.Fatal(err)
		}
	}
	part := pickPartitioner(*partName)

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		loop, err := ir.ParseLoop(*file, string(src))
		if err != nil {
			log.Fatal(err)
		}
		compileAndReport(loop, cfg, part, *dump, *refined, *emit)
		return
	}

	loops := loopgen.Generate(loopgen.Params{N: *n, Seed: loopgen.DefaultParams().Seed})

	if *loopIdx >= 0 {
		if *loopIdx >= len(loops) {
			log.Fatalf("loop %d out of range (suite has %d)", *loopIdx, len(loops))
		}
		compileAndReport(loops[*loopIdx], cfg, part, *dump, *refined, *emit)
		return
	}

	results := exper.RunSuite(loops, []*machine.Config{cfg}, exper.Options{
		Codegen: codegen.Options{Partitioner: part},
	})
	r := results[0]
	for _, err := range r.Errors() {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
	}
	fmt.Print(exper.Summary(results))
	if *breakdown {
		fmt.Println()
		fmt.Print(exper.FormatBreakdown(r))
	}
	if *worst > 0 {
		fmt.Printf("\nworst %d loops by degradation:\n", *worst)
		fmt.Printf("%-22s %5s %7s %7s %7s %7s %7s\n", "loop", "ops", "idealII", "partII", "deg%", "copies", "press")
		for i, idx := range r.SortedByDegradation() {
			if i >= *worst {
				break
			}
			o := r.Outcomes[idx]
			fmt.Printf("%-22s %5d %7d %7d %6.0f%% %7d %7d\n",
				o.Loop, o.Ops, o.IdealII, o.PartII, o.Degradation-100, o.KernelCopies, o.MaxPressure)
		}
	}
}

func pickPartitioner(name string) partition.Partitioner {
	switch name {
	case "rcg":
		return partition.Greedy{}
	case "bug":
		return partition.BUG{}
	case "roundrobin":
		return partition.RoundRobin{}
	case "random":
		return partition.Random{Seed: 1}
	case "single":
		return partition.SingleBank{}
	default:
		log.Fatalf("unknown partitioner %q", name)
		return nil
	}
}

func compileAndReport(loop *ir.Loop, cfg *machine.Config, part partition.Partitioner, dump, refined, emit bool) {
	var res *codegen.Result
	var err error
	if refined {
		var stats *codegen.RefineStats
		res, stats, err = codegen.CompileRefined(loop, cfg, codegen.Options{Partitioner: part}, codegen.RefineOptions{})
		if err == nil {
			fmt.Printf("refinement: %d rounds, %d/%d moves kept, II %d -> %d\n",
				stats.Rounds, stats.MovesKept, stats.MovesTried, stats.StartII, stats.FinalII)
		}
	} else {
		res, err = codegen.Compile(loop, cfg, codegen.Options{Partitioner: part})
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loop %s on %s (partitioner %s)\n", loop.Name, cfg.Name, res.PartitionerName)
	fmt.Printf("  ops=%d  kernel copies=%d  invariant copies=%d\n",
		len(loop.Body.Ops), res.Copies.KernelCopies, res.Copies.InvariantCopies)
	fmt.Printf("  ideal II=%d (IPC %.2f)   clustered II=%d (IPC %.2f)   degradation=%.0f%%\n",
		res.IdealII(), res.IdealIPC(), res.PartII(), res.ClusteredIPC(), res.Degradation()-100)
	fmt.Printf("  ideal RecMII=%d  clustered RecMII=%d\n", res.IdealGraph.RecMII(), res.PartGraph.RecMII())
	fmt.Printf("  bank sizes: %v  spills=%d  max pressure=%d\n",
		res.Assignment.Counts(), res.Spills(), res.MaxPressure())
	if emit {
		listing, err := codegen.Emit(res, codegen.EmitOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(listing)
	}
	if dump {
		fmt.Printf("\noriginal body:\n%s", loop.Body)
		fmt.Printf("\npartition:\n")
		for _, r := range loop.Body.Registers() {
			fmt.Printf("  %s -> bank %d\n", r, res.Assignment.Bank(r))
		}
		fmt.Printf("\nclustered body (with copies):\n%s", res.Copies.Body)
		fmt.Printf("\nideal kernel (II=%d):\n%s", res.IdealII(), res.IdealSched.Kernel(loop.Body.Ops))
		fmt.Printf("\nclustered kernel (II=%d):\n%s", res.PartII(), res.PartSched.Kernel(res.Copies.Body.Ops))
	}
}
