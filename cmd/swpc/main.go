// Command swpc compiles loops from the synthetic suite through the full
// partitioning pipeline and reports per-loop detail: the ideal and
// clustered kernels, the register component graph partition, copy counts,
// per-bank pressure and the initiation intervals.
//
// Usage:
//
//	swpc [-n suiteSize] [-loop index] [-clusters n] [-model embedded|copyunit]
//	     [-partitioner rcg|portfolio|bug|roundrobin|random|single|exact] [-dump] [-worst k]
//	     [-cache] [-trace out.json] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	     [-server http://host:8080 [-wire json|binary]]
//
// -server switches swpc into client mode: the loop is POSTed to a running
// swpd's /v1/compile in the chosen codec (-wire) and the daemon's answer
// is reported instead of compiling in-process.
//
// -trace writes the pipeline's JSON event stream (see internal/trace) and
// prints the per-stage wall-time/counter breakdown after the report;
// -cache memoizes dependence graphs and modulo schedules by content
// fingerprint (see internal/cache) and reports the hit rate;
// -cpuprofile/-memprofile write standard pprof profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/exper"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/profiling"
	"repro/internal/trace"
	"repro/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swpc: ")
	n := flag.Int("n", 211, "suite size")
	loopIdx := flag.Int("loop", -1, "compile only this loop index")
	clusters := flag.Int("clusters", 4, "cluster count (2, 4 or 8)")
	modelName := flag.String("model", "embedded", "copy model: embedded or copyunit")
	partName := flag.String("partitioner", "rcg", "rcg, portfolio, bug, roundrobin, random, single or exact")
	dump := flag.Bool("dump", false, "dump IR, partition and kernels")
	worst := flag.Int("worst", 0, "report the k worst-degrading loops")
	breakdown := flag.Bool("breakdown", false, "report per-archetype aggregates")
	file := flag.String("file", "", "compile a loop parsed from this file instead of the suite")
	refined := flag.Bool("refined", false, "apply iterative partition refinement (with -loop or -file)")
	machineFile := flag.String("machine", "", "target a machine parsed from this description file")
	emit := flag.Bool("emit", false, "print the final pipelined machine code (with -loop or -file)")
	exactBudget := flag.Duration("exact-budget", 0, "enable the exact-solver arms with this wall-clock ceiling per stage (0 = off)")
	exactNodes := flag.Int64("exact-nodes", 0, "deterministic search-node budget for the exact arms (0 = solver defaults)")
	adaptive := flag.Bool("adaptive", false, "enable the feature-conditioned adaptive-weights arm (implies -partitioner portfolio when rcg)")
	weightsFile := flag.String("weights", "", "override the partitioner weights with this JSON file (see internal/tune.LoadWeights)")
	useCache := flag.Bool("cache", false, "memoize dependence graphs and modulo schedules by content fingerprint")
	cacheBudget := flag.String("cache-budget", "", "byte budget for the compile cache, e.g. 64MiB (implies -cache; empty or 0 = unlimited, none = retain nothing)")
	cacheDir := flag.String("cache-dir", "", "directory for a persistent disk cache tier behind the in-memory cache (implies -cache; empty = memory only)")
	cacheDiskBudget := flag.String("cache-disk-budget", "", "byte budget for the disk cache tier, e.g. 256MiB (empty or 0 = unlimited)")
	serverURL := flag.String("server", "", "compile via a running swpd at this base URL instead of in-process")
	peersFlag := flag.String("peers", "", "comma-separated swpd replica base URLs: client-side consistent-hash ring mode, posting straight to the ring owner (no gateway hop; implies client mode)")
	wireName := flag.String("wire", "json", "client codec with -server: json or binary")
	traceOut := flag.String("trace", "", "write the pipeline's JSON trace event stream to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *serverURL != "" || *peersFlag != "" {
		if err := runRemote(*serverURL, *peersFlag, *wireName, *file, *partName, *modelName,
			*n, *loopIdx, *clusters, *refined); err != nil {
			log.Fatal(err)
		}
		return
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatal(err)
	}
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New()
	}
	var c *cache.Cache
	if *useCache || *cacheBudget != "" || *cacheDir != "" {
		budget, err := cache.ParseBudget(*cacheBudget)
		if err != nil {
			log.Fatal(err)
		}
		c = cache.NewBounded(budget)
	}
	var disk *cache.Disk
	if *cacheDir != "" {
		diskBudget, err := cache.ParseBudget(*cacheDiskBudget)
		if err != nil {
			log.Fatal(err)
		}
		disk, err = cache.OpenDisk(*cacheDir, diskBudget)
		if err != nil {
			log.Fatal(err)
		}
		c.AttachDisk(disk)
	}

	base := codegen.Options{Tracer: tr, Cache: c, ExactBudget: *exactBudget, ExactNodes: *exactNodes}
	if *adaptive {
		base.Adaptive = features.Default()
		if *partName == "rcg" {
			*partName = "portfolio" // the arm engages only on portfolio-capable partitioners
		}
	}
	if *weightsFile != "" {
		w, err := tune.LoadWeights(*weightsFile)
		if err != nil {
			log.Fatal(err)
		}
		base.Weights = w
	}

	runErr := run(*n, *loopIdx, *clusters, *modelName, *partName, *machineFile, *file,
		*dump, *worst, *breakdown, *refined, *emit, base)

	if disk != nil {
		disk.Close() // flush write-behinds so the stats below are final
	}
	if c.Enabled() {
		fmt.Printf("cache: %s\n", c.Stats())
	}

	if tr != nil {
		if err := writeTrace(*traceOut, tr); err != nil && runErr == nil {
			runErr = err
		}
	}
	stopCPU()
	if err := profiling.WriteHeap(*memprofile); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteJSON(f)
}

func run(n, loopIdx, clusters int, modelName, partName, machineFile, file string,
	dump bool, worst int, breakdown, refined, emit bool, base codegen.Options) error {
	var cfg *machine.Config
	if machineFile != "" {
		src, err := os.ReadFile(machineFile)
		if err != nil {
			return err
		}
		cfg, err = machine.Parse(string(src))
		if err != nil {
			return err
		}
	} else {
		model := machine.Embedded
		switch modelName {
		case "embedded":
		case "copyunit":
			model = machine.CopyUnit
		default:
			return fmt.Errorf("unknown model %q", modelName)
		}
		var err error
		cfg, err = machine.Clustered16(clusters, model)
		if err != nil {
			return err
		}
	}
	part, err := pickPartitioner(partName)
	if err != nil {
		return err
	}

	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		loop, err := ir.ParseLoop(file, string(src))
		if err != nil {
			return err
		}
		return compileAndReport(loop, cfg, part, dump, refined, emit, base)
	}

	loops := loopgen.Generate(loopgen.Params{N: n, Seed: loopgen.DefaultParams().Seed})

	if loopIdx >= 0 {
		if loopIdx >= len(loops) {
			return fmt.Errorf("loop %d out of range (suite has %d)", loopIdx, len(loops))
		}
		return compileAndReport(loops[loopIdx], cfg, part, dump, refined, emit, base)
	}

	suiteOpt := base
	suiteOpt.Partitioner = part
	results := exper.RunSuite(loops, []*machine.Config{cfg}, exper.Options{
		Codegen: suiteOpt,
		Tracer:  base.Tracer,
	})
	r := results[0]
	for _, err := range r.Errors() {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
	}
	fmt.Print(exper.SummaryWithTrace(results, base.Tracer))
	if breakdown {
		fmt.Println()
		fmt.Print(exper.FormatBreakdown(r))
	}
	if worst > 0 {
		fmt.Printf("\nworst %d loops by degradation:\n", worst)
		fmt.Printf("%-22s %5s %7s %7s %7s %7s %7s\n", "loop", "ops", "idealII", "partII", "deg%", "copies", "press")
		for i, idx := range r.SortedByDegradation() {
			if i >= worst {
				break
			}
			o := r.Outcomes[idx]
			fmt.Printf("%-22s %5d %7d %7d %6.0f%% %7d %7d\n",
				o.Loop, o.Ops, o.IdealII, o.PartII, o.Degradation-100, o.KernelCopies, o.MaxPressure)
		}
	}
	return nil
}

func pickPartitioner(name string) (partition.Partitioner, error) {
	switch name {
	case "rcg":
		return partition.Greedy{}, nil
	case "portfolio":
		return partition.Portfolio{}, nil
	case "bug":
		return partition.BUG{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "random":
		return partition.Random{Seed: 1}, nil
	case "single":
		return partition.SingleBank{}, nil
	case "exact":
		return partition.Exact{}, nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q", name)
	}
}

func compileAndReport(loop *ir.Loop, cfg *machine.Config, part partition.Partitioner,
	dump, refined, emit bool, base codegen.Options) error {
	var res *codegen.Result
	var err error
	opt := base
	opt.Partitioner = part
	if refined {
		var stats *codegen.RefineStats
		res, stats, err = codegen.CompileRefined(context.Background(), loop, cfg, opt)
		if err == nil {
			fmt.Printf("refinement: %d rounds, %d/%d moves kept, II %d -> %d\n",
				stats.Rounds, stats.MovesKept, stats.MovesTried, stats.StartII, stats.FinalII)
		}
	} else {
		res, err = codegen.Compile(context.Background(), loop, cfg, opt)
	}
	if err != nil {
		return err
	}
	method := res.PartitionerName
	if res.PortfolioVariant != "" {
		method += " [" + res.PortfolioVariant + "]"
	}
	fmt.Printf("loop %s on %s (partitioner %s)\n", loop.Name, cfg.Name, method)
	fmt.Printf("  ops=%d  kernel copies=%d  invariant copies=%d\n",
		len(loop.Body.Ops), res.Copies.KernelCopies, res.Copies.InvariantCopies)
	fmt.Printf("  ideal II=%d (IPC %.2f)   clustered II=%d (IPC %.2f)   degradation=%.0f%%\n",
		res.IdealII(), res.IdealIPC(), res.PartII(), res.ClusteredIPC(), res.Degradation()-100)
	fmt.Printf("  ideal RecMII=%d  clustered RecMII=%d\n", res.IdealGraph.RecMII(), res.PartGraph.RecMII())
	fmt.Printf("  bank sizes: %v  spills=%d  max pressure=%d\n",
		res.Assignment.Counts(), res.Spills(), res.MaxPressure())
	if e := res.Exact; e != nil {
		status := "budget exhausted"
		if e.SchedProven {
			status = "proven optimal"
		}
		fmt.Printf("  exact: minII=%d heuristic II=%d final II=%d (%s, %d sched nodes)\n",
			e.MinII, e.HeuristicII, e.II, status, e.SchedNodes)
		if e.PartRan {
			fmt.Printf("  exact partition: proven=%v improved=%v won=%v (%d nodes)\n",
				e.PartProven, e.PartImproved, e.PartWon, e.PartNodes)
		}
	}
	if a := res.Adaptive; a != nil && a.Ran {
		match := "nearest"
		if a.ExactBucket {
			match = "exact"
		}
		fmt.Printf("  adaptive: bucket=%s (%s match) won=%v\n", a.Bucket, match, a.Won)
	}
	if emit {
		listing, err := codegen.Emit(res, codegen.EmitOptions{})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(listing)
	}
	if dump {
		fmt.Printf("\noriginal body:\n%s", loop.Body)
		fmt.Printf("\npartition:\n")
		for _, r := range loop.Body.Registers() {
			fmt.Printf("  %s -> bank %d\n", r, res.Assignment.Bank(r))
		}
		fmt.Printf("\nclustered body (with copies):\n%s", res.Copies.Body)
		fmt.Printf("\nideal kernel (II=%d):\n%s", res.IdealII(), res.IdealSched.Kernel(loop.Body.Ops))
		fmt.Printf("\nclustered kernel (II=%d):\n%s", res.PartII(), res.PartSched.Kernel(res.Copies.Body.Ops))
	}
	if base.Tracer != nil {
		fmt.Println()
		fmt.Print(base.Tracer.Summary())
	}
	return nil
}
