// Command swpgw is the thin cluster gateway: an swpd front end that
// compiles nothing itself and instead routes every /v1/compile and
// /v1/compile/batch request to the swpd replica owning its fingerprint
// on a consistent-hash ring (see internal/cluster). Batches are split by
// ring owner, fanned out concurrently, and merged back — request order
// for buffered responses, completion order for NDJSON streaming — so
// batch throughput scales with replica count.
//
//	swpd -addr :8081 &
//	swpd -addr :8082 &
//	swpgw -addr :8080 -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Clients talk to the gateway exactly as they would to one swpd: same
// endpoints, same codecs, byte-identical answers. /metrics exports the
// swpd_cluster_* routing counters; /healthz reports gateway liveness.
//
// swpgw is equivalent to `swpd -peers ... ` with an empty -self, minus
// the compile pipeline: it allocates no cache, no worker-pool compile
// state beyond the (idle) pool, and fails fast (502) when no replica is
// reachable. Replicas that should ALSO serve their own ring share run
// `swpd -peers ... -self <own-url>` instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	peers := flag.String("peers", "", "comma-separated swpd replica base URLs forming the ring (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the ring (0 = default 256)")
	peerProbe := flag.Duration("peer-probe", 2*time.Second, "active /healthz probe interval for ring peers (0 = passive health only)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request compile deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on request-supplied deadlines")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	flag.Parse()

	if *peers == "" {
		log.Fatal("swpgw: -peers is required (nothing to route to)")
	}
	list := strings.Split(*peers, ",")
	for i := range list {
		list[i] = strings.TrimRight(strings.TrimSpace(list[i]), "/")
	}
	rt := cluster.NewRouter(cluster.Config{Peers: list, Vnodes: *vnodes})
	rt.StartProbing(*peerProbe)

	scfg := server.Config{
		// The pool exists only for the (misconfigured) case of a request
		// arriving with a hop header; one worker keeps it inert.
		Workers:        1,
		QueueDepth:     1,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Cluster:        rt,
	}
	if !*quiet {
		scfg.Log = log.New(os.Stderr, "swpgw: ", log.LstdFlags|log.Lmicroseconds)
	}
	svc := server.New(scfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("swpgw listening on %s, routing %s", *addr, rt.Ring())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("swpgw: %s received, draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("swpgw: shutdown: %v", err)
		}
		svc.Close()
		log.Printf("swpgw: drained, bye")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "swpgw: serve: %v\n", err)
		os.Exit(1)
	}
}
