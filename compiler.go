package swp

import (
	"context"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Compiler is the configured, context-first entry point to the pipeline.
// A zero-option Compiler reproduces the paper's defaults exactly; options
// swap the partitioner, attach a cache or tracer, or retune the scheduler
// budget. A Compiler is immutable after New and safe for concurrent use —
// the swpd daemon keeps one per process and serves every request with it.
//
//	c := swp.New(swp.WithCache(swp.NewCache()))
//	res, err := c.Compile(ctx, loop, swp.Machine(4, swp.Embedded))
type Compiler struct {
	cfg codegen.Config
}

// Option configures a Compiler at construction time.
type Option func(*codegen.Config)

// New builds a Compiler from the paper's defaults plus the given options.
func New(opts ...Option) *Compiler {
	c := &Compiler{}
	for _, o := range opts {
		o(&c.cfg)
	}
	// A disk tier is useless without a memory tier in front of it; if the
	// caller asked for persistence but not for a cache, create one.
	if c.cfg.Disk != nil && c.cfg.Cache == nil {
		c.cfg.Cache = cache.New()
	}
	return c
}

// WithPartitioner replaces the default RCG greedy partitioner with one of
// the baselines (see Partitioners) or a custom implementation.
func WithPartitioner(p partition.Partitioner) Option {
	return func(c *codegen.Config) { c.Partitioner = p }
}

// WithCache attaches a content-addressed compile cache shared across calls
// (and, through Run, across loops and machines).
func WithCache(cc *Cache) Option {
	return func(c *codegen.Config) { c.Cache = cc }
}

// WithCacheBudget bounds the attached cache's estimated resident bytes,
// making it safe for unbounded uptime: cold entries are evicted with a
// CLOCK sweep once the budget is exceeded, while in-flight entries stay
// pinned so concurrent requests still compute each key exactly once.
// 0 (the default) leaves the cache unlimited; CacheBudgetZero retains
// nothing. Results are byte-identical at any budget — only recomputation
// frequency changes.
func WithCacheBudget(bytes int64) Option {
	return func(c *codegen.Config) { c.CacheBudget = bytes }
}

// Cache budget sentinels for WithCacheBudget, re-exported from
// internal/cache.
const (
	// CacheBudgetUnlimited disables eviction (the default).
	CacheBudgetUnlimited = cache.BudgetUnlimited
	// CacheBudgetZero retains nothing: every entry is evicted as soon as
	// the lookups sharing it return.
	CacheBudgetZero = cache.BudgetZero
)

// WithDiskCache attaches a persistent disk tier behind the compile cache
// (opened with OpenDiskCache), so schedules and bank assignments survive
// process restarts: a memory miss consults the verified on-disk record
// before recomputing, and fresh results are written behind. If no
// WithCache option accompanies it, New creates the memory tier
// automatically. Results are byte-identical with the tier on, cold or
// warm. A nil d is a no-op.
func WithDiskCache(d *DiskCache) Option {
	return func(c *codegen.Config) { c.Disk = d }
}

// WithIISeed attaches a cross-compile II-seed table: both scheduling
// stages start their II search from the II a previous structurally
// identical problem settled on instead of at the lower bound, cutting
// warm scheduling latency. Seeding never changes a schedule — by
// determinism the skipped candidates are exactly the ones that failed
// before — so results are byte-identical with or without it. A nil t is
// a no-op.
func WithIISeed(t *IISeedTable) Option {
	return func(c *codegen.Config) { c.IISeed = t }
}

// WithTracer attaches a tracer that records per-stage spans and counters
// for every compilation the Compiler performs.
func WithTracer(t *Tracer) Option {
	return func(c *codegen.Config) { c.Tracer = t }
}

// WithBudgetRatio sets the modulo scheduler's placement budget to
// ratio x (number of operations) per candidate II; <=0 keeps the paper's
// default. Larger ratios try harder before giving up on an II.
func WithBudgetRatio(ratio int) Option {
	return func(c *codegen.Config) { c.BudgetRatio = ratio }
}

// WithWeights overrides the partitioner's heuristic weights (for example
// with the result of TuneWeights).
func WithWeights(w *core.Weights) Option {
	return func(c *codegen.Config) { c.Weights = w }
}

// WithWorkers bounds Run's parallelism; <=0 uses GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *codegen.Config) { c.Workers = n }
}

// WithSkipAlloc disables step 5's per-bank register coloring — the II
// study configuration the paper's tables use.
func WithSkipAlloc() Option {
	return func(c *codegen.Config) { c.SkipAlloc = true }
}

// WithExactBudget enables the exact-solver arms (branch-and-bound bank
// assignment in the portfolio, plus a provably-minimal-II re-search of
// the winning schedule) with the given wall-clock ceiling per stage. Both
// arms are anytime: on expiry the heuristic result stands, so the arm is
// never worse than the default pipeline. The compiled Result carries the
// optimality-gap telemetry in Result.Exact. d <= 0 (the default) leaves
// the arms off and the pipeline untouched.
func WithExactBudget(d time.Duration) Option {
	return func(c *codegen.Config) { c.ExactBudget = d }
}

// WithAdaptiveWeights enables the feature-conditioned adaptive-weights
// arm with the checked-in trained table (features.Default, regenerated by
// cmd/tune with a fixed seed): portfolio partitioning appends one more
// candidate partitioned under the weight vector predicted for the loop's
// feature bucket. The candidate must strictly win the downstream
// (spills, pressure, II) scoring to be adopted, so the arm is never worse
// than the fixed-weight greedy. The arm engages only on portfolio-capable
// partitioners (see Partitioners); combine with
// WithPartitioner(partition.Portfolio{}) when the default single-shot
// greedy is configured. Adoption telemetry lands in Result.Adaptive.
func WithAdaptiveWeights() Option {
	return func(c *codegen.Config) { c.Adaptive = features.Default() }
}

// WithExactNodes caps the exact arms' deterministic search-node budgets
// (0 keeps the solver defaults). Results are a pure function of the node
// budget; the wall-clock budget is only a safety net, so fixing this
// makes exact-arm runs reproducible across machines.
func WithExactNodes(n int64) Option {
	return func(c *codegen.Config) { c.ExactNodes = n }
}

// Config returns a copy of the Compiler's resolved pipeline configuration.
func (c *Compiler) Config() codegen.Config { return c.cfg }

// Compile runs the full five-step pipeline on one loop. ctx cancellation
// and deadlines abort the compile at the next stage or scheduler-iteration
// boundary; the returned error then wraps ctx.Err() and names the stage
// reached (see codegen.Stage).
func (c *Compiler) Compile(ctx context.Context, l *ir.Loop, cfg *machine.Config) (*codegen.Result, error) {
	return codegen.Compile(ctx, l, cfg, c.cfg)
}

// CompileBlock runs the straight-line variant (list scheduling instead of
// modulo scheduling) on a block wrapped in a Loop container.
func (c *Compiler) CompileBlock(ctx context.Context, l *ir.Loop, cfg *machine.Config) (*codegen.BlockResult, error) {
	return codegen.CompileBlock(ctx, l, cfg, c.cfg)
}

// CompileFunction partitions a whole function's registers at once and
// schedules every block under the shared assignment.
func (c *Compiler) CompileFunction(ctx context.Context, f *ir.Function, cfg *machine.Config) (*codegen.FunctionResult, error) {
	return codegen.CompileFunction(ctx, f, cfg, c.cfg)
}

// CompileRefined runs the pipeline and then iteratively improves the
// partition while the clustered II exceeds the ideal (Section 6.3's
// deferred iteration). Round and trial budgets come from the Config's
// RefineRounds/RefineTrials (defaults 4 and 24).
func (c *Compiler) CompileRefined(ctx context.Context, l *ir.Loop, cfg *machine.Config) (*codegen.Result, *codegen.RefineStats, error) {
	return codegen.CompileRefined(ctx, l, cfg, c.cfg)
}

// Run compiles every loop on every machine over a bounded worker pool and
// returns one ConfigResult per machine. Cancelling ctx stops the run
// promptly and returns the partial results with a non-nil error.
func (c *Compiler) Run(ctx context.Context, loops []*ir.Loop, cfgs []*machine.Config) ([]*exper.ConfigResult, error) {
	return exper.Run(ctx, loops, cfgs, c.cfg)
}

// Cache is the content-addressed compile cache; see NewCache.
type Cache = cache.Cache

// NewCache returns an empty compile cache for WithCache.
func NewCache() *Cache { return cache.New() }

// DiskCache is the persistent second cache tier; see OpenDiskCache.
type DiskCache = cache.Disk

// OpenDiskCache opens (creating if necessary) a disk-backed cache tier
// rooted at dir for WithDiskCache. budgetBytes bounds the directory's
// record bytes with oldest-first eviction; <=0 means unlimited. The tier
// is crash-safe — records are written atomically, half-written leftovers
// are swept on open, and any record that fails its checksum on read is
// quarantined and recomputed, never trusted. Call Close on the returned
// tier at shutdown to flush pending write-behinds.
func OpenDiskCache(dir string, budgetBytes int64) (*DiskCache, error) {
	return cache.OpenDisk(dir, budgetBytes)
}

// IISeedTable is the bounded cross-compile II-seed memo; see NewIISeed.
type IISeedTable = modulo.SeedTable

// NewIISeed returns an empty II-seed table for WithIISeed. capacity
// bounds the entry count; <=0 selects the default (64Ki entries).
func NewIISeed(capacity int) *IISeedTable { return modulo.NewSeedTable(capacity) }

// Tracer records per-stage spans and counters; see NewTracer.
type Tracer = trace.Tracer

// NewTracer returns an enabled tracer for WithTracer.
func NewTracer() *Tracer { return trace.New() }
