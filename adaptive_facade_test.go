package swp

import (
	"context"
	"testing"

	"repro/internal/partition"
)

// TestWithAdaptiveWeightsNeverWorse exercises the facade option end to
// end: an adaptive Compiler on portfolio partitioning must meet or beat
// the default Compiler's clustered II on every loop of a suite slice, and
// any compile whose report says the arm won must name "adaptive" as the
// portfolio variant.
func TestWithAdaptiveWeightsNeverWorse(t *testing.T) {
	loops := SmallSuite(30)
	cfg := Machine(4, Embedded)
	base := New(WithSkipAlloc())
	ad := New(WithSkipAlloc(), WithAdaptiveWeights(), WithPartitioner(partition.Portfolio{}))
	if ad.Config().Adaptive == nil {
		t.Fatal("WithAdaptiveWeights did not attach the table")
	}
	ran := 0
	for _, l := range loops {
		b, err := base.Compile(context.Background(), l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Compile(context.Background(), l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.PartII() > b.PartII() {
			t.Fatalf("%s: adaptive II %d worse than default %d", l.Name, a.PartII(), b.PartII())
		}
		if rep := a.Adaptive; rep != nil {
			ran++
			if rep.Won != (a.PortfolioVariant == "adaptive") {
				t.Fatalf("%s: report Won=%v but variant %q", l.Name, rep.Won, a.PortfolioVariant)
			}
		}
	}
	if ran == 0 {
		t.Fatal("adaptive arm never engaged on the suite slice")
	}
}
