package swp

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/exper"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/regalloc"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each table/figure benchmark compiles the full
// 211-loop suite for the relevant machines and reports the paper's metric
// via b.ReportMetric, so `go test -bench . -benchmem` both times the
// pipeline and reproduces the numbers recorded in EXPERIMENTS.md.

var (
	suiteOnce sync.Once
	suite     []*ir.Loop
)

func paperSuite() []*ir.Loop {
	suiteOnce.Do(func() { suite = loopgen.Suite() })
	return suite
}

func runPaper(b *testing.B, cfgs []*machine.Config) []*exper.ConfigResult {
	b.Helper()
	results := exper.RunSuite(paperSuite(), cfgs, exper.Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	for _, r := range results {
		if errs := r.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
	return results
}

// BenchmarkTable1IPC regenerates Table 1: IPC of clustered software
// pipelines. Reported metrics: ideal_ipc plus one clustered-IPC metric per
// machine (the paper's row "Clustered": 9.3/6.2/8.4/7.5/6.9/6.8; ideal 8.6).
func BenchmarkTable1IPC(b *testing.B) {
	cfgs := machine.PaperConfigs()
	for i := 0; i < b.N; i++ {
		results := runPaper(b, cfgs)
		b.ReportMetric(results[0].MeanIdealIPC(), "ideal_ipc")
		names := []string{"ipc_2cl_emb", "ipc_2cl_cu", "ipc_4cl_emb", "ipc_4cl_cu", "ipc_8cl_emb", "ipc_8cl_cu"}
		for ci, r := range results {
			b.ReportMetric(r.MeanClusterIPC(), names[ci])
		}
	}
}

// BenchmarkTable2Degradation regenerates Table 2: normalized degradation
// over ideal schedules (paper arithmetic means: 111/150/126/122/162/133;
// harmonic: 109/127/119/115/138/124).
func BenchmarkTable2Degradation(b *testing.B) {
	cfgs := machine.PaperConfigs()
	for i := 0; i < b.N; i++ {
		results := runPaper(b, cfgs)
		arith := []string{"arith_2cl_emb", "arith_2cl_cu", "arith_4cl_emb", "arith_4cl_cu", "arith_8cl_emb", "arith_8cl_cu"}
		harm := []string{"harm_2cl_emb", "harm_2cl_cu", "harm_4cl_emb", "harm_4cl_cu", "harm_8cl_emb", "harm_8cl_cu"}
		for ci, r := range results {
			a, h := r.MeanDegradation()
			b.ReportMetric(a, arith[ci])
			b.ReportMetric(h, harm[ci])
		}
	}
}

// benchFigure regenerates one of Figures 5-7: the share of loops with no
// degradation at all (the histograms' 0.00% bucket, the paper's headline
// comparison with Nystrom and Eichenberger) for both copy models at the
// given cluster count.
func benchFigure(b *testing.B, clusters int) {
	cfgs := []*machine.Config{
		machine.MustClustered16(clusters, machine.Embedded),
		machine.MustClustered16(clusters, machine.CopyUnit),
	}
	for i := 0; i < b.N; i++ {
		results := runPaper(b, cfgs)
		b.ReportMetric(results[0].ZeroDegradationPercent(), "zero_pct_embedded")
		b.ReportMetric(results[1].ZeroDegradationPercent(), "zero_pct_copyunit")
		// The full histograms are printed by cmd/experiments; here the
		// tail mass (>=50% degradation) summarizes the distribution shape.
		for ri, r := range results {
			tail := 0.0
			for _, d := range r.Degradations() {
				if d >= 50 {
					tail++
				}
			}
			tail = 100 * tail / float64(len(r.Degradations()))
			if ri == 0 {
				b.ReportMetric(tail, "tail50_pct_embedded")
			} else {
				b.ReportMetric(tail, "tail50_pct_copyunit")
			}
		}
	}
}

// BenchmarkFigure5Histogram: 2 clusters of 8 units (paper: ~60% of loops
// at zero degradation).
func BenchmarkFigure5Histogram(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFigure6Histogram: 4 clusters of 4 units (paper: ~50%).
func BenchmarkFigure6Histogram(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFigure7Histogram: 8 clusters of 2 units (paper: ~40%).
func BenchmarkFigure7Histogram(b *testing.B) { benchFigure(b, 8) }

// BenchmarkPartitionerComparison is the Section 3/6.3 ablation: the RCG
// greedy heuristic against Ellis's BUG and the blind baselines on the
// 4-cluster embedded machine (arithmetic mean degradation each).
func BenchmarkPartitionerComparison(b *testing.B) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	methods := []partition.Partitioner{
		partition.Greedy{}, partition.BUG{}, partition.UAS{}, partition.RoundRobin{}, partition.SingleBank{},
	}
	metrics := []string{"deg_rcg", "deg_bug", "deg_uas", "deg_roundrobin", "deg_singlebank"}
	for i := 0; i < b.N; i++ {
		for mi, m := range methods {
			results := exper.RunSuite(paperSuite(), []*machine.Config{cfg}, exper.Options{
				Codegen: codegen.Options{Partitioner: m, SkipAlloc: true},
			})
			a, _ := results[0].MeanDegradation()
			b.ReportMetric(a, metrics[mi])
		}
	}
}

// BenchmarkWeightsAblation measures what each RCG weighting ingredient
// contributes on the 4-cluster embedded machine: the full heuristic, no
// anti-affinity edges, no load balancing, and no invariant-edge scaling.
func BenchmarkWeightsAblation(b *testing.B) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	full := core.DefaultWeights()
	noAnti := full
	noAnti.AntiAffinity = 0
	noBalance := full
	noBalance.Balance = 0
	noInvScale := full
	noInvScale.InvariantScale = 1
	variants := []struct {
		name string
		w    core.Weights
	}{
		{"deg_full", full},
		{"deg_no_antiaffinity", noAnti},
		{"deg_no_balance", noBalance},
		{"deg_no_invariant_scaling", noInvScale},
	}
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			w := v.w
			results := exper.RunSuite(paperSuite(), []*machine.Config{cfg}, exper.Options{
				Codegen: codegen.Options{Weights: &w, SkipAlloc: true},
			})
			a, _ := results[0].MeanDegradation()
			b.ReportMetric(a, v.name)
		}
	}
}

// BenchmarkAdaptiveWeights is the PR-10 gate: the full 211-loop suite on
// the 2-, 4- and 8-cluster embedded machines, fixed-weight greedy vs the
// feature-conditioned adaptive portfolio. Reported metrics:
// adaptive_never_worse is 1 when no (loop, machine) cell degraded versus
// greedy (the floor bench.sh enforces), adaptive_ran / adaptive_wins
// count the cells where the arm proposed and where its candidate was
// adopted, and deg_greedy / deg_adaptive are the mean degradations.
func BenchmarkAdaptiveWeights(b *testing.B) {
	cfgs := []*machine.Config{
		machine.MustClustered16(2, machine.Embedded),
		machine.MustClustered16(4, machine.Embedded),
		machine.MustClustered16(8, machine.Embedded),
	}
	for i := 0; i < b.N; i++ {
		greedy := exper.RunSuite(paperSuite(), cfgs, exper.Options{
			Codegen: codegen.Options{SkipAlloc: true},
		})
		adaptive := exper.RunSuite(paperSuite(), cfgs, exper.Options{
			Codegen: codegen.Options{
				Partitioner: partition.Portfolio{},
				Adaptive:    features.Default(),
				SkipAlloc:   true,
			},
		})
		neverWorse, ran, wins := 1.0, 0, 0
		var degGreedy, degAdaptive float64
		for ci := range cfgs {
			if errs := greedy[ci].Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			if errs := adaptive[ci].Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			ga, _ := greedy[ci].MeanDegradation()
			aa, _ := adaptive[ci].MeanDegradation()
			degGreedy += ga
			degAdaptive += aa
			for li := range adaptive[ci].Outcomes {
				g, a := &greedy[ci].Outcomes[li], &adaptive[ci].Outcomes[li]
				if a.PartII > g.PartII {
					neverWorse = 0
				}
				if rep := a.Adaptive; rep != nil {
					ran++
					if rep.Won {
						wins++
					}
				}
			}
		}
		b.ReportMetric(neverWorse, "adaptive_never_worse")
		b.ReportMetric(float64(ran), "adaptive_ran")
		b.ReportMetric(float64(wins), "adaptive_wins")
		b.ReportMetric(degGreedy/float64(len(cfgs)), "deg_greedy")
		b.ReportMetric(degAdaptive/float64(len(cfgs)), "deg_adaptive")
	}
}

// BenchmarkRefinementStudy measures the Section 6.3 iteration: mean
// degradation and zero-degradation share for the greedy partition alone
// and with iterative refinement, on the 2-cluster copy-unit machine where
// iteration helps most.
func BenchmarkRefinementStudy(b *testing.B) {
	cfgs := []*machine.Config{machine.MustClustered16(2, machine.CopyUnit)}
	for i := 0; i < b.N; i++ {
		rows := exper.RefineStudy(paperSuite(), cfgs, 0)
		b.ReportMetric(rows[0].GreedyMean, "deg_greedy")
		b.ReportMetric(rows[0].RefinedMean, "deg_refined")
		b.ReportMetric(rows[0].GreedyZero, "zero_pct_greedy")
		b.ReportMetric(rows[0].RefinedZero, "zero_pct_refined")
	}
}

// BenchmarkRecurrenceBonus measures the Nystrom-style recurrence-aware
// weighting extension (core.Weights.RecurrenceBonus) on the 8-cluster
// embedded machine, where a copy on a recurrence is most expensive:
// bonus 1 is the paper's heuristic, larger values pull recurrence
// operations' registers together harder.
func BenchmarkRecurrenceBonus(b *testing.B) {
	cfg := machine.MustClustered16(8, machine.Embedded)
	for i := 0; i < b.N; i++ {
		for _, bonus := range []float64{1, 2, 4} {
			w := core.DefaultWeights()
			w.RecurrenceBonus = bonus
			results := exper.RunSuite(paperSuite(), []*machine.Config{cfg}, exper.Options{
				Codegen: codegen.Options{Weights: &w, SkipAlloc: true},
			})
			a, _ := results[0].MeanDegradation()
			b.ReportMetric(a, fmt.Sprintf("deg_bonus_%g", bonus))
		}
	}
}

// --- Component micro-benchmarks: where the compile time goes. ---

func BenchmarkDDGBuild(b *testing.B) {
	loops := paperSuite()
	cfg := machine.Ideal16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := loops[i%len(loops)]
		ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	}
}

func BenchmarkModuloScheduleIdeal(b *testing.B) {
	loops := paperSuite()
	cfg := machine.Ideal16()
	graphs := make([]*ddg.Graph, len(loops))
	for i, l := range loops {
		graphs[i] = ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modulo.Run(context.Background(), graphs[i%len(graphs)], cfg, modulo.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRCGBuildAndPartition(b *testing.B) {
	loops := paperSuite()
	cfg := machine.MustClustered16(4, machine.Embedded)
	idealCfg := codegen.IdealOf(cfg)
	views := make([]core.ScheduledBlock, len(loops))
	for i, l := range loops {
		g := ddg.Build(l.Body, idealCfg, ddg.Options{Carried: true})
		s, err := modulo.Run(context.Background(), g, idealCfg, modulo.Options{})
		if err != nil {
			b.Fatal(err)
		}
		views[i] = codegen.IdealView(l.Body, g, idealCfg, s)
	}
	w := core.DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.Build([]core.ScheduledBlock{views[i%len(views)]}, w)
		if _, err := g.Partition(cfg.Clusters, w, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChaitinBriggsColoring(b *testing.B) {
	cfg := machine.Ideal16()
	loops := paperSuite()
	type job struct {
		ranges []regalloc.LiveRange
		ii     int
	}
	jobs := make([]job, 0, len(loops))
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job{regalloc.KernelRanges(g, s), s.II})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		regalloc.Color(j.ranges, j.ii, 32)
	}
}

// --- Compile-cache benchmarks: the PR-2 speedup measurement. ---

// benchSuiteGrid runs the full 211-loop suite across the complete
// 2/4/8-cluster × copy-model grid (PaperConfigs) once, with the given
// cache, mirroring what `experiments` does to regenerate the tables.
func benchSuiteGrid(b *testing.B, c *cache.Cache) {
	b.Helper()
	results := exper.RunSuite(paperSuite(), machine.PaperConfigs(), exper.Options{
		Codegen: codegen.Options{SkipAlloc: true, Cache: c},
	})
	for _, r := range results {
		if errs := r.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
}

// BenchmarkSuiteUncached is the baseline: every (loop, machine) pair
// recomputes its dependence graphs and schedules from scratch.
func BenchmarkSuiteUncached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSuiteGrid(b, nil)
	}
}

// BenchmarkSuiteCached runs the same grid with a fresh content-addressed
// cache per iteration, so the measured win is purely intra-grid sharing:
// the six machines share one monolithic ideal machine per loop, so the
// ideal dependence graph and schedule are computed once instead of six
// times, and identical clustered bodies (the embedded/copy-unit pairs
// produce the same copies) share their rebuilt graphs. The hit rate is
// reported alongside the time; EXPERIMENTS.md records the resulting
// speedup over BenchmarkSuiteUncached.
func BenchmarkSuiteCached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := cache.New()
		benchSuiteGrid(b, c)
		st := c.Stats()
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(100*float64(st.Hits)/float64(total), "hit_pct")
		}
	}
}

// BenchmarkPortfolioPartition times the portfolio partitioner — candidate
// generation plus parallel downstream scoring — on the 4-cluster embedded
// machine, and reports its quality gain over the single-shot greedy
// (arithmetic mean degradation, 100 = ideal).
func BenchmarkPortfolioPartition(b *testing.B) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	for i := 0; i < b.N; i++ {
		results := exper.RunSuite(paperSuite(), []*machine.Config{cfg}, exper.Options{
			Codegen: codegen.Options{Partitioner: partition.Portfolio{}, SkipAlloc: true},
		})
		if errs := results[0].Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		a, _ := results[0].MeanDegradation()
		b.ReportMetric(a, "deg_portfolio")
	}
}

func BenchmarkFullPipelineSingleLoop(b *testing.B) {
	loops := paperSuite()
	cfg := machine.MustClustered16(4, machine.Embedded)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile(context.Background(), loops[i%len(loops)], cfg, codegen.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Persistent disk tier benchmarks: the PR-7 cold-vs-warm story. ---

// benchSuiteGridDisk runs the grid with a fresh memory cache backed by a
// disk tier at dir, then closes the tier (flushing write-behinds) and
// returns the cache and disk stats.
func benchSuiteGridDisk(b *testing.B, dir string) (cache.Stats, cache.DiskStats) {
	b.Helper()
	d, err := cache.OpenDisk(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	c := cache.New()
	results := exper.RunSuite(paperSuite(), machine.PaperConfigs(), exper.Options{
		Codegen: codegen.Options{SkipAlloc: true, Cache: c, Disk: d},
	})
	for _, r := range results {
		if errs := r.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
	d.Close()
	return c.Stats(), d.Stats()
}

// BenchmarkSuiteDiskCold measures the first process generation over an
// empty cache directory: the full grid compiles from scratch while the
// write-behind populates the disk tier. This is the cold-start cost a
// warm restart (BenchmarkSuiteDiskWarm) amortizes away.
func BenchmarkSuiteDiskCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "swp-bench-cold-")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, ds := benchSuiteGridDisk(b, dir)
		b.StopTimer()
		if ds.Writes == 0 {
			b.Fatal("cold run wrote nothing to the disk tier")
		}
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// BenchmarkSuiteDiskWarm measures a restarted process over a pre-warmed
// cache directory: the memory cache starts empty (as after any restart)
// and the persisted stages restore from verified disk records instead of
// recomputing. disk_hit_pct reports the share of disk consultations that
// restored a record — the ISSUE's warm-restart acceptance number — and
// the time against BenchmarkSuiteDiskCold is the cold-start-to-warm win.
func BenchmarkSuiteDiskWarm(b *testing.B) {
	dir := b.TempDir()
	benchSuiteGridDisk(b, dir) // pre-warm, untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, ds := benchSuiteGridDisk(b, dir)
		if consults := ds.Hits + ds.Misses; consults > 0 {
			b.ReportMetric(100*float64(ds.Hits)/float64(consults), "disk_hit_pct")
		}
		if st.DiskHits == 0 {
			b.Fatal("warm run drew zero disk-tier hits")
		}
	}
}
