package partition_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/loopgen"
	"repro/internal/machine"
	. "repro/internal/partition"
)

// TestAdaptiveCandidateAppended: with a table attached the portfolio must
// append exactly one extra candidate named "adaptive", after every
// heuristic variant, carrying the lookup telemetry; with no table the
// candidate list is unchanged.
func TestAdaptiveCandidateAppended(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 12, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	appended := 0
	for _, l := range loops {
		in := makeInput(t, l, cfg)
		base, err := Portfolio{}.Candidates(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range base {
			if c.Name == "adaptive" || c.Adaptive != nil {
				t.Fatalf("%s: adaptive candidate present without a table", l.Name)
			}
		}

		in2 := makeInput(t, l, cfg)
		in2.Adaptive = features.Default()
		with, err := Portfolio{}.Candidates(in2)
		if err != nil {
			t.Fatal(err)
		}
		if len(with) == len(base) {
			continue // prediction matched the configured weights; arm stood down
		}
		if len(with) != len(base)+1 {
			t.Fatalf("%s: table added %d candidates, want at most 1", l.Name, len(with)-len(base))
		}
		last := with[len(with)-1]
		if last.Name != "adaptive" || last.Adaptive == nil || last.Adaptive.Bucket == "" {
			t.Fatalf("%s: malformed adaptive candidate %+v", l.Name, last)
		}
		if last.Assignment == nil {
			t.Fatalf("%s: adaptive candidate carries no assignment", l.Name)
		}
		if err := last.Assignment.Validate(); err != nil {
			t.Fatalf("%s: adaptive assignment invalid: %v", l.Name, err)
		}
		appended++
	}
	if appended == 0 {
		t.Fatal("no loop got an adaptive candidate; the trained table should differ from the defaults somewhere")
	}
}

// TestAdaptiveStandsDownOnMatchingWeights: when the table's prediction
// equals the configured weight vector the arm must not duplicate the
// baseline.
func TestAdaptiveStandsDownOnMatchingWeights(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 6, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loops {
		in := makeInput(t, l, cfg)
		// A one-entry table predicting exactly the input weights for every
		// bucket (nearest-match lookup always lands on it).
		in.Adaptive = &features.Table{Version: 1, Entries: []features.Entry{
			{Key: features.Key{}, Weights: core.DefaultWeights()},
		}}
		cands, err := Portfolio{}.Candidates(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Name == "adaptive" {
				t.Fatalf("%s: arm proposed a candidate under the baseline weights", l.Name)
			}
		}
	}
}
