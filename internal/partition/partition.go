// Package partition defines the pluggable register-partitioning interface
// of the code-generation framework and the baseline methods the paper
// discusses (Section 3): Ellis's BUG (bottom-up greedy), plus round-robin,
// random and single-bank strawmen used by the ablation benchmarks. The
// paper's own method — register component graph partitioning — lives in
// internal/core and is adapted to this interface by Greedy.
package partition

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// Input is everything a partitioner may consult: the loop body, its
// dependence graph, the ideal schedule and the target machine. Methods are
// free to ignore parts of it (round-robin uses none of it; the RCG method
// uses the ideal schedule; BUG uses the graph and the machine).
type Input struct {
	// Block is the code being partitioned, in program order.
	Block *ir.Block
	// Graph is Block's dependence graph (built on the ideal machine).
	Graph *ddg.Graph
	// Ideal is the ideal schedule view used for RCG weighting.
	Ideal core.ScheduledBlock
	// Cfg is the clustered target machine.
	Cfg *machine.Config
	// Weights tunes the RCG heuristic.
	Weights core.Weights
	// Pre pre-colors registers to fixed banks (may be nil).
	Pre map[ir.Reg]int
	// Tracer records partitioning-stage spans (RCG construction, greedy
	// bank choice); nil disables. Methods without interesting stages are
	// free to ignore it.
	Tracer *trace.Tracer
	// Cache optionally memoizes RCG construction (shared across every bank
	// count) by content fingerprint. Nil disables; results are identical
	// either way. Only the RCG-based methods consult it — the strawmen
	// are cheaper than a hash.
	Cache *cache.Cache
	// BlockFP optionally carries the caller's memoized fingerprint of
	// Block, saving a re-encoding per cache key; keys are identical with
	// or without it. Ignored when Cache is nil.
	BlockFP *cache.BlockFP
	// Arena optionally supplies the compile's scratch arena for RCG
	// construction and the greedy engine's working arrays. Nil falls back
	// to per-package pools; results are identical either way.
	Arena *scratch.Arena
	// Ctx carries the compile's cancellation to budget-bounded methods
	// (the exact branch-and-bound arm); nil means context.Background().
	// Heuristic methods ignore it — they are cheaper than a poll.
	Ctx context.Context
	// ExactBudget enables the exact branch-and-bound portfolio arm when
	// positive: the wall-clock ceiling layered (as a context deadline) on
	// top of ExactNodes. Zero disables the arm entirely.
	ExactBudget time.Duration
	// ExactNodes is the exact arm's deterministic search-node budget
	// (0 = exact.DefaultPartitionNodes). Determinism comes from this, not
	// from the wall clock: reproduction runs rely on it.
	ExactNodes int64
	// Adaptive supplies the feature→weights table consulted by the
	// portfolio's adaptive arm (internal/features); nil disables the arm.
	Adaptive *features.Table
}

// Partitioner assigns every symbolic register in the input to a register
// bank of the target machine.
type Partitioner interface {
	// Name identifies the method in reports.
	Name() string
	// Assign computes the register-to-bank assignment.
	Assign(in *Input) (*core.Assignment, error)
}

// Greedy is the paper's method: build the register component graph from
// the ideal schedule and run the Figure-4 greedy bank chooser.
type Greedy struct{}

// Name implements Partitioner.
func (Greedy) Name() string { return "rcg-greedy" }

// Assign implements Partitioner.
func (Greedy) Assign(in *Input) (*core.Assignment, error) {
	return assignVariant(in, core.Variant{})
}

// RCG exposes the constructed graph for callers that want to inspect it
// (examples, the swpc tool).
func (Greedy) RCG(in *Input) *core.RCG {
	return core.Build([]core.ScheduledBlock{in.Ideal}, in.Weights)
}

// RoundRobin deals registers to banks in (class, ID) order, ignoring the
// program entirely. It is the "spread blindly" ablation baseline.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "round-robin" }

// Assign implements Partitioner.
func (RoundRobin) Assign(in *Input) (*core.Assignment, error) {
	asg := &core.Assignment{Banks: in.Cfg.Clusters, Of: make(map[ir.Reg]int)}
	for i, r := range in.Block.Registers() {
		asg.Of[r] = i % in.Cfg.Clusters
	}
	applyPre(asg, in.Pre)
	return asg, nil
}

// Random assigns registers to uniformly random banks from a fixed seed.
// It bounds how bad an assignment can get and calibrates the other methods.
type Random struct {
	// Seed fixes the stream; the zero seed is valid and deterministic.
	Seed int64
}

// Name implements Partitioner.
func (Random) Name() string { return "random" }

// Assign implements Partitioner.
func (p Random) Assign(in *Input) (*core.Assignment, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	asg := &core.Assignment{Banks: in.Cfg.Clusters, Of: make(map[ir.Reg]int)}
	for _, r := range in.Block.Registers() {
		asg.Of[r] = rng.Intn(in.Cfg.Clusters)
	}
	applyPre(asg, in.Pre)
	return asg, nil
}

// SingleBank puts everything in bank 0. On a clustered machine this
// serializes the loop onto one cluster: the "no partitioning at all"
// degenerate case.
type SingleBank struct{}

// Name implements Partitioner.
func (SingleBank) Name() string { return "single-bank" }

// Assign implements Partitioner.
func (SingleBank) Assign(in *Input) (*core.Assignment, error) {
	asg := &core.Assignment{Banks: in.Cfg.Clusters, Of: make(map[ir.Reg]int)}
	for _, r := range in.Block.Registers() {
		asg.Of[r] = 0
	}
	applyPre(asg, in.Pre)
	return asg, nil
}

func applyPre(asg *core.Assignment, pre map[ir.Reg]int) {
	for r, b := range pre {
		asg.Of[r] = b
	}
}

// BUG is Ellis's bottom-up greedy assignment (Section 3): operations are
// visited in scheduling priority order and each is placed on the cluster
// that minimizes its estimated completion time, accounting for
// inter-cluster copy latencies of its operands and for cluster load. The
// method is "intimately intertwined with instruction scheduling and
// utilizes machine-dependent details within the partitioning algorithm" —
// the very property the RCG abstraction removes — which makes it the
// natural baseline.
type BUG struct{}

// Name implements Partitioner.
func (BUG) Name() string { return "bug" }

// Assign implements Partitioner.
func (BUG) Assign(in *Input) (*core.Assignment, error) {
	cfg := in.Cfg
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("partition: BUG needs at least one cluster")
	}
	g := in.Graph
	n := len(g.Ops)
	heights := sched.Heights(g, cfg)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if heights[a] != heights[b] {
			return heights[a] > heights[b]
		}
		return a < b
	})

	per := cfg.FUsPerCluster()
	issued := make([]int, cfg.Clusters) // ops placed per cluster
	finish := make([]int, n)            // estimated completion per op
	clusterOf := make([]int, n)         // chosen cluster per op
	regBank := make(map[ir.Reg]int, n)  // decided banks
	defOf := make(map[ir.Reg]int, n)    // defining op per register
	for i, op := range g.Ops {
		for _, d := range op.Defs {
			if _, ok := defOf[d]; !ok {
				defOf[d] = i
			}
		}
		clusterOf[i] = -1
	}

	for _, oi := range order {
		op := g.Ops[oi]
		bestC, bestFinish, bestLoad := 0, int(^uint(0)>>1), int(^uint(0)>>1)
		for c := 0; c < cfg.Clusters; c++ {
			ready := issued[c] / per // crude cluster-congestion estimate
			for _, u := range op.Uses {
				avail := 0
				if d, ok := defOf[u]; ok && clusterOf[d] >= 0 {
					avail = finish[d]
					if clusterOf[d] != c {
						avail += cfg.CopyLatency(u.Class)
					}
				} else if b, ok := regBank[u]; ok && b != c {
					avail = cfg.CopyLatency(u.Class)
				}
				if avail > ready {
					ready = avail
				}
			}
			fin := ready + cfg.Latency(op)
			if fin < bestFinish || (fin == bestFinish && issued[c] < bestLoad) {
				bestC, bestFinish, bestLoad = c, fin, issued[c]
			}
		}
		clusterOf[oi] = bestC
		finish[oi] = bestFinish
		issued[bestC]++
		for _, d := range op.Defs {
			if _, ok := regBank[d]; !ok {
				regBank[d] = bestC
			}
		}
		for _, u := range op.Uses {
			if _, ok := regBank[u]; !ok {
				if _, hasDef := defOf[u]; !hasDef {
					regBank[u] = bestC // live-in: bank of its first user
				}
			}
		}
	}

	asg := &core.Assignment{Banks: cfg.Clusters, Of: make(map[ir.Reg]int)}
	for _, r := range in.Block.Registers() {
		if b, ok := regBank[r]; ok {
			asg.Of[r] = b
		} else {
			asg.Of[r] = 0
		}
	}
	applyPre(asg, in.Pre)
	return asg, nil
}
