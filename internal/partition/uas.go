package partition

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modulo"
)

// UAS approximates Ozer, Banerjia and Conte's unified assign-and-schedule
// (Section 3): instead of partitioning registers up front and then
// scheduling, the modulo scheduler itself chooses a cluster for every
// operation while it schedules, with full knowledge of per-cluster issue
// pressure at each kernel row. The register partition is then read off the
// schedule: each value lives in the bank of the cluster that computed it.
//
// The reproduction's scheduler supports exactly this through free
// placement (an unpinned operation goes to the least-loaded cluster at its
// chosen row), so UAS here is "schedule clustered with free placement,
// derive banks from clusters". What this baseline cannot see — and what
// Ozer's full algorithm adds — is the cost of the copies its choices
// imply, since copies are inserted only after the assignment exists; the
// comparison benchmarks quantify how much that second-order information
// is worth.
type UAS struct{}

// Name implements Partitioner.
func (UAS) Name() string { return "uas" }

// Assign implements Partitioner.
func (UAS) Assign(in *Input) (*core.Assignment, error) {
	// The input graph was built with the ideal machine's latency table,
	// which the clustered machines share, so it is reusable here.
	s, err := modulo.Run(context.Background(), in.Graph, in.Cfg, modulo.Options{})
	if err != nil {
		return nil, fmt.Errorf("partition: UAS scheduling: %w", err)
	}
	asg := &core.Assignment{Banks: in.Cfg.Clusters, Of: make(map[ir.Reg]int)}
	for i, op := range in.Graph.Ops {
		for _, d := range op.Defs {
			if _, ok := asg.Of[d]; !ok {
				asg.Of[d] = s.Cluster[i]
			}
		}
	}
	// Live-ins take the bank of their first consumer's cluster.
	for i, op := range in.Graph.Ops {
		for _, u := range op.Uses {
			if _, ok := asg.Of[u]; !ok {
				asg.Of[u] = s.Cluster[i]
			}
		}
	}
	for _, r := range in.Block.Registers() {
		if _, ok := asg.Of[r]; !ok {
			asg.Of[r] = 0
		}
	}
	applyPre(asg, in.Pre)
	return asg, nil
}
