package partition_test

import (
	"context"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	. "repro/internal/partition"
)

// makeInput builds a full partitioner input from a loop.
func makeInput(t *testing.T, l *ir.Loop, cfg *machine.Config) *Input {
	t.Helper()
	idealCfg := codegen.IdealOf(cfg)
	g := ddg.Build(l.Body, idealCfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, idealCfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &Input{
		Block:   l.Body,
		Graph:   g,
		Ideal:   codegen.IdealView(l.Body, g, idealCfg, s),
		Cfg:     cfg,
		Weights: core.DefaultWeights(),
	}
}

func allPartitioners() []Partitioner {
	return []Partitioner{Greedy{}, RoundRobin{}, Random{Seed: 42}, SingleBank{}, BUG{}, UAS{}}
}

func TestAllPartitionersTotalAndValid(t *testing.T) {
	l := fixtures.DotProduct(4)
	for _, cfg := range machine.PaperConfigs() {
		in := makeInput(t, l, cfg)
		for _, p := range allPartitioners() {
			asg, err := p.Assign(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), cfg.Name, err)
			}
			if err := asg.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), cfg.Name, err)
			}
			for _, r := range l.Body.Registers() {
				if _, ok := asg.Of[r]; !ok {
					t.Errorf("%s on %s: register %s unassigned", p.Name(), cfg.Name, r)
				}
			}
		}
	}
}

func TestNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allPartitioners() {
		if seen[p.Name()] {
			t.Errorf("duplicate partitioner name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestSingleBankUsesOnlyBankZero(t *testing.T) {
	l := fixtures.DotProduct(3)
	in := makeInput(t, l, machine.MustClustered16(4, machine.Embedded))
	asg, err := SingleBank{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range asg.Of {
		if b != 0 {
			t.Errorf("%s in bank %d", r, b)
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	l := fixtures.DotProduct(4)
	in := makeInput(t, l, machine.MustClustered16(4, machine.Embedded))
	asg, err := RoundRobin{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	counts := asg.Counts()
	n := len(l.Body.Registers())
	for b, c := range counts {
		lo, hi := n/4, (n+3)/4
		if c < lo || c > hi {
			t.Errorf("bank %d holds %d, want %d..%d", b, c, lo, hi)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	l := fixtures.DotProduct(4)
	in := makeInput(t, l, machine.MustClustered16(4, machine.Embedded))
	a, _ := Random{Seed: 7}.Assign(in)
	b, _ := Random{Seed: 7}.Assign(in)
	for r, bank := range a.Of {
		if b.Of[r] != bank {
			t.Fatalf("same seed, different assignment at %s", r)
		}
	}
	c, _ := Random{Seed: 8}.Assign(in)
	same := true
	for r, bank := range a.Of {
		if c.Of[r] != bank {
			same = false
		}
	}
	if same && len(a.Of) > 4 {
		t.Error("different seeds produced identical assignments (suspicious)")
	}
}

func TestBUGKeepsChainLocal(t *testing.T) {
	// A single serial chain: BUG's completion-time estimate must keep it
	// on one cluster (no copy improves anything).
	cfg := machine.MustClustered16(4, machine.Embedded)
	l := ir.NewLoop("chain")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Mul(x, x)
	z := b.Add(y, y)
	b.Store(z, ir.MemRef{Base: "c", Coeff: 1})
	in := makeInput(t, l, cfg)
	asg, err := BUG{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	bank := asg.Bank(x)
	if asg.Bank(y) != bank || asg.Bank(z) != bank {
		t.Errorf("BUG split a serial chain: %v %v %v", asg.Bank(x), asg.Bank(y), asg.Bank(z))
	}
}

func TestBUGSpreadsIndependentWork(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	l := ir.NewLoop("wide")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 16; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 16, Offset: k})
	}
	in := makeInput(t, l, cfg)
	asg, err := BUG{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	counts := asg.Counts()
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("BUG used a single cluster for 16 independent loads: %v", counts)
	}
}

func TestPreColoringAppliedByAll(t *testing.T) {
	l := fixtures.DotProduct(2)
	in := makeInput(t, l, machine.MustClustered16(4, machine.Embedded))
	target := l.Body.Registers()[0]
	in.Pre = map[ir.Reg]int{target: 3}
	for _, p := range allPartitioners() {
		asg, err := p.Assign(in)
		if err != nil {
			t.Fatal(err)
		}
		if asg.Bank(target) != 3 {
			t.Errorf("%s ignored pre-coloring of %s", p.Name(), target)
		}
	}
}

func TestGreedyRCGExposed(t *testing.T) {
	l := fixtures.DotProduct(2)
	in := makeInput(t, l, machine.MustClustered16(2, machine.Embedded))
	g := Greedy{}.RCG(in)
	if g == nil || len(g.Nodes) == 0 {
		t.Fatal("Greedy.RCG returned an empty graph")
	}
	if len(g.Nodes) != len(l.Body.Registers()) {
		t.Errorf("RCG has %d nodes, loop has %d registers", len(g.Nodes), len(l.Body.Registers()))
	}
}
