package partition

import (
	"fmt"

	"repro/internal/core"
)

// Candidate is one portfolio member: a named variant of the greedy
// heuristic and the assignment it produced.
type Candidate struct {
	// Name labels the generating variant ("baseline", "reversed-banks",
	// "exact", ...).
	Name string
	// Assignment is the variant's register-to-bank map.
	Assignment *core.Assignment
	// Exact carries the branch-and-bound run's telemetry when this
	// candidate came from the exact arm; nil for heuristic variants.
	Exact *ExactStats
	// Adaptive carries the table-lookup telemetry when this candidate
	// came from the adaptive-weights arm; nil otherwise.
	Adaptive *AdaptiveStats
}

// CandidateGenerator is implemented by partitioners that can propose
// several candidate assignments for one loop. The code-generation
// pipeline detects the interface, carries every candidate through copy
// insertion, clustered scheduling and per-bank coloring, scores each by
// (spills, max pressure, II) and keeps the best — so the generator stays
// ignorant of everything downstream, preserving the paper's separation
// between partitioning and scheduling.
type CandidateGenerator interface {
	Partitioner
	// Candidates returns the portfolio in a fixed variant order; index 0
	// must be the method's single-shot baseline so downstream scoring can
	// guarantee "never worse than the baseline".
	Candidates(in *Input) ([]Candidate, error)
	// ScoringWorkers bounds the pipeline's per-loop scoring pool
	// (<= 0 means one worker per available CPU, capped at the candidate
	// count).
	ScoringWorkers() int
}

// DefaultPortfolioSize is how many variants Portfolio runs when Variants
// is zero.
const DefaultPortfolioSize = 8

// Portfolio is the paper's greedy RCG heuristic hardened by search: it
// runs the baseline plus tie-break perturbations and bank-order
// permutations of the Figure 4 chooser (core.Variant), and the pipeline
// keeps whichever candidate scores best after coloring. The greedy's
// equal-benefit choices are taken once and arbitrarily in the single-shot
// method; the portfolio takes a second (and third, ...) opinion on
// exactly those free choices, so the result is never worse than the
// baseline on (spills, then max pressure, then II) and the selection is
// deterministic: candidates are ordered by fixed variant index and a
// later candidate must be strictly better to displace an earlier one.
type Portfolio struct {
	// Variants caps the portfolio size; 0 means DefaultPortfolioSize.
	Variants int
	// Workers bounds the pipeline's per-loop scoring pool; 0 lets the
	// pipeline pick (GOMAXPROCS capped at the candidate count).
	Workers int
}

// Name implements Partitioner.
func (Portfolio) Name() string { return "portfolio" }

// ScoringWorkers implements CandidateGenerator.
func (p Portfolio) ScoringWorkers() int { return p.Workers }

// Assign implements Partitioner with the single-shot baseline, so
// Portfolio still works in contexts that cannot score candidates (the
// whole-function path, external callers of the plain interface).
func (p Portfolio) Assign(in *Input) (*core.Assignment, error) {
	return assignVariant(in, core.Variant{})
}

// Candidates implements CandidateGenerator: the RCG is built once (or
// fetched from the cache) and partitioned under every variant. Index 0 is
// the exact baseline (zero core.Variant), so downstream scoring inherits
// its result as the floor.
//
// When Input.ExactBudget is positive (the -exact-budget knob), one more
// candidate named "exact" is appended: the branch-and-bound optimum of
// the RCG objective, seeded with the baseline and bounded by
// Input.ExactNodes search nodes plus the wall-clock budget. Appending
// (never replacing) preserves the portfolio guarantee — the exact
// candidate must win the downstream (spills, pressure, II) scoring
// strictly to displace the heuristic, so enabling the arm can only help.
//
// When Input.Adaptive is non-nil (the -adaptive knob), one more candidate
// named "adaptive" is appended last: the greedy baseline re-run under the
// weight vector the feature→weights table predicts for this problem's
// bucket. The same appending argument applies — the adaptive candidate
// must strictly win the downstream scoring, so the arm is never worse
// than the fixed-weight greedy by construction.
func (p Portfolio) Candidates(in *Input) ([]Candidate, error) {
	variants := PortfolioVariants(in.Cfg.Clusters, p.Variants)
	out := make([]Candidate, 0, len(variants)+1)
	for _, v := range variants {
		asg, err := assignVariant(in, v)
		if err != nil {
			return nil, fmt.Errorf("partition: portfolio variant %q: %w", v.Name, err)
		}
		out = append(out, Candidate{Name: v.Name, Assignment: asg})
	}
	if in.ExactBudget > 0 {
		asg, stats, err := exactArm(in, in.ExactBudget, in.ExactNodes)
		if err != nil {
			return nil, fmt.Errorf("partition: portfolio exact arm: %w", err)
		}
		if stats.Ran {
			out = append(out, Candidate{Name: "exact", Assignment: asg, Exact: stats})
		}
	}
	if in.Adaptive != nil {
		asg, stats, err := adaptiveArm(in)
		if err != nil {
			return nil, fmt.Errorf("partition: portfolio adaptive arm: %w", err)
		}
		if stats != nil {
			out = append(out, Candidate{Name: "adaptive", Assignment: asg, Adaptive: stats})
		}
	}
	return out, nil
}

// PortfolioVariants returns the first k members of the fixed variant
// order for a machine with the given bank count (k <= 0 or beyond the
// catalogue means "all of the catalogue"). The order never changes:
// portfolio selection is deterministic because this list is. Variants
// that degenerate to the baseline on this bank count (every permutation
// of one bank is the identity) are dropped rather than recomputed.
func PortfolioVariants(banks, k int) []core.Variant {
	if k <= 0 {
		k = DefaultPortfolioSize
	}
	catalogue := []core.Variant{
		{Name: "baseline"},
		{Name: "reversed-banks", BankOrder: reversedOrder(banks)},
		{Name: "tie-first", Tie: core.TieFirst},
		{Name: "tie-most-loaded", Tie: core.TieMostLoaded},
		{Name: "rotated-banks", BankOrder: rotatedOrder(banks, 1)},
		{Name: "balance-half", BalanceScale: 0.5},
		{Name: "balance-double", BalanceScale: 2},
		{Name: "reversed-tie-most", BankOrder: reversedOrder(banks), Tie: core.TieMostLoaded},
		{Name: "rotated-tie-first", BankOrder: rotatedOrder(banks, banks/2), Tie: core.TieFirst},
		{Name: "balance-off", BalanceScale: 1e-9},
	}
	out := make([]core.Variant, 0, k)
	for _, v := range catalogue {
		if len(out) == k {
			break
		}
		if len(out) > 0 && identityOrder(v.BankOrder) && v.Tie == core.TieLeastLoaded && v.BalanceScale == 0 {
			continue // degenerates to the baseline on this bank count
		}
		out = append(out, v)
	}
	return out
}

func reversedOrder(banks int) []int {
	order := make([]int, banks)
	for i := range order {
		order[i] = banks - 1 - i
	}
	return order
}

func rotatedOrder(banks, by int) []int {
	order := make([]int, banks)
	for i := range order {
		order[i] = (i + by) % banks
	}
	return order
}

func identityOrder(order []int) bool {
	for i, b := range order {
		if b != i {
			return false
		}
	}
	return true
}
