package partition

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
)

// This file adapts internal/exact's branch-and-bound bank assignment to
// the Partitioner interface, in two forms: Exact, a standalone method for
// the CLIs' "exact" choice, and the exact portfolio arm that
// Portfolio.Candidates appends when Input.ExactBudget is set. Both seed
// the search with the greedy baseline, so by construction the result is
// never worse than the heuristic on the RCG objective — and the
// portfolio's downstream (spills, pressure, II) scoring independently
// guarantees the compiled outcome is never worse either.

// ExactStats reports what the exact arm did for one input, for the
// optimality-gap telemetry (EXPERIMENTS.md table, swpd_exact_* counters).
type ExactStats struct {
	// Ran reports the branch-and-bound actually searched (false when the
	// graph exceeded the size gate and the greedy answer passed through).
	Ran bool
	// Proven reports the search exhausted the tree: the kept assignment
	// is optimal for the RCG objective.
	Proven bool
	// Improved reports the search strictly beat the greedy incumbent.
	Improved bool
	// Nodes is how many search nodes were expanded.
	Nodes int64
}

// exactArm runs the branch-and-bound on in's RCG, seeded with the greedy
// baseline. Returns the best known assignment (never worse than greedy)
// and the run's stats.
func exactArm(in *Input, budget time.Duration, nodeBudget int64) (*core.Assignment, *ExactStats, error) {
	g, err := buildRCG(in)
	if err != nil {
		return nil, nil, err
	}
	greedy, err := g.PartitionVariant(in.Cfg.Clusters, in.Weights, in.Pre, core.Variant{}, in.Tracer)
	if err != nil {
		return nil, nil, err
	}
	if len(g.Nodes) > exact.DefaultMaxRegs {
		return greedy, &ExactStats{}, nil // size gate: greedy passes through
	}
	ctx := in.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	res, err := exact.Partition(ctx, exact.PartitionInput{
		Graph:      g,
		Banks:      in.Cfg.Clusters,
		Capacity:   in.Cfg.RegsPerBank,
		Pre:        in.Pre,
		Incumbent:  greedy,
		NodeBudget: nodeBudget,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Assignment, &ExactStats{
		Ran:      true,
		Proven:   res.Proven,
		Improved: res.Improved,
		Nodes:    res.Nodes,
	}, nil
}

// Exact is the standalone branch-and-bound partitioner: greedy first,
// then exact search seeded with it. Anytime — on budget expiry the greedy
// assignment survives — so it is safe as a drop-in method.
type Exact struct {
	// Budget is the wall-clock ceiling per loop (0 = none; the node
	// budget still bounds the search).
	Budget time.Duration
	// Nodes is the deterministic search-node budget
	// (0 = exact.DefaultPartitionNodes).
	Nodes int64
}

// Name implements Partitioner.
func (Exact) Name() string { return "exact" }

// Assign implements Partitioner.
func (e Exact) Assign(in *Input) (*core.Assignment, error) {
	asg, _, err := exactArm(in, e.Budget, e.Nodes)
	return asg, err
}
