package partition

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
)

// This file threads the compile cache through RCG construction. The
// register component graph is a pure function of (block, ideal schedule
// view, weights) — notably independent of the bank count — so in the
// experiment grid one RCG per loop serves all six machines, and a
// portfolio's variants all partition the same cached graph.
//
// Cached RCGs are shared read-only: partitioning never mutates the graph.
// The greedy bank choice itself is not memoized here — it is cheaper than
// fingerprinting its inputs, and the pipeline's composite assignment
// cache (internal/codegen) already shares whole assignments across copy
// models for the default method.

// rcgKey fingerprints everything the RCG builder consults: the block, the
// ideal schedule view and the weights. The caller's memoized block
// encoding is spliced in when available; the key is the same either way.
func rcgKey(in *Input) cache.Key {
	h := cache.NewHasher(cache.StageRCG)
	if in.BlockFP != nil {
		h.BlockFP(in.BlockFP)
	} else {
		h.Block(in.Block)
	}
	h.Ints(in.Ideal.Time)
	h.Int(int64(in.Ideal.Length))
	h.Ints(in.Ideal.Slack)
	h.Int(int64(len(in.Ideal.Recurrent)))
	for _, r := range in.Ideal.Recurrent {
		h.Bool(r)
	}
	h.Weights(in.Weights)
	return h.Key(cache.StageRCG)
}

// rcgCost estimates a cached graph's resident bytes for the cache's byte
// budget: per node the register, accumulated weight and index/head slots;
// per edge two pooled half-edges plus the sealed CSR row.
func rcgCost(v any) int64 {
	g := v.(*core.RCG)
	return int64(len(g.Nodes))*32 + int64(g.NumEdges())*64
}

// buildRCG is core.Build behind the cache. The cached graph is shared
// as-is: every consumer treats it read-only.
func buildRCG(in *Input) (*core.RCG, error) {
	if !in.Cache.Enabled() {
		return core.BuildScratch([]core.ScheduledBlock{in.Ideal}, in.Weights, in.Tracer, in.Arena), nil
	}
	g, hit, err := cache.GetAsCosted(in.Cache, rcgKey(in), func() (*core.RCG, error) {
		return core.BuildScratch([]core.ScheduledBlock{in.Ideal}, in.Weights, in.Tracer, in.Arena), nil
	}, rcgCost)
	countCache(in.Tracer, "rcg", hit)
	return g, err
}

// assignVariant runs the greedy bank chooser under the given variant on
// the (possibly cached) RCG.
func assignVariant(in *Input, v core.Variant) (*core.Assignment, error) {
	g, err := buildRCG(in)
	if err != nil {
		return nil, err
	}
	return g.PartitionVariant(in.Cfg.Clusters, in.Weights, in.Pre, v, in.Tracer)
}

// countCache mirrors the codegen-side counter convention so `-trace`
// summaries report partition-stage reuse alongside ddg/modulo.
func countCache(tr *trace.Tracer, stage string, hit bool) {
	if hit {
		tr.Add("cache."+stage+".hits", 1)
	} else {
		tr.Add("cache."+stage+".misses", 1)
	}
}
