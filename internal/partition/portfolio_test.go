package partition_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

// The tests live in partition_test (not partition) because scoring happens
// in the codegen pipeline: partition proposes candidates, codegen carries
// them through copy insertion, clustered scheduling and coloring and picks
// the winner. The properties pinned here are the two the portfolio design
// promises: the result is never worse than the single-shot greedy baseline
// on (spills, then max pressure, then clustered II), and selection is
// independent of the scoring pool's parallelism.

type score struct{ spills, pressure, ii int }

func scoreOf(r *codegen.Result) score {
	return score{r.Spills(), r.MaxPressure(), r.PartII()}
}

// worse reports whether s loses to t lexicographically.
func (s score) worse(t score) bool {
	if s.spills != t.spills {
		return s.spills > t.spills
	}
	if s.pressure != t.pressure {
		return s.pressure > t.pressure
	}
	return s.ii > t.ii
}

// TestPortfolioNeverWorseThanGreedy compiles the full 211-loop suite on
// the 2-, 4- and 8-cluster embedded machines with the greedy baseline and
// with the portfolio, and demands the portfolio never loses. The guarantee
// is structural — the baseline is candidate 0 and later candidates must be
// strictly better to displace it — so a violation means the selection or
// the candidate plumbing broke.
func TestPortfolioNeverWorseThanGreedy(t *testing.T) {
	loops := loopgen.Suite()
	for _, clusters := range []int{2, 4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		improved := 0
		for _, l := range loops {
			base, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Greedy{}})
			if err != nil {
				t.Fatalf("%s greedy on %s: %v", l.Name, cfg.Name, err)
			}
			port, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Portfolio{}})
			if err != nil {
				t.Fatalf("%s portfolio on %s: %v", l.Name, cfg.Name, err)
			}
			if port.PortfolioVariant == "" {
				t.Fatalf("%s on %s: portfolio compile did not record a winning variant", l.Name, cfg.Name)
			}
			bs, ps := scoreOf(base), scoreOf(port)
			if ps.worse(bs) {
				t.Fatalf("%s on %s: portfolio %+v worse than greedy %+v (variant %s)",
					l.Name, cfg.Name, ps, bs, port.PortfolioVariant)
			}
			if port.PortfolioVariant != "baseline" {
				improved++
			}
		}
		t.Logf("%d clusters: portfolio beat the baseline on %d/%d loops", clusters, improved, len(loops))
	}
}

// TestPortfolioBaselineOnlyMatchesGreedy: with the portfolio restricted to
// one candidate, the compile must reproduce the single-shot greedy result
// exactly — same partition, same copies, same schedule, same coloring.
func TestPortfolioBaselineOnlyMatchesGreedy(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loopgen.Suite()[:25] {
		base, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Greedy{}})
		if err != nil {
			t.Fatal(err)
		}
		solo, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Portfolio{Variants: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if solo.PortfolioVariant != "baseline" {
			t.Fatalf("%s: single-candidate portfolio chose %q", l.Name, solo.PortfolioVariant)
		}
		assertSameOutcome(t, l.Name, base, solo)
	}
}

// TestPortfolioDeterministicAcrossWorkers: the chosen variant and the full
// compiled outcome must not depend on how many goroutines scored the
// candidates. Run under -race this also exercises the scoring pool for
// data races.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	loops := loopgen.Suite()
	cases := []*ir.Loop{}
	for i := 0; i < len(loops); i += 9 {
		cases = append(cases, loops[i])
	}
	for _, clusters := range []int{2, 4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		for _, l := range cases {
			serial, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Portfolio{Workers: 1}})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			parallel, err := codegen.Compile(context.Background(), l, cfg, codegen.Options{Partitioner: partition.Portfolio{Workers: 8}})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			if serial.PortfolioVariant != parallel.PortfolioVariant {
				t.Fatalf("%s on %s: worker count changed the winner: %q vs %q",
					l.Name, cfg.Name, serial.PortfolioVariant, parallel.PortfolioVariant)
			}
			assertSameOutcome(t, fmt.Sprintf("%s on %s", l.Name, cfg.Name), serial, parallel)
		}
	}
}

func assertSameOutcome(t *testing.T, label string, a, b *codegen.Result) {
	t.Helper()
	if a.PartII() != b.PartII() || a.Spills() != b.Spills() || a.MaxPressure() != b.MaxPressure() {
		t.Fatalf("%s: outcomes differ: (II %d, spills %d, pressure %d) vs (II %d, spills %d, pressure %d)",
			label, a.PartII(), a.Spills(), a.MaxPressure(), b.PartII(), b.Spills(), b.MaxPressure())
	}
	if len(a.Assignment.Of) != len(b.Assignment.Of) {
		t.Fatalf("%s: %d vs %d assigned registers", label, len(a.Assignment.Of), len(b.Assignment.Of))
	}
	for r, bank := range a.Assignment.Of {
		if b.Assignment.Of[r] != bank {
			t.Fatalf("%s: register %s in bank %d vs %d", label, r, bank, b.Assignment.Of[r])
		}
	}
	if a.Copies.Body.String() != b.Copies.Body.String() {
		t.Fatalf("%s: clustered bodies differ", label)
	}
}

// TestPortfolioVariantsCatalogue pins the deterministic variant order the
// selection guarantee depends on: baseline first, unique names, valid bank
// permutations, and degenerate (baseline-equal) variants dropped.
func TestPortfolioVariantsCatalogue(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		vs := partition.PortfolioVariants(banks, 0)
		if len(vs) == 0 || vs[0].Name != "baseline" {
			t.Fatalf("banks=%d: catalogue must start with the baseline, got %+v", banks, vs)
		}
		names := map[string]bool{}
		for _, v := range vs {
			if names[v.Name] {
				t.Fatalf("banks=%d: duplicate variant %q", banks, v.Name)
			}
			names[v.Name] = true
			if v.BankOrder == nil {
				continue
			}
			if len(v.BankOrder) != banks {
				t.Fatalf("banks=%d: variant %q order %v has wrong length", banks, v.Name, v.BankOrder)
			}
			seen := map[int]bool{}
			for _, bk := range v.BankOrder {
				if bk < 0 || bk >= banks || seen[bk] {
					t.Fatalf("banks=%d: variant %q order %v is not a permutation", banks, v.Name, v.BankOrder)
				}
				seen[bk] = true
			}
		}
	}
	if got := len(partition.PortfolioVariants(4, 3)); got != 3 {
		t.Fatalf("k=3 returned %d variants", got)
	}
	if got := len(partition.PortfolioVariants(4, 0)); got != partition.DefaultPortfolioSize {
		t.Fatalf("k=0 returned %d variants, want DefaultPortfolioSize=%d", got, partition.DefaultPortfolioSize)
	}
}
