package partition

import (
	"repro/internal/core"
	"repro/internal/features"
)

// AdaptiveStats records the adaptive arm's table lookup, for the
// pipeline's adoption telemetry.
type AdaptiveStats struct {
	// Bucket names the table entry the lookup matched (e.g. "r1d2b0").
	Bucket string
	// ExactBucket reports whether the problem's own bucket was trained;
	// false means the nearest neighbor stood in.
	ExactBucket bool
}

// adaptiveArm runs the feature-conditioned arm: extract the problem's
// feature vector off the baseline RCG (cached — the same graph the
// heuristic variants partition), look up the nearest trained bucket in
// the table and partition once more under the predicted weights. The
// predicted-weights RCG caches independently, because rcgKey folds the
// weights into the cache key.
//
// Returns (nil, nil, nil) when the arm has nothing to add: no dependence
// graph, an empty table, or a prediction identical to the weights the
// portfolio already runs.
func adaptiveArm(in *Input) (*core.Assignment, *AdaptiveStats, error) {
	if in.Graph == nil {
		return nil, nil, nil
	}
	g, err := buildRCG(in)
	if err != nil {
		return nil, nil, err
	}
	vec := features.Extract(g, in.Ideal, in.Graph, in.Cfg)
	w, bucket, exactBucket, ok := in.Adaptive.Lookup(vec.Key())
	if !ok || w == in.Weights {
		return nil, nil, nil
	}
	pin := *in
	pin.Weights = w
	asg, err := assignVariant(&pin, core.Variant{})
	if err != nil {
		return nil, nil, err
	}
	return asg, &AdaptiveStats{Bucket: bucket, ExactBucket: exactBucket}, nil
}
