package codegen

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/partition"
)

// buildTestFunction makes a three-block function: a shallow prologue, a
// hot innermost block (depth 2) and an epilogue, with a value flowing from
// the prologue into the hot block.
func buildTestFunction() (*ir.Function, ir.Reg) {
	f := ir.NewFunction("test")
	pro := f.NewBlock(0)
	hot := f.NewBlock(2)
	epi := f.NewBlock(0)

	bp := ir.NewBlockBuilder(f, pro)
	scale := bp.Load(ir.Float, ir.MemRef{Base: "scale"})
	base := bp.Load(ir.Float, ir.MemRef{Base: "base"})
	init := bp.Mul(scale, base)
	bp.Store(init, ir.MemRef{Base: "tmp"})

	bh := ir.NewBlockBuilder(f, hot)
	for k := 0; k < 6; k++ {
		x := bh.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 6, Offset: k})
		y := bh.Mul(x, scale) // cross-block use of scale
		z := bh.Add(y, init)  // cross-block use of init
		bh.Store(z, ir.MemRef{Base: "b", Coeff: 6, Offset: k})
	}

	be := ir.NewBlockBuilder(f, epi)
	last := be.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 0, Offset: 0})
	be.Store(be.Mul(last, scale), ir.MemRef{Base: "out"})
	return f, scale
}

func TestCompileFunctionBasics(t *testing.T) {
	f, _ := buildTestFunction()
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, err := CompileFunction(context.Background(), f, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 3 {
		t.Fatalf("compiled %d blocks", len(res.Blocks))
	}
	if res.RCG == nil {
		t.Fatal("RCG missing for the default partitioner")
	}
	for _, r := range f.Registers() {
		if _, ok := res.Assignment.Of[r]; !ok {
			t.Errorf("register %s unassigned", r)
		}
	}
	if d := res.WeightedDegradation(); d < 100 || d > 400 {
		t.Errorf("weighted degradation %f implausible", d)
	}
	for bi, fb := range res.Blocks {
		if fb.PartSched.Length < fb.IdealSched.Length {
			t.Errorf("block %d clustered schedule beat ideal", bi)
		}
		// Copies must make every op's uses bank-local.
		for i, op := range fb.Copies.Body.Ops {
			if op.Code == ir.Copy {
				continue
			}
			home := fb.Copies.ClusterOf[i]
			for _, u := range op.Uses {
				if res.Assignment.Bank(u) != home {
					t.Errorf("block %d op %d uses %s from a foreign bank", bi, i, u)
				}
			}
		}
	}
}

func TestCompileFunctionSharedAssignment(t *testing.T) {
	// The function-wide RCG must give a cross-block value a single bank:
	// its uses in the hot block see it without surprise copies when the
	// affinity is strong enough, and in any case every block agrees on
	// where it lives.
	f, scale := buildTestFunction()
	cfg := machine.MustClustered16(2, machine.Embedded)
	res, err := CompileFunction(context.Background(), f, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bank, ok := res.Assignment.Of[scale]
	if !ok {
		t.Fatal("cross-block register unassigned")
	}
	if bank < 0 || bank >= cfg.Clusters {
		t.Fatalf("bank %d out of range", bank)
	}
}

func TestCompileFunctionHotBlockDominates(t *testing.T) {
	// With depth weighting, the hot block's registers carry ~100x the
	// node weight of the prologue's; the partition must therefore keep
	// the hot block's chains clean even at 8 clusters. A weak check that
	// is robust to heuristic details: the hot block's degradation must
	// not exceed the function's worst block by definition and must stay
	// below the catastrophic single-cluster bound.
	f, _ := buildTestFunction()
	cfg := machine.MustClustered16(8, machine.Embedded)
	res, err := CompileFunction(context.Background(), f, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hot := res.Blocks[1]
	serialBound := 100.0 * float64(len(hot.Copies.Body.Ops)) / float64(hot.IdealSched.Length) * float64(1) // ops on 1 FU pair
	if hot.Degradation() >= serialBound && serialBound > 100 {
		t.Errorf("hot block degradation %f reached the single-cluster bound %f", hot.Degradation(), serialBound)
	}
	if res.Copies() == 0 {
		t.Log("function compiled with zero copies (clean split)")
	}
}

func TestCompileFunctionEmpty(t *testing.T) {
	f := ir.NewFunction("empty")
	if _, err := CompileFunction(context.Background(), f, machine.MustClustered16(2, machine.Embedded), Options{}); err == nil {
		t.Error("empty function accepted")
	}
}

func TestCompileFunctionWithExplicitPartitioner(t *testing.T) {
	f, _ := buildTestFunction()
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, err := CompileFunction(context.Background(), f, cfg, Options{Partitioner: partition.RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RCG != nil {
		t.Error("RCG should be nil for non-RCG partitioners")
	}
	for bi, fb := range res.Blocks {
		if fb.PartSched == nil {
			t.Errorf("block %d unscheduled", bi)
		}
	}
}
