package codegen

// This file holds the adaptive-weights arm's compile telemetry. The arm
// itself rides inside the portfolio as the "adaptive" candidate (see
// internal/partition and internal/features): the loop's feature vector
// selects a trained weight-vector bucket, the greedy baseline re-runs
// under the predicted weights, and downstream (spills, pressure, II)
// scoring decides adoption. With Options.Adaptive nil none of this runs
// and the pipeline is untouched.

// AdaptiveReport is the adoption telemetry for one compile with the
// adaptive-weights arm enabled (Result.Adaptive; nil when the arm is off
// or proposed nothing — empty table, or predicted weights identical to
// the configured ones).
type AdaptiveReport struct {
	// Ran reports the arm proposed a candidate.
	Ran bool
	// Bucket names the feature→weights table entry the lookup matched
	// (e.g. "r1d2b0").
	Bucket string
	// ExactBucket reports the loop's own bucket was trained; false means
	// the nearest-neighbor bucket stood in.
	ExactBucket bool
	// Won reports the adaptive candidate won the downstream
	// (spills, pressure, II) scoring and was adopted.
	Won bool
}

// ensureAdaptive lazily attaches the telemetry report to the result.
func (r *Result) ensureAdaptive() *AdaptiveReport {
	if r.Adaptive == nil {
		r.Adaptive = &AdaptiveReport{}
	}
	return r.Adaptive
}
