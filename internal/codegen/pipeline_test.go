package codegen

import (
	"context"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
)

func TestCompileDotProductAllMachines(t *testing.T) {
	l := fixtures.DotProduct(4)
	for _, cfg := range machine.PaperConfigs() {
		res, err := Compile(context.Background(), l, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.IdealII() < 2 {
			t.Errorf("%s: ideal II %d below float-add RecMII 2", cfg.Name, res.IdealII())
		}
		if res.PartII() < res.IdealII() {
			t.Errorf("%s: partitioned II %d beat ideal II %d", cfg.Name, res.PartII(), res.IdealII())
		}
		if res.Degradation() < 100 {
			t.Errorf("%s: degradation %f below 100", cfg.Name, res.Degradation())
		}
		// The partitioned schedule must verify against its own graph and
		// cluster pinning.
		if err := modulo.Check(res.PartSched, res.PartGraph, cfg, modulo.Options{ClusterOf: res.Copies.ClusterOf}); err != nil {
			t.Errorf("%s: invalid partitioned schedule: %v", cfg.Name, err)
		}
	}
}

func TestCompileFullyDeterministic(t *testing.T) {
	// The experiment tables must reproduce bit for bit: two independent
	// compilations of the same loop must agree on the partition, the
	// copies and the schedules. (This is a regression test for float
	// accumulation in map order, which once made near-tie bank choices
	// run-dependent.)
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loops {
		a, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.PartII() != b.PartII() || a.Copies.KernelCopies != b.Copies.KernelCopies {
			t.Fatalf("%s: run-dependent result: II %d vs %d, copies %d vs %d",
				l.Name, a.PartII(), b.PartII(), a.Copies.KernelCopies, b.Copies.KernelCopies)
		}
		for r, bank := range a.Assignment.Of {
			if b.Assignment.Of[r] != bank {
				t.Fatalf("%s: partition differs at %s", l.Name, r)
			}
		}
	}
}

func TestCompileMonolithicIsIdentity(t *testing.T) {
	l := fixtures.DotProduct(2)
	res, err := Compile(context.Background(), l, machine.Ideal16(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartII() != res.IdealII() || res.Degradation() != 100 {
		t.Errorf("monolithic compile degraded: %f", res.Degradation())
	}
	if res.Copies.KernelCopies != 0 {
		t.Errorf("monolithic compile inserted %d copies", res.Copies.KernelCopies)
	}
}

func TestCopyInsertionInvariants(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 25, Seed: 5})
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loops {
		res, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		body := res.Copies.Body
		if err := ir.VerifyBlock(body); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if len(res.Copies.ClusterOf) != len(body.Ops) {
			t.Fatalf("%s: ClusterOf covers %d of %d ops", l.Name, len(res.Copies.ClusterOf), len(body.Ops))
		}
		copies := 0
		for i, op := range body.Ops {
			home := res.Copies.ClusterOf[i]
			if op.Code == ir.Copy {
				copies++
				// A copy's destination register lives in its cluster; its
				// source lives elsewhere.
				if res.Assignment.Bank(op.Def()) != home {
					t.Errorf("%s: copy %d lands in bank %d, scheduled on %d", l.Name, i, res.Assignment.Bank(op.Def()), home)
				}
				if res.Assignment.Bank(op.Uses[0]) == home {
					t.Errorf("%s: copy %d copies within one bank", l.Name, i)
				}
				continue
			}
			for _, u := range op.Uses {
				if res.Assignment.Bank(u) != home {
					t.Errorf("%s: op %d (%s) on cluster %d uses %s from bank %d",
						l.Name, i, op, home, u, res.Assignment.Bank(u))
				}
			}
			if d := op.Def(); d != ir.NoReg && res.Assignment.Bank(d) != home {
				t.Errorf("%s: op %d defines into a foreign bank", l.Name, i)
			}
		}
		if copies != res.Copies.KernelCopies {
			t.Errorf("%s: counted %d copies, reported %d", l.Name, copies, res.Copies.KernelCopies)
		}
	}
}

func TestCopyReuseWithinIteration(t *testing.T) {
	// Two consumers of one remote value in the same cluster share a copy.
	l := ir.NewLoop("reuse")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	y1 := b.Mul(x, x)
	y2 := b.Add(x, x)
	b.Store(y1, ir.MemRef{Base: "c", Coeff: 1})
	b.Store(y2, ir.MemRef{Base: "d", Coeff: 1})
	cfg := machine.MustClustered16(2, machine.Embedded)
	// Force x into bank 0 and both consumers into bank 1.
	pre := map[ir.Reg]int{x: 0, y1: 1, y2: 1}
	res, err := Compile(context.Background(), l, cfg, Options{Pre: pre, SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies.KernelCopies != 1 {
		t.Errorf("two same-cluster consumers used %d copies, want 1 shared", res.Copies.KernelCopies)
	}
}

func TestInvariantCopiesHoisted(t *testing.T) {
	l := ir.NewLoop("inv")
	b := ir.NewLoopBuilder(l)
	s := l.NewReg(ir.Float) // invariant
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	m := b.Mul(x, s)
	b.Store(m, ir.MemRef{Base: "c", Coeff: 1})
	cfg := machine.MustClustered16(2, machine.Embedded)
	pre := map[ir.Reg]int{s: 0, x: 1, m: 1}
	res, err := Compile(context.Background(), l, cfg, Options{Pre: pre, SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies.KernelCopies != 0 {
		t.Errorf("invariant copy not hoisted: %d kernel copies", res.Copies.KernelCopies)
	}
	if res.Copies.InvariantCopies != 1 {
		t.Errorf("invariant copies = %d, want 1", res.Copies.InvariantCopies)
	}
}

func TestCompileWithEveryPartitioner(t *testing.T) {
	l := fixtures.DotProduct(3)
	cfg := machine.MustClustered16(4, machine.Embedded)
	parts := []partition.Partitioner{
		partition.Greedy{}, partition.BUG{}, partition.RoundRobin{},
		partition.Random{Seed: 3}, partition.SingleBank{},
	}
	for _, p := range parts {
		res, err := Compile(context.Background(), l, cfg, Options{Partitioner: p, SkipAlloc: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.PartitionerName != p.Name() {
			t.Errorf("partitioner name %q recorded as %q", p.Name(), res.PartitionerName)
		}
		if err := modulo.Check(res.PartSched, res.PartGraph, cfg, modulo.Options{ClusterOf: res.Copies.ClusterOf}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestSingleBankNeverCopies(t *testing.T) {
	l := fixtures.DotProduct(3)
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, err := Compile(context.Background(), l, cfg, Options{Partitioner: partition.SingleBank{}, SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies.KernelCopies != 0 || res.Copies.InvariantCopies != 0 {
		t.Error("single-bank partition must need no copies")
	}
	// But it serializes onto one cluster: II at least ceil(ops/4).
	if res.PartII() < (len(l.Body.Ops)+3)/4 {
		t.Errorf("single-bank II %d below one-cluster resource bound", res.PartII())
	}
}

func TestAllocationProducedPerBank(t *testing.T) {
	l := fixtures.DotProduct(4)
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, err := Compile(context.Background(), l, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alloc) != cfg.Clusters {
		t.Fatalf("alloc results for %d of %d banks", len(res.Alloc), cfg.Clusters)
	}
	if res.MaxPressure() < 1 {
		t.Error("max pressure must be positive for a real loop")
	}
	if res.Spills() != 0 {
		t.Errorf("tiny loop spilled %d registers in 32-register banks", res.Spills())
	}
}

func TestClusteredIPCModels(t *testing.T) {
	l := fixtures.DotProduct(4)
	emb, err := Compile(context.Background(), l, machine.MustClustered16(4, machine.Embedded), Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := Compile(context.Background(), l, machine.MustClustered16(4, machine.CopyUnit), Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	// Embedded IPC counts copies; with equal IIs and equal copy counts the
	// embedded IPC must be at least the copy-unit IPC.
	if emb.PartII() == cu.PartII() && emb.Copies.KernelCopies >= cu.Copies.KernelCopies {
		if emb.ClusteredIPC() < cu.ClusteredIPC() {
			t.Errorf("embedded IPC %f below copy-unit IPC %f despite counting copies",
				emb.ClusteredIPC(), cu.ClusteredIPC())
		}
	}
}
