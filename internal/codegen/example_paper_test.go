package codegen

import (
	"context"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestPaperWorkedExample replays Section 4.2: the xpos statement compiled
// for a machine with two functional units, each with its own register
// bank, unit latencies. The paper's Figure 1 shows an optimal 7-cycle
// ideal schedule; its Figure 3 partition costs two copies (of r2 and r6)
// and 9 cycles. The greedy weights are heuristic, so the test pins the
// paper's hard facts — 7-cycle ideal, a genuine two-bank split, and a
// partitioned schedule within the paper's 2-cycle overhead — rather than
// the exact register-by-register partition.
func TestPaperWorkedExample(t *testing.T) {
	loop, regs := fixtures.PaperExample()
	cfg := machine.Example2x1()
	res, err := CompileBlock(context.Background(), loop, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IdealLength(); got != 7 {
		t.Errorf("ideal schedule length = %d cycles, paper's Figure 1 takes 7", got)
	}
	counts := res.Assignment.Counts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("partition did not use both banks: %v", counts)
	}
	if res.Copies.KernelCopies < 1 || res.Copies.KernelCopies > 3 {
		t.Errorf("partition cost %d copies; the paper's costs 2", res.Copies.KernelCopies)
	}
	if got := res.PartLength(); got > 10 {
		t.Errorf("partitioned schedule = %d cycles; paper's Figure 3 takes 9", got)
	}
	if got := res.PartLength(); got < res.IdealLength() {
		t.Errorf("partitioned schedule (%d) beat the ideal (%d); impossible", got, res.IdealLength())
	}
	// The two multiply chains (r5's and r7/r9's) are the natural split; at
	// minimum the RCG must keep each operation's def and the partition
	// must be recorded for every register.
	for name, r := range regs {
		if _, ok := res.Assignment.Of[r]; !ok {
			t.Errorf("register %s (%s) missing from the assignment", name, r)
		}
	}
	t.Logf("ideal %d cycles, partitioned %d cycles, %d copies, banks %v",
		res.IdealLength(), res.PartLength(), res.Copies.KernelCopies, counts)
	t.Logf("RCG:\n%s", res.RCG)
}

// TestStraightLineCopiesAreLocal verifies the structural invariant of copy
// insertion: after rewriting, every operation's uses live in the
// operation's home bank.
func TestStraightLineCopiesAreLocal(t *testing.T) {
	loop, _ := fixtures.PaperExample()
	cfg := machine.Example2x1()
	res, err := CompileBlock(context.Background(), loop, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range res.Copies.Body.Ops {
		home := res.Copies.ClusterOf[i]
		if op.Code == ir.Copy {
			continue // the copy itself reads the remote bank by design
		}
		for _, u := range op.Uses {
			if b := res.Assignment.Bank(u); b != home {
				t.Errorf("op %d (%s) on cluster %d uses %s from bank %d", i, op, home, u, b)
			}
		}
	}
}
