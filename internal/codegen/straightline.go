package codegen

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/regalloc"
	"repro/internal/sched"
)

// BlockResult is the outcome of compiling straight-line (non-loop) code
// for a clustered machine: the paper's framework "is global in nature" and
// applies to whole functions, not only software-pipelined loops; this path
// drives the Section 4.2 worked example and the whole-function example.
type BlockResult struct {
	// Cfg is the clustered target; IdealCfg the matching monolithic one.
	Cfg, IdealCfg *machine.Config
	// PartitionerName records the method used.
	PartitionerName string
	// IdealGraph and IdealSched are the acyclic DDD and its list schedule
	// on the monolithic machine.
	IdealGraph *ddg.Graph
	IdealSched *sched.Schedule
	// RCG is the register component graph the partition came from (only
	// populated for the RCG greedy partitioner).
	RCG *core.RCG
	// Assignment maps registers to banks.
	Assignment *core.Assignment
	// Copies is the rewritten block with explicit copies (never hoisted —
	// straight-line code has no preheader).
	Copies *CopyInsertion
	// PartGraph and PartSched are the rebuilt DDD and clustered schedule.
	PartGraph *ddg.Graph
	PartSched *sched.Schedule
	// Alloc holds the per-bank coloring results.
	Alloc []*regalloc.Result
}

// IdealLength returns the makespan of the ideal schedule in cycles.
func (r *BlockResult) IdealLength() int { return r.IdealSched.Length }

// PartLength returns the makespan of the clustered schedule in cycles.
func (r *BlockResult) PartLength() int { return r.PartSched.Length }

// Degradation returns 100*PartLength/IdealLength.
func (r *BlockResult) Degradation() float64 {
	return 100 * float64(r.PartLength()) / float64(r.IdealLength())
}

// CompileBlock runs the pipeline's straight-line variant on a block of
// code (wrapped in a Loop container for register numbering): list-schedule
// on the monolithic machine, build the RCG from that ideal schedule,
// partition, insert copies, re-schedule clustered, and color each bank.
// ctx is polled at stage boundaries, as in Compile.
func CompileBlock(ctx context.Context, loop *ir.Loop, cfg *machine.Config, opt Options) (*BlockResult, error) {
	if err := ir.VerifyLoop(loop); err != nil {
		return nil, err
	}
	opt.applyCacheBudget()
	if err := checkpoint(ctx, "sched.ideal"); err != nil {
		return nil, err
	}
	weights := core.DefaultWeights()
	if opt.Weights != nil {
		weights = *opt.Weights
	}
	part := opt.Partitioner
	if part == nil {
		part = partition.Greedy{}
	}
	res := &BlockResult{
		Cfg:             cfg,
		IdealCfg:        IdealOf(cfg),
		PartitionerName: part.Name(),
	}

	res.IdealGraph = ddg.Build(loop.Body, res.IdealCfg, ddg.Options{Carried: false})
	idealSched, err := sched.List(res.IdealGraph, res.IdealCfg, nil)
	if err != nil {
		return nil, fmt.Errorf("codegen: ideal list scheduling of %q: %w", loop.Name, err)
	}
	res.IdealSched = idealSched

	ideal := core.ScheduledBlock{
		Block:  loop.Body,
		Time:   idealSched.Time,
		Length: idealSched.Length,
		Slack:  sched.Slack(res.IdealGraph, res.IdealCfg, idealSched.Length),
	}
	in := &partition.Input{
		Block:   loop.Body,
		Graph:   res.IdealGraph,
		Ideal:   ideal,
		Cfg:     cfg,
		Weights: weights,
		Pre:     opt.Pre,
	}
	if err := checkpoint(ctx, "partition"); err != nil {
		return nil, err
	}
	if g, ok := part.(partition.Greedy); ok {
		res.RCG = g.RCG(in)
	}
	asg, err := part.Assign(in)
	if err != nil {
		return nil, fmt.Errorf("codegen: partitioning %q with %s: %w", loop.Name, part.Name(), err)
	}
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	res.Assignment = asg

	if err := checkpoint(ctx, "copyins"); err != nil {
		return nil, err
	}
	work := loop.Clone()
	res.Copies = InsertCopiesStraightLine(work, asg, cfg)
	if err := ir.VerifyBlock(res.Copies.Body); err != nil {
		return nil, fmt.Errorf("codegen: copy insertion for %q produced invalid code: %w", loop.Name, err)
	}
	res.PartGraph = ddg.Build(res.Copies.Body, cfg, ddg.Options{Carried: false})
	clusterOf := res.Copies.ClusterOf
	partSched, err := sched.List(res.PartGraph, cfg, func(i int) int { return clusterOf[i] })
	if err != nil {
		return nil, fmt.Errorf("codegen: clustered list scheduling of %q: %w", loop.Name, err)
	}
	res.PartSched = partSched

	if !opt.SkipAlloc {
		ranges := regalloc.BlockRanges(res.PartGraph, res.PartSched)
		byBank := make([][]regalloc.LiveRange, cfg.Clusters)
		for _, lr := range ranges {
			byBank[asg.Bank(lr.Reg)] = append(byBank[asg.Bank(lr.Reg)], lr)
		}
		res.Alloc = make([]*regalloc.Result, cfg.Clusters)
		for b := range byBank {
			res.Alloc[b] = regalloc.Color(byBank[b], partSched.Length+1, cfg.RegsPerBank)
		}
	}
	return res, nil
}
