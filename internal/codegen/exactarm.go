package codegen

import (
	"context"
	"fmt"

	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// This file is the scheduler half of the exact-solver arm (the partition
// half rides inside the portfolio as the "exact" candidate — see
// internal/partition). After candidate selection commits a winner, the
// winning clustered schedule is handed to internal/exact's ascending-II
// branch-and-bound: either the heuristic II is proven optimal (it already
// equals the lower bound, or every smaller II is exhausted infeasible),
// or a strictly smaller II is found, verified against modulo.Check, and
// adopted. Both outcomes feed the optimality-gap telemetry; an expired
// budget feeds the budget-exhausted counter instead. With ExactBudget
// zero none of this runs and the pipeline is untouched.

// ExactReport is the optimality-gap telemetry for one compile with the
// exact arms enabled (Result.Exact; nil when ExactBudget is zero).
type ExactReport struct {
	// PartRan reports the branch-and-bound bank assignment searched (the
	// RCG was within the size gate).
	PartRan bool
	// PartProven reports that search exhausted its tree: the exact
	// candidate is optimal for the RCG objective.
	PartProven bool
	// PartImproved reports the exact candidate strictly beat the greedy
	// baseline on the RCG objective.
	PartImproved bool
	// PartWon reports the exact candidate won the downstream
	// (spills, pressure, II) scoring and was adopted.
	PartWon bool
	// PartNodes is the bank-assignment search's node count.
	PartNodes int64

	// SchedRan reports the exact scheduler engaged: it searched, or the
	// heuristic already sat on the lower bound (the free certificate).
	// False when the size gate skipped an unproven loop.
	SchedRan bool
	// SchedProven reports Schedule.II is optimal — proven either by
	// matching MinII outright or by exhausting every smaller II.
	SchedProven bool
	// SchedImproved reports the search found a strictly smaller II than
	// the heuristic and the result was adopted.
	SchedImproved bool
	// SchedNodes is the scheduling search's node count.
	SchedNodes int64
	// MinII is the proven lower bound on the clustered II.
	MinII int
	// HeuristicII is the clustered II the iterative heuristic achieved.
	HeuristicII int
	// II is the final clustered II after the arm (== Result.PartII()).
	II int
}

// ensureExact lazily attaches the telemetry report to the result.
func (r *Result) ensureExact() *ExactReport {
	if r.Exact == nil {
		r.Exact = &ExactReport{}
	}
	return r.Exact
}

// runExactSchedArm runs the exact scheduling search on the committed
// clustered schedule and adopts a verified improvement. A no-op unless
// opt.ExactBudget is positive; never called on monolithic machines (the
// gap under study is the clustered II).
func runExactSchedArm(ctx context.Context, res *Result, cfg *machine.Config, opt Options, tr *trace.Tracer, ar *scratch.Arena) error {
	if opt.ExactBudget <= 0 {
		return nil
	}
	sp := tr.StartSpan("codegen.exact.sched")
	rep := res.ensureExact()
	rep.HeuristicII = res.PartSched.II
	rep.II = res.PartSched.II

	ctx, cancel := context.WithTimeout(ctx, opt.ExactBudget)
	defer cancel()
	eres, err := exact.Schedule(ctx, exact.ScheduleInput{
		Graph:      res.PartGraph,
		Cfg:        cfg,
		ClusterOf:  res.Copies.ClusterOf,
		Incumbent:  res.PartSched,
		NodeBudget: opt.ExactNodes,
	})
	if err != nil {
		return fmt.Errorf("codegen: exact scheduling of %q: %w", res.Loop.Name, err)
	}
	rep.MinII = eres.MinII
	rep.SchedRan = eres.Nodes > 0 || eres.Proven
	rep.SchedProven = eres.Proven
	rep.SchedNodes = eres.Nodes
	if eres.Improved {
		// Trust nothing: the improved schedule must pass the same verifier
		// the property tests use before it replaces the heuristic's.
		mOpts := modulo.Options{ClusterOf: res.Copies.ClusterOf}
		if err := modulo.Check(eres.Schedule, res.PartGraph, cfg, mOpts); err != nil {
			return fmt.Errorf("codegen: exact schedule of %q rejected by verifier: %w", res.Loop.Name, err)
		}
		rep.SchedImproved = true
		rep.II = eres.Schedule.II
		res.PartSched = eres.Schedule
		if !opt.SkipAlloc {
			// Lifetimes moved; the per-bank coloring must be redone.
			res.Alloc = allocateParts(res.PartGraph, res.PartSched, res.Assignment, cfg, tr, ar)
		}
		tr.Add("codegen.exact.sched_improvements", 1)
	}
	if eres.Proven {
		tr.Add("codegen.exact.sched_proven", 1)
	}
	sp.Int("minII", int64(rep.MinII)).Int("heuristicII", int64(rep.HeuristicII)).
		Int("finalII", int64(rep.II)).Int("nodes", rep.SchedNodes).End()
	return nil
}
