package codegen

import (
	"context"
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
)

// This file adds the iteration the paper leaves as future work. Section
// 6.3 observes that Nystrom and Eichenberger's partitioner iterates while
// "our greedy algorithm can be thought of as an initial phase before
// iteration is performed", and credits iteration with shrinking their
// share of degraded loops from 5% to 2%. CompileRefined wraps the ordinary
// pipeline in exactly that loop: compile, and while the clustered II
// exceeds the ideal II, try relocating the registers involved in
// inter-cluster copies (each candidate move is evaluated by a full
// recompile with the move pre-colored); keep any move that shrinks the II
// and repeat until a round yields no improvement or the budget runs out.

// RefineStats reports what the refinement did.
type RefineStats struct {
	// Rounds actually executed; MovesTried and MovesKept count candidate
	// relocations evaluated and accepted.
	Rounds, MovesTried, MovesKept int
	// StartII and FinalII bracket the improvement.
	StartII, FinalII int
}

// CompileRefined runs the pipeline, then iteratively improves the
// partition. It returns the best result found and the refinement stats.
// The rounds and per-round trial budget come from opt.RefineRounds and
// opt.RefineTrials; ctx is polled before every trial recompile, so a
// deadline bounds the whole feedback loop, not just one pipeline pass.
func CompileRefined(ctx context.Context, loop *ir.Loop, cfg *machine.Config, opt Options) (*Result, *RefineStats, error) {
	rounds := opt.RefineRounds
	if rounds <= 0 {
		rounds = 4
	}
	trials := opt.RefineTrials
	if trials <= 0 {
		trials = 24
	}
	best, err := Compile(ctx, loop, cfg, opt)
	if err != nil {
		return nil, nil, err
	}
	stats := &RefineStats{StartII: best.PartII(), FinalII: best.PartII()}
	if cfg.Monolithic() {
		return best, stats, nil
	}

	for round := 0; round < rounds; round++ {
		if best.PartII() <= best.IdealII() {
			break // already at the ideal: nothing to win
		}
		stats.Rounds = round + 1
		improved := false
		for _, mv := range candidateMoves(best, trials) {
			if err := checkpoint(ctx, "refine"); err != nil {
				return nil, nil, err
			}
			stats.MovesTried++
			pre := overrideAssignment(loop, best, mv)
			trialOpt := opt
			trialOpt.Pre = pre
			trialOpt.SkipAlloc = true
			trial, err := Compile(ctx, loop, cfg, trialOpt)
			if err != nil {
				if isCtxErr(err) {
					return nil, nil, err
				}
				continue // an infeasible move is just skipped
			}
			if trial.PartII() < best.PartII() {
				stats.MovesKept++
				if !opt.SkipAlloc {
					trial.Alloc = allocate(trial, opt.Tracer, opt.Scratch)
				}
				best = trial
				improved = true
				break // restart candidate generation from the new best
			}
		}
		if !improved {
			break
		}
	}
	stats.FinalII = best.PartII()
	return best, stats, nil
}

// move relocates one register to another bank.
type move struct {
	reg  ir.Reg
	bank int
}

// candidateMoves proposes relocations for the registers whose placement
// costs copies: for every inter-cluster copy in the compiled result, the
// copied value could move to the consumer's bank (deleting the copy) —
// ordered by how many copies of that value exist, most-copied first.
func candidateMoves(res *Result, limit int) []move {
	type key struct {
		reg  ir.Reg
		bank int
	}
	weight := make(map[key]int)
	for i, op := range res.Copies.Body.Ops {
		if op.Code != ir.Copy {
			continue
		}
		src := op.Uses[0]
		dst := res.Copies.ClusterOf[i]
		weight[key{src, dst}]++
		// The reverse move — pulling the consumer's value toward the
		// producer — is proposed via the copy's destination register's
		// consumers, which later copies already cover; the direct move
		// dominates in practice.
	}
	keys := make([]key, 0, len(weight))
	for k := range weight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if weight[keys[a]] != weight[keys[b]] {
			return weight[keys[a]] > weight[keys[b]]
		}
		if keys[a].reg.Class != keys[b].reg.Class {
			return keys[a].reg.Class < keys[b].reg.Class
		}
		if keys[a].reg.ID != keys[b].reg.ID {
			return keys[a].reg.ID < keys[b].reg.ID
		}
		return keys[a].bank < keys[b].bank
	})
	if len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]move, len(keys))
	for i, k := range keys {
		out[i] = move{reg: k.reg, bank: k.bank}
	}
	return out
}

// overrideAssignment builds a pre-coloring that pins every original
// register to its current bank except the moved one. Copy registers
// introduced by the previous compile are excluded — the next compile
// re-derives its own copies.
func overrideAssignment(loop *ir.Loop, res *Result, mv move) map[ir.Reg]int {
	pre := make(map[ir.Reg]int)
	for _, r := range loop.Body.Registers() {
		pre[r] = res.Assignment.Bank(r)
	}
	pre[mv.reg] = mv.bank
	return pre
}
