package codegen

import (
	"context"
	"testing"
	"time"

	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

// exactTestOptions are the exact-arm settings every oracle test here uses:
// the portfolio (so the branch-and-bound candidate competes against the
// greedy baseline at index 0), a fixed node budget for determinism, and a
// generous wall-clock safety net so the node budget is what stops work.
func exactTestOptions(skipAlloc bool) Options {
	return Options{
		Partitioner: partition.Portfolio{},
		SkipAlloc:   skipAlloc,
		ExactBudget: 10 * time.Second,
		ExactNodes:  20_000,
	}
}

// TestExactNeverWorseII is the differential oracle on the initiation
// interval: with alloc skipped the portfolio scores on II alone, so the
// exact-enabled pipeline must meet or beat the plain greedy pipeline on
// every loop of the suite slice — never-worse is a per-loop guarantee,
// not an aggregate one. The telemetry must agree: MinII ≤ final II ≤
// heuristic II, and at least one loop must end with a certificate.
func TestExactNeverWorseII(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 60, Seed: loopgen.DefaultParams().Seed})
	proven := 0
	for _, clusters := range []int{2, 4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		for _, l := range loops {
			greedy, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
			if err != nil {
				t.Fatalf("%s on %s (greedy): %v", l.Name, cfg.Name, err)
			}
			ex, err := Compile(context.Background(), l, cfg, exactTestOptions(true))
			if err != nil {
				t.Fatalf("%s on %s (exact): %v", l.Name, cfg.Name, err)
			}
			if ex.PartII() > greedy.PartII() {
				t.Fatalf("%s on %s: exact II %d worse than greedy %d",
					l.Name, cfg.Name, ex.PartII(), greedy.PartII())
			}
			rep := ex.Exact
			if rep == nil {
				t.Fatalf("%s on %s: no exact report", l.Name, cfg.Name)
			}
			if rep.SchedRan && rep.MinII > rep.II {
				t.Fatalf("%s on %s: final II %d below the lower bound %d",
					l.Name, cfg.Name, rep.II, rep.MinII)
			}
			if rep.II > rep.HeuristicII {
				t.Fatalf("%s on %s: exact arm raised II %d -> %d",
					l.Name, cfg.Name, rep.HeuristicII, rep.II)
			}
			if rep.SchedProven {
				proven++
			}
		}
	}
	if proven == 0 {
		t.Fatal("no proven-optimal loop in the whole sweep")
	}
}

// TestExactNeverWorseSpills is the same oracle on the allocator outcome:
// with full per-bank coloring the portfolio scores lexicographically on
// (spills, pressure, II), the greedy assignment stays in as candidate 0,
// and the exact candidate must strictly win to displace it — so the
// exact-enabled pipeline can never spill more than plain greedy.
func TestExactNeverWorseSpills(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	for _, clusters := range []int{4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		for _, l := range loops {
			greedy, err := Compile(context.Background(), l, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s (greedy): %v", l.Name, cfg.Name, err)
			}
			ex, err := Compile(context.Background(), l, cfg, exactTestOptions(false))
			if err != nil {
				t.Fatalf("%s on %s (exact): %v", l.Name, cfg.Name, err)
			}
			if ex.Spills() > greedy.Spills() {
				t.Fatalf("%s on %s: exact spills %d worse than greedy %d",
					l.Name, cfg.Name, ex.Spills(), greedy.Spills())
			}
		}
	}
}

// TestExactArmDisabledAllocFree complements the root package's
// TestCompileAllocBudget: one steady-state Compile of a suite loop stays
// within a fixed allocation budget, and switching the exact arm off
// (ExactBudget zero, the default) adds not a single allocation over the
// plain options — the disabled arm must be free.
func TestExactArmDisabledAllocFree(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 8, Seed: loopgen.DefaultParams().Seed})
	loop := loops[3]
	cfg := machine.MustClustered16(4, machine.Embedded)
	compile := func(opt Options) func() {
		return func() {
			if _, err := Compile(context.Background(), loop, cfg, opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(50, compile(Options{}))
	armOff := testing.AllocsPerRun(50, compile(Options{ExactBudget: 0, ExactNodes: 0}))
	// The budget brackets the PR-4 steady state (~120 allocs for a suite
	// loop) with room for small future drift, not for regressions in kind.
	const budget = 400
	if base > budget {
		t.Fatalf("plain compile costs %.0f allocs, budget %d", base, budget)
	}
	if raceDelayFactor > 1 {
		// The race runtime allocates nondeterministically inside
		// instrumented code, so AllocsPerRun counts jitter by a few
		// allocations between runs; exact equality only holds on the
		// plain runtime.
		t.Skipf("skipping exact-equality check under the race detector (base %.0f, armOff %.0f)", base, armOff)
	}
	if armOff != base {
		t.Fatalf("disabled exact arm changed allocations: %.0f vs %.0f", armOff, base)
	}
}

// TestDifferentialSweepExactArm runs the interpreter-backed differential
// oracle with both exact arms on: whatever the branch-and-bound search
// adopts, the emitted clustered kernel must still execute bit-identically
// to the original loop body — same store stream, same memory, same final
// registers — across the 2/4/8-cluster grid under both copy models.
func TestDifferentialSweepExactArm(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	runDifferentialSweepOpts(t, loops, exactTestOptions(true))
}
