//go:build !race

package codegen

const raceDelayFactor = 1
