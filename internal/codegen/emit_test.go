package codegen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func TestEmitListing(t *testing.T) {
	l := fixtures.DotProduct(2)
	cfg := machine.MustClustered16(2, machine.Embedded)
	res, err := Compile(context.Background(), l, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Emit(res, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernel (repeats", "prelude", "II=", "b0r", "||"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// Physical names only: no bare virtual registers like " f3," outside
	// spill markers.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " f") && !strings.Contains(line, "!") && !strings.HasPrefix(line, ";") {
			t.Errorf("virtual register leaked into listing: %q", line)
		}
	}
}

func TestEmitRequiresAllocation(t *testing.T) {
	l := fixtures.DotProduct(2)
	res, err := Compile(context.Background(), l, machine.MustClustered16(2, machine.Embedded), Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(res, EmitOptions{}); err == nil {
		t.Error("Emit accepted a result without allocation")
	}
}

func TestEmitSuiteSmoke(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.CopyUnit)
	for _, l := range loopgen.Generate(loopgen.Params{N: 8, Seed: 47}) {
		res, err := Compile(context.Background(), l, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Emit(res, EmitOptions{Trip: res.PartSched.Stages() + 3})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if !strings.Contains(out, "kernel") {
			t.Errorf("%s: listing incomplete", l.Name)
		}
	}
}
