package codegen

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
)

// value identifies a produced value for the dataflow simulator: which
// original operation defined it, on behalf of which iteration.
type value struct {
	op, iter int
}

// simulateOriginal interprets the loop body for trips iterations and
// returns, for every (iteration, op, useIndex), the value each use reads.
// Loop invariants read a sentinel {-1,-1}.
func simulateOriginal(body *ir.Block, trips int) map[[3]int]value {
	regVal := make(map[ir.Reg]value)
	out := make(map[[3]int]value)
	for it := 0; it < trips; it++ {
		for oi, op := range body.Ops {
			for ui, u := range op.Uses {
				v, ok := regVal[u]
				if !ok {
					v = value{-1, -1}
				}
				out[[3]int{it, oi, ui}] = v
			}
			for _, d := range op.Defs {
				regVal[d] = value{oi, it}
			}
		}
	}
	return out
}

// simulateMVE interprets the unrolled kernel for trips/unroll repetitions
// and reconstructs the same (iteration, original op, useIndex) -> value
// map, using the fact that unrolled copy u of repetition r executes
// iteration r*unroll+u and that op order within a copy matches the
// original body.
func simulateMVE(mve *MVE, bodyOps, trips int) map[[3]int]value {
	regVal := make(map[ir.Reg]value)
	out := make(map[[3]int]value)
	reps := trips / mve.Unroll
	for rep := 0; rep < reps; rep++ {
		for idx, op := range mve.Body.Ops {
			u := idx / bodyOps
			oi := idx % bodyOps
			it := rep*mve.Unroll + u
			for ui, r := range op.Uses {
				v, ok := regVal[r]
				if !ok {
					v = value{-1, -1}
				}
				out[[3]int{it, oi, ui}] = v
			}
			for _, d := range op.Defs {
				regVal[d] = value{oi, it}
			}
		}
	}
	return out
}

// TestMVEPreservesDataflow is the semantic proof of modulo variable
// expansion: executing the renamed, unrolled kernel produces exactly the
// same def-use pairs as executing the original body iteration by
// iteration — while lifting the lifetime-under-II restriction the
// renaming exists to remove.
func TestMVEPreservesDataflow(t *testing.T) {
	cfg := machine.Ideal16()
	loops := append(loopgen.Generate(loopgen.Params{N: 15, Seed: 31}),
		fixtures.DotProduct(3), fixtures.Accumulator(ir.Float))
	for _, l := range loops {
		work := l.Clone()
		g := ddg.Build(work.Body, cfg, ddg.Options{Carried: true})
		s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mve, err := ExpandVariables(work, g, s)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		trips := mve.Unroll * 4
		want := simulateOriginal(l.Body, trips)
		got := simulateMVE(mve, len(l.Body.Ops), trips)
		// Skip the warm-up iterations: upward-exposed uses read preheader
		// values there (sentinel in the original, possibly a renamed
		// sentinel in the MVE body), so compare steady state only.
		warm := mve.Unroll
		for key, wv := range want {
			if key[0] < warm || wv.iter < 0 {
				continue
			}
			if gv := got[key]; gv != wv {
				t.Fatalf("%s: iteration %d op %d use %d reads %v, want %v (unroll %d)",
					l.Name, key[0], key[1], key[2], gv, wv, mve.Unroll)
			}
		}
	}
}

func TestMVEUnrollFactor(t *testing.T) {
	// An accumulator's lifetime is exactly the II (def to next-iteration
	// use), so no expansion is needed; a long-latency producer consumed
	// late needs several names.
	cfg := machine.Ideal16()
	l := fixtures.Accumulator(ir.Float)
	work := l.Clone()
	g := ddg.Build(work.Body, cfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mve, err := ExpandVariables(work, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mve.Body.Ops) != mve.Unroll*len(l.Body.Ops) {
		t.Errorf("unrolled body has %d ops, want %d copies of %d",
			len(mve.Body.Ops), mve.Unroll, len(l.Body.Ops))
	}
	for r, n := range mve.Names {
		if n < 1 {
			t.Errorf("register %s has %d names", r, n)
		}
	}
}

func TestMVERenamedBodyWellFormed(t *testing.T) {
	cfg := machine.Ideal16()
	for _, l := range loopgen.Generate(loopgen.Params{N: 10, Seed: 41}) {
		work := l.Clone()
		g := ddg.Build(work.Body, cfg, ddg.Options{Carried: true})
		s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mve, err := ExpandVariables(work, g, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := ir.VerifyBlock(mve.Body); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		// Renamed registers must be fresh: no clash with original IDs
		// except name 0 (which reuses the original).
		orig := make(map[ir.Reg]bool)
		for _, r := range l.Body.Registers() {
			orig[r] = true
		}
		for r, bank := range mve.NameOf {
			if bank[0] != r {
				t.Errorf("%s: name 0 of %s is %s, want the original", l.Name, r, bank[0])
			}
			for _, nr := range bank[1:] {
				if orig[nr] {
					t.Errorf("%s: renamed register %s collides with an original", l.Name, nr)
				}
			}
		}
	}
}

func TestMVELifetimeRespectsNames(t *testing.T) {
	// A value produced by a 2-cycle multiply but consumed 2 iterations
	// later (distance-2 memory-style chain through registers is not
	// expressible, so force it via a long chain): check names >= 2 when a
	// lifetime crosses the II.
	cfg := machine.Ideal16()
	l := fixtures.DotProduct(8) // II is add-latency bound; mul->add spans
	work := l.Clone()
	g := ddg.Build(work.Body, cfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mve, err := ExpandVariables(work, g, s)
	if err != nil {
		t.Fatal(err)
	}
	expanded := 0
	for _, n := range mve.Names {
		if n > 1 {
			expanded++
		}
	}
	if s.Stages() > 1 && expanded == 0 {
		t.Error("multi-stage pipeline with no expanded lifetimes is suspicious")
	}
}
