package codegen

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// This file is the scoring half of portfolio partitioning. The generator
// (partition.CandidateGenerator) proposes K register-to-bank assignments;
// this side carries each through steps 4-5 — copy insertion, clustered
// rescheduling, per-bank coloring — in a bounded worker pool and keeps the
// candidate with the best downstream outcome. Scores compare
// lexicographically on (spills, max pressure, clustered II): spills are
// the paper's disaster case, pressure is the margin against future
// spills, and II is the metric Figures 5-7 report. Candidate order is
// fixed by the generator and a later candidate must be *strictly* better
// to displace an earlier one, so with the baseline at index 0 the chosen
// result is never worse than the single-shot heuristic and the selection
// is identical whether scoring runs on one worker or many.

// candidateScore orders portfolio candidates; lower is better.
type candidateScore struct {
	spills   int
	pressure int
	ii       int
}

func scoreOf(p *clusteredParts) candidateScore {
	s := candidateScore{ii: p.sched.II}
	for _, a := range p.alloc {
		if a == nil {
			continue
		}
		s.spills += len(a.Spilled)
		if a.MaxLive > s.pressure {
			s.pressure = a.MaxLive
		}
	}
	return s
}

// less reports whether s beats t strictly.
func (s candidateScore) less(t candidateScore) bool {
	if s.spills != t.spills {
		return s.spills < t.spills
	}
	if s.pressure != t.pressure {
		return s.pressure < t.pressure
	}
	return s.ii < t.ii
}

// compilePortfolio is Compile's step 3-5 path for portfolio-capable
// partitioners. It fills res with the winning candidate's assignment,
// copies, clustered graph/schedule and coloring, and records the winner's
// variant name in res.PortfolioVariant.
//
// Candidates that fail downstream (copy insertion or scheduling) are
// skipped; the compile only fails if every candidate does. With
// opt.SkipAlloc the spill and pressure components are zero for every
// candidate and selection falls back to the clustered II alone.
func compilePortfolio(ctx context.Context, res *Result, loop *ir.Loop, fp *cache.BlockFP, cfg *machine.Config, opt Options, weights core.Weights, gen partition.CandidateGenerator, tr *trace.Tracer, ar *scratch.Arena) error {
	psp := tr.StartSpan("codegen.portfolio")
	ideal := IdealView(loop.Body, res.IdealGraph, res.IdealCfg, res.IdealSched)
	cands, err := gen.Candidates(&partition.Input{
		Block:       loop.Body,
		Graph:       res.IdealGraph,
		Ideal:       ideal,
		Cfg:         cfg,
		Weights:     weights,
		Pre:         opt.Pre,
		Tracer:      tr,
		Cache:       opt.Cache,
		BlockFP:     fp,
		Arena:       ar,
		Ctx:         ctx,
		ExactBudget: opt.ExactBudget,
		ExactNodes:  opt.ExactNodes,
		Adaptive:    opt.Adaptive,
	})
	if err != nil {
		return fmt.Errorf("codegen: partitioning %q with %s: %w", loop.Name, gen.Name(), err)
	}
	if len(cands) == 0 {
		return fmt.Errorf("codegen: partitioning %q with %s: no candidates", loop.Name, gen.Name())
	}
	for _, c := range cands {
		if err := c.Assignment.Validate(); err != nil {
			return err
		}
	}

	workers := gen.ScoringWorkers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	// Score every candidate. Results land in fixed slots so the selection
	// below never depends on completion order. An arena is single-threaded
	// by contract, so each worker draws its own from the shared pool
	// instead of borrowing the compile's.
	parts := make([]*clusteredParts, len(cands))
	errs := make([]error, len(cands))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cands {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			wa := scratch.Get()
			defer wa.Release()
			parts[i], errs[i] = compileClustered(ctx, loop, fp, cfg, opt, cands[i].Assignment, tr, wa)
		}(i)
	}
	wg.Wait()

	best := -1
	var bestScore candidateScore
	for i, p := range parts {
		if p == nil {
			continue
		}
		s := scoreOf(p)
		if best < 0 || s.less(bestScore) {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		// Every candidate failed; the baseline's error is the most useful.
		return errs[0]
	}
	res.adopt(parts[best])
	res.PortfolioVariant = cands[best].Name
	for i := range cands {
		st := cands[i].Exact
		if st == nil {
			continue
		}
		rep := res.ensureExact()
		rep.PartRan = st.Ran
		rep.PartProven = st.Proven
		rep.PartImproved = st.Improved
		rep.PartNodes = st.Nodes
		rep.PartWon = i == best
		if st.Proven {
			tr.Add("codegen.exact.part_proven", 1)
		}
		if rep.PartWon {
			tr.Add("codegen.exact.part_wins", 1)
		}
	}
	for i := range cands {
		st := cands[i].Adaptive
		if st == nil {
			continue
		}
		rep := res.ensureAdaptive()
		rep.Ran = true
		rep.Bucket = st.Bucket
		rep.ExactBucket = st.ExactBucket
		rep.Won = i == best
		tr.Add("codegen.adaptive.candidates", 1)
		if rep.Won {
			tr.Add("codegen.adaptive.wins", 1)
		}
	}
	tr.Add("codegen.portfolio.candidates", int64(len(cands)))
	if best != 0 {
		tr.Add("codegen.portfolio.improvements", 1)
	}
	psp.Int("candidates", int64(len(cands))).
		Int("winner", int64(best)).
		Int("spills", int64(bestScore.spills)).
		Int("maxPressure", int64(bestScore.pressure)).
		Int("partII", int64(bestScore.ii)).End()
	return nil
}
