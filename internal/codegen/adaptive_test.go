package codegen

import (
	"context"
	"testing"

	"repro/internal/features"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

// adaptiveTestOptions enables the adaptive-weights arm the way the CLIs
// do: the checked-in trained table on top of portfolio partitioning.
func adaptiveTestOptions(skipAlloc bool) Options {
	return Options{
		Partitioner: partition.Portfolio{},
		SkipAlloc:   skipAlloc,
		Adaptive:    features.Default(),
	}
}

// lexWorse reports whether (s1,p1,i1) loses to (s2,p2,i2) on the
// portfolio's lexicographic (spills, max pressure, II) order.
func lexWorse(s1, p1, i1, s2, p2, i2 int) bool {
	if s1 != s2 {
		return s1 > s2
	}
	if p1 != p2 {
		return p1 > p2
	}
	return i1 > i2
}

// TestAdaptiveNeverWorseSuite is the suite-wide differential oracle on
// the II: with alloc skipped the portfolio scores on II alone, so for
// every (loop, machine) cell the adaptive-enabled pipeline must meet or
// beat both the fixed-weight greedy and the plain portfolio. The
// guarantee is structural — the adaptive candidate is appended after the
// baseline and must strictly win the downstream scoring to be adopted —
// so a violation means the arm broke candidate selection.
func TestAdaptiveNeverWorseSuite(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 60, Seed: loopgen.DefaultParams().Seed})
	ran, won := 0, 0
	for _, clusters := range []int{2, 4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		for _, l := range loops {
			greedy, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
			if err != nil {
				t.Fatalf("%s on %s (greedy): %v", l.Name, cfg.Name, err)
			}
			plain, err := Compile(context.Background(), l, cfg,
				Options{Partitioner: partition.Portfolio{}, SkipAlloc: true})
			if err != nil {
				t.Fatalf("%s on %s (portfolio): %v", l.Name, cfg.Name, err)
			}
			ad, err := Compile(context.Background(), l, cfg, adaptiveTestOptions(true))
			if err != nil {
				t.Fatalf("%s on %s (adaptive): %v", l.Name, cfg.Name, err)
			}
			if ad.PartII() > greedy.PartII() {
				t.Fatalf("%s on %s: adaptive II %d worse than greedy %d",
					l.Name, cfg.Name, ad.PartII(), greedy.PartII())
			}
			if ad.PartII() > plain.PartII() {
				t.Fatalf("%s on %s: adaptive II %d worse than plain portfolio %d",
					l.Name, cfg.Name, ad.PartII(), plain.PartII())
			}
			rep := ad.Adaptive
			if rep == nil {
				continue
			}
			if !rep.Ran || rep.Bucket == "" {
				t.Fatalf("%s on %s: malformed adaptive report %+v", l.Name, cfg.Name, rep)
			}
			ran++
			if rep.Won {
				won++
				if ad.PortfolioVariant != "adaptive" {
					t.Fatalf("%s on %s: report says the adaptive arm won but the variant is %q",
						l.Name, cfg.Name, ad.PortfolioVariant)
				}
			} else if ad.PortfolioVariant == "adaptive" {
				t.Fatalf("%s on %s: variant is adaptive but the report says it lost", l.Name, cfg.Name)
			}
		}
	}
	if ran == 0 {
		t.Fatal("the adaptive arm never proposed a candidate across the whole sweep")
	}
	t.Logf("adaptive arm ran on %d cells, won %d", ran, won)
}

// TestAdaptiveNeverWorseAlloc is the same oracle under full per-bank
// coloring, on the portfolio's real lexicographic (spills, pressure, II)
// score.
func TestAdaptiveNeverWorseAlloc(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	for _, clusters := range []int{4, 8} {
		cfg := machine.MustClustered16(clusters, machine.Embedded)
		for _, l := range loops {
			greedy, err := Compile(context.Background(), l, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s (greedy): %v", l.Name, cfg.Name, err)
			}
			ad, err := Compile(context.Background(), l, cfg, adaptiveTestOptions(false))
			if err != nil {
				t.Fatalf("%s on %s (adaptive): %v", l.Name, cfg.Name, err)
			}
			if lexWorse(ad.Spills(), ad.MaxPressure(), ad.PartII(),
				greedy.Spills(), greedy.MaxPressure(), greedy.PartII()) {
				t.Fatalf("%s on %s: adaptive (%d,%d,%d) worse than greedy (%d,%d,%d)",
					l.Name, cfg.Name, ad.Spills(), ad.MaxPressure(), ad.PartII(),
					greedy.Spills(), greedy.MaxPressure(), greedy.PartII())
			}
		}
	}
}

// TestAdaptiveOffNoReport pins the off-by-default contract: without
// Options.Adaptive no report appears and no "adaptive" candidate can win,
// and the arm never engages on a single-shot partitioner even when the
// table is set — matching greedy's output exactly.
func TestAdaptiveOffNoReport(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 10, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loops {
		plain, err := Compile(context.Background(), l, cfg, Options{Partitioner: partition.Portfolio{}})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Adaptive != nil {
			t.Fatalf("%s: adaptive report present with the arm off: %+v", l.Name, plain.Adaptive)
		}
		if plain.PortfolioVariant == "adaptive" {
			t.Fatalf("%s: adaptive variant won with the arm off", l.Name)
		}

		greedy, err := Compile(context.Background(), l, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		onGreedy, err := Compile(context.Background(), l, cfg, Options{Adaptive: features.Default()})
		if err != nil {
			t.Fatal(err)
		}
		if onGreedy.Adaptive != nil {
			t.Fatalf("%s: adaptive arm engaged on the single-shot greedy", l.Name)
		}
		if onGreedy.PartII() != greedy.PartII() || onGreedy.Spills() != greedy.Spills() {
			t.Fatalf("%s: table on a single-shot partitioner changed the result", l.Name)
		}
	}
}

// TestAdaptiveEmptyTableNoCandidate: an empty table (no trained buckets)
// must behave exactly like the arm being off — lookup fails, no candidate
// is appended, no report is written.
func TestAdaptiveEmptyTableNoCandidate(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 10, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	empty := &features.Table{Version: 1}
	for _, l := range loops {
		res, err := Compile(context.Background(), l, cfg,
			Options{Partitioner: partition.Portfolio{}, Adaptive: empty})
		if err != nil {
			t.Fatal(err)
		}
		if res.Adaptive != nil {
			t.Fatalf("%s: empty table produced a report %+v", l.Name, res.Adaptive)
		}
	}
}
