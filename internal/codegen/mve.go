package codegen

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/modulo"
)

// This file implements modulo variable expansion (Lam, PLDI 1988): when a
// value's lifetime exceeds the II, consecutive iterations would overwrite
// it before its consumers have read it. Machines without rotating register
// files solve this in the compiler by unrolling the kernel and renaming
// such registers round-robin across the copies. The modulo scheduler in
// this reproduction deliberately drops loop-carried anti/output register
// dependences (see internal/ddg), and this pass is the transformation that
// makes that legal in generated code; the per-bank register cost it
// implies (ceil(lifetime/II) names per value) is what internal/regalloc
// charges during coloring.

// MVE is the result of modulo variable expansion on a loop kernel.
type MVE struct {
	// Unroll is the kernel unroll factor: the largest per-register name
	// requirement. Each register's name count is then rounded up to a
	// divisor of Unroll so the round-robin renaming cycles an integral
	// number of times per unrolled body (Lam's "reduced" unrolling — the
	// alternative, unrolling by the LCM of all name counts, explodes on
	// mixed-latency kernels). The rounding can cost a few extra names per
	// value; the allocator's ceil(lifetime/II) charge is the lower bound a
	// rotating register file would achieve.
	Unroll int
	// Names maps each expanded register to how many names it received
	// (MinNames rounded up to a divisor of Unroll).
	Names map[ir.Reg]int
	// MinNames maps each register to ceil(lifetime/II) — the minimum a
	// rotating register file would need. The difference Names-MinNames is
	// the register cost of doing MVE in software.
	MinNames map[ir.Reg]int
	// Body is the unrolled kernel: Unroll renamed copies of the original
	// body in program order. Iteration u's copy uses name (u mod n) for a
	// register with n names; a use reading a value defined d iterations
	// earlier uses name ((u-d) mod n).
	Body *ir.Block
	// NameOf reports the renamed register for (original register, name
	// index); registers with one name map to themselves.
	NameOf map[ir.Reg][]ir.Reg
}

// ExpandVariables performs modulo variable expansion for the given kernel
// schedule. The dependence graph supplies lifetimes (via true edges and
// their distances) and the def-use distances needed to rename uses.
// Fresh registers are allocated from the loop.
func ExpandVariables(loop *ir.Loop, g *ddg.Graph, s *modulo.Schedule) (*MVE, error) {
	body := loop.Body
	if len(g.Ops) != len(body.Ops) {
		return nil, fmt.Errorf("codegen: graph covers %d ops, body has %d", len(g.Ops), len(body.Ops))
	}
	// Lifetime per register: def issue time to last (distance-adjusted)
	// use; names = ceil(lifetime / II), minimum 1.
	defTime := make(map[ir.Reg]int)
	for i, op := range body.Ops {
		for _, d := range op.Defs {
			if _, ok := defTime[d]; !ok {
				defTime[d] = s.Time[i]
			}
		}
	}
	end := make(map[ir.Reg]int)
	for from := range g.Ops {
		for _, e := range g.Out[from] {
			if e.Kind != ddg.True {
				continue
			}
			if t := s.Time[e.To] + e.Distance*s.II + 1; t > end[e.Reg] {
				end[e.Reg] = t
			}
		}
	}
	names := make(map[ir.Reg]int)
	minNames := make(map[ir.Reg]int)
	unroll := 1
	for r, t0 := range defTime {
		n := 1
		if e, ok := end[r]; ok && e > t0 {
			n = (e - t0 + s.II - 1) / s.II
			if n < 1 {
				n = 1
			}
		}
		names[r] = n
		minNames[r] = n
		if n > unroll {
			unroll = n
		}
	}
	// Defensive cap: suite lifetimes span a few IIs, so the factor stays
	// tiny; a pathological input gets a clear error, not a code explosion.
	if unroll > 64 {
		return nil, fmt.Errorf("codegen: MVE unroll factor %d exceeds 64", unroll)
	}
	// Round every name count up to a divisor of the unroll factor so that
	// (iteration mod names) advances consistently across unrolled bodies.
	for r, n := range names {
		for unroll%n != 0 {
			n++
		}
		names[r] = n
	}

	mve := &MVE{
		Unroll:   unroll,
		Names:    names,
		MinNames: minNames,
		Body:     &ir.Block{Depth: body.Depth},
		NameOf:   make(map[ir.Reg][]ir.Reg),
	}
	nameFor := func(r ir.Reg, idx int) ir.Reg {
		n := names[r]
		if n <= 1 {
			return r
		}
		bank := mve.NameOf[r]
		if bank == nil {
			bank = make([]ir.Reg, n)
			bank[0] = r // name 0 keeps the original register
			for k := 1; k < n; k++ {
				bank[k] = loop.NewReg(r.Class)
			}
			mve.NameOf[r] = bank
		}
		return bank[((idx%n)+n)%n]
	}
	// Distance from each use back to its reaching def, from true edges.
	useDist := make(map[[2]interface{}]int) // (opIdx, reg) -> distance
	for from := range g.Ops {
		for _, e := range g.Out[from] {
			if e.Kind == ddg.True {
				useDist[[2]interface{}{e.To, e.Reg}] = e.Distance
			}
		}
	}

	for u := 0; u < unroll; u++ {
		for i, op := range body.Ops {
			c := op.Clone()
			for di, d := range c.Defs {
				c.Defs[di] = nameFor(d, u)
			}
			for ui, r := range c.Uses {
				if _, isDef := defTime[r]; !isDef {
					continue // loop invariant: never renamed
				}
				d := useDist[[2]interface{}{i, r}]
				c.Uses[ui] = nameFor(r, u-d)
			}
			if c.Mem != nil {
				// The unrolled loop's induction variable advances by
				// Unroll original iterations per trip, so copy u's
				// subscript Coeff*i+Off becomes (Coeff*U)*i' + Coeff*u+Off.
				c.Mem.Offset = c.Mem.Coeff*u + c.Mem.Offset
				c.Mem.Coeff *= unroll
			}
			c.Comment = fmt.Sprintf("iter+%d", u)
			mve.Body.Append(c)
		}
	}
	mve.Body.Renumber()
	return mve, nil
}

// RegisterCost returns the total register names MVE consumes and the
// minimum a rotating register file would need (sum of ceil(lifetime/II));
// the difference is the price of doing the renaming in software rather
// than hardware.
func (m *MVE) RegisterCost() (mve, rotating int) {
	for r, n := range m.Names {
		mve += n
		rotating += m.MinNames[r]
	}
	return mve, rotating
}
