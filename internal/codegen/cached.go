package codegen

import (
	"context"
	"fmt"
	"maps"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/regalloc"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// This file threads the content-addressed compile cache (internal/cache)
// through the pipeline's pure stages: dependence-graph construction,
// modulo scheduling, the composite view-plus-bank-assignment step, and
// copy insertion. Each is a deterministic function of (block, machine
// slice, options), so memoizing by fingerprint is observationally
// equivalent to recomputing — the property FuzzCacheEquivalence and the
// cached differential sweep pin.
//
// Every helper takes the block's memoized fingerprint (cache.BlockFP,
// non-nil exactly when the cache is enabled) so one compilation encodes
// each body once, not once per stage key.
//
// With a nil cache each wrapper degrades to the direct call, preserving
// the uncached pipeline (and its golden trace stream) bit for bit.

// Stage Costers estimate the resident bytes each cached value keeps
// alive, so the cache's byte budget (cache.SetBudget, Config.CacheBudget)
// tracks real memory instead of entry counts. The constants are coarse
// per-element footprints — struct plus slice/map-slot backing — sized
// from the IR and graph representations; precision matters less than
// consistency, since the budget compares entries only against each other.
const (
	costPerOp   = 112 // *ir.Op pointer + Op struct + operand backing
	costPerEdge = 48  // ddg.Edge in Out plus its mirror in In
	costPerReg  = 48  // one map[ir.Reg]int slot incl. bucket overhead
	costPerInt  = 8
)

// ddgCost prices a cached dependence graph: the op pointer slice, both
// adjacency lists and the per-op edge headers.
func ddgCost(v any) int64 {
	g := v.(*ddg.Graph)
	return int64(len(g.Ops))*costPerOp + int64(2*g.NumEdges())*costPerEdge
}

// scheduleCost prices a cached modulo schedule: two ints per operation.
func scheduleCost(v any) int64 {
	s := v.(*modulo.Schedule)
	return int64(len(s.Time)+len(s.Cluster)) * costPerInt
}

// assignCost prices a cached bank assignment: one map slot per register.
func assignCost(v any) int64 {
	a := v.(*core.Assignment)
	return int64(len(a.Of)) * costPerReg
}

// allocCost prices a cached register allocation: per bank, the color and
// need maps plus the spill list.
func allocCost(v any) int64 {
	n := int64(64)
	for _, r := range v.([]*regalloc.Result) {
		if r != nil {
			n += int64(len(r.Colors)+len(r.Needs))*costPerReg + int64(len(r.Spilled))*costPerInt
		}
	}
	return n
}

// copyInsCost prices a cached copy insertion: the rewritten body's ops
// and per-op cluster row, the extended register map, and the retained
// rewritten-body fingerprint.
func copyInsCost(v any) int64 {
	e := v.(copyInsEntry)
	return int64(len(e.copies.Body.Ops))*(costPerOp+costPerInt) +
		int64(len(e.of))*costPerReg + int64(e.fp.Size())
}

// buildGraph is ddg.Build behind the cache. Cached graphs are rebound
// onto the caller's operation slice (Graph.WithOps) so a result computed
// for one structurally identical loop never aliases another loop's ops.
func buildGraph(c *cache.Cache, fp *cache.BlockFP, b *ir.Block, cfg *machine.Config, opt ddg.Options) *ddg.Graph {
	if c == nil {
		return ddg.Build(b, cfg, opt)
	}
	k := fp.DDGKey(cfg.Lat, opt.Carried, opt.MemFlowLatency)
	g, hit, _ := cache.GetAsCosted(c, k, func() (*ddg.Graph, error) {
		return ddg.Build(b, cfg, opt), nil
	}, ddgCost)
	countCache(opt.Tracer, "ddg", hit)
	return g.WithOps(b.Ops)
}

// runSchedule is modulo.Run behind the cache. The key re-derives the
// graph from (block, graph options) rather than fingerprinting the graph
// object, so gOpts must be the options g was built with. Schedules are
// plain value records (II, times, clusters) that no later phase mutates,
// so cached schedules are shared as-is.
//
// The caller's ctx flows into the compute closure, so a request deadline
// cuts even a cache-miss computation short. The cache never persists
// context-cancellation errors (see Cache.GetOrCompute), so one cancelled
// request cannot poison the key for later, patient callers.
func runSchedule(ctx context.Context, c *cache.Cache, fp *cache.BlockFP, gOpts ddg.Options, g *ddg.Graph, cfg *machine.Config, opt modulo.Options) (*modulo.Schedule, error) {
	if c == nil {
		return modulo.Run(ctx, g, cfg, opt)
	}
	k := fp.ModuloKey(cfg, gOpts.Carried, gOpts.MemFlowLatency, opt.ClusterOf, opt.BudgetRatio, opt.Lifetime, opt.MaxII, c.Disk() != nil)
	s, tier, err := cache.GetAsTiered(c, k, func() (*modulo.Schedule, error) {
		return modulo.Run(ctx, g, cfg, opt)
	}, scheduleCost)
	countCacheTier(opt.Tracer, "modulo", tier)
	return s, err
}

// assignKey fingerprints the composite "ideal view + greedy bank
// assignment" step by the *inputs that determine the ideal schedule* —
// block, graph options, scheduler-relevant machine slice and scheduling
// options — plus the bank count, weights and pre-coloring. The view
// (times, slack, recurrence) is a deterministic function of those inputs,
// so keying on them is sound and lets a hit skip building the view at
// all, not just the partition.
func assignKey(fp *cache.BlockFP, idealCfg *machine.Config, gOpts ddg.Options, clusters int, weights core.Weights, opt Options) cache.Key {
	h := cache.NewHasher(cache.StageAssign)
	h.BlockFP(fp)
	h.Bool(gOpts.Carried)
	h.Int(int64(gOpts.MemFlowLatency))
	h.SchedConfig(idealCfg, fp.HasCopies())
	h.Int(int64(opt.BudgetRatio))
	h.Bool(opt.LifetimeSched)
	h.Int(int64(clusters))
	h.Weights(weights)
	h.PreColoring(opt.Pre)
	// Assignments are a persisted stage: take the disk digest only when a
	// tier is attached to consume it.
	return h.KeyTiered(cache.StageAssign, opt.Cache.Disk() != nil)
}

// assignBanks is Compile's step 3 for single-shot partitioners. For the
// default greedy method with a live cache it memoizes view construction
// and bank assignment together under assignKey — the assignment depends
// on the bank count but not the copy model, so in the experiment grid one
// entry per (loop, cluster count) serves both copy models, and a hit
// skips even the IdealView/slack computation. The cached assignment is
// shared read-only: with a live cache, copy insertion returns a fresh
// extended assignment instead of mutating the caller's (insertCopiesFor).
// Other partitioners (and the cacheless path) compute directly.
func assignBanks(loop *ir.Loop, fp *cache.BlockFP, res *Result, part partition.Partitioner, cfg *machine.Config, weights core.Weights, opt Options, gOpts ddg.Options, tr *trace.Tracer, ar *scratch.Arena) (*core.Assignment, error) {
	compute := func() (*core.Assignment, error) {
		ideal := IdealView(loop.Body, res.IdealGraph, res.IdealCfg, res.IdealSched)
		return part.Assign(&partition.Input{
			Block:   loop.Body,
			Graph:   res.IdealGraph,
			Ideal:   ideal,
			Cfg:     cfg,
			Weights: weights,
			Pre:     opt.Pre,
			Tracer:  tr,
			Cache:   opt.Cache,
			BlockFP: fp,
			Arena:   ar,
		})
	}
	if _, greedy := part.(partition.Greedy); !greedy || !opt.Cache.Enabled() {
		return compute()
	}
	k := assignKey(fp, res.IdealCfg, gOpts, cfg.Clusters, weights, opt)
	frozen, tier, err := cache.GetAsTiered(opt.Cache, k, compute, assignCost)
	countCacheTier(tr, "assign", tier)
	return frozen, err
}

// copyInsEntry is what the copy-insertion cache stores: the rewritten
// body (shared read-only by every hit — nothing downstream mutates a
// CopyInsertion), its fingerprint for the clustered stage keys, and the
// full extended register-to-bank map, replayed into each caller's own
// Assignment.
type copyInsEntry struct {
	copies *CopyInsertion
	fp     *cache.BlockFP
	of     map[ir.Reg]int
}

// copyInsKey fingerprints a copy insertion. InsertCopies consults only
// the body, the loop's fresh-register counter (which names the copy
// registers) and the assignment — not the machine: the copy model prices
// copies later, during clustered scheduling, so in the experiment grid
// both copy models of one cluster count share a single rewritten body.
func copyInsKey(fp *cache.BlockFP, nextReg int, asg *core.Assignment) cache.Key {
	h := cache.NewHasher(cache.StageCopyIns)
	h.BlockFP(fp)
	h.Int(int64(nextReg))
	h.Int(int64(asg.Banks))
	h.PreColoring(asg.Of)
	return h.Key(cache.StageCopyIns)
}

// insertCopiesFor is step 4's copy insertion behind the cache, including
// the body verification (so a cached body is verified once, and a failing
// input fails identically from the cache). It returns the assignment the
// clustered stages should use: without a cache that is the caller's own,
// extended in place exactly as InsertCopies does; with a cache the
// caller's assignment — possibly the shared frozen one from assignBanks —
// is left untouched and a fresh extended clone is returned. The returned
// BlockFP fingerprints the rewritten body (nil when the cache is
// disabled).
func insertCopiesFor(c *cache.Cache, fp *cache.BlockFP, loop *ir.Loop, asg *core.Assignment, cfg *machine.Config, tr *trace.Tracer, ar *scratch.Arena) (*CopyInsertion, *core.Assignment, *cache.BlockFP, error) {
	verify := func(ci *CopyInsertion) error {
		if err := ir.VerifyBlock(ci.Body); err != nil {
			return fmt.Errorf("codegen: copy insertion for %q produced invalid code: %w", loop.Name, err)
		}
		return nil
	}
	if !c.Enabled() {
		// Copy insertion never mutates the source body, so a value copy of
		// the loop — shared body, private fresh-register counter — is all
		// the isolation the caller needs.
		work := *loop
		ci := insertCopiesScratch(&work, asg, cfg, ar)
		return ci, asg, nil, verify(ci)
	}
	k := copyInsKey(fp, loop.NextRegID(), asg)
	v, hit, err := cache.GetAsCosted(c, k, func() (copyInsEntry, error) {
		work := *loop // shared body, private register counter (see above)
		local := &core.Assignment{Banks: asg.Banks, Of: maps.Clone(asg.Of)}
		ci := insertCopiesScratch(&work, local, cfg, ar)
		// This fingerprint is retained by the cache entry (cfp keys every
		// later clustered stage for hits too), so it is never pooled.
		return copyInsEntry{copies: ci, fp: cache.FingerprintBlock(ci.Body), of: local.Of}, verify(ci)
	}, copyInsCost)
	countCache(tr, "copyins", hit)
	if err != nil {
		return nil, nil, nil, err
	}
	return v.copies, &core.Assignment{Banks: asg.Banks, Of: maps.Clone(v.of)}, v.fp, nil
}

// allocKey fingerprints step 5 by the inputs that determine the clustered
// graph and schedule — rewritten body, graph options, scheduler machine
// slice, scheduling options — plus what the allocator itself reads: the
// bank size (excluded from SchedConfig: the scheduler never sees it) and
// the extended register-to-bank assignment. Keying on inputs rather than
// the schedule object mirrors assignKey, and is sound for the same
// reason: the schedule is a deterministic function of them.
func allocKey(cfp *cache.BlockFP, cfg *machine.Config, gOpts ddg.Options, mOpt modulo.Options, asg *core.Assignment) cache.Key {
	h := cache.NewHasher(cache.StageAlloc)
	h.BlockFP(cfp)
	h.Bool(gOpts.Carried)
	h.Int(int64(gOpts.MemFlowLatency))
	h.SchedConfig(cfg, cfp.HasCopies())
	if mOpt.ClusterOf != nil {
		h.Bool(true)
		h.Ints(mOpt.ClusterOf)
	} else {
		h.Bool(false)
	}
	h.Int(int64(mOpt.BudgetRatio))
	h.Bool(mOpt.Lifetime)
	h.Int(int64(mOpt.MaxII))
	h.Int(int64(cfg.RegsPerBank))
	h.Int(int64(asg.Banks))
	h.PreColoring(asg.Of)
	return h.Key(cache.StageAlloc)
}

// allocParts is allocateParts behind the cache. Results are shared
// read-only across hits — every consumer (spill counts, pressure scoring,
// the wire response) only reads them, and refinement recomputes trial
// allocations through the uncached path rather than mutating these.
func allocParts(c *cache.Cache, cfp *cache.BlockFP, g *ddg.Graph, s *modulo.Schedule, asg *core.Assignment, cfg *machine.Config, gOpts ddg.Options, mOpt modulo.Options, tr *trace.Tracer, ar *scratch.Arena) []*regalloc.Result {
	if !c.Enabled() || cfp == nil {
		return allocateParts(g, s, asg, cfg, tr, ar)
	}
	k := allocKey(cfp, cfg, gOpts, mOpt, asg)
	out, hit, _ := cache.GetAsCosted(c, k, func() ([]*regalloc.Result, error) {
		return allocateParts(g, s, asg, cfg, tr, ar), nil
	}, allocCost)
	countCache(tr, "alloc", hit)
	return out
}

// countCache surfaces per-stage hit/miss counters through the tracer, so
// `-trace` summaries show exactly how much recomputation the cache
// absorbed. A nil tracer costs nothing, as everywhere else.
func countCache(tr *trace.Tracer, stage string, hit bool) {
	if hit {
		tr.Add("cache."+stage+".hits", 1)
	} else {
		tr.Add("cache."+stage+".misses", 1)
	}
}

// countCacheTier is countCache for the stages with a persistent tier: a
// restore from disk counts as a hit (no recompute happened) but also
// bumps a dedicated diskhits counter, so trace summaries show how much
// warmth survived a restart versus living in memory.
func countCacheTier(tr *trace.Tracer, stage string, tier cache.Tier) {
	countCache(tr, stage, tier != cache.TierNone)
	if tier == cache.TierDisk {
		tr.Add("cache."+stage+".diskhits", 1)
	}
}
