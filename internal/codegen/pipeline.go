package codegen

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// Result is the outcome of compiling one loop for one machine.
type Result struct {
	// Loop is the compiled loop (untouched original).
	Loop *ir.Loop
	// Cfg is the clustered target; IdealCfg the matching monolithic one.
	Cfg, IdealCfg *machine.Config
	// PartitionerName records the method used.
	PartitionerName string
	// PortfolioVariant names the winning candidate when the partitioner
	// generated a portfolio (empty for single-shot methods).
	PortfolioVariant string

	// IdealGraph and IdealSched are step 2's dependence graph and ideal
	// modulo schedule on the monolithic machine.
	IdealGraph *ddg.Graph
	IdealSched *modulo.Schedule

	// Assignment is step 3's register-to-bank map (extended with copy
	// registers during step 4).
	Assignment *core.Assignment

	// Copies is step 4's rewrite of the loop body.
	Copies *CopyInsertion
	// PartGraph and PartSched are the rebuilt dependence graph and the
	// clustered modulo schedule.
	PartGraph *ddg.Graph
	PartSched *modulo.Schedule

	// Alloc holds step 5's per-bank coloring results (nil with SkipAlloc).
	Alloc []*regalloc.Result

	// Exact is the exact-solver arms' optimality-gap telemetry; nil
	// unless Options.ExactBudget enabled them.
	Exact *ExactReport

	// Adaptive is the adaptive-weights arm's adoption telemetry; nil
	// unless Options.Adaptive enabled it and the arm proposed a
	// candidate.
	Adaptive *AdaptiveReport
}

// IdealII returns the initiation interval on the monolithic machine.
func (r *Result) IdealII() int { return r.IdealSched.II }

// PartII returns the initiation interval on the clustered machine.
func (r *Result) PartII() int { return r.PartSched.II }

// Degradation returns the paper's normalized kernel-size metric:
// 100 * II_partitioned / II_ideal, so 100 means no degradation and 125
// means a 25% longer (slower) kernel.
func (r *Result) Degradation() float64 {
	return 100 * float64(r.PartII()) / float64(r.IdealII())
}

// DegradationPercent returns the relative slowdown in percent
// (Degradation() - 100), the quantity Figures 5-7 bucket.
func (r *Result) DegradationPercent() float64 { return r.Degradation() - 100 }

// IdealIPC returns operations per cycle of the ideal kernel.
func (r *Result) IdealIPC() float64 { return r.IdealSched.IPC() }

// ClusteredIPC returns the clustered kernel's IPC under the machine's copy
// model: the embedded model counts the inserted copies as issued
// operations (they occupy functional-unit slots), while the copy-unit
// model does not (dedicated hardware moves the values) — exactly how
// Table 1 computes the two columns.
func (r *Result) ClusteredIPC() float64 {
	ops := len(r.Copies.Body.Ops)
	if r.Cfg.Model == machine.CopyUnit {
		ops -= r.Copies.KernelCopies
	}
	return float64(ops) / float64(r.PartII())
}

// Spills counts registers spilled across all banks (0 with SkipAlloc).
func (r *Result) Spills() int {
	n := 0
	for _, a := range r.Alloc {
		if a != nil {
			n += len(a.Spilled)
		}
	}
	return n
}

// MaxPressure returns the highest per-bank register pressure.
func (r *Result) MaxPressure() int {
	max := 0
	for _, a := range r.Alloc {
		if a != nil && a.MaxLive > max {
			max = a.MaxLive
		}
	}
	return max
}

// IdealOf derives the monolithic "ideal" machine matching cfg: same width
// and latencies, one register bank holding all the registers.
func IdealOf(cfg *machine.Config) *machine.Config {
	if cfg.Monolithic() {
		return cfg
	}
	ideal, err := machine.New(
		fmt.Sprintf("%d-wide ideal of %s", cfg.Width, cfg.Name),
		cfg.Width, 1, cfg.RegsPerBank*cfg.Clusters, cfg.Model, cfg.Lat)
	if err != nil {
		panic(err) // cfg was already validated; width/1 cannot fail
	}
	// The ideal machine keeps everything except the bank split — including
	// typed functional units: "the ideal schedule ... uses the issue-width
	// and all other characteristics of the actual architecture" (§4.1).
	// One monolithic cluster provides Clusters copies of each unit set.
	if cfg.Heterogeneous() {
		for c := 0; c < cfg.Clusters; c++ {
			ideal.Units = append(ideal.Units, cfg.Units...)
		}
	}
	return ideal
}

// checkpoint polls ctx between pipeline stages: a cancelled compilation
// returns a StageError naming the stage about to run, so callers (and the
// compile service's 504 responses) see how far the pipeline got.
func checkpoint(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return &StageError{Stage: stage, Err: err}
	}
	return nil
}

// isCtxErr reports whether err stems from context cancellation or an
// expired deadline — the failures that get tagged with a StageError
// instead of the pipeline's ordinary diagnostic wrapping.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// stageFail routes a stage failure: context cancellations become a
// StageError naming the stage, every other error keeps the pipeline's
// ordinary "codegen: <what> of <loop>" wrapping byte for byte.
func stageFail(stage string, err error, format string, args ...any) error {
	if isCtxErr(err) {
		return &StageError{Stage: stage, Err: err}
	}
	return fmt.Errorf(format+": %w", append(args, err)...)
}

// Compile runs the full five-step pipeline on one loop for one clustered
// machine. It polls ctx at every stage boundary — and, through the modulo
// scheduler, inside the II search's placement loop — so a deadline or a
// cancelled caller stops even a large compilation promptly; the error is
// then a StageError wrapping ctx.Err() with the stage reached.
func Compile(ctx context.Context, loop *ir.Loop, cfg *machine.Config, opt Options) (*Result, error) {
	if err := ir.VerifyLoop(loop); err != nil {
		return nil, err
	}
	opt.applyCacheBudget()
	tr := opt.Tracer
	sp := tr.StartSpan("codegen.compile")
	tr.Add("codegen.compiles", 1)
	weights := core.DefaultWeights()
	if opt.Weights != nil {
		weights = *opt.Weights
	}
	part := opt.Partitioner
	if part == nil {
		part = partition.Greedy{}
	}
	res := &Result{
		Loop:            loop,
		Cfg:             cfg,
		IdealCfg:        IdealOf(cfg),
		PartitionerName: part.Name(),
	}
	done := func() *Result {
		sp.Int("ops", int64(len(loop.Body.Ops))).
			Int("idealII", int64(res.IdealII())).Int("partII", int64(res.PartII())).
			Int("kernelCopies", int64(res.Copies.KernelCopies)).
			Int("invariantCopies", int64(res.Copies.InvariantCopies)).End()
		return res
	}

	// The arena carries every stage's reusable working buffers for the
	// duration of this one compilation (see internal/scratch); callers that
	// compile in a loop can pin one via opt.Scratch.
	ar := opt.Scratch
	if ar == nil {
		ar = scratch.Get()
		defer ar.Release()
	}

	// Steps 1-2: dependence graph and ideal schedule on the monolithic bank.
	// The body is fingerprinted once; every stage key splices the memo.
	if err := checkpoint(ctx, "ddg.ideal"); err != nil {
		return nil, err
	}
	var fp *cache.BlockFP
	if opt.Cache.Enabled() {
		fp = cache.FingerprintBlock(loop.Body)
		// The fingerprint is compile-local — stage keys copy its bytes into
		// their digests and nothing retains the object — so its buffer goes
		// back to the pool with the compile. (The rewritten body's
		// fingerprint, by contrast, is retained by the copy-insertion cache
		// entry and must never be released; see insertCopiesFor.)
		defer fp.Release()
	}
	gOpts := ddg.Options{Carried: true, Tracer: tr, Scratch: ar}
	res.IdealGraph = buildGraph(opt.Cache, fp, loop.Body, res.IdealCfg, gOpts)
	idealSched, err := runSchedule(ctx, opt.Cache, fp, gOpts, res.IdealGraph, res.IdealCfg,
		modulo.Options{BudgetRatio: opt.BudgetRatio, Lifetime: opt.LifetimeSched, Seed: opt.IISeed, Tracer: tr, Scratch: ar})
	if err != nil {
		return nil, stageFail("modulo.ideal", err, "codegen: ideal scheduling of %q", loop.Name)
	}
	res.IdealSched = idealSched

	if cfg.Monolithic() {
		// Nothing to partition: the clustered results equal the ideal.
		res.Assignment = &core.Assignment{Banks: 1, Of: map[ir.Reg]int{}}
		res.Copies = &CopyInsertion{Body: loop.Body, ClusterOf: make([]int, len(loop.Body.Ops))}
		res.PartGraph = res.IdealGraph
		res.PartSched = idealSched
		if !opt.SkipAlloc {
			res.Alloc = allocate(res, tr, ar)
		}
		return done(), nil
	}

	// Step 3: partition registers to banks. A portfolio-capable method
	// hands back several candidates; each is carried through steps 4-5 and
	// scored, so selection sees the real downstream cost of the
	// partition's tie-break choices.
	if err := checkpoint(ctx, "partition"); err != nil {
		return nil, err
	}
	if gen, ok := part.(partition.CandidateGenerator); ok {
		if err := compilePortfolio(ctx, res, loop, fp, cfg, opt, weights, gen, tr, ar); err != nil {
			return nil, err
		}
		if err := runExactSchedArm(ctx, res, cfg, opt, tr, ar); err != nil {
			return nil, err
		}
		return done(), nil
	}
	psp := tr.StartSpan("codegen.partition")
	asg, err := assignBanks(loop, fp, res, part, cfg, weights, opt, gOpts, tr, ar)
	if err != nil {
		return nil, fmt.Errorf("codegen: partitioning %q with %s: %w", loop.Name, part.Name(), err)
	}
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	res.Assignment = asg
	psp.Int("banks", int64(asg.Banks)).Int("registers", int64(len(asg.Of))).End()

	parts, err := compileClustered(ctx, loop, fp, cfg, opt, asg, tr, ar)
	if err != nil {
		return nil, err
	}
	res.adopt(parts)
	if err := runExactSchedArm(ctx, res, cfg, opt, tr, ar); err != nil {
		return nil, err
	}
	return done(), nil
}

// clusteredParts bundles the outcome of steps 4-5 for one assignment, so
// the portfolio path can evaluate several without committing any to the
// Result until one wins.
type clusteredParts struct {
	asg    *core.Assignment
	copies *CopyInsertion
	graph  *ddg.Graph
	sched  *modulo.Schedule
	alloc  []*regalloc.Result
}

// adopt commits one evaluated candidate into the result.
func (r *Result) adopt(p *clusteredParts) {
	r.Assignment = p.asg
	r.Copies = p.copies
	r.PartGraph = p.graph
	r.PartSched = p.sched
	r.Alloc = p.alloc
}

// compileClustered runs steps 4-5 — copy insertion, clustered graph
// rebuild and re-scheduling, and (unless skipped) per-bank coloring — for
// one register-to-bank assignment. Without a cache the assignment is
// extended in place with copy-register banks, so callers evaluating
// several candidates must pass each its own Assignment; with a cache the
// input assignment is treated read-only and the parts carry a fresh
// extended clone (see insertCopiesFor).
func compileClustered(ctx context.Context, loop *ir.Loop, fp *cache.BlockFP, cfg *machine.Config, opt Options, asg *core.Assignment, tr *trace.Tracer, ar *scratch.Arena) (*clusteredParts, error) {
	// Step 4: insert copies, rebuild the graph, re-schedule clustered.
	if err := checkpoint(ctx, "copyins"); err != nil {
		return nil, err
	}
	csp := tr.StartSpan("codegen.copy_insert")
	copies, extAsg, cfp, err := insertCopiesFor(opt.Cache, fp, loop, asg, cfg, tr, ar)
	if err != nil {
		return nil, err
	}
	p := &clusteredParts{asg: extAsg, copies: copies}
	csp.Int("kernelCopies", int64(p.copies.KernelCopies)).
		Int("invariantCopies", int64(p.copies.InvariantCopies)).End()
	tr.Add("codegen.kernel_copies", int64(p.copies.KernelCopies))
	gOpts := ddg.Options{Carried: true, Tracer: tr, Scratch: ar}
	p.graph = buildGraph(opt.Cache, cfp, p.copies.Body, cfg, gOpts)
	mOpt := modulo.Options{
		ClusterOf:   p.copies.ClusterOf,
		BudgetRatio: opt.BudgetRatio,
		Lifetime:    opt.LifetimeSched,
		Seed:        opt.IISeed,
		Tracer:      tr,
		Scratch:     ar,
	}
	partSched, err := runSchedule(ctx, opt.Cache, cfp, gOpts, p.graph, cfg, mOpt)
	if err != nil {
		return nil, stageFail("modulo.clustered", err, "codegen: clustered scheduling of %q", loop.Name)
	}
	p.sched = partSched

	// Step 5: per-bank Chaitin/Briggs assignment.
	if !opt.SkipAlloc {
		if err := checkpoint(ctx, "regalloc"); err != nil {
			return nil, err
		}
		p.alloc = allocParts(opt.Cache, cfp, p.graph, partSched, p.asg, cfg, gOpts, mOpt, tr, ar)
	}
	return p, nil
}

// IdealView packages an ideal modulo schedule as the ScheduledBlock the
// RCG builder consumes.
//
// Operations are grouped into "instructions" by their absolute
// single-iteration issue cycle, not by kernel row: two operations sharing
// a kernel row but belonging to different pipeline stages are usually
// data-dependent (a producer and a consumer several stages apart), and the
// paper's same-instruction anti-affinity rule presumes data independence
// ("not only are they data-independent, but the ideal schedule was
// achieved when they were included in the same instruction"). Grouping by
// absolute cycle preserves that premise under software pipelining, while
// the density denominator stays the II — the kernel really does issue
// ops/II operations per instruction.
func IdealView(body *ir.Block, g *ddg.Graph, idealCfg *machine.Config, s *modulo.Schedule) core.ScheduledBlock {
	return core.ScheduledBlock{
		Block:     body,
		Time:      s.Time,
		Length:    s.II,
		Slack:     sched.Slack(g, idealCfg, s.Length),
		Recurrent: g.RecurrenceOps(),
	}
}

// allocate colors each bank's live ranges.
func allocate(r *Result, tr *trace.Tracer, ar *scratch.Arena) []*regalloc.Result {
	return allocateParts(r.PartGraph, r.PartSched, r.Assignment, r.Cfg, tr, ar)
}

// allocateParts is allocate over loose parts, so portfolio candidates can
// be colored (and scored on spills/pressure) before any is committed to a
// Result.
func allocateParts(g *ddg.Graph, s *modulo.Schedule, asg *core.Assignment, cfg *machine.Config, tr *trace.Tracer, ar *scratch.Arena) []*regalloc.Result {
	ranges := regalloc.KernelRangesScratch(g, s, ar)
	byBank := make([][]regalloc.LiveRange, cfg.Clusters)
	for _, lr := range ranges {
		b := asg.Bank(lr.Reg)
		byBank[b] = append(byBank[b], lr)
	}
	out := make([]*regalloc.Result, cfg.Clusters)
	for b := range byBank {
		out[b] = regalloc.ColorScratch(byBank[b], s.II, cfg.RegsPerBank, nil, tr, ar)
	}
	return out
}
