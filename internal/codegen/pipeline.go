package codegen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options tunes a compilation.
type Options struct {
	// Partitioner selects the register-partitioning method; nil means the
	// paper's RCG greedy heuristic.
	Partitioner partition.Partitioner
	// Weights tunes the RCG heuristic; the zero value means DefaultWeights.
	Weights *core.Weights
	// Pre pre-colors registers to fixed banks.
	Pre map[ir.Reg]int
	// BudgetRatio is passed to the modulo scheduler (0 = default).
	BudgetRatio int
	// LifetimeSched enables the swing-flavored lifetime-sensitive modulo
	// scheduling mode (Section 6.3's scheduler axis) for both the ideal
	// and the clustered schedule.
	LifetimeSched bool
	// SkipAlloc skips step 5 (per-bank register assignment); the
	// experiment sweeps use it to save time when only IIs are needed.
	SkipAlloc bool
	// Tracer instruments every pipeline stage (spans and counters); nil
	// disables tracing at zero cost.
	Tracer *trace.Tracer
}

// Result is the outcome of compiling one loop for one machine.
type Result struct {
	// Loop is the compiled loop (untouched original).
	Loop *ir.Loop
	// Cfg is the clustered target; IdealCfg the matching monolithic one.
	Cfg, IdealCfg *machine.Config
	// PartitionerName records the method used.
	PartitionerName string

	// IdealGraph and IdealSched are step 2's dependence graph and ideal
	// modulo schedule on the monolithic machine.
	IdealGraph *ddg.Graph
	IdealSched *modulo.Schedule

	// Assignment is step 3's register-to-bank map (extended with copy
	// registers during step 4).
	Assignment *core.Assignment

	// Copies is step 4's rewrite of the loop body.
	Copies *CopyInsertion
	// PartGraph and PartSched are the rebuilt dependence graph and the
	// clustered modulo schedule.
	PartGraph *ddg.Graph
	PartSched *modulo.Schedule

	// Alloc holds step 5's per-bank coloring results (nil with SkipAlloc).
	Alloc []*regalloc.Result
}

// IdealII returns the initiation interval on the monolithic machine.
func (r *Result) IdealII() int { return r.IdealSched.II }

// PartII returns the initiation interval on the clustered machine.
func (r *Result) PartII() int { return r.PartSched.II }

// Degradation returns the paper's normalized kernel-size metric:
// 100 * II_partitioned / II_ideal, so 100 means no degradation and 125
// means a 25% longer (slower) kernel.
func (r *Result) Degradation() float64 {
	return 100 * float64(r.PartII()) / float64(r.IdealII())
}

// DegradationPercent returns the relative slowdown in percent
// (Degradation() - 100), the quantity Figures 5-7 bucket.
func (r *Result) DegradationPercent() float64 { return r.Degradation() - 100 }

// IdealIPC returns operations per cycle of the ideal kernel.
func (r *Result) IdealIPC() float64 { return r.IdealSched.IPC() }

// ClusteredIPC returns the clustered kernel's IPC under the machine's copy
// model: the embedded model counts the inserted copies as issued
// operations (they occupy functional-unit slots), while the copy-unit
// model does not (dedicated hardware moves the values) — exactly how
// Table 1 computes the two columns.
func (r *Result) ClusteredIPC() float64 {
	ops := len(r.Copies.Body.Ops)
	if r.Cfg.Model == machine.CopyUnit {
		ops -= r.Copies.KernelCopies
	}
	return float64(ops) / float64(r.PartII())
}

// Spills counts registers spilled across all banks (0 with SkipAlloc).
func (r *Result) Spills() int {
	n := 0
	for _, a := range r.Alloc {
		if a != nil {
			n += len(a.Spilled)
		}
	}
	return n
}

// MaxPressure returns the highest per-bank register pressure.
func (r *Result) MaxPressure() int {
	max := 0
	for _, a := range r.Alloc {
		if a != nil && a.MaxLive > max {
			max = a.MaxLive
		}
	}
	return max
}

// IdealOf derives the monolithic "ideal" machine matching cfg: same width
// and latencies, one register bank holding all the registers.
func IdealOf(cfg *machine.Config) *machine.Config {
	if cfg.Monolithic() {
		return cfg
	}
	ideal, err := machine.New(
		fmt.Sprintf("%d-wide ideal of %s", cfg.Width, cfg.Name),
		cfg.Width, 1, cfg.RegsPerBank*cfg.Clusters, cfg.Model, cfg.Lat)
	if err != nil {
		panic(err) // cfg was already validated; width/1 cannot fail
	}
	// The ideal machine keeps everything except the bank split — including
	// typed functional units: "the ideal schedule ... uses the issue-width
	// and all other characteristics of the actual architecture" (§4.1).
	// One monolithic cluster provides Clusters copies of each unit set.
	if cfg.Heterogeneous() {
		for c := 0; c < cfg.Clusters; c++ {
			ideal.Units = append(ideal.Units, cfg.Units...)
		}
	}
	return ideal
}

// Compile runs the full five-step pipeline on one loop for one clustered
// machine.
func Compile(loop *ir.Loop, cfg *machine.Config, opt Options) (*Result, error) {
	if err := ir.VerifyLoop(loop); err != nil {
		return nil, err
	}
	tr := opt.Tracer
	sp := tr.StartSpan("codegen.compile")
	tr.Add("codegen.compiles", 1)
	weights := core.DefaultWeights()
	if opt.Weights != nil {
		weights = *opt.Weights
	}
	part := opt.Partitioner
	if part == nil {
		part = partition.Greedy{}
	}
	res := &Result{
		Loop:            loop,
		Cfg:             cfg,
		IdealCfg:        IdealOf(cfg),
		PartitionerName: part.Name(),
	}
	done := func() *Result {
		sp.Int("ops", int64(len(loop.Body.Ops))).
			Int("idealII", int64(res.IdealII())).Int("partII", int64(res.PartII())).
			Int("kernelCopies", int64(res.Copies.KernelCopies)).
			Int("invariantCopies", int64(res.Copies.InvariantCopies)).End()
		return res
	}

	// Steps 1-2: dependence graph and ideal schedule on the monolithic bank.
	res.IdealGraph = ddg.Build(loop.Body, res.IdealCfg, ddg.Options{Carried: true, Tracer: tr})
	idealSched, err := modulo.Run(res.IdealGraph, res.IdealCfg, modulo.Options{BudgetRatio: opt.BudgetRatio, Lifetime: opt.LifetimeSched, Tracer: tr})
	if err != nil {
		return nil, fmt.Errorf("codegen: ideal scheduling of %q: %w", loop.Name, err)
	}
	res.IdealSched = idealSched

	if cfg.Monolithic() {
		// Nothing to partition: the clustered results equal the ideal.
		res.Assignment = &core.Assignment{Banks: 1, Of: map[ir.Reg]int{}}
		res.Copies = &CopyInsertion{Body: loop.Body, ClusterOf: make([]int, len(loop.Body.Ops))}
		res.PartGraph = res.IdealGraph
		res.PartSched = idealSched
		if !opt.SkipAlloc {
			res.Alloc = allocate(res, tr)
		}
		return done(), nil
	}

	// Step 3: partition registers to banks.
	psp := tr.StartSpan("codegen.partition")
	ideal := IdealView(loop.Body, res.IdealGraph, res.IdealCfg, idealSched)
	asg, err := part.Assign(&partition.Input{
		Block:   loop.Body,
		Graph:   res.IdealGraph,
		Ideal:   ideal,
		Cfg:     cfg,
		Weights: weights,
		Pre:     opt.Pre,
		Tracer:  tr,
	})
	if err != nil {
		return nil, fmt.Errorf("codegen: partitioning %q with %s: %w", loop.Name, part.Name(), err)
	}
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	res.Assignment = asg
	psp.Int("banks", int64(asg.Banks)).Int("registers", int64(len(asg.Of))).End()

	// Step 4: insert copies, rebuild the graph, re-schedule clustered.
	csp := tr.StartSpan("codegen.copy_insert")
	work := loop.Clone()
	res.Copies = InsertCopies(work, asg, cfg)
	if err := ir.VerifyBlock(res.Copies.Body); err != nil {
		return nil, fmt.Errorf("codegen: copy insertion for %q produced invalid code: %w", loop.Name, err)
	}
	csp.Int("kernelCopies", int64(res.Copies.KernelCopies)).
		Int("invariantCopies", int64(res.Copies.InvariantCopies)).End()
	tr.Add("codegen.kernel_copies", int64(res.Copies.KernelCopies))
	res.PartGraph = ddg.Build(res.Copies.Body, cfg, ddg.Options{Carried: true, Tracer: tr})
	partSched, err := modulo.Run(res.PartGraph, cfg, modulo.Options{
		ClusterOf:   res.Copies.ClusterOf,
		BudgetRatio: opt.BudgetRatio,
		Lifetime:    opt.LifetimeSched,
		Tracer:      tr,
	})
	if err != nil {
		return nil, fmt.Errorf("codegen: clustered scheduling of %q: %w", loop.Name, err)
	}
	res.PartSched = partSched

	// Step 5: per-bank Chaitin/Briggs assignment.
	if !opt.SkipAlloc {
		res.Alloc = allocate(res, tr)
	}
	return done(), nil
}

// IdealView packages an ideal modulo schedule as the ScheduledBlock the
// RCG builder consumes.
//
// Operations are grouped into "instructions" by their absolute
// single-iteration issue cycle, not by kernel row: two operations sharing
// a kernel row but belonging to different pipeline stages are usually
// data-dependent (a producer and a consumer several stages apart), and the
// paper's same-instruction anti-affinity rule presumes data independence
// ("not only are they data-independent, but the ideal schedule was
// achieved when they were included in the same instruction"). Grouping by
// absolute cycle preserves that premise under software pipelining, while
// the density denominator stays the II — the kernel really does issue
// ops/II operations per instruction.
func IdealView(body *ir.Block, g *ddg.Graph, idealCfg *machine.Config, s *modulo.Schedule) core.ScheduledBlock {
	return core.ScheduledBlock{
		Block:     body,
		Time:      s.Time,
		Length:    s.II,
		Slack:     sched.Slack(g, idealCfg, s.Length),
		Recurrent: g.RecurrenceOps(),
	}
}

// allocate colors each bank's live ranges.
func allocate(r *Result, tr *trace.Tracer) []*regalloc.Result {
	ranges := regalloc.KernelRanges(r.PartGraph, r.PartSched)
	byBank := make([][]regalloc.LiveRange, r.Cfg.Clusters)
	for _, lr := range ranges {
		b := r.Assignment.Bank(lr.Reg)
		byBank[b] = append(byBank[b], lr)
	}
	out := make([]*regalloc.Result, r.Cfg.Clusters)
	for b := range byBank {
		out[b] = regalloc.ColorTraced(byBank[b], r.PartSched.II, r.Cfg.RegsPerBank, nil, tr)
	}
	return out
}
