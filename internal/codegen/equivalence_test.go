package codegen

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
)

// runOriginal executes the untouched loop body.
func runOriginal(t *testing.T, body *ir.Block, trip int, seed int64) *interp.State {
	t.Helper()
	st := interp.New(seed)
	st.SeedLiveIns(body)
	if err := st.RunLoop(body, trip); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCopyInsertionPreservesSemantics is the executable proof of step 4:
// the rewritten body (inter-cluster copies inserted, hoisted invariant
// copies replayed as a preheader) must produce exactly the same store
// stream as the original loop on concrete pseudo-random data — for every
// paper machine and for several partitioners, across a batch of suite
// loops.
func TestCopyInsertionPreservesSemantics(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 20, Seed: 51})
	parts := []partition.Partitioner{
		partition.Greedy{}, partition.BUG{}, partition.UAS{},
		partition.RoundRobin{}, partition.Random{Seed: 5},
	}
	cfgs := []*machine.Config{
		machine.MustClustered16(2, machine.Embedded),
		machine.MustClustered16(8, machine.CopyUnit),
	}
	const trip, seed = 9, 424242
	for _, l := range loops {
		want := runOriginal(t, l.Body, trip, seed)
		for _, cfg := range cfgs {
			for _, p := range parts {
				res, err := Compile(context.Background(), l, cfg, Options{Partitioner: p, SkipAlloc: true})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", l.Name, cfg.Name, p.Name(), err)
				}
				st := interp.New(seed)
				st.SeedLiveIns(l.Body) // identical preheader values
				for _, pair := range res.Copies.Hoisted {
					st.Regs[pair[0]] = st.LiveInValue(pair[1])
				}
				if err := st.RunLoop(res.Copies.Body, trip); err != nil {
					t.Fatalf("%s/%s/%s: %v", l.Name, cfg.Name, p.Name(), err)
				}
				if err := interp.SameStores(want.Stores, st.Stores); err != nil {
					t.Fatalf("%s on %s with %s: %v", l.Name, cfg.Name, p.Name(), err)
				}
			}
		}
	}
}

// TestMVEPreservesSemantics executes the unrolled, renamed kernel against
// the original: one unrolled trip covers Unroll original iterations, the
// renamed live-in names start with the original register's preheader
// value (what real prelude code establishes), and the store streams must
// match exactly — including the rewritten memory subscripts.
func TestMVEPreservesSemantics(t *testing.T) {
	cfg := machine.Ideal16()
	const seed = 1337
	for _, l := range loopgen.Generate(loopgen.Params{N: 20, Seed: 61}) {
		work := l.Clone()
		g := ddg.Build(work.Body, cfg, ddg.Options{Carried: true})
		s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mve, err := ExpandVariables(work, g, s)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		reps := 5
		trip := mve.Unroll * reps
		want := runOriginal(t, l.Body, trip, seed)

		st := interp.New(seed)
		st.SeedLiveIns(l.Body)
		for r, bank := range mve.NameOf {
			v := st.LiveInValue(r)
			for _, nr := range bank {
				st.Regs[nr] = v
			}
		}
		if err := st.RunLoop(mve.Body, reps); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if err := interp.SameStores(want.Stores, st.Stores); err != nil {
			t.Fatalf("%s (unroll %d): %v", l.Name, mve.Unroll, err)
		}
	}
}

// TestStraightLineCopyInsertionPreservesSemantics covers the non-loop
// path, where invariant copies are never hoisted.
func TestStraightLineCopyInsertionPreservesSemantics(t *testing.T) {
	l := ir.NewLoop("sl")
	l.Body.Depth = 0
	b := ir.NewLoopBuilder(l)
	p := l.NewReg(ir.Float) // parameter
	x := b.Load(ir.Float, ir.MemRef{Base: "a"})
	y := b.Mul(x, p)
	z := b.Add(y, x)
	b.Store(z, ir.MemRef{Base: "out"})
	const seed = 99
	want := runOriginal(t, l.Body, 1, seed)
	res, err := CompileBlock(context.Background(), l, machine.Example2x1(), Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Copies.Hoisted) != 0 {
		t.Fatal("straight-line path hoisted a copy")
	}
	st := interp.New(seed)
	st.SeedLiveIns(l.Body)
	if err := st.RunLoop(res.Copies.Body, 1); err != nil {
		t.Fatal(err)
	}
	if err := interp.SameStores(want.Stores, st.Stores); err != nil {
		t.Fatal(err)
	}
}
