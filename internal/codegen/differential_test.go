package codegen

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// TestDifferentialSuiteSweep is the pipeline's differential oracle at full
// paper scale: every loop of the default 211-loop suite is executed twice
// on concrete pseudo-random data — once as the original (unpartitioned)
// body and once as the clustered kernel the pipeline produced — for 2, 4
// and 8 clusters under both copy models. The two executions must agree
// bit for bit on the store stream, on the entire final memory state, and
// on the final value of every register the original body defines (copy
// insertion introduces new registers but must never disturb an original
// one).
func TestDifferentialSuiteSweep(t *testing.T) {
	runDifferentialSweep(t, nil)
}

// TestDifferentialSuiteSweepCached is the same oracle with the compile
// cache on: one cache serves the whole grid, so most dependence graphs
// and ideal schedules arrive from memory rather than recomputation — and
// the executed kernels still must match the original bodies bit for bit.
// Together with TestDifferentialSuiteSweep this pins that caching never
// changes what the pipeline emits, only how often it recomputes.
func TestDifferentialSuiteSweepCached(t *testing.T) {
	runDifferentialSweep(t, cache.New())
}

// TestDifferentialSweepBudgets is the same oracle again under every cache
// budget regime — zero retention (each entry evicted the moment its
// lookup returns, so the pinned singleflight path carries everything), a
// small finite budget (constant eviction churn with some reuse), and
// unlimited — on a reduced slice of the suite. Eviction must change only
// how often stages recompute, never a single emitted bit.
func TestDifferentialSweepBudgets(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"zero", cache.BudgetZero},
		{"finite", 256 << 10},
		{"unlimited", cache.BudgetUnlimited},
	} {
		t.Run(tc.name, func(t *testing.T) {
			loops := loopgen.Generate(loopgen.Params{N: 60, Seed: loopgen.DefaultParams().Seed})
			c := cache.NewBounded(tc.budget)
			runDifferentialSweepLoops(t, loops, c)
			st := c.Stats()
			if limit := tc.budget; limit > 0 && st.Bytes > limit {
				t.Fatalf("cache sits at %d bytes, over the %d budget", st.Bytes, limit)
			}
			if tc.budget == cache.BudgetZero && (st.Entries != 0 || st.Bytes != 0) {
				t.Fatalf("zero budget retained %d entries / %d bytes", st.Entries, st.Bytes)
			}
		})
	}
}

func runDifferentialSweep(t *testing.T, c *cache.Cache) {
	runDifferentialSweepLoops(t, loopgen.Suite(), c)
}

func runDifferentialSweepLoops(t *testing.T, loops []*ir.Loop, c *cache.Cache) {
	runDifferentialSweepOpts(t, loops, Options{SkipAlloc: true, Cache: c})
}

func runDifferentialSweepOpts(t *testing.T, loops []*ir.Loop, opt Options) {
	var cfgs []*machine.Config
	for _, clusters := range []int{2, 4, 8} {
		for _, model := range []machine.CopyModel{machine.Embedded, machine.CopyUnit} {
			cfgs = append(cfgs, machine.MustClustered16(clusters, model))
		}
	}
	const trip, seed = 7, 0xD1FF

	for _, l := range loops {
		want := interp.New(seed)
		want.SeedLiveIns(l.Body)
		if err := want.RunLoop(l.Body, trip); err != nil {
			t.Fatalf("%s original: %v", l.Name, err)
		}
		defined := l.Body.Defined()

		for _, cfg := range cfgs {
			res, err := Compile(context.Background(), l, cfg, opt)
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			got := interp.New(seed)
			got.SeedLiveIns(l.Body) // identical live-in values by construction
			for _, pair := range res.Copies.Hoisted {
				got.Regs[pair[0]] = got.LiveInValue(pair[1])
			}
			if err := got.RunLoop(res.Copies.Body, trip); err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			if err := interp.SameStores(want.Stores, got.Stores); err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			diffMemory(t, l.Name, cfg.Name, want, got)
			for r := range defined {
				wv, ok := want.Regs[r]
				if !ok {
					continue // defined but dead before ever executing is impossible here
				}
				gv, ok := got.Regs[r]
				if !ok {
					t.Fatalf("%s on %s: original register %s missing from clustered state", l.Name, cfg.Name, r)
				}
				if wv != gv {
					t.Fatalf("%s on %s: register %s ends as %v, originally %v", l.Name, cfg.Name, r, gv, wv)
				}
			}
		}
	}
}

// diffMemory demands bit-identical final memory: same arrays, same touched
// cells, same values. Copy insertion adds only register moves, so even the
// lazily-materialized read cells must coincide.
func diffMemory(t *testing.T, loop, cfg string, want, got *interp.State) {
	t.Helper()
	if len(want.Mem) != len(got.Mem) {
		t.Fatalf("%s on %s: %d arrays touched vs %d", loop, cfg, len(got.Mem), len(want.Mem))
	}
	for base, warr := range want.Mem {
		garr, ok := got.Mem[base]
		if !ok {
			t.Fatalf("%s on %s: array %q untouched by clustered kernel", loop, cfg, base)
		}
		if len(warr) != len(garr) {
			t.Fatalf("%s on %s: array %q has %d cells vs %d", loop, cfg, base, len(garr), len(warr))
		}
		for addr, wv := range warr {
			gv, ok := garr[addr]
			if !ok {
				t.Fatalf("%s on %s: %s[%d] untouched by clustered kernel", loop, cfg, base, addr)
			}
			if wv != gv {
				t.Fatalf("%s on %s: %s[%d] ends as %v, originally %v", loop, cfg, base, addr, gv, wv)
			}
		}
	}
}

// TestDifferentialSweepDiskCache runs the interpreter equivalence sweep
// (identical memory stores and register results for every loop on every
// clustered machine) with the persistent disk tier attached — first
// against a cold directory that the sweep itself populates, then as a
// simulated restart: a fresh memory cache in front of the now-warm
// directory. Disk-restored schedules and assignments must steer the
// compiled code to the same interpreted behavior as recomputation, the
// tier's end-to-end correctness guarantee.
func TestDifferentialSweepDiskCache(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	dir := t.TempDir()

	cold, err := cache.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	runDifferentialSweepOpts(t, loops, Options{SkipAlloc: true, Cache: cache.New(), Disk: cold})
	cold.Close() // flush write-behinds so the warm arm sees every record
	if cold.Stats().Writes == 0 {
		t.Fatal("cold sweep wrote nothing to the disk tier")
	}

	warm, err := cache.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	c := cache.New()
	runDifferentialSweepOpts(t, loops, Options{SkipAlloc: true, Cache: c, Disk: warm})
	st := c.Stats()
	if st.DiskHits == 0 {
		t.Fatal("warm sweep drew zero disk-tier hits — it re-proved nothing")
	}
	if vf := warm.Stats().VerifyFailures; vf != 0 {
		t.Fatalf("%d records failed verification on a cleanly written directory", vf)
	}
}
