// Package codegen implements the paper's five-step code-generation
// framework for partitioned register banks (Section 4):
//
//  1. build intermediate code with symbolic registers, assuming a single
//     infinite register bank;
//  2. build data dependence DAGs and schedule assuming that ideal bank;
//  3. partition the registers to register banks with a pluggable method
//     (the RCG greedy heuristic by default);
//  4. insert inter-cluster copies, rebuild the dependence graph, and
//     re-schedule with every operation pinned to the cluster that owns its
//     registers;
//  5. run Chaitin/Briggs graph-coloring register assignment per bank.
//
// The package reports the metrics the evaluation uses: ideal and
// partitioned II, IPC under both copy models, copy counts, degradation,
// per-bank pressure and spills.
package codegen

import (
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// CopyInsertion is the outcome of step 4's copy insertion.
type CopyInsertion struct {
	// Body is the rewritten loop body with kernel copies inserted before
	// their consumers.
	Body *ir.Block
	// ClusterOf pins each operation of Body to a cluster: the bank of the
	// operation's defined register (for stores, of the stored value; for
	// copies, the destination bank).
	ClusterOf []int
	// KernelCopies counts copies added to the loop body; each repeats
	// every iteration and competes for issue resources.
	KernelCopies int
	// InvariantCopies counts copies of loop-invariant values, which are
	// hoisted to the loop preheader: the copied value never changes, so a
	// single copy before the loop suffices and the kernel pays nothing.
	// (The paper's Rocket compiler pipeline schedules loop kernels after
	// classic loop optimizations; keeping an invariant copy inside the
	// kernel would be an artifact, not a cost of partitioning.)
	InvariantCopies int
	// Hoisted lists the preheader copies as {destination, source} pairs,
	// in insertion order — the code a real preheader would execute once
	// before the loop. The interpreter-based equivalence tests replay
	// them to seed the rewritten body's state.
	Hoisted [][2]ir.Reg
}

// InsertCopies rewrites the loop body for the register-bank assignment:
// every operation is pinned to its home cluster, and every use of a
// register living in a different bank is routed through an inter-cluster
// copy into a fresh register in the home bank. Copies of values computed
// inside the loop are emitted into the kernel immediately before their
// first consumer and reused by later consumers in the same iteration;
// copies of loop invariants are hoisted (counted, not emitted).
//
// The assignment is extended in place with the banks of the fresh copy
// registers, so the caller's later phases (re-scheduling, allocation) see
// a total map.
func InsertCopies(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config) *CopyInsertion {
	return insertCopies(loop, asg, cfg, true)
}

// InsertCopiesStraightLine is InsertCopies for non-loop code: there is no
// preheader to hoist into, so copies of upward-exposed (live-in) values
// are emitted into the block like any other copy.
func InsertCopiesStraightLine(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config) *CopyInsertion {
	return insertCopies(loop, asg, cfg, false)
}

func insertCopies(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config, hoistInvariants bool) *CopyInsertion {
	return insertCopiesBlock(loop.Body, loop.NewReg, asg, hoistInvariants)
}

// insertCopiesBlock is the block-level engine shared by the loop pipeline
// and whole-function compilation; newReg allocates fresh registers from
// whatever owns the block's numbering.
func insertCopiesBlock(src *ir.Block, newReg func(ir.Class) ir.Reg, asg *core.Assignment, hoistInvariants bool) *CopyInsertion {
	res := &CopyInsertion{Body: &ir.Block{Depth: src.Depth}}
	definedInBody := src.Defined()

	// avail[r][cluster] is the register holding r's value in that cluster
	// for the remainder of the current iteration.
	avail := make(map[ir.Reg]map[int]ir.Reg)
	lookup := func(r ir.Reg, cl int) (ir.Reg, bool) {
		m := avail[r]
		if m == nil {
			return ir.NoReg, false
		}
		c, ok := m[cl]
		return c, ok
	}
	record := func(r ir.Reg, cl int, c ir.Reg) {
		m := avail[r]
		if m == nil {
			m = make(map[int]ir.Reg)
			avail[r] = m
		}
		m[cl] = c
	}

	newCopyReg := func(u ir.Reg, home int) ir.Reg {
		c := newReg(u.Class)
		asg.Of[c] = home
		record(u, home, c)
		return c
	}

	for _, op := range src.Ops {
		home := homeCluster(op, asg)
		n := op.Clone()
		for ui, u := range n.Uses {
			if asg.Bank(u) == home {
				continue
			}
			if c, ok := lookup(u, home); ok {
				n.Uses[ui] = c
				continue
			}
			c := newCopyReg(u, home)
			if definedInBody[u] || !hoistInvariants {
				res.Body.Append(&ir.Op{
					Code: ir.Copy, Class: u.Class,
					Defs: []ir.Reg{c}, Uses: []ir.Reg{u},
				})
				res.ClusterOf = append(res.ClusterOf, home)
				res.KernelCopies++
			} else {
				res.InvariantCopies++ // hoisted to the preheader
				res.Hoisted = append(res.Hoisted, [2]ir.Reg{c, u})
			}
			n.Uses[ui] = c
		}
		res.Body.Append(n)
		res.ClusterOf = append(res.ClusterOf, home)
	}
	res.Body.Renumber()
	for i, op := range res.Body.Ops {
		op.ID = i
	}
	return res
}

// homeCluster returns the cluster an operation must execute on: the bank
// of its defined register, or — for stores, which define nothing — the
// bank of the value being stored.
func homeCluster(op *ir.Op, asg *core.Assignment) int {
	if d := op.Def(); d != ir.NoReg {
		return asg.Bank(d)
	}
	if len(op.Uses) > 0 {
		return asg.Bank(op.Uses[0])
	}
	return 0
}
