// Package codegen implements the paper's five-step code-generation
// framework for partitioned register banks (Section 4):
//
//  1. build intermediate code with symbolic registers, assuming a single
//     infinite register bank;
//  2. build data dependence DAGs and schedule assuming that ideal bank;
//  3. partition the registers to register banks with a pluggable method
//     (the RCG greedy heuristic by default);
//  4. insert inter-cluster copies, rebuild the dependence graph, and
//     re-schedule with every operation pinned to the cluster that owns its
//     registers;
//  5. run Chaitin/Briggs graph-coloring register assignment per bank.
//
// The package reports the metrics the evaluation uses: ideal and
// partitioned II, IPC under both copy models, copy counts, degradation,
// per-bank pressure and spills.
package codegen

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/scratch"
)

// CopyInsertion is the outcome of step 4's copy insertion.
type CopyInsertion struct {
	// Body is the rewritten loop body with kernel copies inserted before
	// their consumers.
	Body *ir.Block
	// ClusterOf pins each operation of Body to a cluster: the bank of the
	// operation's defined register (for stores, of the stored value; for
	// copies, the destination bank).
	ClusterOf []int
	// KernelCopies counts copies added to the loop body; each repeats
	// every iteration and competes for issue resources.
	KernelCopies int
	// InvariantCopies counts copies of loop-invariant values, which are
	// hoisted to the loop preheader: the copied value never changes, so a
	// single copy before the loop suffices and the kernel pays nothing.
	// (The paper's Rocket compiler pipeline schedules loop kernels after
	// classic loop optimizations; keeping an invariant copy inside the
	// kernel would be an artifact, not a cost of partitioning.)
	InvariantCopies int
	// Hoisted lists the preheader copies as {destination, source} pairs,
	// in insertion order — the code a real preheader would execute once
	// before the loop. The interpreter-based equivalence tests replay
	// them to seed the rewritten body's state.
	Hoisted [][2]ir.Reg
}

// InsertCopies rewrites the loop body for the register-bank assignment:
// every operation is pinned to its home cluster, and every use of a
// register living in a different bank is routed through an inter-cluster
// copy into a fresh register in the home bank. Copies of values computed
// inside the loop are emitted into the kernel immediately before their
// first consumer and reused by later consumers in the same iteration;
// copies of loop invariants are hoisted (counted, not emitted).
//
// The assignment is extended in place with the banks of the fresh copy
// registers, so the caller's later phases (re-scheduling, allocation) see
// a total map.
func InsertCopies(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config) *CopyInsertion {
	return insertCopies(loop, asg, cfg, true)
}

// InsertCopiesStraightLine is InsertCopies for non-loop code: there is no
// preheader to hoist into, so copies of upward-exposed (live-in) values
// are emitted into the block like any other copy.
func InsertCopiesStraightLine(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config) *CopyInsertion {
	return insertCopies(loop, asg, cfg, false)
}

func insertCopies(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config, hoistInvariants bool) *CopyInsertion {
	return insertCopiesBlock(loop.Body, loop.NewReg, asg, hoistInvariants, nil)
}

// insertCopiesScratch is insertCopies drawing its working tables from the
// compile's scratch arena. The loop is the caller's private clone (copy
// insertion consumes its fresh-register counter).
func insertCopiesScratch(loop *ir.Loop, asg *core.Assignment, cfg *machine.Config, ar *scratch.Arena) *CopyInsertion {
	return insertCopiesBlock(loop.Body, loop.NewReg, asg, true, ar)
}

// copiesScratch is one copy insertion's working set: a dense index over
// the source body's registers, the defined-in-body bitmap, and the flat
// availability table avail[reg*banks+bank] — the register holding reg's
// value in that bank for the remainder of the current iteration, ir.NoReg
// when none. The rewritten body itself is always freshly allocated (it is
// retained by the result and possibly by the compile cache).
type copiesScratch struct {
	ri      ir.RegIndex
	defined []bool
	avail   []ir.Reg
}

var copiesPool = sync.Pool{New: func() any { return new(copiesScratch) }}

// insertCopiesBlock is the block-level engine shared by the loop pipeline
// and whole-function compilation; newReg allocates fresh registers from
// whatever owns the block's numbering. The source block is never mutated
// (the whole-function path hands over its original blocks): the rewrite
// runs in two passes, a counting pass that sizes the output exactly and an
// emit pass that carves every output operation, operand slice and memory
// reference out of single slab allocations.
func insertCopiesBlock(src *ir.Block, newReg func(ir.Class) ir.Reg, asg *core.Assignment, hoistInvariants bool, ar *scratch.Arena) *CopyInsertion {
	sc, arenaOwned := scratch.For(ar, scratch.Copies, func() *copiesScratch { return new(copiesScratch) })
	if !arenaOwned {
		sc = copiesPool.Get().(*copiesScratch)
		defer copiesPool.Put(sc)
	}

	sc.ri.Reset(src)
	n, banks := sc.ri.Len(), asg.Banks
	sc.defined = scratch.Bools(sc.defined, n)
	scratch.ZeroBools(sc.defined)
	for _, op := range src.Ops {
		for _, d := range op.Defs {
			sc.defined[sc.ri.Of(d)] = true
		}
	}
	// The availability table keys by the *source* body's registers (the use
	// before rewriting), which the index covers by construction; the fresh
	// copy registers only ever appear as table values.
	if cap(sc.avail) < n*banks {
		sc.avail = make([]ir.Reg, n*banks)
	}
	sc.avail = sc.avail[:n*banks]
	for i := range sc.avail {
		sc.avail[i] = ir.NoReg
	}

	// Pass 1: simulate the rewrite to size the slabs. Only *presence* in
	// the availability table matters here, so the use register itself
	// (never NoReg) stands in for the copy register pass 2 will allocate.
	kernel, invariant, nRegs, nMem := 0, 0, 0, 0
	for _, op := range src.Ops {
		home := homeCluster(op, asg)
		nRegs += len(op.Defs) + len(op.Uses)
		if op.Mem != nil {
			nMem++
		}
		for _, u := range op.Uses {
			if asg.Bank(u) == home {
				continue
			}
			ai := sc.ri.Of(u)*banks + home
			if sc.avail[ai] != ir.NoReg {
				continue
			}
			sc.avail[ai] = u
			if sc.defined[sc.ri.Of(u)] || !hoistInvariants {
				kernel++
			} else {
				invariant++
			}
		}
	}
	for i := range sc.avail {
		sc.avail[i] = ir.NoReg
	}

	// Pass 2: emit. Pointers into opSlab stay valid because the slab never
	// grows; operand subslices are carved at full capacity so a later append
	// to one op's operands cannot bleed into its neighbor's.
	nOut := len(src.Ops) + kernel
	opSlab := make([]ir.Op, nOut)
	regSlab := make([]ir.Reg, nRegs+2*kernel)
	var memSlab []ir.MemRef
	if nMem > 0 {
		memSlab = make([]ir.MemRef, nMem)
	}
	res := &CopyInsertion{
		Body:            &ir.Block{Depth: src.Depth, Ops: make([]*ir.Op, 0, nOut)},
		ClusterOf:       make([]int, 0, nOut),
		KernelCopies:    kernel,
		InvariantCopies: invariant,
	}
	if invariant > 0 {
		res.Hoisted = make([][2]ir.Reg, 0, invariant)
	}
	oi, ri, mi := 0, 0, 0
	carve := func(rs []ir.Reg) []ir.Reg {
		if len(rs) == 0 {
			return nil
		}
		out := regSlab[ri : ri+len(rs) : ri+len(rs)]
		copy(out, rs)
		ri += len(rs)
		return out
	}
	for _, op := range src.Ops {
		home := homeCluster(op, asg)
		o := &opSlab[oi]
		oi++
		*o = *op
		o.Defs = carve(op.Defs)
		o.Uses = carve(op.Uses)
		if op.Mem != nil {
			memSlab[mi] = *op.Mem
			o.Mem = &memSlab[mi]
			mi++
		}
		for ui, u := range o.Uses {
			if asg.Bank(u) == home {
				continue
			}
			ai := sc.ri.Of(u)*banks + home
			if c := sc.avail[ai]; c != ir.NoReg {
				o.Uses[ui] = c
				continue
			}
			c := newReg(u.Class)
			asg.Of[c] = home
			sc.avail[ai] = c
			if sc.defined[sc.ri.Of(u)] || !hoistInvariants {
				cp := &opSlab[oi]
				oi++
				*cp = ir.Op{Code: ir.Copy, Class: u.Class}
				cp.Defs = regSlab[ri : ri+1 : ri+1]
				cp.Defs[0] = c
				cp.Uses = regSlab[ri+1 : ri+2 : ri+2]
				cp.Uses[0] = u
				ri += 2
				res.Body.Ops = append(res.Body.Ops, cp)
				res.ClusterOf = append(res.ClusterOf, home)
			} else {
				res.Hoisted = append(res.Hoisted, [2]ir.Reg{c, u}) // hoisted to the preheader
			}
			o.Uses[ui] = c
		}
		res.Body.Ops = append(res.Body.Ops, o)
		res.ClusterOf = append(res.ClusterOf, home)
	}
	res.Body.Renumber()
	return res
}

// homeCluster returns the cluster an operation must execute on: the bank
// of its defined register, or — for stores, which define nothing — the
// bank of the value being stored.
func homeCluster(op *ir.Op, asg *core.Assignment) int {
	if d := op.Def(); d != ir.NoReg {
		return asg.Bank(d)
	}
	if len(op.Uses) > 0 {
		return asg.Bank(op.Uses[0])
	}
	return 0
}
