package codegen

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/modulo"
)

// This file renders the pipeline's end product: the software-pipelined
// loop as scheduled machine code with physical registers. After step 5
// every surviving virtual register has a bank and a machine register
// number; Emit combines that assignment with the modulo schedule's
// prelude/kernel/postlude expansion into the listing a code generator
// would hand to the assembler.

// EmitOptions controls the listing.
type EmitOptions struct {
	// Trip is the iteration count to expand for (0 means stages+2, the
	// smallest pipeline that shows a steady state).
	Trip int
}

// Emit renders the compiled loop as annotated machine code. The result
// must have been compiled with register allocation (not SkipAlloc).
func Emit(res *Result, opt EmitOptions) (string, error) {
	if res.Alloc == nil {
		return "", fmt.Errorf("codegen: Emit needs a result compiled with register allocation")
	}
	trip := opt.Trip
	if trip <= 0 {
		trip = res.PartSched.Stages() + 2
	}
	e, err := modulo.Expand(res.PartSched, res.Copies.Body, trip)
	if err != nil {
		return "", err
	}

	name := func(r ir.Reg) string {
		bank := res.Assignment.Bank(r)
		alloc := res.Alloc[bank]
		if alloc != nil {
			if c, ok := alloc.Colors[r]; ok {
				return fmt.Sprintf("b%dr%d", bank, c)
			}
		}
		return fmt.Sprintf("b%d!%s", bank, r) // spilled or unallocated
	}
	renderOp := func(op *ir.Op) string {
		c := op.Clone()
		// Re-render with physical names by textual substitution on a
		// fresh clone's operand strings; the printer has no hook for
		// alternate register names, so rebuild the operand list manually.
		var parts []string
		for _, d := range c.Defs {
			parts = append(parts, name(d))
		}
		if c.Code == ir.Store && c.Mem != nil {
			parts = append(parts, c.Mem.String())
		}
		for _, u := range c.Uses {
			parts = append(parts, name(u))
		}
		if c.Code == ir.Load && c.Mem != nil {
			parts = append(parts, c.Mem.String())
		}
		if c.Code == ir.LoadImm {
			parts = append(parts, fmt.Sprintf("#%d", c.Imm))
		}
		return c.Code.String() + " " + strings.Join(parts, ", ")
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s on %s\n", res.Loop.Name, res.Cfg.Name)
	fmt.Fprintf(&sb, "; II=%d stages=%d trip=%d total=%d cycles\n",
		e.II, e.Stages, e.Trip, e.TotalCycles)
	if len(res.Copies.Hoisted) > 0 {
		sb.WriteString("preheader:\n")
		for _, pair := range res.Copies.Hoisted {
			fmt.Fprintf(&sb, "    move %s, %s\n", name(pair[0]), name(pair[1]))
		}
	}
	section := func(title string, rows [][]modulo.Instance) {
		fmt.Fprintf(&sb, "%s:\n", title)
		for cyc, row := range rows {
			if len(row) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  c%-3d", cyc)
			for i, inst := range row {
				if i > 0 {
					sb.WriteString(" || ")
				} else {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "[u%d] %s", res.PartSched.Cluster[inst.Op], renderOp(res.Copies.Body.Ops[inst.Op]))
			}
			sb.WriteByte('\n')
		}
	}
	section("prelude", e.Prelude)
	section(fmt.Sprintf("kernel (repeats %d times)", e.KernelReps), e.Kernel)
	if len(e.Postlude) > 0 {
		section("postlude", e.Postlude)
	}
	return sb.String(), nil
}
