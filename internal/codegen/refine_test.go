package codegen

import (
	"context"
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
)

func TestCompileRefinedNeverWorse(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	improvedSomewhere := false
	for _, l := range loops {
		base, err := Compile(context.Background(), l, cfg, Options{SkipAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		refined, stats, err := CompileRefined(context.Background(), l, cfg, Options{SkipAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		if refined.PartII() > base.PartII() {
			t.Errorf("%s: refinement regressed II %d -> %d", l.Name, base.PartII(), refined.PartII())
		}
		if stats.FinalII > stats.StartII {
			t.Errorf("%s: stats claim regression: %+v", l.Name, stats)
		}
		if refined.PartII() < base.PartII() {
			improvedSomewhere = true
		}
		if err := modulo.Check(refined.PartSched, refined.PartGraph, cfg, modulo.Options{ClusterOf: refined.Copies.ClusterOf}); err != nil {
			t.Fatalf("%s: refined schedule invalid: %v", l.Name, err)
		}
	}
	if !improvedSomewhere {
		t.Log("refinement found no strict improvement in this slice (acceptable but worth watching)")
	}
}

func TestCompileRefinedMonolithicNoop(t *testing.T) {
	l := loopgen.Generate(loopgen.Params{N: 1, Seed: 5})[0]
	res, stats, err := CompileRefined(context.Background(), l, machine.Ideal16(), Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MovesTried != 0 || res.Degradation() != 100 {
		t.Errorf("monolithic refinement should be a no-op: %+v", stats)
	}
}

func TestCompileRefinedDeterministic(t *testing.T) {
	l := loopgen.Generate(loopgen.Params{N: 12, Seed: loopgen.DefaultParams().Seed})[7]
	cfg := machine.MustClustered16(8, machine.Embedded)
	a, sa, err := CompileRefined(context.Background(), l, cfg, Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := CompileRefined(context.Background(), l, cfg, Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.PartII() != b.PartII() || *sa != *sb {
		t.Fatalf("refinement nondeterministic: %+v vs %+v", sa, sb)
	}
}

func TestCompileRefinedAllocWhenRequested(t *testing.T) {
	l := loopgen.Generate(loopgen.Params{N: 3, Seed: 5})[2]
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, _, err := CompileRefined(context.Background(), l, cfg, Options{RefineRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alloc) != cfg.Clusters {
		t.Errorf("refined result missing per-bank allocation")
	}
}
