package codegen

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// Config is the one knobs struct for the whole compile pipeline. Every
// entry point — Compile, CompileBlock, CompileFunction, CompileRefined,
// exper.Run and the swp facade's Compiler — consumes this same struct, so
// a setting made once (cache, tracer, budget, partitioner) means the same
// thing at every layer. The zero value is the paper's default pipeline:
// RCG greedy partitioning, default heuristic weights, Rau's budget ratio
// of 6, full per-bank register assignment, no tracing, no caching, one
// suite worker per CPU.
//
// It subsumes what used to be three overlapping structs: codegen.Options
// (per-compilation knobs), exper.Options (suite workers + tracer) and
// codegen.RefineOptions (refinement budget). Those survive as thin
// compatibility shims; see Options and RefineOptions.
type Config struct {
	// Partitioner selects the register-partitioning method; nil means the
	// paper's RCG greedy heuristic.
	Partitioner partition.Partitioner
	// Weights tunes the RCG heuristic; nil means core.DefaultWeights.
	Weights *core.Weights
	// Pre pre-colors registers to fixed banks.
	Pre map[ir.Reg]int
	// BudgetRatio is passed to the modulo scheduler (0 = default 6): the
	// placement budget per candidate II is BudgetRatio * ops.
	BudgetRatio int
	// LifetimeSched enables the swing-flavored lifetime-sensitive modulo
	// scheduling mode (Section 6.3's scheduler axis) for both the ideal
	// and the clustered schedule.
	LifetimeSched bool
	// SkipAlloc skips step 5 (per-bank register assignment); the
	// experiment sweeps use it to save time when only IIs are needed.
	SkipAlloc bool
	// Tracer instruments every pipeline stage (spans and counters); nil
	// disables tracing at zero cost.
	Tracer *trace.Tracer
	// Cache memoizes dependence graphs and modulo schedules across
	// compilations, keyed by content fingerprint (see internal/cache), so
	// hot loops — across the experiment grid or across service requests —
	// hit the content-addressed stages. Nil disables caching; results are
	// identical either way.
	Cache *cache.Cache
	// CacheBudget bounds the attached Cache's estimated resident bytes
	// (see cache.SetBudget): 0 leaves the cache's own budget in place
	// (unlimited by default), a positive value is a byte bound, and
	// cache.BudgetZero retains nothing — the eviction stress mode. The
	// budget is applied to Cache at every pipeline entry point, so a
	// Config fully describes the cache behavior it compiles under.
	CacheBudget int64
	// Disk attaches a persistent second tier behind Cache (see
	// cache.OpenDisk): memory misses for the persisted stages consult
	// verified on-disk records before recomputing, and fresh results are
	// written behind, so a restarted process starts warm. Like
	// CacheBudget it is applied at every pipeline entry point; nil
	// leaves whatever tier the Cache already has (usually none).
	// Results are byte-identical with the tier on, cold or warm.
	Disk *cache.Disk
	// IISeed attaches the cross-compile II-seed table (modulo.SeedTable):
	// both scheduling stages start their II search from the II a previous
	// structurally identical problem settled on, cutting warm scheduling
	// latency without changing any schedule. Nil disables seeding.
	IISeed *modulo.SeedTable
	// Scratch optionally pins one compilation's reusable stage buffers
	// (dependence analysis, scheduling, RCG, coloring — see
	// internal/scratch) to a caller-owned arena. Nil makes Compile take an
	// arena from the shared pool for the duration of the call, which is
	// right for almost everyone; an arena must never be shared by
	// concurrent compiles.
	Scratch *scratch.Arena

	// ExactBudget enables the exact-solver arms when positive (the
	// -exact-budget knob): the branch-and-bound bank assignment joins the
	// portfolio as one more candidate, and after selection the winning
	// schedule is re-searched for a provably minimal II. The duration is a
	// per-stage wall-clock ceiling; both arms are anytime, so expiry keeps
	// the heuristic result. Zero (the default) disables both arms and
	// leaves the pipeline byte-identical to the paper's.
	ExactBudget time.Duration
	// ExactNodes caps each exact arm's search nodes (0 = the solver
	// defaults, exact.DefaultPartitionNodes / exact.DefaultScheduleNodes).
	// This, not ExactBudget, is the authoritative bound: results are a
	// pure function of the node budget, so reproduction runs stay
	// byte-identical across machines of different speeds.
	ExactNodes int64

	// Adaptive enables the feature-conditioned adaptive-weights arm (the
	// -adaptive knob): portfolio partitioning appends one more candidate
	// partitioned under the weight vector the table predicts for the
	// loop's feature bucket (features.Default() is the checked-in trained
	// table). The candidate must strictly win the downstream (spills,
	// pressure, II) scoring to be adopted, so the arm is never worse than
	// the fixed-weight greedy. Nil (the default) disables the arm; it
	// also only engages on portfolio-capable partitioners.
	Adaptive *features.Table

	// Workers bounds suite-level parallel compilations (exper.Run and the
	// facade's Compiler.Run); <=0 uses GOMAXPROCS. It does not affect a
	// single Compile call.
	Workers int

	// RefineRounds caps CompileRefined's improvement rounds (0 means 4).
	RefineRounds int
	// RefineTrials caps candidate moves evaluated per refinement round
	// (0 means 24).
	RefineTrials int
}

// Options is the historical name of the per-compilation knobs struct.
//
// Deprecated: Options is now an alias of Config, kept so existing
// call sites and composite literals keep compiling; new code should say
// Config.
type Options = Config

// RefineOptions held CompileRefined's budget before those knobs moved
// onto Config.
//
// Deprecated: set RefineRounds and RefineTrials on Config instead.
type RefineOptions struct {
	// Rounds caps the improvement rounds (0 means 4).
	Rounds int
	// TrialsPerRound caps candidate moves evaluated per round (0 means 24).
	TrialsPerRound int
}

// applyCacheBudget threads Config.CacheBudget and Config.Disk onto the
// attached cache. Idempotent and allocation-free; called at every
// pipeline entry point so the budget and the persistent tier hold no
// matter which layer built the cache.
func (c *Config) applyCacheBudget() {
	if c.Cache == nil {
		return
	}
	if c.CacheBudget != 0 {
		c.Cache.SetBudget(c.CacheBudget)
	}
	if c.Disk != nil && c.Cache.Disk() != c.Disk {
		c.Cache.AttachDisk(c.Disk)
	}
}

// Apply copies the legacy refinement knobs onto a Config, the migration
// shim for code still holding a RefineOptions.
func (ro RefineOptions) Apply(c *Config) {
	if ro.Rounds != 0 {
		c.RefineRounds = ro.Rounds
	}
	if ro.TrialsPerRound != 0 {
		c.RefineTrials = ro.TrialsPerRound
	}
}

// StageError reports a compilation cut short by its context: Stage names
// the last pipeline stage reached when the deadline expired or the caller
// cancelled, and the wrapped error is the context's (so errors.Is against
// context.DeadlineExceeded / context.Canceled works through it). The
// compile service surfaces Stage in its 504 responses.
type StageError struct {
	// Stage is the pipeline stage reached, e.g. "modulo.ideal" or
	// "regalloc".
	Stage string
	// Err is the underlying cause, ctx.Err() possibly wrapped with
	// scheduler progress detail.
	Err error
}

// Error renders the stage and cause.
func (e *StageError) Error() string {
	return fmt.Sprintf("codegen: cancelled at stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Stage extracts the stage name from an error chain, or "" if the error
// does not carry one.
func Stage(err error) string {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage
	}
	return ""
}
