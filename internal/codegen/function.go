package codegen

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sched"
)

// FunctionBlock is one block's compilation inside a whole-function run.
type FunctionBlock struct {
	// Source is the original block.
	Source *ir.Block
	// IdealGraph and IdealSched are the block's DDD and ideal schedule.
	IdealGraph *ddg.Graph
	IdealSched *sched.Schedule
	// Copies, PartGraph and PartSched are the clustered rewrite and
	// schedule.
	Copies    *CopyInsertion
	PartGraph *ddg.Graph
	PartSched *sched.Schedule
}

// Degradation returns the block's makespan ratio (100 = ideal).
func (fb *FunctionBlock) Degradation() float64 {
	if fb.IdealSched.Length == 0 {
		return 100
	}
	return 100 * float64(fb.PartSched.Length) / float64(fb.IdealSched.Length)
}

// FunctionResult is the outcome of whole-function partitioning: one
// register-to-bank assignment shared by every block, derived from a single
// register component graph built over all of them — the paper's "global in
// nature" framework, where the RCG's nesting-depth weighting makes the
// innermost blocks dominate the partition.
type FunctionResult struct {
	Fn            *ir.Function
	Cfg, IdealCfg *machine.Config
	// RCG is the function-wide register component graph (nil when a
	// non-RCG partitioner was used).
	RCG *core.RCG
	// Assignment maps every register of the function to a bank.
	Assignment *core.Assignment
	// Blocks holds per-block schedules, in function order.
	Blocks []*FunctionBlock
}

// WeightedDegradation estimates the whole function's dynamic slowdown by
// weighting each block's makespan with 10^depth (the same execution
// frequency estimate the RCG weighting uses for nesting depth).
func (fr *FunctionResult) WeightedDegradation() float64 {
	ideal, part := 0.0, 0.0
	for _, fb := range fr.Blocks {
		w := math.Pow(10, float64(fb.Source.Depth))
		ideal += w * float64(fb.IdealSched.Length)
		part += w * float64(fb.PartSched.Length)
	}
	if ideal == 0 {
		return 100
	}
	return 100 * part / ideal
}

// Copies sums the inserted inter-cluster copies across blocks.
func (fr *FunctionResult) Copies() int {
	n := 0
	for _, fb := range fr.Blocks {
		n += fb.Copies.KernelCopies
	}
	return n
}

// CompileFunction partitions an entire function's registers at once and
// schedules every block under the shared assignment. All blocks feed a
// single register component graph, so a value flowing between blocks pulls
// its producers and consumers toward one bank, and deeply nested blocks
// outweigh shallow ones in the greedy order.
func CompileFunction(ctx context.Context, f *ir.Function, cfg *machine.Config, opt Options) (*FunctionResult, error) {
	if err := ir.VerifyFunction(f); err != nil {
		return nil, err
	}
	if len(f.Blocks) == 0 {
		return nil, fmt.Errorf("codegen: function %q has no blocks", f.Name)
	}
	opt.applyCacheBudget()
	weights := core.DefaultWeights()
	if opt.Weights != nil {
		weights = *opt.Weights
	}
	res := &FunctionResult{Fn: f, Cfg: cfg, IdealCfg: IdealOf(cfg)}

	// Pass 1: per-block ideal schedules and RCG views.
	views := make([]core.ScheduledBlock, 0, len(f.Blocks))
	for _, b := range f.Blocks {
		if err := checkpoint(ctx, "sched.ideal"); err != nil {
			return nil, err
		}
		g := ddg.Build(b, res.IdealCfg, ddg.Options{Carried: false})
		s, err := sched.List(g, res.IdealCfg, nil)
		if err != nil {
			return nil, fmt.Errorf("codegen: ideal scheduling of %q: %w", f.Name, err)
		}
		res.Blocks = append(res.Blocks, &FunctionBlock{Source: b, IdealGraph: g, IdealSched: s})
		views = append(views, core.ScheduledBlock{
			Block:  b,
			Time:   s.Time,
			Length: s.Length,
			Slack:  sched.Slack(g, res.IdealCfg, s.Length),
		})
	}

	// Pass 2: one partition for the whole function.
	if opt.Partitioner != nil {
		// Non-RCG methods see the function's largest block as their
		// scheduling context (BUG and UAS are per-context algorithms);
		// registers they never saw default to bank 0.
		biggest := 0
		for i, b := range f.Blocks {
			if len(b.Ops) > len(f.Blocks[biggest].Ops) {
				biggest = i
			}
		}
		asg, err := opt.Partitioner.Assign(&partition.Input{
			Block:   f.Blocks[biggest],
			Graph:   res.Blocks[biggest].IdealGraph,
			Ideal:   views[biggest],
			Cfg:     cfg,
			Weights: weights,
			Pre:     opt.Pre,
		})
		if err != nil {
			return nil, err
		}
		res.Assignment = asg
	} else {
		res.RCG = core.Build(views, weights)
		asg, err := res.RCG.Partition(cfg.Clusters, weights, opt.Pre)
		if err != nil {
			return nil, err
		}
		res.Assignment = asg
	}

	// Pass 3: rewrite and re-schedule every block under the assignment.
	for _, fb := range res.Blocks {
		if err := checkpoint(ctx, "sched.clustered"); err != nil {
			return nil, err
		}
		fb.Copies = insertCopiesBlock(fb.Source, f.NewReg, res.Assignment, false, nil)
		if err := ir.VerifyBlock(fb.Copies.Body); err != nil {
			return nil, fmt.Errorf("codegen: function copy insertion: %w", err)
		}
		fb.PartGraph = ddg.Build(fb.Copies.Body, cfg, ddg.Options{Carried: false})
		clusterOf := fb.Copies.ClusterOf
		s, err := sched.List(fb.PartGraph, cfg, func(i int) int { return clusterOf[i] })
		if err != nil {
			return nil, fmt.Errorf("codegen: clustered scheduling of %q: %w", f.Name, err)
		}
		fb.PartSched = s
	}
	return res, nil
}
