package codegen

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// FuzzCacheEquivalence holds the compile cache to its contract on loops
// drawn from arbitrary generator seeds: compiling with a cache — cold,
// then warm on the same cache (the pure hit path) — must produce exactly
// the pipeline output of an uncached compile. Schedules, partitions,
// copy-rewritten bodies and per-bank colorings are all compared; any
// divergence means a fingerprint collision or an unsound key exclusion.
func FuzzCacheEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(0x5EC95), uint8(2))
	f.Add(int64(211), uint8(4))
	f.Add(int64(-1), uint8(255))
	cfgs := machine.PaperConfigs()
	f.Fuzz(func(t *testing.T, seed int64, cfgIdx uint8) {
		loop := loopgen.Generate(loopgen.Params{N: 1, Seed: seed})[0]
		cfg := cfgs[int(cfgIdx)%len(cfgs)]

		want, wantErr := Compile(context.Background(), loop, cfg, Options{})
		c := cache.New()
		cold, coldErr := Compile(context.Background(), loop, cfg, Options{Cache: c})
		warm, warmErr := Compile(context.Background(), loop, cfg, Options{Cache: c})

		if (wantErr == nil) != (coldErr == nil) || (wantErr == nil) != (warmErr == nil) {
			t.Fatalf("seed %d on %s: error disagreement: uncached=%v cold=%v warm=%v",
				seed, cfg.Name, wantErr, coldErr, warmErr)
		}
		if wantErr != nil {
			return
		}
		sameResult(t, "cold cache", want, cold)
		sameResult(t, "warm cache", want, warm)
		if st := c.Stats(); st.Hits == 0 {
			t.Fatalf("seed %d on %s: warm compile recorded no cache hits", seed, cfg.Name)
		}
	})
}

// sameResult compares every observable pipeline output of two compiles.
func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.IdealII() != got.IdealII() || want.PartII() != got.PartII() {
		t.Fatalf("%s: IIs (%d,%d) vs uncached (%d,%d)",
			label, got.IdealII(), got.PartII(), want.IdealII(), want.PartII())
	}
	sameSchedule(t, label+" ideal", want.IdealSched.Time, got.IdealSched.Time)
	sameSchedule(t, label+" clustered", want.PartSched.Time, got.PartSched.Time)
	if len(want.Assignment.Of) != len(got.Assignment.Of) {
		t.Fatalf("%s: %d assigned registers vs %d", label, len(got.Assignment.Of), len(want.Assignment.Of))
	}
	for r, b := range want.Assignment.Of {
		if got.Assignment.Of[r] != b {
			t.Fatalf("%s: register %s in bank %d vs %d", label, r, got.Assignment.Of[r], b)
		}
	}
	if want.Copies.KernelCopies != got.Copies.KernelCopies ||
		want.Copies.InvariantCopies != got.Copies.InvariantCopies {
		t.Fatalf("%s: copies (%d,%d) vs (%d,%d)", label,
			got.Copies.KernelCopies, got.Copies.InvariantCopies,
			want.Copies.KernelCopies, want.Copies.InvariantCopies)
	}
	if want.Copies.Body.String() != got.Copies.Body.String() {
		t.Fatalf("%s: clustered bodies differ", label)
	}
	if want.Spills() != got.Spills() || want.MaxPressure() != got.MaxPressure() {
		t.Fatalf("%s: allocation (spills %d, pressure %d) vs (%d, %d)", label,
			got.Spills(), got.MaxPressure(), want.Spills(), want.MaxPressure())
	}
}

func sameSchedule(t *testing.T, label string, want, got []int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d scheduled ops vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: op %d at cycle %d vs %d", label, i, got[i], want[i])
		}
	}
}
