package codegen

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// Options must remain a true alias of Config so every pre-unification
// composite literal keeps compiling and behaving identically.
var _ = func(o Options) Config { return o }

// TestZeroConfigMatchesLegacyDefaults pins the unification: a zero-value
// Config must compile byte-identically to the historical defaults
// (RefineRounds=4, RefineTrials=24 spelled out, which RefineOptions used
// to default to on its own).
func TestZeroConfigMatchesLegacyDefaults(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 6, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	for _, l := range loops {
		zero, _, err := CompileRefined(context.Background(), l, cfg, Config{SkipAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		explicit, _, err := CompileRefined(context.Background(), l, cfg, Config{
			SkipAlloc: true, RefineRounds: 4, RefineTrials: 24,
		})
		if err != nil {
			t.Fatal(err)
		}
		if zero.PartII() != explicit.PartII() ||
			!reflect.DeepEqual(zero.PartSched.Time, explicit.PartSched.Time) ||
			!reflect.DeepEqual(zero.PartSched.Cluster, explicit.PartSched.Cluster) {
			t.Fatalf("%s: zero Config diverged from explicit defaults", l.Name)
		}
	}
}

func TestRefineOptionsShimApplies(t *testing.T) {
	var c Config
	RefineOptions{}.Apply(&c)
	if c.RefineRounds != 0 || c.RefineTrials != 0 {
		t.Errorf("empty shim wrote values: %+v", c)
	}
	RefineOptions{Rounds: 2, TrialsPerRound: 7}.Apply(&c)
	if c.RefineRounds != 2 || c.RefineTrials != 7 {
		t.Errorf("shim did not carry values: %+v", c)
	}
}

// TestCompileDeadlineNamesStage is the cancellation contract: an expired
// context aborts the pipeline promptly, the error wraps
// context.DeadlineExceeded, and Stage names where it stopped.
func TestCompileDeadlineNamesStage(t *testing.T) {
	// 8192 ops compile in ~400ms here; a 1ms deadline must abort the
	// compile mid-flight even where the runtime delivers timer
	// expirations ~20ms late (coarse container clocks). The fixture must
	// stay much slower to compile than the worst-case timer lateness, or
	// the whole pipeline can slip past its last checkpoint before the
	// tardy timer fires.
	loop := fixtures.DotProduct(2048)
	cfg := machine.MustClustered16(8, machine.Embedded)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Compile(ctx, loop, cfg, Config{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("compile beat a 1ms deadline on a 2048-op loop (or ignored it)")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap the deadline: %v", err)
	}
	if s := Stage(err); s == "" {
		t.Errorf("cancelled compile did not name its stage: %v", err)
	}
	if bound := 100 * time.Millisecond * raceDelayFactor; elapsed > bound {
		t.Errorf("cancellation took %s, want <%s", elapsed, bound)
	}
}

// TestCompileCancelledBeforeStart stops at the first checkpoint.
func TestCompileCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Compile(ctx, fixtures.DotProduct(1), machine.MustClustered16(2, machine.Embedded), Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled compile returned %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "ddg.ideal" {
		t.Errorf("expected StageError at ddg.ideal, got %v", err)
	}
}
