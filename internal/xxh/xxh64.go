// Package xxh is a dependency-free implementation of the XXH64 hash
// (Yann Collet's xxHash, 64-bit variant): a fast, high-quality,
// non-cryptographic 64-bit hash. The compile cache uses it for its
// in-memory memo keys, where a digest only has to scatter process-local
// keys and collide with vanishing probability — the cryptographic
// strength (and cost) of SHA-256 is reserved for the shared disk-cache
// boundary, whose content-addressed filenames outlive the process (see
// internal/cache and DESIGN.md §14).
//
// The implementation matches the reference algorithm bit for bit (the
// published test vectors pin this), so hashes are stable across
// processes and architectures even though nothing currently persists
// them.
package xxh

import (
	"encoding/binary"
	"math/bits"
)

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Sum64 returns the XXH64 digest of b with seed 0.
func Sum64(b []byte) uint64 { return Sum64Seed(b, 0) }

// Sum64Seed returns the XXH64 digest of b under the given seed. Distinct
// seeds give independent hash functions over the same bytes, which is how
// the II-seed table derives a 128-bit key from two 64-bit digests.
func Sum64Seed(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, u uint64) uint64 {
	acc += u * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func mergeRound(h, v uint64) uint64 {
	h ^= round(0, v)
	return h*prime1 + prime4
}
