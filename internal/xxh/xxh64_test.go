package xxh

import (
	"fmt"
	"strings"
	"testing"
)

// TestVectors pins the implementation to the reference XXH64: these
// digests come from the upstream xxHash test suite, so a pass means the
// function is the published hash, not a lookalike.
func TestVectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"", 1, 0xd5afba1336a3be4b},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"as", 0, 0x1c330fb2d66be179},
		{"asd", 0, 0x631c37ce72a97393},
		{"asdf", 0, 0x415872f599cea71e},
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0, 0x02a2e85470d6fd96},
	}
	for _, tc := range cases {
		if got := Sum64Seed([]byte(tc.in), tc.seed); got != tc.want {
			t.Errorf("Sum64Seed(%q, %d) = %#016x, want %#016x", tc.in, tc.seed, got, tc.want)
		}
	}
	if Sum64([]byte("a")) != Sum64Seed([]byte("a"), 0) {
		t.Error("Sum64 is not Sum64Seed with seed 0")
	}
}

// TestLengthBoundaries walks every input length across the algorithm's
// block boundaries (31/32/33 bytes switch the main loop on; 4- and
// 8-byte tails exercise each finalizer branch) and checks basic hash
// hygiene: determinism, and sensitivity to every byte position.
func TestLengthBoundaries(t *testing.T) {
	base := []byte(strings.Repeat("0123456789abcdef", 8)) // 128 bytes
	for n := 0; n <= len(base); n++ {
		in := base[:n]
		h1, h2 := Sum64(in), Sum64(in)
		if h1 != h2 {
			t.Fatalf("len %d: nondeterministic digest", n)
		}
		for i := 0; i < n; i++ {
			mut := append([]byte(nil), in...)
			mut[i] ^= 0x01
			if Sum64(mut) == h1 {
				t.Fatalf("len %d: flipping byte %d left the digest unchanged", n, i)
			}
		}
	}
}

// TestSeedSeparation: different seeds must act as independent functions.
func TestSeedSeparation(t *testing.T) {
	in := []byte("seed separation probe")
	seen := make(map[uint64]uint64)
	for seed := uint64(0); seed < 64; seed++ {
		h := Sum64Seed(in, seed)
		if prev, dup := seen[h]; dup {
			t.Fatalf("seeds %d and %d collide on %q", prev, seed, in)
		}
		seen[h] = seed
	}
}

func BenchmarkSum64(b *testing.B) {
	for _, size := range []int{64, 512, 4096} {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i * 131)
		}
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				_ = Sum64(buf)
			}
		})
	}
}
