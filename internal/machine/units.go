package machine

import (
	"fmt"

	"repro/internal/ir"
)

// The paper's evaluation uses general-purpose functional units — which, it
// notes, "potentially make the partitioning more difficult ... we're
// attempting to partition software pipelines with fewer holes than might
// be expected in more realistic architectures." Its motivation, though,
// is the Texas Instruments C6x family, whose clusters contain specialized
// units. This file adds that realism as an optional machine feature: each
// cluster's functional units may be typed, and an operation may only
// issue on a unit of its kind (or on a general-purpose one).

// FUKind classifies a functional unit or the unit class an operation
// needs.
type FUKind uint8

const (
	// AnyKind units execute every operation (the paper's general-purpose
	// model).
	AnyKind FUKind = iota
	// MemoryKind units execute loads and stores (the C6x "D" unit).
	MemoryKind
	// MultiplyKind units execute multiplies and divides (the C6x "M" unit).
	MultiplyKind
	// ALUKind units execute everything else (the C6x "L"/"S" units).
	ALUKind
	NumKinds
)

// String names the kind.
func (k FUKind) String() string {
	switch k {
	case AnyKind:
		return "any"
	case MemoryKind:
		return "mem"
	case MultiplyKind:
		return "mul"
	case ALUKind:
		return "alu"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpKind returns the unit class op needs.
func OpKind(op *ir.Op) FUKind {
	switch op.Code {
	case ir.Load, ir.Store:
		return MemoryKind
	case ir.Mul, ir.Div:
		return MultiplyKind
	default:
		return ALUKind
	}
}

// Heterogeneous reports whether the machine types its functional units.
func (c *Config) Heterogeneous() bool { return len(c.Units) > 0 }

// UnitCounts returns, per kind, how many units one cluster provides.
// Monolithic homogeneous machines report everything as AnyKind.
func (c *Config) UnitCounts() [NumKinds]int {
	var counts [NumKinds]int
	if !c.Heterogeneous() {
		counts[AnyKind] = c.FUsPerCluster()
		return counts
	}
	for _, k := range c.Units {
		counts[k]++
	}
	return counts
}

// KindFits reports whether a multiset of per-kind operation demands fits
// one cluster-cycle of the machine: every specialized demand uses its own
// units first and the overflow competes for the general-purpose units.
func (c *Config) KindFits(demand [NumKinds]int) bool {
	units := c.UnitCounts()
	spare := units[AnyKind]
	overflow := demand[AnyKind]
	for k := FUKind(1); k < NumKinds; k++ {
		if extra := demand[k] - units[k]; extra > 0 {
			overflow += extra
		}
	}
	return overflow <= spare
}

// C6xLike returns a TI-C6x-flavored machine: 8-wide, 2 clusters, each
// cluster holding two ALUs (L/S), one multiplier (M) and one memory unit
// (D), with one cross path modeled as the embedded copy discipline. Bank
// size matches the C62x register file (16 registers per side, scaled up
// to 32 to fit the suite's pressure).
func C6xLike(model CopyModel) *Config {
	c, err := New("8-wide C6x-like, 2 clusters of L/S/M/D", 8, 2, 32, model, PaperLatencies())
	if err != nil {
		panic(err)
	}
	c.Units = []FUKind{ALUKind, ALUKind, MultiplyKind, MemoryKind}
	return c
}
