package machine

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestNewValidation(t *testing.T) {
	bad := []struct {
		name                        string
		width, clusters, regsperbnk int
	}{
		{"zero width", 0, 1, 32},
		{"negative width", -4, 1, 32},
		{"zero clusters", 16, 0, 32},
		{"indivisible", 16, 3, 32},
		{"zero regs", 16, 4, 0},
	}
	for _, tt := range bad {
		if _, err := New(tt.name, tt.width, tt.clusters, tt.regsperbnk, Embedded, PaperLatencies()); err == nil {
			t.Errorf("New(%s) accepted invalid config", tt.name)
		}
	}
	if _, err := New("ok", 16, 4, 32, Embedded, PaperLatencies()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCopyUnitDefaults(t *testing.T) {
	// The reconstruction (DESIGN.md §3): ceil(log2 N) copy ports per
	// cluster, N busses. The paper's readable data points: 1 port per
	// cluster at N=2, 3 ports at N=8.
	tests := []struct {
		clusters, wantPorts, wantBusses int
	}{
		{2, 1, 2},
		{4, 2, 4},
		{8, 3, 8},
	}
	for _, tt := range tests {
		c := MustClustered16(tt.clusters, CopyUnit)
		if c.CopyPortsPerCluster != tt.wantPorts {
			t.Errorf("%d clusters: ports = %d, want %d", tt.clusters, c.CopyPortsPerCluster, tt.wantPorts)
		}
		if c.Busses != tt.wantBusses {
			t.Errorf("%d clusters: busses = %d, want %d", tt.clusters, c.Busses, tt.wantBusses)
		}
	}
	if c := MustClustered16(2, Embedded); c.CopyPortsPerCluster != 0 || c.Busses != 0 {
		t.Error("embedded model should not allocate copy-unit hardware")
	}
}

func TestPaperLatencyTable(t *testing.T) {
	cfg := Ideal16()
	mk := func(code ir.Opcode, class ir.Class) *ir.Op {
		op := &ir.Op{Code: code, Class: class}
		return op
	}
	tests := []struct {
		op   *ir.Op
		want int
	}{
		{mk(ir.Load, ir.Int), 2},
		{mk(ir.Load, ir.Float), 2},
		{mk(ir.Store, ir.Float), 4},
		{mk(ir.Mul, ir.Int), 5},
		{mk(ir.Div, ir.Int), 12},
		{mk(ir.Add, ir.Int), 1},
		{mk(ir.Shl, ir.Int), 1},
		{mk(ir.Mul, ir.Float), 2},
		{mk(ir.Div, ir.Float), 2},
		{mk(ir.Add, ir.Float), 2},
		{mk(ir.Copy, ir.Int), 2},
		{mk(ir.Copy, ir.Float), 3},
	}
	for _, tt := range tests {
		if got := cfg.Latency(tt.op); got != tt.want {
			t.Errorf("latency(%s %s) = %d, want %d", tt.op.Code, tt.op.Class, got, tt.want)
		}
	}
}

func TestCopyLatency(t *testing.T) {
	cfg := MustClustered16(4, Embedded)
	if cfg.CopyLatency(ir.Int) != 2 || cfg.CopyLatency(ir.Float) != 3 {
		t.Errorf("copy latencies = %d/%d, want 2/3", cfg.CopyLatency(ir.Int), cfg.CopyLatency(ir.Float))
	}
}

func TestFUsPerCluster(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c := MustClustered16(n, Embedded)
		if got := c.FUsPerCluster(); got != 16/n {
			t.Errorf("%d clusters: FUs per cluster = %d, want %d", n, got, 16/n)
		}
		if c.Monolithic() {
			t.Errorf("%d clusters reported monolithic", n)
		}
	}
	if !Ideal16().Monolithic() {
		t.Error("Ideal16 must be monolithic")
	}
}

func TestPaperConfigsOrder(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("want 6 paper configs, got %d", len(cfgs))
	}
	wantClusters := []int{2, 2, 4, 4, 8, 8}
	wantModels := []CopyModel{Embedded, CopyUnit, Embedded, CopyUnit, Embedded, CopyUnit}
	for i, c := range cfgs {
		if c.Clusters != wantClusters[i] || c.Model != wantModels[i] {
			t.Errorf("config %d = %d clusters %s, want %d %s", i, c.Clusters, c.Model, wantClusters[i], wantModels[i])
		}
		if c.Width != 16 {
			t.Errorf("config %d width = %d", i, c.Width)
		}
	}
}

func TestExample2x1(t *testing.T) {
	c := Example2x1()
	if c.Width != 2 || c.Clusters != 2 || c.FUsPerCluster() != 1 {
		t.Errorf("example machine shape wrong: %+v", c)
	}
	op := &ir.Op{Code: ir.Div, Class: ir.Float}
	if c.Latency(op) != 1 {
		t.Error("example machine must have unit latencies")
	}
}

func TestModelString(t *testing.T) {
	if Embedded.String() != "Embedded" || CopyUnit.String() != "Copy Unit" {
		t.Errorf("model names: %q, %q", Embedded, CopyUnit)
	}
	if !strings.Contains(CopyModel(9).String(), "9") {
		t.Error("unknown model should include its value")
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	}
	for _, tt := range tests {
		if got := ceilLog2(tt.n); got != tt.want {
			t.Errorf("ceilLog2(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}
