// Package machine describes the target architectures of the paper's
// evaluation (Section 6.1): a 16-wide ILP meta-model of general-purpose
// functional units grouped into N clusters, each cluster owning one
// multi-ported register bank, with two copy models for moving values
// between banks:
//
//   - Embedded: inter-cluster copies are explicit operations scheduled on
//     the destination cluster's ordinary functional units, consuming issue
//     slots;
//   - CopyUnit: extra issue slots are reserved only for copies; each of the
//     N clusters attaches to N busses and owns a small number of dedicated
//     copy ports, so copies never consume functional-unit slots but are
//     limited by port and bus bandwidth.
//
// The operation latencies are the paper's: integer copies 2 cycles,
// floating copies 3, loads 2, integer multiplies 5, integer divides 12,
// other integer ops 1, floating-point multiplies 2, floating divides 2,
// other floating-point ops 2, stores 4.
package machine

import (
	"fmt"
	"math/bits"

	"repro/internal/ir"
)

// CopyModel selects how inter-cluster copies are supported (Section 6.1).
type CopyModel uint8

const (
	// Embedded schedules copies on ordinary functional units.
	Embedded CopyModel = iota
	// CopyUnit reserves dedicated ports and busses for copies.
	CopyUnit
)

// String names the model the way the paper's tables do.
func (m CopyModel) String() string {
	switch m {
	case Embedded:
		return "Embedded"
	case CopyUnit:
		return "Copy Unit"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// Latencies maps operations to cycle counts. The zero value is unusable;
// start from PaperLatencies or UnitLatencies.
type Latencies struct {
	// Load and Store are memory access latencies.
	Load, Store int
	// IntMul, IntDiv, IntOther cover the integer class.
	IntMul, IntDiv, IntOther int
	// FloatMul, FloatDiv, FloatOther cover the floating-point class.
	FloatMul, FloatDiv, FloatOther int
	// CopyInt and CopyFloat are the inter-cluster copy latencies.
	CopyInt, CopyFloat int
}

// PaperLatencies returns the latency table of Section 6.1.
func PaperLatencies() Latencies {
	return Latencies{
		Load: 2, Store: 4,
		IntMul: 5, IntDiv: 12, IntOther: 1,
		FloatMul: 2, FloatDiv: 2, FloatOther: 2,
		CopyInt: 2, CopyFloat: 3,
	}
}

// UnitLatencies returns the all-ones table used by the paper's Section 4.2
// worked example ("For simplicity we assume unit latency for all
// operations"); copies still pay the moving cost of one cycle.
func UnitLatencies() Latencies {
	return Latencies{
		Load: 1, Store: 1,
		IntMul: 1, IntDiv: 1, IntOther: 1,
		FloatMul: 1, FloatDiv: 1, FloatOther: 1,
		CopyInt: 1, CopyFloat: 1,
	}
}

// Of returns the latency of op under the table.
func (lat Latencies) Of(op *ir.Op) int {
	switch op.Code {
	case ir.Load:
		return lat.Load
	case ir.Store:
		return lat.Store
	case ir.Copy:
		if op.Class == ir.Float {
			return lat.CopyFloat
		}
		return lat.CopyInt
	case ir.Mul:
		if op.Class == ir.Float {
			return lat.FloatMul
		}
		return lat.IntMul
	case ir.Div:
		if op.Class == ir.Float {
			return lat.FloatDiv
		}
		return lat.IntDiv
	default:
		if op.Class == ir.Float {
			return lat.FloatOther
		}
		return lat.IntOther
	}
}

// Config is a concrete machine: a width, a clustering, a copy model and a
// latency table. Construct configs with New or the preset helpers and treat
// them as immutable.
type Config struct {
	// Name labels the machine in reports ("16-wide, 4x4, embedded").
	Name string
	// Width is the total number of general-purpose functional units.
	Width int
	// Clusters is the number of register banks; Width must be divisible by
	// Clusters. Clusters == 1 is the ideal monolithic machine.
	Clusters int
	// RegsPerBank is the number of machine registers per bank, used by the
	// graph-coloring assignment phase.
	RegsPerBank int
	// Model selects how copies are supported. Irrelevant when Clusters==1.
	Model CopyModel
	// CopyPortsPerCluster is the number of dedicated copy issue slots per
	// cluster per cycle in the CopyUnit model. The paper's figure is
	// garbled; the readable data points (1 port at N=2, 3 ports at N=8) pin
	// the default to ceil(log2 N). See DESIGN.md §3.
	CopyPortsPerCluster int
	// Busses is the number of inter-cluster busses in the CopyUnit model;
	// each in-flight copy occupies one bus for one cycle. Defaults to N.
	Busses int
	// Units optionally types one cluster's functional units (all clusters
	// are identical); empty means every unit is general purpose, the
	// paper's evaluated model. Length must equal FUsPerCluster. See
	// units.go.
	Units []FUKind
	// Lat is the latency table.
	Lat Latencies
}

// New validates and returns a machine configuration, filling in CopyUnit
// defaults (ceil(log2 N) ports per cluster, N busses) when they are zero.
func New(name string, width, clusters, regsPerBank int, model CopyModel, lat Latencies) (*Config, error) {
	if width <= 0 {
		return nil, fmt.Errorf("machine: width %d must be positive", width)
	}
	if clusters <= 0 {
		return nil, fmt.Errorf("machine: cluster count %d must be positive", clusters)
	}
	if width%clusters != 0 {
		return nil, fmt.Errorf("machine: width %d not divisible by %d clusters", width, clusters)
	}
	if regsPerBank <= 0 {
		return nil, fmt.Errorf("machine: %d registers per bank must be positive", regsPerBank)
	}
	c := &Config{
		Name:        name,
		Width:       width,
		Clusters:    clusters,
		RegsPerBank: regsPerBank,
		Model:       model,
		Lat:         lat,
	}
	if model == CopyUnit && clusters > 1 {
		c.CopyPortsPerCluster = ceilLog2(clusters)
		c.Busses = clusters
	}
	return c, nil
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// FUsPerCluster returns Width/Clusters.
func (c *Config) FUsPerCluster() int { return c.Width / c.Clusters }

// Monolithic reports whether the machine has a single register bank (the
// paper's "ideal" model).
func (c *Config) Monolithic() bool { return c.Clusters == 1 }

// CopyLatency returns the inter-cluster copy latency for class cl.
func (c *Config) CopyLatency(cl ir.Class) int {
	if cl == ir.Float {
		return c.Lat.CopyFloat
	}
	return c.Lat.CopyInt
}

// Latency returns op's latency under the machine's table.
func (c *Config) Latency(op *ir.Op) int { return c.Lat.Of(op) }

// String returns the machine's name.
func (c *Config) String() string { return c.Name }

// Ideal16 returns the paper's ideal model: a 16-wide machine with one
// monolithic multi-ported register bank.
func Ideal16() *Config {
	c, err := New("16-wide ideal (1 bank)", 16, 1, 16*32, Embedded, PaperLatencies())
	if err != nil {
		panic(err)
	}
	return c
}

// Clustered16 returns one of the paper's six evaluated machines: 16 wide,
// n clusters (n in {2,4,8}), with the given copy model. Each bank holds 32
// registers.
func Clustered16(n int, model CopyModel) (*Config, error) {
	name := fmt.Sprintf("16-wide, %d clusters of %d (%s)", n, 16/n, model)
	return New(name, 16, n, 32, model, PaperLatencies())
}

// MustClustered16 is Clustered16 for the known-good cluster counts; it
// panics on error and exists for table-driven tests and examples.
func MustClustered16(n int, model CopyModel) *Config {
	c, err := Clustered16(n, model)
	if err != nil {
		panic(err)
	}
	return c
}

// PaperConfigs returns the six clustered machines of Tables 1-2 in the
// paper's column order: 2, 4, 8 clusters, each embedded then copy-unit.
func PaperConfigs() []*Config {
	var out []*Config
	for _, n := range []int{2, 4, 8} {
		for _, m := range []CopyModel{Embedded, CopyUnit} {
			out = append(out, MustClustered16(n, m))
		}
	}
	return out
}

// Example2x1 returns the Section 4.2 worked-example machine: two functional
// units, each with its own register bank, unit latencies, embedded copies.
func Example2x1() *Config {
	c, err := New("2-wide example, 2 banks", 2, 2, 16, Embedded, UnitLatencies())
	if err != nil {
		panic(err)
	}
	return c
}
