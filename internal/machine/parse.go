package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// This file gives machines a textual description format, the practical
// face of the paper's retargetability claim: "the major advantage of the
// register component graph is that it abstracts away machine-dependent
// details ... extremely important in the context of a retargetable
// compiler". A new target is a text file, not code:
//
//	name = my DSP
//	width = 16
//	clusters = 4
//	regs-per-bank = 32
//	model = copyunit            # or embedded
//	units = alu alu mul mem     # optional: typed units per cluster
//	copy-ports = 2              # optional CopyUnit overrides
//	busses = 4
//	lat.load = 2                # optional latency overrides
//	lat.store = 4
//	lat.int-mul = 5
//	lat.int-div = 12
//	lat.int-other = 1
//	lat.float-mul = 2
//	lat.float-div = 2
//	lat.float-other = 2
//	lat.copy-int = 2
//	lat.copy-float = 3
//
// Unset latencies default to the paper's table; '#' starts a comment.

// Parse reads a machine description.
func Parse(src string) (*Config, error) {
	name := "parsed machine"
	width, clusters, regs := 0, 0, 32
	model := Embedded
	lat := PaperLatencies()
	var units []FUKind
	copyPorts, busses := -1, -1

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("machine: line %d: want key = value, got %q", ln+1, raw)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		intVal := func() (int, error) {
			v, err := strconv.Atoi(val)
			if err != nil {
				return 0, fmt.Errorf("machine: line %d: %q is not a number", ln+1, val)
			}
			return v, nil
		}
		var err error
		switch key {
		case "name":
			name = val
		case "width":
			width, err = intVal()
		case "clusters":
			clusters, err = intVal()
		case "regs-per-bank":
			regs, err = intVal()
		case "model":
			switch strings.ToLower(val) {
			case "embedded":
				model = Embedded
			case "copyunit", "copy-unit":
				model = CopyUnit
			default:
				return nil, fmt.Errorf("machine: line %d: unknown model %q", ln+1, val)
			}
		case "units":
			units = units[:0]
			for _, u := range strings.Fields(val) {
				switch strings.ToLower(u) {
				case "any":
					units = append(units, AnyKind)
				case "alu":
					units = append(units, ALUKind)
				case "mul":
					units = append(units, MultiplyKind)
				case "mem":
					units = append(units, MemoryKind)
				default:
					return nil, fmt.Errorf("machine: line %d: unknown unit kind %q", ln+1, u)
				}
			}
		case "copy-ports":
			copyPorts, err = intVal()
		case "busses":
			busses, err = intVal()
		default:
			if lname, ok := strings.CutPrefix(key, "lat."); ok {
				var v int
				if v, err = intVal(); err == nil {
					err = setLatency(&lat, lname, v)
				}
			} else {
				return nil, fmt.Errorf("machine: line %d: unknown key %q", ln+1, key)
			}
		}
		if err != nil {
			return nil, err
		}
	}

	cfg, err := New(name, width, clusters, regs, model, lat)
	if err != nil {
		return nil, err
	}
	if len(units) > 0 {
		if len(units) != cfg.FUsPerCluster() {
			return nil, fmt.Errorf("machine: %d typed units for %d functional units per cluster",
				len(units), cfg.FUsPerCluster())
		}
		cfg.Units = units
	}
	if copyPorts >= 0 {
		cfg.CopyPortsPerCluster = copyPorts
	}
	if busses >= 0 {
		cfg.Busses = busses
	}
	return cfg, nil
}

func setLatency(lat *Latencies, name string, v int) error {
	if v < 1 {
		return fmt.Errorf("machine: latency %q must be at least 1", name)
	}
	switch name {
	case "load":
		lat.Load = v
	case "store":
		lat.Store = v
	case "int-mul":
		lat.IntMul = v
	case "int-div":
		lat.IntDiv = v
	case "int-other":
		lat.IntOther = v
	case "float-mul":
		lat.FloatMul = v
	case "float-div":
		lat.FloatDiv = v
	case "float-other":
		lat.FloatOther = v
	case "copy-int":
		lat.CopyInt = v
	case "copy-float":
		lat.CopyFloat = v
	default:
		return fmt.Errorf("machine: unknown latency %q", name)
	}
	return nil
}

// Describe renders cfg in the Parse format, round-trippably.
func Describe(c *Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name = %s\n", c.Name)
	fmt.Fprintf(&sb, "width = %d\n", c.Width)
	fmt.Fprintf(&sb, "clusters = %d\n", c.Clusters)
	fmt.Fprintf(&sb, "regs-per-bank = %d\n", c.RegsPerBank)
	model := "embedded"
	if c.Model == CopyUnit {
		model = "copyunit"
	}
	fmt.Fprintf(&sb, "model = %s\n", model)
	if c.Heterogeneous() {
		names := make([]string, len(c.Units))
		for i, u := range c.Units {
			names[i] = u.String()
		}
		fmt.Fprintf(&sb, "units = %s\n", strings.Join(names, " "))
	}
	if c.Model == CopyUnit {
		fmt.Fprintf(&sb, "copy-ports = %d\n", c.CopyPortsPerCluster)
		fmt.Fprintf(&sb, "busses = %d\n", c.Busses)
	}
	l := c.Lat
	fmt.Fprintf(&sb, "lat.load = %d\nlat.store = %d\n", l.Load, l.Store)
	fmt.Fprintf(&sb, "lat.int-mul = %d\nlat.int-div = %d\nlat.int-other = %d\n", l.IntMul, l.IntDiv, l.IntOther)
	fmt.Fprintf(&sb, "lat.float-mul = %d\nlat.float-div = %d\nlat.float-other = %d\n", l.FloatMul, l.FloatDiv, l.FloatOther)
	fmt.Fprintf(&sb, "lat.copy-int = %d\nlat.copy-float = %d\n", l.CopyInt, l.CopyFloat)
	return sb.String()
}
