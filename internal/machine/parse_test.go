package machine

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	cfg, err := Parse(`
		# a 4-cluster copy-unit machine
		name = test box
		width = 16
		clusters = 4
		regs-per-bank = 48
		model = copyunit
		lat.copy-int = 1
		lat.copy-float = 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "test box" || cfg.Width != 16 || cfg.Clusters != 4 || cfg.RegsPerBank != 48 {
		t.Errorf("parsed %+v", cfg)
	}
	if cfg.Model != CopyUnit || cfg.CopyPortsPerCluster != 2 || cfg.Busses != 4 {
		t.Errorf("copy-unit defaults wrong: %+v", cfg)
	}
	if cfg.Lat.CopyInt != 1 || cfg.Lat.CopyFloat != 1 {
		t.Error("latency overrides ignored")
	}
	if cfg.Lat.Load != 2 {
		t.Error("unset latencies must default to the paper's")
	}
}

func TestParseTypedUnits(t *testing.T) {
	cfg, err := Parse("width = 8\nclusters = 2\nunits = alu alu mul mem\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Heterogeneous() {
		t.Fatal("typed units lost")
	}
	counts := cfg.UnitCounts()
	if counts[ALUKind] != 2 || counts[MultiplyKind] != 1 || counts[MemoryKind] != 1 {
		t.Errorf("unit counts %v", counts)
	}
}

func TestParseOverrides(t *testing.T) {
	cfg, err := Parse("width = 16\nclusters = 4\nmodel = copyunit\ncopy-ports = 5\nbusses = 9\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CopyPortsPerCluster != 5 || cfg.Busses != 9 {
		t.Errorf("overrides ignored: %+v", cfg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"width 16",                             // no '='
		"width = sixteen",                      // not a number
		"model = quantum",                      // unknown model
		"frobnicate = 3",                       // unknown key
		"width = 16\nclusters = 3",             // indivisible
		"width = 8\nclusters = 2\nunits = alu", // wrong unit count
		"width = 8\nclusters = 2\nunits = alu alu alu teleport", // unknown kind
		"width = 16\nclusters = 4\nlat.load = 0",                // latency < 1
		"width = 16\nclusters = 4\nlat.warp = 3",                // unknown latency
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestDescribeRoundTrip(t *testing.T) {
	for _, cfg := range []*Config{
		Ideal16(),
		MustClustered16(4, CopyUnit),
		MustClustered16(8, Embedded),
		C6xLike(Embedded),
	} {
		text := Describe(cfg)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", cfg.Name, err, text)
		}
		if Describe(back) != text {
			t.Errorf("%s: round trip drifted:\n%s\nvs\n%s", cfg.Name, text, Describe(back))
		}
		if back.Width != cfg.Width || back.Clusters != cfg.Clusters || back.Model != cfg.Model ||
			back.CopyPortsPerCluster != cfg.CopyPortsPerCluster || back.Busses != cfg.Busses ||
			back.Lat != cfg.Lat || len(back.Units) != len(cfg.Units) {
			t.Errorf("%s: fields drifted", cfg.Name)
		}
	}
}

func TestParsedMachineSchedules(t *testing.T) {
	// A parsed exotic machine must drive the validators, not just load.
	cfg, err := Parse(strings.ReplaceAll(`
		name = exotic
		width = 12; clusters = 3; regs-per-bank = 24
		model = copyunit
		units = alu mul mem any
		lat.load = 3
	`, ";", "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FUsPerCluster() != 4 || cfg.Lat.Load != 3 {
		t.Errorf("exotic machine misparsed: %+v", cfg)
	}
}
