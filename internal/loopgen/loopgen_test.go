package loopgen

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestSuiteSizeAndNames(t *testing.T) {
	loops := Suite()
	if len(loops) != 211 {
		t.Fatalf("suite has %d loops, the paper pipelines 211", len(loops))
	}
	seen := map[string]bool{}
	for _, l := range loops {
		if seen[l.Name] {
			t.Errorf("duplicate loop name %q", l.Name)
		}
		seen[l.Name] = true
	}
}

func TestSuiteWellFormed(t *testing.T) {
	for _, l := range Suite() {
		if err := ir.VerifyLoop(l); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if len(l.Body.Ops) < 3 {
			t.Errorf("%s: only %d ops", l.Name, len(l.Body.Ops))
		}
		if l.Body.Depth != 1 {
			t.Errorf("%s: depth %d, want innermost loop depth 1", l.Name, l.Body.Depth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{N: 50, Seed: 12345}
	a := Generate(p)
	b := Generate(p)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("loop %d differs between runs with the same seed", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(Params{N: 20, Seed: 1})
	b := Generate(Params{N: 20, Seed: 2})
	same := 0
	for i := range a {
		if a[i].String() == b[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical suite")
	}
}

func TestArchetypeCoverage(t *testing.T) {
	counts := map[string]int{}
	for _, l := range Suite() {
		parts := strings.Split(l.Name, ".")
		counts[parts[len(parts)-1]]++
	}
	for _, a := range archetypes() {
		if counts[a.name] == 0 {
			t.Errorf("archetype %q never generated in the 211-loop suite", a.name)
		}
	}
}

func TestArchetypeWeightsSum(t *testing.T) {
	total := 0
	for _, a := range archetypes() {
		if a.weight <= 0 {
			t.Errorf("archetype %q has non-positive weight", a.name)
		}
		total += a.weight
	}
	if total != 100 {
		t.Errorf("archetype weights sum to %d, want 100 (they read as percentages)", total)
	}
}

func TestLoopsHaveMemoryTraffic(t *testing.T) {
	for _, l := range Suite() {
		hasMem := false
		for _, op := range l.Body.Ops {
			if op.Mem != nil {
				hasMem = true
				break
			}
		}
		if !hasMem {
			t.Errorf("%s touches no memory; SPEC loops always do", l.Name)
		}
	}
}

func TestSuiteParsesRoundTrip(t *testing.T) {
	// Every generated loop must survive print -> parse -> print exactly:
	// the suite is the interchange format's primary corpus.
	for _, l := range Generate(Params{N: 40, Seed: 123}) {
		text := l.Body.String()
		parsed, err := ir.ParseBlock(text)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got := parsed.String(); got != text {
			t.Fatalf("%s: round trip drifted:\n%s\nvs\n%s", l.Name, text, got)
		}
	}
}

func TestLiveInsExist(t *testing.T) {
	// Every archetype parameterizes via live-in invariants or carried
	// accumulators; a loop with no upward-exposed uses would be dead code.
	withLiveIns := 0
	loops := Suite()
	for _, l := range loops {
		if len(l.Body.LiveIns()) > 0 {
			withLiveIns++
		}
	}
	if withLiveIns < len(loops)/2 {
		t.Errorf("only %d of %d loops have live-ins", withLiveIns, len(loops))
	}
}
