package loopgen

import (
	"repro/internal/ir"
)

// Livermore returns hand-written adaptations of twelve classic Livermore
// loops — the canonical vectorization/pipelining kernels of the paper's
// era — expressed in the reproduction's IR. They complement the random
// suite with real, recognizable dataflow shapes: the ILP-rich equation of
// state, the hopelessly serial tri-diagonal elimination, prefix sums,
// inner products, and the rest. Kernels with inherently two-dimensional
// or indirect indexing are adapted to the affine single-induction form
// the dependence analyzer understands (fixed band offsets replace indexed
// rows), preserving each kernel's dependence structure.
func Livermore() []*ir.Loop {
	return []*ir.Loop{
		k1HydroFragment(),
		k2ICCGFragment(),
		k3InnerProduct(),
		k4BandedLinear(),
		k5TriDiagonal(),
		k6LinearRecurrence(),
		k7EquationOfState(),
		k8ADIFragment(),
		k9Integration(),
		k10Differentiation(),
		k11FirstSum(),
		k12FirstDifference(),
	}
}

// k1HydroFragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func k1HydroFragment() *ir.Loop {
	l := ir.NewLoop("livermore.k01.hydro")
	b := ir.NewLoopBuilder(l)
	q, r, t := l.NewReg(ir.Float), l.NewReg(ir.Float), l.NewReg(ir.Float)
	z10 := b.Load(ir.Float, ir.MemRef{Base: "z", Coeff: 1, Offset: 10})
	z11 := b.Load(ir.Float, ir.MemRef{Base: "z", Coeff: 1, Offset: 11})
	y := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1})
	inner := b.Add(b.Mul(r, z10), b.Mul(t, z11))
	b.Store(b.Add(q, b.Mul(y, inner)), ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k2ICCGFragment (incomplete Cholesky conjugate gradient, band form):
// x[i] = x[i+5] - v[i]*x[i+6]; reads run ahead of the write index, so the
// loop streams (anti-distance only).
func k2ICCGFragment() *ir.Loop {
	l := ir.NewLoop("livermore.k02.iccg")
	b := ir.NewLoopBuilder(l)
	xa := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: 5})
	xb := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: 6})
	v := b.Load(ir.Float, ir.MemRef{Base: "v", Coeff: 1})
	b.Store(b.Sub(xa, b.Mul(v, xb)), ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k3InnerProduct: q += z[k]*x[k].
func k3InnerProduct() *ir.Loop {
	l := ir.NewLoop("livermore.k03.inner")
	b := ir.NewLoopBuilder(l)
	q := l.NewReg(ir.Float)
	z := b.Load(ir.Float, ir.MemRef{Base: "z", Coeff: 1})
	x := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1})
	b.AddInto(q, q, b.Mul(z, x))
	return l
}

// k4BandedLinear (banded linear equations, band fragment):
// x[k] = x[k] - g[k]*x[k-4] - h[k]*x[k-5]: a distance-4/5 memory
// recurrence whose slack lets pipelining overlap four iterations.
func k4BandedLinear() *ir.Loop {
	l := ir.NewLoop("livermore.k04.banded")
	b := ir.NewLoopBuilder(l)
	x0 := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1})
	x4 := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: -4})
	x5 := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: -5})
	g := b.Load(ir.Float, ir.MemRef{Base: "g", Coeff: 1})
	h := b.Load(ir.Float, ir.MemRef{Base: "h", Coeff: 1})
	t1 := b.Sub(x0, b.Mul(g, x4))
	b.Store(b.Sub(t1, b.Mul(h, x5)), ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k5TriDiagonal: x[i] = z[i]*(y[i] - x[i-1]) — the classic serial
// elimination; the distance-1 memory recurrence caps the II near the sum
// of the load, subtract, multiply and store latencies.
func k5TriDiagonal() *ir.Loop {
	l := ir.NewLoop("livermore.k05.tridiag")
	b := ir.NewLoopBuilder(l)
	prev := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: -1})
	y := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1})
	z := b.Load(ir.Float, ir.MemRef{Base: "z", Coeff: 1})
	b.Store(b.Mul(z, b.Sub(y, prev)), ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k6LinearRecurrence (general linear recurrence, band-5 adaptation):
// w += b5[k]*w5 + b4[k]*w4 with the partial sums carried in registers.
func k6LinearRecurrence() *ir.Loop {
	l := ir.NewLoop("livermore.k06.linrec")
	b := ir.NewLoopBuilder(l)
	w := l.NewReg(ir.Float)
	b5 := b.Load(ir.Float, ir.MemRef{Base: "b5", Coeff: 1})
	b4 := b.Load(ir.Float, ir.MemRef{Base: "b4", Coeff: 1})
	w5 := b.Load(ir.Float, ir.MemRef{Base: "w", Coeff: 1, Offset: -5})
	w4 := b.Load(ir.Float, ir.MemRef{Base: "w", Coeff: 1, Offset: -4})
	t := b.Add(b.Mul(b5, w5), b.Mul(b4, w4))
	b.AddInto(w, w, t)
	b.Store(w, ir.MemRef{Base: "w", Coeff: 1})
	return l
}

// k7EquationOfState: the ILP showcase —
// x[k] = u[k] + r*(z[k] + r*y[k]) +
//
//	t*(u[k+3] + r*(u[k+2] + r*u[k+1]) +
//	   t*(u[k+6] + q*(u[k+5] + q*u[k+4]))).
func k7EquationOfState() *ir.Loop {
	l := ir.NewLoop("livermore.k07.eos")
	b := ir.NewLoopBuilder(l)
	q, r, t := l.NewReg(ir.Float), l.NewReg(ir.Float), l.NewReg(ir.Float)
	u := func(off int) ir.Reg { return b.Load(ir.Float, ir.MemRef{Base: "u", Coeff: 1, Offset: off}) }
	z := b.Load(ir.Float, ir.MemRef{Base: "z", Coeff: 1})
	y := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1})
	term1 := b.Add(u(0), b.Mul(r, b.Add(z, b.Mul(r, y))))
	term2 := b.Add(u(3), b.Mul(r, b.Add(u(2), b.Mul(r, u(1)))))
	term3 := b.Add(u(6), b.Mul(q, b.Add(u(5), b.Mul(q, u(4)))))
	b.Store(b.Add(term1, b.Mul(t, b.Add(term2, b.Mul(t, term3)))), ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k8ADIFragment (alternating direction implicit, two coupled updates):
// du1 = u1[k+1]-u1[k]; du2 = u2[k+1]-u2[k];
// u1o[k] = u1[k]+a11*du1+a12*du2; u2o[k] = u2[k]+a21*du1+a22*du2.
func k8ADIFragment() *ir.Loop {
	l := ir.NewLoop("livermore.k08.adi")
	b := ir.NewLoopBuilder(l)
	a11, a12 := l.NewReg(ir.Float), l.NewReg(ir.Float)
	a21, a22 := l.NewReg(ir.Float), l.NewReg(ir.Float)
	u1 := b.Load(ir.Float, ir.MemRef{Base: "u1", Coeff: 1})
	u1n := b.Load(ir.Float, ir.MemRef{Base: "u1", Coeff: 1, Offset: 1})
	u2 := b.Load(ir.Float, ir.MemRef{Base: "u2", Coeff: 1})
	u2n := b.Load(ir.Float, ir.MemRef{Base: "u2", Coeff: 1, Offset: 1})
	du1 := b.Sub(u1n, u1)
	du2 := b.Sub(u2n, u2)
	o1 := b.Add(u1, b.Add(b.Mul(a11, du1), b.Mul(a12, du2)))
	o2 := b.Add(u2, b.Add(b.Mul(a21, du1), b.Mul(a22, du2)))
	b.Store(o1, ir.MemRef{Base: "u1o", Coeff: 1})
	b.Store(o2, ir.MemRef{Base: "u2o", Coeff: 1})
	return l
}

// k9Integration (numerical integration, predictor form):
// px[i] = dm*px9[i] + c0*(px4[i] + px5[i]) + px2[i].
func k9Integration() *ir.Loop {
	l := ir.NewLoop("livermore.k09.integrate")
	b := ir.NewLoopBuilder(l)
	dm, c0 := l.NewReg(ir.Float), l.NewReg(ir.Float)
	p9 := b.Load(ir.Float, ir.MemRef{Base: "px9", Coeff: 1})
	p4 := b.Load(ir.Float, ir.MemRef{Base: "px4", Coeff: 1})
	p5 := b.Load(ir.Float, ir.MemRef{Base: "px5", Coeff: 1})
	p2 := b.Load(ir.Float, ir.MemRef{Base: "px2", Coeff: 1})
	v := b.Add(b.Mul(dm, p9), b.Add(b.Mul(c0, b.Add(p4, p5)), p2))
	b.Store(v, ir.MemRef{Base: "px", Coeff: 1})
	return l
}

// k10Differentiation (difference predictors, truncated table):
// successive differences ar-br0, br0-br1, br1-br2 stored to three tables.
func k10Differentiation() *ir.Loop {
	l := ir.NewLoop("livermore.k10.diffpred")
	b := ir.NewLoopBuilder(l)
	ar := b.Load(ir.Float, ir.MemRef{Base: "cx", Coeff: 1})
	br0 := b.Load(ir.Float, ir.MemRef{Base: "px0", Coeff: 1})
	br1 := b.Load(ir.Float, ir.MemRef{Base: "px1", Coeff: 1})
	br2 := b.Load(ir.Float, ir.MemRef{Base: "px2", Coeff: 1})
	d0 := b.Sub(ar, br0)
	d1 := b.Sub(d0, br1)
	d2 := b.Sub(d1, br2)
	b.Store(d0, ir.MemRef{Base: "py0", Coeff: 1})
	b.Store(d1, ir.MemRef{Base: "py1", Coeff: 1})
	b.Store(d2, ir.MemRef{Base: "py2", Coeff: 1})
	return l
}

// k11FirstSum: x[k] = x[k-1] + y[k] — a prefix sum carried through
// registers (the previous partial sum never round-trips memory).
func k11FirstSum() *ir.Loop {
	l := ir.NewLoop("livermore.k11.firstsum")
	b := ir.NewLoopBuilder(l)
	sum := l.NewReg(ir.Float)
	y := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1})
	b.AddInto(sum, sum, y)
	b.Store(sum, ir.MemRef{Base: "x", Coeff: 1})
	return l
}

// k12FirstDifference: x[k] = y[k+1] - y[k] — pure streaming.
func k12FirstDifference() *ir.Loop {
	l := ir.NewLoop("livermore.k12.firstdiff")
	b := ir.NewLoopBuilder(l)
	y1 := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1, Offset: 1})
	y0 := b.Load(ir.Float, ir.MemRef{Base: "y", Coeff: 1})
	b.Store(b.Sub(y1, y0), ir.MemRef{Base: "x", Coeff: 1})
	return l
}
