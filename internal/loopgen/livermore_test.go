package loopgen

import (
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
)

func TestLivermoreWellFormed(t *testing.T) {
	kernels := Livermore()
	if len(kernels) != 12 {
		t.Fatalf("%d kernels, want 12", len(kernels))
	}
	seen := map[string]bool{}
	for _, l := range kernels {
		if err := ir.VerifyLoop(l); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if !strings.HasPrefix(l.Name, "livermore.") {
			t.Errorf("kernel name %q", l.Name)
		}
		if seen[l.Name] {
			t.Errorf("duplicate kernel %q", l.Name)
		}
		seen[l.Name] = true
	}
}

func TestLivermoreDependenceShapes(t *testing.T) {
	cfg := machine.Ideal16()
	recMII := func(name string) int {
		for _, l := range Livermore() {
			if strings.Contains(l.Name, name) {
				g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
				return g.RecMII()
			}
		}
		t.Fatalf("kernel %q not found", name)
		return 0
	}
	// The ILP showcase and the pure streaming kernels have no recurrence.
	for _, streaming := range []string{"k01", "k07", "k08", "k09", "k10", "k12", "k02"} {
		if got := recMII(streaming); got != 1 {
			t.Errorf("%s: RecMII = %d, want 1 (streaming)", streaming, got)
		}
	}
	// The inner product and the prefix sum are bound by the float add.
	for _, acc := range []string{"k03", "k11"} {
		if got := recMII(acc); got != 2 {
			t.Errorf("%s: RecMII = %d, want 2 (float-add recurrence)", acc, got)
		}
	}
	// Tri-diagonal elimination is the serial one: load + sub + mul + store
	// flow latency around a distance-1 memory cycle.
	if got := recMII("k05"); got < 8 {
		t.Errorf("k05: RecMII = %d, want the serial memory recurrence (>= 8)", got)
	}
	// The banded kernel's distance-4 recurrence divides its cycle latency.
	k4, k5 := recMII("k04"), recMII("k05")
	if k4 >= k5 {
		t.Errorf("banded (distance-4) RecMII %d should undercut tri-diagonal %d", k4, k5)
	}
}
