// Package loopgen generates the reproduction's stand-in for the paper's
// workload: "211 loops extracted from Spec 95 ... all single-block
// innermost loops" from FORTRAN 77 code (Section 6). The original loop
// bodies are not distributable, so this package synthesizes a deterministic
// suite of 211 single-basic-block innermost loops whose characteristics
// match what the paper reports about its suite:
//
//   - array references with affine subscripts (unit and unrolled strides),
//   - floating-point multiply/add chains and integer address arithmetic,
//   - reductions and loop-carried recurrences of short distance,
//   - enough independent parallelism that the ideal 16-wide modulo
//     schedules average about 8.6 operations per cycle (Table 1's "Ideal"
//     row), with individual loops ranging from serial (recurrence-bound)
//     to nearly issue-bound.
//
// Generation is fully deterministic: the same Params produce the same
// loops on every run, so experiment output is reproducible bit for bit.
package loopgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Params selects the suite.
type Params struct {
	// N is the number of loops (the paper pipelines 211).
	N int
	// Seed fixes the random stream.
	Seed int64
}

// DefaultParams returns the paper-scale suite parameters.
func DefaultParams() Params { return Params{N: 211, Seed: 0x5EC95} }

// Suite generates the default 211-loop suite.
func Suite() []*ir.Loop { return Generate(DefaultParams()) }

// Generate produces p.N loops deterministically from p.Seed.
func Generate(p Params) []*ir.Loop {
	rng := rand.New(rand.NewSource(p.Seed))
	loops := make([]*ir.Loop, 0, p.N)
	for i := 0; i < p.N; i++ {
		loops = append(loops, generateOne(rng, i))
	}
	return loops
}

// archetype weights: the mix is the tuning knob that calibrates the
// suite's aggregate ideal IPC against Table 1 (see EXPERIMENTS.md).
type archetype struct {
	name   string
	weight int
	gen    func(rng *rand.Rand, l *ir.Loop)
}

func archetypes() []archetype {
	return []archetype{
		{"triad", 11, genTriad},
		{"dot", 8, genDot},
		{"stencil", 10, genStencil},
		{"shared", 11, genShared},
		{"butterfly", 10, genButterfly},
		{"intkernel", 10, genIntKernel},
		{"mixed", 8, genMixed},
		{"ifconv", 5, genIfConverted},
		{"firstorder", 10, genFirstOrder},
		{"memrec", 7, genMemRec},
		{"serial", 10, genSerial},
	}
}

func generateOne(rng *rand.Rand, idx int) *ir.Loop {
	kinds := archetypes()
	total := 0
	for _, a := range kinds {
		total += a.weight
	}
	pick := rng.Intn(total)
	var chosen archetype
	for _, a := range kinds {
		if pick < a.weight {
			chosen = a
			break
		}
		pick -= a.weight
	}
	l := ir.NewLoop(fmt.Sprintf("suite.%03d.%s", idx, chosen.name))
	l.TripCount = 50 + rng.Intn(950)
	chosen.gen(rng, l)
	l.Body.Renumber()
	return l
}

// liveIn allocates a register that is never defined in the body: a loop
// invariant (scalar coefficient, base value) defined in the preheader.
func liveIn(l *ir.Loop, c ir.Class) ir.Reg { return l.NewReg(c) }

// genTriad emits an unrolled STREAM-triad-like body:
//
//	c[u*i+k] = a[u*i+k]*s + b[u*i+k]   for k in 0..u-1
//
// Pure streaming floating-point work: no recurrence, so the ideal II is
// resource-bound and the IPC is high.
func genTriad(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	u := 2 + rng.Intn(6) // unroll 2..7
	s := liveIn(l, ir.Float)
	arrs := rng.Intn(2) + 1 // 1 or 2 independent triads
	// Half the triads also track an error/norm reduction over the lane
	// results (as SPEC95 kernels like tomcatv do), which couples the lanes
	// into one dataflow component: partitioning such a loop must cut
	// computed-value edges, it cannot just deal whole lanes to banks.
	reduce := rng.Intn(2) == 0
	for a := 0; a < arrs; a++ {
		an, bn, cn := arr(rng, "ta", a), arr(rng, "tb", a), arr(rng, "tc", a)
		var laneSums []ir.Reg
		for k := 0; k < u; k++ {
			la := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: u, Offset: k})
			lb := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: k})
			m := b.Mul(la, s)
			sum := b.Add(m, lb)
			b.Store(sum, ir.MemRef{Base: cn, Coeff: u, Offset: k})
			laneSums = append(laneSums, sum)
		}
		if reduce {
			acc := liveIn(l, ir.Float)
			t := laneSums[0]
			for _, x := range laneSums[1:] {
				t = b.Add(t, x)
			}
			b.AddInto(acc, acc, t)
		}
	}
}

// genDot emits an unrolled dot product with one partial-sum accumulator
// per unrolled lane (the standard way compilers break the reduction
// recurrence): the carried add bounds RecMII at the add latency.
func genDot(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	u := 2 + rng.Intn(7) // 2..8 lanes
	an, bn := arr(rng, "da", 0), arr(rng, "db", 0)
	for k := 0; k < u; k++ {
		acc := liveIn(l, ir.Float) // initialized to 0 in the preheader
		la := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: u, Offset: k})
		lb := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: k})
		m := b.Mul(la, lb)
		b.AddInto(acc, acc, m)
	}
}

// genStencil emits a 3-point (or 5-point) stencil into a distinct array:
// streaming loads at neighboring offsets, a weighted-sum tree, no carried
// dependence. Unrolled lanes reference overlapping neighborhoods, and
// like any optimizing compiler the generator common-subexpression-
// eliminates the duplicate loads — which couples adjacent lanes through
// shared values and makes the partition genuinely contended (a shared
// load feeds consumers in several lanes, so separating the lanes costs
// inter-cluster copies).
func genStencil(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	points := 3 + 2*rng.Intn(2) // 3 or 5
	u := 1 + rng.Intn(4)        // unroll 1..4
	an, bn := arr(rng, "sa", 0), arr(rng, "sb", 0)
	w := make([]ir.Reg, points)
	for p := range w {
		w[p] = liveIn(l, ir.Float)
	}
	loads := make(map[int]ir.Reg) // CSE: one load per distinct offset
	loadAt := func(off int) ir.Reg {
		if r, ok := loads[off]; ok {
			return r
		}
		r := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: u, Offset: off})
		loads[off] = r
		return r
	}
	for k := 0; k < u; k++ {
		var sum ir.Reg
		for p := 0; p < points; p++ {
			ld := loadAt(k + p - points/2)
			t := b.Mul(ld, w[p])
			if p == 0 {
				sum = t
			} else {
				sum = b.Add(sum, t)
			}
		}
		b.Store(sum, ir.MemRef{Base: bn, Coeff: u, Offset: k})
	}
}

// genShared emits a kernel around a shared subexpression: one computed
// value per iteration feeds several otherwise independent consumer chains
// that write distinct arrays. Splitting the consumers across clusters (to
// win issue bandwidth) forces the shared value through inter-cluster
// copies every iteration — the workload pattern that saturates the
// copy-unit model's single port per cluster on the 2-cluster machine.
func genShared(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	an, bn := arr(rng, "ha", 0), arr(rng, "hb", 0)
	s := liveIn(l, ir.Float)
	consumers := 3 + rng.Intn(4) // 3..6 consumer chains
	u := 1 + rng.Intn(2)         // unroll 1..2
	for k := 0; k < u; k++ {
		la := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: u, Offset: k})
		lb := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: k})
		t := b.Mul(la, lb) // the shared value
		for c := 0; c < consumers; c++ {
			cn := arr(rng, "hc", c)
			lc := b.Load(ir.Float, ir.MemRef{Base: cn, Coeff: u, Offset: k})
			v := b.Add(t, lc)
			if rng.Intn(2) == 0 {
				v = b.Mul(v, s)
			}
			b.Store(v, ir.MemRef{Base: cn + "o", Coeff: u, Offset: k})
		}
	}
}

// genButterfly emits an FFT-butterfly-like exchange network: L parallel
// lanes load values, then in each round every lane combines its value with
// a partner lane's (partner = lane XOR 2^round), and finally every lane
// stores. Any partition of the lanes into clusters cuts about L/2 value
// edges per round, so many distinct values cross the cluster boundary
// every iteration — the pattern that separates the embedded copy model
// (wide clusters absorb the copies) from the copy-unit model (a single
// copy port per cluster serializes them).
func genButterfly(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	lanes := 4 << rng.Intn(2) // 4 or 8 lanes
	rounds := 1 + rng.Intn(2) // 1 or 2 exchange rounds
	an, bn := arr(rng, "wa", 0), arr(rng, "wb", 0)
	tw := liveIn(l, ir.Float) // twiddle-like invariant
	cur := make([]ir.Reg, lanes)
	for k := 0; k < lanes; k++ {
		cur[k] = b.Load(ir.Float, ir.MemRef{Base: an, Coeff: lanes, Offset: k})
	}
	for r := 0; r < rounds; r++ {
		next := make([]ir.Reg, lanes)
		stride := 1 << r
		for k := 0; k < lanes; k++ {
			partner := k ^ stride
			if k < partner {
				next[k] = b.Add(cur[k], cur[partner])
				d := b.Sub(cur[k], cur[partner])
				next[partner] = b.Mul(d, tw)
			}
		}
		cur = next
	}
	for k := 0; k < lanes; k++ {
		b.Store(cur[k], ir.MemRef{Base: bn, Coeff: lanes, Offset: k})
	}
}

// genIntKernel emits an unrolled integer kernel: loads, shifts, masks,
// xors and a per-lane checksum accumulator — latency-1 operations with an
// occasional 5-cycle multiply, modeling address-heavy SPECint-style code.
func genIntKernel(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	u := 2 + rng.Intn(6)
	an := arr(rng, "ia", 0)
	mask := liveIn(l, ir.Int)
	sh := liveIn(l, ir.Int)
	// A single checksum accumulator fed by a reduction tree over the lane
	// values: the tree couples the lanes, and the carried add (1 cycle)
	// barely constrains the II.
	acc := liveIn(l, ir.Int)
	var lane []ir.Reg
	for k := 0; k < u; k++ {
		ld := b.Load(ir.Int, ir.MemRef{Base: an, Coeff: u, Offset: k})
		t1 := b.Shr(ld, sh)
		t2 := b.And(t1, mask)
		t3 := b.Xor(t2, ld)
		if rng.Intn(3) == 0 {
			t3 = b.Mul(t3, mask) // the occasional expensive multiply
		}
		lane = append(lane, t3)
	}
	t := lane[0]
	for _, x := range lane[1:] {
		t = b.Add(t, x)
	}
	b.AddInto(acc, acc, t)
}

// genMixed emits a larger body combining a floating triad, an integer
// checksum and a store-back with conversion — the "general functional
// unit" stress case where both classes compete for the same issue slots.
func genMixed(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	u := 2 + rng.Intn(4)
	an, bn, cn, dn := arr(rng, "ma", 0), arr(rng, "mb", 0), arr(rng, "mc", 0), arr(rng, "md", 0)
	s := liveIn(l, ir.Float)
	mask := liveIn(l, ir.Int)
	for k := 0; k < u; k++ {
		la := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: u, Offset: k})
		lb := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: k})
		f := b.Add(b.Mul(la, s), lb)
		b.Store(f, ir.MemRef{Base: cn, Coeff: u, Offset: k})

		li := b.Load(ir.Int, ir.MemRef{Base: dn, Coeff: u, Offset: k})
		ti := b.And(li, mask)
		acc := liveIn(l, ir.Int)
		b.AddInto(acc, acc, b.Xor(ti, li))
		if rng.Intn(2) == 0 {
			cv := b.Cvt(ir.Float, ti)
			g := b.Mul(cv, s)
			b.Store(g, ir.MemRef{Base: cn + "x", Coeff: u, Offset: k})
		}
	}
}

// genIfConverted emits an IF-converted body: per lane, a comparison guards
// which of two computed values is stored, folded into a select (the
// conditional-move residue of IF-conversion, as in the Nystrom and
// Eichenberger suite the paper compares against). The select chains both
// arms into one dataflow, coupling the lanes' halves.
func genIfConverted(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	u := 2 + rng.Intn(4)
	an, bn, cn := arr(rng, "va", 0), arr(rng, "vb", 0), arr(rng, "vc", 0)
	thr := liveIn(l, ir.Int)
	s := liveIn(l, ir.Float)
	for k := 0; k < u; k++ {
		g := b.Load(ir.Int, ir.MemRef{Base: an, Coeff: u, Offset: k})
		cond := b.Cmp(g, thr)
		x := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: k})
		thenV := b.Mul(x, s)
		elseV := b.Add(x, s)
		v := b.Select(cond, thenV, elseV)
		b.Store(v, ir.MemRef{Base: cn, Coeff: u, Offset: k})
	}
}

// genFirstOrder emits a first-order linear recurrence x = x*a + b[i] with
// some independent streaming work beside it; the multiply-add cycle bounds
// RecMII at mul+add latency regardless of width.
func genFirstOrder(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	x := liveIn(l, ir.Float)
	a := liveIn(l, ir.Float)
	bn, cn := arr(rng, "fb", 0), arr(rng, "fc", 0)
	u := 1 + rng.Intn(3)
	// The recurrence itself.
	lb0 := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: u, Offset: 0})
	t := l.NewReg(ir.Float)
	b.MulInto(t, x, a)
	b.AddInto(x, t, lb0)
	b.Store(x, ir.MemRef{Base: cn, Coeff: u, Offset: 0})
	// Independent side work fills the pipeline's spare slots.
	side := rng.Intn(3) + 1
	for k := 0; k < side; k++ {
		ld := b.Load(ir.Float, ir.MemRef{Base: bn + "s", Coeff: u, Offset: k})
		b.Store(b.Mul(ld, a), ir.MemRef{Base: cn + "s", Coeff: u, Offset: k})
	}
}

// genMemRec emits a memory-carried recurrence a[i] = a[i-d] op b[i]: the
// store-to-load cycle through memory dominates the II, giving the suite
// its low-IPC tail.
func genMemRec(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	an, bn := arr(rng, "ra", 0), arr(rng, "rb", 0)
	dist := 1 + rng.Intn(3) // carried distance 1..3
	prev := b.Load(ir.Float, ir.MemRef{Base: an, Coeff: 1, Offset: -dist})
	lb := b.Load(ir.Float, ir.MemRef{Base: bn, Coeff: 1, Offset: 0})
	sum := b.Add(prev, lb)
	b.Store(sum, ir.MemRef{Base: an, Coeff: 1, Offset: 0})
	// A little independent work alongside.
	for k := 0; k < rng.Intn(3); k++ {
		ld := b.Load(ir.Float, ir.MemRef{Base: bn + "s", Coeff: 1, Offset: k})
		b.Store(b.Add(ld, lb), ir.MemRef{Base: an + "s", Coeff: 1, Offset: k})
	}
}

// genSerial emits an almost fully serial body: an integer division-based
// recurrence (12-cycle divide) or a chained float dependence, modeling the
// rare SPEC loops with essentially no parallelism.
func genSerial(rng *rand.Rand, l *ir.Loop) {
	b := ir.NewLoopBuilder(l)
	if rng.Intn(2) == 0 {
		x := liveIn(l, ir.Int)
		dn := arr(rng, "qa", 0)
		ld := b.Load(ir.Int, ir.MemRef{Base: dn, Coeff: 1, Offset: 0})
		t := l.NewReg(ir.Int)
		b.Emit(&ir.Op{Code: ir.Div, Class: ir.Int, Defs: []ir.Reg{t}, Uses: []ir.Reg{x, ld}})
		b.AddInto(x, t, ld)
		b.Store(x, ir.MemRef{Base: dn + "o", Coeff: 1, Offset: 0})
	} else {
		x := liveIn(l, ir.Float)
		a := liveIn(l, ir.Float)
		dn := arr(rng, "qf", 0)
		depth := 2 + rng.Intn(3)
		cur := x
		for k := 0; k < depth; k++ {
			t := l.NewReg(ir.Float)
			b.MulInto(t, cur, a)
			cur = t
		}
		b.AddInto(x, cur, a)
		b.Store(x, ir.MemRef{Base: dn, Coeff: 1, Offset: 0})
	}
}

// arr names an array uniquely enough that unrelated loops never alias.
func arr(rng *rand.Rand, prefix string, i int) string {
	return fmt.Sprintf("%s%d_%d", prefix, i, rng.Intn(1000))
}
