package transform

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/loopgen"
)

// sameExecution runs both loops for equivalent iteration counts and
// demands identical store streams. ratio is how many original iterations
// one transformed iteration covers.
func sameExecution(t *testing.T, orig, xform *ir.Loop, origTrips, ratio int, seed int64) {
	t.Helper()
	a := interp.New(seed)
	a.SeedLiveIns(orig.Body)
	if err := a.RunLoop(orig.Body, origTrips); err != nil {
		t.Fatal(err)
	}
	b := interp.New(seed)
	b.SeedLiveIns(orig.Body) // transformed code shares live-in names
	if err := b.RunLoop(xform.Body, origTrips/ratio); err != nil {
		t.Fatal(err)
	}
	if err := interp.SameStores(a.Stores, b.Stores); err != nil {
		t.Fatalf("%s vs %s: %v", orig.Name, xform.Name, err)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	loops := append(loopgen.Generate(loopgen.Params{N: 15, Seed: 71}),
		fixtures.DotProduct(2), fixtures.Accumulator(ir.Float))
	for _, l := range loops {
		for _, u := range []int{2, 3, 4} {
			un, err := Unroll(l.Clone(), u)
			if err != nil {
				t.Fatalf("%s x%d: %v", l.Name, u, err)
			}
			sameExecution(t, l, un, 12*u, u, 909)
		}
	}
}

func TestUnrollShape(t *testing.T) {
	l := fixtures.Accumulator(ir.Float) // 2 ops, one carried accumulator
	un, err := Unroll(l.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 copies of 2 ops; the accumulator chains through fresh names and a
	// loop-back move reconciles the final name with the original.
	if got := len(un.Body.Ops); got != 9 {
		t.Errorf("unrolled body has %d ops, want 4*2+1 loop-back move", got)
	}
	if un.Body.Ops[8].Code != ir.Copy {
		t.Errorf("last op is %s, want the loop-back move", un.Body.Ops[8].Code)
	}
	if un.TripCount != l.TripCount/4 {
		t.Errorf("trip count %d", un.TripCount)
	}
}

func TestUnrollFactorOne(t *testing.T) {
	l := fixtures.DotProduct(2)
	un, err := Unroll(l.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sameExecution(t, l, un, 10, 1, 33)
	if _, err := Unroll(l.Clone(), 0); err == nil {
		t.Error("unroll factor 0 accepted")
	}
}

func TestCSERemovesDuplicateLoads(t *testing.T) {
	l := ir.NewLoop("cse")
	b := ir.NewLoopBuilder(l)
	x1 := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	x2 := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1}) // duplicate
	s := b.Add(x1, x2)
	b.Store(s, ir.MemRef{Base: "c", Coeff: 1})
	nb, removed := CSE(l.Body)
	if removed != 1 {
		t.Fatalf("removed %d ops, want the duplicate load", removed)
	}
	if err := ir.VerifyBlock(nb); err != nil {
		t.Fatal(err)
	}
	out := l.Clone()
	out.Body = nb
	sameExecution(t, l, out, 8, 1, 5)
}

func TestCSERespectsStores(t *testing.T) {
	// A store to the loaded array kills availability: the second load
	// must survive.
	l := ir.NewLoop("csekill")
	b := ir.NewLoopBuilder(l)
	x1 := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.Store(x1, ir.MemRef{Base: "a", Coeff: 1, Offset: 1})
	x2 := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.Store(b.Add(x1, x2), ir.MemRef{Base: "c", Coeff: 1})
	_, removed := CSE(l.Body)
	if removed != 0 {
		t.Fatalf("CSE removed %d ops across a store", removed)
	}
}

func TestCSERespectsRedefinition(t *testing.T) {
	// acc changes between the two adds, so "add t, acc, x" is not
	// available the second time.
	l := ir.NewLoop("csedef")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Int)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	t1 := b.Add(acc, x)
	b.AddInto(acc, acc, x) // redefines acc
	t2 := b.Add(acc, x)    // same textual expression, different value
	b.Store(t1, ir.MemRef{Base: "c", Coeff: 1})
	b.Store(t2, ir.MemRef{Base: "d", Coeff: 1})
	nb, removed := CSE(l.Body)
	if removed != 0 {
		t.Fatalf("CSE merged across a redefinition (removed %d):\n%s", removed, nb)
	}
}

func TestCSEOnGeneratedStencils(t *testing.T) {
	// The generator already CSEs stencil loads; running CSE again must
	// find nothing (idempotence on its own output) and must preserve
	// semantics on every suite loop.
	for _, l := range loopgen.Generate(loopgen.Params{N: 15, Seed: 81}) {
		nb, _ := CSE(l.Body)
		out := l.Clone()
		out.Body = nb
		sameExecution(t, l, out, 10, 1, 6)
		nb2, removed2 := CSE(nb)
		if removed2 != 0 {
			t.Errorf("%s: CSE not idempotent (second pass removed %d):\n%s", l.Name, removed2, nb2)
		}
	}
}

func TestDCERemovesDeadChain(t *testing.T) {
	l := ir.NewLoop("dce")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	dead := b.Mul(x, x)
	_ = b.Add(dead, dead) // dead chain: never stored
	b.Store(x, ir.MemRef{Base: "c", Coeff: 1})
	nb, removed := DCE(l.Body)
	if removed != 2 {
		t.Fatalf("removed %d ops, want the 2-op dead chain:\n%s", removed, nb)
	}
	out := l.Clone()
	out.Body = nb
	sameExecution(t, l, out, 8, 1, 7)
}

func TestDCEKeepsCarriedValues(t *testing.T) {
	// An accumulator that is never stored still updates state read by the
	// next iteration; DCE must keep it (its final value is the loop's
	// live-out).
	l := fixtures.Accumulator(ir.Float)
	_, removed := DCE(l.Body)
	if removed != 0 {
		t.Fatalf("DCE removed %d ops from a live accumulator loop", removed)
	}
}

func TestDCEOnSuiteIsConservative(t *testing.T) {
	// Generated loops have no dead code; DCE must remove nothing and
	// preserve semantics trivially.
	for _, l := range loopgen.Generate(loopgen.Params{N: 15, Seed: 91}) {
		_, removed := DCE(l.Body)
		if removed != 0 {
			t.Errorf("%s: DCE removed %d ops from generated code", l.Name, removed)
		}
	}
}

func TestUnrollThenPipelineIntegration(t *testing.T) {
	// The transforms exist to feed the pipeline: unrolling a serial
	// accumulator loop by 4 must not break compilation.
	l := fixtures.Accumulator(ir.Float)
	un, err := Unroll(l.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyLoop(un); err != nil {
		t.Fatal(err)
	}
}
