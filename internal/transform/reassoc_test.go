package transform

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// intReduction builds acc += a[i]*b[i] with integer arithmetic (exactly
// associative, so re-association is checkable bit for bit).
func intReduction() (*ir.Loop, ir.Reg) {
	l := ir.NewLoop("reassoc.int")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Int)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Load(ir.Int, ir.MemRef{Base: "b", Coeff: 1})
	b.AddInto(acc, acc, b.Mul(x, y))
	return l, acc
}

func TestUnrollReassocBreaksRecurrence(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("f")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, x)

	serial, err := Unroll(l.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	reassoc, partials, err := UnrollReassoc(l.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(partials[acc]) != 4 {
		t.Fatalf("partials = %v, want 4 lanes", partials)
	}
	gs := ddg.Build(serial.Body, cfg, ddg.Options{Carried: true})
	gr := ddg.Build(reassoc.Body, cfg, ddg.Options{Carried: true})
	// Serial unroll chains four 2-cycle adds plus the 3-cycle loop-back
	// move: RecMII 11. Re-association leaves four independent add
	// recurrences: RecMII 2.
	if gs.RecMII() != 11 {
		t.Errorf("serial unroll RecMII = %d, want 11", gs.RecMII())
	}
	if gr.RecMII() != 2 {
		t.Errorf("re-associated RecMII = %d, want 2", gr.RecMII())
	}
}

func TestUnrollReassocExactSum(t *testing.T) {
	l, acc := intReduction()
	const u, reps = 4, 5
	reassoc, partials, err := UnrollReassoc(l.Clone(), u)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 777
	orig := interp.New(seed)
	orig.SeedLiveIns(l.Body)
	if err := orig.RunLoop(l.Body, u*reps); err != nil {
		t.Fatal(err)
	}
	re := interp.New(seed)
	re.SeedLiveIns(l.Body)
	// Preheader: the original accumulator keeps its initial value, the
	// fresh partials start at the additive identity.
	for _, p := range partials[acc] {
		if p != acc {
			re.Regs[p] = interp.Value{Class: ir.Int, I: 0}
		}
	}
	if err := re.RunLoop(reassoc.Body, reps); err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, p := range partials[acc] {
		sum += re.Regs[p].I
	}
	if want := orig.Regs[acc].I; sum != want {
		t.Fatalf("partials sum to %d, serial reduction gives %d", sum, want)
	}
}

func TestUnrollReassocLeavesIneligibleAlone(t *testing.T) {
	// k11 stores its running sum every iteration: the intermediate values
	// are observable, so the reduction must NOT be re-associated.
	var k11 *ir.Loop
	for _, l := range loopgen.Livermore() {
		if l.Name == "livermore.k11.firstsum" {
			k11 = l
		}
	}
	if k11 == nil {
		t.Fatal("k11 not found")
	}
	_, partials, err := UnrollReassoc(k11.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(partials) != 0 {
		t.Errorf("stored prefix sum was re-associated: %v", partials)
	}
}

func TestUnrollReassocFactorOne(t *testing.T) {
	l, _ := intReduction()
	out, partials, err := UnrollReassoc(l.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(partials) != 0 || len(out.Body.Ops) != len(l.Body.Ops) {
		t.Error("factor-1 re-association should be the identity")
	}
}

func TestUnrollReassocCompilesBetter(t *testing.T) {
	// The payoff: the re-associated inner product pipelines at the add
	// latency per 4 iterations instead of 4 chained adds.
	cfg := machine.Ideal16()
	var k3 *ir.Loop
	for _, l := range loopgen.Livermore() {
		if l.Name == "livermore.k03.inner" {
			k3 = l
		}
	}
	serial, err := Unroll(k3.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	reassoc, _, err := UnrollReassoc(k3.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	gs := ddg.Build(serial.Body, cfg, ddg.Options{Carried: true})
	gr := ddg.Build(reassoc.Body, cfg, ddg.Options{Carried: true})
	if gr.RecMII() >= gs.RecMII() {
		t.Errorf("re-association did not reduce RecMII: %d vs %d", gr.RecMII(), gs.RecMII())
	}
}
