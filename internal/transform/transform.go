// Package transform provides the classic loop preprocessing passes the
// paper's workload pipeline assumes: the SPEC95 loops it schedules had
// been unrolled and cleaned up by a conventional optimizer before
// software pipelining (Nystrom and Eichenberger's comparable suite had
// "load-store elimination, recurrence back-substitution, and
// IF-conversion" applied). The passes here — loop unrolling, local common
// subexpression elimination and dead code elimination — operate on the
// reproduction's IR and are each verified semantics-preserving by
// interpreter-based tests.
package transform

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Unroll replicates the loop body u times, renaming the registers defined
// by each copy and rewiring loop-carried uses so copy k reads copy k-1's
// values. Memory subscripts are rewritten for the new iteration space:
// Base[c*i+o] in copy k becomes Base[(c*u)*i + (c*k+o)]. The trip count
// divides by u (the caller is responsible for remainder iterations, as
// with any unroller).
func Unroll(l *ir.Loop, u int) (*ir.Loop, error) {
	if u < 1 {
		return nil, fmt.Errorf("transform: unroll factor %d", u)
	}
	out := ir.NewLoop(fmt.Sprintf("%s.x%d", l.Name, u))
	out.Body.Depth = l.Body.Depth
	out.TripCount = l.TripCount / u
	out.ReserveRegID(l.MaxRegID())

	// curName maps each original register to the register currently
	// holding its value; identity initially, so copy 0's upward-exposed
	// uses read the original (live-in) names.
	curName := make(map[ir.Reg]ir.Reg)
	name := func(r ir.Reg) ir.Reg {
		if n, ok := curName[r]; ok {
			return n
		}
		return r
	}
	for k := 0; k < u; k++ {
		for _, op := range l.Body.Ops {
			c := op.Clone()
			for ui, r := range c.Uses {
				c.Uses[ui] = name(r)
			}
			for di, d := range c.Defs {
				nd := d
				if k > 0 {
					nd = out.NewReg(d.Class)
				}
				c.Defs[di] = nd
				curName[d] = nd
			}
			if c.Mem != nil {
				c.Mem.Offset = c.Mem.Coeff*k + c.Mem.Offset
				c.Mem.Coeff *= u
			}
			out.Body.Append(c)
		}
	}
	out.Body.Renumber()
	// Values carried across the unrolled iteration boundary must flow back
	// into copy 0's names. Copy 0 reads original register names; at the
	// end of the unrolled body the value lives in curName[r]. When those
	// differ, a register move reconciles the loop-back edge.
	for _, r := range carriedRegs(l.Body) {
		if cur := name(r); cur != r {
			out.Body.Append(&ir.Op{
				Code: ir.Copy, Class: r.Class,
				Defs: []ir.Reg{r}, Uses: []ir.Reg{cur},
				Comment: "unroll loop-back",
			})
		}
	}
	out.Body.Renumber()
	if err := ir.VerifyLoop(out); err != nil {
		return nil, err
	}
	return out, nil
}

// UnrollReassoc unrolls like Unroll but additionally breaks eligible
// reduction recurrences: a carried accumulator whose only appearance is
// its own "acc = acc + x" update gets one fresh partial accumulator per
// unrolled copy instead of a serial chain through all copies. This is the
// classic re-association that real compilers apply before software
// pipelining (and that the paper's SPEC95 loops had received); it changes
// floating-point rounding order, which is why it is a separate entry
// point from the strictly semantics-preserving Unroll. The caller owns
// the post-loop combine of the partials (ReductionPartials lists them).
func UnrollReassoc(l *ir.Loop, u int) (*ir.Loop, map[ir.Reg][]ir.Reg, error) {
	eligible := reductionAccumulators(l.Body)
	out, err := Unroll(l, u)
	if err != nil {
		return nil, nil, err
	}
	if u == 1 || len(eligible) == 0 {
		return out, map[ir.Reg][]ir.Reg{}, nil
	}
	// Unroll chained each accumulator serially: copy k computes
	// acc_k = acc_{k-1} + x_k. Rewriting every copy's update to read its
	// OWN previous value (the carried name for that lane) breaks the
	// chain. The lane-local carried name is the def the copy writes: we
	// simply rewrite "accK = accK-1 + x" into "accK = accK + x" and drop
	// the loop-back move, making each accK independently carried.
	partials := make(map[ir.Reg][]ir.Reg)
	nameChain := make(map[ir.Reg]ir.Reg) // def in unrolled body -> original acc
	for _, op := range out.Body.Ops {
		d := op.Def()
		if d == ir.NoReg {
			continue
		}
		for _, acc := range eligible {
			if opIsAccUpdate(op, acc, nameChain) {
				nameChain[d] = acc
			}
		}
	}
	rewritten := &ir.Block{Depth: out.Body.Depth}
	for _, op := range out.Body.Ops {
		d := op.Def()
		if orig, ok := nameChain[d]; ok && (op.Code == ir.Add || op.Code == ir.Mul) {
			// This is lane k's update: make it self-carried.
			c := op.Clone()
			for ui, use := range c.Uses {
				if _, chained := nameChain[use]; chained || use == orig {
					c.Uses[ui] = d
				}
			}
			rewritten.Append(c)
			partials[orig] = append(partials[orig], d)
			continue
		}
		if op.Code == ir.Copy && op.Comment == "unroll loop-back" {
			if _, ok := nameChain[op.Uses[0]]; ok {
				continue // the serial chain's loop-back move: gone
			}
		}
		rewritten.Append(op.Clone())
	}
	rewritten.Renumber()
	out.Body = rewritten
	if err := ir.VerifyLoop(out); err != nil {
		return nil, nil, err
	}
	return out, partials, nil
}

// reductionAccumulators finds carried registers whose only appearance in
// the body is a single commutative self-update "acc = acc op x" with
// op in {add, mul}: the reductions that may be re-associated.
func reductionAccumulators(b *ir.Block) []ir.Reg {
	carried := carriedRegs(b)
	var out []ir.Reg
	for _, r := range carried {
		updates, others := 0, 0
		for _, op := range b.Ops {
			reads, writes := op.ReadsReg(r), op.WritesReg(r)
			if !reads && !writes {
				continue
			}
			if reads && writes && (op.Code == ir.Add || op.Code == ir.Mul) && len(op.Uses) == 2 {
				updates++
				continue
			}
			others++
		}
		if updates == 1 && others == 0 {
			out = append(out, r)
		}
	}
	return out
}

// opIsAccUpdate reports whether op continues acc's serial chain: it is an
// add/mul whose def is fresh and whose uses include acc or a def already
// known to be part of acc's chain.
func opIsAccUpdate(op *ir.Op, acc ir.Reg, chain map[ir.Reg]ir.Reg) bool {
	if op.Code != ir.Add && op.Code != ir.Mul {
		return false
	}
	if len(op.Uses) != 2 {
		return false
	}
	for _, u := range op.Uses {
		if u == acc {
			return true
		}
		if orig, ok := chain[u]; ok && orig == acc {
			return true
		}
	}
	return false
}

// carriedRegs returns registers both defined in the body and upward
// exposed (read before definition): the values that flow around the back
// edge.
func carriedRegs(b *ir.Block) []ir.Reg {
	defined := b.Defined()
	var out []ir.Reg
	for _, r := range b.LiveIns() {
		if defined[r] {
			out = append(out, r)
		}
	}
	return out
}

// CSE performs local common subexpression elimination on the block:
// operations that recompute an already-available value (same opcode,
// class, operand values, subscript and immediate) are deleted and their
// consumers rewired to the earlier register. Loads are invalidated by any
// store to the same array; stores and copies are never merged. Returns
// the rewritten block and the number of operations removed.
func CSE(b *ir.Block) (*ir.Block, int) {
	out := &ir.Block{Depth: b.Depth}
	avail := make(map[string]ir.Reg) // expression key -> holding register
	rename := make(map[ir.Reg]ir.Reg)
	// Defs of carried registers must survive: their consumers live in the
	// next iteration, beyond the reach of in-block renaming. Everything
	// else is a block-local temporary that renaming fully captures.
	carried := make(map[ir.Reg]bool)
	for _, r := range carriedRegs(b) {
		carried[r] = true
	}
	resolve := func(r ir.Reg) ir.Reg {
		if n, ok := rename[r]; ok {
			return n
		}
		return r
	}
	// Operand tokens are ";"-terminated so that r1 never matches inside
	// r12 during invalidation scans.
	keyOf := func(op *ir.Op) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d/%d", op.Code, op.Class)
		for _, u := range op.Uses {
			fmt.Fprintf(&sb, ",%s;", resolve(u))
		}
		if op.Mem != nil {
			fmt.Fprintf(&sb, ",%s;", op.Mem)
		}
		fmt.Fprintf(&sb, ",#%d", op.Imm)
		return sb.String()
	}
	removed := 0
	for _, op := range b.Ops {
		c := op.Clone()
		for ui, u := range c.Uses {
			c.Uses[ui] = resolve(u)
		}
		switch {
		case c.Code == ir.Store:
			// A store kills the availability of loads from its array.
			for k := range avail {
				if strings.Contains(k, ","+c.Mem.Base+"[") {
					delete(avail, k)
				}
			}
			out.Append(c)
			continue
		case c.Code == ir.Copy || len(c.Defs) != 1:
			out.Append(c)
			continue
		}
		key := keyOf(c)
		if prev, ok := avail[key]; ok && prev.Class == c.Def().Class && !carried[c.Def()] {
			rename[c.Def()] = prev
			removed++
			continue
		}
		// A redefinition of a register invalidates expressions that used
		// its old value; tracking by name is enough because expressions
		// were keyed on resolved names, and a redefined name can only be
		// an original register (fresh CSE names are never redefined).
		d := c.Def()
		for k := range avail {
			if strings.Contains(k, ","+d.String()+";") || avail[k] == d {
				delete(avail, k)
			}
		}
		// A self-redefinition (the def appears among its own uses, e.g.
		// "add r1, r1, r2") computes a value its own key no longer
		// describes once the def lands; such expressions are never
		// available afterwards.
		if !strings.Contains(key, ","+d.String()+";") {
			avail[key] = d
		}
		out.Append(c)
	}
	out.Renumber()
	return out, removed
}

// DCE removes operations whose results are never observed: not stored, not
// (transitively) feeding a store, and not carried around the loop's back
// edge. Returns the cleaned block and the number of operations removed.
func DCE(b *ir.Block) (*ir.Block, int) {
	n := len(b.Ops)
	live := make([]bool, n)
	needed := make(map[ir.Reg]bool)
	for _, r := range carriedRegs(b) {
		needed[r] = true
	}
	// Backward sweep: stores are roots; an op is live if it defines a
	// needed register; its uses become needed.
	for i := n - 1; i >= 0; i-- {
		op := b.Ops[i]
		isLive := op.Code == ir.Store
		for _, d := range op.Defs {
			if needed[d] {
				isLive = true
			}
		}
		if !isLive {
			continue
		}
		live[i] = true
		for _, d := range op.Defs {
			delete(needed, d)
		}
		for _, u := range op.Uses {
			needed[u] = true
		}
	}
	// Carried registers must stay needed across the top of the body.
	for _, r := range carriedRegs(b) {
		needed[r] = true
	}
	out := &ir.Block{Depth: b.Depth}
	removed := 0
	for i, op := range b.Ops {
		if live[i] {
			out.Append(op.Clone())
		} else {
			removed++
		}
	}
	out.Renumber()
	return out, removed
}
