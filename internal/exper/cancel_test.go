package exper

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

// panicPartitioner blows up inside a worker; the suite runner must not
// swallow it (a swallowed panic silently zeroes a table cell).
type panicPartitioner struct{}

func (panicPartitioner) Name() string { return "panicker" }
func (panicPartitioner) Assign(in *partition.Input) (*core.Assignment, error) {
	panic("boom from partitioner")
}

func TestRunPanicPropagates(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 8, Seed: loopgen.DefaultParams().Seed})
	cfgs := []*machine.Config{machine.MustClustered16(4, machine.Embedded)}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("re-raised panic has type %T, want string", r)
		}
		if !strings.Contains(msg, "worker panicked") || !strings.Contains(msg, "boom from partitioner") {
			t.Errorf("re-raised panic lost the cause: %q", msg)
		}
		if !strings.Contains(msg, "worker stack") {
			t.Errorf("re-raised panic lost the worker stack: %q", msg)
		}
	}()
	_, _ = Run(context.Background(), loops, cfgs, codegen.Config{
		Partitioner: panicPartitioner{},
		SkipAlloc:   true,
		Workers:     4,
	})
	t.Fatal("Run returned instead of panicking")
}

func TestRunCancelPromptNoLeak(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 120, Seed: loopgen.DefaultParams().Seed})
	cfgs := machine.PaperConfigs()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := Run(ctx, loops, cfgs, codegen.Config{SkipAlloc: true})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap the deadline: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled Run took %s; cancellation is not prompt", elapsed)
	}
	if len(results) != len(cfgs) {
		t.Errorf("partial results lost shape: %d machines, want %d", len(results), len(cfgs))
	}

	// Every worker must have been joined before Run returned; give the
	// runtime a moment to reap exited goroutines, then compare counts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunMatchesRunSuite(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 12, Seed: loopgen.DefaultParams().Seed})
	cfgs := []*machine.Config{machine.MustClustered16(4, machine.Embedded)}
	viaRun, err := Run(context.Background(), loops, cfgs, codegen.Config{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	viaSuite := RunSuite(loops, cfgs, Options{Codegen: codegen.Options{SkipAlloc: true}})
	if Table1(viaRun) != Table1(viaSuite) || Table2(viaRun) != Table2(viaSuite) {
		t.Error("Run and the deprecated RunSuite disagree on the tables")
	}
}
