package exper

import (
	"encoding/json"
	"io"
)

// jsonOutcome is the wire form of one loop outcome.
type jsonOutcome struct {
	Loop            string        `json:"loop"`
	Ops             int           `json:"ops"`
	KernelCopies    int           `json:"kernelCopies"`
	InvariantCopies int           `json:"invariantCopies"`
	IdealII         int           `json:"idealII"`
	PartII          int           `json:"partII"`
	IdealIPC        float64       `json:"idealIPC"`
	ClusterIPC      float64       `json:"clusterIPC"`
	Degradation     float64       `json:"degradation"`
	Spills          int           `json:"spills"`
	MaxPressure     int           `json:"maxPressure"`
	Exact           *jsonExact    `json:"exact,omitempty"`
	Adaptive        *jsonAdaptive `json:"adaptive,omitempty"`
	Error           string        `json:"error,omitempty"`
}

// jsonAdaptive is the wire form of the adaptive-arm adoption telemetry.
type jsonAdaptive struct {
	Bucket      string `json:"bucket"`
	ExactBucket bool   `json:"exactBucket"`
	Won         bool   `json:"won"`
}

// jsonExact is the wire form of the exact-arm optimality-gap telemetry.
type jsonExact struct {
	MinII         int   `json:"minII"`
	HeuristicII   int   `json:"heuristicII"`
	FinalII       int   `json:"finalII"`
	SchedRan      bool  `json:"schedRan"`
	SchedProven   bool  `json:"schedProven"`
	SchedImproved bool  `json:"schedImproved"`
	SchedNodes    int64 `json:"schedNodes"`
	PartRan       bool  `json:"partRan"`
	PartProven    bool  `json:"partProven"`
	PartImproved  bool  `json:"partImproved"`
	PartWon       bool  `json:"partWon"`
	PartNodes     int64 `json:"partNodes"`
}

// jsonConfig is the wire form of one machine's suite run.
type jsonConfig struct {
	Machine        string        `json:"machine"`
	Clusters       int           `json:"clusters"`
	Model          string        `json:"model"`
	Method         string        `json:"method"`
	ArithmeticMean float64       `json:"arithmeticMeanDegradation"`
	HarmonicMean   float64       `json:"harmonicMeanDegradation"`
	MeanIdealIPC   float64       `json:"meanIdealIPC"`
	MeanClusterIPC float64       `json:"meanClusterIPC"`
	ZeroPercent    float64       `json:"zeroDegradationPercent"`
	Outcomes       []jsonOutcome `json:"outcomes"`
}

// WriteJSON emits the full per-loop results as indented JSON, the
// machine-readable companion to the rendered tables, for downstream
// analysis outside Go.
func WriteJSON(w io.Writer, results []*ConfigResult) error {
	out := make([]jsonConfig, 0, len(results))
	for _, r := range results {
		a, h := r.MeanDegradation()
		jc := jsonConfig{
			Machine:        r.Cfg.Name,
			Clusters:       r.Cfg.Clusters,
			Model:          r.Cfg.Model.String(),
			Method:         r.Method,
			ArithmeticMean: a,
			HarmonicMean:   h,
			MeanIdealIPC:   r.MeanIdealIPC(),
			MeanClusterIPC: r.MeanClusterIPC(),
			ZeroPercent:    r.ZeroDegradationPercent(),
		}
		for _, o := range r.Outcomes {
			jo := jsonOutcome{
				Loop: o.Loop, Ops: o.Ops,
				KernelCopies: o.KernelCopies, InvariantCopies: o.InvariantCopies,
				IdealII: o.IdealII, PartII: o.PartII,
				IdealIPC: o.IdealIPC, ClusterIPC: o.ClusterIPC,
				Degradation: o.Degradation,
				Spills:      o.Spills, MaxPressure: o.MaxPressure,
			}
			if e := o.Exact; e != nil {
				jo.Exact = &jsonExact{
					MinII: e.MinII, HeuristicII: e.HeuristicII, FinalII: e.II,
					SchedRan: e.SchedRan, SchedProven: e.SchedProven,
					SchedImproved: e.SchedImproved, SchedNodes: e.SchedNodes,
					PartRan: e.PartRan, PartProven: e.PartProven,
					PartImproved: e.PartImproved, PartWon: e.PartWon,
					PartNodes: e.PartNodes,
				}
			}
			if a := o.Adaptive; a != nil {
				jo.Adaptive = &jsonAdaptive{Bucket: a.Bucket, ExactBucket: a.ExactBucket, Won: a.Won}
			}
			if o.Err != nil {
				jo.Error = o.Err.Error()
			}
			jc.Outcomes = append(jc.Outcomes, jo)
		}
		out = append(out, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
