package exper

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/trace"
)

// goldenClock is a deterministic stand-in for time.Now: every call
// advances one microsecond from the zero time, so span starts and
// durations in the golden file are stable across machines and runs.
func goldenClock() func() time.Time {
	var n int64
	return func() time.Time {
		n++
		return time.Unix(0, 0).Add(time.Duration(n) * time.Microsecond)
	}
}

// TestGoldenTraceJSON freezes the exact JSON trace stream emitted by a
// small suite run. The run is fully deterministic: the tracer uses a fake
// clock and RunSuite uses a single worker, so events appear in a fixed
// order with fixed timestamps. Any change to the trace schema, to the
// instrumentation points or to their attributes must be accompanied by
// `go test ./internal/exper -run GoldenTrace -update` and a review of the
// new stream against DESIGN.md's schema description.
func TestGoldenTraceJSON(t *testing.T) {
	tr := trace.NewWithClock(goldenClock())
	loops := loopgen.Generate(loopgen.Params{N: 2, Seed: loopgen.DefaultParams().Seed})
	cfgs := machine.PaperConfigs()[:2]
	RunSuite(loops, cfgs, Options{
		Workers: 1,
		Tracer:  tr,
		Codegen: codegen.Options{SkipAlloc: true},
	})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "trace_n2.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace stream drifted from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}

	// The golden stream must round-trip through the reader: parse it and
	// re-encode, demanding the identical byte stream — the property any
	// external consumer of -trace output relies on.
	stream, err := trace.ReadJSON(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden stream does not parse: %v", err)
	}
	var re bytes.Buffer
	if err := stream.WriteJSON(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), want) {
		t.Errorf("golden stream does not round-trip:\n--- re-encoded\n%s", re.Bytes())
	}
}
