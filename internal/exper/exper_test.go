package exper

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

func smallRun(t *testing.T, n int) []*ConfigResult {
	t.Helper()
	loops := loopgen.Generate(loopgen.Params{N: n, Seed: loopgen.DefaultParams().Seed})
	return RunSuite(loops, machine.PaperConfigs(), Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
}

func TestRunSuiteShape(t *testing.T) {
	results := smallRun(t, 20)
	if len(results) != 6 {
		t.Fatalf("results for %d configs, want 6", len(results))
	}
	for _, r := range results {
		if len(r.Outcomes) != 20 {
			t.Fatalf("%s: %d outcomes", r.Cfg.Name, len(r.Outcomes))
		}
		if errs := r.Errors(); len(errs) != 0 {
			t.Fatalf("%s: %v", r.Cfg.Name, errs[0])
		}
		for _, o := range r.Outcomes {
			if o.Degradation < 100 {
				t.Errorf("%s %s: degradation %f below 100", r.Cfg.Name, o.Loop, o.Degradation)
			}
			if o.IdealII < 1 || o.PartII < o.IdealII {
				t.Errorf("%s %s: II pair (%d, %d) inconsistent", r.Cfg.Name, o.Loop, o.IdealII, o.PartII)
			}
		}
	}
}

func TestRunSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 12, Seed: 7})
	serial := RunSuite(loops, machine.PaperConfigs()[:2], Options{Workers: 1, Codegen: codegen.Options{SkipAlloc: true}})
	parallel := RunSuite(loops, machine.PaperConfigs()[:2], Options{Workers: 8, Codegen: codegen.Options{SkipAlloc: true}})
	for ci := range serial {
		for i := range serial[ci].Outcomes {
			a, b := serial[ci].Outcomes[i], parallel[ci].Outcomes[i]
			if a.PartII != b.PartII || a.IdealII != b.IdealII || a.KernelCopies != b.KernelCopies {
				t.Fatalf("outcome %d differs between 1 and 8 workers", i)
			}
		}
	}
}

func TestAggregates(t *testing.T) {
	results := smallRun(t, 15)
	for _, r := range results {
		a, h := r.MeanDegradation()
		if a < 100 || h < 100 {
			t.Errorf("%s: means below 100: %f %f", r.Cfg.Name, a, h)
		}
		if h > a+1e-9 {
			t.Errorf("%s: harmonic mean %f above arithmetic %f", r.Cfg.Name, h, a)
		}
		if z := r.ZeroDegradationPercent(); z < 0 || z > 100 {
			t.Errorf("%s: zero-degradation %f out of range", r.Cfg.Name, z)
		}
		if ipc := r.MeanIdealIPC(); ipc <= 0 || ipc > 16 {
			t.Errorf("%s: ideal IPC %f out of range", r.Cfg.Name, ipc)
		}
	}
}

func TestTableRendering(t *testing.T) {
	results := smallRun(t, 10)
	t1 := Table1(results)
	if !strings.Contains(t1, "Ideal") || !strings.Contains(t1, "Clustered") || !strings.Contains(t1, "2cl/emb") {
		t.Errorf("Table 1 malformed:\n%s", t1)
	}
	t2 := Table2(results)
	if !strings.Contains(t2, "Arithmetic Mean") || !strings.Contains(t2, "Harmonic Mean") {
		t.Errorf("Table 2 malformed:\n%s", t2)
	}
	for _, clusters := range []int{2, 4, 8} {
		fig := Figure(results, clusters)
		if !strings.Contains(fig, "Embedded") || !strings.Contains(fig, "Copy Unit") || !strings.Contains(fig, "0.00%") {
			t.Errorf("Figure for %d clusters malformed:\n%s", clusters, fig)
		}
	}
	sum := Summary(results)
	if !strings.Contains(sum, "machine") || len(strings.Split(strings.TrimSpace(sum), "\n")) != 7 {
		t.Errorf("Summary malformed:\n%s", sum)
	}
}

func TestSortedByDegradation(t *testing.T) {
	results := smallRun(t, 15)
	r := results[0]
	idx := r.SortedByDegradation()
	if len(idx) != len(r.Outcomes) {
		t.Fatal("sorted index wrong length")
	}
	for i := 1; i < len(idx); i++ {
		if r.Outcomes[idx[i-1]].Degradation < r.Outcomes[idx[i]].Degradation {
			t.Fatal("not sorted worst-first")
		}
	}
}

func TestAlternatePartitionerRecorded(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 5, Seed: 11})
	results := RunSuite(loops, machine.PaperConfigs()[:1], Options{
		Codegen: codegen.Options{Partitioner: partition.BUG{}, SkipAlloc: true},
	})
	if results[0].Method != "bug" {
		t.Errorf("method recorded as %q", results[0].Method)
	}
}

func TestBreakdownPartitionsOutcomes(t *testing.T) {
	results := smallRun(t, 40)
	r := results[2] // 4cl embedded
	rows := Breakdown(r)
	if len(rows) < 3 {
		t.Fatalf("only %d archetypes in 40 loops", len(rows))
	}
	total := 0
	for _, row := range rows {
		total += row.Loops
		if row.MeanDegradation < 100 {
			t.Errorf("%s: mean degradation %f below 100", row.Name, row.MeanDegradation)
		}
		if row.ZeroPercent < 0 || row.ZeroPercent > 100 {
			t.Errorf("%s: zero%% out of range", row.Name)
		}
	}
	if total != 40 {
		t.Errorf("breakdown covers %d of 40 loops", total)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].MeanDegradation < rows[i].MeanDegradation {
			t.Error("breakdown not sorted worst-first")
		}
	}
	out := FormatBreakdown(r)
	if !strings.Contains(out, "archetype") || !strings.Contains(out, rows[0].Name) {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 5, Seed: 9})
	results := RunSuite(loops, machine.PaperConfigs()[:2], Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("%d configs in JSON", len(decoded))
	}
	outcomes, ok := decoded[0]["outcomes"].([]interface{})
	if !ok || len(outcomes) != 5 {
		t.Fatalf("outcomes malformed: %v", decoded[0]["outcomes"])
	}
	for _, key := range []string{"machine", "clusters", "arithmeticMeanDegradation", "zeroDegradationPercent"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
}

func TestUnitsStudy(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	results := UnitsStudy(loops, 0)
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	general, c6x := results[0], results[1]
	for _, r := range results {
		if errs := r.Errors(); len(errs) > 0 {
			t.Fatal(errs[0])
		}
	}
	// The paper's Section 6.1 conjecture: general-purpose units pipeline
	// more densely (higher ideal IPC), leaving fewer holes and making
	// partitioning harder (lower zero-degradation share).
	if general.MeanIdealIPC() <= c6x.MeanIdealIPC() {
		t.Errorf("general units should pipeline denser: %.2f vs %.2f",
			general.MeanIdealIPC(), c6x.MeanIdealIPC())
	}
	if general.ZeroDegradationPercent() >= c6x.ZeroDegradationPercent() {
		t.Errorf("typed units should partition easier: zero%% %.1f vs %.1f",
			general.ZeroDegradationPercent(), c6x.ZeroDegradationPercent())
	}
	if !strings.Contains(FormatUnits(results), "generality") {
		t.Error("rendering incomplete")
	}
}

func TestSchedulerStudy(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: loopgen.DefaultParams().Seed})
	rows := SchedulerStudy(loops, []*machine.Config{machine.Ideal16()}, 0)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.SwingPressure > r.RauPressure {
		t.Errorf("lifetime-sensitive placement raised pressure: %.1f -> %.1f", r.RauPressure, r.SwingPressure)
	}
	if r.SwingDeg > r.RauDeg+1 {
		t.Errorf("lifetime mode degraded schedules: %.0f vs %.0f", r.SwingDeg, r.RauDeg)
	}
	if !strings.Contains(FormatScheduler(rows), "swPress") {
		t.Error("rendering incomplete")
	}
}

func TestRefineStudy(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: loopgen.DefaultParams().Seed})
	cfgs := []*machine.Config{machine.MustClustered16(2, machine.CopyUnit)}
	rows := RefineStudy(loops, cfgs, 0)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.RefinedMean > r.GreedyMean {
		t.Errorf("refinement regressed the mean: %f -> %f", r.GreedyMean, r.RefinedMean)
	}
	if r.RefinedZero < r.GreedyZero {
		t.Errorf("refinement lowered the zero-degradation share: %f -> %f", r.GreedyZero, r.RefinedZero)
	}
	if r.LoopsImproved > 0 && r.MovesKept == 0 {
		t.Error("improvements without kept moves")
	}
	out := FormatRefine(rows)
	if !strings.Contains(out, "refined") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestPressureStudy(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 25, Seed: loopgen.DefaultParams().Seed})
	rows := PressureStudy(loops, 0)
	if len(rows) != 7 {
		t.Fatalf("%d rows, want ideal + 6 clustered", len(rows))
	}
	if rows[0].Cfg.Clusters != 1 {
		t.Fatal("first row must be the ideal machine")
	}
	// Per-bank pressure must fall as the registers spread over more banks
	// (compare embedded rows: ideal > 2cl > 4cl > 8cl).
	if !(rows[0].MeanMaxPressure > rows[1].MeanMaxPressure &&
		rows[1].MeanMaxPressure > rows[3].MeanMaxPressure &&
		rows[3].MeanMaxPressure > rows[5].MeanMaxPressure) {
		t.Errorf("pressure not falling with cluster count: %v",
			[]float64{rows[0].MeanMaxPressure, rows[1].MeanMaxPressure, rows[3].MeanMaxPressure, rows[5].MeanMaxPressure})
	}
	out := FormatPressure(rows)
	if !strings.Contains(out, "meanPress") || !strings.Contains(out, "ideal") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestCopyLatencySweep(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 20, Seed: loopgen.DefaultParams().Seed})
	points, err := CopyLatencySweep(loops, 4, machine.CopyUnit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Cheaper copies should not hurt. The pipeline is heuristic (slower
	// copies perturb scheduling priorities and occasionally luck into a
	// better schedule for some loop), so the check is a trend with
	// tolerance, not strict monotonicity.
	const tol = 5.0
	for _, p := range points {
		if p.ArithMean < 100 {
			t.Errorf("mean degradation below 100: %+v", p)
		}
	}
	if points[0].ArithMean > points[len(points)-1].ArithMean+tol {
		t.Errorf("1-cycle copies degraded far more than slow copies: %+v", points)
	}
	out := FormatCopyLatencySweep(points, 4, machine.CopyUnit)
	if !strings.Contains(out, "sensitivity") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestZeroDegradationFallsWithClusterCount(t *testing.T) {
	// The paper's headline qualitative result (Figures 5-7): the share of
	// loops scheduled with no degradation falls as the machine is cut into
	// more clusters. 60 loops keep the test fast but the trend stable.
	results := smallRun(t, 60)
	zeroAt := map[int]float64{}
	for _, r := range results {
		if r.Cfg.Model == machine.Embedded {
			zeroAt[r.Cfg.Clusters] = r.ZeroDegradationPercent()
		}
	}
	if !(zeroAt[2] > zeroAt[4] && zeroAt[4] > zeroAt[8]) {
		t.Errorf("zero-degradation shares not strictly falling: 2cl=%f 4cl=%f 8cl=%f",
			zeroAt[2], zeroAt[4], zeroAt[8])
	}
}
