package exper

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPaperShapeContract pins the qualitative results the reproduction
// must preserve (DESIGN.md §2 "shape expectations") on a deterministic
// 80-loop slice:
//
//  1. at 2 clusters the embedded model beats the copy-unit model;
//  2. at 8 clusters the ordering flips;
//  3. both 4-cluster models land in a moderate band;
//  4. the suite's ideal IPC is "over 8.5"-ish;
//  5. embedded degradation grows monotonically with cluster count.
func TestPaperShapeContract(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 80, Seed: loopgen.DefaultParams().Seed})
	results := RunSuite(loops, machine.PaperConfigs(), Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	mean := func(i int) float64 { a, _ := results[i].MeanDegradation(); return a }
	names := []string{"2emb", "2cu", "4emb", "4cu", "8emb", "8cu"}
	for i, r := range results {
		t.Logf("%s: mean %.0f, zero %.1f%%", names[i], mean(i), r.ZeroDegradationPercent())
	}

	if !(mean(0) < mean(1)) {
		t.Errorf("shape 1 broken: 2cl embedded %f !< copy-unit %f", mean(0), mean(1))
	}
	if !(mean(4) > mean(5)) {
		t.Errorf("shape 2 broken: 8cl embedded %f !> copy-unit %f", mean(4), mean(5))
	}
	for _, i := range []int{2, 3} {
		if mean(i) < 105 || mean(i) > 160 {
			t.Errorf("shape 3 broken: 4cl mean %f outside the moderate band", mean(i))
		}
	}
	if ipc := results[0].MeanIdealIPC(); ipc < 8 || ipc > 11.5 {
		t.Errorf("shape 4 broken: ideal IPC %f", ipc)
	}
	if !(mean(0) < mean(2) && mean(2) < mean(4)) {
		t.Errorf("shape 5 broken: embedded means not increasing: %f %f %f", mean(0), mean(2), mean(4))
	}
}

// TestGoldenTables freezes the exact rendered tables for a 40-loop slice;
// any change to the pipeline's numeric behavior must be accompanied by
// `go test ./internal/exper -run Golden -update` and a review of the new
// numbers against EXPERIMENTS.md.
func TestGoldenTables(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	results := RunSuite(loops, machine.PaperConfigs(), Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	got := Table1(results) + "\n" + Table2(results) + "\n" + Figure(results, 4)
	path := filepath.Join("testdata", "tables_n40.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("tables drifted from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
