package exper

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPaperShapeContract pins the qualitative results the reproduction
// must preserve (DESIGN.md §2 "shape expectations") on a deterministic
// 80-loop slice:
//
//  1. at 2 clusters the embedded model beats the copy-unit model;
//  2. at 8 clusters the ordering flips;
//  3. both 4-cluster models land in a moderate band;
//  4. the suite's ideal IPC is "over 8.5"-ish;
//  5. embedded degradation grows monotonically with cluster count.
func TestPaperShapeContract(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 80, Seed: loopgen.DefaultParams().Seed})
	results := RunSuite(loops, machine.PaperConfigs(), Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	mean := func(i int) float64 { a, _ := results[i].MeanDegradation(); return a }
	names := []string{"2emb", "2cu", "4emb", "4cu", "8emb", "8cu"}
	for i, r := range results {
		t.Logf("%s: mean %.0f, zero %.1f%%", names[i], mean(i), r.ZeroDegradationPercent())
	}

	if !(mean(0) < mean(1)) {
		t.Errorf("shape 1 broken: 2cl embedded %f !< copy-unit %f", mean(0), mean(1))
	}
	if !(mean(4) > mean(5)) {
		t.Errorf("shape 2 broken: 8cl embedded %f !> copy-unit %f", mean(4), mean(5))
	}
	for _, i := range []int{2, 3} {
		if mean(i) < 105 || mean(i) > 160 {
			t.Errorf("shape 3 broken: 4cl mean %f outside the moderate band", mean(i))
		}
	}
	if ipc := results[0].MeanIdealIPC(); ipc < 8 || ipc > 11.5 {
		t.Errorf("shape 4 broken: ideal IPC %f", ipc)
	}
	if !(mean(0) < mean(2) && mean(2) < mean(4)) {
		t.Errorf("shape 5 broken: embedded means not increasing: %f %f %f", mean(0), mean(2), mean(4))
	}
}

// TestGoldenTables freezes the exact rendered tables for a 40-loop slice;
// any change to the pipeline's numeric behavior must be accompanied by
// `go test ./internal/exper -run Golden -update` and a review of the new
// numbers against EXPERIMENTS.md.
func TestGoldenTables(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	results := RunSuite(loops, machine.PaperConfigs(), Options{
		Codegen: codegen.Options{SkipAlloc: true},
	})
	got := Table1(results) + "\n" + Table2(results) + "\n" + Figure(results, 4)
	path := filepath.Join("testdata", "tables_n40.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("tables drifted from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestGoldenTablesBudgeted reruns the golden-table slice with the compile
// cache attached at every budget regime — zero retention, a small finite
// bound (steady eviction churn) and unlimited — and demands the exact
// bytes of the uncached golden file each time. The cache budget may only
// change how often stages recompute, never a rendered digit.
func TestGoldenTablesBudgeted(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "tables_n40.golden"))
	if err != nil {
		t.Fatalf("golden file missing (run TestGoldenTables with -update): %v", err)
	}
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"zero", cache.BudgetZero},
		{"finite", 128 << 10},
		{"unlimited", cache.BudgetUnlimited},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cache.NewBounded(tc.budget)
			results := RunSuite(loops, machine.PaperConfigs(), Options{
				Codegen: codegen.Options{SkipAlloc: true, Cache: c},
			})
			got := Table1(results) + "\n" + Table2(results) + "\n" + Figure(results, 4)
			if got != string(want) {
				t.Errorf("budget %s: tables diverge from the uncached golden:\n--- got\n%s", tc.name, got)
			}
			st := c.Stats()
			if tc.budget > 0 && st.Bytes > tc.budget {
				t.Errorf("budget %s: cache sits at %d bytes, over budget", tc.name, st.Bytes)
			}
			if tc.budget > 0 && st.Hits == 0 {
				t.Errorf("budget %s: finite budget produced zero hits", tc.name)
			}
		})
	}
}

// TestGoldenTablesDiskCache is the persistent tier's differential
// guarantee at suite scale: Tables 1-2 and the Figure histogram must be
// byte-identical to the uncached golden with the disk tier off, with a
// cold (empty) disk directory, and with a pre-warmed directory serving a
// restarted process whose memory cache starts empty. Byte-identity here
// means the tier can never change a result — only where it came from.
func TestGoldenTablesDiskCache(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "tables_n40.golden"))
	if err != nil {
		t.Fatalf("golden file missing (run TestGoldenTables with -update): %v", err)
	}
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: loopgen.DefaultParams().Seed})
	render := func(c *cache.Cache, d *cache.Disk) string {
		results := RunSuite(loops, machine.PaperConfigs(), Options{
			Codegen: codegen.Options{SkipAlloc: true, Cache: c, Disk: d},
		})
		return Table1(results) + "\n" + Table2(results) + "\n" + Figure(results, 4)
	}
	dir := t.TempDir()

	if got := render(cache.New(), nil); got != string(want) {
		t.Errorf("disk off: tables diverge from the uncached golden:\n--- got\n%s", got)
	}

	cold, err := cache.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(cache.New(), cold); got != string(want) {
		t.Errorf("disk cold: tables diverge from the uncached golden:\n--- got\n%s", got)
	}
	cold.Close() // flush the write-behind queue before the reopen
	if cold.Stats().Writes == 0 {
		t.Fatal("cold run wrote nothing — the warm arm below would prove nothing")
	}

	warm, err := cache.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	c := cache.New()
	if got := render(c, warm); got != string(want) {
		t.Errorf("disk warm: tables diverge from the uncached golden:\n--- got\n%s", got)
	}
	if st := c.Stats(); st.DiskHits == 0 {
		t.Error("warm run drew zero disk-tier hits — the directory did not serve the restart")
	}
}
