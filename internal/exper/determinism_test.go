package exper

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/partition"
)

// suiteJSON compiles the full paper grid and renders the per-loop JSON.
func suiteJSON(t *testing.T, opt Options) []byte {
	t.Helper()
	results := RunSuite(loopgen.Suite(), machine.PaperConfigs(), opt)
	for _, r := range results {
		if errs := r.Errors(); len(errs) > 0 {
			t.Fatal(errs[0])
		}
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSuiteByteDeterminism is the executable form of the repository's
// determinism guarantee: the experiment tables must reproduce exactly, so
// two runs of the full suite — and runs that only change the worker count,
// or turn the compile cache on — must serialize to byte-identical JSON.
// Map iteration anywhere on the result path (partition tie-breaking,
// aggregation, serialization) would show up here as a flaky diff.
func TestSuiteByteDeterminism(t *testing.T) {
	base := suiteJSON(t, Options{Workers: 1, Codegen: codegen.Options{SkipAlloc: true}})
	runs := map[string]Options{
		"repeat":    {Workers: 1, Codegen: codegen.Options{SkipAlloc: true}},
		"parallel":  {Workers: 8, Codegen: codegen.Options{SkipAlloc: true}},
		"cached":    {Workers: 8, Codegen: codegen.Options{SkipAlloc: true, Cache: cache.New()}},
		"cachedSeq": {Workers: 1, Codegen: codegen.Options{SkipAlloc: true, Cache: cache.New()}},
	}
	for name, opt := range runs {
		if got := suiteJSON(t, opt); !bytes.Equal(got, base) {
			t.Errorf("%s run diverged from the base run (%d vs %d bytes)", name, len(got), len(base))
		}
	}
}

// TestPortfolioSuiteByteDeterminism repeats the check for the portfolio
// partitioner, whose per-loop scoring pool is itself parallel: variant
// selection must be a pure function of the loop and machine, not of
// goroutine interleaving.
func TestPortfolioSuiteByteDeterminism(t *testing.T) {
	opt := func(workers, scoring int) Options {
		return Options{Workers: workers, Codegen: codegen.Options{
			Partitioner: partition.Portfolio{Workers: scoring},
			SkipAlloc:   true,
		}}
	}
	base := suiteJSON(t, opt(1, 1))
	if got := suiteJSON(t, opt(8, 4)); !bytes.Equal(got, base) {
		t.Errorf("parallel portfolio run diverged from serial (%d vs %d bytes)", len(got), len(base))
	}
}
