package exper

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/stats"
)

// RefineOutcome compares the greedy partition against its iteratively
// refined version for one machine.
type RefineOutcome struct {
	Cfg *machine.Config
	// GreedyMean / RefinedMean are arithmetic mean degradations.
	GreedyMean, RefinedMean float64
	// GreedyZero / RefinedZero are zero-degradation shares (percent).
	GreedyZero, RefinedZero float64
	// LoopsImproved counts loops whose II strictly dropped; MovesKept
	// totals accepted relocations.
	LoopsImproved, MovesKept int
}

// RefineStudy quantifies the iteration the paper defers to future work
// (Section 6.3): it reruns the suite with CompileRefined and reports how
// much of the greedy partitioner's degradation the feedback loop claws
// back. Nystrom and Eichenberger report iteration shrinking their share
// of degraded loops from ~5% to ~2%; this study measures the analogous
// movement for the RCG greedy.
func RefineStudy(loops []*ir.Loop, cfgs []*machine.Config, workers int) []RefineOutcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]RefineOutcome, 0, len(cfgs))
	for _, cfg := range cfgs {
		type pair struct {
			base, refined float64
			improved      bool
			moves         int
			baseZero      bool
			refZero       bool
		}
		pairs := make([]pair, len(loops))
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					base, err := codegen.Compile(context.Background(), loops[i], cfg, codegen.Options{SkipAlloc: true})
					if err != nil {
						continue
					}
					refined, st, err := codegen.CompileRefined(context.Background(), loops[i], cfg, codegen.Options{SkipAlloc: true})
					if err != nil {
						continue
					}
					pairs[i] = pair{
						base:     base.Degradation(),
						refined:  refined.Degradation(),
						improved: refined.PartII() < base.PartII(),
						moves:    st.MovesKept,
						baseZero: base.PartII() == base.IdealII(),
						refZero:  refined.PartII() == refined.IdealII(),
					}
				}
			}()
		}
		for i := range loops {
			idx <- i
		}
		close(idx)
		wg.Wait()

		var baseD, refD []float64
		o := RefineOutcome{Cfg: cfg}
		baseZero, refZero := 0, 0
		for _, p := range pairs {
			if p.base == 0 {
				continue // compile error; skipped
			}
			baseD = append(baseD, p.base)
			refD = append(refD, p.refined)
			if p.improved {
				o.LoopsImproved++
			}
			o.MovesKept += p.moves
			if p.baseZero {
				baseZero++
			}
			if p.refZero {
				refZero++
			}
		}
		o.GreedyMean = stats.Mean(baseD)
		o.RefinedMean = stats.Mean(refD)
		if n := len(baseD); n > 0 {
			o.GreedyZero = 100 * float64(baseZero) / float64(n)
			o.RefinedZero = 100 * float64(refZero) / float64(n)
		}
		out = append(out, o)
	}
	return out
}

// FormatRefine renders the study.
func FormatRefine(rows []RefineOutcome) string {
	var sb strings.Builder
	sb.WriteString("iterative refinement study (greedy vs greedy+iteration):\n")
	fmt.Fprintf(&sb, "%-38s %8s %8s %7s %7s %9s %6s\n",
		"machine", "greedy", "refined", "zero%", "zero%'", "improved", "moves")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-38s %8.0f %8.0f %6.1f%% %6.1f%% %9d %6d\n",
			r.Cfg.Name, r.GreedyMean, r.RefinedMean, r.GreedyZero, r.RefinedZero, r.LoopsImproved, r.MovesKept)
	}
	return sb.String()
}
