// Package exper is the experiment harness: it runs the loop suite through
// the code-generation pipeline for each evaluated machine and regenerates
// every table and figure of the paper's Section 6 — Table 1 (IPC of
// clustered software pipelines), Table 2 (degradation over ideal
// schedules, normalized) and Figures 5-7 (histograms of per-loop
// degradation for the 2-, 4- and 8-cluster machines).
package exper

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/scratch"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LoopOutcome records one loop compiled for one machine.
type LoopOutcome struct {
	Loop string
	// Ops is the kernel operation count before copies; KernelCopies and
	// InvariantCopies count the inserted copies.
	Ops, KernelCopies, InvariantCopies int
	// IdealII and PartII are the initiation intervals before and after
	// partitioning.
	IdealII, PartII int
	// IdealIPC and ClusterIPC are kernel operations per cycle; ClusterIPC
	// counts copies only under the embedded model, as in Table 1.
	IdealIPC, ClusterIPC float64
	// Degradation is 100*PartII/IdealII (100 = no degradation).
	Degradation float64
	// Spills and MaxPressure summarize the per-bank register allocation.
	Spills, MaxPressure int
	// Exact carries the optimality-gap telemetry when the exact-solver
	// arms were enabled (nil otherwise); see codegen.ExactReport.
	Exact *codegen.ExactReport
	// Adaptive carries the adaptive-weights arm's adoption telemetry when
	// the arm was enabled and proposed a candidate (nil otherwise); see
	// codegen.AdaptiveReport.
	Adaptive *codegen.AdaptiveReport
	// Err records a pipeline failure (nil outcomes are excluded from
	// aggregates and reported).
	Err error
}

// ConfigResult aggregates a full suite run on one machine.
type ConfigResult struct {
	Cfg      *machine.Config
	Method   string
	Outcomes []LoopOutcome
}

// Degradations returns the per-loop slowdown percentages (0 = none).
func (cr *ConfigResult) Degradations() []float64 {
	out := make([]float64, 0, len(cr.Outcomes))
	for _, o := range cr.Outcomes {
		if o.Err == nil {
			out = append(out, o.Degradation-100)
		}
	}
	return out
}

// normalized returns the per-loop degradations on the paper's 100-based
// scale.
func (cr *ConfigResult) normalized() []float64 {
	out := make([]float64, 0, len(cr.Outcomes))
	for _, o := range cr.Outcomes {
		if o.Err == nil {
			out = append(out, o.Degradation)
		}
	}
	return out
}

// MeanDegradation returns (arithmetic, harmonic) means of the normalized
// degradation — one Table 2 cell pair.
func (cr *ConfigResult) MeanDegradation() (arith, harmonic float64) {
	n := cr.normalized()
	return stats.Mean(n), stats.HarmonicMean(n)
}

// MeanIdealIPC returns the suite's mean ideal IPC (Table 1 "Ideal" row).
func (cr *ConfigResult) MeanIdealIPC() float64 {
	var xs []float64
	for _, o := range cr.Outcomes {
		if o.Err == nil {
			xs = append(xs, o.IdealIPC)
		}
	}
	return stats.Mean(xs)
}

// MeanClusterIPC returns the suite's mean clustered IPC (Table 1
// "Clustered" row).
func (cr *ConfigResult) MeanClusterIPC() float64 {
	var xs []float64
	for _, o := range cr.Outcomes {
		if o.Err == nil {
			xs = append(xs, o.ClusterIPC)
		}
	}
	return stats.Mean(xs)
}

// ZeroDegradationPercent returns the percentage of loops scheduled with no
// degradation at all — the headline number of the Nystrom/Eichenberger
// comparison in Section 6.3.
func (cr *ConfigResult) ZeroDegradationPercent() float64 {
	n, zero := 0, 0
	for _, o := range cr.Outcomes {
		if o.Err != nil {
			continue
		}
		n++
		if o.PartII == o.IdealII {
			zero++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(zero) / float64(n)
}

// Errors returns the failed loops, if any.
func (cr *ConfigResult) Errors() []error {
	var errs []error
	for _, o := range cr.Outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("%s on %s: %w", o.Loop, cr.Cfg.Name, o.Err))
		}
	}
	return errs
}

// Options tunes a suite run through the deprecated RunSuite entry point.
//
// Deprecated: the knobs collapsed into codegen.Config (Workers lives
// there now); call Run with a Config instead. Options survives so
// pre-context call sites keep compiling unchanged.
type Options struct {
	// Codegen is forwarded to the pipeline (partitioner, weights, budget).
	Codegen codegen.Options
	// Workers bounds the parallel compilations; <=0 uses GOMAXPROCS.
	Workers int
	// Tracer instruments the run: one "exper.run_suite" span plus every
	// pipeline stage's spans and counters. It is forwarded to the codegen
	// options unless those already carry a tracer. Nil disables.
	Tracer *trace.Tracer
}

// config collapses the legacy three-struct shape onto the unified Config.
func (o Options) config() codegen.Config {
	cfg := o.Codegen
	if o.Workers != 0 && cfg.Workers == 0 {
		cfg.Workers = o.Workers
	}
	if o.Tracer != nil && cfg.Tracer == nil {
		cfg.Tracer = o.Tracer
	}
	return cfg
}

// RunSuite compiles every loop for every machine with no deadline.
//
// Deprecated: RunSuite is the pre-context shim over Run. It cannot be
// cancelled; a worker panic still propagates to the caller.
func RunSuite(loops []*ir.Loop, cfgs []*machine.Config, opt Options) []*ConfigResult {
	results, err := Run(context.Background(), loops, cfgs, opt.config())
	if err != nil {
		// Run only fails when its context does, and Background has none.
		panic(fmt.Sprintf("exper: RunSuite: impossible error: %v", err))
	}
	return results
}

// Run compiles every loop for every machine and returns one ConfigResult
// per machine in the given order. The work is spread over a single worker
// pool (cfg.Workers goroutines, GOMAXPROCS when <=0) covering every
// (machine, loop) pair, so small per-machine suites still saturate the
// CPUs when several machines are evaluated. Output is deterministic:
// outcomes are indexed by (config, loop) position and the pipeline itself
// has no randomness.
//
// Cancellation: when ctx is cancelled or its deadline expires, in-flight
// compilations abort at their next stage/iteration boundary, queued work
// is dropped, and Run returns the partial results together with a non-nil
// error wrapping ctx.Err(). A panic in a worker is not swallowed (and
// never silently drops a (config, loop) cell): the remaining work is
// cancelled, every worker is joined, and the panic is re-raised on the
// caller's goroutine with the worker's stack.
func Run(ctx context.Context, loops []*ir.Loop, cfgs []*machine.Config, cfg codegen.Config) ([]*ConfigResult, error) {
	method := "rcg-greedy"
	if cfg.Partitioner != nil {
		method = cfg.Partitioner.Name()
	}
	results := make([]*ConfigResult, len(cfgs))
	for ci, c := range cfgs {
		results[ci] = &ConfigResult{Cfg: c, Method: method, Outcomes: make([]LoopOutcome, len(loops))}
	}

	total := len(cfgs) * len(loops)
	if total == 0 {
		return results, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	sp := cfg.Tracer.StartSpan("exper.run_suite")

	// stop cancels the pool's context without touching the caller's: a
	// worker panic stops the suite the same way a caller cancellation
	// does, and after the join we distinguish the two.
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	var panicOnce sync.Once
	var panicVal any
	var panicStack []byte

	type job struct{ ci, li int }
	var wg sync.WaitGroup
	jobs := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						panicStack = debug.Stack()
					})
					stop()
				}
			}()
			// Pin one scratch arena per worker: the worker compiles its
			// jobs sequentially, so every compile on this goroutine reuses
			// the same stage buffers instead of cycling them through the
			// shared pool. Always per-worker — an arena on the caller's
			// Config would be shared across workers, which arenas forbid.
			wcfg := cfg
			wcfg.Scratch = scratch.Get()
			defer wcfg.Scratch.Release()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain the queue without compiling
				}
				results[j.ci].Outcomes[j.li] = compileOne(ctx, loops[j.li], cfgs[j.ci], wcfg)
			}
		}()
	}
feed:
	for ci := range cfgs {
		for li := range loops {
			select {
			case jobs <- job{ci, li}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	sp.Int("machines", int64(len(cfgs))).Int("loops", int64(len(loops))).
		Int("workers", int64(workers))
	if cfg.Cache.Enabled() {
		st := cfg.Cache.Stats()
		sp.Int("cacheHits", st.Hits).Int("cacheMisses", st.Misses).
			Int("cacheEntries", st.Entries).Int("cacheBytes", st.Bytes).
			Int("cacheEvictions", st.Evictions)
	}
	sp.End()
	if panicVal != nil {
		panic(fmt.Sprintf("exper: worker panicked: %v\n\nworker stack:\n%s", panicVal, panicStack))
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("exper: suite run cancelled: %w", err)
	}
	return results, nil
}

func compileOne(ctx context.Context, loop *ir.Loop, cfg *machine.Config, opt codegen.Options) LoopOutcome {
	res, err := codegen.Compile(ctx, loop, cfg, opt)
	if err != nil {
		return LoopOutcome{Loop: loop.Name, Err: err}
	}
	return LoopOutcome{
		Loop:            loop.Name,
		Ops:             len(loop.Body.Ops),
		KernelCopies:    res.Copies.KernelCopies,
		InvariantCopies: res.Copies.InvariantCopies,
		IdealII:         res.IdealII(),
		PartII:          res.PartII(),
		IdealIPC:        res.IdealIPC(),
		ClusterIPC:      res.ClusteredIPC(),
		Degradation:     res.Degradation(),
		Spills:          res.Spills(),
		MaxPressure:     res.MaxPressure(),
		Exact:           res.Exact,
		Adaptive:        res.Adaptive,
	}
}

// Table1 renders the IPC table in the paper's layout: one "Ideal" row and
// one "Clustered" row, columns 2/4/8 clusters x embedded/copy-unit.
// Results must come from PaperConfigs-ordered runs.
func Table1(results []*ConfigResult) string {
	var sb strings.Builder
	sb.WriteString("Table 1. IPC of Clustered Software Pipelines\n")
	sb.WriteString(header(results))
	fmt.Fprintf(&sb, "%-15s", "Ideal")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %9.1f", r.MeanIdealIPC())
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-15s", "Clustered")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %9.1f", r.MeanClusterIPC())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Table2 renders the normalized degradation table: arithmetic and harmonic
// means, 100 = ideal.
func Table2(results []*ConfigResult) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Degradation Over Ideal Schedules - Normalized\n")
	sb.WriteString(header(results))
	fmt.Fprintf(&sb, "%-15s", "Arithmetic Mean")
	for _, r := range results {
		a, _ := r.MeanDegradation()
		fmt.Fprintf(&sb, "  %9.0f", a)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-15s", "Harmonic Mean")
	for _, r := range results {
		_, h := r.MeanDegradation()
		fmt.Fprintf(&sb, "  %9.0f", h)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func header(results []*ConfigResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s", "")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %9s", fmt.Sprintf("%dcl/%s", r.Cfg.Clusters, shortModel(r.Cfg.Model)))
	}
	sb.WriteByte('\n')
	return sb.String()
}

func shortModel(m machine.CopyModel) string {
	if m == machine.CopyUnit {
		return "cu"
	}
	return "emb"
}

// Figure renders the degradation histogram for all results with the given
// cluster count — Figure 5 (2 clusters), 6 (4) or 7 (8).
func Figure(results []*ConfigResult, clusters int) string {
	rows := make(map[string][]float64)
	for _, r := range results {
		if r.Cfg.Clusters == clusters {
			rows[r.Cfg.Model.String()] = stats.Histogram(r.Degradations())
		}
	}
	title := fmt.Sprintf("Achieved II on %d Clusters with %d Units Each (percent of loops per degradation bucket)",
		clusters, 16/clusters)
	return stats.FormatHistogram(title, rows)
}

// Summary renders a per-config overview: mean IPCs, mean degradation,
// zero-degradation share, copies and spills.
func Summary(results []*ConfigResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %8s %8s %8s %8s %7s %8s %7s\n",
		"machine", "IdealIPC", "ClusIPC", "ArithDeg", "HarmDeg", "Zero%", "Copies", "Spills")
	for _, r := range results {
		a, h := r.MeanDegradation()
		copies, spills := 0, 0
		for _, o := range r.Outcomes {
			copies += o.KernelCopies
			spills += o.Spills
		}
		fmt.Fprintf(&sb, "%-36s %8.2f %8.2f %8.0f %8.0f %6.1f%% %8d %7d\n",
			r.Cfg.Name, r.MeanIdealIPC(), r.MeanClusterIPC(), a, h, r.ZeroDegradationPercent(), copies, spills)
	}
	return sb.String()
}

// SummaryWithTrace renders Summary followed by the tracer's aggregate
// per-stage wall-time and counter tables — the breakdown that says where
// the compile time went and why a loop degraded (copies inserted vs. II
// attempts burned). With a nil tracer it is exactly Summary.
func SummaryWithTrace(results []*ConfigResult, tr *trace.Tracer) string {
	s := Summary(results)
	if tr != nil {
		s += "\n" + tr.Summary()
	}
	return s
}

// SortedByDegradation returns outcome indices ordered worst-first, for the
// swpc tool's per-loop reporting.
func (cr *ConfigResult) SortedByDegradation() []int {
	idx := make([]int, len(cr.Outcomes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return cr.Outcomes[idx[a]].Degradation > cr.Outcomes[idx[b]].Degradation
	})
	return idx
}
