package exper

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/stats"
)

// This file is the optimality-gap study: how far from provably optimal is
// the heuristic pipeline, measured with the exact-solver arms of
// internal/exact. Two suite passes per machine — the default greedy
// pipeline and the portfolio with the exact arms enabled — are zipped
// loop by loop. The exact pass is never worse by construction (the greedy
// candidate stays in the portfolio and the exact schedule only replaces
// the heuristic when strictly smaller), so every gap measured here is a
// one-sided bound on what the heuristic leaves on the table.

// exactGapBudget is the wall-clock safety net per exact stage during the
// study. It is deliberately generous: the node budget is the authoritative
// bound (results stay a pure function of it), the clock only rescues a
// pathological machine.
const exactGapBudget = 30 * time.Second

// ExactGapPoint aggregates the gap study on one machine.
type ExactGapPoint struct {
	Cfg *machine.Config
	// Loops counts the loops both passes compiled successfully.
	Loops int
	// SchedRan counts loops where the exact scheduler engaged (searched or
	// certified at the lower bound); SchedProven of those ended with the
	// final II proven optimal, Exhausted with the node budget spent first.
	SchedRan, SchedProven, Exhausted int
	// IIWins counts loops where the exact search found a strictly smaller
	// clustered II than the heuristic; IIGapSum is the total cycles
	// recovered (Σ heuristic II − exact II over those loops).
	IIWins, IIGapSum int
	// ProvenTight counts proven-optimal loops where the heuristic already
	// matched the optimum — the heuristic's certified successes.
	ProvenTight int
	// PartRan/PartProven/PartWins count the branch-and-bound bank
	// assignment arm: sized-in, tree exhausted, and adopted-by-scoring.
	PartRan, PartProven, PartWins int
	// SpillWins counts loops where the exact pass spilled strictly less;
	// SpillGapSum is the total spills avoided.
	SpillWins, SpillGapSum int
	// GreedyDeg and ExactDeg are the arithmetic mean degradations
	// (100 = ideal) of the two passes over the zipped loops.
	GreedyDeg, ExactDeg float64
	// Nodes is the total search nodes both arms spent across the suite.
	Nodes int64
}

// ExactGapStudy runs the study on every machine. nodes caps each solver
// invocation's search nodes (0 = the internal/exact defaults); the study
// is deterministic for a fixed nodes value.
func ExactGapStudy(loops []*ir.Loop, cfgs []*machine.Config, workers int, nodes int64) []ExactGapPoint {
	greedy := RunSuite(loops, cfgs, Options{
		Workers: workers,
		Codegen: codegen.Options{},
	})
	exactRes := RunSuite(loops, cfgs, Options{
		Workers: workers,
		Codegen: codegen.Options{
			Partitioner: partition.Portfolio{},
			ExactBudget: exactGapBudget,
			ExactNodes:  nodes,
		},
	})

	points := make([]ExactGapPoint, 0, len(cfgs))
	for ci, cfg := range cfgs {
		p := ExactGapPoint{Cfg: cfg}
		var gDeg, eDeg []float64
		for li := range loops {
			g, e := greedy[ci].Outcomes[li], exactRes[ci].Outcomes[li]
			if g.Err != nil || e.Err != nil {
				continue
			}
			p.Loops++
			gDeg = append(gDeg, g.Degradation)
			eDeg = append(eDeg, e.Degradation)
			if e.Spills < g.Spills {
				p.SpillWins++
				p.SpillGapSum += g.Spills - e.Spills
			}
			rep := e.Exact
			if rep == nil {
				continue
			}
			p.Nodes += rep.SchedNodes + rep.PartNodes
			if rep.PartRan {
				p.PartRan++
				if rep.PartProven {
					p.PartProven++
				}
				if rep.PartWon {
					p.PartWins++
				}
			}
			if !rep.SchedRan {
				continue
			}
			p.SchedRan++
			if rep.SchedProven {
				p.SchedProven++
				if rep.II == rep.HeuristicII {
					p.ProvenTight++
				}
			} else {
				p.Exhausted++
			}
			if rep.II < rep.HeuristicII {
				p.IIWins++
				p.IIGapSum += rep.HeuristicII - rep.II
			}
		}
		p.GreedyDeg = stats.Mean(gDeg)
		p.ExactDeg = stats.Mean(eDeg)
		points = append(points, p)
	}
	return points
}

// FormatExactGap renders the study as the EXPERIMENTS.md gap table.
func FormatExactGap(points []ExactGapPoint) string {
	var sb strings.Builder
	sb.WriteString("Optimality gap: heuristic vs. exact arms (branch and bound)\n")
	fmt.Fprintf(&sb, "%-12s %6s %7s %7s %7s %6s %6s %6s %7s %8s %8s %9s\n",
		"machine", "loops", "schRun", "proven", "exhaus", "tight", "IIwin", "IIgap",
		"partPf", "grdyDeg", "exctDeg", "nodes")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-12s %6d %7d %7d %7d %6d %6d %6d %3d/%-3d %8.0f %8.0f %9d\n",
			fmt.Sprintf("%dcl/%s", p.Cfg.Clusters, shortModel(p.Cfg.Model)),
			p.Loops, p.SchedRan, p.SchedProven, p.Exhausted, p.ProvenTight,
			p.IIWins, p.IIGapSum, p.PartProven, p.PartRan,
			p.GreedyDeg, p.ExactDeg, p.Nodes)
	}
	sb.WriteString("(schRun: exact scheduler engaged; proven: final II certified optimal;\n")
	sb.WriteString(" exhaus: node budget spent unproven; tight: heuristic matched the optimum;\n")
	sb.WriteString(" IIwin/IIgap: loops improved and total cycles recovered; partPf:\n")
	sb.WriteString(" bank-assignment trees exhausted / searched; degradation means 100 = ideal.\n")
	sb.WriteString(" Portfolio scoring is lexicographic on (spills, pressure, II), so exctDeg\n")
	sb.WriteString(" may exceed grdyDeg on loops where it trades II for fewer spills.)\n")
	return sb.String()
}
