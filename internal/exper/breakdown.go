package exper

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// ArchetypeRow summarizes one loop family within a suite run.
type ArchetypeRow struct {
	Name  string
	Loops int
	// MeanIdealIPC and MeanDegradation aggregate the family.
	MeanIdealIPC    float64
	MeanDegradation float64
	// ZeroPercent is the share of the family with no degradation.
	ZeroPercent float64
	// MeanCopies is kernel copies per loop.
	MeanCopies float64
}

// Breakdown groups a config's outcomes by loop archetype (the suffix of
// the generated loop name) and aggregates each family. It answers the
// analysis question the paper's aggregate tables cannot: which kinds of
// loops pay for partitioning — the answer being recurrence-free streaming
// code barely pays while tightly coupled dataflow (butterflies, shared
// subexpressions) and narrow serial loops pay most.
func Breakdown(cr *ConfigResult) []ArchetypeRow {
	type acc struct {
		ipc, deg, copies []float64
		zero             int
	}
	groups := make(map[string]*acc)
	for _, o := range cr.Outcomes {
		if o.Err != nil {
			continue
		}
		name := o.Loop
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		g := groups[name]
		if g == nil {
			g = &acc{}
			groups[name] = g
		}
		g.ipc = append(g.ipc, o.IdealIPC)
		g.deg = append(g.deg, o.Degradation)
		g.copies = append(g.copies, float64(o.KernelCopies))
		if o.PartII == o.IdealII {
			g.zero++
		}
	}
	rows := make([]ArchetypeRow, 0, len(groups))
	for name, g := range groups {
		rows = append(rows, ArchetypeRow{
			Name:            name,
			Loops:           len(g.deg),
			MeanIdealIPC:    stats.Mean(g.ipc),
			MeanDegradation: stats.Mean(g.deg),
			ZeroPercent:     100 * float64(g.zero) / float64(len(g.deg)),
			MeanCopies:      stats.Mean(g.copies),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MeanDegradation != rows[j].MeanDegradation {
			return rows[i].MeanDegradation > rows[j].MeanDegradation
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// FormatBreakdown renders the archetype table for one config.
func FormatBreakdown(cr *ConfigResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-archetype breakdown on %s:\n", cr.Cfg.Name)
	fmt.Fprintf(&sb, "%-12s %6s %9s %9s %7s %8s\n", "archetype", "loops", "idealIPC", "meanDeg", "zero%", "copies")
	for _, r := range Breakdown(cr) {
		fmt.Fprintf(&sb, "%-12s %6d %9.2f %9.0f %6.1f%% %8.1f\n",
			r.Name, r.Loops, r.MeanIdealIPC, r.MeanDegradation, r.ZeroPercent, r.MeanCopies)
	}
	return sb.String()
}
