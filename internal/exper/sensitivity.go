package exper

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

// CopyLatencyPoint is one row of the Section 6.3 sensitivity experiment.
type CopyLatencyPoint struct {
	// IntLat and FloatLat are the inter-cluster copy latencies used.
	IntLat, FloatLat int
	// ArithMean is the normalized mean degradation.
	ArithMean float64
	// ZeroPercent is the share of loops with no degradation.
	ZeroPercent float64
}

// CopyLatencySweep quantifies the paper's Section 6.3 conjecture: "our
// longer latency times for copies may have had a significant effect on the
// number of loops that we could schedule without degradation. We used
// latency of 2 cycles for integer copies and 3 for floating point values,
// while Nystrom and Eichenberger used latency of 1 for all non-local
// access." The sweep re-runs the suite on one clustered machine with copy
// latencies (1,1) — the Nystrom/Eichenberger assumption — then (2,3) — the
// paper's — and beyond, reporting how the zero-degradation share responds.
func CopyLatencySweep(loops []*ir.Loop, clusters int, model machine.CopyModel, workers int) ([]CopyLatencyPoint, error) {
	pairs := [][2]int{{1, 1}, {2, 3}, {4, 6}}
	points := make([]CopyLatencyPoint, 0, len(pairs))
	for _, p := range pairs {
		lat := machine.PaperLatencies()
		lat.CopyInt, lat.CopyFloat = p[0], p[1]
		cfg, err := machine.New(
			fmt.Sprintf("16-wide, %d clusters (%s), copies %d/%d", clusters, model, p[0], p[1]),
			16, clusters, 32, model, lat)
		if err != nil {
			return nil, err
		}
		results := RunSuite(loops, []*machine.Config{cfg}, Options{
			Workers: workers,
			Codegen: codegen.Options{SkipAlloc: true},
		})
		if errs := results[0].Errors(); len(errs) > 0 {
			return nil, errs[0]
		}
		a, _ := results[0].MeanDegradation()
		points = append(points, CopyLatencyPoint{
			IntLat: p[0], FloatLat: p[1],
			ArithMean:   a,
			ZeroPercent: results[0].ZeroDegradationPercent(),
		})
	}
	return points, nil
}

// FormatCopyLatencySweep renders the sweep.
func FormatCopyLatencySweep(points []CopyLatencyPoint, clusters int, model machine.CopyModel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "copy-latency sensitivity, %d clusters (%s):\n", clusters, model)
	fmt.Fprintf(&sb, "%-12s %9s %7s\n", "int/float", "arithDeg", "zero%")
	for _, p := range points {
		fmt.Fprintf(&sb, "%d / %-8d %9.0f %6.1f%%\n", p.IntLat, p.FloatLat, p.ArithMean, p.ZeroPercent)
	}
	return sb.String()
}
