package exper

import (
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

// UnitsStudy tests the paper's Section 6.1 aside that its general-purpose
// functional units "potentially make the partitioning more difficult for
// the very reason that they make software pipelining easier and thus
// we're attempting to partition software pipelines with fewer holes than
// might be expected in more realistic architectures." It compiles the
// suite for an 8-wide 2-cluster machine twice: once with general-purpose
// units (the paper's model) and once with TI-C6x-style typed units
// (L/S/M/D per cluster), and reports ideal IPC and degradation for both.
// The expectation: the typed machine pipelines less densely (lower ideal
// IPC — more holes) and therefore loses less to partitioning.
func UnitsStudy(loops []*ir.Loop, workers int) []*ConfigResult {
	general, err := machine.New("8-wide, 2 clusters of 4 general units", 8, 2, 32, machine.Embedded, machine.PaperLatencies())
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	c6x := machine.C6xLike(machine.Embedded)
	return RunSuite(loops, []*machine.Config{general, c6x}, Options{
		Workers: workers,
		Codegen: codegen.Options{SkipAlloc: true},
	})
}

// FormatUnits renders the study.
func FormatUnits(results []*ConfigResult) string {
	var sb strings.Builder
	sb.WriteString("functional-unit generality study (Section 6.1 aside):\n")
	sb.WriteString(Summary(results))
	sb.WriteString("\nLower ideal IPC on the typed machine means more schedule holes,\n")
	sb.WriteString("which is exactly where inter-cluster copies hide.\n")
	return sb.String()
}
