package exper

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/stats"
)

// PressureRow aggregates register-bank pressure for one machine.
type PressureRow struct {
	Cfg *machine.Config
	// MeanMaxPressure is the suite mean of each loop's worst per-bank
	// pressure; MeanII contextualizes it (more overlap, more live values).
	MeanMaxPressure float64
	MeanII          float64
	// Spills is the total spilled registers across the suite.
	Spills int
	// SpillLoops counts loops with at least one spill.
	SpillLoops int
}

// PressureStudy quantifies the paper's introductory claim that clustering
// trades port count against per-bank pressure: "cluster-partitioned
// register banks would allow for better allocation ... at the expense of
// adding additional complexity to assigning registers within each
// partition as additional pressure is put on each register bank due to
// increased parallelism." The study runs the suite with full per-bank
// Chaitin/Briggs allocation on the ideal machine and every clustered
// machine, reporting how the worst bank's pressure and the spill counts
// respond to the cluster count.
func PressureStudy(loops []*ir.Loop, workers int) []PressureRow {
	cfgs := append([]*machine.Config{machine.Ideal16()}, machine.PaperConfigs()...)
	results := RunSuite(loops, cfgs, Options{Workers: workers})
	rows := make([]PressureRow, 0, len(results))
	for _, r := range results {
		var press, iis []float64
		spills, spillLoops := 0, 0
		for _, o := range r.Outcomes {
			if o.Err != nil {
				continue
			}
			press = append(press, float64(o.MaxPressure))
			iis = append(iis, float64(o.PartII))
			spills += o.Spills
			if o.Spills > 0 {
				spillLoops++
			}
		}
		rows = append(rows, PressureRow{
			Cfg:             r.Cfg,
			MeanMaxPressure: stats.Mean(press),
			MeanII:          stats.Mean(iis),
			Spills:          spills,
			SpillLoops:      spillLoops,
		})
	}
	return rows
}

// FormatPressure renders the study.
func FormatPressure(rows []PressureRow) string {
	var sb strings.Builder
	sb.WriteString("register pressure study (32 registers per bank on clustered machines):\n")
	fmt.Fprintf(&sb, "%-38s %9s %7s %7s %11s\n", "machine", "meanPress", "meanII", "spills", "spill loops")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-38s %9.1f %7.1f %7d %11d\n",
			r.Cfg.Name, r.MeanMaxPressure, r.MeanII, r.Spills, r.SpillLoops)
	}
	return sb.String()
}
