package exper

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/stats"
)

// SchedulerRow compares the two modulo scheduling modes on one machine.
type SchedulerRow struct {
	Cfg *machine.Config
	// RauPressure / SwingPressure are suite means of the worst per-bank
	// register pressure under the two modes.
	RauPressure, SwingPressure float64
	// RauSpills / SwingSpills total spilled registers.
	RauSpills, SwingSpills int
	// RauDeg / SwingDeg are mean degradations (the modes share the II
	// search, so these should track each other closely).
	RauDeg, SwingDeg float64
}

// SchedulerStudy measures the Section 6.3 scheduler axis: the paper uses
// "standard modulo scheduling as described by Rau" while Nystrom and
// Eichenberger use Swing scheduling "that attempts to reduce register
// requirements. Certainly this could have an effect." The study compiles
// the suite under both placement policies and reports the register
// pressure and spill difference the lifetime-sensitive mode buys.
func SchedulerStudy(loops []*ir.Loop, cfgs []*machine.Config, workers int) []SchedulerRow {
	rows := make([]SchedulerRow, 0, len(cfgs))
	for _, cfg := range cfgs {
		rau := RunSuite(loops, []*machine.Config{cfg}, Options{
			Workers: workers, Codegen: codegen.Options{},
		})[0]
		swing := RunSuite(loops, []*machine.Config{cfg}, Options{
			Workers: workers, Codegen: codegen.Options{LifetimeSched: true},
		})[0]
		row := SchedulerRow{Cfg: cfg}
		var rp, sp, rd, sd []float64
		for _, o := range rau.Outcomes {
			if o.Err == nil {
				rp = append(rp, float64(o.MaxPressure))
				rd = append(rd, o.Degradation)
				row.RauSpills += o.Spills
			}
		}
		for _, o := range swing.Outcomes {
			if o.Err == nil {
				sp = append(sp, float64(o.MaxPressure))
				sd = append(sd, o.Degradation)
				row.SwingSpills += o.Spills
			}
		}
		row.RauPressure, row.SwingPressure = stats.Mean(rp), stats.Mean(sp)
		row.RauDeg, row.SwingDeg = stats.Mean(rd), stats.Mean(sd)
		rows = append(rows, row)
	}
	return rows
}

// FormatScheduler renders the study.
func FormatScheduler(rows []SchedulerRow) string {
	var sb strings.Builder
	sb.WriteString("scheduler study: Rau vs lifetime-sensitive (swing-flavored) placement:\n")
	fmt.Fprintf(&sb, "%-38s %9s %9s %8s %8s %8s %8s\n",
		"machine", "rauPress", "swPress", "rauSpill", "swSpill", "rauDeg", "swDeg")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-38s %9.1f %9.1f %8d %8d %8.0f %8.0f\n",
			r.Cfg.Name, r.RauPressure, r.SwingPressure, r.RauSpills, r.SwingSpills, r.RauDeg, r.SwingDeg)
	}
	return sb.String()
}
