package ir

// RegIndex is a dense numbering of the symbolic registers of one block: a
// one-time ir.Reg -> small-integer mapping that the pipeline's hot stages
// (dependence analysis, live-range extraction, RCG construction, copy
// insertion) share so their per-register state lives in flat slices
// instead of maps. Indices are assigned in first-appearance order (defs
// before uses within an operation), which is deterministic for a given
// block.
//
// A RegIndex is not safe for concurrent mutation; build one per
// compilation (or per rewritten body) and treat it as read-only
// afterwards. Reset allows pooled reuse.
type RegIndex struct {
	regs []Reg
	// ids maps class -> register ID -> dense index + 1 (0 = absent). The
	// two paper classes use the first two rows; any further class grows
	// the table on demand.
	ids [][]int32
}

// NewRegIndex numbers every register mentioned in the block.
func NewRegIndex(b *Block) *RegIndex {
	ri := &RegIndex{}
	ri.Reset(b)
	return ri
}

// Reset rebuilds the index for a new block, reusing prior capacity.
func (ri *RegIndex) Reset(b *Block) {
	if b == nil {
		ri.ResetOps(nil)
		return
	}
	ri.ResetOps(b.Ops)
}

// ResetOps rebuilds the index over an operation slice, reusing prior
// capacity — for callers that hold ops without a Block (e.g. a dependence
// graph's op view).
func (ri *RegIndex) ResetOps(ops []*Op) {
	ri.regs = ri.regs[:0]
	for c := range ri.ids {
		row := ri.ids[c]
		for i := range row {
			row[i] = 0
		}
	}
	for _, op := range ops {
		for _, d := range op.Defs {
			ri.Add(d)
		}
		for _, u := range op.Uses {
			ri.Add(u)
		}
	}
}

// Len returns the number of distinct registers indexed.
func (ri *RegIndex) Len() int { return len(ri.regs) }

// Add interns r, returning its dense index (existing or new).
func (ri *RegIndex) Add(r Reg) int {
	row := ri.row(r)
	if v := row[r.ID]; v != 0 {
		return int(v - 1)
	}
	i := len(ri.regs)
	ri.regs = append(ri.regs, r)
	row[r.ID] = int32(i + 1)
	return i
}

// Of returns the dense index of r, or -1 when r was never indexed.
func (ri *RegIndex) Of(r Reg) int {
	c := int(r.Class)
	if c >= len(ri.ids) || r.ID < 0 || r.ID >= len(ri.ids[c]) {
		return -1
	}
	return int(ri.ids[c][r.ID]) - 1
}

// Reg returns the register at dense index i.
func (ri *RegIndex) Reg(i int) Reg { return ri.regs[i] }

// Regs exposes the dense-order register slice (read-only; aliases the
// index's internal storage).
func (ri *RegIndex) Regs() []Reg { return ri.regs }

// AppendSorted appends the indexed registers in (class, ID) order to dst
// and returns it — the deterministic iteration order Block.Registers
// established, without the map.
func (ri *RegIndex) AppendSorted(dst []Reg) []Reg {
	dst = append(dst, ri.regs...)
	SortRegs(dst[len(dst)-len(ri.regs):])
	return dst
}

// row returns the class row for r, growing the table so r.ID is in range.
func (ri *RegIndex) row(r Reg) []int32 {
	c := int(r.Class)
	for c >= len(ri.ids) {
		ri.ids = append(ri.ids, nil)
	}
	row := ri.ids[c]
	if r.ID >= len(row) {
		n := len(row)*2 + 16
		if n <= r.ID {
			n = r.ID + 16
		}
		nrow := make([]int32, n)
		copy(nrow, row)
		row = nrow
		ri.ids[c] = row
	}
	return row
}
