package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{Reg{ID: 1, Class: Int}, "r1"},
		{Reg{ID: 42, Class: Float}, "f42"},
		{Reg{ID: 7, Class: Int}, "r7"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestNoRegInvalid(t *testing.T) {
	if !NoReg.Invalid() {
		t.Error("NoReg must be invalid")
	}
	if (Reg{ID: 3, Class: Float}).Invalid() {
		t.Error("real register reported invalid")
	}
}

func TestClassString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" {
		t.Errorf("class names wrong: %q %q", Int, Float)
	}
	if !strings.Contains(Class(9).String(), "9") {
		t.Errorf("unknown class should include its value: %q", Class(9))
	}
}

func TestOpcodeProperties(t *testing.T) {
	for _, o := range Opcodes() {
		if o.String() == "" || strings.Contains(o.String(), "opcode(") {
			t.Errorf("opcode %d has no mnemonic", o)
		}
	}
	if !Load.IsMemory() || !Store.IsMemory() {
		t.Error("load/store must be memory ops")
	}
	if Add.IsMemory() || Copy.IsMemory() {
		t.Error("add/copy are not memory ops")
	}
	if Store.HasDef() {
		t.Error("store defines nothing")
	}
	if !Load.HasDef() || !Copy.HasDef() {
		t.Error("load/copy define a register")
	}
}

func TestMemRefString(t *testing.T) {
	tests := []struct {
		m    MemRef
		want string
	}{
		{MemRef{Base: "a", Coeff: 0, Offset: 3}, "a[3]"},
		{MemRef{Base: "a", Coeff: 2, Offset: 0}, "a[2*i]"},
		{MemRef{Base: "a", Coeff: 1, Offset: 4}, "a[1*i+4]"},
		{MemRef{Base: "a", Coeff: 1, Offset: -2}, "a[1*i-2]"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestOpString(t *testing.T) {
	op := &Op{
		Code:  Mul,
		Class: Float,
		Defs:  []Reg{{ID: 5, Class: Float}},
		Uses:  []Reg{{ID: 1, Class: Float}, {ID: 2, Class: Float}},
	}
	if got := op.String(); got != "mult f5, f1, f2" {
		t.Errorf("op string = %q", got)
	}
	st := &Op{Code: Store, Class: Int, Uses: []Reg{{ID: 9, Class: Int}}, Mem: &MemRef{Base: "x", Coeff: 1}}
	if got := st.String(); got != "store x[1*i], r9" {
		t.Errorf("store string = %q", got)
	}
	ld := &Op{Code: Load, Class: Int, Defs: []Reg{{ID: 3, Class: Int}}, Mem: &MemRef{Base: "y", Coeff: 1}}
	if got := ld.String(); got != "load r3, y[1*i]" {
		t.Errorf("load string = %q", got)
	}
	im := &Op{Code: LoadImm, Class: Int, Defs: []Reg{{ID: 3, Class: Int}}, Imm: -7}
	if got := im.String(); got != "loadi r3, #-7" {
		t.Errorf("loadi string = %q", got)
	}
}

func TestOpAccessors(t *testing.T) {
	r1, r2, r3 := Reg{ID: 1, Class: Int}, Reg{ID: 2, Class: Int}, Reg{ID: 3, Class: Int}
	op := &Op{Code: Add, Class: Int, Defs: []Reg{r3}, Uses: []Reg{r1, r2}}
	if op.Def() != r3 {
		t.Error("Def() wrong")
	}
	if !op.ReadsReg(r1) || !op.ReadsReg(r2) || op.ReadsReg(r3) {
		t.Error("ReadsReg wrong")
	}
	if !op.WritesReg(r3) || op.WritesReg(r1) {
		t.Error("WritesReg wrong")
	}
	st := &Op{Code: Store, Class: Int, Uses: []Reg{r1}, Mem: &MemRef{Base: "a"}}
	if st.Def() != NoReg {
		t.Error("store Def() should be NoReg")
	}
}

func TestOpCloneIsDeep(t *testing.T) {
	op := &Op{
		Code: Load, Class: Float,
		Defs: []Reg{{ID: 1, Class: Float}},
		Mem:  &MemRef{Base: "a", Coeff: 1, Offset: 2},
	}
	c := op.Clone()
	c.Defs[0] = Reg{ID: 99, Class: Float}
	c.Mem.Offset = 77
	if op.Defs[0].ID != 1 || op.Mem.Offset != 2 {
		t.Error("Clone shares state with the original")
	}
}

func TestOpClonePreservesFields(t *testing.T) {
	f := func(id int, imm int64, off int) bool {
		if id < 0 {
			id = -id
		}
		op := &Op{
			Code: Load, Class: Float,
			Defs: []Reg{{ID: id%1000 + 1, Class: Float}},
			Imm:  imm,
			Mem:  &MemRef{Base: "a", Coeff: 1, Offset: off % 100},
		}
		c := op.Clone()
		return c.Code == op.Code && c.Class == op.Class &&
			c.Defs[0] == op.Defs[0] && c.Imm == op.Imm && *c.Mem == *op.Mem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
