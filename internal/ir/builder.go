package ir

// Builder offers a fluent way to emit operations into a block while
// allocating registers from an owning Loop or Function. It exists so tests,
// examples and the synthetic loop generator can construct IR without
// hand-rolling Op literals.
type Builder struct {
	block  *Block
	newReg func(Class) Reg
}

// NewLoopBuilder returns a builder emitting into the loop's body.
func NewLoopBuilder(l *Loop) *Builder {
	return &Builder{block: l.Body, newReg: l.NewReg}
}

// NewBlockBuilder returns a builder emitting into b, allocating registers
// from f.
func NewBlockBuilder(f *Function, b *Block) *Builder {
	return &Builder{block: b, newReg: f.NewReg}
}

// Block returns the block being built.
func (bd *Builder) Block() *Block { return bd.block }

// Emit appends a fully formed operation.
func (bd *Builder) Emit(op *Op) *Op { return bd.block.Append(op) }

// Load emits a load of class c from the given memory reference, returning
// the destination register.
func (bd *Builder) Load(c Class, mem MemRef) Reg {
	d := bd.newReg(c)
	m := mem
	bd.Emit(&Op{Code: Load, Class: c, Defs: []Reg{d}, Mem: &m})
	return d
}

// Store emits a store of src to the given memory reference.
func (bd *Builder) Store(src Reg, mem MemRef) {
	m := mem
	bd.Emit(&Op{Code: Store, Class: src.Class, Uses: []Reg{src}, Mem: &m})
}

// Imm emits a constant materialization of class c.
func (bd *Builder) Imm(c Class, v int64) Reg {
	d := bd.newReg(c)
	bd.Emit(&Op{Code: LoadImm, Class: c, Defs: []Reg{d}, Imm: v})
	return d
}

// binary emits a two-source arithmetic operation.
func (bd *Builder) binary(code Opcode, a, b Reg) Reg {
	d := bd.newReg(a.Class)
	bd.Emit(&Op{Code: code, Class: a.Class, Defs: []Reg{d}, Uses: []Reg{a, b}})
	return d
}

// Add emits d = a + b.
func (bd *Builder) Add(a, b Reg) Reg { return bd.binary(Add, a, b) }

// Sub emits d = a - b.
func (bd *Builder) Sub(a, b Reg) Reg { return bd.binary(Sub, a, b) }

// Mul emits d = a * b.
func (bd *Builder) Mul(a, b Reg) Reg { return bd.binary(Mul, a, b) }

// Div emits d = a / b.
func (bd *Builder) Div(a, b Reg) Reg { return bd.binary(Div, a, b) }

// And emits d = a & b.
func (bd *Builder) And(a, b Reg) Reg { return bd.binary(And, a, b) }

// Or emits d = a | b.
func (bd *Builder) Or(a, b Reg) Reg { return bd.binary(Or, a, b) }

// Xor emits d = a ^ b.
func (bd *Builder) Xor(a, b Reg) Reg { return bd.binary(Xor, a, b) }

// Shl emits d = a << b.
func (bd *Builder) Shl(a, b Reg) Reg { return bd.binary(Shl, a, b) }

// Shr emits d = a >> b.
func (bd *Builder) Shr(a, b Reg) Reg { return bd.binary(Shr, a, b) }

// Cmp emits an integer comparison of a and b.
func (bd *Builder) Cmp(a, b Reg) Reg {
	d := bd.newReg(Int)
	bd.Emit(&Op{Code: Cmp, Class: Int, Defs: []Reg{d}, Uses: []Reg{a, b}})
	return d
}

// Neg emits d = -a.
func (bd *Builder) Neg(a Reg) Reg {
	d := bd.newReg(a.Class)
	bd.Emit(&Op{Code: Neg, Class: a.Class, Defs: []Reg{d}, Uses: []Reg{a}})
	return d
}

// Cvt emits a class conversion of a into class c.
func (bd *Builder) Cvt(c Class, a Reg) Reg {
	d := bd.newReg(c)
	bd.Emit(&Op{Code: Cvt, Class: c, Defs: []Reg{d}, Uses: []Reg{a}})
	return d
}

// AddInto emits "dst = a + b" reusing an existing destination register.
// Recurrences (accumulators updated every iteration) need in-place updates,
// which the fresh-register helpers cannot express.
func (bd *Builder) AddInto(dst, a, b Reg) {
	bd.Emit(&Op{Code: Add, Class: dst.Class, Defs: []Reg{dst}, Uses: []Reg{a, b}})
}

// MulInto emits "dst = a * b" reusing an existing destination register.
func (bd *Builder) MulInto(dst, a, b Reg) {
	bd.Emit(&Op{Code: Mul, Class: dst.Class, Defs: []Reg{dst}, Uses: []Reg{a, b}})
}

// Select emits d = cond != 0 ? a : b (a conditional move, the residue of
// IF-conversion). cond must be an integer value; a and b share d's class.
func (bd *Builder) Select(cond, a, b Reg) Reg {
	d := bd.newReg(a.Class)
	bd.Emit(&Op{Code: Select, Class: a.Class, Defs: []Reg{d}, Uses: []Reg{cond, a, b}})
	return d
}

// Copy emits an explicit register copy (used by tests; the partitioning
// phase inserts its own copies directly).
func (bd *Builder) Copy(src Reg) Reg {
	d := bd.newReg(src.Class)
	bd.Emit(&Op{Code: Copy, Class: src.Class, Defs: []Reg{d}, Uses: []Reg{src}})
	return d
}
