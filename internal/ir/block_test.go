package ir

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func twoLaneLoop() *Loop {
	l := NewLoop("test")
	b := NewLoopBuilder(l)
	inv := l.NewReg(Float) // live-in invariant
	la := b.Load(Float, MemRef{Base: "a", Coeff: 1})
	m := b.Mul(la, inv)
	b.Store(m, MemRef{Base: "c", Coeff: 1})
	return l
}

func TestAppendAssignsIDs(t *testing.T) {
	l := twoLaneLoop()
	for i, op := range l.Body.Ops {
		if op.ID != i {
			t.Errorf("op %d has ID %d", i, op.ID)
		}
	}
}

func TestRenumber(t *testing.T) {
	l := twoLaneLoop()
	l.Body.Ops[0], l.Body.Ops[1] = l.Body.Ops[1], l.Body.Ops[0]
	l.Body.Renumber()
	for i, op := range l.Body.Ops {
		if op.ID != i {
			t.Errorf("after Renumber op %d has ID %d", i, op.ID)
		}
	}
}

func TestRegistersSortedAndComplete(t *testing.T) {
	l := twoLaneLoop()
	regs := l.Body.Registers()
	if len(regs) != 3 {
		t.Fatalf("got %d registers, want 3: %v", len(regs), regs)
	}
	if !sort.SliceIsSorted(regs, func(i, j int) bool {
		if regs[i].Class != regs[j].Class {
			return regs[i].Class < regs[j].Class
		}
		return regs[i].ID < regs[j].ID
	}) {
		t.Errorf("registers not sorted: %v", regs)
	}
}

func TestLiveIns(t *testing.T) {
	l := twoLaneLoop()
	live := l.Body.LiveIns()
	if len(live) != 1 {
		t.Fatalf("live-ins = %v, want exactly the invariant", live)
	}
	if live[0].ID != 1 {
		t.Errorf("live-in = %v, want f1", live[0])
	}
}

func TestLiveInsAccumulator(t *testing.T) {
	// An accumulator (used and defined by the same op) is upward exposed.
	l := NewLoop("acc")
	b := NewLoopBuilder(l)
	acc := l.NewReg(Int)
	ld := b.Load(Int, MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	live := l.Body.LiveIns()
	if len(live) != 1 || live[0] != acc {
		t.Errorf("live-ins = %v, want [%v]", live, acc)
	}
}

func TestDefined(t *testing.T) {
	l := twoLaneLoop()
	defs := l.Body.Defined()
	if len(defs) != 2 {
		t.Errorf("defined = %v, want the load and mul results", defs)
	}
}

func TestBlockCloneIndependent(t *testing.T) {
	l := twoLaneLoop()
	c := l.Body.Clone()
	c.Ops[0].Defs[0] = Reg{ID: 99, Class: Float}
	if l.Body.Ops[0].Defs[0].ID == 99 {
		t.Error("block clone shares ops")
	}
	if !reflect.DeepEqual(l.Clone().Body.String(), l.Body.String()) {
		t.Error("loop clone should print identically")
	}
}

func TestLoopNewRegUnique(t *testing.T) {
	l := NewLoop("u")
	seen := make(map[Reg]bool)
	for i := 0; i < 100; i++ {
		r := l.NewReg(Class(i % 2))
		if seen[r] {
			t.Fatalf("duplicate register %v", r)
		}
		seen[r] = true
	}
}

func TestReserveRegID(t *testing.T) {
	l := NewLoop("r")
	l.ReserveRegID(50)
	if r := l.NewReg(Int); r.ID != 51 {
		t.Errorf("NewReg after ReserveRegID(50) = %d, want 51", r.ID)
	}
	l.ReserveRegID(10) // lower than current: no-op
	if r := l.NewReg(Int); r.ID != 52 {
		t.Errorf("NewReg = %d, want 52", r.ID)
	}
}

func TestSortRegsProperty(t *testing.T) {
	f := func(ids []int16) bool {
		regs := make([]Reg, len(ids))
		for i, id := range ids {
			v := int(id)
			if v < 0 {
				v = -v
			}
			regs[i] = Reg{ID: v%100 + 1, Class: Class(v % 2)}
		}
		SortRegs(regs)
		for i := 1; i < len(regs); i++ {
			a, b := regs[i-1], regs[i]
			if a.Class > b.Class || (a.Class == b.Class && a.ID > b.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctionBlocksAndRegs(t *testing.T) {
	f := NewFunction("f")
	b0 := f.NewBlock(0)
	b1 := f.NewBlock(2)
	bd0 := NewBlockBuilder(f, b0)
	bd1 := NewBlockBuilder(f, b1)
	x := bd0.Imm(Int, 1)
	y := bd1.Add(x, x)
	_ = y
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if b1.Depth != 2 {
		t.Errorf("depth = %d", b1.Depth)
	}
	regs := f.Registers()
	if len(regs) != 2 {
		t.Errorf("function registers = %v", regs)
	}
	if err := VerifyFunction(f); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	l := twoLaneLoop()
	s := l.String()
	for _, want := range []string{"loop test", "load f2", "mult f3, f2, f1", "store c[1*i], f3"} {
		if !strings.Contains(s, want) {
			t.Errorf("loop dump missing %q:\n%s", want, s)
		}
	}
}
