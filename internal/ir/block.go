package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a straight-line sequence of operations. Blocks are the unit of
// dependence analysis and scheduling; a software-pipelined loop has exactly
// one block (its kernel body), matching the paper's test suite of
// single-block innermost loops.
type Block struct {
	// Ops holds the operations in program order.
	Ops []*Op
	// Depth is the loop nesting depth of the block; it feeds the RCG node
	// and edge weights ("Nesting Depth", Section 5). The innermost loops of
	// the experimental suite all use depth 1; straight-line code uses 0.
	Depth int
}

// Append adds op to the end of the block and assigns its ID.
func (b *Block) Append(op *Op) *Op {
	op.ID = len(b.Ops)
	b.Ops = append(b.Ops, op)
	return op
}

// Renumber reassigns sequential IDs after insertions or deletions.
func (b *Block) Renumber() {
	for i, op := range b.Ops {
		op.ID = i
	}
}

// Clone deep-copies the block. The copies are slab-allocated: one backing
// array each for the operations, their operand slices and their memory
// references, so cloning — the entry cost of every copy-insertion rewrite —
// is a handful of allocations instead of several per operation. Operand
// subslices are carved at full capacity, so appending to a cloned op's
// Defs/Uses reallocates rather than bleeding into a neighbor's operands.
func (b *Block) Clone() *Block {
	c := &Block{Depth: b.Depth, Ops: make([]*Op, len(b.Ops))}
	nRegs, nMem := 0, 0
	for _, op := range b.Ops {
		nRegs += len(op.Defs) + len(op.Uses)
		if op.Mem != nil {
			nMem++
		}
	}
	ops := make([]Op, len(b.Ops))
	regs := make([]Reg, nRegs)
	var mems []MemRef
	if nMem > 0 {
		mems = make([]MemRef, nMem)
	}
	ri, mi := 0, 0
	for i, op := range b.Ops {
		ops[i] = *op
		nd, nu := len(op.Defs), len(op.Uses)
		ops[i].Defs, ops[i].Uses = nil, nil
		if nd > 0 {
			ops[i].Defs = regs[ri : ri+nd : ri+nd]
			copy(ops[i].Defs, op.Defs)
			ri += nd
		}
		if nu > 0 {
			ops[i].Uses = regs[ri : ri+nu : ri+nu]
			copy(ops[i].Uses, op.Uses)
			ri += nu
		}
		if op.Mem != nil {
			mems[mi] = *op.Mem
			ops[i].Mem = &mems[mi]
			mi++
		}
		c.Ops[i] = &ops[i]
	}
	return c
}

// Registers returns every register mentioned in the block, sorted by
// (class, ID) for deterministic iteration.
func (b *Block) Registers() []Reg {
	seen := make(map[Reg]bool)
	var regs []Reg
	for _, op := range b.Ops {
		for _, r := range op.Defs {
			if !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			}
		}
		for _, r := range op.Uses {
			if !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			}
		}
	}
	SortRegs(regs)
	return regs
}

// Defined returns the set of registers defined somewhere in the block.
func (b *Block) Defined() map[Reg]bool {
	defs := make(map[Reg]bool)
	for _, op := range b.Ops {
		for _, d := range op.Defs {
			defs[d] = true
		}
	}
	return defs
}

// LiveIns returns the registers that are upward exposed: used before any
// definition within the block. In a loop these are either loop invariants
// or values carried from the previous iteration.
func (b *Block) LiveIns() []Reg {
	defined := make(map[Reg]bool)
	seen := make(map[Reg]bool)
	var live []Reg
	for _, op := range b.Ops {
		for _, u := range op.Uses {
			if !defined[u] && !seen[u] {
				seen[u] = true
				live = append(live, u)
			}
		}
		for _, d := range op.Defs {
			defined[d] = true
		}
	}
	SortRegs(live)
	return live
}

// String renders the block one operation per line.
func (b *Block) String() string {
	var sb strings.Builder
	for _, op := range b.Ops {
		fmt.Fprintf(&sb, "%3d: %s\n", op.ID, op)
	}
	return sb.String()
}

// SortRegs orders registers by class then ID, in place.
func SortRegs(regs []Reg) {
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Class != regs[j].Class {
			return regs[i].Class < regs[j].Class
		}
		return regs[i].ID < regs[j].ID
	})
}

// Loop is a single-basic-block innermost loop, the unit of the paper's
// experimental evaluation. Body.Depth records the nesting depth used by the
// RCG weighting heuristic.
type Loop struct {
	// Name identifies the loop in reports (e.g. "spec95.tomcatv.L3").
	Name string
	// Body is the loop kernel in program order.
	Body *Block
	// TripCount is an assumed iteration count used only for reporting; the
	// schedulers never depend on it.
	TripCount int
	// nextReg tracks register numbering for NewReg.
	nextReg int
}

// NewLoop creates an empty loop with nesting depth 1 (an innermost loop).
func NewLoop(name string) *Loop {
	return &Loop{Name: name, Body: &Block{Depth: 1}, TripCount: 100, nextReg: 1}
}

// NewReg allocates a fresh symbolic register of the given class.
func (l *Loop) NewReg(c Class) Reg {
	r := Reg{ID: l.nextReg, Class: c}
	l.nextReg++
	return r
}

// NextRegID exposes the fresh-register counter NewReg will use next. It
// is part of the loop's compilation identity: phases that allocate fresh
// registers (copy insertion) produce different — equally valid — register
// names for structurally identical bodies whose counters differ, so
// content-addressed caching of those phases must fingerprint the counter
// alongside the body.
func (l *Loop) NextRegID() int { return l.nextReg }

// ReserveRegID bumps the register counter so that future NewReg calls never
// collide with id. Phases that materialize registers chosen elsewhere (copy
// insertion) use it to keep numbering unique.
func (l *Loop) ReserveRegID(id int) {
	if id >= l.nextReg {
		l.nextReg = id + 1
	}
}

// MaxRegID returns the highest register ID in use.
func (l *Loop) MaxRegID() int { return l.nextReg - 1 }

// Clone deep-copies the loop.
func (l *Loop) Clone() *Loop {
	return &Loop{Name: l.Name, Body: l.Body.Clone(), TripCount: l.TripCount, nextReg: l.nextReg}
}

// String renders the loop header and body.
func (l *Loop) String() string {
	return fmt.Sprintf("loop %s (trip=%d, depth=%d):\n%s", l.Name, l.TripCount, l.Body.Depth, l.Body)
}

// Function is a sequence of blocks with varying nesting depths. The greedy
// partitioning framework is "global in nature" (Section 1): it applies to
// whole functions, not only pipelined loops, and the wholefunction example
// exercises this path.
type Function struct {
	Name    string
	Blocks  []*Block
	nextReg int
}

// NewFunction creates an empty function.
func NewFunction(name string) *Function {
	return &Function{Name: name, nextReg: 1}
}

// NewBlock appends an empty block with the given nesting depth.
func (f *Function) NewBlock(depth int) *Block {
	b := &Block{Depth: depth}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh symbolic register of the given class.
func (f *Function) NewReg(c Class) Reg {
	r := Reg{ID: f.nextReg, Class: c}
	f.nextReg++
	return r
}

// Registers returns every register mentioned anywhere in the function,
// sorted by (class, ID).
func (f *Function) Registers() []Reg {
	seen := make(map[Reg]bool)
	var regs []Reg
	for _, b := range f.Blocks {
		for _, r := range b.Registers() {
			if !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			}
		}
	}
	SortRegs(regs)
	return regs
}

// String renders all blocks.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for i, b := range f.Blocks {
		fmt.Fprintf(&sb, "block %d (depth %d):\n%s", i, b.Depth, b)
	}
	return sb.String()
}
