package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// This file parses the assembly-like text the printer emits, giving the IR
// a round-trippable serialization: loops can be dumped by cmd tools,
// edited by hand, and fed back into the pipeline. The grammar is exactly
// the printer's output:
//
//	[index:] mnemonic operand {, operand} [; comment]
//
// where an operand is a register (r7 / f3), a memory reference
// (base[off] | base[c*i] | base[c*i±off]) or an immediate (#n).

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := Load; op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// ParseBlock parses one block of printer-format code, one operation per
// line; blank lines are skipped.
func ParseBlock(src string) (*Block, error) {
	b := &Block{}
	for ln, line := range strings.Split(src, "\n") {
		op, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("ir: line %d: %w", ln+1, err)
		}
		if op != nil {
			b.Append(op)
		}
	}
	if err := VerifyBlock(b); err != nil {
		return nil, err
	}
	return b, nil
}

// ParseLoop parses a block and wraps it as a named innermost loop, with
// register numbering reserved past every parsed register.
func ParseLoop(name, src string) (*Loop, error) {
	b, err := ParseBlock(src)
	if err != nil {
		return nil, err
	}
	l := NewLoop(name)
	l.Body = b
	l.Body.Depth = 1
	for _, r := range b.Registers() {
		l.ReserveRegID(r.ID)
	}
	return l, nil
}

func parseLine(line string) (*Op, error) {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, nil
	}
	// Optional "12:" index prefix from Block.String dumps.
	if i := strings.Index(line, ":"); i >= 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				return nil, nil
			}
		}
	}
	mnemonic := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	code, ok := opcodeByName[mnemonic]
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var operands []string
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			operands = append(operands, strings.TrimSpace(f))
		}
	}
	op := &Op{Code: code}
	consume := func() (string, error) {
		if len(operands) == 0 {
			return "", fmt.Errorf("missing operand for %s", mnemonic)
		}
		s := operands[0]
		operands = operands[1:]
		return s, nil
	}

	switch code {
	case Store:
		memStr, err := consume()
		if err != nil {
			return nil, err
		}
		mem, err := parseMemRef(memStr)
		if err != nil {
			return nil, err
		}
		srcStr, err := consume()
		if err != nil {
			return nil, err
		}
		src, err := parseReg(srcStr)
		if err != nil {
			return nil, err
		}
		op.Mem, op.Uses, op.Class = mem, []Reg{src}, src.Class
	case Load:
		defStr, err := consume()
		if err != nil {
			return nil, err
		}
		def, err := parseReg(defStr)
		if err != nil {
			return nil, err
		}
		memStr, err := consume()
		if err != nil {
			return nil, err
		}
		mem, err := parseMemRef(memStr)
		if err != nil {
			return nil, err
		}
		op.Defs, op.Mem, op.Class = []Reg{def}, mem, def.Class
	case LoadImm:
		defStr, err := consume()
		if err != nil {
			return nil, err
		}
		def, err := parseReg(defStr)
		if err != nil {
			return nil, err
		}
		immStr, err := consume()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(immStr, "#") {
			return nil, fmt.Errorf("immediate %q must start with #", immStr)
		}
		v, err := strconv.ParseInt(immStr[1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad immediate %q: %v", immStr, err)
		}
		op.Defs, op.Imm, op.Class = []Reg{def}, v, def.Class
	default:
		defStr, err := consume()
		if err != nil {
			return nil, err
		}
		def, err := parseReg(defStr)
		if err != nil {
			return nil, err
		}
		op.Defs = []Reg{def}
		for len(operands) > 0 {
			uStr, _ := consume()
			u, err := parseReg(uStr)
			if err != nil {
				return nil, err
			}
			op.Uses = append(op.Uses, u)
		}
		op.Class = def.Class
		if code == Cvt || code == Copy {
			// Class bookkeeping: Cvt's op class is the destination's;
			// Copy's is the moved value's (they match anyway).
			op.Class = def.Class
		}
	}
	return op, nil
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	id, err := strconv.Atoi(s[1:])
	if err != nil || id <= 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	class := Int
	if s[0] == 'f' {
		class = Float
	}
	return Reg{ID: id, Class: class}, nil
}

// parseMemRef parses base[off], base[c*i], base[c*i+off] or base[c*i-off].
func parseMemRef(s string) (*MemRef, error) {
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("bad memory reference %q", s)
	}
	base := s[:open]
	inner := s[open+1 : len(s)-1]
	m := &MemRef{Base: base}
	star := strings.Index(inner, "*i")
	if star < 0 {
		off, err := strconv.Atoi(inner)
		if err != nil {
			return nil, fmt.Errorf("bad subscript %q", inner)
		}
		m.Offset = off
		return m, nil
	}
	coeff, err := strconv.Atoi(inner[:star])
	if err != nil {
		return nil, fmt.Errorf("bad stride in %q", inner)
	}
	m.Coeff = coeff
	tail := inner[star+2:]
	if tail != "" {
		off, err := strconv.Atoi(tail) // includes the sign
		if err != nil {
			return nil, fmt.Errorf("bad offset in %q", inner)
		}
		m.Offset = off
	}
	return m, nil
}
