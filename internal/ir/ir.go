// Package ir defines the intermediate representation used throughout the
// reproduction: three-address operations over symbolic (virtual) registers,
// grouped into basic blocks and innermost loops.
//
// The representation mirrors the intermediate code of the Rocket compiler as
// described in the paper: code is first built assuming a single infinite
// register bank (step 1 of Section 4); every later phase — dependence
// analysis, modulo scheduling, register component graph construction,
// partitioning, copy insertion and graph-coloring register assignment —
// consumes and produces this IR.
//
// Registers carry a class (integer or floating point) because the machine
// models charge different inter-cluster copy latencies for the two classes
// (2 cycles for integers, 3 for floats; Section 6.1).
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Class is the register class of a value. The paper's machine models treat
// every functional unit as general purpose, but the class still matters for
// operation latencies and for inter-cluster copy latencies.
type Class uint8

const (
	// Int is the integer register class.
	Int Class = iota
	// Float is the floating-point register class.
	Float
)

// String returns "int" or "float".
func (c Class) String() string {
	switch c {
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Reg is a symbolic (virtual) register. Registers are assumed to live in a
// single infinite register bank until the partitioning phase assigns each
// one to a register bank, and the coloring phase assigns each one a machine
// register within that bank.
//
// Reg is a small comparable value type so it can be used directly as a map
// key throughout the dependence, partitioning and allocation phases.
type Reg struct {
	// ID is the register number, unique within a Loop or Function.
	ID int
	// Class is the register class of the value the register holds.
	Class Class
}

// String renders the register in the paper's "r<n>" style, with an "f"
// prefix for floating-point registers so the two classes are visually
// distinct in dumps.
func (r Reg) String() string {
	// strconv, not fmt: register rendering dominates schedule dumps and
	// the wire response tables, where fmt's reflection is measurable.
	if r.Class == Float {
		return "f" + strconv.Itoa(r.ID)
	}
	return "r" + strconv.Itoa(r.ID)
}

// Invalid reports whether the register is the zero-value placeholder.
func (r Reg) Invalid() bool { return r.ID == 0 }

// NoReg is the invalid register; ID 0 is reserved so that the zero value of
// Reg is never a real operand.
var NoReg = Reg{}

// Opcode enumerates the operation kinds understood by the schedulers and by
// the machine models' latency tables. The set covers everything the paper's
// loop suite needs: memory traffic, integer and floating-point arithmetic,
// immediates, and the inter-cluster copies inserted by the partitioning
// phase.
type Opcode uint8

const (
	// Nop is an empty operation; it never appears in well-formed code but
	// keeps the zero value of Op harmless.
	Nop Opcode = iota
	// Load reads memory into a register (class taken from the destination).
	Load
	// Store writes a register to memory.
	Store
	// LoadImm materializes a constant into a register.
	LoadImm
	// Add, Sub, Mul, Div are arithmetic on either class; the class of the
	// operation decides the latency row used by the machine model.
	Add
	Sub
	Mul
	Div
	// Neg negates a value.
	Neg
	// Cmp compares two values, producing an integer flag value.
	Cmp
	// Shl and Shr are integer shifts.
	Shl
	Shr
	// And, Or, Xor are integer bitwise operations.
	And
	Or
	Xor
	// Cvt converts between classes (int<->float); its class is the class of
	// the destination.
	Cvt
	// Select is a conditional move: dst = cond != 0 ? a : b. It is the
	// residue of IF-conversion — the preprocessing the paper's comparison
	// suite (Nystrom and Eichenberger's loops) had applied — and lets the
	// workload include loops with control flow folded into data flow.
	// Uses are ordered (cond, a, b); cond is an integer value.
	Select
	// Copy is an inter-cluster register copy inserted by the partitioning
	// phase ("move" in the paper's Figure 3). Copies are the only
	// operations whose placement is dictated by the copy model: the
	// embedded model schedules them on ordinary functional units while the
	// copy-unit model routes them through dedicated ports and busses.
	Copy
	numOpcodes
)

var opcodeNames = [...]string{
	Nop:     "nop",
	Load:    "load",
	Store:   "store",
	LoadImm: "loadi",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mult",
	Div:     "div",
	Neg:     "neg",
	Cmp:     "cmp",
	Shl:     "shl",
	Shr:     "shr",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Cvt:     "cvt",
	Select:  "select",
	Copy:    "move",
}

// String returns the mnemonic used by the pretty printer.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// Opcodes returns all real opcodes (excluding Nop), in declaration order.
// It is used by property-based tests to sweep the opcode space.
func Opcodes() []Opcode {
	ops := make([]Opcode, 0, int(numOpcodes)-1)
	for o := Load; o < numOpcodes; o++ {
		ops = append(ops, o)
	}
	return ops
}

// IsMemory reports whether the opcode touches memory.
func (o Opcode) IsMemory() bool { return o == Load || o == Store }

// HasDef reports whether the opcode defines a register.
func (o Opcode) HasDef() bool { return o != Store && o != Nop }

// MemRef describes the memory location touched by a Load or Store, in the
// affine form the dependence analyzer understands:
//
//	address = Base[Coeff*i + Offset]
//
// where i is the innermost loop's induction variable. Coeff == 0 denotes a
// loop-invariant address (e.g. a scalar). Two references to different Base
// symbols never alias: the synthetic loop suite, like the paper's
// FORTRAN-derived loops, has no pointer-induced ambiguity between distinct
// arrays.
type MemRef struct {
	// Base names the array or scalar symbol.
	Base string
	// Coeff is the coefficient of the loop induction variable (elements per
	// iteration); 0 means the address is loop invariant.
	Coeff int
	// Offset is the constant element offset.
	Offset int
}

// String renders the reference as Base[Coeff*i+Offset].
func (m MemRef) String() string {
	// strconv, not fmt, for the same reason as Reg.String: memory operands
	// appear in every rendered load/store row of the wire response.
	switch {
	case m.Coeff == 0:
		return m.Base + "[" + strconv.Itoa(m.Offset) + "]"
	case m.Offset == 0:
		return m.Base + "[" + strconv.Itoa(m.Coeff) + "*i]"
	case m.Offset > 0:
		return m.Base + "[" + strconv.Itoa(m.Coeff) + "*i+" + strconv.Itoa(m.Offset) + "]"
	default:
		return m.Base + "[" + strconv.Itoa(m.Coeff) + "*i" + strconv.Itoa(m.Offset) + "]"
	}
}

// Op is a single three-address operation. Defs and Uses hold symbolic
// registers; memory operations additionally carry a MemRef for dependence
// testing. The scheduler and partitioner identify operations by their index
// in the containing block, which the builder records in ID.
type Op struct {
	// ID is the operation's index within its block. It is assigned by the
	// Builder and kept stable by all phases; phases that insert operations
	// (copy insertion) renumber via Block.Renumber.
	ID int
	// Code is the operation kind.
	Code Opcode
	// Class is the class of the computation (decides the latency row).
	// For Load/Store/Copy/Cvt it is the class of the data moved.
	Class Class
	// Defs lists registers written (at most one in well-formed code).
	Defs []Reg
	// Uses lists registers read.
	Uses []Reg
	// Mem is non-nil exactly when Code.IsMemory().
	Mem *MemRef
	// Imm is the constant for LoadImm.
	Imm int64
	// Comment is free-form annotation carried into dumps.
	Comment string
}

// Def returns the single defined register, or NoReg when the operation
// defines nothing (stores).
func (op *Op) Def() Reg {
	if len(op.Defs) == 0 {
		return NoReg
	}
	return op.Defs[0]
}

// ReadsReg reports whether the operation uses r.
func (op *Op) ReadsReg(r Reg) bool {
	for _, u := range op.Uses {
		if u == r {
			return true
		}
	}
	return false
}

// WritesReg reports whether the operation defines r.
func (op *Op) WritesReg(r Reg) bool {
	for _, d := range op.Defs {
		if d == r {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the operation (fresh slices, copied MemRef).
func (op *Op) Clone() *Op {
	c := *op
	c.Defs = append([]Reg(nil), op.Defs...)
	c.Uses = append([]Reg(nil), op.Uses...)
	if op.Mem != nil {
		m := *op.Mem
		c.Mem = &m
	}
	return &c
}

// String renders the operation in the paper's assembly-like style, e.g.
// "mult r5, r1, r2" or "load r1, xvel[1*i]".
func (op *Op) String() string {
	var b strings.Builder
	b.WriteString(op.Code.String())
	wrote := false
	writeOperand := func(s string) {
		if wrote {
			b.WriteString(", ")
		} else {
			b.WriteByte(' ')
			wrote = true
		}
		b.WriteString(s)
	}
	for _, d := range op.Defs {
		writeOperand(d.String())
	}
	if op.Code == Store && op.Mem != nil {
		writeOperand(op.Mem.String())
	}
	for _, u := range op.Uses {
		writeOperand(u.String())
	}
	if op.Code == Load && op.Mem != nil {
		writeOperand(op.Mem.String())
	}
	if op.Code == LoadImm {
		writeOperand("#" + strconv.FormatInt(op.Imm, 10))
	}
	if op.Comment != "" {
		fmt.Fprintf(&b, "  ; %s", op.Comment)
	}
	return b.String()
}
