package ir

import (
	"testing"
	"testing/quick"
)

func TestParseBlockBasic(t *testing.T) {
	src := `
  0: load f2, xvel[0]
  1: load f3, t[3*i+1]
  2: mult f5, f2, f3
  3: move f6, f5
  4: store out[1*i-2], f6
  5: loadi r7, #-42
`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Ops) != 6 {
		t.Fatalf("parsed %d ops", len(b.Ops))
	}
	if b.Ops[1].Mem.Coeff != 3 || b.Ops[1].Mem.Offset != 1 {
		t.Errorf("memref parsed as %+v", b.Ops[1].Mem)
	}
	if b.Ops[4].Mem.Offset != -2 {
		t.Errorf("negative offset parsed as %d", b.Ops[4].Mem.Offset)
	}
	if b.Ops[5].Imm != -42 {
		t.Errorf("immediate parsed as %d", b.Ops[5].Imm)
	}
	if b.Ops[3].Code != Copy {
		t.Errorf("move parsed as %s", b.Ops[3].Code)
	}
}

func TestParseRoundTrip(t *testing.T) {
	l := NewLoop("rt")
	bd := NewLoopBuilder(l)
	s := l.NewReg(Float)
	x := bd.Load(Float, MemRef{Base: "a", Coeff: 2, Offset: 1})
	y := bd.Mul(x, s)
	z := bd.Add(y, x)
	bd.Store(z, MemRef{Base: "c", Coeff: 2})
	i := bd.Imm(Int, 7)
	j := bd.Shl(i, i)
	bd.Store(bd.Xor(j, i), MemRef{Base: "d", Coeff: 0, Offset: 4})

	text := l.Body.String()
	parsed, err := ParseBlock(text)
	if err != nil {
		t.Fatalf("parse of printer output failed: %v\n%s", err, text)
	}
	if got := parsed.String(); got != text {
		t.Errorf("round trip differs:\n--- printed\n%s--- reparsed\n%s", text, got)
	}
}

func TestParseLoopReservesRegisters(t *testing.T) {
	l, err := ParseLoop("p", "load f9, a[1*i]\nmult f10, f9, f9")
	if err != nil {
		t.Fatal(err)
	}
	if r := l.NewReg(Float); r.ID <= 10 {
		t.Errorf("fresh register %d collides with parsed ones", r.ID)
	}
	if l.Body.Depth != 1 {
		t.Error("parsed loop must be an innermost loop")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frob f1, f2",            // unknown mnemonic
		"load f1",                // missing memref
		"load f1, a[i]",          // bad subscript
		"mult f1, f2",            // too few uses
		"store a[1*i], q7",       // bad register
		"loadi f1, 42",           // immediate without #
		"load x1, a[0]",          // bad register prefix
		"add f0, f1, f2",         // register id 0 reserved
		"mult f1, f2, f3, f4",    // too many uses
		"store a[1*i, f1",        // unterminated subscript
		"load f1, a[2*i+binary]", // non-numeric offset
	}
	for _, src := range bad {
		if _, err := ParseBlock(src); err == nil {
			t.Errorf("ParseBlock(%q) accepted invalid input", src)
		}
	}
}

func TestParseRoundTripQuick(t *testing.T) {
	// Randomized round trip: a structurally valid op printed and reparsed
	// must compare equal field by field.
	f := func(kind uint8, dst, s1, s2 uint16, coeff int8, off int16, imm int64, fl bool) bool {
		class := Int
		if fl {
			class = Float
		}
		reg := func(v uint16) Reg { return Reg{ID: int(v%500) + 1, Class: class} }
		var op *Op
		switch kind % 5 {
		case 0:
			op = &Op{Code: Load, Class: class, Defs: []Reg{reg(dst)},
				Mem: &MemRef{Base: "arr", Coeff: int(coeff), Offset: int(off % 100)}}
		case 1:
			op = &Op{Code: Store, Class: class, Uses: []Reg{reg(s1)},
				Mem: &MemRef{Base: "arr", Coeff: int(coeff), Offset: int(off % 100)}}
		case 2:
			op = &Op{Code: Mul, Class: class, Defs: []Reg{reg(dst)}, Uses: []Reg{reg(s1), reg(s2)}}
		case 3:
			op = &Op{Code: LoadImm, Class: class, Defs: []Reg{reg(dst)}, Imm: imm}
		default:
			op = &Op{Code: Copy, Class: class, Defs: []Reg{reg(dst)}, Uses: []Reg{reg(s1)}}
		}
		b := &Block{}
		b.Append(op)
		parsed, err := ParseBlock(b.String())
		if err != nil {
			return false
		}
		return parsed.String() == b.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	b, err := ParseBlock("\n  ; pure comment\nload f1, a[0]  ; trailing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Ops) != 1 {
		t.Fatalf("parsed %d ops, want 1", len(b.Ops))
	}
}
