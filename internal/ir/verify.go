package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by every verification failure so callers can test
// with errors.Is.
var ErrInvalid = errors.New("ir: invalid")

// VerifyBlock checks structural well-formedness of a block:
//
//   - operation IDs match their positions;
//   - every operation has the operand shape its opcode requires
//     (memory ops carry a MemRef, stores define nothing, everything else
//     defines exactly one register, no NoReg operands);
//   - register classes are consistent (an operation's Defs match its Class,
//     Copy/Cvt aside).
//
// It deliberately does not require defs-before-uses: in a loop kernel a use
// may be upward exposed (live-in or carried from the previous iteration).
func VerifyBlock(b *Block) error {
	for i, op := range b.Ops {
		if op.ID != i {
			return fmt.Errorf("%w: op %d has ID %d (run Renumber?)", ErrInvalid, i, op.ID)
		}
		if err := verifyOp(op); err != nil {
			return fmt.Errorf("op %d (%s): %w", i, op, err)
		}
	}
	return nil
}

func verifyOp(op *Op) error {
	switch {
	case op.Code == Nop:
		return fmt.Errorf("%w: nop in code stream", ErrInvalid)
	case op.Code >= numOpcodes:
		return fmt.Errorf("%w: unknown opcode %d", ErrInvalid, op.Code)
	}
	if op.Code.IsMemory() != (op.Mem != nil) {
		return fmt.Errorf("%w: memory reference mismatch for %s", ErrInvalid, op.Code)
	}
	if op.Code == Store {
		if len(op.Defs) != 0 {
			return fmt.Errorf("%w: store defines a register", ErrInvalid)
		}
		if len(op.Uses) != 1 {
			return fmt.Errorf("%w: store must use exactly one register", ErrInvalid)
		}
	} else {
		if len(op.Defs) != 1 {
			return fmt.Errorf("%w: %s must define exactly one register", ErrInvalid, op.Code)
		}
	}
	wantUses := -1 // -1 means "don't check"
	switch op.Code {
	case Load, LoadImm:
		wantUses = 0
	case Neg, Cvt, Copy:
		wantUses = 1
	case Add, Sub, Mul, Div, Cmp, Shl, Shr, And, Or, Xor:
		wantUses = 2
	case Select:
		wantUses = 3
	}
	if wantUses >= 0 && len(op.Uses) != wantUses {
		return fmt.Errorf("%w: %s wants %d uses, has %d", ErrInvalid, op.Code, wantUses, len(op.Uses))
	}
	for _, d := range op.Defs {
		if d.Invalid() {
			return fmt.Errorf("%w: invalid def register", ErrInvalid)
		}
		// Copy and Cvt may change class bookkeeping; all other defs match
		// the operation class.
		if op.Code != Cvt && op.Code != Copy && d.Class != op.Class {
			return fmt.Errorf("%w: def %s class differs from op class %s", ErrInvalid, d, op.Class)
		}
	}
	for _, u := range op.Uses {
		if u.Invalid() {
			return fmt.Errorf("%w: invalid use register", ErrInvalid)
		}
	}
	return nil
}

// VerifyLoop verifies the loop body.
func VerifyLoop(l *Loop) error {
	if l.Body == nil {
		return fmt.Errorf("%w: loop %q has no body", ErrInvalid, l.Name)
	}
	if err := VerifyBlock(l.Body); err != nil {
		return fmt.Errorf("loop %q: %w", l.Name, err)
	}
	return nil
}

// VerifyFunction verifies every block of the function.
func VerifyFunction(f *Function) error {
	for i, b := range f.Blocks {
		if err := VerifyBlock(b); err != nil {
			return fmt.Errorf("func %q block %d: %w", f.Name, i, err)
		}
	}
	return nil
}
