package ir

import (
	"errors"
	"testing"
)

func validAdd() *Op {
	return &Op{
		Code: Add, Class: Int,
		Defs: []Reg{{ID: 3, Class: Int}},
		Uses: []Reg{{ID: 1, Class: Int}, {ID: 2, Class: Int}},
	}
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	l := NewLoop("ok")
	b := NewLoopBuilder(l)
	x := b.Load(Int, MemRef{Base: "a", Coeff: 1})
	y := b.Imm(Int, 3)
	z := b.Add(x, y)
	b.Store(z, MemRef{Base: "c", Coeff: 1})
	f := b.Cvt(Float, z)
	b.Store(f, MemRef{Base: "d", Coeff: 1})
	if err := VerifyLoop(l); err != nil {
		t.Fatalf("well-formed loop rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	tests := []struct {
		name string
		op   *Op
	}{
		{"nop", &Op{Code: Nop}},
		{"unknown opcode", &Op{Code: Opcode(200), Defs: []Reg{{ID: 1}}}},
		{"load without memref", &Op{Code: Load, Class: Int, Defs: []Reg{{ID: 1, Class: Int}}}},
		{"add with memref", func() *Op { o := validAdd(); o.Mem = &MemRef{Base: "a"}; return o }()},
		{"store with def", &Op{Code: Store, Class: Int, Defs: []Reg{{ID: 1, Class: Int}}, Uses: []Reg{{ID: 2, Class: Int}}, Mem: &MemRef{Base: "a"}}},
		{"store with two uses", &Op{Code: Store, Class: Int, Uses: []Reg{{ID: 1, Class: Int}, {ID: 2, Class: Int}}, Mem: &MemRef{Base: "a"}}},
		{"add with no def", &Op{Code: Add, Class: Int, Uses: []Reg{{ID: 1, Class: Int}, {ID: 2, Class: Int}}}},
		{"add with one use", &Op{Code: Add, Class: Int, Defs: []Reg{{ID: 3, Class: Int}}, Uses: []Reg{{ID: 1, Class: Int}}}},
		{"copy with two uses", &Op{Code: Copy, Class: Int, Defs: []Reg{{ID: 3, Class: Int}}, Uses: []Reg{{ID: 1, Class: Int}, {ID: 2, Class: Int}}}},
		{"invalid def reg", &Op{Code: LoadImm, Class: Int, Defs: []Reg{{}}}},
		{"invalid use reg", func() *Op { o := validAdd(); o.Uses[0] = NoReg; return o }()},
		{"class mismatch", &Op{Code: Add, Class: Int, Defs: []Reg{{ID: 3, Class: Float}}, Uses: []Reg{{ID: 1, Class: Int}, {ID: 2, Class: Int}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := &Block{}
			b.Append(tt.op)
			err := VerifyBlock(b)
			if err == nil {
				t.Fatalf("VerifyBlock accepted %s", tt.name)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error %v does not wrap ErrInvalid", err)
			}
		})
	}
}

func TestVerifyCatchesStaleIDs(t *testing.T) {
	b := &Block{}
	b.Append(validAdd())
	b.Ops[0].ID = 5
	if err := VerifyBlock(b); err == nil {
		t.Error("stale IDs accepted")
	}
}

func TestVerifyCvtAndCopyCrossClass(t *testing.T) {
	// Cvt defines a register of a different class than its source; Copy
	// keeps the class. Neither should trip the class check.
	b := &Block{}
	b.Append(&Op{Code: Cvt, Class: Float, Defs: []Reg{{ID: 2, Class: Float}}, Uses: []Reg{{ID: 1, Class: Int}}})
	b.Append(&Op{Code: Copy, Class: Float, Defs: []Reg{{ID: 3, Class: Float}}, Uses: []Reg{{ID: 2, Class: Float}}})
	if err := VerifyBlock(b); err != nil {
		t.Errorf("cvt/copy rejected: %v", err)
	}
}

func TestVerifyLoopNilBody(t *testing.T) {
	if err := VerifyLoop(&Loop{Name: "x"}); err == nil {
		t.Error("nil body accepted")
	}
}
