package ir

import (
	"reflect"
	"testing"
)

// Unit tests for the dense register index that every hot stage keys its
// flat per-register state by. The contracts that matter downstream:
// first-appearance numbering (defs before uses within an op), -1 for
// unindexed registers, sorted iteration matching Block.Registers, and full
// invalidation of stale entries across Reset reuse.

func riReg(id int, c Class) Reg { return Reg{ID: id, Class: c} }

func riBlock(ops ...*Op) *Block {
	b := &Block{}
	for _, op := range ops {
		b.Append(op)
	}
	return b
}

func TestRegIndexFirstAppearanceOrder(t *testing.T) {
	// Op 0 defines r5 and uses r3, r9; op 1 defines r3 (already seen) and
	// uses r5 (seen) and r1 (new). Expected dense order: 5, 3, 9, 1.
	b := riBlock(
		&Op{Code: Add, Defs: []Reg{riReg(5, Int)}, Uses: []Reg{riReg(3, Int), riReg(9, Int)}},
		&Op{Code: Add, Defs: []Reg{riReg(3, Int)}, Uses: []Reg{riReg(5, Int), riReg(1, Int)}},
	)
	ri := NewRegIndex(b)
	if ri.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ri.Len())
	}
	wantOrder := []int{5, 3, 9, 1}
	for i, id := range wantOrder {
		if got := ri.Reg(i); got.ID != id {
			t.Errorf("dense index %d = %v, want ID %d", i, got, id)
		}
		if got := ri.Of(riReg(id, Int)); got != i {
			t.Errorf("Of(r%d) = %d, want %d", id, got, i)
		}
	}
}

func TestRegIndexAbsentIsMinusOne(t *testing.T) {
	ri := NewRegIndex(riBlock(&Op{Code: Add, Defs: []Reg{riReg(1, Int)}}))
	if got := ri.Of(riReg(2, Int)); got != -1 {
		t.Errorf("Of(unseen ID) = %d, want -1", got)
	}
	if got := ri.Of(riReg(1, Float)); got != -1 {
		t.Errorf("Of(unseen class) = %d, want -1", got)
	}
	if got := ri.Of(riReg(1 << 20, Int)); got != -1 {
		t.Errorf("Of(huge ID) = %d, want -1", got)
	}
}

func TestRegIndexAppendSortedMatchesBlockRegisters(t *testing.T) {
	b := riBlock(
		&Op{Code: Add, Defs: []Reg{riReg(7, Float)}, Uses: []Reg{riReg(2, Int), riReg(7, Int)}},
		&Op{Code: Add, Defs: []Reg{riReg(1, Int)}, Uses: []Reg{riReg(7, Float), riReg(3, Float)}},
	)
	ri := NewRegIndex(b)
	got := ri.AppendSorted(nil)
	want := b.Registers()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendSorted = %v, want Block.Registers order %v", got, want)
	}
	// Appending onto an existing prefix must leave the prefix alone.
	pre := []Reg{riReg(99, Int)}
	got2 := ri.AppendSorted(pre)
	if got2[0] != riReg(99, Int) || !reflect.DeepEqual(got2[1:], want) {
		t.Errorf("AppendSorted with prefix = %v", got2)
	}
}

func TestRegIndexResetInvalidatesStaleEntries(t *testing.T) {
	ri := NewRegIndex(riBlock(
		&Op{Code: Add, Defs: []Reg{riReg(1, Int), riReg(50, Float)}},
	))
	// Reset onto a block that shares neither register.
	ri.Reset(riBlock(&Op{Code: Add, Defs: []Reg{riReg(2, Int)}}))
	if ri.Len() != 1 {
		t.Fatalf("Len after Reset = %d, want 1", ri.Len())
	}
	if got := ri.Of(riReg(1, Int)); got != -1 {
		t.Errorf("stale Int entry survived Reset: Of = %d", got)
	}
	if got := ri.Of(riReg(50, Float)); got != -1 {
		t.Errorf("stale Float entry survived Reset: Of = %d", got)
	}
	if got := ri.Of(riReg(2, Int)); got != 0 {
		t.Errorf("Of(new reg) = %d, want 0", got)
	}
	// Reset(nil) empties the index entirely.
	ri.Reset(nil)
	if ri.Len() != 0 || ri.Of(riReg(2, Int)) != -1 {
		t.Errorf("Reset(nil) left entries: Len=%d", ri.Len())
	}
}

func TestRegIndexAddIdempotentAndGrowth(t *testing.T) {
	ri := &RegIndex{}
	ri.ResetOps(nil)
	if i := ri.Add(riReg(1000, Int)); i != 0 {
		t.Fatalf("first Add = %d, want 0", i)
	}
	if i := ri.Add(riReg(1000, Int)); i != 0 {
		t.Fatalf("repeat Add = %d, want 0", i)
	}
	if i := ri.Add(riReg(3, Class(5))); i != 1 { // high class grows the table
		t.Fatalf("Add(high class) = %d, want 1", i)
	}
	if ri.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ri.Len())
	}
	if got := ri.Regs(); len(got) != 2 || got[0] != riReg(1000, Int) {
		t.Errorf("Regs = %v", got)
	}
}
