package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ir"
)

// Property tests for the RCG's flat half-edge adjacency and its sealed CSR
// form: both must agree exactly with the obvious map-of-maps reference on
// randomized edge streams, including repeated accumulation onto the same
// edge and -Inf constraint edges.

func flatReg(i int) ir.Reg { return ir.Reg{ID: i + 1, Class: ir.Class(i % 2)} }

// TestFlatEdgeWeightMatchesMapReference drives AddEdge with a randomized
// stream (random pairs, weights, duplicates, both orientations) and checks
// every pair's EdgeWeight against a map reference accumulated in the same
// order. Accumulation order per edge is identical on both sides, so the
// floats must match bit for bit.
func TestFlatEdgeWeightMatchesMapReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		g := NewRCG()
		type pair [2]int // canonical: low index first
		ref := map[pair]float64{}
		edges := 8 * n
		for e := 0; e < edges; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			var w float64
			switch rng.Intn(10) {
			case 0:
				w = math.Inf(-1) // a Constrain-style idiosyncrasy edge
			default:
				w = (rng.Float64() - 0.4) * 10
			}
			g.AddEdge(flatReg(a), flatReg(b), w)
			key := pair{a, b}
			if a > b {
				key = pair{b, a}
			}
			ref[key] += w
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				key := pair{a, b}
				if a > b {
					key = pair{b, a}
				}
				want := ref[key] // 0 when absent, matching EdgeWeight's contract
				got := g.EdgeWeight(flatReg(a), flatReg(b))
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("seed %d: EdgeWeight(%d,%d) = %v, want %v", seed, a, b, got, want)
				}
			}
		}
		if g.NumEdges() != len(ref) {
			t.Fatalf("seed %d: NumEdges = %d, want %d", seed, g.NumEdges(), len(ref))
		}
	}
}

// TestSealedAdjacencyMatchesFallback partitions randomized hand-assembled
// graphs twice — once unsealed (the scratch-built CSR fallback) and once
// after sealing — and requires identical assignments: the sealed arrays
// must present exactly the adjacency, order and weights the fallback
// materializes per call.
func TestSealedAdjacencyMatchesFallback(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 6 + rng.Intn(30)
		g := NewRCG()
		for i := 0; i < n; i++ {
			g.AddNode(flatReg(i))
		}
		for e := 0; e < 6*n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			w := (rng.Float64() - 0.3) * 4
			g.AddEdge(flatReg(a), flatReg(b), w)
			g.AddNodeWeight(flatReg(a), math.Abs(w))
		}
		banks := 2 + rng.Intn(3)
		w := DefaultWeights()
		before, err := g.Partition(banks, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		g.seal()
		after, err := g.Partition(banks, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before.Of, after.Of) {
			t.Fatalf("seed %d: sealed partition diverged from fallback:\nfallback: %v\n  sealed: %v",
				seed, before.Of, after.Of)
		}
	}
}
