package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// TieBreak selects the secondary rule the greedy bank chooser applies
// among banks of equal benefit. The paper's pseudocode leaves the tie
// unspecified (see the Partition comment); the portfolio partitioner
// exploits that freedom by running several defensible readings and
// keeping whichever scores best downstream.
type TieBreak uint8

const (
	// TieLeastLoaded prefers the less-loaded bank, then the lower index —
	// the repository's default reading of Figure 4 ("spread somewhat
	// evenly").
	TieLeastLoaded TieBreak = iota
	// TieFirst keeps the first bank encountered in evaluation order — the
	// literal reading of the pseudocode's BestBank initialization.
	TieFirst
	// TieMostLoaded prefers the fuller bank, consolidating registers and
	// trading issue bandwidth for fewer inter-bank copies.
	TieMostLoaded
)

// String names the tie-break rule.
func (t TieBreak) String() string {
	switch t {
	case TieLeastLoaded:
		return "least-loaded"
	case TieFirst:
		return "first"
	case TieMostLoaded:
		return "most-loaded"
	default:
		return fmt.Sprintf("tiebreak(%d)", uint8(t))
	}
}

// Variant perturbs the Figure 4 greedy heuristic without changing its
// contract: every node still receives exactly one in-range bank,
// pre-coloring is still honored, and the result is still deterministic.
// The zero Variant reproduces the default heuristic bit for bit.
type Variant struct {
	// Name labels the variant in reports and portfolio scoring.
	Name string
	// BankOrder permutes the order banks are evaluated in; with equal
	// benefits the evaluation order decides the winner, so permutations
	// explore different tie landscapes. nil means the identity order. A
	// non-nil order must be a permutation of [0, banks).
	BankOrder []int
	// Tie selects the equal-benefit rule.
	Tie TieBreak
	// BalanceScale scales Weights.Balance for this run; 0 means 1 (keep).
	// Values below 1 favor affinity over spreading, values above 1 the
	// reverse.
	BalanceScale float64
}

// bankOrder materializes the evaluation order, validating a supplied
// permutation.
func (v *Variant) bankOrder(banks int) ([]int, error) {
	if v.BankOrder == nil {
		order := make([]int, banks)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
	if len(v.BankOrder) != banks {
		return nil, fmt.Errorf("core: variant %q bank order has %d entries for %d banks", v.Name, len(v.BankOrder), banks)
	}
	seen := make([]bool, banks)
	for _, b := range v.BankOrder {
		if b < 0 || b >= banks || seen[b] {
			return nil, fmt.Errorf("core: variant %q bank order %v is not a permutation of [0,%d)", v.Name, v.BankOrder, banks)
		}
		seen[b] = true
	}
	return v.BankOrder, nil
}

// PartitionVariant runs the Figure 4 greedy heuristic under a perturbed
// tie-break regime. PartitionTraced is exactly PartitionVariant with the
// zero Variant. The same graph, weights, pre-coloring and variant always
// produce the same assignment.
func (g *RCG) PartitionVariant(banks int, w Weights, pre map[ir.Reg]int, v Variant, tr *trace.Tracer) (*Assignment, error) {
	return g.partitionWith(banks, w, pre, v, tr)
}
