package core

import (
	"bytes"
	"testing"

	"repro/internal/ir"
)

// fuzzGraph decodes an arbitrary byte string into a register component
// graph plus a partitioning request. The decoder is total: every input
// yields a valid (graph, banks, pre) triple, so the fuzzer explores graph
// shapes instead of fighting a parser. Layout: byte 0 picks the bank
// count, byte 1 the node count, byte 2 optionally pre-colors a node, and
// the rest is consumed in (a, b, w) triples as signed-weight edges, with
// w == 127 meaning a negative-infinity Constrain edge.
func fuzzGraph(data []byte) (g *RCG, banks int, pre map[ir.Reg]int) {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	banks = 1 + int(at(0))%8
	n := 1 + int(at(1))%32
	reg := func(i int) ir.Reg {
		idx := i % n
		return ir.Reg{ID: 1 + idx, Class: ir.Class(idx % 2)}
	}
	g = NewRCG()
	for i := 0; i < n; i++ {
		g.AddNode(reg(i))
	}
	pre = map[ir.Reg]int{}
	if at(2)%4 == 0 {
		pre[reg(int(at(3)))] = int(at(4)) % banks
	}
	for i := 5; i+2 < len(data); i += 3 {
		a, b := reg(int(data[i])), reg(int(data[i+1]))
		switch w := int8(data[i+2]); {
		case w == 127:
			g.Constrain(a, b)
		default:
			g.AddEdge(a, b, float64(w))
			if w > 0 {
				g.AddNodeWeight(a, float64(w))
				g.AddNodeWeight(b, float64(w))
			}
		}
	}
	return g, banks, pre
}

// FuzzGreedyPartition drives the Figure 4 greedy partitioner with random
// register component graphs and checks its contract: it never fails on a
// well-formed request, assigns every node exactly one in-range bank,
// honors pre-coloring, and is deterministic (same graph in, same
// assignment out — the experiment tables depend on it).
func FuzzGreedyPartition(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 4, 0, 2, 1, 0, 1, 10, 1, 2, 246, 2, 3, 127})
	f.Add(bytes.Repeat([]byte{7, 15, 3, 9, 2, 40}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, banks, pre := fuzzGraph(data)
		asg, err := g.Partition(banks, DefaultWeights(), pre)
		if err != nil {
			t.Fatalf("partition failed on valid input: %v", err)
		}
		if err := asg.Validate(); err != nil {
			t.Fatal(err)
		}
		if asg.Banks != banks {
			t.Fatalf("assignment reports %d banks, requested %d", asg.Banks, banks)
		}
		for _, r := range g.Nodes {
			if _, ok := asg.Of[r]; !ok {
				t.Fatalf("register %s left unassigned", r)
			}
		}
		if len(asg.Of) != len(g.Nodes) {
			t.Fatalf("%d assignments for %d nodes", len(asg.Of), len(g.Nodes))
		}
		total := 0
		for _, c := range asg.Counts() {
			total += c
		}
		if total != len(g.Nodes) {
			t.Fatalf("bank counts sum to %d, want %d", total, len(g.Nodes))
		}
		for r, b := range pre {
			if asg.Of[r] != b {
				t.Fatalf("pre-colored %s moved from bank %d to %d", r, b, asg.Of[r])
			}
		}
		g2, banks2, pre2 := fuzzGraph(data)
		asg2, err := g2.Partition(banks2, DefaultWeights(), pre2)
		if err != nil {
			t.Fatal(err)
		}
		for r, b := range asg.Of {
			if asg2.Of[r] != b {
				t.Fatalf("nondeterministic: %s went to bank %d, then %d", r, b, asg2.Of[r])
			}
		}
	})
}
