package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func reg(id int) ir.Reg { return ir.Reg{ID: id, Class: ir.Int} }

func TestPartitionTotalAndInRange(t *testing.T) {
	g := Build([]ScheduledBlock{tinySchedule()}, DefaultWeights())
	for _, banks := range []int{1, 2, 3, 8} {
		asg, err := g.Partition(banks, DefaultWeights(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := asg.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(asg.Of) != len(g.Nodes) {
			t.Errorf("banks=%d: assigned %d of %d nodes", banks, len(asg.Of), len(g.Nodes))
		}
	}
}

func TestPartitionInvalidBankCount(t *testing.T) {
	g := NewRCG()
	if _, err := g.Partition(0, DefaultWeights(), nil); err == nil {
		t.Error("0 banks accepted")
	}
}

func TestCriticalChainStaysTogether(t *testing.T) {
	// A zero-slack dependence chain (edge weights carrying the critical
	// bonus) amid slack-rich background registers must stay in one bank:
	// splitting it would put copy latency on the critical path for no
	// issue-bandwidth gain. The background edges set the balance unit; the
	// chain's 4x-heavier edges must override the spreading force.
	g := NewRCG()
	for i := 1; i < 5; i++ {
		g.AddEdge(reg(i), reg(i+1), 400) // critical: zero slack, bonus
		g.AddNodeWeight(reg(i), 400)
		g.AddNodeWeight(reg(i+1), 400)
	}
	for i := 10; i < 30; i += 2 {
		g.AddEdge(reg(i), reg(i+1), 100) // background streaming pairs
		g.AddNodeWeight(reg(i), 100)
		g.AddNodeWeight(reg(i+1), 100)
	}
	asg, err := g.Partition(4, DefaultWeights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bank := asg.Bank(reg(1))
	for i := 2; i <= 5; i++ {
		if asg.Bank(reg(i)) != bank {
			t.Errorf("critical chain split: r%d in bank %d, r1 in bank %d", i, asg.Bank(reg(i)), bank)
		}
	}
}

func TestBalanceSplitsSlackRichPile(t *testing.T) {
	// The dual of the critical-chain case: many uniform slack-rich pairs
	// must not all pile into one bank — Figure 4's balance term spreads
	// them for issue bandwidth.
	g := NewRCG()
	for i := 0; i < 16; i += 2 {
		g.AddEdge(reg(i+1), reg(i+2), 100)
		g.AddNodeWeight(reg(i+1), 100)
		g.AddNodeWeight(reg(i+2), 100)
	}
	asg, err := g.Partition(4, DefaultWeights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := asg.Counts()
	for b, c := range counts {
		if c > 8 {
			t.Errorf("bank %d hoards %d of 16 registers: %v", b, c, counts)
		}
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("no spreading happened: %v", counts)
	}
}

func TestAntiAffinitySeparates(t *testing.T) {
	// Two nodes joined only by a strong negative edge must not share.
	g := NewRCG()
	g.AddEdge(reg(1), reg(2), -100)
	g.AddNodeWeight(reg(1), 10)
	g.AddNodeWeight(reg(2), 5)
	asg, err := g.Partition(2, DefaultWeights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Bank(reg(1)) == asg.Bank(reg(2)) {
		t.Error("anti-affine pair placed together")
	}
}

func TestConstrainSeparates(t *testing.T) {
	g := NewRCG()
	g.AddEdge(reg(1), reg(2), 1000) // want together...
	g.Constrain(reg(1), reg(2))     // ...but the machine forbids it
	g.AddNodeWeight(reg(1), 10)
	g.AddNodeWeight(reg(2), 5)
	asg, err := g.Partition(2, DefaultWeights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Bank(reg(1)) == asg.Bank(reg(2)) {
		t.Error("constrained pair shares a bank")
	}
}

func TestPreColoringRespected(t *testing.T) {
	g := Build([]ScheduledBlock{tinySchedule()}, DefaultWeights())
	pre := map[ir.Reg]int{reg(1): 1, reg(3): 0}
	asg, err := g.Partition(2, DefaultWeights(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Bank(reg(1)) != 1 || asg.Bank(reg(3)) != 0 {
		t.Errorf("pre-coloring ignored: r1->%d r3->%d", asg.Bank(reg(1)), asg.Bank(reg(3)))
	}
}

func TestPreColoringOutOfRange(t *testing.T) {
	g := Build([]ScheduledBlock{tinySchedule()}, DefaultWeights())
	if _, err := g.Partition(2, DefaultWeights(), map[ir.Reg]int{reg(1): 7}); err == nil {
		t.Error("out-of-range pre-color accepted")
	}
}

func TestBalanceSpreadsIsolatedNodes(t *testing.T) {
	// 12 isolated registers across 4 banks: the balance term must spread
	// them evenly rather than pile them on bank 0.
	g := NewRCG()
	for i := 1; i <= 12; i++ {
		g.AddNode(reg(i))
	}
	asg, err := g.Partition(4, DefaultWeights(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for b, c := range asg.Counts() {
		if c != 3 {
			t.Errorf("bank %d has %d registers, want 3: %v", b, c, asg.Counts())
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := Build([]ScheduledBlock{tinySchedule()}, DefaultWeights())
	a, _ := g.Partition(2, DefaultWeights(), nil)
	b, _ := g.Partition(2, DefaultWeights(), nil)
	for r, bank := range a.Of {
		if b.Of[r] != bank {
			t.Fatalf("partition nondeterministic at %s", r)
		}
	}
}

func TestAssignmentDefaultsBankZero(t *testing.T) {
	asg := &Assignment{Banks: 4, Of: map[ir.Reg]int{}}
	if asg.Bank(reg(9)) != 0 {
		t.Error("unknown registers must default to bank 0")
	}
}

func TestPartitionPropertyAllAssignedInRange(t *testing.T) {
	f := func(edges []uint16, banks uint8) bool {
		nb := int(banks%7) + 1
		g := NewRCG()
		for _, e := range edges {
			a := int(e%23) + 1
			b := int((e/23)%23) + 1
			w := float64(int(e%41)) - 20
			g.AddEdge(reg(a), reg(b), w)
			g.AddNodeWeight(reg(a), w)
		}
		asg, err := g.Partition(nb, DefaultWeights(), nil)
		if err != nil {
			return false
		}
		if len(asg.Of) != len(g.Nodes) {
			return false
		}
		return asg.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
