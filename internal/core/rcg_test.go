package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
)

// tinySchedule builds the ScheduledBlock for
//
//	cycle 0: load r1  |  load r2
//	cycle 1: add r3, r1, r2
//
// with zero slack on every op.
func tinySchedule() ScheduledBlock {
	b := &ir.Block{Depth: 1}
	r1 := ir.Reg{ID: 1, Class: ir.Int}
	r2 := ir.Reg{ID: 2, Class: ir.Int}
	r3 := ir.Reg{ID: 3, Class: ir.Int}
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Int, Defs: []ir.Reg{r1}, Mem: &ir.MemRef{Base: "a"}})
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Int, Defs: []ir.Reg{r2}, Mem: &ir.MemRef{Base: "b"}})
	b.Append(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{r3}, Uses: []ir.Reg{r1, r2}})
	return ScheduledBlock{Block: b, Time: []int{0, 0, 1}, Length: 2, Slack: []int{0, 0, 0}}
}

func TestBuildEdgeSigns(t *testing.T) {
	sb := tinySchedule()
	g := Build([]ScheduledBlock{sb}, DefaultWeights())
	r1 := ir.Reg{ID: 1, Class: ir.Int}
	r2 := ir.Reg{ID: 2, Class: ir.Int}
	r3 := ir.Reg{ID: 3, Class: ir.Int}
	if w := g.EdgeWeight(r3, r1); w <= 0 {
		t.Errorf("def/use edge r3-r1 weight = %f, want positive", w)
	}
	if w := g.EdgeWeight(r3, r2); w <= 0 {
		t.Errorf("def/use edge r3-r2 weight = %f, want positive", w)
	}
	if w := g.EdgeWeight(r1, r2); w >= 0 {
		t.Errorf("same-instruction def/def edge r1-r2 weight = %f, want negative", w)
	}
}

func TestBuildNodeWeightsFromAffinityOnly(t *testing.T) {
	sb := tinySchedule()
	g := Build([]ScheduledBlock{sb}, DefaultWeights())
	i3, _ := g.NodeIndex(ir.Reg{ID: 3, Class: ir.Int})
	i1, _ := g.NodeIndex(ir.Reg{ID: 1, Class: ir.Int})
	if g.NodeWeight[i3] <= g.NodeWeight[i1] {
		// r3 participates in two affinity edges, r1 in one.
		t.Errorf("node weights: r3=%f r1=%f, want r3 > r1", g.NodeWeight[i3], g.NodeWeight[i1])
	}
}

func TestCriticalBonusAndFlexibility(t *testing.T) {
	w := DefaultWeights()
	critical := w.affinity(2, 1, 1)
	slack1 := w.affinity(2, 1, 2)
	if critical <= slack1 {
		t.Errorf("critical affinity %f must exceed slack-1 affinity %f", critical, slack1)
	}
	if ratio := critical / slack1; ratio != 2*w.CriticalBonus {
		t.Errorf("affinity ratio = %f, want flexibility*bonus = %f", ratio, 2*w.CriticalBonus)
	}
}

func TestDepthFactorCapped(t *testing.T) {
	w := DefaultWeights()
	if w.depthFactor(0) != 1 {
		t.Errorf("depth 0 factor = %f", w.depthFactor(0))
	}
	if w.depthFactor(1) != w.DepthBase {
		t.Errorf("depth 1 factor = %f", w.depthFactor(1))
	}
	if w.depthFactor(10) != w.depthFactor(w.MaxDepth) {
		t.Error("depth factor not capped")
	}
	if w.depthFactor(-1) != 1 {
		t.Error("negative depth should clamp to 0")
	}
}

func TestAntiAffinityIsNegative(t *testing.T) {
	w := DefaultWeights()
	if w.antiAffinity(2, 1, 1, 1) >= 0 {
		t.Error("anti-affinity must be negative")
	}
	if math.Abs(w.antiAffinity(2, 1, 1, 1)) <= math.Abs(w.antiAffinity(2, 1, 4, 4)) {
		t.Error("anti-affinity must weaken with flexibility")
	}
}

func TestComponents(t *testing.T) {
	g := NewRCG()
	a1 := ir.Reg{ID: 1, Class: ir.Int}
	a2 := ir.Reg{ID: 2, Class: ir.Int}
	b1 := ir.Reg{ID: 3, Class: ir.Int}
	b2 := ir.Reg{ID: 4, Class: ir.Int}
	lone := ir.Reg{ID: 5, Class: ir.Int}
	g.AddEdge(a1, a2, 1)
	g.AddEdge(b1, b2, 1)
	g.AddNode(lone)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 || comps[0][0] != a1 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != lone {
		t.Errorf("isolated component = %v", comps[2])
	}
}

func TestComponentsIgnoreNegativeEdges(t *testing.T) {
	// Anti-affinity says "keep apart"; it must not fuse components.
	g := NewRCG()
	a1 := ir.Reg{ID: 1, Class: ir.Int}
	a2 := ir.Reg{ID: 2, Class: ir.Int}
	b1 := ir.Reg{ID: 3, Class: ir.Int}
	g.AddEdge(a1, a2, 5)
	g.AddEdge(a2, b1, -3) // repulsion only
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want the anti edge ignored", comps)
	}
}

func TestEdgeAccumulation(t *testing.T) {
	g := NewRCG()
	a := ir.Reg{ID: 1, Class: ir.Int}
	b := ir.Reg{ID: 2, Class: ir.Int}
	g.AddEdge(a, b, 2)
	g.AddEdge(b, a, 3)
	if w := g.EdgeWeight(a, b); w != 5 {
		t.Errorf("accumulated edge = %f, want 5", w)
	}
	g.AddEdge(a, a, 100) // self edges ignored
	if _, ok := g.NodeIndex(a); !ok {
		t.Fatal("node a missing")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestConstrainIsInfinite(t *testing.T) {
	g := NewRCG()
	a := ir.Reg{ID: 1, Class: ir.Int}
	b := ir.Reg{ID: 2, Class: ir.Int}
	g.Constrain(a, b)
	if !math.IsInf(g.EdgeWeight(a, b), -1) {
		t.Error("Constrain must create a -Inf edge")
	}
	g.AddEdge(a, b, 1000) // accumulating keeps it -Inf
	if !math.IsInf(g.EdgeWeight(a, b), -1) {
		t.Error("-Inf edge lost after accumulation")
	}
}

func TestInvariantEdgesScaled(t *testing.T) {
	// r2 is a live-in invariant: its def/use edge must be InvariantScale
	// times the computed-value edge.
	b := &ir.Block{Depth: 1}
	r1 := ir.Reg{ID: 1, Class: ir.Int} // defined in block
	r2 := ir.Reg{ID: 2, Class: ir.Int} // invariant
	r3 := ir.Reg{ID: 3, Class: ir.Int}
	r4 := ir.Reg{ID: 4, Class: ir.Int}
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Int, Defs: []ir.Reg{r1}, Mem: &ir.MemRef{Base: "a"}})
	b.Append(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{r3}, Uses: []ir.Reg{r1, r1}})
	b.Append(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{r4}, Uses: []ir.Reg{r2, r2}})
	sb := ScheduledBlock{Block: b, Time: []int{0, 1, 1}, Length: 2, Slack: []int{0, 0, 0}}
	w := DefaultWeights()
	g := Build([]ScheduledBlock{sb}, w)
	computed := g.EdgeWeight(r3, r1)
	invariant := g.EdgeWeight(r4, r2)
	if invariant >= computed {
		t.Errorf("invariant edge %f should be far below computed edge %f", invariant, computed)
	}
	want := computed * w.InvariantScale
	if math.Abs(invariant-want) > 1e-9 {
		t.Errorf("invariant edge = %f, want %f", invariant, want)
	}
}

func TestRecurrenceBonusAmplifiesAffinity(t *testing.T) {
	sb := tinySchedule()
	sb.Recurrent = []bool{false, false, true} // the add sits on a recurrence
	plain := Build([]ScheduledBlock{sb}, DefaultWeights())
	w := DefaultWeights()
	w.RecurrenceBonus = 4
	boosted := Build([]ScheduledBlock{sb}, w)
	r1 := ir.Reg{ID: 1, Class: ir.Int}
	r3 := ir.Reg{ID: 3, Class: ir.Int}
	p, b := plain.EdgeWeight(r3, r1), boosted.EdgeWeight(r3, r1)
	if b != 4*p {
		t.Errorf("recurrence affinity %f, want 4x the plain %f", b, p)
	}
	// Non-recurrent ops are untouched: the loads' anti edge is identical.
	r2 := ir.Reg{ID: 2, Class: ir.Int}
	if plain.EdgeWeight(r1, r2) != boosted.EdgeWeight(r1, r2) {
		t.Error("bonus leaked into non-recurrent edges")
	}
}

func TestRecurrenceBonusNeutralAtOne(t *testing.T) {
	sb := tinySchedule()
	sb.Recurrent = []bool{true, true, true}
	a := Build([]ScheduledBlock{sb}, DefaultWeights())
	w := DefaultWeights()
	w.RecurrenceBonus = 1
	b := Build([]ScheduledBlock{sb}, w)
	for i, r := range a.Nodes {
		if a.NodeWeight[i] != b.NodeWeight[i] {
			t.Fatalf("bonus 1 changed node weight of %s", r)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := Build([]ScheduledBlock{tinySchedule()}, DefaultWeights())
	s := g.String()
	if !strings.Contains(s, "r3") || !strings.Contains(s, "w=") {
		t.Errorf("graph dump missing content:\n%s", s)
	}
}

func TestDensity(t *testing.T) {
	sb := tinySchedule()
	if d := sb.Density(); d != 1.5 {
		t.Errorf("density = %f, want 3 ops / 2 instrs", d)
	}
	empty := ScheduledBlock{Block: &ir.Block{}}
	if empty.Density() != 0 {
		t.Error("empty block density must be 0")
	}
}
