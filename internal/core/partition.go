package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Assignment maps each symbolic register to the register bank it was
// partitioned into.
type Assignment struct {
	// Banks is the number of register banks (clusters).
	Banks int
	// Of maps each register to its bank in [0, Banks).
	Of map[ir.Reg]int
}

// Bank returns the bank of r, defaulting to 0 for registers the partitioner
// never saw (e.g. registers introduced after partitioning).
func (a *Assignment) Bank(r ir.Reg) int {
	if b, ok := a.Of[r]; ok {
		return b
	}
	return 0
}

// Counts returns how many registers landed in each bank.
func (a *Assignment) Counts() []int {
	counts := make([]int, a.Banks)
	for _, b := range a.Of {
		if b >= 0 && b < a.Banks {
			counts[b]++
		}
	}
	return counts
}

// Validate checks that every bank index is in range.
func (a *Assignment) Validate() error {
	for r, b := range a.Of {
		if b < 0 || b >= a.Banks {
			return fmt.Errorf("core: register %s assigned to bank %d of %d", r, b, a.Banks)
		}
	}
	return nil
}

// Partition assigns every RCG node to one of banks register banks with the
// greedy heuristic of Figure 4:
//
//	foreach RCG node N, in decreasing order of weight(N):
//	    Bank(N) = choose-best-bank(N)
//
// where choose-best-bank computes, for each bank, the benefit of placing
// the node there — the sum of the weights of edges to neighbors already
// assigned to that bank, minus a load-balance term proportional to how many
// registers the bank already holds — and picks the bank with the largest
// benefit.
//
// pre optionally pre-colors registers to fixed banks (Section 4.1's
// pre-coloring hook for idiosyncratic operations); pre-colored registers
// are seeded before the greedy order runs and are never moved.
//
// Ties are broken toward the less-loaded bank and then the lower bank
// index, so partitions are deterministic. (The paper's pseudocode
// initializes BestBank to 0; with the balance term active a literal
// reading would pile every neighborless register onto bank 0, defeating
// the "spread somewhat evenly" intent the text states, so the tie-break
// here follows the stated intent. See DESIGN.md §3.)
func (g *RCG) Partition(banks int, w Weights, pre map[ir.Reg]int) (*Assignment, error) {
	return g.PartitionTraced(banks, w, pre, nil)
}

// PartitionTraced is Partition with instrumentation: it records a
// "core.partition" span on tr with the node and bank counts, how many
// bank choices were decided by the load/index tie-break rather than by
// edge benefit, and the resulting bank pressure (most and least loaded
// bank sizes). A nil tr is free.
func (g *RCG) PartitionTraced(banks int, w Weights, pre map[ir.Reg]int, tr *trace.Tracer) (*Assignment, error) {
	return g.partitionWith(banks, w, pre, Variant{}, tr)
}

// partitionWith is the shared greedy engine behind PartitionTraced (zero
// variant) and PartitionVariant (perturbed tie-break regimes).
func (g *RCG) partitionWith(banks int, w Weights, pre map[ir.Reg]int, v Variant, tr *trace.Tracer) (*Assignment, error) {
	if banks < 1 {
		return nil, fmt.Errorf("core: cannot partition into %d banks", banks)
	}
	bankOrder, err := v.bankOrder(banks)
	if err != nil {
		return nil, err
	}
	sp := tr.StartSpan("core.partition")
	tieBreaks := 0
	asg := &Assignment{Banks: banks, Of: make(map[ir.Reg]int, len(g.Nodes))}
	counts := make([]int, banks)
	assigned := make([]int, len(g.Nodes)) // bank+1, 0 = unassigned
	for r, b := range pre {
		if b < 0 || b >= banks {
			return nil, fmt.Errorf("core: pre-colored register %s to bank %d of %d", r, b, banks)
		}
		if i, ok := g.index[r]; ok {
			assigned[i] = b + 1
		}
		asg.Of[r] = b
		counts[b]++
	}

	// The load-balance subtraction is scaled by the graph's mean positive
	// edge weight so that Balance is a dimensionless knob: Balance 0.5
	// means "being two registers more crowded than another bank outweighs
	// one average affinity edge". Absolute balance constants cannot work
	// because edge magnitudes vary with density, depth and flexibility.
	//
	// All floating-point accumulation below walks adjacency in sorted
	// index order: map-order summation would make near-tie bank choices
	// run-dependent, and the experiment tables must reproduce exactly.
	adj := g.sortedAdjacency()
	balanceScale := v.BalanceScale
	if balanceScale == 0 {
		balanceScale = 1
	}
	balanceUnit := w.Balance * balanceScale * meanPositiveEdge(adj)

	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if g.NodeWeight[a] != g.NodeWeight[b] {
			return g.NodeWeight[a] > g.NodeWeight[b]
		}
		ra, rb := g.Nodes[a], g.Nodes[b]
		if ra.Class != rb.Class {
			return ra.Class < rb.Class
		}
		return ra.ID < rb.ID
	})

	for _, ni := range order {
		if assigned[ni] != 0 {
			continue
		}
		best, tied := chooseBestBank(adj[ni], bankOrder, balanceUnit, assigned, counts, v.Tie)
		if tied {
			tieBreaks++
		}
		assigned[ni] = best + 1
		counts[best]++
		asg.Of[g.Nodes[ni]] = best
	}
	if sp != nil {
		maxBank, minBank := 0, 0
		if len(counts) > 0 {
			maxBank, minBank = counts[0], counts[0]
			for _, c := range counts[1:] {
				if c > maxBank {
					maxBank = c
				}
				if c < minBank {
					minBank = c
				}
			}
		}
		sp.Int("nodes", int64(len(g.Nodes))).Int("banks", int64(banks)).
			Int("tieBreaks", int64(tieBreaks)).
			Int("maxBank", int64(maxBank)).Int("minBank", int64(minBank)).End()
		tr.Add("core.partition.tiebreaks", int64(tieBreaks))
	}
	return asg, nil
}

// edgeTo is one adjacency entry in deterministic order.
type edgeTo struct {
	nb int
	w  float64
}

// sortedAdjacency materializes each node's neighbors sorted by index.
func (g *RCG) sortedAdjacency() [][]edgeTo {
	out := make([][]edgeTo, len(g.Nodes))
	for ni, m := range g.adj {
		es := make([]edgeTo, 0, len(m))
		for nb, w := range m {
			es = append(es, edgeTo{nb, w})
		}
		sort.Slice(es, func(a, b int) bool { return es[a].nb < es[b].nb })
		out[ni] = es
	}
	return out
}

// meanPositiveEdge returns the mean weight of the positive edges (1 when
// the graph has none), the normalization unit for the balance term.
func meanPositiveEdge(adj [][]edgeTo) float64 {
	sum, n := 0.0, 0
	for _, es := range adj {
		for _, e := range es {
			if e.w > 0 && !math.IsInf(e.w, 1) {
				sum += e.w
				n++
			}
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n) // each edge counted twice; the ratio is unchanged
}

// chooseBestBank evaluates each bank's benefit for node ni and returns the
// best one, plus whether the final choice was made by the load/index
// tie-break rather than by a strict benefit win (the instrumentation
// signal for "the heuristic had no opinion here"). Edges to unassigned
// neighbors contribute nothing (their placement is unknown); the balance
// term subtracts balanceUnit for every register the candidate bank
// already holds, implementing Figure 4's "spread the symbolic registers
// somewhat evenly across the available partitions". Registers on critical
// chains resist the spreading because their affinity edges carry the
// zero-slack CriticalBonus, while slack-rich streaming code yields to it —
// which is exactly the intended division: spreading buys issue bandwidth
// only where the dependence structure permits it.
// Banks are evaluated in bankOrder (a permutation of [0, banks)); with
// equal benefits the evaluation order and the tie rule decide the winner,
// which is the degree of freedom the portfolio partitioner's variants
// perturb. The identity order with TieLeastLoaded reproduces the default
// heuristic exactly.
func chooseBestBank(neighbors []edgeTo, bankOrder []int, balanceUnit float64, assigned []int, counts []int, tie TieBreak) (int, bool) {
	best := -1
	bestBenefit := math.Inf(-1)
	tied := false
	for _, rb := range bankOrder {
		benefit := -balanceUnit * float64(counts[rb])
		for _, e := range neighbors {
			if assigned[e.nb] == rb+1 {
				benefit += e.w
			}
		}
		switch {
		case best < 0 || benefit > bestBenefit:
			best, bestBenefit = rb, benefit
			tied = false
		case benefit == bestBenefit:
			switch tie {
			case TieLeastLoaded:
				if counts[rb] < counts[best] {
					best = rb
					tied = true
				}
			case TieMostLoaded:
				if counts[rb] > counts[best] {
					best = rb
					tied = true
				}
			case TieFirst:
				tied = true
			}
		}
	}
	return best, tied
}
