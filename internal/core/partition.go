package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// partScratch pools one partition call's working arrays. The Assignment
// itself (the result) is always freshly allocated; only the greedy
// engine's intermediates live here. Pooled per call, so concurrent
// partition runs over one shared cached RCG each get their own.
// off/dst/ws hold the fallback CSR adjacency for unsealed graphs; acc is
// chooseBestBank's per-bank benefit accumulator.
type partScratch struct {
	order, counts, assigned []int
	off, dst                []int32
	ws                      []float64
	acc                     []float64
}

var partPool = sync.Pool{New: func() any { return new(partScratch) }}

// Assignment maps each symbolic register to the register bank it was
// partitioned into.
type Assignment struct {
	// Banks is the number of register banks (clusters).
	Banks int
	// Of maps each register to its bank in [0, Banks).
	Of map[ir.Reg]int
}

// Bank returns the bank of r, defaulting to 0 for registers the partitioner
// never saw (e.g. registers introduced after partitioning).
func (a *Assignment) Bank(r ir.Reg) int {
	if b, ok := a.Of[r]; ok {
		return b
	}
	return 0
}

// Counts returns how many registers landed in each bank.
func (a *Assignment) Counts() []int {
	counts := make([]int, a.Banks)
	for _, b := range a.Of {
		if b >= 0 && b < a.Banks {
			counts[b]++
		}
	}
	return counts
}

// Validate checks that every bank index is in range.
func (a *Assignment) Validate() error {
	for r, b := range a.Of {
		if b < 0 || b >= a.Banks {
			return fmt.Errorf("core: register %s assigned to bank %d of %d", r, b, a.Banks)
		}
	}
	return nil
}

// Partition assigns every RCG node to one of banks register banks with the
// greedy heuristic of Figure 4:
//
//	foreach RCG node N, in decreasing order of weight(N):
//	    Bank(N) = choose-best-bank(N)
//
// where choose-best-bank computes, for each bank, the benefit of placing
// the node there — the sum of the weights of edges to neighbors already
// assigned to that bank, minus a load-balance term proportional to how many
// registers the bank already holds — and picks the bank with the largest
// benefit.
//
// pre optionally pre-colors registers to fixed banks (Section 4.1's
// pre-coloring hook for idiosyncratic operations); pre-colored registers
// are seeded before the greedy order runs and are never moved.
//
// Ties are broken toward the less-loaded bank and then the lower bank
// index, so partitions are deterministic. (The paper's pseudocode
// initializes BestBank to 0; with the balance term active a literal
// reading would pile every neighborless register onto bank 0, defeating
// the "spread somewhat evenly" intent the text states, so the tie-break
// here follows the stated intent. See DESIGN.md §3.)
func (g *RCG) Partition(banks int, w Weights, pre map[ir.Reg]int) (*Assignment, error) {
	return g.PartitionTraced(banks, w, pre, nil)
}

// PartitionTraced is Partition with instrumentation: it records a
// "core.partition" span on tr with the node and bank counts, how many
// bank choices were decided by the load/index tie-break rather than by
// edge benefit, and the resulting bank pressure (most and least loaded
// bank sizes). A nil tr is free.
func (g *RCG) PartitionTraced(banks int, w Weights, pre map[ir.Reg]int, tr *trace.Tracer) (*Assignment, error) {
	return g.partitionWith(banks, w, pre, Variant{}, tr)
}

// partitionWith is the shared greedy engine behind PartitionTraced (zero
// variant) and PartitionVariant (perturbed tie-break regimes).
func (g *RCG) partitionWith(banks int, w Weights, pre map[ir.Reg]int, v Variant, tr *trace.Tracer) (*Assignment, error) {
	if banks < 1 {
		return nil, fmt.Errorf("core: cannot partition into %d banks", banks)
	}
	bankOrder, err := v.bankOrder(banks)
	if err != nil {
		return nil, err
	}
	sp := tr.StartSpan("core.partition")
	tieBreaks := 0
	sc := partPool.Get().(*partScratch)
	defer partPool.Put(sc)
	asg := &Assignment{Banks: banks, Of: make(map[ir.Reg]int, len(g.Nodes))}
	sc.counts = scratch.Ints(sc.counts, banks)
	counts := sc.counts
	scratch.FillInts(counts, 0)
	sc.assigned = scratch.Ints(sc.assigned, len(g.Nodes))
	assigned := sc.assigned // bank+1, 0 = unassigned
	scratch.FillInts(assigned, 0)
	for r, b := range pre {
		if b < 0 || b >= banks {
			return nil, fmt.Errorf("core: pre-colored register %s to bank %d of %d", r, b, banks)
		}
		if i, ok := g.NodeIndex(r); ok {
			assigned[i] = b + 1
		}
		asg.Of[r] = b
		counts[b]++
	}

	// The load-balance subtraction is scaled by the graph's mean positive
	// edge weight so that Balance is a dimensionless knob: Balance 0.5
	// means "being two registers more crowded than another bank outweighs
	// one average affinity edge". Absolute balance constants cannot work
	// because edge magnitudes vary with density, depth and flexibility.
	//
	// All floating-point accumulation below walks adjacency in sorted
	// index order: map-order summation would make near-tie bank choices
	// run-dependent, and the experiment tables must reproduce exactly.
	off, dst, ws := g.adjacency(sc)
	balanceScale := v.BalanceScale
	if balanceScale == 0 {
		balanceScale = 1
	}
	balanceUnit := w.Balance * balanceScale * meanPositiveEdge(ws)
	sc.acc = scratch.Float64s(sc.acc, banks)

	sc.order = scratch.Ints(sc.order, len(g.Nodes))
	order := sc.order
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if g.NodeWeight[a] != g.NodeWeight[b] {
			if g.NodeWeight[a] > g.NodeWeight[b] {
				return -1
			}
			return 1
		}
		ra, rb := g.Nodes[a], g.Nodes[b]
		if ra.Class != rb.Class {
			return int(ra.Class) - int(rb.Class)
		}
		return ra.ID - rb.ID
	})

	for _, ni := range order {
		if assigned[ni] != 0 {
			continue
		}
		best, tied := chooseBestBank(dst[off[ni]:off[ni+1]], ws[off[ni]:off[ni+1]],
			bankOrder, balanceUnit, assigned, counts, sc.acc, v.Tie)
		if tied {
			tieBreaks++
		}
		assigned[ni] = best + 1
		counts[best]++
		asg.Of[g.Nodes[ni]] = best
	}
	if sp != nil {
		maxBank, minBank := 0, 0
		if len(counts) > 0 {
			maxBank, minBank = counts[0], counts[0]
			for _, c := range counts[1:] {
				if c > maxBank {
					maxBank = c
				}
				if c < minBank {
					minBank = c
				}
			}
		}
		sp.Int("nodes", int64(len(g.Nodes))).Int("banks", int64(banks)).
			Int("tieBreaks", int64(tieBreaks)).
			Int("maxBank", int64(maxBank)).Int("minBank", int64(minBank)).End()
		tr.Add("core.partition.tiebreaks", int64(tieBreaks))
	}
	return asg, nil
}

// edgeTo is one adjacency entry in deterministic order (used by RCG's
// String dump; the partition engine reads CSR arrays instead).
type edgeTo struct {
	nb int
	w  float64
}

// adjacency returns the graph's CSR adjacency with each node's neighbors
// in ascending index order: the sealed arrays when the graph was built by
// Build, otherwise a fallback materialized into the scratch (reading the
// shared, possibly cache-retained graph without mutating it).
func (g *RCG) adjacency(sc *partScratch) (off, dst []int32, ws []float64) {
	if g.adjOff != nil {
		return g.adjOff, g.adjDst, g.adjW
	}
	n := len(g.Nodes)
	sc.off = scratch.Int32s(sc.off, n+1)
	sc.dst = scratch.Int32s(sc.dst, len(g.halves))
	sc.ws = scratch.Float64s(sc.ws, len(g.halves))
	off, dst, ws = sc.off, sc.dst, sc.ws
	k := int32(0)
	for v := 0; v < n; v++ {
		off[v] = k
		start := k
		for h := g.head[v]; h >= 0; h = g.halves[h].next {
			dst[k] = g.halves[h].to
			ws[k] = g.halves[h].w
			k++
		}
		for i := start + 1; i < k; i++ {
			for j := i; j > start && dst[j] < dst[j-1]; j-- {
				dst[j], dst[j-1] = dst[j-1], dst[j]
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
	}
	off[n] = k
	return off, dst, ws
}

// meanPositiveEdge returns the mean weight of the positive edges (1 when
// the graph has none), the normalization unit for the balance term. ws is
// the CSR weight array: every edge appears twice (once per direction), in
// per-node ascending-neighbor order — the same accumulation order the
// per-node adjacency walk used, so the mean is bit-for-bit reproducible.
func meanPositiveEdge(ws []float64) float64 {
	sum, n := 0.0, 0
	for _, w := range ws {
		if w > 0 && !math.IsInf(w, 1) {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n) // each edge counted twice; the ratio is unchanged
}

// chooseBestBank evaluates each bank's benefit for node ni and returns the
// best one, plus whether the final choice was made by the load/index
// tie-break rather than by a strict benefit win (the instrumentation
// signal for "the heuristic had no opinion here"). Edges to unassigned
// neighbors contribute nothing (their placement is unknown); the balance
// term subtracts balanceUnit for every register the candidate bank
// already holds, implementing Figure 4's "spread the symbolic registers
// somewhat evenly across the available partitions". Registers on critical
// chains resist the spreading because their affinity edges carry the
// zero-slack CriticalBonus, while slack-rich streaming code yields to it —
// which is exactly the intended division: spreading buys issue bandwidth
// only where the dependence structure permits it.
// Banks are evaluated in bankOrder (a permutation of [0, banks)); with
// equal benefits the evaluation order and the tie rule decide the winner,
// which is the degree of freedom the portfolio partitioner's variants
// perturb. The identity order with TieLeastLoaded reproduces the default
// heuristic exactly.
func chooseBestBank(dst []int32, ws []float64, bankOrder []int, balanceUnit float64, assigned []int, counts []int, acc []float64, tie TieBreak) (int, bool) {
	// Accumulate every bank's benefit in one pass over the neighbors
	// instead of one pass per bank. Per bank the floating-point operation
	// sequence is unchanged — start from the balance term, then add the
	// bank's assigned-neighbor weights in ascending neighbor order — so the
	// benefits (and therefore near-tie choices) are bit-identical to the
	// per-bank walk.
	for _, rb := range bankOrder {
		acc[rb] = -balanceUnit * float64(counts[rb])
	}
	for k, nb := range dst {
		if b := assigned[nb]; b != 0 {
			acc[b-1] += ws[k]
		}
	}
	best := -1
	bestBenefit := math.Inf(-1)
	tied := false
	for _, rb := range bankOrder {
		benefit := acc[rb]
		switch {
		case best < 0 || benefit > bestBenefit:
			best, bestBenefit = rb, benefit
			tied = false
		case benefit == bestBenefit:
			switch tie {
			case TieLeastLoaded:
				if counts[rb] < counts[best] {
					best = rb
					tied = true
				}
			case TieMostLoaded:
				if counts[rb] > counts[best] {
					best = rb
					tied = true
				}
			case TieFirst:
				tied = true
			}
		}
	}
	return best, tied
}
