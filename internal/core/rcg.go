package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/trace"
)

// ScheduledBlock is the view of an "ideal schedule" (Section 4.1) that RCG
// construction consumes: a block plus, for every operation, the instruction
// it was scheduled into and its scheduling slack. The ideal schedule uses
// the issue width and latencies of the real machine but assumes a single
// monolithic multi-ported register bank.
//
// For a modulo-scheduled loop, Time is the kernel row (cycle mod II) and
// Length is the II, so operations issued together in the kernel count as
// one instruction — exactly the schedule the clustered machine must try to
// reproduce. For straight-line code, Time is the list-schedule cycle and
// Length the makespan.
type ScheduledBlock struct {
	// Block is the code in program order.
	Block *ir.Block
	// Time maps op index to ideal-schedule instruction index.
	Time []int
	// Length is the number of instructions in the ideal schedule.
	Length int
	// Slack maps op index to its scheduling slack; Flexibility = Slack+1
	// (Section 5 adds one to avoid dividing by zero).
	Slack []int
	// Recurrent optionally marks operations on dependence recurrences;
	// Weights.RecurrenceBonus amplifies their affinity edges. Nil means no
	// recurrence information (the paper's original heuristic).
	Recurrent []bool
}

// Density returns the block's DDD density: operations per ideal-schedule
// instruction (Section 5).
func (sb *ScheduledBlock) Density() float64 {
	if sb.Length == 0 {
		return 0
	}
	return float64(len(sb.Block.Ops)) / float64(sb.Length)
}

// RCG is the register component graph. Node identity is the symbolic
// register; edges accumulate signed weights as described in Section 5.
type RCG struct {
	// Nodes lists the registers in deterministic (class, ID) order.
	Nodes []ir.Reg
	// NodeWeight accumulates the importance of each node, indexed like Nodes.
	NodeWeight []float64
	index      map[ir.Reg]int
	adj        []map[int]float64
}

// NewRCG returns an empty graph.
func NewRCG() *RCG {
	return &RCG{index: make(map[ir.Reg]int)}
}

// node interns r, returning its index.
func (g *RCG) node(r ir.Reg) int {
	if i, ok := g.index[r]; ok {
		return i
	}
	i := len(g.Nodes)
	g.index[r] = i
	g.Nodes = append(g.Nodes, r)
	g.NodeWeight = append(g.NodeWeight, 0)
	g.adj = append(g.adj, make(map[int]float64))
	return i
}

// NodeIndex returns the index of r and whether it is in the graph.
func (g *RCG) NodeIndex(r ir.Reg) (int, bool) {
	i, ok := g.index[r]
	return i, ok
}

// AddEdge accumulates weight w on the undirected edge {a, b}. Either adds a
// new edge or adds w to the current value, per the paper.
func (g *RCG) AddEdge(a, b ir.Reg, w float64) {
	if a == b {
		return
	}
	ia, ib := g.node(a), g.node(b)
	g.adj[ia][ib] += w
	g.adj[ib][ia] += w
	// Accumulating into an existing -Inf edge must stay -Inf; the map
	// arithmetic already guarantees that (x + -Inf == -Inf).
}

// AddNode ensures r is present even if no operation connects it.
func (g *RCG) AddNode(r ir.Reg) { g.node(r) }

// AddNodeWeight accumulates w onto r's node weight.
func (g *RCG) AddNodeWeight(r ir.Reg, w float64) {
	g.NodeWeight[g.node(r)] += w
}

// Constrain records that a and b must never share a bank, using the
// negative-infinity edge weighting the paper describes for machine
// idiosyncrasies such as "A = B op C where each of A, B and C must be in
// separate register banks".
func (g *RCG) Constrain(a, b ir.Reg) { g.AddEdge(a, b, math.Inf(-1)) }

// EdgeWeight returns the accumulated weight between a and b (0 when no
// edge exists).
func (g *RCG) EdgeWeight(a, b ir.Reg) float64 {
	ia, ok := g.index[a]
	if !ok {
		return 0
	}
	ib, ok := g.index[b]
	if !ok {
		return 0
	}
	return g.adj[ia][ib]
}

// NumEdges returns the number of distinct edges.
func (g *RCG) NumEdges() int {
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n / 2
}

// Build constructs the RCG of one or more scheduled blocks under the
// weighting w. Passing all of a function's blocks implements the paper's
// whole-function partitioning; passing a single loop kernel implements the
// software-pipelining experiments.
//
// For every operation O of instruction I in the ideal schedule:
//
//   - for each pair (def, use) of O, an edge with positive weight records
//     that the two registers should share a bank (they appear as defined
//     and used in the same operation), and the weight is also added to both
//     node weights;
//   - for each pair of registers defined by two distinct operations of the
//     same instruction I, an edge with negative weight records that the two
//     registers should live in different banks: they are data independent
//     and the ideal schedule issued them together, so placing them apart
//     raises the probability they can issue together on the clustered
//     machine.
func Build(blocks []ScheduledBlock, w Weights) *RCG {
	return BuildTraced(blocks, w, nil)
}

// BuildTraced is Build with instrumentation: it records a
// "core.rcg.build" span on tr (node, edge and affinity-component counts,
// plus the largest component's size — the quantity that decides whether
// the greedy partition has any freedom at all). A nil tr is free.
func BuildTraced(blocks []ScheduledBlock, w Weights, tr *trace.Tracer) *RCG {
	sp := tr.StartSpan("core.rcg.build")
	g := buildRCG(blocks, w)
	if sp != nil {
		comps := g.Components()
		largest := 0
		for _, c := range comps {
			if len(c) > largest {
				largest = len(c)
			}
		}
		sp.Int("nodes", int64(len(g.Nodes))).Int("edges", int64(g.NumEdges())).
			Int("components", int64(len(comps))).Int("largestComponent", int64(largest)).End()
	}
	return g
}

func buildRCG(blocks []ScheduledBlock, w Weights) *RCG {
	g := NewRCG()
	for bi := range blocks {
		sb := &blocks[bi]
		density := sb.Density()
		depth := sb.Block.Depth
		flex := func(op int) int {
			if op < len(sb.Slack) {
				return sb.Slack[op] + 1
			}
			return 1
		}
		// Edges incident to loop invariants are scaled down: separating an
		// invariant from its consumer costs one hoisted preheader copy,
		// not a recurring kernel copy.
		defined := sb.Block.Defined()
		scale := func(regs ...ir.Reg) float64 {
			for _, r := range regs {
				if !defined[r] {
					return w.InvariantScale
				}
			}
			return 1
		}
		// Ensure every register appears even if isolated.
		for _, r := range sb.Block.Registers() {
			g.AddNode(r)
		}
		// Group operations by instruction.
		instrs := make(map[int][]int)
		var times []int
		for op, t := range sb.Time {
			if _, ok := instrs[t]; !ok {
				times = append(times, t)
			}
			instrs[t] = append(instrs[t], op)
		}
		sort.Ints(times)
		for _, t := range times {
			ops := instrs[t]
			for _, oi := range ops {
				op := sb.Block.Ops[oi]
				aff := w.affinity(density, depth, flex(oi))
				if w.RecurrenceBonus > 0 && w.RecurrenceBonus != 1 &&
					oi < len(sb.Recurrent) && sb.Recurrent[oi] {
					aff *= w.RecurrenceBonus
				}
				for _, d := range op.Defs {
					for _, u := range op.Uses {
						if d == u {
							continue
						}
						e := aff * scale(d, u)
						g.AddEdge(d, u, e)
						g.AddNodeWeight(d, e)
						g.AddNodeWeight(u, e)
					}
				}
			}
			for x := 0; x < len(ops); x++ {
				for y := x + 1; y < len(ops); y++ {
					o1, o2 := sb.Block.Ops[ops[x]], sb.Block.Ops[ops[y]]
					anti := w.antiAffinity(density, depth, flex(ops[x]), flex(ops[y]))
					for _, d1 := range o1.Defs {
						for _, d2 := range o2.Defs {
							if d1 == d2 {
								continue
							}
							g.AddEdge(d1, d2, anti*scale(d1, d2))
						}
					}
				}
			}
		}
	}
	return g
}

// Components returns the connected components of the graph's
// positive-affinity subgraph, each sorted by (class, ID), ordered by their
// smallest member. Values not connected by positive edges "are good
// candidates to be assigned to separate register banks" (Section 4.1);
// negative (anti-affinity) edges express the opposite relation and are
// ignored here — otherwise any two operations ever scheduled in the same
// instruction would fuse their components.
func (g *RCG) Components() [][]ir.Reg {
	n := len(g.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]ir.Reg
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		id := len(comps)
		stack := []int{i}
		comp[i] = id
		var members []ir.Reg
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, g.Nodes[v])
			for nb, w := range g.adj[v] {
				if w > 0 && comp[nb] < 0 {
					comp[nb] = id
					stack = append(stack, nb)
				}
			}
		}
		ir.SortRegs(members)
		comps = append(comps, members)
	}
	sort.Slice(comps, func(a, b int) bool {
		ra, rb := comps[a][0], comps[b][0]
		if ra.Class != rb.Class {
			return ra.Class < rb.Class
		}
		return ra.ID < rb.ID
	})
	return comps
}

// String dumps nodes and edges for debugging.
func (g *RCG) String() string {
	var sb strings.Builder
	for i, r := range g.Nodes {
		fmt.Fprintf(&sb, "%s (w=%.2f):", r, g.NodeWeight[i])
		nbs := make([]int, 0, len(g.adj[i]))
		for nb := range g.adj[i] {
			nbs = append(nbs, nb)
		}
		sort.Ints(nbs)
		for _, nb := range nbs {
			fmt.Fprintf(&sb, "  %s=%.2f", g.Nodes[nb], g.adj[i][nb])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
