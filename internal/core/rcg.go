package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// ScheduledBlock is the view of an "ideal schedule" (Section 4.1) that RCG
// construction consumes: a block plus, for every operation, the instruction
// it was scheduled into and its scheduling slack. The ideal schedule uses
// the issue width and latencies of the real machine but assumes a single
// monolithic multi-ported register bank.
//
// For a modulo-scheduled loop, Time is the kernel row (cycle mod II) and
// Length is the II, so operations issued together in the kernel count as
// one instruction — exactly the schedule the clustered machine must try to
// reproduce. For straight-line code, Time is the list-schedule cycle and
// Length the makespan.
type ScheduledBlock struct {
	// Block is the code in program order.
	Block *ir.Block
	// Time maps op index to ideal-schedule instruction index.
	Time []int
	// Length is the number of instructions in the ideal schedule.
	Length int
	// Slack maps op index to its scheduling slack; Flexibility = Slack+1
	// (Section 5 adds one to avoid dividing by zero).
	Slack []int
	// Recurrent optionally marks operations on dependence recurrences;
	// Weights.RecurrenceBonus amplifies their affinity edges. Nil means no
	// recurrence information (the paper's original heuristic).
	Recurrent []bool
}

// Density returns the block's DDD density: operations per ideal-schedule
// instruction (Section 5).
func (sb *ScheduledBlock) Density() float64 {
	if sb.Length == 0 {
		return 0
	}
	return float64(len(sb.Block.Ops)) / float64(sb.Length)
}

// halfEdge is one direction of an undirected RCG edge. The two halves of
// an edge occupy adjacent slots (indices 2k and 2k+1), so the partner of
// half h is h^1 and both directions accumulate weight in lockstep.
type halfEdge struct {
	to, next int32 // neighbor node; next half-edge of the owning node (-1 ends)
	w        float64
}

// RCG is the register component graph. Node identity is the symbolic
// register; edges accumulate signed weights as described in Section 5.
// Adjacency is a flat half-edge pool with per-node intrusive lists — one
// allocation that doubles, instead of a map per node. A built RCG is
// read-only (the compile cache shares it across compiles); all mutation
// happens during Build/AddEdge.
type RCG struct {
	// Nodes lists the registers in insertion order.
	Nodes []ir.Reg
	// NodeWeight accumulates the importance of each node, indexed like Nodes.
	NodeWeight []float64
	index      ir.RegIndex
	head       []int32 // first half-edge per node, -1 when isolated
	halves     []halfEdge

	// Sealed CSR adjacency, built once at the end of Build: node v's
	// neighbors are adjDst[adjOff[v]:adjOff[v+1]] in ascending index order
	// with weights in adjW. Partitioning — typically run many times over
	// one cached graph — reads this directly instead of re-sorting the
	// half-edge lists per call. Empty (adjOff == nil) for hand-assembled
	// graphs, which fall back to sorting on the fly.
	adjOff []int32
	adjDst []int32
	adjW   []float64
}

// NewRCG returns an empty graph.
func NewRCG() *RCG {
	return &RCG{}
}

// node interns r, returning its index.
func (g *RCG) node(r ir.Reg) int {
	i := g.index.Add(r)
	if i == len(g.Nodes) {
		g.Nodes = append(g.Nodes, r)
		g.NodeWeight = append(g.NodeWeight, 0)
		g.head = append(g.head, -1)
	}
	return i
}

// NodeIndex returns the index of r and whether it is in the graph.
func (g *RCG) NodeIndex(r ir.Reg) (int, bool) {
	i := g.index.Of(r)
	return i, i >= 0
}

// findHalf returns a's half-edge to b, or -1.
func (g *RCG) findHalf(a, b int) int32 {
	for h := g.head[a]; h >= 0; h = g.halves[h].next {
		if int(g.halves[h].to) == b {
			return h
		}
	}
	return -1
}

// AddEdge accumulates weight w on the undirected edge {a, b}. Either adds a
// new edge or adds w to the current value, per the paper.
func (g *RCG) AddEdge(a, b ir.Reg, w float64) {
	if a == b {
		return
	}
	ia, ib := g.node(a), g.node(b)
	if h := g.findHalf(ia, ib); h >= 0 {
		// Accumulating into an existing -Inf edge must stay -Inf; float
		// arithmetic already guarantees that (x + -Inf == -Inf).
		g.halves[h].w += w
		g.halves[h^1].w += w
		return
	}
	g.halves = append(g.halves,
		halfEdge{to: int32(ib), next: g.head[ia], w: w},
		halfEdge{to: int32(ia), next: g.head[ib], w: w})
	g.head[ia] = int32(len(g.halves) - 2)
	g.head[ib] = int32(len(g.halves) - 1)
}

// AddNode ensures r is present even if no operation connects it.
func (g *RCG) AddNode(r ir.Reg) { g.node(r) }

// AddNodeWeight accumulates w onto r's node weight.
func (g *RCG) AddNodeWeight(r ir.Reg, w float64) {
	g.NodeWeight[g.node(r)] += w
}

// Constrain records that a and b must never share a bank, using the
// negative-infinity edge weighting the paper describes for machine
// idiosyncrasies such as "A = B op C where each of A, B and C must be in
// separate register banks".
func (g *RCG) Constrain(a, b ir.Reg) { g.AddEdge(a, b, math.Inf(-1)) }

// EdgeWeight returns the accumulated weight between a and b (0 when no
// edge exists).
func (g *RCG) EdgeWeight(a, b ir.Reg) float64 {
	ia := g.index.Of(a)
	ib := g.index.Of(b)
	if ia < 0 || ib < 0 {
		return 0
	}
	if h := g.findHalf(ia, ib); h >= 0 {
		return g.halves[h].w
	}
	return 0
}

// NumEdges returns the number of distinct edges.
func (g *RCG) NumEdges() int { return len(g.halves) / 2 }

// ForEachEdge visits every distinct undirected edge {a, b} exactly once,
// with a < b (node indices into Nodes), in deterministic order. The two
// halves of an edge occupy adjacent pool slots, so slot 2k is always the
// first-inserted direction; visiting the even slots enumerates each edge
// once regardless of insertion pattern. Exact solvers (internal/exact)
// consume this to build their own working copy of the adjacency without
// reaching into the pool.
func (g *RCG) ForEachEdge(f func(a, b int, w float64)) {
	for v := range g.Nodes {
		for h := g.head[v]; h >= 0; h = g.halves[h].next {
			if to := int(g.halves[h].to); to > v {
				f(v, to, g.halves[h].w)
			}
		}
	}
}

// Build constructs the RCG of one or more scheduled blocks under the
// weighting w. Passing all of a function's blocks implements the paper's
// whole-function partitioning; passing a single loop kernel implements the
// software-pipelining experiments.
//
// For every operation O of instruction I in the ideal schedule:
//
//   - for each pair (def, use) of O, an edge with positive weight records
//     that the two registers should share a bank (they appear as defined
//     and used in the same operation), and the weight is also added to both
//     node weights;
//   - for each pair of registers defined by two distinct operations of the
//     same instruction I, an edge with negative weight records that the two
//     registers should live in different banks: they are data independent
//     and the ideal schedule issued them together, so placing them apart
//     raises the probability they can issue together on the clustered
//     machine.
func Build(blocks []ScheduledBlock, w Weights) *RCG {
	return BuildTraced(blocks, w, nil)
}

// BuildTraced is Build with instrumentation: it records a
// "core.rcg.build" span on tr (node, edge and affinity-component counts,
// plus the largest component's size — the quantity that decides whether
// the greedy partition has any freedom at all). A nil tr is free.
func BuildTraced(blocks []ScheduledBlock, w Weights, tr *trace.Tracer) *RCG {
	return BuildScratch(blocks, w, tr, nil)
}

// BuildScratch is BuildTraced drawing construction working buffers (the
// dense register index, defined-set bits and instruction grouping) from
// the compile's scratch arena; nil falls back to a shared pool. The
// returned graph never aliases scratch memory — the compile cache retains
// built RCGs across compiles.
func BuildScratch(blocks []ScheduledBlock, w Weights, tr *trace.Tracer, a *scratch.Arena) *RCG {
	sp := tr.StartSpan("core.rcg.build")
	g := buildRCG(blocks, w, a)
	if sp != nil {
		comps := g.Components()
		largest := 0
		for _, c := range comps {
			if len(c) > largest {
				largest = len(c)
			}
		}
		sp.Int("nodes", int64(len(g.Nodes))).Int("edges", int64(g.NumEdges())).
			Int("components", int64(len(comps))).Int("largestComponent", int64(largest)).End()
	}
	return g
}

// rcgScratch is RCG construction's per-block working set: the dense
// register index, the defined-set bits, the sorted-register buffer and the
// instruction grouping table (ops bucketed by ideal-schedule time).
type rcgScratch struct {
	ri       ir.RegIndex
	defined  []bool
	regs     []ir.Reg
	instrCnt []int32
	instrOps []int32
}

var rcgPool = sync.Pool{New: func() any { return new(rcgScratch) }}

func buildRCG(blocks []ScheduledBlock, w Weights, a *scratch.Arena) *RCG {
	sc, arenaOwned := scratch.For(a, scratch.RCG, func() *rcgScratch { return new(rcgScratch) })
	if !arenaOwned {
		sc = rcgPool.Get().(*rcgScratch)
		defer rcgPool.Put(sc)
	}
	g := NewRCG()
	for bi := range blocks {
		sb := &blocks[bi]
		density := sb.Density()
		depth := sb.Block.Depth
		flex := func(op int) int {
			if op < len(sb.Slack) {
				return sb.Slack[op] + 1
			}
			return 1
		}
		// Edges incident to loop invariants are scaled down: separating an
		// invariant from its consumer costs one hoisted preheader copy,
		// not a recurring kernel copy.
		sc.ri.Reset(sb.Block)
		nr := sc.ri.Len()
		sc.defined = scratch.Bools(sc.defined, nr)
		scratch.ZeroBools(sc.defined)
		for _, op := range sb.Block.Ops {
			for _, d := range op.Defs {
				sc.defined[sc.ri.Of(d)] = true
			}
		}
		scale := func(regs ...ir.Reg) float64 {
			for _, r := range regs {
				if !sc.defined[sc.ri.Of(r)] {
					return w.InvariantScale
				}
			}
			return 1
		}
		// Ensure every register appears even if isolated, in the same
		// deterministic (class, ID) order Block.Registers used.
		sc.regs = sc.ri.AppendSorted(sc.regs[:0])
		g.grow(len(sc.regs))
		for _, r := range sc.regs {
			g.AddNode(r)
		}
		// Group operations by instruction: bucket op indices by time with a
		// count/prefix/fill pass. Buckets come out in ascending time order
		// with ops in program order within each — the iteration order the
		// old map+sort grouping produced.
		maxT := 0
		for _, t := range sb.Time {
			if t > maxT {
				maxT = t
			}
		}
		nt := maxT + 1
		sc.instrCnt = scratch.Int32s(sc.instrCnt, nt+1)
		cnt := sc.instrCnt
		for i := range cnt {
			cnt[i] = 0
		}
		for _, t := range sb.Time {
			cnt[t+1]++
		}
		for t := 0; t < nt; t++ {
			cnt[t+1] += cnt[t]
		}
		sc.instrOps = scratch.Int32s(sc.instrOps, len(sb.Time))
		starts := cnt // cnt[t] is now the bucket start; advance as we fill
		for op, t := range sb.Time {
			sc.instrOps[starts[t]] = int32(op)
			starts[t]++
		}
		// After filling, starts[t] is the end of bucket t (== old start of
		// bucket t+1), so bucket t spans [end of t-1, starts[t]).
		prev := int32(0)
		for t := 0; t < nt; t++ {
			ops := sc.instrOps[prev:starts[t]]
			prev = starts[t]
			for _, oi32 := range ops {
				oi := int(oi32)
				op := sb.Block.Ops[oi]
				aff := w.affinity(density, depth, flex(oi))
				if w.RecurrenceBonus > 0 && w.RecurrenceBonus != 1 &&
					oi < len(sb.Recurrent) && sb.Recurrent[oi] {
					aff *= w.RecurrenceBonus
				}
				for _, d := range op.Defs {
					for _, u := range op.Uses {
						if d == u {
							continue
						}
						e := aff * scale(d, u)
						g.AddEdge(d, u, e)
						g.AddNodeWeight(d, e)
						g.AddNodeWeight(u, e)
					}
				}
			}
			for x := 0; x < len(ops); x++ {
				for y := x + 1; y < len(ops); y++ {
					o1, o2 := sb.Block.Ops[ops[x]], sb.Block.Ops[ops[y]]
					anti := w.antiAffinity(density, depth, flex(int(ops[x])), flex(int(ops[y])))
					for _, d1 := range o1.Defs {
						for _, d2 := range o2.Defs {
							if d1 == d2 {
								continue
							}
							g.AddEdge(d1, d2, anti*scale(d1, d2))
						}
					}
				}
			}
		}
	}
	g.seal()
	return g
}

// grow reserves capacity for n more nodes, so interning a block's register
// set appends without reallocating per register.
func (g *RCG) grow(n int) {
	g.Nodes = slices.Grow(g.Nodes, n)
	g.NodeWeight = slices.Grow(g.NodeWeight, n)
	g.head = slices.Grow(g.head, n)
}

// seal freezes the adjacency into the sorted CSR form partitioning reads.
// Neighbor indices are unique per node, so ascending-index order is total
// and the sealed order is deterministic. Mutating the graph (AddEdge)
// after sealing would desynchronize the CSR; Build is the only caller and
// built graphs are read-only.
func (g *RCG) seal() {
	n := len(g.Nodes)
	g.adjOff = make([]int32, n+1)
	g.adjDst = make([]int32, len(g.halves))
	g.adjW = make([]float64, len(g.halves))
	off := int32(0)
	for v := 0; v < n; v++ {
		g.adjOff[v] = off
		start := off
		for h := g.head[v]; h >= 0; h = g.halves[h].next {
			g.adjDst[off] = g.halves[h].to
			g.adjW[off] = g.halves[h].w
			off++
		}
		// Insertion sort the span by neighbor index (degrees are small).
		for i := start + 1; i < off; i++ {
			for j := i; j > start && g.adjDst[j] < g.adjDst[j-1]; j-- {
				g.adjDst[j], g.adjDst[j-1] = g.adjDst[j-1], g.adjDst[j]
				g.adjW[j], g.adjW[j-1] = g.adjW[j-1], g.adjW[j]
			}
		}
	}
	g.adjOff[n] = off
}

// Components returns the connected components of the graph's
// positive-affinity subgraph, each sorted by (class, ID), ordered by their
// smallest member. Values not connected by positive edges "are good
// candidates to be assigned to separate register banks" (Section 4.1);
// negative (anti-affinity) edges express the opposite relation and are
// ignored here — otherwise any two operations ever scheduled in the same
// instruction would fuse their components.
func (g *RCG) Components() [][]ir.Reg {
	n := len(g.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]ir.Reg
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		id := len(comps)
		stack := []int{i}
		comp[i] = id
		var members []ir.Reg
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, g.Nodes[v])
			for h := g.head[v]; h >= 0; h = g.halves[h].next {
				if nb := int(g.halves[h].to); g.halves[h].w > 0 && comp[nb] < 0 {
					comp[nb] = id
					stack = append(stack, nb)
				}
			}
		}
		ir.SortRegs(members)
		comps = append(comps, members)
	}
	sort.Slice(comps, func(a, b int) bool {
		ra, rb := comps[a][0], comps[b][0]
		if ra.Class != rb.Class {
			return ra.Class < rb.Class
		}
		return ra.ID < rb.ID
	})
	return comps
}

// String dumps nodes and edges for debugging.
func (g *RCG) String() string {
	var sb strings.Builder
	for i, r := range g.Nodes {
		fmt.Fprintf(&sb, "%s (w=%.2f):", r, g.NodeWeight[i])
		var nbs []edgeTo
		for h := g.head[i]; h >= 0; h = g.halves[h].next {
			nbs = append(nbs, edgeTo{int(g.halves[h].to), g.halves[h].w})
		}
		slices.SortFunc(nbs, func(a, b edgeTo) int { return a.nb - b.nb })
		for _, e := range nbs {
			fmt.Fprintf(&sb, "  %s=%.2f", g.Nodes[e.nb], e.w)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
