// Package core implements the paper's contribution: the register component
// graph (RCG) and the greedy heuristic that partitions symbolic registers
// across register banks (Sections 4 and 5).
//
// The RCG is an undirected weighted graph whose nodes are the symbolic
// registers of the program segment and whose edges connect registers that
// appear in the same operation. Positive edge weight means the two
// registers want to share a bank (a def and a use of one operation —
// separating them costs an inter-cluster copy); negative weight means they
// want different banks (two registers defined in the same instruction of
// the ideal schedule — placing them together makes it harder to issue the
// two defining operations simultaneously). All machine-dependent detail is
// abstracted into these node and edge weights, which is what makes the
// method retargetable.
package core

import (
	"math"
)

// Weights parameterizes RCG construction and the greedy partitioner's
// load-balance term. The paper determines both the program characteristics
// and their coefficients "in an ad hoc manner" and proposes off-line tuning
// as future work; the printed formulas are OCR-damaged, so this
// reconstruction keeps the paper's ingredients and exposes every
// coefficient (see DESIGN.md §3):
//
//   - operations scheduled in deeply nested blocks matter more
//     (DepthBase^depth, capped at MaxDepth);
//   - dense blocks — more operations per ideal-schedule instruction —
//     matter more (multiply by DDD density);
//   - inflexible operations matter more (divide by Flexibility = slack+1),
//     with an extra CriticalBonus when the operation has no slack at all
//     (it sits on a critical path of the DDD);
//   - a def and a use of one operation attract with base Affinity;
//   - two defs issued in the same instruction of the ideal schedule repel
//     with base AntiAffinity;
//   - the partitioner subtracts Balance for every register already assigned
//     to a candidate bank, spreading registers "somewhat evenly across the
//     available partitions" (Figure 4).
type Weights struct {
	// Affinity is the base weight of def/use same-operation edges.
	Affinity float64
	// AntiAffinity is the base magnitude of def/def same-instruction edges
	// (applied negatively).
	AntiAffinity float64
	// CriticalBonus multiplies contributions of zero-slack operations.
	CriticalBonus float64
	// DepthBase raises contributions by DepthBase^nestingDepth.
	DepthBase float64
	// MaxDepth caps the nesting-depth exponent.
	MaxDepth int
	// Balance is subtracted per already-assigned register when evaluating a
	// candidate bank in choose-best-bank.
	Balance float64
	// InvariantScale multiplies edges incident to loop-invariant registers
	// (live-ins never defined in the block). Copying an invariant across
	// banks costs a single hoisted preheader copy rather than a
	// per-iteration kernel copy, so affinity to invariants should barely
	// influence where computed values live.
	InvariantScale float64
	// RecurrenceBonus multiplies the affinity contributed by operations on
	// dependence recurrences (ScheduledBlock.Recurrent). A copy inserted
	// into a recurrence lengthens the cycle and raises the II directly —
	// the insight Nystrom and Eichenberger's partitioner is built on
	// (Section 6.3) — while the acyclic slack analysis cannot see it
	// (recurrence ops often carry nonzero slack). 1 disables the term,
	// reproducing the paper's heuristic; the ablation benchmarks measure
	// what larger values buy.
	RecurrenceBonus float64
}

// DefaultWeights returns the coefficients used for the paper reproduction
// runs. They were fixed once against the Section 4.2 worked example (the
// partition must split the example's two multiply chains and cost exactly
// two copies) and never tuned against the evaluation suite.
func DefaultWeights() Weights {
	return Weights{
		Affinity:        2.0,
		AntiAffinity:    1.0,
		CriticalBonus:   2.0,
		DepthBase:       10.0,
		MaxDepth:        3,
		Balance:         0.5,
		InvariantScale:  0.05,
		RecurrenceBonus: 1.0,
	}
}

// depthFactor returns DepthBase^min(depth, MaxDepth).
func (w Weights) depthFactor(depth int) float64 {
	if depth < 0 {
		depth = 0
	}
	if depth > w.MaxDepth {
		depth = w.MaxDepth
	}
	return math.Pow(w.DepthBase, float64(depth))
}

// affinity returns the weight of a def/use edge contributed by an operation
// with the given flexibility, in a block with the given density and depth.
func (w Weights) affinity(density float64, depth, flexibility int) float64 {
	v := w.Affinity * density * w.depthFactor(depth) / float64(flexibility)
	if flexibility == 1 {
		v *= w.CriticalBonus
	}
	return v
}

// antiAffinity returns the (negative) weight of a def/def edge between two
// operations issued in the same ideal-schedule instruction; the combined
// flexibility is the geometric mean of the two operations'.
func (w Weights) antiAffinity(density float64, depth, flex1, flex2 int) float64 {
	flex := math.Sqrt(float64(flex1) * float64(flex2))
	v := w.AntiAffinity * density * w.depthFactor(depth) / flex
	if flex1 == 1 && flex2 == 1 {
		v *= w.CriticalBonus
	}
	return -v
}
