package ddg

import "repro/internal/scratch"

// This file finds the dependence graph's recurrences: the strongly
// connected components of the full (distance-inclusive) graph. Nystrom and
// Eichenberger's partitioner is built around them — "they try to prevent
// inserting copies that will lengthen the recurrence constraint" — and the
// reproduction exposes the same information for diagnostics and for the
// optional recurrence-aware weighting in internal/core.

// sccFrame is one level of the iterative Tarjan DFS.
type sccFrame struct {
	v, ei int
}

// sccScratch pools the DFS working arrays; the returned components are
// always freshly allocated (callers retain them).
type sccScratch struct {
	index, low []int
	onStack    []bool
	stack      []int
	frames     []sccFrame
}

var sccPool = newPool(func() *sccScratch { return new(sccScratch) })

// tarjan runs the iterative SCC DFS over the graph, invoking emit once per
// strongly connected component — including trivial single-node ones. The
// comp slice aliases the DFS stack and is valid only for the duration of
// the emit call; callers that keep it must copy.
func (g *Graph) tarjan(sc *sccScratch, emit func(comp []int)) {
	n := len(g.Ops)
	sc.index = scratch.Ints(sc.index, n)
	sc.low = scratch.Ints(sc.low, n)
	index, low := sc.index, sc.low
	sc.onStack = scratch.Bools(sc.onStack, n)
	onStack := sc.onStack
	for i := 0; i < n; i++ {
		index[i] = -1
		onStack[i] = false
	}
	stack := sc.stack[:0]
	next := 0

	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		frames := append(sc.frames[:0], sccFrame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.Out[f.v]) {
				w := g.Out[f.v][f.ei].To
				f.ei++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, sccFrame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Done with v: pop, propagate lowlink, maybe emit component.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// The component is exactly the stack suffix back to v.
				k := len(stack) - 1
				for stack[k] != v {
					k--
				}
				comp := stack[k:]
				for _, w := range comp {
					onStack[w] = false
				}
				stack = stack[:k]
				emit(comp)
			}
		}
		sc.frames = frames // keep any growth for the next root / next call
	}
	sc.stack = stack[:0]
}

// SCCs returns the strongly connected components of the graph (Tarjan's
// algorithm, iterative), ordered by their smallest member. Components of
// size one are included only when the operation has a self-edge (a
// one-operation recurrence such as an accumulator).
func (g *Graph) SCCs() [][]int {
	sc := sccPool.get()
	defer sccPool.put(sc)
	var out [][]int
	g.tarjan(sc, func(comp []int) {
		if len(comp) > 1 || g.hasSelfEdge(comp[0]) {
			// Sorted small-to-large for deterministic output.
			c := append(make([]int, 0, len(comp)), comp...)
			sortInts(c)
			out = append(out, c)
		}
	})
	sortBySmallest(out)
	return out
}

func (g *Graph) hasSelfEdge(v int) bool {
	for _, e := range g.Out[v] {
		if e.To == v {
			return true
		}
	}
	return false
}

// RecurrenceOps returns the set of operations participating in any
// recurrence.
func (g *Graph) RecurrenceOps() []bool {
	out := make([]bool, len(g.Ops))
	for _, comp := range g.SCCs() {
		for _, v := range comp {
			out[v] = true
		}
	}
	return out
}

// RecMIIOf returns the recurrence bound considering only the cycles inside
// the given component — the per-recurrence criticality used by diagnostics.
func (g *Graph) RecMIIOf(comp []int) int {
	in := make(map[int]bool, len(comp))
	for _, v := range comp {
		in[v] = true
	}
	sub := &Graph{
		Ops: g.Ops,
		Out: make([][]Edge, len(g.Ops)),
		In:  make([][]Edge, len(g.Ops)),
	}
	for v := range g.Out {
		if !in[v] {
			continue
		}
		for _, e := range g.Out[v] {
			if in[e.To] {
				sub.Out[v] = append(sub.Out[v], e)
				sub.In[e.To] = append(sub.In[e.To], e)
			}
		}
	}
	return sub.RecMII()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortBySmallest(comps [][]int) {
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j][0] < comps[j-1][0]; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
}
