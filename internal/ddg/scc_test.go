package ddg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func TestSCCsAccumulator(t *testing.T) {
	l := ir.NewLoop("acc")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	sccs := g.SCCs()
	if len(sccs) != 1 || len(sccs[0]) != 1 || sccs[0][0] != 1 {
		t.Fatalf("SCCs = %v, want the self-recurrent add alone", sccs)
	}
	if got := g.RecMIIOf(sccs[0]); got != 2 {
		t.Errorf("component RecMII = %d, want 2", got)
	}
	rec := g.RecurrenceOps()
	if rec[0] || !rec[1] {
		t.Errorf("recurrence ops = %v", rec)
	}
}

func TestSCCsMemoryCycle(t *testing.T) {
	// x[i] = x[i-1] + b[i]: the load, add and store form one component.
	l := ir.NewLoop("mr")
	b := ir.NewLoopBuilder(l)
	prev := b.Load(ir.Float, ir.MemRef{Base: "x", Coeff: 1, Offset: -1})
	lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	s := b.Add(prev, lb)
	b.Store(s, ir.MemRef{Base: "x", Coeff: 1})
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	sccs := g.SCCs()
	if len(sccs) != 1 {
		t.Fatalf("SCCs = %v", sccs)
	}
	want := []int{0, 2, 3} // prev load, add, store; the b load streams
	if len(sccs[0]) != 3 {
		t.Fatalf("component = %v, want %v", sccs[0], want)
	}
	for i, v := range want {
		if sccs[0][i] != v {
			t.Fatalf("component = %v, want %v", sccs[0], want)
		}
	}
	if got := g.RecMIIOf(sccs[0]); got != g.RecMII() {
		t.Errorf("single-recurrence loop: component bound %d vs graph %d", got, g.RecMII())
	}
}

func TestSCCsAcyclic(t *testing.T) {
	l := ir.NewLoop("st")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.Store(b.Mul(x, x), ir.MemRef{Base: "c", Coeff: 1})
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	if sccs := g.SCCs(); len(sccs) != 0 {
		t.Errorf("streaming loop has recurrences: %v", sccs)
	}
}

func TestSCCsConsistentWithRecMII(t *testing.T) {
	// The graph RecMII equals the max over its components' bounds.
	cfg := machine.Ideal16()
	for _, l := range loopgen.Generate(loopgen.Params{N: 30, Seed: 53}) {
		g := Build(l.Body, cfg, Options{Carried: true})
		max := 1
		for _, comp := range g.SCCs() {
			if v := g.RecMIIOf(comp); v > max {
				max = v
			}
		}
		if got := g.RecMII(); got != max {
			t.Errorf("%s: RecMII %d, component max %d", l.Name, got, max)
		}
	}
}
