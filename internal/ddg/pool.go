package ddg

import "sync"

// pool is a small typed wrapper over sync.Pool used for the package's
// fallback scratch (when no arena is supplied).
type pool[T any] struct{ p sync.Pool }

func newPool[T any](mk func() T) *pool[T] {
	return &pool[T]{p: sync.Pool{New: func() any { return mk() }}}
}

func (p *pool[T]) get() T  { return p.p.Get().(T) }
func (p *pool[T]) put(v T) { p.p.Put(v) }
