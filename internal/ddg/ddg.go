// Package ddg builds data dependence graphs (the paper's DDDs) for basic
// blocks and software-pipelined loops, and computes the minimum initiation
// interval bounds that drive modulo scheduling: the recurrence-constrained
// RecMII and the resource-constrained ResMII (Section 2).
//
// Register dependences (true, anti, output) are found by a linear scan over
// the block, including the loop-carried dependences of distance 1 created
// by values defined in one iteration and used in the next. Memory
// dependences are resolved with an affine subscript test: references are of
// the form Base[Coeff*i+Offset], so two references to the same array either
// provably never collide, collide at a fixed iteration distance, or are
// treated conservatively.
//
// Construction is allocation-lean: per-register scan state is indexed by a
// dense ir.RegIndex instead of a map, edges accumulate in reusable scratch
// (see internal/scratch), and the finished graph's adjacency is carved from
// one exactly-sized slab — the only allocations a build retains.
package ddg

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// Kind classifies a dependence edge.
type Kind uint8

const (
	// True is a flow dependence: the source defines a register the sink reads.
	True Kind = iota
	// Anti orders a read before a subsequent write of the same register.
	Anti
	// Output orders two writes of the same register.
	Output
	// Mem orders two memory references that may touch the same location.
	Mem
)

// String names the dependence kind.
func (k Kind) String() string {
	switch k {
	case True:
		return "true"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Mem:
		return "mem"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Edge is a dependence from operation From to operation To (indices into
// the graph's op slice). In a modulo schedule the constraint it imposes is
//
//	time(To) >= time(From) + Latency - II*Distance
//
// where Distance is the iteration distance (omega): 0 for intra-iteration
// dependences, >=1 for loop-carried ones.
type Edge struct {
	From, To int
	Kind     Kind
	// Latency is the minimum cycle separation at distance 0.
	Latency int
	// Distance is the iteration distance (omega).
	Distance int
	// Reg is the register carrying a register dependence (zero for Mem).
	Reg ir.Reg
}

// Graph is the dependence graph of one block. All distance-0 edges point
// forward in program order, so every cycle has total distance >= 1 and
// RecMII is finite.
type Graph struct {
	// Ops aliases the block's operations; indices in edges refer to it.
	Ops []*ir.Op
	// Out and In are adjacency lists per operation index.
	Out [][]Edge
	In  [][]Edge
	// Carried reports whether loop-carried dependences were included.
	Carried bool
	nEdges  int
}

// Options controls graph construction.
type Options struct {
	// Carried includes loop-carried dependences (build the graph for a
	// software-pipelined loop). Without it the graph is the acyclic DDD of
	// straight-line code.
	Carried bool
	// MemFlowLatency overrides the latency of store-to-load memory
	// dependences; <=0 means "use the store latency", modeling a value
	// visible to loads only once the store completes.
	MemFlowLatency int
	// Tracer records a "ddg.build" span per construction; nil disables.
	Tracer *trace.Tracer
	// Scratch optionally supplies the compile's scratch arena so repeated
	// builds reuse working buffers; nil falls back to a shared pool.
	// Results never alias scratch memory.
	Scratch *scratch.Arena
}

// regState is the per-register scan state, indexed densely by ir.RegIndex.
type regState struct {
	firstDef  int32 // first def in program order, -1 if none
	lastDef   int32 // most recent def during the scan, -1 if none
	usesSince []int32
	allUses   []int32
}

// memGroup collects the memory operations referencing one base symbol.
type memGroup struct {
	base string
	idxs []int32
}

// buildScratch is one build's reusable working set: the dense register
// index and states, the flat edge accumulator, the per-node degree /
// cursor arrays and the memory grouping table. Everything here is dirty
// between builds and re-initialized on use; nothing in a returned Graph
// points into it.
type buildScratch struct {
	ri     ir.RegIndex
	states []regState
	edges  []Edge
	outDeg []int32
	inDeg  []int32
	mems   []memGroup
}

var buildPool = newPool(func() *buildScratch { return new(buildScratch) })

// getBuild fetches build scratch from the arena (slot scratch.DDG) or the
// package pool; release is a no-op for arena-owned scratch.
func getBuild(a *scratch.Arena) (*buildScratch, func()) {
	if sc, ok := scratch.For(a, scratch.DDG, func() *buildScratch { return new(buildScratch) }); ok {
		return sc, func() {}
	}
	sc := buildPool.get()
	return sc, func() { buildPool.put(sc) }
}

// add records e in the scratch accumulator unless it is an unconstraining
// distance-0 self-edge (self dependences with distance >= 1 are kept: an
// accumulator's true self-dependence bounds the II).
func (sc *buildScratch) add(e Edge) {
	if e.From == e.To && e.Distance == 0 {
		return
	}
	sc.edges = append(sc.edges, e)
	sc.outDeg[e.From]++
	sc.inDeg[e.To]++
}

// Build constructs the dependence graph of block b under the latency table
// of cfg.
func Build(b *ir.Block, cfg *machine.Config, opt Options) *Graph {
	sp := opt.Tracer.StartSpan("ddg.build")
	sc, release := getBuild(opt.Scratch)
	n := len(b.Ops)
	sc.edges = sc.edges[:0]
	sc.outDeg = scratch.Int32s(sc.outDeg, n)
	sc.inDeg = scratch.Int32s(sc.inDeg, n)
	for i := 0; i < n; i++ {
		sc.outDeg[i], sc.inDeg[i] = 0, 0
	}

	g := &Graph{Ops: b.Ops, Carried: opt.Carried}
	sc.addRegisterDeps(g, b, cfg, opt)
	sc.addMemoryDeps(g, cfg, opt)
	g.assemble(sc)
	release()
	sp.Int("ops", int64(len(g.Ops))).Int("edges", int64(g.nEdges)).End()
	return g
}

// assemble carves the accumulated edges into the graph's Out/In adjacency:
// one slab of 2*E edges, with each node's lists sliced out of it at exact
// size. The scratch degree arrays double as fill cursors.
func (g *Graph) assemble(sc *buildScratch) {
	n := len(g.Ops)
	e := len(sc.edges)
	g.nEdges = e
	g.Out = make([][]Edge, n)
	g.In = make([][]Edge, n)
	if e == 0 {
		return
	}
	slab := make([]Edge, 2*e)
	off := 0
	for i := 0; i < n; i++ {
		d := int(sc.outDeg[i])
		g.Out[i] = slab[off : off : off+d]
		off += d
	}
	for i := 0; i < n; i++ {
		d := int(sc.inDeg[i])
		g.In[i] = slab[off : off : off+d]
		off += d
	}
	for _, ed := range sc.edges {
		g.Out[ed.From] = append(g.Out[ed.From], ed)
		g.In[ed.To] = append(g.In[ed.To], ed)
	}
}

// addEdge records e directly on a graph under construction. The main build
// path accumulates through scratch instead; this append path serves the
// small diagnostic subgraphs (RecMIIOf).
func (g *Graph) addEdge(e Edge) {
	if e.From == e.To && e.Distance == 0 {
		return
	}
	g.Out[e.From] = append(g.Out[e.From], e)
	g.In[e.To] = append(g.In[e.To], e)
	g.nEdges++
}

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int { return g.nEdges }

// WithOps returns a shallow copy of g whose Ops alias ops, the caller's
// own operation slice; the edge structure is shared read-only. The compile
// cache uses it to rebind a structurally identical memoized graph onto the
// requesting block, so cached results never alias another loop's
// operations. ops must be operation-for-operation identical in opcode,
// class, operands and memory references to the ops the graph was built
// from — the content-addressed key guarantees exactly that.
func (g *Graph) WithOps(ops []*ir.Op) *Graph {
	if len(g.Ops) == len(ops) && (len(ops) == 0 || &g.Ops[0] == &ops[0]) {
		return g // already bound to this very slice
	}
	c := *g
	c.Ops = ops
	return &c
}

func (sc *buildScratch) addRegisterDeps(g *Graph, b *ir.Block, cfg *machine.Config, opt Options) {
	sc.ri.Reset(b)
	nr := sc.ri.Len()
	if cap(sc.states) < nr {
		states := make([]regState, nr, cap(sc.states)*2+nr)
		copy(states, sc.states[:cap(sc.states)])
		sc.states = states
	}
	sc.states = sc.states[:nr]
	for i := range sc.states {
		s := &sc.states[i]
		s.firstDef, s.lastDef = -1, -1
		s.usesSince = s.usesSince[:0]
		s.allUses = s.allUses[:0]
	}
	state := func(r ir.Reg) *regState { return &sc.states[sc.ri.Of(r)] }

	for i, op := range g.Ops {
		for _, u := range op.Uses {
			s := state(u)
			if s.lastDef >= 0 {
				sc.add(Edge{
					From: int(s.lastDef), To: i, Kind: True,
					Latency: cfg.Latency(g.Ops[s.lastDef]), Reg: u,
				})
			}
			s.usesSince = append(s.usesSince, int32(i))
			s.allUses = append(s.allUses, int32(i))
		}
		for _, d := range op.Defs {
			s := state(d)
			if s.lastDef >= 0 {
				sc.add(Edge{From: int(s.lastDef), To: i, Kind: Output, Latency: 1, Reg: d})
			}
			for _, j := range s.usesSince {
				if int(j) != i {
					sc.add(Edge{From: int(j), To: i, Kind: Anti, Latency: 0, Reg: d})
				}
			}
			if s.firstDef < 0 {
				s.firstDef = int32(i)
			}
			s.lastDef = int32(i)
			s.usesSince = s.usesSince[:0]
		}
	}

	if !opt.Carried {
		return
	}
	// Loop-carried register dependences at distance 1: the last def of an
	// iteration reaches uses that precede the first def of the next
	// iteration (upward-exposed uses). These carried TRUE dependences are
	// the recurrences that bound RecMII.
	//
	// Carried ANTI and OUTPUT register dependences are deliberately not
	// emitted: they would force every value's lifetime under the II and
	// rigidly lock schedules (a triad lane's five ops would all be pinned
	// to one kernel row). Rau's modulo scheduling instead assumes the
	// register allocator renames overlapping lifetimes — rotating
	// registers or modulo variable expansion — and the allocator in
	// internal/regalloc does exactly that, charging ceil(lifetime/II)
	// physical registers per value.
	for si := range sc.states {
		s := &sc.states[si]
		if s.lastDef < 0 {
			continue // pure live-in (loop invariant): no carried edge
		}
		for _, j := range s.allUses {
			// A use is upward exposed when it precedes every def of the
			// register. A use inside the first defining op itself (an
			// accumulator like "add r6, r6, r5") also reads the previous
			// iteration's value, because uses read before defs write; that
			// self-edge with distance 1 is exactly the recurrence that
			// bounds RecMII.
			if j <= s.firstDef {
				sc.add(Edge{
					From: int(s.lastDef), To: int(j), Kind: True, Distance: 1,
					Latency: cfg.Latency(g.Ops[s.lastDef]),
					Reg:     g.Ops[s.lastDef].Def(),
				})
			}
		}
	}
}

func (sc *buildScratch) addMemoryDeps(g *Graph, cfg *machine.Config, opt Options) {
	flowLat := opt.MemFlowLatency
	if flowLat <= 0 {
		flowLat = cfg.Lat.Store
	}
	// Group memory operations by base symbol. The handful of distinct
	// bases per loop makes a linear probe cheaper than a map, and the
	// group index slices recycle across builds.
	groups := sc.mems[:0]
	for i, op := range g.Ops {
		if op.Mem == nil {
			continue
		}
		gi := -1
		for k := range groups {
			if groups[k].base == op.Mem.Base {
				gi = k
				break
			}
		}
		if gi < 0 {
			if len(groups) < cap(groups) {
				groups = groups[:len(groups)+1]
				groups[len(groups)-1].base = op.Mem.Base
				groups[len(groups)-1].idxs = groups[len(groups)-1].idxs[:0]
			} else {
				groups = append(groups, memGroup{base: op.Mem.Base})
			}
			gi = len(groups) - 1
		}
		groups[gi].idxs = append(groups[gi].idxs, int32(i))
	}
	sc.mems = groups
	for gi := range groups {
		refs := groups[gi].idxs
		for a := 0; a < len(refs); a++ {
			for b := a + 1; b < len(refs); b++ {
				sc.memPair(g, int(refs[a]), int(refs[b]), flowLat, opt.Carried)
			}
		}
	}
	// Drop the string references so pooled scratch does not pin blocks.
	for gi := range sc.mems {
		sc.mems[gi].base = ""
	}
}

// memPair adds dependences between memory ops i < j (program order).
func (sc *buildScratch) memPair(g *Graph, i, j, flowLat int, carried bool) {
	oi, oj := g.Ops[i], g.Ops[j]
	if oi.Code == ir.Load && oj.Code == ir.Load {
		return // load-load pairs never conflict
	}
	lat := func(from *ir.Op) int {
		if from.Code == ir.Store {
			return flowLat // store -> later access: wait for the write
		}
		return 1 // load -> store: ordering only
	}
	mi, mj := oi.Mem, oj.Mem
	switch {
	case mi.Coeff == mj.Coeff && mi.Coeff != 0:
		// Both strided identically: i at iteration k and j at iteration k'
		// collide when Coeff*k+Oi == Coeff*k'+Oj, i.e. k'-k = (Oi-Oj)/Coeff.
		diff := mi.Offset - mj.Offset
		if diff%mi.Coeff != 0 {
			return // provably never alias
		}
		d := diff / mi.Coeff
		switch {
		case d == 0:
			sc.add(Edge{From: i, To: j, Kind: Mem, Latency: lat(oi)})
		case d > 0:
			// j in a later iteration touches what i touched: i -> j, omega d.
			if carried {
				sc.add(Edge{From: i, To: j, Kind: Mem, Latency: lat(oi), Distance: d})
			}
		default:
			// i in a later iteration touches what j touched: j -> i, omega -d.
			if carried {
				sc.add(Edge{From: j, To: i, Kind: Mem, Latency: lat(oj), Distance: -d})
			}
		}
	case mi.Coeff == 0 && mj.Coeff == 0:
		if mi.Offset != mj.Offset {
			return // distinct scalars
		}
		sc.add(Edge{From: i, To: j, Kind: Mem, Latency: lat(oi)})
		if carried {
			sc.add(Edge{From: j, To: i, Kind: Mem, Latency: lat(oj), Distance: 1})
		}
	default:
		// Differing strides (or strided vs. invariant): conservative.
		sc.add(Edge{From: i, To: j, Kind: Mem, Latency: lat(oi)})
		if carried {
			sc.add(Edge{From: j, To: i, Kind: Mem, Latency: lat(oj), Distance: 1})
		}
	}
}

// String dumps the graph edges for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for i, outs := range g.Out {
		for _, e := range outs {
			fmt.Fprintf(&sb, "%3d -> %3d  %-6s lat=%d omega=%d", i, e.To, e.Kind, e.Latency, e.Distance)
			if e.Reg != ir.NoReg {
				fmt.Fprintf(&sb, " (%s)", e.Reg)
			}
			fmt.Fprintf(&sb, "  [%s -> %s]\n", g.Ops[e.From], g.Ops[e.To])
		}
	}
	return sb.String()
}
