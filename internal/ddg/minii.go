package ddg

// This file computes the lower bounds on the initiation interval of a
// modulo schedule (Section 2): RecMII from dependence recurrences and
// ResMII from resource usage, with MinII = max(RecMII, ResMII).

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II such that no dependence cycle requires more than II
// cycles per iteration of distance. For each cycle C,
//
//	II >= ceil(sum(latency) / sum(distance))
//
// and RecMII is the maximum over all cycles. An acyclic graph yields 1.
//
// The implementation searches II upward using a positive-cycle test on the
// graph with edge weights latency - II*distance (a cycle with positive
// total weight means the II is infeasible). The test is Bellman-Ford style
// relaxation, O(V*E) per candidate II, with a binary search over II.
func (g *Graph) RecMII() int {
	lo, hi := 1, 1
	for _, outs := range g.Out {
		for _, e := range outs {
			if e.Latency > 0 {
				hi += e.Latency
			}
		}
	}
	// Invariant: hi is always feasible (every cycle has distance >= 1 and
	// total latency <= hi), lo-1 is infeasible or lo == 1.
	for lo < hi {
		mid := (lo + hi) / 2
		if g.hasPositiveCycle(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasPositiveCycle reports whether the graph with edge weights
// latency - ii*distance contains a positive-weight cycle.
func (g *Graph) hasPositiveCycle(ii int) bool {
	n := len(g.Ops)
	if n == 0 {
		return false
	}
	dist := make([]int64, n) // all zero: every node is a potential cycle start
	for round := 0; round < n; round++ {
		changed := false
		for from, outs := range g.Out {
			for _, e := range outs {
				w := int64(e.Latency) - int64(ii)*int64(e.Distance)
				if nd := dist[from] + w; nd > dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after V rounds: positive cycle
}

// ResMII returns the resource-constrained minimum initiation interval for a
// machine issuing `width` general-purpose operations per cycle: every
// operation needs one issue slot, so II >= ceil(ops/width). Cluster- and
// copy-aware refinements live in the modulo scheduler, which knows where
// operations were assigned.
func ResMII(numOps, width int) int {
	if numOps == 0 {
		return 1
	}
	ii := (numOps + width - 1) / width
	if ii < 1 {
		ii = 1
	}
	return ii
}

// MinII returns max(RecMII, ResMII(width)).
func (g *Graph) MinII(width int) int {
	rec := g.RecMII()
	res := ResMII(len(g.Ops), width)
	if rec > res {
		return rec
	}
	return res
}

// Acyclic reports whether the distance-0 subgraph is acyclic (it always is
// for graphs built by this package, since distance-0 edges follow program
// order; the verifier in tests uses this as an invariant).
func (g *Graph) Acyclic() bool {
	for from, outs := range g.Out {
		for _, e := range outs {
			if e.Distance == 0 && e.To <= from {
				return false
			}
		}
	}
	return true
}
