package ddg

import "repro/internal/scratch"

// This file computes the lower bounds on the initiation interval of a
// modulo schedule (Section 2): RecMII from dependence recurrences and
// ResMII from resource usage, with MinII = max(RecMII, ResMII).

// miniiScratch holds the Bellman-Ford relaxation buffer reused across the
// binary search's candidate IIs (and, via the arena, across compiles),
// plus the SCC decomposition that restricts each relaxation to one
// recurrence's subgraph.
type miniiScratch struct {
	dist    []int64
	compOf  []int32 // node -> 1+component index, 0 = not on any cycle
	nodes   []int   // nodes of cyclic components, concatenated
	compEnd []int32 // end offset of each component in nodes
	scc     sccScratch
}

var miniiPool = newPool(func() *miniiScratch { return new(miniiScratch) })

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II such that no dependence cycle requires more than II
// cycles per iteration of distance. For each cycle C,
//
//	II >= ceil(sum(latency) / sum(distance))
//
// and RecMII is the maximum over all cycles. An acyclic graph yields 1.
//
// The implementation searches II upward using a positive-cycle test on the
// graph with edge weights latency - II*distance (a cycle with positive
// total weight means the II is infeasible). The test is Bellman-Ford style
// relaxation, O(V*E) per candidate II, with a binary search over II.
func (g *Graph) RecMII() int { return g.RecMIIScratch(nil) }

// RecMIIScratch is RecMII with the relaxation buffer drawn from the
// compile's scratch arena (slot scratch.MinII); a nil arena falls back to
// a shared pool.
//
// Every dependence cycle lives inside one strongly connected component, so
// the search decomposes the graph once and binary-searches each cyclic
// component separately: relaxation touches only the component's nodes and
// internal edges, and each component's search starts at the best bound the
// previous components established (a component that cannot raise the
// running answer is skipped outright).
func (g *Graph) RecMIIScratch(a *scratch.Arena) int {
	sc, arenaOwned := scratch.For(a, scratch.MinII, func() *miniiScratch { return new(miniiScratch) })
	if !arenaOwned {
		sc = miniiPool.get()
		defer miniiPool.put(sc)
	}
	n := len(g.Ops)
	if n == 0 {
		return 1
	}
	sc.compOf = scratch.Int32s(sc.compOf, n)
	for i := range sc.compOf {
		sc.compOf[i] = 0
	}
	sc.nodes = sc.nodes[:0]
	sc.compEnd = sc.compEnd[:0]
	g.tarjan(&sc.scc, func(comp []int) {
		if len(comp) > 1 || g.hasSelfEdge(comp[0]) {
			id := int32(len(sc.compEnd)) + 1
			for _, v := range comp {
				sc.compOf[v] = id
			}
			sc.nodes = append(sc.nodes, comp...)
			sc.compEnd = append(sc.compEnd, int32(len(sc.nodes)))
		}
	})
	sc.dist = scratch.Int64s(sc.dist, n)

	rec := 1
	start := int32(0)
	for ci, end := range sc.compEnd {
		comp := sc.nodes[start:end]
		start = end
		id := int32(ci) + 1
		// hi is always feasible for this component: every internal cycle
		// has distance >= 1 and total latency <= hi.
		hi := 1
		for _, v := range comp {
			for _, e := range g.Out[v] {
				if sc.compOf[e.To] == id && e.Latency > 0 {
					hi += e.Latency
				}
			}
		}
		if hi <= rec {
			continue // cannot raise the running bound
		}
		// Invariant: hi feasible, lo-1 infeasible or lo == rec (a component
		// whose true bound is below rec just confirms rec).
		lo := rec
		for lo < hi {
			mid := (lo + hi) / 2
			if g.hasPositiveCycleIn(mid, comp, id, sc) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		rec = lo
	}
	return rec
}

// hasPositiveCycleIn reports whether the component (nodes comp, identified
// by id in sc.compOf) contains a cycle of positive total weight under edge
// weights latency - ii*distance. Relaxation is restricted to the
// component's nodes and internal edges; sc.dist is indexed by global node
// number but only the component's entries are touched.
func (g *Graph) hasPositiveCycleIn(ii int, comp []int, id int32, sc *miniiScratch) bool {
	dist := sc.dist
	for _, v := range comp {
		dist[v] = 0 // every node is a potential cycle start
	}
	for round := 0; round < len(comp); round++ {
		changed := false
		for _, from := range comp {
			for _, e := range g.Out[from] {
				if sc.compOf[e.To] != id {
					continue
				}
				w := int64(e.Latency) - int64(ii)*int64(e.Distance)
				if nd := dist[from] + w; nd > dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after |comp| rounds: positive cycle
}

// hasPositiveCycle reports whether the graph with edge weights
// latency - ii*distance contains a positive-weight cycle.
func (g *Graph) hasPositiveCycle(ii int, sc *miniiScratch) bool {
	n := len(g.Ops)
	if n == 0 {
		return false
	}
	sc.dist = scratch.Int64s(sc.dist, n)
	dist := sc.dist
	for i := range dist {
		dist[i] = 0 // every node is a potential cycle start
	}
	for round := 0; round < n; round++ {
		changed := false
		for from, outs := range g.Out {
			for _, e := range outs {
				w := int64(e.Latency) - int64(ii)*int64(e.Distance)
				if nd := dist[from] + w; nd > dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after V rounds: positive cycle
}

// ResMII returns the resource-constrained minimum initiation interval for a
// machine issuing `width` general-purpose operations per cycle: every
// operation needs one issue slot, so II >= ceil(ops/width). Cluster- and
// copy-aware refinements live in the modulo scheduler, which knows where
// operations were assigned.
func ResMII(numOps, width int) int {
	if numOps == 0 {
		return 1
	}
	ii := (numOps + width - 1) / width
	if ii < 1 {
		ii = 1
	}
	return ii
}

// MinII returns max(RecMII, ResMII(width)).
func (g *Graph) MinII(width int) int { return g.MinIIScratch(width, nil) }

// MinIIScratch is MinII drawing RecMII's relaxation buffer from the arena.
func (g *Graph) MinIIScratch(width int, a *scratch.Arena) int {
	rec := g.RecMIIScratch(a)
	res := ResMII(len(g.Ops), width)
	if rec > res {
		return rec
	}
	return res
}

// Acyclic reports whether the distance-0 subgraph is acyclic (it always is
// for graphs built by this package, since distance-0 edges follow program
// order; the verifier in tests uses this as an invariant).
func (g *Graph) Acyclic() bool {
	for from, outs := range g.Out {
		for _, e := range outs {
			if e.Distance == 0 && e.To <= from {
				return false
			}
		}
	}
	return true
}
