package ddg

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestResMII(t *testing.T) {
	tests := []struct{ ops, width, want int }{
		{0, 16, 1},
		{1, 16, 1},
		{16, 16, 1},
		{17, 16, 2},
		{32, 16, 2},
		{33, 16, 3},
		{5, 1, 5},
	}
	for _, tt := range tests {
		if got := ResMII(tt.ops, tt.width); got != tt.want {
			t.Errorf("ResMII(%d, %d) = %d, want %d", tt.ops, tt.width, got, tt.want)
		}
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	l := ir.NewLoop("a")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Add(x, x)
	b.Store(y, ir.MemRef{Base: "c", Coeff: 1})
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	if got := g.RecMII(); got != 1 {
		t.Errorf("acyclic RecMII = %d, want 1", got)
	}
}

func TestRecMIIKnownRecurrences(t *testing.T) {
	cfg := machine.Ideal16()
	tests := []struct {
		name  string
		build func() *ir.Loop
		want  int
	}{
		{
			// acc += load: float add latency 2.
			"float accumulator", func() *ir.Loop {
				l := ir.NewLoop("f")
				b := ir.NewLoopBuilder(l)
				acc := l.NewReg(ir.Float)
				ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
				b.AddInto(acc, acc, ld)
				return l
			}, 2,
		},
		{
			// acc += load with integer add: latency 1.
			"int accumulator", func() *ir.Loop {
				l := ir.NewLoop("i")
				b := ir.NewLoopBuilder(l)
				acc := l.NewReg(ir.Int)
				ld := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
				b.AddInto(acc, acc, ld)
				return l
			}, 1,
		},
		{
			// x = x*a + b: float mul (2) + float add (2) = 4.
			"first-order recurrence", func() *ir.Loop {
				l := ir.NewLoop("fo")
				b := ir.NewLoopBuilder(l)
				x := l.NewReg(ir.Float)
				a := l.NewReg(ir.Float)
				lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
				tmp := l.NewReg(ir.Float)
				b.MulInto(tmp, x, a)
				b.AddInto(x, tmp, lb)
				return l
			}, 4,
		},
		{
			// a[i] = a[i-1] + b[i] through memory: load 2 + add 2 + store
			// 4 (flow latency) = 8 over distance 1.
			"memory recurrence", func() *ir.Loop {
				l := ir.NewLoop("mr")
				b := ir.NewLoopBuilder(l)
				prev := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1, Offset: -1})
				lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
				s := b.Add(prev, lb)
				b.Store(s, ir.MemRef{Base: "a", Coeff: 1, Offset: 0})
				return l
			}, 8,
		},
		{
			// Same but distance 2 halves the per-iteration cost: ceil(8/2).
			"distance-2 memory recurrence", func() *ir.Loop {
				l := ir.NewLoop("mr2")
				b := ir.NewLoopBuilder(l)
				prev := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1, Offset: -2})
				lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
				s := b.Add(prev, lb)
				b.Store(s, ir.MemRef{Base: "a", Coeff: 1, Offset: 0})
				return l
			}, 4,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := Build(tt.build().Body, cfg, Options{Carried: true})
			if got := g.RecMII(); got != tt.want {
				t.Errorf("RecMII = %d, want %d\n%s", got, tt.want, g)
			}
		})
	}
}

func TestMinIICombines(t *testing.T) {
	// 40 independent ops on a 16-wide machine: ResMII 3 beats RecMII 1.
	l := ir.NewLoop("w")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 40; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 40, Offset: k})
	}
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	if got := g.MinII(16); got != 3 {
		t.Errorf("MinII = %d, want 3", got)
	}
}

func TestHasPositiveCycleMonotone(t *testing.T) {
	// Feasibility is monotone in II: once an II admits no positive cycle,
	// all larger IIs must too. Check on a recurrence-heavy loop.
	l := ir.NewLoop("m")
	b := ir.NewLoopBuilder(l)
	x := l.NewReg(ir.Float)
	a := l.NewReg(ir.Float)
	tmp := l.NewReg(ir.Float)
	b.MulInto(tmp, x, a)
	b.AddInto(x, tmp, tmp)
	g := Build(l.Body, machine.Ideal16(), Options{Carried: true})
	rec := g.RecMII()
	if g.hasPositiveCycle(rec, new(miniiScratch)) {
		t.Errorf("RecMII %d reported infeasible", rec)
	}
	if rec > 1 && !g.hasPositiveCycle(rec-1, new(miniiScratch)) {
		t.Errorf("RecMII-1 = %d reported feasible", rec-1)
	}
	f := func(extra uint8) bool {
		return !g.hasPositiveCycle(rec+int(extra%32), new(miniiScratch))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
