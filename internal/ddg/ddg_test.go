package ddg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func cfg() *machine.Config { return machine.Ideal16() }

// findEdge returns the first edge from->to of the given kind.
func findEdge(g *Graph, from, to int, kind Kind) (Edge, bool) {
	for _, e := range g.Out[from] {
		if e.To == to && e.Kind == kind {
			return e, true
		}
	}
	return Edge{}, false
}

func TestTrueDependence(t *testing.T) {
	l := ir.NewLoop("t")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Add(x, x)
	_ = y
	g := Build(l.Body, cfg(), Options{})
	e, ok := findEdge(g, 0, 1, True)
	if !ok {
		t.Fatal("missing true edge load->add")
	}
	if e.Latency != 2 {
		t.Errorf("true edge latency = %d, want load latency 2", e.Latency)
	}
	if e.Distance != 0 {
		t.Errorf("distance = %d", e.Distance)
	}
}

func TestAntiAndOutputDependences(t *testing.T) {
	l := ir.NewLoop("ao")
	b := ir.NewLoopBuilder(l)
	x := l.NewReg(ir.Int)
	y := l.NewReg(ir.Int)
	// op0: x = y + y (reads y)
	b.Emit(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{x}, Uses: []ir.Reg{y, y}})
	// op1: y = x + x (anti on y wrt op0)
	b.Emit(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{y}, Uses: []ir.Reg{x, x}})
	// op2: y = x + x again (output on y wrt op1)
	b.Emit(&ir.Op{Code: ir.Add, Class: ir.Int, Defs: []ir.Reg{y}, Uses: []ir.Reg{x, x}})
	g := Build(l.Body, cfg(), Options{})
	if _, ok := findEdge(g, 0, 1, Anti); !ok {
		t.Error("missing anti edge op0->op1 on y")
	}
	if e, ok := findEdge(g, 1, 2, Output); !ok || e.Latency != 1 {
		t.Errorf("missing/wrong output edge op1->op2: %+v ok=%v", e, ok)
	}
	if _, ok := findEdge(g, 0, 1, True); !ok {
		t.Error("missing true edge op0->op1 on x")
	}
}

func TestCarriedTrueDependenceAccumulator(t *testing.T) {
	l := ir.NewLoop("acc")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld) // op1: acc = acc + ld
	g := Build(l.Body, cfg(), Options{Carried: true})
	e, ok := findEdge(g, 1, 1, True)
	if !ok {
		t.Fatal("missing carried self true edge on the accumulator")
	}
	if e.Distance != 1 || e.Latency != 2 {
		t.Errorf("self edge lat=%d omega=%d, want lat=2 omega=1", e.Latency, e.Distance)
	}
	// RecMII must equal the float add latency (2).
	if got := g.RecMII(); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
}

func TestNoCarriedAntiOrOutput(t *testing.T) {
	// Modulo variable expansion renames lifetimes, so the graph must not
	// contain carried anti/output register edges (see the package doc).
	l := ir.NewLoop("n")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Add(x, x)
	b.Store(y, ir.MemRef{Base: "c", Coeff: 1})
	g := Build(l.Body, cfg(), Options{Carried: true})
	for from := range g.Out {
		for _, e := range g.Out[from] {
			if e.Distance > 0 && (e.Kind == Anti || e.Kind == Output) {
				t.Errorf("carried %s edge %d->%d should not exist", e.Kind, from, e.To)
			}
		}
	}
}

func TestCarriedDisabledWithoutFlag(t *testing.T) {
	l := ir.NewLoop("flag")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	g := Build(l.Body, cfg(), Options{})
	for from := range g.Out {
		for _, e := range g.Out[from] {
			if e.Distance != 0 {
				t.Errorf("carried edge %d->%d built without Carried option", from, e.To)
			}
		}
	}
}

func TestMemorySameLocation(t *testing.T) {
	l := ir.NewLoop("m")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1, Offset: 0})
	b.Store(x, ir.MemRef{Base: "a", Coeff: 1, Offset: 0})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if _, ok := findEdge(g, 0, 1, Mem); !ok {
		t.Error("missing same-location load->store mem edge")
	}
}

func TestMemoryProvablyDisjoint(t *testing.T) {
	l := ir.NewLoop("d")
	b := ir.NewLoopBuilder(l)
	// a[2i] and a[2i+1] never collide.
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 2, Offset: 0})
	b.Store(x, ir.MemRef{Base: "a", Coeff: 2, Offset: 1})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if _, ok := findEdge(g, 0, 1, Mem); ok {
		t.Error("disjoint strided refs got a mem edge")
	}
	if _, ok := findEdge(g, 1, 0, Mem); ok {
		t.Error("disjoint strided refs got a reverse mem edge")
	}
}

func TestMemoryCarriedDistance(t *testing.T) {
	l := ir.NewLoop("c")
	b := ir.NewLoopBuilder(l)
	// load a[i-2]; store a[i]: the store reaches the load 2 iterations on.
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1, Offset: -2})
	b.Store(x, ir.MemRef{Base: "a", Coeff: 1, Offset: 0})
	g := Build(l.Body, cfg(), Options{Carried: true})
	e, ok := findEdge(g, 1, 0, Mem)
	if !ok {
		t.Fatal("missing carried store->load mem edge")
	}
	if e.Distance != 2 {
		t.Errorf("mem distance = %d, want 2", e.Distance)
	}
	if e.Latency != cfg().Lat.Store {
		t.Errorf("store->load latency = %d, want store latency %d", e.Latency, cfg().Lat.Store)
	}
}

func TestMemoryDifferentBasesIndependent(t *testing.T) {
	l := ir.NewLoop("b")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	b.Store(x, ir.MemRef{Base: "b", Coeff: 1})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if _, ok := findEdge(g, 0, 1, Mem); ok {
		t.Error("different arrays must not conflict")
	}
}

func TestMemoryLoadLoadNoEdge(t *testing.T) {
	l := ir.NewLoop("ll")
	b := ir.NewLoopBuilder(l)
	b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if g.NumEdges() != 0 {
		t.Errorf("load-load pair produced %d edges", g.NumEdges())
	}
}

func TestMemoryConservativeMixedStride(t *testing.T) {
	l := ir.NewLoop("mx")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 2, Offset: 0})
	b.Store(x, ir.MemRef{Base: "a", Coeff: 3, Offset: 1})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if _, ok := findEdge(g, 0, 1, Mem); !ok {
		t.Error("mixed strides must be conservatively dependent (forward)")
	}
	if e, ok := findEdge(g, 1, 0, Mem); !ok || e.Distance != 1 {
		t.Error("mixed strides must be conservatively dependent (carried reverse)")
	}
}

func TestScalarStoreStoreCycle(t *testing.T) {
	l := ir.NewLoop("ss")
	b := ir.NewLoopBuilder(l)
	x := b.Imm(ir.Int, 1)
	b.Store(x, ir.MemRef{Base: "s", Coeff: 0, Offset: 0})
	b.Store(x, ir.MemRef{Base: "s", Coeff: 0, Offset: 0})
	g := Build(l.Body, cfg(), Options{Carried: true})
	if _, ok := findEdge(g, 1, 2, Mem); !ok {
		t.Error("same scalar stores need an ordering edge")
	}
	if e, ok := findEdge(g, 2, 1, Mem); !ok || e.Distance != 1 {
		t.Error("same scalar stores need a carried reverse edge")
	}
	if got := g.RecMII(); got < 2 {
		t.Errorf("scalar store-store recurrence RecMII = %d, want >= 2", got)
	}
}

func TestDistanceZeroEdgesForward(t *testing.T) {
	// Invariant: every distance-0 edge points forward in program order,
	// making the intra-iteration subgraph acyclic.
	loops := []*ir.Loop{}
	for i := 0; i < 5; i++ {
		l := ir.NewLoop("p")
		b := ir.NewLoopBuilder(l)
		acc := l.NewReg(ir.Float)
		x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
		y := b.Mul(x, x)
		b.AddInto(acc, acc, y)
		b.Store(acc, ir.MemRef{Base: "c", Coeff: 1})
		loops = append(loops, l)
	}
	for _, l := range loops {
		g := Build(l.Body, cfg(), Options{Carried: true})
		if !g.Acyclic() {
			t.Fatalf("distance-0 subgraph cyclic:\n%s", g)
		}
	}
}
