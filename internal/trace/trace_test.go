package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing step per call.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestSpanRecordsEvent(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))
	sp := tr.StartSpan("stage.one")
	sp.Int("ops", 7).Int("ii", 3)
	sp.End()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
	e := events[0]
	if e.Name != "stage.one" {
		t.Errorf("name %q", e.Name)
	}
	// Clock calls: 1 at New, 2 at StartSpan, 3 at End -> start offset 1ms,
	// duration 1ms.
	if e.Start != 1000 || e.Dur != 1000 {
		t.Errorf("start/dur = %d/%d us, want 1000/1000", e.Start, e.Dur)
	}
	if e.Attrs["ops"] != 7 || e.Attrs["ii"] != 3 {
		t.Errorf("attrs %v", e.Attrs)
	}
}

func TestCountersAccumulate(t *testing.T) {
	tr := New()
	tr.Add("modulo.evictions", 2)
	tr.Add("modulo.evictions", 3)
	tr.Add("other", 1)
	c := tr.Counters()
	if c["modulo.evictions"] != 5 || c["other"] != 1 {
		t.Fatalf("counters %v", c)
	}
}

// TestNilTracerAllocatesNothing proves the disabled fast path: spans and
// counters on a nil tracer must not allocate at all — the acceptance
// criterion that lets every pipeline stage trace unconditionally.
func TestNilTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("x")
		sp.Int("k", 1)
		sp.End()
		tr.Add("c", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %.1f objects per op, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Events() != nil || tr.Counters() != nil || tr.Stats() != nil {
		t.Fatal("nil tracer returned non-nil data")
	}
	if tr.Summary() != "" {
		t.Fatal("nil tracer rendered a summary")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))
	tr.StartSpan("a").Int("n", 1).End()
	tr.StartSpan("b").End()
	tr.Add("count", 9)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != FormatVersion {
		t.Errorf("version %d", s.Version)
	}
	if len(s.Events) != 2 || s.Events[0].Name != "a" || s.Events[1].Name != "b" {
		t.Errorf("events %+v", s.Events)
	}
	if s.Events[0].Attrs["n"] != 1 {
		t.Errorf("attrs lost: %+v", s.Events[0])
	}
	if s.Counters["count"] != 9 {
		t.Errorf("counters %v", s.Counters)
	}
	// Re-encoding must be byte-identical: the golden-file property.
	tr2 := NewWithClock(fakeClock(time.Millisecond))
	tr2.StartSpan("a").Int("n", 1).End()
	tr2.StartSpan("b").End()
	tr2.Add("count", 9)
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("deterministic clocks produced different streams:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestReadJSONRejectsWrongVersion(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"version": 999, "events": []}`)); err == nil {
		t.Fatal("version 999 accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStatsAggregate(t *testing.T) {
	tr := NewWithClock(fakeClock(time.Millisecond))
	for i := 0; i < 3; i++ {
		tr.StartSpan("hot").End()
	}
	tr.StartSpan("cold").End()
	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("%d stats", len(stats))
	}
	if stats[0].Name != "hot" || stats[0].Count != 3 {
		t.Errorf("hot stat %+v", stats[0])
	}
	if stats[0].Total != 3*time.Millisecond || stats[0].Min != time.Millisecond || stats[0].Max != time.Millisecond {
		t.Errorf("hot durations %+v", stats[0])
	}
	sum := tr.Summary()
	for _, want := range []string{"stage", "hot", "cold"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan("worker")
				sp.Int("i", int64(i))
				sp.End()
				tr.Add("spans", 1)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Events()); n != 800 {
		t.Fatalf("%d events, want 800", n)
	}
	if c := tr.Counters()["spans"]; c != 800 {
		t.Fatalf("counter %d, want 800", c)
	}
}

// BenchmarkSpanDisabled measures the nil-tracer fast path every pipeline
// stage pays when tracing is off; compare against BenchmarkSpanEnabled.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("stage")
		sp.Int("n", int64(i))
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("stage")
		sp.Int("n", int64(i))
		sp.End()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add("c", 1)
	}
}
