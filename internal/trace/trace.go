// Package trace is the compile pipeline's measurement substrate: named
// wall-time spans with integer attributes, plus monotonic counters,
// collected into a JSON event stream and an aggregate per-stage table.
//
// The design constraint is the one ROADMAP.md cares about: the pipeline
// is a hot path, so instrumentation must cost nothing when it is off. A
// nil *Tracer is the disabled tracer — every method is nil-safe, a span
// started on a nil tracer is a nil *Span whose methods are no-ops, and
// the disabled path performs zero allocations (proven by
// TestNilTracerAllocatesNothing and BenchmarkSpanDisabled). Stage code
// therefore threads a possibly-nil *Tracer unconditionally and never
// guards call sites.
//
// A Tracer is safe for concurrent use: the experiment harness compiles
// loops from many goroutines into one tracer. Event order is the order
// in which spans End, so single-worker runs are fully deterministic —
// the property the exper golden test pins.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// FormatVersion identifies the JSON stream schema; bump it when Event or
// Stream change shape.
const FormatVersion = 1

// Event is one completed span in the stream. Times are microseconds
// relative to the tracer's creation, so streams from deterministic clocks
// are byte-stable.
type Event struct {
	// Name is the stage name, dot-separated by convention
	// (e.g. "modulo.run", "core.partition").
	Name string `json:"name"`
	// Start is the span's start offset in microseconds.
	Start int64 `json:"startUs"`
	// Dur is the span's duration in microseconds.
	Dur int64 `json:"durUs"`
	// Attrs holds the span's integer attributes (operation counts, IIs,
	// eviction counts, ...), if any.
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// Stream is the trace file: the schema version, every completed span in
// End order, and the final counter values.
type Stream struct {
	Version  int              `json:"version"`
	Events   []Event          `json:"events"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Tracer collects spans and counters. The zero value is not used; create
// one with New (or NewWithClock for deterministic tests). A nil *Tracer
// is the disabled tracer and every method on it is a cheap no-op.
type Tracer struct {
	mu       sync.Mutex
	now      func() time.Time
	start    time.Time
	events   []Event
	counters map[string]int64
}

// New returns an enabled tracer reading the real clock.
func New() *Tracer { return NewWithClock(time.Now) }

// NewWithClock returns a tracer reading time from now — tests and golden
// files inject a deterministic clock so durations are reproducible. The
// clock is only ever called under the tracer's lock, so a stateful fake
// needs no synchronization of its own.
func NewWithClock(now func() time.Time) *Tracer {
	t := &Tracer{now: now, counters: make(map[string]int64)}
	t.start = now()
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// Span is one in-flight measurement. A nil *Span (from a nil tracer) is
// inert: Int and End are no-ops.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs map[string]int64
}

// StartSpan opens a span. On a nil tracer it returns nil without
// allocating — the disabled fast path.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.clock()}
}

// Int records an integer attribute on the span and returns the span for
// chaining.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	return s
}

// End completes the span and appends it to the tracer's event stream.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock()
	s.t.mu.Lock()
	s.t.events = append(s.t.events, Event{
		Name:  s.name,
		Start: s.start.Sub(s.t.start).Microseconds(),
		Dur:   end.Sub(s.start).Microseconds(),
		Attrs: s.attrs,
	})
	s.t.mu.Unlock()
}

// Add accumulates delta onto the named counter.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Events returns a copy of the completed spans in End order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Counters returns a copy of the current counter values.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// WriteJSON emits the trace as an indented JSON Stream. Map keys are
// sorted by the encoder, so streams from deterministic clocks and
// single-worker runs are byte-identical across runs.
func (t *Tracer) WriteJSON(w io.Writer) error {
	s := &Stream{Version: FormatVersion, Events: t.Events(), Counters: t.Counters()}
	return s.WriteJSON(w)
}

// WriteJSON re-encodes a stream in the exact canonical form WriteJSON on
// a Tracer produces, so parse → re-encode round-trips byte-identically.
func (s *Stream) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a stream written by WriteJSON and validates its
// version — the round-trip half of the format contract.
func ReadJSON(r io.Reader) (*Stream, error) {
	var s Stream
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: decoding stream: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("trace: stream version %d, want %d", s.Version, FormatVersion)
	}
	return &s, nil
}

// Stat aggregates every span sharing one name.
type Stat struct {
	Name     string
	Count    int
	Total    time.Duration
	Min, Max time.Duration
}

// Stats returns per-name aggregates ordered by total time, largest first
// (ties by name, so the table is deterministic).
func (t *Tracer) Stats() []Stat {
	if t == nil {
		return nil
	}
	byName := make(map[string]*Stat)
	for _, e := range t.Events() {
		d := time.Duration(e.Dur) * time.Microsecond
		s := byName[e.Name]
		if s == nil {
			s = &Stat{Name: e.Name, Min: d, Max: d}
			byName[e.Name] = s
		}
		s.Count++
		s.Total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	out := make([]Stat, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Summary renders the aggregate per-stage wall-time table followed by the
// counters — the human-readable companion to the JSON stream, appended to
// the experiment summary by exper.SummaryWithTrace.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	stats := t.Stats()
	fmt.Fprintf(&sb, "%-24s %7s %12s %12s %12s %12s\n", "stage", "count", "total", "min", "max", "avg")
	for _, s := range stats {
		avg := time.Duration(0)
		if s.Count > 0 {
			avg = s.Total / time.Duration(s.Count)
		}
		fmt.Fprintf(&sb, "%-24s %7d %12s %12s %12s %12s\n",
			s.Name, s.Count, s.Total, s.Min, s.Max, avg)
	}
	counters := t.Counters()
	if len(counters) > 0 {
		names := make([]string, 0, len(counters))
		for k := range counters {
			names = append(names, k)
		}
		sort.Strings(names)
		sb.WriteString("counters:\n")
		for _, k := range names {
			fmt.Fprintf(&sb, "  %-30s %d\n", k, counters[k])
		}
	}
	return sb.String()
}
