// Package cluster implements the horizontally-scaled compile tier: a
// consistent-hash ring that maps request fingerprints to swpd replicas,
// and the routing client that proxies compiles to the ring owner over
// the binary wire codec with health tracking and bounded failover.
//
// The point of the ring is warm-state sharing. Every replica's caches
// (memory tier, disk tier, II-seed table) key on the structural content
// of the compile, so two identical requests answered by the same replica
// cost one compile — but a round-robin balancer scatters repeats across
// the fleet and every replica pays its own cold start. Routing by the
// request fingerprint sends each distinct problem to one deterministic
// owner, so the fleet's aggregate cache behaves like one shared cache
// with per-replica locality. Consistent hashing (rather than mod-N)
// keeps that mapping stable under membership change: when a replica
// joins or leaves, only ~1/N of the keyspace remaps, so the rest of the
// fleet stays warm (the ring property tests pin both balance and
// minimal movement).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/xxh"
)

// DefaultVnodes is the virtual-node count per replica. Random vnode
// placement balances like max-of-uniform order statistics: measured over
// 100k scattered keys, 128 points per member leaves worst-case shares
// ~18% off fair at 5-8 replicas, while 256 holds every fleet size from
// 2 to 8 within ~11% — inside the 15% bound the balance test enforces.
// The ring stays tiny (8 replicas = 2048 points, ~32KiB) and lookups
// O(log n).
const DefaultVnodes = 256

// ringSeed domain-separates the ring's vnode hashes from every other
// XXH64 use in the tree (memo keys, II seeds), so a request fingerprint
// can never coincidentally equal a vnode point by construction.
const ringSeed = 0x5250badc0ffee001

// Ring is an immutable consistent-hash ring over named replicas. Build
// with NewRing; derive changed memberships with Add/Remove (which copy).
// Immutability keeps lookups lock-free — the router swaps whole rings
// atomically when membership changes.
type Ring struct {
	peers  []string // member ids, sorted, as passed to NewRing
	vnodes int
	points []point // sorted by hash
}

// point is one virtual node: a position on the 64-bit circle owned by a
// peer (indexed into peers).
type point struct {
	hash uint64
	peer int32
}

// NewRing builds a ring over the given replica ids with vnodes virtual
// nodes each (<=0 selects DefaultVnodes). Peer ids are deduplicated;
// order does not matter — the ring is a pure function of the id set and
// vnode count, so every node of a fleet configured with the same peer
// list computes the identical ring.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for pi, id := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(id, v), peer: int32(pi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Identical hashes (vanishingly rare) tie-break by peer so the
		// ring stays a pure function of the membership set.
		return a.peer < b.peer
	})
	return r
}

// vnodeHash positions one virtual node: the peer id and the vnode index
// hashed under the ring's domain seed.
func vnodeHash(id string, v int) uint64 {
	b := make([]byte, 0, len(id)+4)
	b = append(b, id...)
	b = append(b, '#', byte(v), byte(v>>8), byte(v>>16))
	return xxh.Sum64Seed(b, ringSeed)
}

// Peers returns the ring's members in sorted order. Callers must not
// mutate the slice.
func (r *Ring) Peers() []string { return r.peers }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.peers) }

// Add returns a new ring with id joined (a no-op copy if present).
func (r *Ring) Add(id string) *Ring {
	return NewRing(append(append([]string{}, r.peers...), id), r.vnodes)
}

// Remove returns a new ring with id departed (a no-op copy if absent).
func (r *Ring) Remove(id string) *Ring {
	keep := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if p != id {
			keep = append(keep, p)
		}
	}
	return NewRing(keep, r.vnodes)
}

// Owner returns the replica owning key: the peer of the first vnode at
// or clockwise after the key's position. Empty string on an empty ring.
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.peers[r.points[r.search(key)].peer]
}

// search finds the index of the first point at or after key, wrapping.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owners returns up to n distinct replicas in failover order: the owner
// first, then each next distinct peer walking clockwise. This is the
// retry sequence the router follows when the owner is unhealthy — the
// same walk every node computes, so failover traffic for one key
// converges on one fallback replica instead of scattering.
func (r *Ring) Owners(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, steps := r.search(key), 0; steps < len(r.points) && len(out) < n; i, steps = (i+1)%len(r.points), steps+1 {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, r.peers[p])
		}
	}
	return out
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d peers, %d vnodes each}", len(r.peers), r.vnodes)
}
