package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"sync"

	"repro/internal/wire"
)

// This file defines the routing key: the SHA-256 fingerprint of the
// compile-relevant slice of a request. Routing keys on the same digest
// family as the persistent cache tier (SHA-256 at the durable boundary,
// see internal/cache), so the mapping from request to owner is stable
// across processes, architectures and restarts — a gateway, a client-side
// ring in swpc, and every replica all compute the same owner for the
// same problem without coordination.
//
// The fingerprint covers exactly the fields that change the compiled
// answer or the caches it warms: the source text, the machine spec, the
// partitioner, the refine flag and the expansion trip count. Name is
// presentation (two clients naming the same loop differently must share
// a replica's warm state) and TimeoutMS is an execution bound, not an
// input, so both are excluded — as they are from the stage caches.

// routeBufPool recycles the canonical-encoding buffer; routing is on the
// gateway's per-request hot path.
var routeBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// RouteKey fingerprints one compile request for ring placement: the
// first 8 bytes of the SHA-256 of the request's canonical encoding.
func RouteKey(req *wire.CompileRequest) uint64 {
	bp := routeBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	put := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	put(req.Source)
	b = binary.AppendUvarint(b, uint64(req.Machine.Clusters))
	// Copy model spellings that parse identically route identically.
	put(canonicalCopyModel(req.Machine.CopyModel))
	put(strings.ToLower(req.Partitioner))
	if req.Refine {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(req.ExpandTrip))

	sum := sha256.Sum256(b)
	*bp = b
	routeBufPool.Put(bp)
	return binary.BigEndian.Uint64(sum[:8])
}

// canonicalCopyModel folds the accepted copy-model spellings (see
// wire.MachineSpec.Config) into one routing form.
func canonicalCopyModel(m string) string {
	switch strings.ToLower(m) {
	case "", "embedded":
		return "embedded"
	case "copyunit", "copy_unit", "copy-unit":
		return "copyunit"
	default:
		return strings.ToLower(m)
	}
}
