package cluster

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/wire"
	"repro/internal/xxh"
)

// syntheticKeys returns n well-scattered 64-bit keys, deterministically.
func syntheticKeys(n int) []uint64 {
	keys := make([]uint64, n)
	var b [8]byte
	for i := range keys {
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		keys[i] = xxh.Sum64(b[:])
	}
	return keys
}

func peerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica%d:8080", i)
	}
	return out
}

// TestRingDeterministic pins that the ring is a pure function of the
// member set: peer order, duplicates and trailing noise must not change
// any key's owner — every node of a fleet configures its own ring, and
// they must all agree.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"p1", "p2", "p3"}, 0)
	b := NewRing([]string{"p3", "p1", "p2", "p2", ""}, 0)
	for _, k := range syntheticKeys(1000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%#x): %q vs %q for permuted membership", k, ao, bo)
		}
	}
}

// TestRingBalance checks the keyspace share per replica: with the
// default vnode count, no replica may sit more than 15% above or below
// the fair share on a large scattered key population.
func TestRingBalance(t *testing.T) {
	keys := syntheticKeys(100000)
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(peerNames(n), 0)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for peer, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev > 0.15 || dev < -0.15 {
				t.Errorf("n=%d: %s owns %d keys, %.1f%% off the fair share %.0f",
					n, peer, c, dev*100, fair)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d replicas own any keys", n, len(counts))
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: a
// replica joining an N-ring may remap at most ~1/(N+1) of the keys (all
// of them onto itself), and a replica leaving remaps exactly its own
// keys (never a key between two surviving replicas).
func TestRingMinimalMovement(t *testing.T) {
	keys := syntheticKeys(100000)
	for _, n := range []int{2, 3, 7} {
		before := NewRing(peerNames(n), 0)
		joined := "http://joiner:8080"
		after := before.Add(joined)

		moved := 0
		for _, k := range keys {
			ob, oa := before.Owner(k), after.Owner(k)
			if ob == oa {
				continue
			}
			moved++
			if oa != joined {
				t.Fatalf("n=%d: key %#x moved %q→%q, not to the joiner", n, k, ob, oa)
			}
		}
		// Expected movement is 1/(n+1); allow 25% slack for vnode
		// placement variance (deterministic, so this is not flaky).
		limit := int(float64(len(keys)) / float64(n+1) * 1.25)
		if moved > limit {
			t.Errorf("n=%d: join moved %d of %d keys, want <= %d", n, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved nothing — joiner owns no keyspace", n)
		}

		// Leaving must be the exact inverse: only the departed peer's
		// keys remap, everyone else's stay put.
		back := after.Remove(joined)
		for _, k := range keys {
			if back.Owner(k) != before.Owner(k) {
				t.Fatalf("n=%d: remove(join(ring)) is not identity for key %#x", n, k)
			}
			if after.Owner(k) != joined && after.Owner(k) != back.Owner(k) {
				t.Fatalf("n=%d: key %#x owned by %q moved on an unrelated departure", n, k, after.Owner(k))
			}
		}
	}
}

// TestOwnersFailoverOrder pins the failover walk: the first owner is
// Owner(key), every entry is distinct, and the order is stable.
func TestOwnersFailoverOrder(t *testing.T) {
	r := NewRing(peerNames(5), 0)
	for _, k := range syntheticKeys(500) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%#x, 3) = %d entries", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate peer %q in failover order %v", o, owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners(42, 99); len(got) != 5 {
		t.Fatalf("Owners capped at peer count: got %d, want 5", len(got))
	}
	if got := NewRing(nil, 0).Owners(42, 3); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

// TestRouteKey pins what routes together and what routes apart: name and
// timeout are presentation/limits (same key), while anything that
// changes the compiled answer must change the key.
func TestRouteKey(t *testing.T) {
	base := func() *wire.CompileRequest {
		return &wire.CompileRequest{
			Name:    "a",
			Source:  "0: load f1, a[1*i]\n1: add f2, f1, f1",
			Machine: wire.MachineSpec{Clusters: 4, CopyModel: "embedded"},
		}
	}
	k0 := RouteKey(base())
	if RouteKey(base()) != k0 {
		t.Fatal("RouteKey is not deterministic")
	}

	same := base()
	same.Name = "renamed"
	same.TimeoutMS = 9999
	if RouteKey(same) != k0 {
		t.Error("name/timeout changed the route key; warm state would scatter")
	}
	spelled := base()
	spelled.Machine.CopyModel = "Embedded"
	if RouteKey(spelled) != k0 {
		t.Error("copy-model capitalization changed the route key")
	}

	for name, mut := range map[string]func(*wire.CompileRequest){
		"source":      func(r *wire.CompileRequest) { r.Source += "\n2: add f3, f2, f2" },
		"clusters":    func(r *wire.CompileRequest) { r.Machine.Clusters = 8 },
		"copy model":  func(r *wire.CompileRequest) { r.Machine.CopyModel = "copyunit" },
		"partitioner": func(r *wire.CompileRequest) { r.Partitioner = "portfolio" },
		"refine":      func(r *wire.CompileRequest) { r.Refine = true },
		"expand trip": func(r *wire.CompileRequest) { r.ExpandTrip = 10 },
	} {
		req := base()
		mut(req)
		if RouteKey(req) == k0 {
			t.Errorf("%s change did not change the route key", name)
		}
	}
}
