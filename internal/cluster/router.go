package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// HopHeader marks a request as already routed once. A replica receiving
// it compiles locally no matter what its own ring says, so a membership
// disagreement between nodes (a replica mid-join, a stale -peers list)
// degrades to one extra hop instead of a forwarding loop.
const HopHeader = "X-Swp-Cluster-Hop"

// Config tunes a Router.
type Config struct {
	// Peers are the replica base URLs forming the ring (e.g.
	// "http://host1:8080"). Order does not matter.
	Peers []string
	// Self, when non-empty, is this process's own entry in Peers: keys it
	// owns are compiled locally instead of proxied. Empty means a pure
	// gateway that forwards everything.
	Self string
	// Vnodes per replica; <=0 selects DefaultVnodes (128).
	Vnodes int
	// MaxAttempts bounds how many distinct ring nodes one request may
	// visit (owner plus failovers); <=0 means min(3, len(Peers)).
	MaxAttempts int
	// Backoff is the pause before each retry hop, growing linearly per
	// attempt; <=0 means 25ms.
	Backoff time.Duration
	// Cooldown is how long a peer stays marked down after a transport
	// failure before traffic retries it; <=0 means 1s.
	Cooldown time.Duration
	// Transport overrides the pooled HTTP transport (tests inject the
	// httptest client's); nil builds a keep-alive pool sized for a fleet.
	Transport http.RoundTripper
}

// peerState is one replica's health and traffic counters.
type peerState struct {
	downUntil atomic.Int64 // unixnano; 0 = healthy
	requests  atomic.Int64 // proxied requests (batch = one per sub-batch)
	failures  atomic.Int64 // transport-level failures
}

// Router maps compile requests to ring owners and proxies the remote
// ones. Safe for concurrent use; a nil Router routes nothing (every
// request is local), so callers thread it unconditionally.
type Router struct {
	ring   *Ring
	self   string
	client *http.Client
	cfg    Config

	peers map[string]*peerState

	local     atomic.Int64
	remote    atomic.Int64
	failovers atomic.Int64
	errors    atomic.Int64

	probeStop chan struct{}
	probeOnce sync.Once
}

// NewRouter builds a router over the configured fleet.
func NewRouter(cfg Config) *Router {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
		if n := len(cfg.Peers); n < 3 {
			cfg.MaxAttempts = n
		}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt := &Router{
		ring:      NewRing(cfg.Peers, cfg.Vnodes),
		self:      cfg.Self,
		client:    &http.Client{Transport: tr},
		cfg:       cfg,
		peers:     make(map[string]*peerState),
		probeStop: make(chan struct{}),
	}
	for _, p := range rt.ring.Peers() {
		rt.peers[p] = &peerState{}
	}
	return rt
}

// Self reports this process's own peer id ("" for a pure gateway).
func (rt *Router) Self() string {
	if rt == nil {
		return ""
	}
	return rt.self
}

// Ring exposes the underlying ring (for tests and logs).
func (rt *Router) Ring() *Ring { return rt.ring }

// Enabled reports whether routing is active: a non-nil router with at
// least one peer.
func (rt *Router) Enabled() bool { return rt != nil && rt.ring.Len() > 0 }

// OwnerOf returns the ring owner for one request.
func (rt *Router) OwnerOf(req *wire.CompileRequest) string {
	return rt.ring.Owner(RouteKey(req))
}

// healthy reports whether peer is currently taking traffic.
func (rt *Router) healthy(peer string) bool {
	ps := rt.peers[peer]
	if ps == nil {
		return false
	}
	du := ps.downUntil.Load()
	return du == 0 || time.Now().UnixNano() > du
}

// markDown benches a peer for the cooldown window after a transport
// failure; the next health probe or the cooldown expiry restores it.
func (rt *Router) markDown(peer string) {
	if ps := rt.peers[peer]; ps != nil {
		ps.failures.Add(1)
		ps.downUntil.Store(time.Now().Add(rt.cfg.Cooldown).UnixNano())
	}
}

// markUp restores a peer immediately (a successful probe or request).
func (rt *Router) markUp(peer string) {
	if ps := rt.peers[peer]; ps != nil {
		ps.downUntil.Store(0)
	}
}

// candidates returns the failover-ordered peers for key, healthy ones
// first. The unhealthy tail is kept: when every candidate is benched the
// request still tries them in ring order rather than failing outright.
func (rt *Router) candidates(key uint64) []string {
	cands := rt.ring.Owners(key, rt.cfg.MaxAttempts)
	healthy := make([]string, 0, len(cands))
	benched := cands[:0:0]
	for _, p := range cands {
		if p == rt.self || rt.healthy(p) {
			healthy = append(healthy, p)
		} else {
			benched = append(benched, p)
		}
	}
	return append(healthy, benched...)
}

// Outcome is one routed compile's result. Exactly one of three shapes:
// Local (the caller should compile in-process), a decoded remote reply
// (Code + Resp or Err), or a routing failure (Code 502 + Err) after the
// attempt budget.
type Outcome struct {
	Local bool
	Peer  string // serving peer for logs/metrics ("" when local)
	Code  int
	Resp  *wire.CompileResponse
	Err   *wire.ErrorResponse
}

// Compile routes one decoded request: local if this process owns the
// key (or failover lands on it), otherwise proxied to the owner over the
// binary wire codec, walking the ring with bounded retry/backoff when a
// replica is down. A pure gateway with every candidate down answers 502.
func (rt *Router) Compile(ctx context.Context, req *wire.CompileRequest) Outcome {
	key := RouteKey(req)
	var lastErr error
	for attempt, peer := range rt.candidates(key) {
		if peer == rt.self {
			rt.local.Add(1)
			return Outcome{Local: true}
		}
		if attempt > 0 {
			rt.failovers.Add(1)
			if !rt.pause(ctx, attempt) {
				return Outcome{Code: http.StatusBadGateway, Err: &wire.ErrorResponse{Error: "cluster: " + ctx.Err().Error()}}
			}
		}
		code, resp, errResp, err := rt.compilePeer(ctx, peer, req)
		if err != nil {
			lastErr = err
			rt.markDown(peer)
			continue
		}
		rt.remote.Add(1)
		rt.markUp(peer)
		return Outcome{Peer: peer, Code: code, Resp: resp, Err: errResp}
	}
	if rt.self != "" {
		// Every remote candidate failed but this process can still
		// answer: degraded locality beats an error.
		rt.failovers.Add(1)
		rt.local.Add(1)
		return Outcome{Local: true}
	}
	rt.errors.Add(1)
	msg := "cluster: no replica reachable"
	if lastErr != nil {
		msg = fmt.Sprintf("cluster: no replica reachable: %v", lastErr)
	}
	return Outcome{Code: http.StatusBadGateway, Err: &wire.ErrorResponse{Error: msg}}
}

// pause sleeps the linear backoff for one failover attempt; false means
// the context died while waiting.
func (rt *Router) pause(ctx context.Context, attempt int) bool {
	t := time.NewTimer(time.Duration(attempt) * rt.cfg.Backoff)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// compilePeer posts one request to peer's /v1/compile as a binary frame
// and decodes the binary reply. The error return is transport-level
// (connect/read failure) and triggers failover; an HTTP-level error from
// the replica (422, 504...) is a decoded reply the client should see.
func (rt *Router) compilePeer(ctx context.Context, peer string, req *wire.CompileRequest) (int, *wire.CompileResponse, *wire.ErrorResponse, error) {
	bp := wire.GetBuffer()
	defer wire.PutBuffer(bp)
	frame := wire.AppendCompileRequest((*bp)[:0], req)
	*bp = frame

	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/compile", bytes.NewReader(frame))
	if err != nil {
		return 0, nil, nil, err
	}
	hreq.Header.Set("Content-Type", wire.ContentTypeBinary)
	hreq.Header.Set("Accept", wire.ContentTypeBinary)
	hreq.Header.Set(HopHeader, "1")
	if ps := rt.peers[peer]; ps != nil {
		ps.requests.Add(1)
	}
	hresp, err := rt.client.Do(hreq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	dec, err := wire.DecodeResponse(raw)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("decoding reply from %s (status %d): %w", peer, hresp.StatusCode, err)
	}
	if dec.Err != nil {
		return dec.Code, nil, dec.Err, nil
	}
	if dec.Compile == nil {
		return 0, nil, nil, fmt.Errorf("unexpected frame kind from %s", peer)
	}
	return http.StatusOK, dec.Compile, nil, nil
}

// BatchGroup is one owner's share of a split batch: the items plus their
// indices in the original request.
type BatchGroup struct {
	Peer    string
	Items   []wire.CompileRequest
	Indices []int
}

// SplitBatch partitions already-defaulted batch items by ring owner.
// Groups come back keyed by peer; the caller fans them out concurrently
// and merges on the original indices.
func (rt *Router) SplitBatch(items []wire.CompileRequest) []BatchGroup {
	byPeer := make(map[string]int)
	var groups []BatchGroup
	for i := range items {
		peer := rt.ring.Owner(RouteKey(&items[i]))
		gi, ok := byPeer[peer]
		if !ok {
			gi = len(groups)
			byPeer[peer] = gi
			groups = append(groups, BatchGroup{Peer: peer})
		}
		groups[gi].Items = append(groups[gi].Items, items[i])
		groups[gi].Indices = append(groups[gi].Indices, i)
	}
	return groups
}

// CompileBatch streams one owner's sub-batch: it posts the group to its
// peer as an NDJSON-streamed batch request and calls emit for every item
// as it completes, with Index remapped to the original request. Items a
// failed replica never answered fail over to the next ring node; items
// unanswered after the attempt budget are emitted as per-item 502s, so
// the caller's merge loop always receives exactly len(group.Items)
// emissions and errors stay item-level.
func (rt *Router) CompileBatch(ctx context.Context, group BatchGroup, emit func(wire.BatchItem)) {
	pending := group
	key := uint64(0)
	if len(group.Items) > 0 {
		key = RouteKey(&group.Items[0])
	}
	for attempt, peer := range rt.candidates(key) {
		if len(pending.Items) == 0 {
			return
		}
		if peer == rt.self {
			// The caller routed this group here because the owner was
			// this process; it should have compiled locally instead.
			break
		}
		if attempt > 0 {
			rt.failovers.Add(1)
			if !rt.pause(ctx, attempt) {
				break
			}
		}
		served, err := rt.batchPeer(ctx, peer, pending, emit)
		if err == nil {
			rt.remote.Add(1)
			rt.markUp(peer)
			return
		}
		rt.markDown(peer)
		// Drop the served prefix-set and fail the remainder over.
		pending = unserved(pending, served)
	}
	rt.errors.Add(1)
	for _, idx := range pending.Indices {
		emit(wire.BatchItem{Index: idx, Code: http.StatusBadGateway,
			Error: &wire.ErrorResponse{Error: "cluster: no replica reachable"}})
	}
}

// unserved filters a group down to the items not yet emitted.
func unserved(g BatchGroup, served map[int]bool) BatchGroup {
	if len(served) == 0 {
		return g
	}
	out := BatchGroup{Peer: g.Peer}
	for i, idx := range g.Indices {
		if !served[idx] {
			out.Items = append(out.Items, g.Items[i])
			out.Indices = append(out.Indices, idx)
		}
	}
	return out
}

// batchPeer posts one sub-batch to peer with NDJSON streaming and emits
// each line as it arrives, remapped to original indices. Returns the set
// of original indices served; a transport error mid-stream returns what
// was emitted so the caller retries only the remainder.
func (rt *Router) batchPeer(ctx context.Context, peer string, group BatchGroup, emit func(wire.BatchItem)) (map[int]bool, error) {
	breq := wire.BatchRequest{Items: group.Items}
	body, err := json.Marshal(&breq)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/compile/batch?stream=1", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", wire.ContentTypeJSON)
	hreq.Header.Set("Accept", wire.ContentTypeNDJSON)
	hreq.Header.Set(HopHeader, "1")
	if ps := rt.peers[peer]; ps != nil {
		ps.requests.Add(1)
	}
	hresp, err := rt.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sub-batch to %s: status %d", peer, hresp.StatusCode)
	}
	served := make(map[int]bool, len(group.Items))
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var bi wire.BatchItem
		if err := json.Unmarshal(line, &bi); err != nil {
			return served, fmt.Errorf("sub-batch line from %s: %w", peer, err)
		}
		if bi.Index < 0 || bi.Index >= len(group.Indices) {
			return served, fmt.Errorf("sub-batch from %s: index %d out of range", peer, bi.Index)
		}
		orig := group.Indices[bi.Index]
		bi.Index = orig
		served[orig] = true
		emit(bi)
	}
	if err := sc.Err(); err != nil {
		return served, err
	}
	if len(served) != len(group.Items) {
		return served, fmt.Errorf("sub-batch from %s: %d of %d items answered", peer, len(served), len(group.Items))
	}
	return served, nil
}

// StartProbing launches the active health loop: every interval each peer
// (excluding self) is probed at /healthz, benched on failure or a
// draining answer, and restored on success. Stop with Close.
func (rt *Router) StartProbing(interval time.Duration) {
	if rt == nil || interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-rt.probeStop:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

func (rt *Router) probeAll() {
	for _, peer := range rt.ring.Peers() {
		if peer == rt.self {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.markDown(peer)
		} else {
			rt.markUp(peer)
		}
	}
}

// Close stops the health probe loop and the idle connection pool.
func (rt *Router) Close() {
	if rt == nil {
		return
	}
	rt.probeOnce.Do(func() { close(rt.probeStop) })
	rt.client.CloseIdleConnections()
}

// PeerStats is one replica's routing telemetry.
type PeerStats struct {
	Requests, Failures int64
	Healthy            bool
}

// Stats snapshots the router's counters for /metrics.
type Stats struct {
	Local, Remote, Failovers, Errors int64
	Peers                            map[string]PeerStats
}

// Stats reports routing telemetry; zero on a nil router.
func (rt *Router) Stats() Stats {
	if rt == nil {
		return Stats{}
	}
	st := Stats{
		Local:     rt.local.Load(),
		Remote:    rt.remote.Load(),
		Failovers: rt.failovers.Load(),
		Errors:    rt.errors.Load(),
		Peers:     make(map[string]PeerStats, len(rt.peers)),
	}
	for id, ps := range rt.peers {
		st.Peers[id] = PeerStats{
			Requests: ps.requests.Load(),
			Failures: ps.failures.Load(),
			Healthy:  rt.healthy(id),
		}
	}
	return st
}
