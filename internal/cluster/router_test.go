package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeReplica answers /v1/compile with a canned binary response naming
// itself, and /v1/compile/batch?stream=1 with NDJSON items, so routing
// and failover are testable without the real pipeline.
func fakeReplica(t *testing.T, name string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) == "" {
			t.Errorf("%s: proxied request missing hop header", name)
		}
		req := wire.GetCompileRequest()
		defer wire.PutCompileRequest(req)
		data := make([]byte, 0, 1024)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			data = append(data, buf[:n]...)
			if err != nil {
				break
			}
		}
		if err := wire.DecodeCompileRequest(data, req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := &wire.CompileResponse{Name: req.Name, Machine: name, PartII: 7}
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.Write(wire.AppendCompileResponse(nil, resp))
	})
	mux.HandleFunc("POST /v1/compile/batch", func(w http.ResponseWriter, r *http.Request) {
		var breq wire.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		// Completion order deliberately reversed to prove the caller
		// merges on indices, not arrival.
		for i := len(breq.Items) - 1; i >= 0; i-- {
			enc.Encode(&wire.BatchItem{
				Index:  i,
				Code:   http.StatusOK,
				Result: &wire.CompileResponse{Name: breq.Items[i].Name, Machine: name, PartII: 7},
			})
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	return httptest.NewServer(mux)
}

func reqFor(src string) *wire.CompileRequest {
	return &wire.CompileRequest{
		Name:    "t",
		Source:  src,
		Machine: wire.MachineSpec{Clusters: 4},
	}
}

// findSourceOwnedBy brute-forces a source string whose ring owner is the
// given peer, so tests can steer requests deterministically.
func findSourceOwnedBy(t *testing.T, ring *Ring, peer string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		src := fmt.Sprintf("0: add f1, f1, f%d", i)
		if ring.Owner(RouteKey(reqFor(src))) == peer {
			return src
		}
	}
	t.Fatalf("no source found owned by %s", peer)
	return ""
}

// TestRouterCompileRoutes pins that a gateway router sends each request
// to its ring owner and decodes the reply.
func TestRouterCompileRoutes(t *testing.T) {
	a := fakeReplica(t, "A")
	defer a.Close()
	b := fakeReplica(t, "B")
	defer b.Close()

	rt := NewRouter(Config{Peers: []string{a.URL, b.URL}})
	defer rt.Close()

	for _, peer := range []string{a.URL, b.URL} {
		src := findSourceOwnedBy(t, rt.Ring(), peer)
		out := rt.Compile(context.Background(), reqFor(src))
		if out.Local {
			t.Fatal("gateway router returned a local outcome")
		}
		if out.Code != http.StatusOK || out.Resp == nil {
			t.Fatalf("code %d, resp %v, err %v", out.Code, out.Resp, out.Err)
		}
		if out.Peer != peer {
			t.Errorf("served by %s, ring owner is %s", out.Peer, peer)
		}
	}
	st := rt.Stats()
	if st.Remote != 2 || st.Local != 0 || st.Failovers != 0 {
		t.Errorf("stats = %+v, want 2 remote", st)
	}
}

// TestRouterSelfIsLocal pins the replica-mesh path: a key owned by this
// process must come back Local, never proxied.
func TestRouterSelfIsLocal(t *testing.T) {
	b := fakeReplica(t, "B")
	defer b.Close()
	self := "http://self.invalid:1"
	rt := NewRouter(Config{Peers: []string{self, b.URL}, Self: self})
	defer rt.Close()

	src := findSourceOwnedBy(t, rt.Ring(), self)
	out := rt.Compile(context.Background(), reqFor(src))
	if !out.Local {
		t.Fatalf("outcome %+v, want local", out)
	}
	if st := rt.Stats(); st.Local != 1 {
		t.Errorf("stats = %+v, want 1 local", st)
	}
}

// TestRouterFailover kills the ring owner and checks the request lands
// on the next ring node, the failover is counted, and the dead peer is
// benched for subsequent traffic.
func TestRouterFailover(t *testing.T) {
	a := fakeReplica(t, "A")
	b := fakeReplica(t, "B")
	defer b.Close()

	rt := NewRouter(Config{Peers: []string{a.URL, b.URL}, Backoff: time.Millisecond})
	defer rt.Close()

	src := findSourceOwnedBy(t, rt.Ring(), a.URL)
	a.Close() // owner dies before the request

	out := rt.Compile(context.Background(), reqFor(src))
	if out.Code != http.StatusOK || out.Resp == nil {
		t.Fatalf("failover outcome: code %d err %v", out.Code, out.Err)
	}
	if out.Peer != b.URL {
		t.Errorf("served by %s, want survivor %s", out.Peer, b.URL)
	}
	st := rt.Stats()
	if st.Failovers == 0 {
		t.Error("failover not counted")
	}
	if st.Peers[a.URL].Failures == 0 {
		t.Error("dead peer's failure not counted")
	}
	if st.Peers[a.URL].Healthy {
		t.Error("dead peer still marked healthy")
	}

	// The bench means the next request for the same key goes straight to
	// the survivor without a fresh connection attempt on the corpse.
	before := st.Peers[a.URL].Requests
	out = rt.Compile(context.Background(), reqFor(src))
	if out.Code != http.StatusOK {
		t.Fatalf("second request failed: %d", out.Code)
	}
	if got := rt.Stats().Peers[a.URL].Requests; got != before {
		t.Errorf("benched peer was dialed again (%d → %d requests)", before, got)
	}
}

// TestRouterAllDown pins the gateway's terminal behavior: every ring
// node unreachable yields one 502 with the error counted.
func TestRouterAllDown(t *testing.T) {
	a := fakeReplica(t, "A")
	b := fakeReplica(t, "B")
	rt := NewRouter(Config{Peers: []string{a.URL, b.URL}, Backoff: time.Millisecond})
	defer rt.Close()
	a.Close()
	b.Close()

	out := rt.Compile(context.Background(), reqFor("0: add f1, f1, f1"))
	if out.Local || out.Code != http.StatusBadGateway || out.Err == nil {
		t.Fatalf("outcome %+v, want 502", out)
	}
	if st := rt.Stats(); st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 error", st)
	}
}

// TestRouterBatchSplitMerge pins the batch path: items split by owner,
// each group streamed through its peer, and every original index emitted
// exactly once even though replicas answer in reversed completion order.
func TestRouterBatchSplitMerge(t *testing.T) {
	a := fakeReplica(t, "A")
	defer a.Close()
	b := fakeReplica(t, "B")
	defer b.Close()

	rt := NewRouter(Config{Peers: []string{a.URL, b.URL}})
	defer rt.Close()

	items := make([]wire.CompileRequest, 8)
	for i := range items {
		items[i] = *reqFor(fmt.Sprintf("0: add f1, f1, f%d", i))
		items[i].Name = fmt.Sprintf("item%d", i)
	}
	groups := rt.SplitBatch(items)
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2 (both replicas should own something)", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Items)
		for j, idx := range g.Indices {
			if g.Items[j].Name != items[idx].Name {
				t.Fatalf("group item %d carries wrong original index %d", j, idx)
			}
		}
	}
	if total != len(items) {
		t.Fatalf("groups carry %d items, want %d", total, len(items))
	}

	var mu sync.Mutex
	got := map[int]string{}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g BatchGroup) {
			defer wg.Done()
			rt.CompileBatch(context.Background(), g, func(bi wire.BatchItem) {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := got[bi.Index]; dup {
					t.Errorf("index %d emitted twice", bi.Index)
				}
				if bi.Result == nil {
					t.Errorf("index %d: no result (code %d)", bi.Index, bi.Code)
					got[bi.Index] = ""
					return
				}
				got[bi.Index] = bi.Result.Name
			})
		}(g)
	}
	wg.Wait()
	if len(got) != len(items) {
		t.Fatalf("%d items emitted, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i].Name {
			t.Errorf("index %d answered as %q, want %q", i, got[i], items[i].Name)
		}
	}
}

// TestRouterBatchFailover pins that a dead owner's whole group fails
// over to the next ring node and still answers every item.
func TestRouterBatchFailover(t *testing.T) {
	a := fakeReplica(t, "A")
	b := fakeReplica(t, "B")
	defer b.Close()
	rt := NewRouter(Config{Peers: []string{a.URL, b.URL}, Backoff: time.Millisecond})
	defer rt.Close()

	src := findSourceOwnedBy(t, rt.Ring(), a.URL)
	a.Close()
	group := BatchGroup{Peer: a.URL, Items: []wire.CompileRequest{*reqFor(src)}, Indices: []int{3}}

	var items []wire.BatchItem
	rt.CompileBatch(context.Background(), group, func(bi wire.BatchItem) { items = append(items, bi) })
	if len(items) != 1 {
		t.Fatalf("%d items emitted, want 1", len(items))
	}
	if items[0].Index != 3 || items[0].Code != http.StatusOK || items[0].Result == nil {
		t.Fatalf("failover item = %+v", items[0])
	}
	if items[0].Result.Machine != "B" {
		t.Errorf("served by %q, want the survivor B", items[0].Result.Machine)
	}
}

// TestRouterProbeRecovers pins the active health loop: a benched peer
// that comes back is restored by the probe without waiting for traffic.
func TestRouterProbeRecovers(t *testing.T) {
	a := fakeReplica(t, "A")
	defer a.Close()
	rt := NewRouter(Config{Peers: []string{a.URL}, Cooldown: time.Hour})
	defer rt.Close()

	rt.markDown(a.URL)
	if rt.healthy(a.URL) {
		t.Fatal("peer not benched")
	}
	rt.probeAll()
	if !rt.healthy(a.URL) {
		t.Fatal("probe did not restore a live peer")
	}
}
