package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// The binary codec: a compact, length-prefixed encoding of the wire DTOs
// for clients that compile in a hot loop and cannot afford JSON's parse
// and allocation cost.
//
// Every message is one frame:
//
//	magic "SWPB" (4 bytes) | version (1 byte) | kind (1 byte) | payload
//
// Payload scalars are varints (signed zig-zag for ints, unsigned for
// counts), strings and slices are length-prefixed, float64 is its IEEE
// bit pattern in 8 little-endian bytes, and optional pointers are a
// presence byte followed by the value. Field order is fixed and is the
// protocol: a field added later must be appended behind a version bump.
//
// The batch response frame streams: after the header comes the item
// count, then one uvarint-length-prefixed BatchItem payload per item in
// completion order, so a client can act on each item as it arrives
// without buffering the batch. DecodeBatchResponse reassembles request
// order (by Index), making the decoded value equal to the buffered JSON
// BatchResponse for the same batch.
//
// Decoders are defensive: all lengths are bounds-checked against the
// remaining input and capped (maxElems, maxStr), so arbitrary bytes
// degrade to an error, never a panic or an absurd allocation —
// FuzzWireCodec pins this.

// Magic opens every binary frame.
const Magic = "SWPB"

// Version is the current binary protocol version. Version 2 appended the
// optional adaptive-arm report to the compile-response body.
const Version = 2

// Kind discriminates frame payloads.
type Kind byte

// Frame kinds.
const (
	KindCompileReq  Kind = 1
	KindBatchReq    Kind = 2
	KindCompileResp Kind = 3
	KindError       Kind = 4
	KindBatchResp   Kind = 5
	KindBatchItem   Kind = 6
)

const (
	headerLen = 6       // magic + version + kind
	maxElems  = 1 << 20 // slice element cap: far beyond any real payload
	maxStr    = 8 << 20 // string/byte-length cap, matches the HTTP body cap
)

// bufPool recycles encode buffers across requests.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuffer returns a pooled, empty byte slice for encoding into.
func GetBuffer() *[]byte {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must
// not retain the slice afterwards.
func PutBuffer(bp *[]byte) { bufPool.Put(bp) }

// reqPool recycles request scratch structs for the server's hot decode
// path: one pooled CompileRequest per in-flight binary compile.
var reqPool = sync.Pool{New: func() any { return new(CompileRequest) }}

// GetCompileRequest returns a pooled, zeroed CompileRequest to decode
// into.
func GetCompileRequest() *CompileRequest {
	return reqPool.Get().(*CompileRequest)
}

// PutCompileRequest zeroes and recycles a request obtained from
// GetCompileRequest.
func PutCompileRequest(r *CompileRequest) {
	*r = CompileRequest{}
	reqPool.Put(r)
}

// appendHeader opens a frame.
func appendHeader(dst []byte, kind Kind) []byte {
	dst = append(dst, Magic...)
	return append(dst, Version, byte(kind))
}

// checkHeader validates a frame's header and returns its kind and
// payload.
func checkHeader(data []byte) (Kind, []byte, error) {
	if len(data) < headerLen {
		return 0, nil, fmt.Errorf("wire: frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return 0, nil, fmt.Errorf("wire: bad magic %q", data[:4])
	}
	if data[4] != Version {
		return 0, nil, fmt.Errorf("wire: protocol version %d, want %d", data[4], Version)
	}
	return Kind(data[5]), data[headerLen:], nil
}

// --- encoding primitives -------------------------------------------------

func putInt(dst []byte, v int) []byte     { return binary.AppendVarint(dst, int64(v)) }
func putInt64(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }
func putUint(dst []byte, v int) []byte    { return binary.AppendUvarint(dst, uint64(v)) }

func putStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func putF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// --- decoding primitives -------------------------------------------------

// dec is an error-latching bounds-checked reader over one payload. After
// the first failure every read returns a zero value and err() reports the
// cause, so decoders read straight through without per-field checks.
type dec struct {
	b    []byte
	off  int
	fail error
}

func (d *dec) errf(format string, args ...any) {
	if d.fail == nil {
		d.fail = fmt.Errorf("wire: "+format+" at offset %d", append(args, d.off)...)
	}
}

func (d *dec) err() error { return d.fail }

func (d *dec) done() error {
	if d.fail == nil && d.off != len(d.b) {
		d.errf("%d trailing bytes", len(d.b)-d.off)
	}
	return d.fail
}

func (d *dec) int() int { return int(d.int64()) }

func (d *dec) int64() int64 {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.errf("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) uint() int {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.errf("bad uvarint")
		return 0
	}
	d.off += n
	if v > maxStr {
		d.errf("length %d exceeds cap", v)
		return 0
	}
	return int(v)
}

// count reads a slice length and bounds it both by the element cap and by
// the bytes actually remaining (each element is at least one byte), so a
// hostile length cannot force a giant allocation.
func (d *dec) count() int {
	n := d.uint()
	if d.fail != nil {
		return 0
	}
	if n > maxElems || n > len(d.b)-d.off {
		d.errf("count %d exceeds remaining input", n)
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.uint()
	if d.fail != nil {
		return ""
	}
	if n > len(d.b)-d.off {
		d.errf("string length %d exceeds remaining input", n)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bool() bool {
	if d.fail != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.errf("missing bool")
		return false
	}
	c := d.b[d.off]
	d.off++
	if c > 1 {
		d.errf("bad bool %d", c)
		return false
	}
	return c == 1
}

func (d *dec) f64() float64 {
	if d.fail != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.errf("missing float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// --- sub-encoders (payload only, shared by the frame encoders) -----------

func putMachineSpec(dst []byte, ms *MachineSpec) []byte {
	dst = putInt(dst, ms.Clusters)
	return putStr(dst, ms.CopyModel)
}

func (d *dec) machineSpec(ms *MachineSpec) {
	ms.Clusters = d.int()
	ms.CopyModel = d.str()
}

func putCompileRequestBody(dst []byte, r *CompileRequest) []byte {
	dst = putStr(dst, r.Name)
	dst = putStr(dst, r.Source)
	dst = putMachineSpec(dst, &r.Machine)
	dst = putStr(dst, r.Partitioner)
	dst = putBool(dst, r.Refine)
	dst = putInt(dst, r.ExpandTrip)
	return putInt(dst, r.TimeoutMS)
}

func (d *dec) compileRequestBody(r *CompileRequest) {
	r.Name = d.str()
	r.Source = d.str()
	d.machineSpec(&r.Machine)
	r.Partitioner = d.str()
	r.Refine = d.bool()
	r.ExpandTrip = d.int()
	r.TimeoutMS = d.int()
}

func putRows(dst []byte, rows [][]string) []byte {
	dst = putUint(dst, len(rows))
	for _, row := range rows {
		dst = putUint(dst, len(row))
		for _, s := range row {
			dst = putStr(dst, s)
		}
	}
	return dst
}

// rows mirrors the server's renderRows shape exactly — every slice
// non-nil, empty rows included — so a decoded expansion re-marshals to
// byte-identical JSON.
func (d *dec) rows() [][]string {
	rows := make([][]string, d.count())
	for i := range rows {
		rows[i] = make([]string, d.count())
		for j := range rows[i] {
			rows[i][j] = d.str()
		}
	}
	return rows
}

func putCompileResponseBody(dst []byte, r *CompileResponse) []byte {
	dst = putStr(dst, r.Name)
	dst = putStr(dst, r.Machine)
	dst = putStr(dst, r.Partitioner)
	dst = putStr(dst, r.PortfolioVariant)
	dst = putInt(dst, r.IdealII)
	dst = putInt(dst, r.PartII)
	dst = putF64(dst, r.Degradation)
	dst = putInt(dst, r.KernelCopies)
	dst = putInt(dst, r.Spills)
	dst = putBool(dst, r.CacheHit)
	dst = putStr(dst, r.CacheTier)
	dst = putUint(dst, len(r.Schedule))
	for i := range r.Schedule {
		op := &r.Schedule[i]
		dst = putStr(dst, op.Op)
		dst = putInt(dst, op.Cycle)
		dst = putInt(dst, op.Row)
		dst = putInt(dst, op.Stage)
		dst = putInt(dst, op.Cluster)
	}
	dst = putBool(dst, r.Refine != nil)
	if r.Refine != nil {
		dst = putInt(dst, r.Refine.Rounds)
		dst = putInt(dst, r.Refine.MovesTried)
		dst = putInt(dst, r.Refine.MovesKept)
		dst = putInt(dst, r.Refine.StartII)
		dst = putInt(dst, r.Refine.FinalII)
	}
	dst = putBool(dst, r.Exact != nil)
	if e := r.Exact; e != nil {
		dst = putInt(dst, e.MinII)
		dst = putInt(dst, e.HeuristicII)
		dst = putInt(dst, e.FinalII)
		dst = putBool(dst, e.SchedRan)
		dst = putBool(dst, e.SchedProven)
		dst = putBool(dst, e.SchedImproved)
		dst = putInt64(dst, e.SchedNodes)
		dst = putBool(dst, e.PartRan)
		dst = putBool(dst, e.PartProven)
		dst = putBool(dst, e.PartImproved)
		dst = putBool(dst, e.PartWon)
		dst = putInt64(dst, e.PartNodes)
	}
	dst = putBool(dst, r.Expansion != nil)
	if x := r.Expansion; x != nil {
		dst = putInt(dst, x.II)
		dst = putInt(dst, x.Stages)
		dst = putInt(dst, x.Trip)
		dst = putInt(dst, x.KernelReps)
		dst = putInt(dst, x.TotalCycles)
		dst = putRows(dst, x.Prelude)
		dst = putRows(dst, x.Kernel)
		dst = putRows(dst, x.Postlude)
	}
	dst = putBool(dst, r.Adaptive != nil)
	if a := r.Adaptive; a != nil {
		dst = putStr(dst, a.Bucket)
		dst = putBool(dst, a.ExactBucket)
		dst = putBool(dst, a.Won)
	}
	return dst
}

func (d *dec) compileResponseBody(r *CompileResponse) {
	r.Name = d.str()
	r.Machine = d.str()
	r.Partitioner = d.str()
	r.PortfolioVariant = d.str()
	r.IdealII = d.int()
	r.PartII = d.int()
	r.Degradation = d.f64()
	r.KernelCopies = d.int()
	r.Spills = d.int()
	r.CacheHit = d.bool()
	r.CacheTier = d.str()
	if n := d.count(); n > 0 {
		r.Schedule = make([]ScheduledOp, n)
		for i := range r.Schedule {
			op := &r.Schedule[i]
			op.Op = d.str()
			op.Cycle = d.int()
			op.Row = d.int()
			op.Stage = d.int()
			op.Cluster = d.int()
		}
	}
	if d.bool() {
		r.Refine = &RefineReport{
			Rounds:     d.int(),
			MovesTried: d.int(),
			MovesKept:  d.int(),
			StartII:    d.int(),
			FinalII:    d.int(),
		}
	}
	if d.bool() {
		r.Exact = &ExactGapReport{
			MinII:         d.int(),
			HeuristicII:   d.int(),
			FinalII:       d.int(),
			SchedRan:      d.bool(),
			SchedProven:   d.bool(),
			SchedImproved: d.bool(),
			SchedNodes:    d.int64(),
			PartRan:       d.bool(),
			PartProven:    d.bool(),
			PartImproved:  d.bool(),
			PartWon:       d.bool(),
			PartNodes:     d.int64(),
		}
	}
	if d.bool() {
		r.Expansion = &ExpansionReport{
			II:          d.int(),
			Stages:      d.int(),
			Trip:        d.int(),
			KernelReps:  d.int(),
			TotalCycles: d.int(),
			Prelude:     d.rows(),
			Kernel:      d.rows(),
			Postlude:    d.rows(),
		}
	}
	if d.bool() {
		r.Adaptive = &AdaptiveReport{
			Bucket:      d.str(),
			ExactBucket: d.bool(),
			Won:         d.bool(),
		}
	}
}

func putErrorBody(dst []byte, code int, e *ErrorResponse) []byte {
	dst = putInt(dst, code)
	dst = putStr(dst, e.Error)
	dst = putStr(dst, e.Stage)
	dst = putUint(dst, len(e.Supported))
	for _, s := range e.Supported {
		dst = putStr(dst, s)
	}
	return dst
}

func (d *dec) errorBody() (int, *ErrorResponse) {
	code := d.int()
	e := &ErrorResponse{Error: d.str(), Stage: d.str()}
	if n := d.count(); n > 0 {
		e.Supported = make([]string, n)
		for i := range e.Supported {
			e.Supported[i] = d.str()
		}
	}
	return code, e
}

func putBatchItemBody(dst []byte, it *BatchItem) []byte {
	dst = putInt(dst, it.Index)
	dst = putInt(dst, it.Code)
	dst = putBool(dst, it.Result != nil)
	if it.Result != nil {
		dst = putCompileResponseBody(dst, it.Result)
	}
	dst = putBool(dst, it.Error != nil)
	if it.Error != nil {
		dst = putStr(dst, it.Error.Error)
		dst = putStr(dst, it.Error.Stage)
	}
	return dst
}

func (d *dec) batchItemBody(it *BatchItem) {
	it.Index = d.int()
	it.Code = d.int()
	if d.bool() {
		it.Result = new(CompileResponse)
		d.compileResponseBody(it.Result)
	}
	if d.bool() {
		it.Error = &ErrorResponse{Error: d.str(), Stage: d.str()}
	}
}

// --- frame encoders / decoders -------------------------------------------

// AppendCompileRequest encodes r as a complete frame onto dst.
func AppendCompileRequest(dst []byte, r *CompileRequest) []byte {
	return putCompileRequestBody(appendHeader(dst, KindCompileReq), r)
}

// DecodeCompileRequest decodes a compile-request frame into r (typically
// a pooled struct; see GetCompileRequest).
func DecodeCompileRequest(data []byte, r *CompileRequest) error {
	kind, payload, err := checkHeader(data)
	if err != nil {
		return err
	}
	if kind != KindCompileReq {
		return fmt.Errorf("wire: frame kind %d, want compile request", kind)
	}
	d := &dec{b: payload}
	d.compileRequestBody(r)
	return d.done()
}

// AppendBatchRequest encodes r as a complete frame onto dst.
func AppendBatchRequest(dst []byte, r *BatchRequest) []byte {
	dst = appendHeader(dst, KindBatchReq)
	dst = putMachineSpec(dst, &r.Machine)
	dst = putStr(dst, r.Partitioner)
	dst = putInt(dst, r.TimeoutMS)
	dst = putUint(dst, len(r.Items))
	for i := range r.Items {
		dst = putCompileRequestBody(dst, &r.Items[i])
	}
	return dst
}

// DecodeBatchRequest decodes a batch-request frame into r.
func DecodeBatchRequest(data []byte, r *BatchRequest) error {
	kind, payload, err := checkHeader(data)
	if err != nil {
		return err
	}
	if kind != KindBatchReq {
		return fmt.Errorf("wire: frame kind %d, want batch request", kind)
	}
	d := &dec{b: payload}
	d.machineSpec(&r.Machine)
	r.Partitioner = d.str()
	r.TimeoutMS = d.int()
	if n := d.count(); n > 0 {
		r.Items = make([]CompileRequest, n)
		for i := range r.Items {
			d.compileRequestBody(&r.Items[i])
		}
	}
	return d.done()
}

// AppendCompileResponse encodes r as a complete frame onto dst.
func AppendCompileResponse(dst []byte, r *CompileResponse) []byte {
	return putCompileResponseBody(appendHeader(dst, KindCompileResp), r)
}

// AppendError encodes an error frame carrying the HTTP status code it was
// served under.
func AppendError(dst []byte, code int, e *ErrorResponse) []byte {
	return putErrorBody(appendHeader(dst, KindError), code, e)
}

// AppendBatchItem encodes one streamed batch item: the frame header, then
// the uvarint-length-prefixed item payload — the same framing the batch
// response stream uses, so a client can decode a standalone item frame
// and a stream element with one routine.
func AppendBatchItem(dst []byte, it *BatchItem) []byte {
	dst = appendHeader(dst, KindBatchItem)
	return appendSizedItem(dst, it)
}

// appendSizedItem appends uvarint(len(payload)) + payload for one item.
func appendSizedItem(dst []byte, it *BatchItem) []byte {
	bp := GetBuffer()
	body := putBatchItemBody(*bp, it)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	*bp = body
	PutBuffer(bp)
	return dst
}

// AppendBatchResponseHeader opens a batch-response stream for count
// items. The caller then appends count appendSized item frames (see
// AppendBatchResponseItem) in any order.
func AppendBatchResponseHeader(dst []byte, count int) []byte {
	dst = appendHeader(dst, KindBatchResp)
	return putUint(dst, count)
}

// AppendBatchResponseItem appends one uvarint-length-prefixed item to an
// open batch-response stream.
func AppendBatchResponseItem(dst []byte, it *BatchItem) []byte {
	return appendSizedItem(dst, it)
}

// AppendBatchResponse encodes a whole batch response as one frame.
func AppendBatchResponse(dst []byte, r *BatchResponse) []byte {
	dst = AppendBatchResponseHeader(dst, len(r.Items))
	for i := range r.Items {
		dst = AppendBatchResponseItem(dst, &r.Items[i])
	}
	return dst
}

// decodeBatchPayload reads a batch-response payload: count, then count
// length-prefixed items in stream (completion) order. Items are
// reassembled into request order by Index — the decoded value equals the
// buffered JSON BatchResponse for the same batch — and Errors is
// recomputed from the items.
func decodeBatchPayload(payload []byte) (*BatchResponse, error) {
	d := &dec{b: payload}
	n := d.count()
	if err := d.err(); err != nil {
		return nil, err
	}
	items := make([]BatchItem, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		size := d.uint()
		if d.fail == nil && size > len(d.b)-d.off {
			d.errf("item length %d exceeds remaining input", size)
		}
		if err := d.err(); err != nil {
			return nil, err
		}
		id := &dec{b: d.b[d.off : d.off+size]}
		d.off += size
		var it BatchItem
		id.batchItemBody(&it)
		if err := id.done(); err != nil {
			return nil, err
		}
		if it.Index < 0 || it.Index >= n || seen[it.Index] {
			return nil, fmt.Errorf("wire: batch item index %d invalid or duplicate", it.Index)
		}
		seen[it.Index] = true
		items[it.Index] = it
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	out := &BatchResponse{Items: items}
	for i := range items {
		if items[i].Error != nil {
			out.Errors++
		}
	}
	return out, nil
}

// Response is a decoded response frame of any kind: exactly one of
// Compile, Batch and Err is set. Code is the HTTP status an error frame
// was served under (error frames carry it inline so binary clients need
// not consult transport status); success frames report 200.
type Response struct {
	Code    int
	Compile *CompileResponse
	Batch   *BatchResponse
	Err     *ErrorResponse
}

// DecodeResponse decodes any response frame — compile response, batch
// response, batch item or error — dispatching on the frame kind. This is
// the one entry point a client needs.
func DecodeResponse(data []byte) (*Response, error) {
	kind, payload, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindCompileResp:
		r := new(CompileResponse)
		d := &dec{b: payload}
		d.compileResponseBody(r)
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Response{Code: 200, Compile: r}, nil
	case KindError:
		d := &dec{b: payload}
		code, e := d.errorBody()
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Response{Code: code, Err: e}, nil
	case KindBatchResp:
		b, err := decodeBatchPayload(payload)
		if err != nil {
			return nil, err
		}
		return &Response{Code: 200, Batch: b}, nil
	case KindBatchItem:
		d := &dec{b: payload}
		size := d.uint()
		if d.fail == nil && size != len(d.b)-d.off {
			d.errf("item length %d does not match frame", size)
		}
		if err := d.err(); err != nil {
			return nil, err
		}
		var it BatchItem
		d.batchItemBody(&it)
		if err := d.done(); err != nil {
			return nil, err
		}
		return &Response{Code: 200, Batch: &BatchResponse{Items: []BatchItem{it}}}, nil
	default:
		return nil, fmt.Errorf("wire: unexpected response frame kind %d", kind)
	}
}
