package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleResponse exercises every field of the response shape, including
// all four optional reports.
func sampleResponse() *CompileResponse {
	return &CompileResponse{
		Name:             "dot",
		Machine:          "16-wide, 4x4, embedded",
		Partitioner:      "rcg",
		PortfolioVariant: "uas",
		IdealII:          3,
		PartII:           4,
		Degradation:      133.3333,
		KernelCopies:     2,
		Spills:           1,
		CacheHit:         true,
		CacheTier:        "disk",
		Schedule: []ScheduledOp{
			{Op: "r3 = add r1, r2", Cycle: 0, Row: 0, Stage: 0, Cluster: 1},
			{Op: "store r3", Cycle: 5, Row: 1, Stage: 1, Cluster: 0},
		},
		Refine: &RefineReport{Rounds: 2, MovesTried: 9, MovesKept: 1, StartII: 5, FinalII: 4},
		Exact: &ExactGapReport{
			MinII: 3, HeuristicII: 4, FinalII: 4,
			SchedRan: true, SchedNodes: 1234, PartRan: true, PartWon: true, PartNodes: 77,
		},
		Expansion: &ExpansionReport{
			II: 4, Stages: 2, Trip: 8, KernelReps: 7, TotalCycles: 36,
			Prelude:  [][]string{{"[i+0] r1 = load a"}},
			Kernel:   [][]string{{"[i+0] r3 = add r1, r2", "[i-1] store r3"}, {}},
			Postlude: [][]string{{"[i-1] store r3"}},
		},
		Adaptive: &AdaptiveReport{Bucket: "r1d2b0", ExactBucket: true, Won: true},
	}
}

func TestCompileRequestRoundTrip(t *testing.T) {
	in := &CompileRequest{
		Name:        "dot",
		Source:      "r1 = load a\nstore r1",
		Machine:     MachineSpec{Clusters: 4, CopyModel: "copyunit"},
		Partitioner: "portfolio",
		Refine:      true,
		ExpandTrip:  12,
		TimeoutMS:   250,
	}
	frame := AppendCompileRequest(nil, in)
	out := GetCompileRequest()
	defer PutCompileRequest(out)
	if err := DecodeCompileRequest(frame, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverges:\n in  %+v\n out %+v", in, out)
	}
}

func TestCompileResponseRoundTrip(t *testing.T) {
	for name, in := range map[string]*CompileResponse{
		"full":    sampleResponse(),
		"minimal": {Name: "empty"},
	} {
		frame := AppendCompileResponse(nil, in)
		resp, err := DecodeResponse(frame)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Code != 200 || resp.Compile == nil {
			t.Fatalf("%s: decoded %+v", name, resp)
		}
		if !reflect.DeepEqual(in, resp.Compile) {
			t.Fatalf("%s: round trip diverges:\n in  %+v\n out %+v", name, in, resp.Compile)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := &ErrorResponse{Error: "unsupported content type", Supported: RequestTypes()}
	frame := AppendError(nil, 415, in)
	resp, err := DecodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != 415 || !reflect.DeepEqual(resp.Err, in) {
		t.Fatalf("decoded %+v / %+v", resp.Code, resp.Err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	req := &BatchRequest{
		RequestDefaults: RequestDefaults{
			Machine:     MachineSpec{Clusters: 2},
			Partitioner: "uas",
			TimeoutMS:   100,
		},
		Items: []CompileRequest{
			{Name: "a", Source: "r1 = load a"},
			{Source: "store r2", Machine: MachineSpec{Clusters: 8}},
		},
	}
	frame := AppendBatchRequest(nil, req)
	var got BatchRequest
	if err := DecodeBatchRequest(frame, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, &got) {
		t.Fatalf("request round trip diverges:\n in  %+v\n out %+v", req, &got)
	}

	// Response streamed in completion order must decode to request order.
	items := []BatchItem{
		{Index: 1, Code: 422, Error: &ErrorResponse{Error: "parse", Stage: ""}},
		{Index: 0, Code: 200, Result: sampleResponse()},
	}
	buf := AppendBatchResponseHeader(nil, len(items))
	for i := range items {
		buf = AppendBatchResponseItem(buf, &items[i])
	}
	resp, err := DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	b := resp.Batch
	if b == nil || len(b.Items) != 2 || b.Errors != 1 {
		t.Fatalf("decoded batch %+v", b)
	}
	if b.Items[0].Index != 0 || b.Items[1].Index != 1 {
		t.Fatalf("items not in request order: %+v", b.Items)
	}
	if !reflect.DeepEqual(b.Items[0].Result, items[1].Result) {
		t.Fatal("item 0 result diverged")
	}
}

func TestBatchDuplicateIndexRejected(t *testing.T) {
	items := []BatchItem{{Index: 0, Code: 200}, {Index: 0, Code: 200}}
	buf := AppendBatchResponseHeader(nil, len(items))
	for i := range items {
		buf = AppendBatchResponseItem(buf, &items[i])
	}
	if _, err := DecodeResponse(buf); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestDecodeRejectsBadFrames(t *testing.T) {
	good := AppendCompileResponse(nil, sampleResponse())
	for name, data := range map[string][]byte{
		"empty":      {},
		"short":      []byte("SWP"),
		"bad magic":  []byte("XXXX\x01\x03"),
		"bad ver":    []byte("SWPB\x09\x03"),
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte{}, good...), 0),
		"wrong kind": AppendCompileRequest(nil, &CompileRequest{Name: "x"}),
	} {
		if _, err := DecodeResponse(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// And the request decoder symmetrically.
	var r CompileRequest
	if err := DecodeCompileRequest(good, &r); err == nil {
		t.Error("request decoder accepted a response frame")
	}
}

func TestNegotiation(t *testing.T) {
	for _, tc := range []struct {
		ct      string
		want    Format
		wantErr bool
	}{
		{"", FormatJSON, false},
		{"application/json", FormatJSON, false},
		{"application/json; charset=utf-8", FormatJSON, false},
		{"Application/JSON", FormatJSON, false},
		{"application/x-swp-bin", FormatBinary, false},
		{"text/plain", FormatJSON, true},
		{"application/xml", FormatJSON, true},
	} {
		got, err := ParseContentType(tc.ct)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseContentType(%q) = %v, %v", tc.ct, got, err)
		}
	}
	for _, tc := range []struct {
		accept  string
		def     Format
		want    Format
		extra   string
		wantErr bool
	}{
		{"", FormatBinary, FormatBinary, "", false},
		{"*/*", FormatBinary, FormatBinary, "", false},
		{"application/*", FormatJSON, FormatJSON, "", false},
		{"application/json", FormatBinary, FormatJSON, "", false},
		{"application/x-swp-bin", FormatJSON, FormatBinary, "", false},
		{"text/html, application/json;q=0.9", FormatJSON, FormatJSON, "", false},
		{"text/html", FormatJSON, FormatJSON, "", true},
	} {
		got, extra, err := NegotiateAccept(tc.accept, tc.def)
		if (err != nil) != tc.wantErr || got != tc.want || extra != tc.extra {
			t.Errorf("NegotiateAccept(%q, %v) = %v, %q, %v", tc.accept, tc.def, got, extra, err)
		}
	}
	// The batch endpoint's NDJSON streaming mode negotiates through extra.
	if _, extra, err := NegotiateAccept(ContentTypeNDJSON, FormatJSON, ContentTypeNDJSON); err != nil || extra != ContentTypeNDJSON {
		t.Errorf("NDJSON negotiation: %q, %v", extra, err)
	}
}

// TestRequestDefaultsApply pins the shared envelope semantics both
// handlers rely on.
func TestRequestDefaultsApply(t *testing.T) {
	d := RequestDefaults{
		Machine:     MachineSpec{Clusters: 4},
		Partitioner: "uas",
		TimeoutMS:   100,
	}
	blank := CompileRequest{Source: "store r1"}
	d.Apply(&blank, "loop7")
	if blank.Name != "loop7" || blank.Machine.Clusters != 4 || blank.Partitioner != "uas" || blank.TimeoutMS != 100 {
		t.Fatalf("defaults not applied: %+v", blank)
	}
	set := CompileRequest{
		Name: "mine", Source: "store r1",
		Machine: MachineSpec{Clusters: 8}, Partitioner: "bug", TimeoutMS: 5,
	}
	d.Apply(&set, "loop7")
	if set.Name != "mine" || set.Machine.Clusters != 8 || set.Partitioner != "bug" || set.TimeoutMS != 5 {
		t.Fatalf("defaults overrode explicit fields: %+v", set)
	}
}

// TestBatchRequestJSONShape pins the RequestDefaults embedding to the
// historical JSON wire shape: defaults at the top level, not nested.
func TestBatchRequestJSONShape(t *testing.T) {
	legacy := `{"machine":{"clusters":4},"partitioner":"uas","timeout_ms":50,"items":[{"name":"a","source":"store r1"}]}`
	var br BatchRequest
	if err := json.Unmarshal([]byte(legacy), &br); err != nil {
		t.Fatal(err)
	}
	if br.Machine.Clusters != 4 || br.Partitioner != "uas" || br.TimeoutMS != 50 || len(br.Items) != 1 {
		t.Fatalf("legacy JSON did not decode into the embedded defaults: %+v", br)
	}
	out, err := json.Marshal(&br)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(out); strings.Contains(s, "RequestDefaults") || !strings.Contains(s, `"partitioner":"uas"`) {
		t.Fatalf("marshalled shape regressed: %s", s)
	}
}

// FuzzWireCodec is the binary codec's defensive property: arbitrary bytes
// never panic any decoder, and anything that decodes re-encodes to a
// value-identical message (encode∘decode is the identity on the image of
// decode).
func FuzzWireCodec(f *testing.F) {
	f.Add(AppendCompileRequest(nil, &CompileRequest{Name: "a", Source: "store r1"}))
	f.Add(AppendCompileResponse(nil, sampleResponse()))
	f.Add(AppendError(nil, 415, &ErrorResponse{Error: "no", Supported: RequestTypes()}))
	f.Add(AppendBatchRequest(nil, &BatchRequest{Items: []CompileRequest{{Name: "x"}}}))
	it := BatchItem{Index: 0, Code: 200, Result: sampleResponse()}
	f.Add(AppendBatchResponseItem(AppendBatchResponseHeader(nil, 1), &it))
	f.Add([]byte("SWPB\x01\x03"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req CompileRequest
		if err := DecodeCompileRequest(data, &req); err == nil {
			again := AppendCompileRequest(nil, &req)
			var req2 CompileRequest
			if err := DecodeCompileRequest(again, &req2); err != nil || !reflect.DeepEqual(req, req2) {
				t.Fatalf("compile request round trip diverges (err %v)", err)
			}
		}
		var br BatchRequest
		if err := DecodeBatchRequest(data, &br); err == nil {
			again := AppendBatchRequest(nil, &br)
			var br2 BatchRequest
			if err := DecodeBatchRequest(again, &br2); err != nil || !reflect.DeepEqual(br, br2) {
				t.Fatalf("batch request round trip diverges (err %v)", err)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			var again []byte
			switch {
			case resp.Compile != nil:
				again = AppendCompileResponse(nil, resp.Compile)
			case resp.Err != nil:
				again = AppendError(nil, resp.Code, resp.Err)
			case resp.Batch != nil:
				// Batch frames normalize item order on decode, so re-encoding
				// from the decoded value is the canonical form; it must decode
				// to the same value.
				again = AppendBatchResponse(nil, resp.Batch)
				if Kind(data[5]) == KindBatchItem {
					again = AppendBatchItem(nil, &resp.Batch.Items[0])
				}
			}
			resp2, err := DecodeResponse(again)
			if err != nil || !reflect.DeepEqual(resp, resp2) {
				t.Fatalf("response round trip diverges (err %v):\n in  %+v\n out %+v", err, resp, resp2)
			}
		}
	})
}
