// Package wire defines the compile service's versioned wire surface: the
// request/response DTOs shared by every codec, content-type negotiation
// for the /v1/ endpoints, and a compact length-prefixed binary encoding
// (application/x-swp-bin) that round-trips the exact same data as the
// JSON codec.
//
// The package is the single source of truth for what travels between
// swpc, swpd and any other client: internal/server aliases these types,
// so handler code and client code marshal the same structs. JSON encoding
// uses the struct tags below; binary encoding lives in binary.go and is
// field-order-defined (see the frame layout in DESIGN.md §14). Both
// codecs carry identical information — the differential tests in
// internal/server pin byte-identical compile tables across them.
package wire

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// MachineSpec selects a target machine in a request.
type MachineSpec struct {
	// Clusters is 1 (the monolithic ideal) or one of the paper's cluster
	// counts 2, 4, 8.
	Clusters int `json:"clusters"`
	// CopyModel is "embedded" (default) or "copyunit"; ignored for the
	// monolithic machine.
	CopyModel string `json:"copy_model,omitempty"`
}

// Config builds the machine.Config the spec names.
func (ms MachineSpec) Config() (*machine.Config, error) {
	if ms.Clusters <= 1 {
		return machine.Ideal16(), nil
	}
	model := machine.Embedded
	switch strings.ToLower(ms.CopyModel) {
	case "", "embedded":
	case "copyunit", "copy_unit", "copy-unit":
		model = machine.CopyUnit
	default:
		return nil, fmt.Errorf("unknown copy model %q (want embedded or copyunit)", ms.CopyModel)
	}
	return machine.Clustered16(ms.Clusters, model)
}

// CompileRequest is the POST /v1/compile body.
type CompileRequest struct {
	// Name labels the loop in responses and logs.
	Name string `json:"name"`
	// Source is the loop body in the ir.ParseLoop assembly format.
	Source string `json:"source"`
	// Machine selects the target; the zero value is the monolithic ideal.
	Machine MachineSpec `json:"machine"`
	// Partitioner optionally overrides the server's default method:
	// rcg, portfolio, bug, uas, roundrobin, random, single.
	Partitioner string `json:"partitioner,omitempty"`
	// Refine enables the iterative partition improvement loop.
	Refine bool `json:"refine,omitempty"`
	// ExpandTrip, when positive, additionally expands the clustered
	// schedule into prelude/kernel/postlude for that trip count.
	ExpandTrip int `json:"expand_trip,omitempty"`
	// TimeoutMS caps this request's compile time in milliseconds; 0 uses
	// the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RequestDefaults is the shared request envelope: the fields a handler
// folds into an item that left them zero. The batch endpoint carries one
// explicitly (its top-level defaults, embedded in BatchRequest so the
// JSON shape is unchanged); the single-compile endpoint uses the zero
// value, so both handlers normalize items through the same code path.
type RequestDefaults struct {
	// Machine is the default target for items whose own spec is zero.
	Machine MachineSpec `json:"machine,omitempty"`
	// Partitioner is the default method for items that name none.
	Partitioner string `json:"partitioner,omitempty"`
	// TimeoutMS is the default per-item compile deadline in milliseconds;
	// 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Apply folds the defaults into one item. An item with no name gets
// fallbackName, so responses and logs always label the loop.
func (d *RequestDefaults) Apply(item *CompileRequest, fallbackName string) {
	if item.Name == "" {
		item.Name = fallbackName
	}
	if item.Machine == (MachineSpec{}) {
		item.Machine = d.Machine
	}
	if item.Partitioner == "" {
		item.Partitioner = d.Partitioner
	}
	if item.TimeoutMS == 0 {
		item.TimeoutMS = d.TimeoutMS
	}
}

// ScheduledOp is one operation of the clustered kernel schedule.
type ScheduledOp struct {
	Op      string `json:"op"`
	Cycle   int    `json:"cycle"`
	Row     int    `json:"row"`
	Stage   int    `json:"stage"`
	Cluster int    `json:"cluster"`
}

// RefineReport echoes codegen.RefineStats.
type RefineReport struct {
	Rounds     int `json:"rounds"`
	MovesTried int `json:"moves_tried"`
	MovesKept  int `json:"moves_kept"`
	StartII    int `json:"start_ii"`
	FinalII    int `json:"final_ii"`
}

// ExpansionReport is the flattened pipeline: rows of rendered instances.
type ExpansionReport struct {
	II          int        `json:"ii"`
	Stages      int        `json:"stages"`
	Trip        int        `json:"trip"`
	KernelReps  int        `json:"kernel_reps"`
	TotalCycles int        `json:"total_cycles"`
	Prelude     [][]string `json:"prelude"`
	Kernel      [][]string `json:"kernel"`
	Postlude    [][]string `json:"postlude"`
}

// AdaptiveReport echoes codegen.AdaptiveReport: the adaptive-weights
// arm's adoption telemetry when the server runs with -adaptive.
type AdaptiveReport struct {
	Bucket      string `json:"bucket"`
	ExactBucket bool   `json:"exact_bucket"`
	Won         bool   `json:"won"`
}

// ExactGapReport echoes codegen.ExactReport: the optimality-gap telemetry
// when the server runs with the exact-solver arms enabled.
type ExactGapReport struct {
	MinII         int   `json:"min_ii"`
	HeuristicII   int   `json:"heuristic_ii"`
	FinalII       int   `json:"final_ii"`
	SchedRan      bool  `json:"sched_ran"`
	SchedProven   bool  `json:"sched_proven"`
	SchedImproved bool  `json:"sched_improved"`
	SchedNodes    int64 `json:"sched_nodes"`
	PartRan       bool  `json:"part_ran"`
	PartProven    bool  `json:"part_proven"`
	PartImproved  bool  `json:"part_improved"`
	PartWon       bool  `json:"part_won"`
	PartNodes     int64 `json:"part_nodes"`
}

// CompileResponse is the POST /v1/compile success body.
type CompileResponse struct {
	Name             string           `json:"name"`
	Machine          string           `json:"machine"`
	Partitioner      string           `json:"partitioner"`
	PortfolioVariant string           `json:"portfolio_variant,omitempty"`
	IdealII          int              `json:"ideal_ii"`
	PartII           int              `json:"part_ii"`
	Degradation      float64          `json:"degradation"`
	KernelCopies     int              `json:"kernel_copies"`
	Spills           int              `json:"spills"`
	CacheHit         bool             `json:"cache_hit,omitempty"`
	CacheTier        string           `json:"cache_tier,omitempty"`
	Schedule         []ScheduledOp    `json:"schedule"`
	Refine           *RefineReport    `json:"refine,omitempty"`
	Exact            *ExactGapReport  `json:"exact,omitempty"`
	Expansion        *ExpansionReport `json:"expansion,omitempty"`
	Adaptive         *AdaptiveReport  `json:"adaptive,omitempty"`
}

// BatchRequest is the POST /v1/compile/batch body: many loops in one
// request, decoded in a single pass. The embedded RequestDefaults fields
// sit at the top level of the JSON object (field promotion), so the wire
// shape is identical to the historical explicit fields.
type BatchRequest struct {
	RequestDefaults
	// Items are the loops to compile, at most MaxBatchItems of them.
	Items []CompileRequest `json:"items"`
}

// BatchItem is one loop's outcome inside a batch: exactly one of Result
// and Error is set, and Code is the status the same request would have
// drawn from /v1/compile (200, 422, 504...). A failing item never fails
// the batch — errors stay item-level. In the streaming modes (NDJSON and
// binary) each BatchItem is one output frame, emitted in completion
// order; Index maps it back to the request's Items slice.
type BatchItem struct {
	Index  int              `json:"index"`
	Code   int              `json:"code"`
	Result *CompileResponse `json:"result,omitempty"`
	Error  *ErrorResponse   `json:"error,omitempty"`
}

// BatchResponse is the buffered POST /v1/compile/batch success body;
// Items is in request order.
type BatchResponse struct {
	Items  []BatchItem `json:"items"`
	Errors int         `json:"errors"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Stage is the pipeline stage a cancelled or timed-out compile had
	// reached (empty otherwise); see codegen.Stage.
	Stage string `json:"stage,omitempty"`
	// Supported lists the media types the endpoint accepts; set on 415
	// (unknown Content-Type) and 406 (unsatisfiable Accept) responses.
	Supported []string `json:"supported,omitempty"`
}
