package wire

import (
	"fmt"
	"strings"
)

// Media types the v1 surface speaks. NDJSON is response-only (the batch
// streaming mode); requests are JSON or binary.
const (
	// ContentTypeJSON is the default codec on every endpoint.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the compact length-prefixed binary codec
	// defined in binary.go.
	ContentTypeBinary = "application/x-swp-bin"
	// ContentTypeNDJSON is the batch endpoint's JSON streaming mode: one
	// BatchItem object per line, in completion order.
	ContentTypeNDJSON = "application/x-ndjson"
)

// Format is a negotiated codec.
type Format int

const (
	// FormatJSON selects the JSON codec.
	FormatJSON Format = iota
	// FormatBinary selects the binary codec.
	FormatBinary
)

// ContentType returns the media type the format is served under.
func (f Format) ContentType() string {
	if f == FormatBinary {
		return ContentTypeBinary
	}
	return ContentTypeJSON
}

// String names the format for logs and error bodies.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "json"
}

// RequestTypes lists the request media types every v1 endpoint accepts —
// the Supported field of a 415 body.
func RequestTypes() []string { return []string{ContentTypeJSON, ContentTypeBinary} }

// mediaType extracts the bare lowercase media type from a header value,
// dropping parameters ("application/json; charset=utf-8" → "application/json").
func mediaType(v string) string {
	v, _, _ = strings.Cut(v, ";")
	return strings.ToLower(strings.TrimSpace(v))
}

// ParseContentType maps a request's Content-Type header to the codec its
// body is encoded with. An absent header defaults to JSON (the historical
// behavior of the unversioned endpoints); an unknown type is an error the
// server surfaces as 415 with RequestTypes in the body.
func ParseContentType(header string) (Format, error) {
	switch mediaType(header) {
	case "", ContentTypeJSON:
		return FormatJSON, nil
	case ContentTypeBinary:
		return FormatBinary, nil
	default:
		return FormatJSON, fmt.Errorf("unsupported content type %q", mediaType(header))
	}
}

// NegotiateAccept maps a request's Accept header to the response codec,
// defaulting to def (the request's own format, so a binary client gets a
// binary answer without sending Accept). Wildcards accept the default.
// A header that names only types the endpoint cannot produce is an error
// the server surfaces as 406 with the producible types in the body.
//
// extra lists additional response-only types the endpoint can produce
// (the batch endpoint passes ContentTypeNDJSON); a match on one reports
// that type through the returned string instead of a Format.
func NegotiateAccept(header string, def Format, extra ...string) (Format, string, error) {
	if strings.TrimSpace(header) == "" {
		return def, "", nil
	}
	for _, part := range strings.Split(header, ",") {
		switch mt := mediaType(part); mt {
		case "*/*", "application/*":
			return def, "", nil
		case ContentTypeJSON:
			return FormatJSON, "", nil
		case ContentTypeBinary:
			return FormatBinary, "", nil
		default:
			for _, e := range extra {
				if mt == e {
					return def, e, nil
				}
			}
		}
	}
	return def, "", fmt.Errorf("not acceptable: %q", strings.TrimSpace(header))
}

// ResponseTypes lists the response media types an endpoint can produce —
// the Supported field of a 406 body. extra appends response-only types.
func ResponseTypes(extra ...string) []string {
	return append([]string{ContentTypeJSON, ContentTypeBinary}, extra...)
}
