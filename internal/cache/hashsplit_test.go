package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"repro/internal/xxh"
)

// TestDiskSumMatchesCanonicalSHA256 pins the hashing split's
// compatibility contract: a disk-capable key's DiskSum must be the
// SHA-256 of the hasher's canonical byte encoding — exactly the digest
// the pre-split, all-SHA-256 scheme used for every key — so records
// written by older builds still resolve by name and golden stores stay
// warm across the change.
func TestDiskSumMatchesCanonicalSHA256(t *testing.T) {
	// Reconstruct, by hand, the canonical encoding the Hasher writes for
	// this sequence: stage string, a string, an int.
	var enc []byte
	writeStr := func(s string) {
		enc = binary.AppendVarint(enc, int64(len(s)))
		enc = append(enc, s...)
	}
	writeStr(string(StageModulo))
	writeStr("compat probe")
	enc = binary.AppendVarint(enc, 42)

	h := NewHasher(StageModulo)
	h.Str("compat probe")
	h.Int(42)
	k := h.KeyDisk(StageModulo)

	if !k.DiskKeyed {
		t.Fatal("KeyDisk did not mark the key disk-capable")
	}
	if want := sha256.Sum256(enc); k.DiskSum != want {
		t.Fatalf("DiskSum diverged from SHA-256 of the canonical encoding:\n got  %x\n want %x", k.DiskSum, want)
	}
	if want := xxh.Sum64(enc); k.Sum != want {
		t.Fatalf("memory sum diverged from XXH64 of the canonical encoding: got %#x want %#x", k.Sum, want)
	}

	// Both finalizers agree on the memory sum, so a stage that sometimes
	// runs diskless hits the same in-memory entries either way.
	h2 := NewHasher(StageModulo)
	h2.Str("compat probe")
	h2.Int(42)
	k2 := h2.Key(StageModulo)
	if k2.Sum != k.Sum {
		t.Fatalf("Key and KeyDisk disagree on the memory sum: %#x vs %#x", k2.Sum, k.Sum)
	}
	if k2.DiskKeyed {
		t.Fatal("memory-only finalizer claimed a disk digest")
	}
}

// TestDiskIgnoresMemoryOnlyKeys: a key without the disk digest must be
// invisible to the persistent tier — no record written, no counters
// disturbed — even for a persisted stage.
func TestDiskIgnoresMemoryOnlyKeys(t *testing.T) {
	d := mustOpenDisk(t, t.TempDir(), BudgetUnlimited)
	h := NewHasher(StageModulo)
	h.Str("memory only")
	k := h.Key(StageModulo)

	d.put(k, testSchedule(3))
	d.Sync()
	if st := d.Stats(); st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("memory-only key reached the disk tier: %+v", st)
	}
	if _, ok := d.get(k); ok {
		t.Fatal("memory-only key served from the disk tier")
	}
	if st := d.Stats(); st.Misses != 0 {
		t.Fatalf("memory-only key counted a disk miss: %+v", st)
	}
}
