package cache_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// TestSuiteFingerprintInjectivity fingerprints every loop of the full
// 211-loop paper suite and demands that two loops share a key only when
// their bodies are genuinely structurally identical (same canonical
// rendering). A spurious collision here would silently hand one loop
// another loop's dependence graph or schedule.
func TestSuiteFingerprintInjectivity(t *testing.T) {
	loops := loopgen.Suite()
	lat := machine.Ideal16().Lat
	seen := make(map[cache.Key]*ir.Loop, len(loops))
	distinct := 0
	for _, l := range loops {
		k := cache.DDGKey(l.Body, lat, true, 0)
		if prev, ok := seen[k]; ok {
			if prev.Body.String() != l.Body.String() {
				t.Fatalf("fingerprint collision: %s and %s share key %s but differ structurally",
					prev.Name, l.Name, k)
			}
			continue
		}
		seen[k] = l
		distinct++
	}
	if distinct < len(loops)/2 {
		t.Fatalf("only %d distinct fingerprints for %d loops — generator or hash degenerate", distinct, len(loops))
	}
	t.Logf("%d loops, %d distinct fingerprints", len(loops), distinct)
}

// TestFingerprintIgnoresPresentation: loop names, operation comments and
// op IDs are presentation, not semantics. Renaming and renumbering a loop
// must not change its key — that is what lets reparsed or cloned loops
// share cached work.
func TestFingerprintIgnoresPresentation(t *testing.T) {
	l := loopgen.Suite()[3]
	lat := machine.Ideal16().Lat
	k := cache.DDGKey(l.Body, lat, true, 0)

	c := l.Clone()
	c.Name = "renamed"
	for _, op := range c.Body.Ops {
		op.Comment = "noise"
	}
	c.Body.Renumber()
	if got := cache.DDGKey(c.Body, lat, true, 0); got != k {
		t.Fatalf("rename/comment/renumber changed the fingerprint: %s vs %s", got, k)
	}

	// But any structural change must change it.
	c.Body.Ops[0].Imm++
	if got := cache.DDGKey(c.Body, lat, true, 0); got == k {
		t.Fatal("immediate change did not change the fingerprint")
	}
}

// TestIdealStageSharedAcrossPaperMachines is the theorem the cache's
// cross-config sharing rests on: the six evaluated machines' monolithic
// ideal configurations differ only in name, bank size and copy model, and
// none of those can influence the dependence graph or the schedule of a
// copy-free body — so all six must produce one DDG key and one modulo key
// per loop.
func TestIdealStageSharedAcrossPaperMachines(t *testing.T) {
	l := loopgen.Suite()[0]
	if cache.HasCopies(l.Body) {
		t.Fatal("suite loop unexpectedly contains copies")
	}
	cfgs := machine.PaperConfigs()
	ideal0 := codegen.IdealOf(cfgs[0])
	dk := cache.DDGKey(l.Body, ideal0.Lat, true, 0)
	mk := cache.ModuloKey(l.Body, ideal0, true, 0, nil, 0, false, 0, false)
	for _, cfg := range cfgs[1:] {
		ideal := codegen.IdealOf(cfg)
		if got := cache.DDGKey(l.Body, ideal.Lat, true, 0); got != dk {
			t.Fatalf("%s: ideal DDG key %s differs from %s", cfg.Name, got, dk)
		}
		if got := cache.ModuloKey(l.Body, ideal, true, 0, nil, 0, false, 0, false); got != mk {
			t.Fatalf("%s: ideal modulo key %s differs from %s", cfg.Name, got, mk)
		}
	}
}

// TestCopyModelSensitivity: once a block contains inter-cluster copies the
// copy model, port and bus limits become scheduler-relevant and must enter
// the key; on copy-free blocks they must not.
func TestCopyModelSensitivity(t *testing.T) {
	emb := machine.MustClustered16(4, machine.Embedded)
	cu := machine.MustClustered16(4, machine.CopyUnit)

	free := loopgen.Suite()[0].Body
	if k1, k2 := cache.ModuloKey(free, emb, true, 0, nil, 0, false, 0, false),
		cache.ModuloKey(free, cu, true, 0, nil, 0, false, 0, false); k1 != k2 {
		t.Fatal("copy-free block keys differ across copy models")
	}

	// Append a copy: the models must now separate.
	withCopy := free.Clone()
	src := withCopy.Ops[0].Defs[0]
	dst := ir.Reg{Class: src.Class, ID: 9999}
	withCopy.Append(&ir.Op{Code: ir.Copy, Class: src.Class, Defs: []ir.Reg{dst}, Uses: []ir.Reg{src}})
	if !cache.HasCopies(withCopy) {
		t.Fatal("HasCopies missed an appended copy")
	}
	if k1, k2 := cache.ModuloKey(withCopy, emb, true, 0, nil, 0, false, 0, false),
		cache.ModuloKey(withCopy, cu, true, 0, nil, 0, false, 0, false); k1 == k2 {
		t.Fatal("copy-bearing block keys coincide across copy models")
	}
}

// TestModuloKeySensitivity: every scheduling option that can change the
// outcome must change the key.
func TestModuloKeySensitivity(t *testing.T) {
	b := loopgen.Suite()[1].Body
	cfg := machine.MustClustered16(4, machine.Embedded)
	base := cache.ModuloKey(b, cfg, true, 0, nil, 0, false, 0, false)
	clusterOf := make([]int, len(b.Ops))
	variants := map[string]cache.Key{
		"carried=false": cache.ModuloKey(b, cfg, false, 0, nil, 0, false, 0, false),
		"memFlow=1":     cache.ModuloKey(b, cfg, true, 1, nil, 0, false, 0, false),
		"clusterOf":     cache.ModuloKey(b, cfg, true, 0, clusterOf, 0, false, 0, false),
		"budget=7":      cache.ModuloKey(b, cfg, true, 0, nil, 7, false, 0, false),
		"lifetime":      cache.ModuloKey(b, cfg, true, 0, nil, 0, true, 0, false),
		"maxII=64":      cache.ModuloKey(b, cfg, true, 0, nil, 0, false, 64, false),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("option %s did not change the modulo key", name)
		}
	}
	other := machine.MustClustered16(2, machine.Embedded)
	if cache.ModuloKey(b, other, true, 0, nil, 0, false, 0, false) == base {
		t.Error("cluster geometry did not change the modulo key")
	}
	lat := cfg.Lat
	lat.Load++
	if cache.DDGKey(b, lat, true, 0) == cache.DDGKey(b, cfg.Lat, true, 0) {
		t.Error("latency change did not change the DDG key")
	}
}
