// Package cache is the compile pipeline's content-addressed memoization
// layer. Stage results (dependence graphs, modulo schedules) are keyed by
// a canonical fingerprint of exactly the inputs the stage consults — the
// loop body and the stage-relevant slice of the machine configuration —
// so structurally identical requests share one computation no matter
// which machine of the experiment grid, which partitioning method, or
// which worker goroutine asks. In-memory keys digest the encoding with
// XXH64 (internal/xxh); keys bound for the persistent tier additionally
// carry a SHA-256 sum so on-disk record names are unchanged across the
// hashing split (see Key and DiskKey).
//
// The design target is the experiment harness: regenerating the paper's
// tables runs the same 211 loops across the 2/4/8-cluster × copy-model
// grid, and everything up to the partitioning step (steps 1–2 of the
// pipeline) is cluster-independent. With the cache on, that work is done
// once per loop instead of once per (loop, machine) pair. DESIGN.md §8
// documents the key scheme and its soundness argument.
//
// A Cache is safe for concurrent use and computes each resident entry
// exactly once: concurrent requests for one in-flight key block on the
// first computation instead of duplicating it (the experiment pool hits
// this constantly). A nil *Cache disables caching; every method is
// nil-safe, mirroring the nil-Tracer convention of internal/trace.
//
// A Cache may be bounded by a byte budget (SetBudget, NewBounded): each
// entry is charged an estimated resident size by its stage's Coster, and
// when the total exceeds the budget a per-shard CLOCK sweep evicts
// cold, unpinned entries until the cache fits again. Entries are pinned
// for the duration of every lookup that touches them, so eviction never
// breaks the exactly-once protocol: an in-flight entry cannot disappear
// under its waiters, and a key that was evicted and is requested again
// recomputes exactly once on a fresh entry. DESIGN.md §11 documents the
// policy and the pinning rule.
package cache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Stage names the pipeline stage a cached value belongs to. Keys embed
// the stage, so two stages never collide even if their input fingerprints
// coincide.
type Stage string

const (
	// StageDDG keys dependence-graph construction (ddg.Build).
	StageDDG Stage = "ddg"
	// StageModulo keys modulo scheduling (modulo.Run).
	StageModulo Stage = "modulo"
	// StageRCG keys register component graph construction (core.Build),
	// which depends on the ideal schedule but not on the bank count.
	StageRCG Stage = "rcg"
	// StageAssign keys the composite ideal-view + greedy bank assignment
	// step, fingerprinted by the inputs that determine the ideal schedule
	// rather than by the schedule itself — so a hit skips even the view
	// construction. Depends on the bank count but not the copy model.
	StageAssign Stage = "assign"
	// StageCopyIns keys copy insertion (codegen.InsertCopies), a pure
	// function of the body, the fresh-register counter and the bank
	// assignment — independent of the copy model, which only prices the
	// inserted copies downstream.
	StageCopyIns Stage = "copyins"
	// StageAlloc keys per-bank register allocation (step 5), a pure
	// function of the clustered graph, schedule and extended assignment —
	// all themselves determined by the rewritten body and the scheduling
	// inputs, so the key names those rather than the intermediate objects.
	StageAlloc Stage = "alloc"
)

// Key is a content-addressed cache key: the stage plus a fast 64-bit
// digest (XXH64) of the stage's canonical input encoding. Keys are
// comparable values and safe to use across goroutines.
//
// The 64-bit sum addresses only the in-memory tier, where keys are
// process-local and a collision needs ~2^32 distinct keys to become
// likely — the pipeline computes a few thousand per run. Keys that may
// reach the persistent tier additionally carry the SHA-256 of the same
// encoding (DiskSum, produced by Hasher.KeyDisk), because on-disk
// record names outlive the process and must stay compatible across
// versions; DiskKey is that boundary type. The split is what took
// per-compile fingerprinting off the warm path: four or five SHA-256
// digests per compile became XXH64 except where a disk tier is actually
// attached. DESIGN.md §14 documents the scheme.
type Key struct {
	Stage Stage
	Sum   uint64
	// DiskSum is the SHA-256 of the same canonical encoding; valid only
	// when DiskKeyed is set (see Hasher.KeyDisk). Keys without it never
	// touch the persistent tier.
	DiskSum   [sha256.Size]byte
	DiskKeyed bool
}

// String renders the key as "stage:hex" for logs and errors.
func (k Key) String() string { return fmt.Sprintf("%s:%016x", k.Stage, k.Sum) }

// DiskKey returns the persistent-tier key, if this key carries one.
func (k Key) DiskKey() (DiskKey, bool) {
	return DiskKey{Stage: k.Stage, Sum: k.DiskSum}, k.DiskKeyed
}

// Budget sentinels for SetBudget, NewBounded, codegen.Config.CacheBudget
// and the -cache-budget flags. Positive values are a bound in bytes.
const (
	// BudgetUnlimited disables eviction — the default for New, and the
	// zero value so unconfigured callers keep the unbounded behavior.
	BudgetUnlimited int64 = 0
	// BudgetZero is a zero-byte budget: every entry is evicted the moment
	// its last in-flight lookup lets go. (A literal 0 means "unlimited"
	// so that zero-valued configs stay unbounded; the negative sentinel
	// expresses "retain nothing", the eviction stress mode.)
	BudgetZero int64 = -1
)

// Coster estimates the resident size, in bytes, that a cached value keeps
// alive — the slices, maps and blocks reachable from it — so the byte
// budget tracks real memory rather than entry counts. Estimates may be
// coarse; they only need to be consistent. A nil Coster charges each
// entry the fixed bookkeeping overhead alone.
type Coster func(v any) int64

// entryOverhead is the fixed charge per entry: the entry struct, its map
// slot, its ring slot and the key. Charged even to cached errors, so an
// unbounded stream of distinct failing inputs still respects the budget.
const entryOverhead = 256

// nShards bounds lock contention: keys scatter by their first sum byte.
const nShards = 32

type entry struct {
	key  Key
	once sync.Once
	val  any
	err  error
	// fromDisk records that the once.Do owner restored the value from a
	// verified disk record instead of computing it (published to
	// co-waiters by sync.Once, like val and err).
	fromDisk bool
	// cost is the bytes charged to the budget, written by the once.Do
	// owner and read by evictors only after pins reaches zero (the
	// owner's unpin publishes it; sync.Once publishes it to co-waiters).
	cost int64

	// Guarded by the owning shard's mutex:
	pins int  // in-flight lookups holding this entry; >0 blocks eviction
	ref  bool // CLOCK second-chance bit, set by every lookup
	slot int  // index in the shard's ring; -1 once removed
}

type shard struct {
	mu   sync.Mutex
	m    map[Key]*entry
	ring []*entry // CLOCK ring over resident entries
	hand int
}

// Tier reports where a lookup's value came from, so callers can tell a
// warm-memory hit from a disk-tier restore from a cold computation.
type Tier uint8

const (
	// TierNone is a miss: this lookup ran the computation.
	TierNone Tier = iota
	// TierMemory is a hit served by the in-memory tier — the value was
	// resident, or another goroutine's in-flight computation was shared.
	TierMemory
	// TierDisk is a hit restored from the persistent tier: the value was
	// not in memory, but a verified disk record supplied it without
	// recomputation.
	TierDisk
)

// String names the tier for counters and logs.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "miss"
	}
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups resolved by another goroutine's computation,
	// finished or in-flight — the in-memory tier. A lookup that had to
	// run the computation itself — including a waiter re-running one it
	// inherited cancelled — counts as a miss instead; one restored from
	// a verified disk record counts under DiskHits.
	Hits int64
	// DiskHits counts lookups restored from the persistent tier instead
	// of recomputed (see Disk). Zero when no disk is attached.
	DiskHits int64
	// Misses counts lookups that computed the entry.
	Misses int64
	// Entries is the number of distinct keys currently resident.
	Entries int64
	// Bytes is the estimated resident size of all entries, per the
	// stages' Costers plus the fixed per-entry overhead.
	Bytes int64
	// Evictions counts entries removed by the byte budget (cancelled
	// computations, which are also removed, are not evictions).
	Evictions int64
	// Pinned is the number of entries currently pinned by in-flight
	// lookups; pinned entries are immune to eviction.
	Pinned int64
	// Disk is the persistent tier's snapshot; zero when none is attached.
	Disk DiskStats
}

// Cache memoizes stage results. Create one with New (unbounded) or
// NewBounded; a nil *Cache is the disabled cache (GetOrCompute always
// computes, Stats returns zeros).
type Cache struct {
	budget    atomic.Int64 // BudgetUnlimited, BudgetZero or a byte bound
	rotor     atomic.Uint64
	disk      atomic.Pointer[Disk]
	shards    [nShards]shard
	hits      atomic.Int64
	diskHits  atomic.Int64
	misses    atomic.Int64
	entries   atomic.Int64
	bytes     atomic.Int64
	evictions atomic.Int64
	pinned    atomic.Int64
}

// New returns an empty cache with no byte budget.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
	}
	return c
}

// NewBounded returns an empty cache bounded to budget bytes (see
// SetBudget for the sentinel values).
func NewBounded(budget int64) *Cache {
	c := New()
	c.SetBudget(budget)
	return c
}

// SetBudget sets the cache's byte budget and immediately evicts down to
// it: BudgetUnlimited (0) disables eviction, BudgetZero retains nothing,
// a positive value bounds the estimated resident bytes. Safe to call
// concurrently with lookups; entries pinned by in-flight lookups are
// evicted as they unpin.
func (c *Cache) SetBudget(budget int64) {
	if c == nil {
		return
	}
	c.budget.Store(budget)
	c.evictOver()
}

// Budget returns the current byte budget (see SetBudget).
func (c *Cache) Budget() int64 {
	if c == nil {
		return BudgetUnlimited
	}
	return c.budget.Load()
}

// Enabled reports whether the cache stores anything.
func (c *Cache) Enabled() bool { return c != nil }

// AttachDisk adds a persistent second tier behind the memory tier: a
// memory miss consults the disk before computing, and computed values
// for the persisted stages (DiskStages) are written behind. Attach nil
// to detach. Safe to call concurrently with lookups; nil-safe.
func (c *Cache) AttachDisk(d *Disk) {
	if c == nil {
		return
	}
	c.disk.Store(d)
}

// Disk returns the attached persistent tier, or nil.
func (c *Cache) Disk() *Disk {
	if c == nil {
		return nil
	}
	return c.disk.Load()
}

// GetOrCompute is GetOrComputeCosted with the default (overhead-only)
// cost estimate.
func (c *Cache) GetOrCompute(k Key, compute func() (any, error)) (v any, hit bool, err error) {
	return c.GetOrComputeCosted(k, compute, nil)
}

// GetOrComputeCosted returns the value for k, computing it with compute
// on the first request. Concurrent requests for the same key wait for the
// single in-flight computation rather than repeating it. The boolean
// reports a hit: true when the value came from another goroutine's
// computation (finished or in-flight). Errors are cached too — the
// pipeline is deterministic, so a failing input fails identically every
// time and recomputing it would only waste the budget the cache exists
// to save.
//
// The exception is context cancellation: a computation cut short by its
// caller's deadline says nothing about the input, so entries whose error
// is context.Canceled or context.DeadlineExceeded are evicted instead of
// stored — one impatient request cannot poison a key for later, patient
// callers. A waiter that inherited such an error retries through the
// cache under its own context, so concurrent disappointed waiters still
// coalesce into a single recomputation; that retry counts as a miss.
//
// On success, cost (nil means overhead only) estimates the entry's
// resident bytes for the byte budget; the entry stays pinned — immune to
// eviction — until every lookup touching it has returned, which is what
// keeps eviction compatible with the exactly-once protocol.
//
// On a nil cache, compute runs unconditionally and hit is false.
func (c *Cache) GetOrComputeCosted(k Key, compute func() (any, error), cost Coster) (v any, hit bool, err error) {
	v, tier, err := c.GetOrComputeTiered(k, compute, cost)
	return v, tier != TierNone, err
}

// GetOrComputeTiered is GetOrComputeCosted reporting which tier served
// the value: TierNone for a computed miss, TierMemory for a resident or
// shared in-flight value, TierDisk for a value restored from a verified
// disk record (only possible with an attached Disk). Waiters that share
// an in-flight disk restore count as memory hits — they were served by
// the memory tier's singleflight, whatever filled it.
func (c *Cache) GetOrComputeTiered(k Key, compute func() (any, error), cost Coster) (v any, tier Tier, err error) {
	if c == nil {
		v, err = compute()
		return v, TierNone, err
	}
	for {
		v, tier, err, retry := c.lookup(k, compute, cost)
		if !retry {
			return v, tier, err
		}
	}
}

// lookup is one singleflight round: find or create the entry, pin it,
// resolve it, unpin. retry reports that the round resolved to a
// cancellation inherited from another goroutine and the caller should go
// again under its own steam.
func (c *Cache) lookup(k Key, compute func() (any, error), cost Coster) (v any, tier Tier, err error, retry bool) {
	s := &c.shards[int(k.Sum%nShards)]
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		e = &entry{key: k, slot: len(s.ring)}
		s.m[k] = e
		s.ring = append(s.ring, e)
		c.entries.Add(1)
	}
	e.ref = true
	if e.pins == 0 {
		c.pinned.Add(1)
	}
	e.pins++
	s.mu.Unlock()

	owner := false
	e.once.Do(func() {
		owner = true
		d := c.disk.Load()
		if d != nil {
			if dv, ok := d.get(k); ok {
				e.val, e.fromDisk = dv, true
			}
		}
		if !e.fromDisk {
			e.val, e.err = compute()
			if d != nil && e.err == nil {
				d.put(k, e.val)
			}
		}
		if !isCancellation(e.err) {
			e.cost = entryOverhead
			if cost != nil && e.err == nil {
				e.cost += cost(e.val)
			}
			c.bytes.Add(e.cost)
		}
	})
	v, err = e.val, e.err

	cancelled := isCancellation(err)
	s.mu.Lock()
	if cancelled {
		// Cancelled computations are never retained (their cost was never
		// charged); the first of the disappointed lookups removes the
		// entry, the rest find slot == -1.
		c.removeLocked(s, e)
	}
	e.pins--
	if e.pins == 0 {
		c.pinned.Add(-1)
	}
	s.mu.Unlock()

	if cancelled && !owner {
		// We only waited; someone else's deadline cut the computation
		// short and says nothing about our own context. Retry through the
		// cache so concurrent retries still compute exactly once.
		return nil, TierNone, nil, true
	}

	// Lookups are counted at resolution time, once per GetOrCompute call:
	// whoever ran the computation missed (or restored it from disk),
	// everyone who shared it hit the memory tier.
	switch {
	case owner && e.fromDisk:
		tier = TierDisk
		c.diskHits.Add(1)
	case owner:
		tier = TierNone
		c.misses.Add(1)
	default:
		tier = TierMemory
		c.hits.Add(1)
	}
	c.evictOver()
	return v, tier, err, false
}

// removeLocked deletes e from its shard's map and ring and refunds its
// charge. Idempotent; the caller holds s.mu.
func (c *Cache) removeLocked(s *shard, e *entry) {
	if e.slot < 0 {
		return
	}
	delete(s.m, e.key)
	last := len(s.ring) - 1
	s.ring[e.slot] = s.ring[last]
	s.ring[e.slot].slot = e.slot
	s.ring[last] = nil
	s.ring = s.ring[:last]
	e.slot = -1
	c.entries.Add(-1)
	c.bytes.Add(-e.cost)
}

// limit resolves the budget sentinel into (byte bound, bounded).
func (c *Cache) limit() (int64, bool) {
	switch b := c.budget.Load(); {
	case b == BudgetUnlimited:
		return 0, false
	case b < 0:
		return 0, true
	default:
		return b, true
	}
}

// evictOver brings the cache back under its byte budget, evicting one
// cold entry at a time. It stops early if a full sweep finds only pinned
// entries — those are evicted by whichever lookup unpins them last.
func (c *Cache) evictOver() {
	limit, bounded := c.limit()
	if !bounded {
		return
	}
	for c.bytes.Load() > limit {
		if !c.evictOne() {
			return
		}
	}
}

// evictOne runs the CLOCK hand across the shards, starting at a rotating
// shard for fairness, and evicts the first unpinned entry whose
// reference bit is already clear. Two passes suffice: the first clears
// the bits of recently-touched entries, the second claims a victim.
func (c *Cache) evictOne() bool {
	start := int(c.rotor.Add(1) % nShards)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < nShards; i++ {
			if c.sweep(&c.shards[(start+i)%nShards]) {
				return true
			}
		}
	}
	return false
}

// sweep advances s's clock hand at most one revolution: pinned entries
// are skipped, referenced entries lose their bit (second chance), and
// the first cold entry is evicted. Reports whether it evicted.
func (c *Cache) sweep(s *shard) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := len(s.ring); n > 0; n-- {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.pins > 0 {
			s.hand++
			continue
		}
		if e.ref {
			e.ref = false
			s.hand++
			continue
		}
		c.removeLocked(s, e) // swap-remove pulls a new entry under the hand
		c.evictions.Add(1)
		return true
	}
	return false
}

// isCancellation reports whether err stems from a cancelled or expired
// context rather than from the computed input itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// GetAs is the typed convenience wrapper around Cache.GetOrCompute. The
// caller must use one value type per key consistently (the pipeline keys
// by stage, which fixes the type).
func GetAs[T any](c *Cache, k Key, compute func() (T, error)) (v T, hit bool, err error) {
	return GetAsCosted(c, k, compute, nil)
}

// GetAsCosted is GetAs with a stage Coster charging the entry's resident
// bytes to the byte budget.
func GetAsCosted[T any](c *Cache, k Key, compute func() (T, error), cost Coster) (v T, hit bool, err error) {
	got, tier, err := GetAsTiered(c, k, compute, cost)
	return got, tier != TierNone, err
}

// GetAsTiered is GetAsCosted reporting the serving tier (see
// GetOrComputeTiered), so per-stage counters can tell disk restores
// from warm memory hits.
func GetAsTiered[T any](c *Cache, k Key, compute func() (T, error), cost Coster) (v T, tier Tier, err error) {
	got, tier, err := c.GetOrComputeTiered(k, func() (any, error) { return compute() }, cost)
	if err != nil {
		return v, tier, err
	}
	return got.(T), tier, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		DiskHits:  c.diskHits.Load(),
		Misses:    c.misses.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		Evictions: c.evictions.Load(),
		Pinned:    c.pinned.Load(),
		Disk:      c.disk.Load().Stats(),
	}
}

// String renders the counters for command-line reporting. With a disk
// tier attached, memory and disk hits are reported separately — a hit
// is no longer just a hit.
func (s Stats) String() string {
	total := s.Hits + s.DiskHits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits+s.DiskHits) / float64(total)
	}
	base := fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d entries, %d bytes resident, %d evictions",
		s.Hits, s.Misses, pct, s.Entries, s.Bytes, s.Evictions)
	if s.DiskHits > 0 || s.Disk != (DiskStats{}) {
		base += fmt.Sprintf("; disk: %d hits, %d misses, %d entries, %d bytes, %d evictions, %d verify failures",
			s.DiskHits, s.Disk.Misses, s.Disk.Entries, s.Disk.Bytes, s.Disk.Evictions, s.Disk.VerifyFailures)
	}
	return base
}

// ParseBudget parses a -cache-budget flag value: "unlimited", "" or "0"
// mean no bound (BudgetUnlimited); "none" or "-1" mean retain nothing
// (BudgetZero); anything else is a byte count with an optional size
// suffix — K/M/G and KiB/MiB/GiB are binary multiples, KB/MB/GB decimal.
func ParseBudget(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	switch t {
	case "", "0", "unlimited":
		return BudgetUnlimited, nil
	case "none", "-1":
		return BudgetZero, nil
	}
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(t, suf.s) {
			t, mult = strings.TrimSpace(strings.TrimSuffix(t, suf.s)), suf.m
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("cache: invalid budget %q (want bytes with an optional KiB/MiB/GiB suffix, %q, or %q)", s, "unlimited", "none")
	}
	if n == 0 {
		return BudgetUnlimited, nil
	}
	return n * mult, nil
}
