// Package cache is the compile pipeline's content-addressed memoization
// layer. Stage results (dependence graphs, modulo schedules) are keyed by
// a canonical SHA-256 fingerprint of exactly the inputs the stage
// consults — the loop body and the stage-relevant slice of the machine
// configuration — so structurally identical requests share one
// computation no matter which machine of the experiment grid, which
// partitioning method, or which worker goroutine asks.
//
// The design target is the experiment harness: regenerating the paper's
// tables runs the same 211 loops across the 2/4/8-cluster × copy-model
// grid, and everything up to the partitioning step (steps 1–2 of the
// pipeline) is cluster-independent. With the cache on, that work is done
// once per loop instead of once per (loop, machine) pair. DESIGN.md §8
// documents the key scheme and its soundness argument.
//
// A Cache is safe for concurrent use and computes each entry exactly once:
// concurrent requests for one in-flight key block on the first computation
// instead of duplicating it (the experiment pool hits this constantly).
// A nil *Cache disables caching; every method is nil-safe, mirroring the
// nil-Tracer convention of internal/trace.
package cache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stage names the pipeline stage a cached value belongs to. Keys embed
// the stage, so two stages never collide even if their input fingerprints
// coincide.
type Stage string

const (
	// StageDDG keys dependence-graph construction (ddg.Build).
	StageDDG Stage = "ddg"
	// StageModulo keys modulo scheduling (modulo.Run).
	StageModulo Stage = "modulo"
	// StageRCG keys register component graph construction (core.Build),
	// which depends on the ideal schedule but not on the bank count.
	StageRCG Stage = "rcg"
	// StageAssign keys the composite ideal-view + greedy bank assignment
	// step, fingerprinted by the inputs that determine the ideal schedule
	// rather than by the schedule itself — so a hit skips even the view
	// construction. Depends on the bank count but not the copy model.
	StageAssign Stage = "assign"
	// StageCopyIns keys copy insertion (codegen.InsertCopies), a pure
	// function of the body, the fresh-register counter and the bank
	// assignment — independent of the copy model, which only prices the
	// inserted copies downstream.
	StageCopyIns Stage = "copyins"
)

// Key is a content-addressed cache key: the stage plus the SHA-256 sum of
// the stage's canonical input encoding. Keys are comparable values and
// safe to use across goroutines.
type Key struct {
	Stage Stage
	Sum   [sha256.Size]byte
}

// String renders the key as "stage:hexprefix" for logs and errors.
func (k Key) String() string { return fmt.Sprintf("%s:%x", k.Stage, k.Sum[:8]) }

// nShards bounds lock contention: keys scatter by their first sum byte.
const nShards = 32

type entry struct {
	once sync.Once
	val  any
	err  error
}

type shard struct {
	mu sync.Mutex
	m  map[Key]*entry
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups that reused an existing (or in-flight) entry.
	Hits int64
	// Misses counts lookups that had to compute the entry.
	Misses int64
	// Entries is the number of distinct keys stored.
	Entries int64
}

// Cache memoizes stage results. Create one with New; a nil *Cache is the
// disabled cache (GetOrCompute always computes, Stats returns zeros).
type Cache struct {
	shards  [nShards]shard
	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
	}
	return c
}

// Enabled reports whether the cache stores anything.
func (c *Cache) Enabled() bool { return c != nil }

// GetOrCompute returns the value for k, computing it with compute on the
// first request. Concurrent requests for the same key wait for the single
// in-flight computation rather than repeating it. The boolean reports a
// hit: true when the entry already existed (even if still being computed
// by another goroutine). Errors are cached too — the pipeline is
// deterministic, so a failing input fails identically every time and
// recomputing it would only waste the budget the cache exists to save.
//
// The exception is context cancellation: a computation cut short by its
// caller's deadline says nothing about the input, so entries whose error
// is context.Canceled or context.DeadlineExceeded are evicted instead of
// stored — one impatient request cannot poison a key for later, patient
// callers. A waiter that inherited such an error from the cancelled
// computation retries the computation itself (under its own context).
//
// On a nil cache, compute runs unconditionally and hit is false.
func (c *Cache) GetOrCompute(k Key, compute func() (any, error)) (v any, hit bool, err error) {
	if c == nil {
		v, err = compute()
		return v, false, err
	}
	s := &c.shards[int(k.Sum[0])%nShards]
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		e = &entry{}
		s.m[k] = e
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		c.entries.Add(1)
	}
	e.once.Do(func() { e.val, e.err = compute() })
	if e.err != nil && isCancellation(e.err) {
		s.mu.Lock()
		if s.m[k] == e {
			delete(s.m, k)
			c.entries.Add(-1)
		}
		s.mu.Unlock()
		if ok {
			// We only waited; our own context may be healthy, so run the
			// computation ourselves rather than surfacing someone else's
			// cancellation.
			v, err = compute()
			return v, true, err
		}
	}
	return e.val, ok, e.err
}

// isCancellation reports whether err stems from a cancelled or expired
// context rather than from the computed input itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// GetAs is the typed convenience wrapper around Cache.GetOrCompute. The
// caller must use one value type per key consistently (the pipeline keys
// by stage, which fixes the type).
func GetAs[T any](c *Cache, k Key, compute func() (T, error)) (v T, hit bool, err error) {
	got, hit, err := c.GetOrCompute(k, func() (any, error) { return compute() })
	if err != nil {
		return v, hit, err
	}
	return got.(T), hit, nil
}

// Stats returns a snapshot of the hit/miss/entry counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.entries.Load()}
}

// String renders the counters for command-line reporting.
func (s Stats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d entries", s.Hits, s.Misses, pct, s.Entries)
}
