package cache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func keyOf(stage Stage, payload string) Key {
	h := NewHasher(stage)
	h.Str(payload)
	return h.Key(stage)
}

func TestGetOrComputeMemoizes(t *testing.T) {
	c := New()
	k := keyOf(StageDDG, "x")
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrCompute(k, func() (any, error) {
			calls++
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v, want 42", v)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Fatalf("request %d: hit=%v, want %v", i, hit, wantHit)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 2 hits, 1 miss, 1 entry", st)
	}
}

// TestGetOrComputeSingleflight hammers one key from many goroutines: the
// computation must run exactly once and every caller must see its value.
func TestGetOrComputeSingleflight(t *testing.T) {
	c := New()
	k := keyOf(StageModulo, "contested")
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	const goroutines = 32
	values := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := c.GetOrCompute(k, func() (any, error) {
				calls.Add(1)
				return 7, nil
			})
			if err == nil {
				values[i] = v.(int)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", got)
	}
	for i, v := range values {
		if v != 7 {
			t.Fatalf("goroutine %d saw %d, want 7", i, v)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d total lookups with 1 miss", st, goroutines)
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New()
	k := keyOf(StageDDG, "failing")
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCompute(k, func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("request %d: err=%v, want boom", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestNilCacheDisabled(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Fatal("nil cache reports enabled")
	}
	k := keyOf(StageDDG, "x")
	calls := 0
	for i := 0; i < 2; i++ {
		v, hit, err := c.GetOrCompute(k, func() (any, error) {
			calls++
			return i, nil
		})
		if err != nil || hit {
			t.Fatalf("nil cache: hit=%v err=%v", hit, err)
		}
		if v.(int) != i {
			t.Fatalf("nil cache returned %v, want %d", v, i)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized: %d calls, want 2", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v, want zeros", st)
	}
}

func TestGetAsTyped(t *testing.T) {
	c := New()
	k := keyOf(StageModulo, "typed")
	v, hit, err := GetAs(c, k, func() (string, error) { return "hello", nil })
	if err != nil || hit || v != "hello" {
		t.Fatalf("first GetAs: %q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = GetAs(c, k, func() (string, error) { return "other", nil })
	if err != nil || !hit || v != "hello" {
		t.Fatalf("second GetAs: %q hit=%v err=%v, want cached hello", v, hit, err)
	}
}

// TestStageSeparation: identical payloads under different stages must get
// different keys — the stage is part of the content being hashed, not just
// a label on the Key struct.
func TestStageSeparation(t *testing.T) {
	a := keyOf(StageDDG, "same")
	b := keyOf(StageModulo, "same")
	if a.Sum == b.Sum {
		t.Fatal("ddg and modulo fingerprints of identical payloads collide")
	}
}

// TestEncodingFraming: the canonical encoding must frame values so that
// adjacent writes cannot be re-split into a colliding sequence.
func TestEncodingFraming(t *testing.T) {
	h1 := NewHasher(StageDDG)
	h1.Str("ab")
	h1.Str("c")
	h2 := NewHasher(StageDDG)
	h2.Str("a")
	h2.Str("bc")
	if h1.Key(StageDDG) == h2.Key(StageDDG) {
		t.Fatal(`["ab","c"] and ["a","bc"] fingerprint identically`)
	}
	h3 := NewHasher(StageDDG)
	h3.Ints([]int{1, 2})
	h4 := NewHasher(StageDDG)
	h4.Ints([]int{1})
	h4.Ints([]int{2})
	if h3.Key(StageDDG) == h4.Key(StageDDG) {
		t.Fatal("[1,2] and [1][2] fingerprint identically")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Entries: 1}
	str := s.String()
	for _, want := range []string{"3 hits", "1 misses", "75.0%", "1 entries"} {
		if !strings.Contains(str, want) {
			t.Fatalf("Stats.String() = %q, missing %q", str, want)
		}
	}
	if empty := (Stats{}).String(); !strings.Contains(empty, "0.0%") {
		t.Fatalf("zero Stats.String() = %q, want 0%% rate without dividing by zero", empty)
	}
}

func TestKeyString(t *testing.T) {
	k := keyOf(StageDDG, "x")
	if s := k.String(); !strings.HasPrefix(s, "ddg:") || len(s) != len("ddg:")+16 {
		t.Fatalf("Key.String() = %q, want ddg:<16 hex chars>", s)
	}
}

// TestShardSpread sanity-checks that many distinct keys land in the cache
// without colliding entries.
func TestShardSpread(t *testing.T) {
	c := New()
	const n = 500
	for i := 0; i < n; i++ {
		k := keyOf(StageDDG, fmt.Sprintf("key-%d", i))
		_, hit, err := c.GetOrCompute(k, func() (any, error) { return i, nil })
		if err != nil || hit {
			t.Fatalf("key %d: unexpected hit=%v err=%v", i, hit, err)
		}
	}
	if st := c.Stats(); st.Entries != n || st.Misses != n {
		t.Fatalf("stats %+v, want %d entries and misses", st, n)
	}
}
