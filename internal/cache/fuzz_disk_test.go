package cache

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"
)

// FuzzDiskCacheCodec hammers the disk tier's two defensive layers with
// arbitrary bytes:
//
//  1. the record framing (DecodeRecord) and both stage payload decoders
//     must never panic, whatever the input — a corrupt or adversarial
//     record file degrades to a miss, not a crash;
//  2. whenever arbitrary bytes do parse, the parsed value must survive
//     an encode→decode round trip unchanged — writes are canonical even
//     when reads are liberal (non-minimal varints, unsorted assignment
//     entries), so everything the tier ever writes re-reads exactly.
func FuzzDiskCacheCodec(f *testing.F) {
	// Seed with well-formed records of both persisted stages, plus
	// near-miss mutations the fuzzer can build on.
	sched, _ := encodeSchedule(testSchedule(6))
	asg, _ := encodeAssignment(testAssignment(4))
	rec := EncodeRecord(DiskKey{Stage: StageModulo, Sum: sha256.Sum256([]byte("seed"))}, sched)
	f.Add(rec)
	f.Add(EncodeRecord(DiskKey{Stage: StageAssign, Sum: sha256.Sum256([]byte("seed2"))}, asg))
	f.Add(rec[:len(rec)-1])
	f.Add(append(bytes.Clone(rec), 0))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// None of these may panic on any input.
		if k, payload, err := DecodeRecord(data); err == nil {
			// A record that verified must survive re-framing.
			k2, payload2, err := DecodeRecord(EncodeRecord(k, payload))
			if err != nil || k2 != k || !bytes.Equal(payload2, payload) {
				t.Fatalf("frame round trip diverges (err %v)", err)
			}
		}
		if v, err := decodeSchedule(data); err == nil {
			re, err := encodeSchedule(v)
			if err != nil {
				t.Fatalf("decoded schedule fails to re-encode: %v", err)
			}
			v2, err := decodeSchedule(re)
			if err != nil || !reflect.DeepEqual(v, v2) {
				t.Fatalf("schedule round trip diverges (err %v):\n in  %+v\n out %+v", err, v, v2)
			}
		}
		if v, err := decodeAssignment(data); err == nil {
			re, err := encodeAssignment(v)
			if err != nil {
				t.Fatalf("decoded assignment fails to re-encode: %v", err)
			}
			v2, err := decodeAssignment(re)
			if err != nil || !reflect.DeepEqual(v, v2) {
				t.Fatalf("assignment round trip diverges (err %v):\n in  %+v\n out %+v", err, v, v2)
			}
		}
	})
}
