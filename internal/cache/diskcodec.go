package cache

// Stage value codecs for the disk tier. Only stages whose cached values
// are plain data records are persisted: the modulo schedule (the II
// loop is the pipeline's dominant cost, and the exact-solver arms can
// spend real budget proving one optimal) and the composite bank
// assignment. Dependence graphs and copy-inserted bodies stay
// memory-only — they are cheap to rebuild relative to their serialized
// size and full of pointers into compile-local IR.
//
// Every decoder is written against adversarial input: lengths are
// bounds-checked before any allocation sized by them, and a malformed
// payload is an error, never a panic (FuzzDiskCacheCodec pins this).

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modulo"
)

// codec serializes one stage's cached values for the disk tier.
type codec struct {
	encode func(v any) ([]byte, error)
	decode func(b []byte) (any, error)
}

// diskCodecs maps the persisted stages to their codecs. Immutable after
// package init, so reads need no lock.
var diskCodecs = map[Stage]codec{
	StageModulo: {encode: encodeSchedule, decode: decodeSchedule},
	StageAssign: {encode: encodeAssignment, decode: decodeAssignment},
}

// diskCodec returns the codec for stage, if the stage is persisted.
func diskCodec(s Stage) (codec, bool) {
	c, ok := diskCodecs[s]
	return c, ok
}

// DiskStages lists the pipeline stages the disk tier persists, for
// documentation and tests.
func DiskStages() []Stage { return []Stage{StageModulo, StageAssign} }

// maxDecodeElems caps decoded slice lengths: no real loop has a million
// operations or registers, and the cap keeps a corrupt length prefix
// from turning into a giant allocation before the contents fail to
// parse.
const maxDecodeElems = 1 << 20

// reader is a bounds-checked varint cursor over a codec payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) int() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrBadRecord, r.off)
	}
	r.off += n
	return v, nil
}

// length reads a non-negative element count with the sanity cap.
func (r *reader) length() (int, error) {
	v, err := r.int()
	if err != nil {
		return 0, err
	}
	if v < 0 || v > maxDecodeElems {
		return 0, fmt.Errorf("%w: implausible length %d", ErrBadRecord, v)
	}
	return int(v), nil
}

// done errors unless the payload was consumed exactly.
func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadRecord, len(r.b)-r.off)
	}
	return nil
}

func appendInts(buf []byte, xs []int) []byte {
	buf = binary.AppendVarint(buf, int64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

func (r *reader) ints() ([]int, error) {
	n, err := r.length()
	if err != nil {
		return nil, err
	}
	xs := make([]int, n)
	for i := range xs {
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: implausible value %d", ErrBadRecord, v)
		}
		xs[i] = int(v)
	}
	return xs, nil
}

// encodeSchedule flattens a *modulo.Schedule: II, Length, the per-op
// cycle and cluster vectors.
func encodeSchedule(v any) ([]byte, error) {
	s, ok := v.(*modulo.Schedule)
	if !ok || s == nil {
		return nil, fmt.Errorf("cache: modulo codec got %T", v)
	}
	buf := make([]byte, 0, 8+2*10*len(s.Time))
	buf = binary.AppendVarint(buf, int64(s.II))
	buf = binary.AppendVarint(buf, int64(s.Length))
	buf = appendInts(buf, s.Time)
	buf = appendInts(buf, s.Cluster)
	return buf, nil
}

func decodeSchedule(b []byte) (any, error) {
	r := &reader{b: b}
	ii, err := r.int()
	if err != nil {
		return nil, err
	}
	length, err := r.int()
	if err != nil {
		return nil, err
	}
	if ii < 0 || ii > maxDecodeElems || length < 0 || length > maxDecodeElems {
		return nil, fmt.Errorf("%w: implausible schedule shape (II=%d, length=%d)", ErrBadRecord, ii, length)
	}
	times, err := r.ints()
	if err != nil {
		return nil, err
	}
	clusters, err := r.ints()
	if err != nil {
		return nil, err
	}
	if len(clusters) != len(times) {
		return nil, fmt.Errorf("%w: schedule has %d times but %d clusters", ErrBadRecord, len(times), len(clusters))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &modulo.Schedule{II: int(ii), Length: int(length), Time: times, Cluster: clusters}, nil
}

// encodeAssignment flattens a *core.Assignment: the bank count plus
// (class, id, bank) triples in sorted register order, so one assignment
// always encodes to one byte string.
func encodeAssignment(v any) ([]byte, error) {
	a, ok := v.(*core.Assignment)
	if !ok || a == nil {
		return nil, fmt.Errorf("cache: assign codec got %T", v)
	}
	regs := make([]ir.Reg, 0, len(a.Of))
	for r := range a.Of {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Class != regs[j].Class {
			return regs[i].Class < regs[j].Class
		}
		return regs[i].ID < regs[j].ID
	})
	buf := make([]byte, 0, 8+3*10*len(regs))
	buf = binary.AppendVarint(buf, int64(a.Banks))
	buf = binary.AppendVarint(buf, int64(len(regs)))
	for _, r := range regs {
		buf = binary.AppendVarint(buf, int64(r.Class))
		buf = binary.AppendVarint(buf, int64(r.ID))
		buf = binary.AppendVarint(buf, int64(a.Of[r]))
	}
	return buf, nil
}

func decodeAssignment(b []byte) (any, error) {
	r := &reader{b: b}
	banks, err := r.int()
	if err != nil {
		return nil, err
	}
	if banks < 0 || banks > maxDecodeElems {
		return nil, fmt.Errorf("%w: implausible bank count %d", ErrBadRecord, banks)
	}
	n, err := r.length()
	if err != nil {
		return nil, err
	}
	of := make(map[ir.Reg]int, n)
	for i := 0; i < n; i++ {
		class, err := r.int()
		if err != nil {
			return nil, err
		}
		id, err := r.int()
		if err != nil {
			return nil, err
		}
		bank, err := r.int()
		if err != nil {
			return nil, err
		}
		if class < 0 || class > math.MaxUint8 || id < 0 || id > maxDecodeElems || bank < 0 || bank >= max(banks, 1) {
			return nil, fmt.Errorf("%w: implausible assignment entry (class=%d id=%d bank=%d)", ErrBadRecord, class, id, bank)
		}
		of[ir.Reg{Class: ir.Class(class), ID: int(id)}] = int(bank)
	}
	if len(of) != n {
		return nil, fmt.Errorf("%w: duplicate registers in assignment", ErrBadRecord)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.Assignment{Banks: int(banks), Of: of}, nil
}
