package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modulo"
)

// testSchedule and testAssignment build representative values for the
// two persisted stages.
func testSchedule(n int) *modulo.Schedule {
	s := &modulo.Schedule{II: 3, Length: 2*n + 5}
	for i := 0; i < n; i++ {
		s.Time = append(s.Time, 2*i+1)
		s.Cluster = append(s.Cluster, i%4)
	}
	return s
}

func testAssignment(n int) *core.Assignment {
	a := &core.Assignment{Banks: 4, Of: make(map[ir.Reg]int)}
	for i := 0; i < n; i++ {
		a.Of[ir.Reg{Class: ir.Class(i % 2), ID: i}] = i % 4
	}
	return a
}

// testKey builds a disk-capable key (memory sum plus SHA-256 disk sum)
// from a seed string, the shape every persisted-stage lookup carries.
func testKey(stage Stage, seed string) Key {
	h := NewHasher(stage)
	h.Str(seed)
	return h.KeyDisk(stage)
}

// testDiskKey is testKey's persistent-tier half, for record-level tests.
func testDiskKey(stage Stage, seed string) DiskKey {
	dk, ok := testKey(stage, seed).DiskKey()
	if !ok {
		panic("testKey lost its disk digest")
	}
	return dk
}

// mustOpenDisk opens a tier rooted in dir and registers cleanup.
func mustOpenDisk(t *testing.T, dir string, budget int64) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestDiskRecordRoundTrip(t *testing.T) {
	k := testDiskKey(StageModulo, "roundtrip")
	payload := []byte("arbitrary payload bytes \x00\xff")
	rec := EncodeRecord(k, payload)
	gotKey, gotPayload, err := DecodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != k {
		t.Fatalf("key round trip: got %v want %v", gotKey, k)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload round trip: got %q want %q", gotPayload, payload)
	}
}

func TestDiskCodecRoundTrip(t *testing.T) {
	s := testSchedule(17)
	b, err := encodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("schedule round trip: got %+v want %+v", got, s)
	}

	a := testAssignment(23)
	b, err = encodeAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := decodeAssignment(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, a) {
		t.Fatalf("assignment round trip: got %+v want %+v", gotA, a)
	}
}

// TestDiskReopenRoundTrip is the restart story end to end: values
// computed through one cache+disk pair are served, byte-identical and
// without recomputation, by a fresh cache over a reopened directory.
func TestDiskReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kSched := testKey(StageModulo, "sched")
	kAsg := testKey(StageAssign, "asg")
	wantSched := testSchedule(9)
	wantAsg := testAssignment(11)

	d := mustOpenDisk(t, dir, BudgetUnlimited)
	c := New()
	c.AttachDisk(d)
	if _, tier, err := GetAsTiered(c, kSched, func() (*modulo.Schedule, error) { return wantSched, nil }, nil); err != nil || tier != TierNone {
		t.Fatalf("first schedule lookup: tier %v err %v", tier, err)
	}
	if _, tier, err := GetAsTiered(c, kAsg, func() (*core.Assignment, error) { return wantAsg, nil }, nil); err != nil || tier != TierNone {
		t.Fatalf("first assignment lookup: tier %v err %v", tier, err)
	}
	d.Sync()
	if st := d.Stats(); st.Writes != 2 {
		t.Fatalf("expected 2 disk writes, got %+v", st)
	}
	d.Close()

	// "Restart": fresh memory tier, reopened directory.
	d2 := mustOpenDisk(t, dir, BudgetUnlimited)
	if st := d2.Stats(); st.Entries != 2 {
		t.Fatalf("reopened tier indexes %d entries, want 2", st.Entries)
	}
	c2 := New()
	c2.AttachDisk(d2)
	computed := 0
	gotSched, tier, err := GetAsTiered(c2, kSched, func() (*modulo.Schedule, error) { computed++; return testSchedule(9), nil }, nil)
	if err != nil || tier != TierDisk {
		t.Fatalf("warm schedule lookup: tier %v err %v", tier, err)
	}
	if computed != 0 {
		t.Fatal("warm schedule lookup recomputed")
	}
	if !reflect.DeepEqual(gotSched, wantSched) {
		t.Fatalf("restored schedule differs: got %+v want %+v", gotSched, wantSched)
	}
	gotAsg, tier, err := GetAsTiered(c2, kAsg, func() (*core.Assignment, error) { computed++; return nil, nil }, nil)
	if err != nil || tier != TierDisk || computed != 0 {
		t.Fatalf("warm assignment lookup: tier %v err %v computed %d", tier, err, computed)
	}
	if !reflect.DeepEqual(gotAsg, wantAsg) {
		t.Fatalf("restored assignment differs: got %+v want %+v", gotAsg, wantAsg)
	}
	// A second lookup of the same key is a memory hit, not a disk hit.
	if _, tier, _ := GetAsTiered(c2, kSched, func() (*modulo.Schedule, error) { return nil, nil }, nil); tier != TierMemory {
		t.Fatalf("resident lookup reports tier %v, want memory", tier)
	}
	st := c2.Stats()
	if st.DiskHits != 2 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after warm restart: %+v", st)
	}
}

// corruptions are the mid-file disasters verified-on-read must absorb:
// each mutates a record file in place.
var corruptions = []struct {
	name    string
	corrupt func(t *testing.T, path string)
}{
	{"truncate", func(t *testing.T, path string) {
		data := readFileT(t, path)
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"bitflip", func(t *testing.T, path string) {
		data := readFileT(t, path)
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"zero", func(t *testing.T, path string) {
		data := readFileT(t, path)
		for i := range data {
			data[i] = 0
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}},
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDiskCorruptionDegradesToMiss injects every corruption class into
// a warm record and demands the contract of the tier: the lookup never
// fails, the value recomputes byte-identically, the verify-failure
// counter bumps, and the bad record is quarantined out of the
// content-addressed namespace so it is never consulted again.
func TestDiskCorruptionDegradesToMiss(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey(StageModulo, "victim-"+tc.name)
			want := testSchedule(13)

			d := mustOpenDisk(t, dir, BudgetUnlimited)
			c := New()
			c.AttachDisk(d)
			if _, _, err := GetAsTiered(c, k, func() (*modulo.Schedule, error) { return want, nil }, nil); err != nil {
				t.Fatal(err)
			}
			d.Sync()
			d.Close()

			path := filepath.Join(dir, string(StageModulo), nameOf(t, dir, StageModulo))
			tc.corrupt(t, path)

			d2 := mustOpenDisk(t, dir, BudgetUnlimited)
			c2 := New()
			c2.AttachDisk(d2)
			computed := 0
			got, tier, err := GetAsTiered(c2, k, func() (*modulo.Schedule, error) { computed++; return testSchedule(13), nil }, nil)
			if err != nil {
				t.Fatalf("corrupted record surfaced an error: %v", err)
			}
			if tier != TierNone || computed != 1 {
				t.Fatalf("corrupted record did not degrade to a recomputing miss (tier %v, computed %d)", tier, computed)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recomputed value differs from the original: got %+v want %+v", got, want)
			}
			st := d2.Stats()
			if st.VerifyFailures != 1 {
				t.Fatalf("verify_failures = %d, want 1 (%+v)", st.VerifyFailures, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt record still present in the content-addressed namespace")
			}
			qfiles, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
			if len(qfiles) != 1 {
				t.Fatalf("quarantine holds %d files, want 1", len(qfiles))
			}
			// The recomputed value was re-written behind; a third process
			// restores it cleanly with no further verify failures.
			d2.Sync()
			d2.Close()
			d3 := mustOpenDisk(t, dir, BudgetUnlimited)
			c3 := New()
			c3.AttachDisk(d3)
			got3, tier, err := GetAsTiered(c3, k, func() (*modulo.Schedule, error) { t.Fatal("recomputed after repair"); return nil, nil }, nil)
			if err != nil || tier != TierDisk {
				t.Fatalf("post-repair lookup: tier %v err %v", tier, err)
			}
			if !reflect.DeepEqual(got3, want) {
				t.Fatalf("post-repair value differs: got %+v want %+v", got3, want)
			}
			if st := d3.Stats(); st.VerifyFailures != 0 {
				t.Fatalf("post-repair verify_failures = %d, want 0", st.VerifyFailures)
			}
		})
	}
}

// nameOf returns the single record filename under dir/<stage>.
func nameOf(t *testing.T, dir string, stage Stage) string {
	t.Helper()
	files, err := os.ReadDir(filepath.Join(dir, string(stage)))
	if err != nil {
		t.Fatal(err)
	}
	var recs []string
	for _, f := range files {
		if strings.HasSuffix(f.Name(), recSuffix) {
			recs = append(recs, f.Name())
		}
	}
	if len(recs) != 1 {
		t.Fatalf("expected exactly one record under %s, found %v", stage, recs)
	}
	return recs[0]
}

// TestDiskKillAndReopen proves a half-written write-behind record can
// never poison the store: records become visible only through an atomic
// rename, so a kill mid-write leaves a ".tmp" orphan that the next Open
// deletes, and the key simply misses.
func TestDiskKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	k := testKey(StageModulo, "halfwrite")
	want := testSchedule(7)

	// Simulate the crash: the payload made it halfway into the temp
	// file and the process died before the rename.
	stageDir := filepath.Join(dir, string(StageModulo))
	if err := os.MkdirAll(stageDir, 0o755); err != nil {
		t.Fatal(err)
	}
	payload, err := encodeSchedule(want)
	if err != nil {
		t.Fatal(err)
	}
	dk, _ := k.DiskKey()
	rec := EncodeRecord(dk, payload)
	half := filepath.Join(stageDir, "deadbeef"+recSuffix+tmpSuffix)
	if err := os.WriteFile(half, rec[:len(rec)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d := mustOpenDisk(t, dir, BudgetUnlimited)
	if _, err := os.Stat(half); !os.IsNotExist(err) {
		t.Fatal("Open left the half-written temp file in place")
	}
	c := New()
	c.AttachDisk(d)
	computed := 0
	got, tier, err := GetAsTiered(c, k, func() (*modulo.Schedule, error) { computed++; return testSchedule(7), nil }, nil)
	if err != nil || tier != TierNone || computed != 1 {
		t.Fatalf("post-crash lookup: tier %v err %v computed %d", tier, err, computed)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash value differs: got %+v want %+v", got, want)
	}
	if st := d.Stats(); st.VerifyFailures != 0 {
		t.Fatalf("a cleaned temp file must not count as a verify failure (%+v)", st)
	}
}

// TestDiskBudgetSweep bounds the directory: steady writes past the
// byte budget must evict least-recently-used records and hold resident
// bytes at or under the budget, across reopens too.
func TestDiskBudgetSweep(t *testing.T) {
	dir := t.TempDir()
	const budget = int64(4 << 10)
	d := mustOpenDisk(t, dir, budget)
	c := New()
	c.AttachDisk(d)
	for i := 0; i < 200; i++ {
		k := testKey(StageModulo, "sweep-"+string(rune('a'+i%26))+string(rune('0'+i/26)))
		s := testSchedule(20 + i%7)
		if _, _, err := GetAsTiered(c, k, func() (*modulo.Schedule, error) { return s, nil }, nil); err != nil {
			t.Fatal(err)
		}
	}
	d.Sync()
	st := d.Stats()
	if st.Bytes > budget {
		t.Fatalf("disk tier sits at %d bytes, over the %d budget", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("budget never bound: zero evictions")
	}
	if st.Entries == 0 {
		t.Fatal("sweep evicted everything: zero entries resident")
	}
	d.Close()

	// Reopen honors the same bound over whatever survived.
	d2 := mustOpenDisk(t, dir, budget)
	if st := d2.Stats(); st.Bytes > budget || st.Entries == 0 {
		t.Fatalf("reopened tier: %+v (budget %d)", st, budget)
	}
}

// TestDiskRenamedRecordMisses: filenames locate records but never
// authenticate them — the key inside the verified record is what
// serves, so a record renamed onto the wrong fingerprint misses and is
// quarantined.
func TestDiskRenamedRecordMisses(t *testing.T) {
	dir := t.TempDir()
	k := testKey(StageModulo, "original")
	d := mustOpenDisk(t, dir, BudgetUnlimited)
	c := New()
	c.AttachDisk(d)
	if _, _, err := GetAsTiered(c, k, func() (*modulo.Schedule, error) { return testSchedule(5), nil }, nil); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	d.Close()

	stageDir := filepath.Join(dir, string(StageModulo))
	other := testKey(StageModulo, "someone-else")
	oldPath := filepath.Join(stageDir, nameOf(t, dir, StageModulo))
	newPath := filepath.Join(stageDir, fmt.Sprintf("%x%s", other.DiskSum[:], recSuffix))
	if err := os.Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpenDisk(t, dir, BudgetUnlimited)
	c2 := New()
	c2.AttachDisk(d2)
	computed := 0
	if _, tier, err := GetAsTiered(c2, other, func() (*modulo.Schedule, error) { computed++; return testSchedule(1), nil }, nil); err != nil || tier != TierNone || computed != 1 {
		t.Fatalf("renamed record: tier %v err %v computed %d", tier, err, computed)
	}
	if st := d2.Stats(); st.VerifyFailures != 1 {
		t.Fatalf("renamed record verify_failures = %d, want 1", st.VerifyFailures)
	}
}

// TestDiskUnpersistedStageStaysMemoryOnly: stages without a codec never
// touch the directory.
func TestDiskUnpersistedStageStaysMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	d := mustOpenDisk(t, dir, BudgetUnlimited)
	c := New()
	c.AttachDisk(d)
	k := testKey(StageDDG, "graph")
	if _, tier, err := GetAsTiered(c, k, func() (int, error) { return 42, nil }, nil); err != nil || tier != TierNone {
		t.Fatalf("ddg lookup: tier %v err %v", tier, err)
	}
	d.Sync()
	if st := d.Stats(); st.Writes != 0 || st.Misses != 0 {
		t.Fatalf("unpersisted stage touched the disk tier: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, string(StageDDG))); !os.IsNotExist(err) {
		t.Fatal("unpersisted stage grew a directory")
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{TierNone: "miss", TierMemory: "memory", TierDisk: "disk"} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}

// TestDiskAccessorsAndClosedBehavior pins the tier's small read-only
// surface (Dir, Budget, Stats, DiskStages, the Cache attach point) plus
// the closed-Disk contract: after Close, lookups still read records
// while puts and Sync degrade to no-ops — nothing panics, nothing
// blocks.
func TestDiskAccessorsAndClosedBehavior(t *testing.T) {
	// The whole surface is nil-safe so callers can thread an optional
	// tier without guards.
	var nd *Disk
	nd.Sync()
	nd.Close()
	if nd.Dir() != "" || nd.Budget() != BudgetUnlimited || nd.Stats() != (DiskStats{}) {
		t.Error("nil Disk accessors are not zero-valued")
	}
	var nc *Cache
	nc.AttachDisk(nil)
	if nc.Disk() != nil {
		t.Error("nil Cache claims an attached disk")
	}

	stages := DiskStages()
	wantStage := map[Stage]bool{StageModulo: true, StageAssign: true}
	if len(stages) != len(wantStage) {
		t.Fatalf("DiskStages() = %v, want the two persisted stages", stages)
	}
	for _, s := range stages {
		if !wantStage[s] {
			t.Fatalf("DiskStages() includes unpersisted stage %v", s)
		}
	}

	dir := t.TempDir()
	d := mustOpenDisk(t, dir, 12345)
	if d.Dir() != dir || d.Budget() != 12345 {
		t.Errorf("accessors: dir %q budget %d", d.Dir(), d.Budget())
	}
	c := New()
	c.AttachDisk(d)
	if c.Disk() != d {
		t.Error("AttachDisk did not take")
	}

	k := testKey(StageModulo, "accessors")
	if _, _, err := c.GetOrComputeTiered(k, func() (any, error) {
		return testSchedule(3), nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	d.Close()
	d.Close() // idempotent
	d.Sync()  // no-op after Close

	// Lookups still serve the written record after Close...
	if v, ok := d.get(k); !ok || v == nil {
		t.Error("closed Disk no longer serves its records")
	}
	// ...while puts are silently dropped rather than panicking on the
	// closed queue.
	d.put(testKey(StageModulo, "late"), testSchedule(4))
	if _, ok := d.get(testKey(StageModulo, "late")); ok {
		t.Error("put after Close still stored a record")
	}

	// Detach restores the memory-only cache.
	c.AttachDisk(nil)
	if c.Disk() != nil {
		t.Error("detach did not take")
	}
}
