package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pinsOf reads the current pin count of k's entry (0 if absent), for
// tests that want to wait until a known number of lookups are in flight.
func (c *Cache) pinsOf(k Key) int {
	s := &c.shards[int(k.Sum%nShards)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[k]; ok {
		return e.pins
	}
	return 0
}

// waitPins blocks until k's entry has at least want pins or the deadline
// passes. The deadline is a liveness fallback only: the tests' asserted
// counts are interleaving-independent (a goroutine that arrives late
// simply joins the next singleflight generation).
func (c *Cache) waitPins(k Key, want int) {
	deadline := time.Now().Add(5 * time.Second)
	for c.pinsOf(k) < want && time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// TestCancellationRetryStats is the regression test for the
// cancellation-retry accounting bug: a waiter that inherited
// context.Canceled from the cancelled first computation used to return
// hit=true and leave its hits increment in place while recomputing
// locally, once per waiter. Now the disappointed waiters retry through
// the cache — so exactly two computations run (the cancelled one and one
// retry) — and the retry owner counts as a miss, keeping hit rates
// honest. Run under -race in CI.
func TestCancellationRetryStats(t *testing.T) {
	c := New()
	k := keyOf(StageModulo, "cancelled-then-retried")
	var computes atomic.Int64
	const waiters = 8

	entered := make(chan struct{}) // first computation is running
	release := make(chan struct{}) // lets the first computation fail

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_, hit, err := c.GetOrCompute(k, func() (any, error) {
			computes.Add(1)
			close(entered)
			<-release
			return nil, context.Canceled
		})
		if hit {
			t.Error("cancelled creator reported hit=true")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled creator returned %v, want context.Canceled", err)
		}
	}()
	<-entered

	var wg sync.WaitGroup
	ownerCount := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.GetOrCompute(k, func() (any, error) {
				computes.Add(1)
				return 99, nil
			})
			if err != nil {
				t.Errorf("waiter error: %v", err)
				return
			}
			if v.(int) != 99 {
				t.Errorf("waiter got %v, want 99", v)
			}
			if !hit {
				ownerCount.Add(1)
			}
		}()
	}
	c.waitPins(k, waiters+1) // all waiters blocked on the in-flight entry
	close(release)
	wg.Wait()
	<-firstDone

	if got := computes.Load(); got != 2 {
		t.Fatalf("%d computations ran, want exactly 2 (the cancelled one and one retry)", got)
	}
	if got := ownerCount.Load(); got != 1 {
		t.Fatalf("%d waiters reported hit=false, want exactly 1 (the retry owner)", got)
	}
	want := Stats{
		Hits:    waiters - 1,
		Misses:  2, // the cancelled creator and the retry owner
		Entries: 1,
		Bytes:   entryOverhead,
	}
	if st := c.Stats(); st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

// TestEvictionByteBudget fills a bounded cache past its budget and checks
// the CLOCK keeps resident bytes at or under it, counts evictions, and
// recomputes an evicted key exactly once on re-request.
func TestEvictionByteBudget(t *testing.T) {
	const valCost = 1024
	const slots = 4
	budget := int64(slots * (valCost + entryOverhead))
	c := NewBounded(budget)
	coster := func(any) int64 { return valCost }

	var computes atomic.Int64
	get := func(i int) {
		t.Helper()
		k := keyOf(StageDDG, fmt.Sprintf("entry-%d", i))
		v, _, err := c.GetOrComputeCosted(k, func() (any, error) {
			computes.Add(1)
			return i, nil
		}, coster)
		if err != nil || v.(int) != i {
			t.Fatalf("entry %d: v=%v err=%v", i, v, err)
		}
	}
	// Fill to exactly the budget: everything stays resident, re-requests
	// are pure hits.
	for i := 0; i < slots; i++ {
		get(i)
	}
	before := computes.Load()
	get(0)
	if got := computes.Load() - before; got != 0 {
		t.Fatalf("within budget: key recomputed %d times, want 0", got)
	}
	if st := c.Stats(); st.Hits != 1 || st.Evictions != 0 {
		t.Fatalf("within budget: stats %+v, want 1 hit and no evictions", st)
	}

	// Overflow: the sweep must keep bytes at or under budget and count
	// its evictions.
	const n = 12
	for i := slots; i < n; i++ {
		get(i)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Entries > slots {
		t.Fatalf("%d entries resident, budget holds at most %d", st.Entries, slots)
	}
	if st.Evictions < n-slots {
		t.Fatalf("%d evictions, want at least %d", st.Evictions, n-slots)
	}
	if st.Misses != n {
		t.Fatalf("stats %+v, want %d cold misses", st, n)
	}

	// Requesting every key again recomputes each evicted one exactly once
	// (sequential requests, so no singleflight sharing): at most the
	// resident slots can answer without recomputing.
	before = computes.Load()
	for i := 0; i < n; i++ {
		get(i)
	}
	recomputed := computes.Load() - before
	if recomputed < n-slots {
		t.Fatalf("re-request round recomputed %d of %d keys, want at least %d (only %d can be resident)",
			recomputed, n, n-slots, slots)
	}
	if recomputed > n {
		t.Fatalf("re-request round recomputed %d times for %d keys — a key recomputed more than once", recomputed, n)
	}
}

// TestBudgetZeroRetainsNothing: the zero-byte budget evicts every entry
// the moment its lookup returns — each request recomputes, every lookup
// is a miss, and the cache is empty at rest.
func TestBudgetZeroRetainsNothing(t *testing.T) {
	c := NewBounded(BudgetZero)
	k := keyOf(StageDDG, "ephemeral")
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrCompute(k, func() (any, error) {
			calls++
			return calls, nil
		})
		if err != nil || hit {
			t.Fatalf("request %d: hit=%v err=%v, want recompute", i, hit, err)
		}
		if v.(int) != i+1 {
			t.Fatalf("request %d returned %v, want fresh value %d", i, v, i+1)
		}
	}
	want := Stats{Misses: 3, Evictions: 3}
	if st := c.Stats(); st != want {
		t.Fatalf("stats %+v, want %+v (nothing resident)", st, want)
	}
}

// TestPinnedEntrySurvivesEviction: even under the zero-byte budget, an
// in-flight entry is pinned by its waiters — eviction sweeps triggered by
// other traffic must skip it, so the contested computation still runs
// exactly once and every waiter sees its value.
func TestPinnedEntrySurvivesEviction(t *testing.T) {
	c := NewBounded(BudgetZero)
	k := keyOf(StageModulo, "slow-and-contested")
	var computes atomic.Int64

	entered := make(chan struct{})
	release := make(chan struct{})
	const waiters = 6
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute(k, func() (any, error) {
				computes.Add(1)
				close(entered)
				<-release
				return "survived", nil
			})
			if err != nil || v.(string) != "survived" {
				t.Errorf("waiter got %v, %v", v, err)
			}
		}()
	}
	<-entered
	c.waitPins(k, waiters)

	// Churn other keys while k is pinned: each of these lookups ends with
	// an eviction sweep that walks straight past the pinned entry.
	for i := 0; i < 20; i++ {
		ki := keyOf(StageDDG, fmt.Sprintf("churn-%d", i))
		if _, _, err := c.GetOrCompute(ki, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("pinned computation ran %d times mid-churn, want 1", got)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", got)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Pinned != 0 {
		t.Fatalf("stats %+v, want empty cache at rest under the zero budget", st)
	}
}

// TestSetBudgetEvictsDown: shrinking the budget on a full cache evicts
// immediately, and lifting it back to unlimited stops eviction.
func TestSetBudgetEvictsDown(t *testing.T) {
	c := New()
	coster := func(any) int64 { return 1024 }
	const n = 32
	for i := 0; i < n; i++ {
		k := keyOf(StageDDG, fmt.Sprintf("bulk-%d", i))
		if _, _, err := c.GetOrComputeCosted(k, func() (any, error) { return i, nil }, coster); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != n || st.Evictions != 0 {
		t.Fatalf("unbounded fill: stats %+v", st)
	}
	budget := int64(4 * (1024 + entryOverhead))
	c.SetBudget(budget)
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("after SetBudget(%d): %d bytes resident", budget, st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("SetBudget evicted nothing on an over-budget cache")
	}
	c.SetBudget(BudgetUnlimited)
	for i := 0; i < n; i++ {
		k := keyOf(StageRCG, fmt.Sprintf("refill-%d", i))
		if _, _, err := c.GetOrComputeCosted(k, func() (any, error) { return i, nil }, coster); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Evictions; got != st.Evictions {
		t.Fatalf("unlimited cache kept evicting: %d -> %d", st.Evictions, got)
	}
}

// TestBoundedHammer exercises the bounded cache's whole protocol under
// contention (run with -race in CI): many goroutines over a key space
// much larger than the budget, every lookup must return its key's value,
// and at rest the cache must sit at or under budget with nothing pinned.
func TestBoundedHammer(t *testing.T) {
	const (
		keys       = 64
		goroutines = 8
		iters      = 400
		valCost    = 512
	)
	budget := int64(8 * (valCost + entryOverhead))
	c := NewBounded(budget)
	ks := make([]Key, keys)
	for i := range ks {
		ks[i] = keyOf(StageAssign, fmt.Sprintf("hammer-%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Consecutive duplicate accesses (i/2) make hits likely
				// even under serial scheduling.
				idx := (g*31 + (i/2)*17) % keys
				v, _, err := c.GetOrComputeCosted(ks[idx], func() (any, error) {
					return idx, nil
				}, func(any) int64 { return valCost })
				if err != nil {
					t.Errorf("lookup error: %v", err)
					return
				}
				if v.(int) != idx {
					t.Errorf("key %d returned %v — cross-key value leak", idx, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("at rest: %d bytes resident over budget %d", st.Bytes, budget)
	}
	if st.Pinned != 0 {
		t.Fatalf("at rest: %d entries still pinned", st.Pinned)
	}
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("stats %+v: %d lookups accounted, want %d", st, st.Hits+st.Misses, goroutines*iters)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stats %+v: hammer should both hit and evict", st)
	}
}

func TestParseBudget(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"", BudgetUnlimited},
		{"0", BudgetUnlimited},
		{"unlimited", BudgetUnlimited},
		{"Unlimited", BudgetUnlimited},
		{"0MiB", BudgetUnlimited},
		{"none", BudgetZero},
		{"-1", BudgetZero},
		{"1024", 1024},
		{"100b", 100},
		{"64KiB", 64 << 10},
		{"64k", 64 << 10},
		{"10MB", 10_000_000},
		{"2MiB", 2 << 20},
		{"1GiB", 1 << 30},
		{"2g", 2 << 30},
		{" 8 MiB ", 8 << 20},
	}
	for _, tc := range good {
		got, err := ParseBudget(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBudget(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, in := range []string{"abc", "-5", "12XB", "MiB", "9223372036854775807G", "1.5GiB"} {
		if got, err := ParseBudget(in); err == nil {
			t.Errorf("ParseBudget(%q) = %d, want error", in, got)
		}
	}
}
