package cache

// This file is the cache's second tier: a disk directory of
// content-addressed records that survives process restarts, so a fleet
// replica (or a rerun of the experiment harness) starts warm instead of
// recomputing every proven-optimal schedule from scratch. DESIGN.md §13
// documents the tiering and quarantine policy.
//
// The tier is write-behind: a computed value is stored in the memory
// tier synchronously and queued for the disk writer, so compile latency
// never waits on I/O. Records are length-prefixed and checksummed
// (EncodeRecord/DecodeRecord) and verified on read — a truncated,
// bit-flipped or zeroed record is never an error and never a crash, it
// is a miss: the bad file is quarantined (renamed aside, out of the
// content-addressed namespace) and the value recomputes. Half-written
// records cannot poison the store because writes go to a ".tmp" file
// first and reach their final name only through an atomic rename; stale
// temp files from a killed process are swept on Open.
//
// A byte budget bounds the directory, mirroring the memory tier's
// Coster accounting but with exact on-disk record sizes: when the total
// exceeds the budget, an LRU-ish sweep (least recently used first, with
// recency seeded from file mtimes on reopen) deletes records until the
// store fits.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DiskKey addresses one record in the persistent tier: the stage plus
// the SHA-256 of the stage's canonical input encoding. The tier keeps
// the full cryptographic sum even though the memory tier moved to a
// 64-bit digest, because record names are shared state — they outlive
// the process, travel between replicas, and must never collide — and
// because keeping them SHA-256 makes the hashing split invisible on
// disk: every record written before the split still resolves.
type DiskKey struct {
	Stage Stage
	Sum   [sha256.Size]byte
}

// String renders the key as "stage:hexprefix" for logs and errors.
func (k DiskKey) String() string { return fmt.Sprintf("%s:%x", k.Stage, k.Sum[:8]) }

// Record framing constants. A record file is:
//
//	magic   [4]byte  "SWD1" (format version baked into the tag)
//	stage   varint length + bytes
//	sum     32 bytes (the SHA-256 content fingerprint)
//	payload varint length + bytes (stage codec output)
//	crc     4 bytes, little-endian CRC-32C over everything above
//
// Everything before the checksum is covered by it, so corruption of the
// header, the key or the payload is equally detectable.
var recordMagic = [4]byte{'S', 'W', 'D', '1'}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadRecord is (wrapped) by DecodeRecord for every malformed input:
// short files, wrong magic, overlong prefixes, checksum mismatches.
// Callers treat any decode failure as a miss; the sentinel exists so
// tests can assert the failure class.
var ErrBadRecord = errors.New("cache: bad disk record")

// EncodeRecord frames a key and its codec payload into the on-disk
// record format.
func EncodeRecord(k DiskKey, payload []byte) []byte {
	buf := make([]byte, 0, 4+10+len(k.Stage)+len(k.Sum)+10+len(payload)+4)
	buf = append(buf, recordMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(k.Stage)))
	buf = append(buf, k.Stage...)
	buf = append(buf, k.Sum[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf
}

// DecodeRecord parses and verifies a record produced by EncodeRecord.
// It never panics, whatever the input: every length is bounds-checked
// before use and the checksum is verified over exactly the bytes that
// produced it. Trailing garbage after the checksum is corruption too —
// a record file is one record.
func DecodeRecord(data []byte) (DiskKey, []byte, error) {
	var k DiskKey
	if len(data) < 4+1+len(k.Sum)+1+4 {
		return k, nil, fmt.Errorf("%w: %d bytes is shorter than any record", ErrBadRecord, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != sum {
		return k, nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrBadRecord, sum, got)
	}
	if [4]byte(body[:4]) != recordMagic {
		return k, nil, fmt.Errorf("%w: bad magic %q", ErrBadRecord, body[:4])
	}
	rest := body[4:]
	stageLen, n := binary.Uvarint(rest)
	if n <= 0 || stageLen > uint64(len(rest)-n) {
		return k, nil, fmt.Errorf("%w: stage length overruns record", ErrBadRecord)
	}
	k.Stage = Stage(rest[n : n+int(stageLen)])
	rest = rest[n+int(stageLen):]
	if len(rest) < len(k.Sum) {
		return k, nil, fmt.Errorf("%w: truncated key sum", ErrBadRecord)
	}
	copy(k.Sum[:], rest)
	rest = rest[len(k.Sum):]
	payLen, n := binary.Uvarint(rest)
	if n <= 0 || payLen != uint64(len(rest)-n) {
		return k, nil, fmt.Errorf("%w: payload length %d does not match remaining %d bytes", ErrBadRecord, payLen, len(rest)-n)
	}
	return k, rest[n:], nil
}

// DiskStats is a snapshot of the disk tier's counters.
type DiskStats struct {
	// Hits counts lookups served by a verified disk record.
	Hits int64
	// Misses counts disk consultations that found no (valid) record.
	Misses int64
	// Entries and Bytes describe the resident record files.
	Entries int64
	Bytes   int64
	// Writes counts records durably written; Drops counts write-behind
	// requests discarded because the queue was full (best-effort tier).
	Writes int64
	Drops  int64
	// VerifyFailures counts records that failed checksum or decode
	// verification on read; each one is quarantined and served as a miss.
	VerifyFailures int64
	// Evictions counts records deleted by the byte-budget sweep.
	Evictions int64
}

// diskEntry is the in-memory index row for one record file.
type diskEntry struct {
	key  DiskKey
	size int64
	// seq is the recency stamp for the LRU-ish sweep: bumped on every
	// get, seeded from mtime order on reopen.
	seq uint64
}

// writeReq is one queued write-behind record; a request with a non-nil
// flush channel is a barrier — the writer closes it instead of writing.
type writeReq struct {
	key     DiskKey
	payload []byte
	flush   chan struct{}
}

// Disk is the persistent cache tier: one directory, one record file per
// (stage, fingerprint). Open it once per process and attach it to a
// Cache with AttachDisk; all methods are safe for concurrent use and
// nil-safe, mirroring the nil *Cache convention.
type Disk struct {
	dir    string
	budget int64 // BudgetUnlimited, BudgetZero or a byte bound

	mu    sync.Mutex
	index map[DiskKey]*diskEntry
	bytes int64
	seq   uint64

	wq chan writeReq
	wg sync.WaitGroup
	// sendMu serializes queue sends against Close, so a late put can
	// never hit a closed channel; closed is guarded by it.
	sendMu sync.RWMutex
	closed bool

	hits           atomic.Int64
	misses         atomic.Int64
	writes         atomic.Int64
	drops          atomic.Int64
	verifyFailures atomic.Int64
	evictions      atomic.Int64
}

// quarantineDir is where records that failed verification are moved,
// out of the content-addressed namespace so they are never read again
// but remain on disk for post-mortems.
const quarantineDir = "quarantine"

// recSuffix and tmpSuffix name finished records and in-flight writes.
const (
	recSuffix = ".rec"
	tmpSuffix = ".tmp"
)

// writeQueueDepth bounds the write-behind queue. The tier is best
// effort: a full queue drops the write (the value is still cached in
// memory and will be recomputed-and-requeued if it falls out), it never
// blocks a compile. The depth is sized so one full 211-loop suite sweep
// across the paper's machine grid (~2k records, ~100B payloads) queues
// without drops even when compiles outrun file I/O — a shallower queue
// capped warm-restart hit rates near 50% because half the cold run's
// records never reached disk.
const writeQueueDepth = 4096

// OpenDisk opens (creating if needed) the persistent tier rooted at
// dir, bounded to budget bytes (same sentinels as SetBudget: 0 is
// unlimited, BudgetZero retains nothing — useful only for tests). Stale
// temp files from a previous process killed mid-write are deleted;
// existing records are indexed with recency seeded from their
// modification times, oldest first.
func OpenDisk(dir string, budget int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: opening disk tier: %w", err)
	}
	d := &Disk{
		dir:    dir,
		budget: budget,
		index:  make(map[DiskKey]*diskEntry),
		wq:     make(chan writeReq, writeQueueDepth),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	d.wg.Add(1)
	go d.writer()
	return d, nil
}

// scan builds the index from the directory: every stage subdirectory's
// *.rec files, ordered oldest-mtime-first so the LRU sweep evicts the
// stalest survivors of previous processes first. Filenames are trusted
// only as far as locating files — the key served to lookups is the one
// inside the verified record, so a renamed record can at worst miss.
func (d *Disk) scan() error {
	type found struct {
		key   DiskKey
		size  int64
		mtime int64
	}
	var all []found
	stages, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("cache: scanning disk tier: %w", err)
	}
	for _, sd := range stages {
		if !sd.IsDir() || sd.Name() == quarantineDir {
			continue
		}
		stage := Stage(sd.Name())
		files, err := os.ReadDir(filepath.Join(d.dir, sd.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasSuffix(name, tmpSuffix) {
				// A write the previous process never finished; the rename
				// never happened, so deleting it cannot lose a record.
				os.Remove(filepath.Join(d.dir, sd.Name(), name))
				continue
			}
			if !strings.HasSuffix(name, recSuffix) {
				continue
			}
			k, ok := keyFromName(stage, strings.TrimSuffix(name, recSuffix))
			if !ok {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			all = append(all, found{key: k, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for _, f := range all {
		d.seq++
		d.index[f.key] = &diskEntry{key: f.key, size: f.size, seq: d.seq}
		d.bytes += f.size
	}
	d.sweepLocked()
	return nil
}

// path returns the record file for k: <dir>/<stage>/<hex sum>.rec.
func (d *Disk) path(k DiskKey) string {
	return filepath.Join(d.dir, string(k.Stage), fmt.Sprintf("%x%s", k.Sum[:], recSuffix))
}

// keyFromName reverses path's basename encoding.
func keyFromName(stage Stage, hexSum string) (DiskKey, bool) {
	k := DiskKey{Stage: stage}
	if len(hexSum) != 2*len(k.Sum) {
		return k, false
	}
	raw, err := hex.DecodeString(hexSum)
	if err != nil {
		return k, false
	}
	copy(k.Sum[:], raw)
	return k, true
}

// get reads, verifies and decodes the record for k. ok is false on any
// miss — absent, unreadable, corrupt (which also quarantines the file)
// or undecodable — and the caller recomputes. A key that never took the
// disk digest (Hasher.Key instead of KeyDisk) is a silent miss: it has
// no record name to look up.
func (d *Disk) get(k Key) (any, bool) {
	if d == nil {
		return nil, false
	}
	codec, hasCodec := diskCodec(k.Stage)
	if !hasCodec {
		return nil, false
	}
	dk, keyed := k.DiskKey()
	if !keyed {
		return nil, false
	}
	d.mu.Lock()
	e := d.index[dk]
	if e != nil {
		d.seq++
		e.seq = d.seq
	}
	d.mu.Unlock()
	if e == nil {
		d.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(d.path(dk))
	if err != nil {
		d.dropEntry(dk)
		d.misses.Add(1)
		return nil, false
	}
	gotKey, payload, err := DecodeRecord(data)
	if err != nil || gotKey != dk {
		d.quarantine(dk)
		d.misses.Add(1)
		return nil, false
	}
	v, err := codec.decode(payload)
	if err != nil {
		d.quarantine(dk)
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return v, true
}

// put queues a write-behind record for k. Values without a registered
// stage codec, keys without a disk digest, duplicate keys and a full
// queue are all silent no-ops — the disk tier is an accelerator, never
// a dependency.
func (d *Disk) put(k Key, v any) {
	if d == nil {
		return
	}
	codec, ok := diskCodec(k.Stage)
	if !ok {
		return
	}
	dk, keyed := k.DiskKey()
	if !keyed {
		return
	}
	d.mu.Lock()
	_, resident := d.index[dk]
	d.mu.Unlock()
	if resident {
		return
	}
	payload, err := codec.encode(v)
	if err != nil {
		return
	}
	d.sendMu.RLock()
	defer d.sendMu.RUnlock()
	if d.closed {
		return
	}
	select {
	case d.wq <- writeReq{key: dk, payload: payload}:
	default:
		d.drops.Add(1)
	}
}

// writer is the single write-behind goroutine: frame, write temp,
// rename, account, sweep. One writer serializes the directory mutations
// so the sweep never races another write to the same file.
func (d *Disk) writer() {
	defer d.wg.Done()
	for req := range d.wq {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		d.writeRecord(req.key, req.payload)
	}
}

func (d *Disk) writeRecord(k DiskKey, payload []byte) {
	rec := EncodeRecord(k, payload)
	final := d.path(k)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return
	}
	// Temp file in the same directory so the rename is atomic on every
	// POSIX filesystem; a crash between write and rename leaves only a
	// .tmp file that the next Open sweeps away.
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, rec, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return
	}
	d.writes.Add(1)
	d.mu.Lock()
	if old := d.index[k]; old != nil {
		d.bytes -= old.size
	}
	d.seq++
	d.index[k] = &diskEntry{key: k, size: int64(len(rec)), seq: d.seq}
	d.bytes += int64(len(rec))
	d.sweepLocked()
	d.mu.Unlock()
}

// sweepLocked deletes least-recently-used records until the store fits
// its budget. Caller holds d.mu (or is Open's single-threaded scan).
func (d *Disk) sweepLocked() {
	limit, bounded := int64(0), false
	switch {
	case d.budget == BudgetUnlimited:
	case d.budget < 0:
		bounded = true
	default:
		limit, bounded = d.budget, true
	}
	if !bounded {
		return
	}
	for d.bytes > limit && len(d.index) > 0 {
		var victim *diskEntry
		for _, e := range d.index {
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		os.Remove(d.path(victim.key))
		delete(d.index, victim.key)
		d.bytes -= victim.size
		d.evictions.Add(1)
	}
}

// dropEntry removes k from the index (file already gone or unreadable).
func (d *Disk) dropEntry(k DiskKey) {
	d.mu.Lock()
	if e := d.index[k]; e != nil {
		delete(d.index, k)
		d.bytes -= e.size
	}
	d.mu.Unlock()
}

// quarantine moves k's record out of the content-addressed namespace
// into <dir>/quarantine/, preserving the bytes for inspection while
// guaranteeing the bad record is never served again.
func (d *Disk) quarantine(k DiskKey) {
	d.verifyFailures.Add(1)
	src := d.path(k)
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		dst := filepath.Join(qdir, fmt.Sprintf("%s-%x%s", k.Stage, k.Sum[:8], recSuffix))
		if os.Rename(src, dst) != nil {
			os.Remove(src)
		}
	} else {
		os.Remove(src)
	}
	d.dropEntry(k)
}

// Sync blocks until every write queued before the call has been written
// and accounted: the writer drains requests in order, so a flush
// barrier queued now completes only after everything ahead of it.
// Tests and warm-restart measurements use it; serving paths never need
// to. Nil-safe; a closed Disk is already flushed.
func (d *Disk) Sync() {
	if d == nil {
		return
	}
	flush := make(chan struct{})
	d.sendMu.RLock()
	if d.closed {
		d.sendMu.RUnlock()
		return
	}
	d.wq <- writeReq{flush: flush}
	d.sendMu.RUnlock()
	<-flush
}

// Close flushes the write-behind queue and stops the writer. Lookups
// against a closed Disk still read records; puts become no-ops.
// Nil-safe and idempotent.
func (d *Disk) Close() {
	if d == nil {
		return
	}
	d.sendMu.Lock()
	already := d.closed
	d.closed = true
	if !already {
		close(d.wq)
	}
	d.sendMu.Unlock()
	d.wg.Wait()
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

// Budget returns the tier's byte budget (same sentinels as SetBudget).
func (d *Disk) Budget() int64 {
	if d == nil {
		return BudgetUnlimited
	}
	return d.budget
}

// Stats returns a snapshot of the disk tier's counters.
func (d *Disk) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	d.mu.Lock()
	entries, bytes := int64(len(d.index)), d.bytes
	d.mu.Unlock()
	return DiskStats{
		Hits:           d.hits.Load(),
		Misses:         d.misses.Load(),
		Entries:        entries,
		Bytes:          bytes,
		Writes:         d.writes.Load(),
		Drops:          d.drops.Load(),
		VerifyFailures: d.verifyFailures.Load(),
		Evictions:      d.evictions.Load(),
	}
}
