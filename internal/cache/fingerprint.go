package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/xxh"
)

// Hasher accumulates a canonical byte encoding of a stage's inputs and
// produces the cache Key. Every value is written length- or tag-prefixed
// so distinct input sequences can never encode to the same byte stream
// (the injectivity the suite-wide fingerprint test checks end to end).
//
// The encoding is buffered and digested in one call at finalize time:
// fingerprints are a few hundred bytes, and feeding the digest varint by
// varint would spend more time in Write bookkeeping than in hashing —
// measurably so, since the cached experiment grid computes thousands of
// keys per run. Key digests with XXH64 alone (the in-memory memo); a
// key that may reach the persistent tier is finalized with KeyDisk,
// which also takes the SHA-256 the disk boundary requires — over the
// identical buffer, so on-disk record names are byte-for-byte what the
// all-SHA-256 scheme produced.
type Hasher struct {
	buf []byte
}

// hasherPool recycles encode buffers: a cached grid run computes
// thousands of keys, and per-key buffer allocation was a measurable GC
// load. A Hasher returns to the pool when Key finalizes it.
var hasherPool = sync.Pool{New: func() any { return &Hasher{buf: make([]byte, 0, 1024)} }}

// NewHasher starts a fingerprint for one stage. The stage is written
// first so the same structural content never collides across stages.
// Finalize with Key, after which the Hasher must not be touched again —
// Key recycles it.
func NewHasher(stage Stage) *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.buf = h.buf[:0]
	h.Str(string(stage))
	return h
}

// Int writes one signed integer in canonical varint form.
func (h *Hasher) Int(v int64) {
	h.buf = binary.AppendVarint(h.buf, v)
}

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(int64(len(s)))
	h.buf = append(h.buf, s...)
}

// Float writes a float64 by its IEEE-754 bit pattern, so distinct values
// (including signed zeros and NaN payloads) encode distinctly.
func (h *Hasher) Float(f float64) {
	h.Int(int64(math.Float64bits(f)))
}

// Bool writes a boolean as one canonical integer.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Int(1)
	} else {
		h.Int(0)
	}
}

// Ints writes a length-prefixed integer slice.
func (h *Hasher) Ints(xs []int) {
	h.Int(int64(len(xs)))
	for _, x := range xs {
		h.Int(int64(x))
	}
}

// Reg writes one symbolic register as (class, id).
func (h *Hasher) Reg(r ir.Reg) {
	h.Int(int64(r.Class))
	h.Int(int64(r.ID))
}

// Regs writes a length-prefixed register slice in the given order.
func (h *Hasher) Regs(rs []ir.Reg) {
	h.Int(int64(len(rs)))
	for _, r := range rs {
		h.Reg(r)
	}
}

// Block writes the canonical encoding of a block: depth, then every
// operation in program order with opcode, class, defs, uses, memory
// reference and immediate. Comments and op IDs are excluded — they are
// presentation, not semantics — so a reparsed or renumbered but
// structurally identical block fingerprints identically.
func (h *Hasher) Block(b *ir.Block) {
	h.Int(int64(b.Depth))
	h.Int(int64(len(b.Ops)))
	for _, op := range b.Ops {
		h.Int(int64(op.Code))
		h.Int(int64(op.Class))
		h.Regs(op.Defs)
		h.Regs(op.Uses)
		if op.Mem != nil {
			h.Bool(true)
			h.Str(op.Mem.Base)
			h.Int(int64(op.Mem.Coeff))
			h.Int(int64(op.Mem.Offset))
		} else {
			h.Bool(false)
		}
		h.Int(op.Imm)
	}
}

// Weights writes every RCG weighting coefficient.
func (h *Hasher) Weights(w core.Weights) {
	h.Float(w.Affinity)
	h.Float(w.AntiAffinity)
	h.Float(w.CriticalBonus)
	h.Float(w.DepthBase)
	h.Int(int64(w.MaxDepth))
	h.Float(w.Balance)
	h.Float(w.InvariantScale)
	h.Float(w.RecurrenceBonus)
}

// PreColoring writes a pre-coloring map in sorted register order.
func (h *Hasher) PreColoring(pre map[ir.Reg]int) {
	regs := make([]ir.Reg, 0, len(pre))
	for r := range pre {
		regs = append(regs, r)
	}
	ir.SortRegs(regs)
	h.Int(int64(len(regs)))
	for _, r := range regs {
		h.Reg(r)
		h.Int(int64(pre[r]))
	}
}

// Latencies writes the full latency table.
func (h *Hasher) Latencies(lat machine.Latencies) {
	h.Ints([]int{
		lat.Load, lat.Store,
		lat.IntMul, lat.IntDiv, lat.IntOther,
		lat.FloatMul, lat.FloatDiv, lat.FloatOther,
		lat.CopyInt, lat.CopyFloat,
	})
}

// SchedConfig writes the slice of a machine configuration the modulo
// scheduler consults: width, clustering, typed units and the latency
// table. The copy model, copy ports and busses constrain only ir.Copy
// operations, so they are written only when the block being scheduled
// contains copies (copySensitive) — which is what lets the six evaluated
// machines share one ideal schedule per loop: their monolithic ideal
// machines differ only in name, bank size and copy model, and none of
// those can influence the schedule of a copy-free body. Name and
// RegsPerBank are always excluded: the scheduler never reads them.
func (h *Hasher) SchedConfig(cfg *machine.Config, copySensitive bool) {
	h.Int(int64(cfg.Width))
	h.Int(int64(cfg.Clusters))
	h.Int(int64(len(cfg.Units)))
	for _, u := range cfg.Units {
		h.Int(int64(u))
	}
	h.Latencies(cfg.Lat)
	h.Bool(copySensitive)
	if copySensitive {
		h.Int(int64(cfg.Model))
		h.Int(int64(cfg.CopyPortsPerCluster))
		h.Int(int64(cfg.Busses))
	}
}

// Key finalizes the fingerprint as a memory-only key (XXH64 digest) and
// releases the Hasher back to the internal pool; the Hasher must not be
// used afterwards. Stages that may reach the disk tier finalize with
// KeyDisk instead.
func (h *Hasher) Key(stage Stage) Key {
	k := Key{Stage: stage, Sum: xxh.Sum64(h.buf)}
	hasherPool.Put(h)
	return k
}

// KeyDisk finalizes the fingerprint as a disk-capable key: the fast
// XXH64 sum for the memory tier plus the SHA-256 of the same canonical
// encoding for the persistent tier's record names — exactly the digest
// the pre-split scheme used, so existing on-disk stores stay warm.
func (h *Hasher) KeyDisk(stage Stage) Key {
	k := Key{
		Stage:     stage,
		Sum:       xxh.Sum64(h.buf),
		DiskSum:   sha256.Sum256(h.buf),
		DiskKeyed: true,
	}
	hasherPool.Put(h)
	return k
}

// KeyTiered finalizes with KeyDisk when disk is set and Key otherwise —
// the call-site form for stages whose keys reach the persistent tier
// only when one is attached.
func (h *Hasher) KeyTiered(stage Stage, disk bool) Key {
	if disk {
		return h.KeyDisk(stage)
	}
	return h.Key(stage)
}

// BlockFP is the reusable fingerprint of one block: its canonical
// encoding (exactly the bytes Hasher.Block would write) plus its
// copy-sensitivity, computed once and spliced into every per-stage key
// derived for that block. One compilation fingerprints its body four or
// five times across stages; the memo makes all but the first free.
type BlockFP struct {
	enc       []byte
	hasCopies bool
}

// blockFPPool recycles fingerprint encode buffers for the compile-local
// case: one compilation fingerprints its body once and derives every stage
// key from the memo, after which the buffer is reusable. Fingerprints that
// outlive the compile — the rewritten-body fingerprint stored inside a
// copy-insertion cache entry — are simply never released and keep their
// buffer for the life of the entry.
var blockFPPool = sync.Pool{New: func() any { return &BlockFP{enc: make([]byte, 0, 512)} }}

// FingerprintBlock encodes b once for reuse across stage keys. The result
// may be retained indefinitely; callers that know theirs is compile-local
// can hand the buffer back with Release.
func FingerprintBlock(b *ir.Block) *BlockFP {
	f := blockFPPool.Get().(*BlockFP)
	h := Hasher{buf: f.enc[:0]}
	h.Block(b)
	f.enc, f.hasCopies = h.buf, HasCopies(b)
	return f
}

// Release returns the fingerprint's encode buffer to the pool. Only call
// it when nothing retains the fingerprint object — stage keys copy its
// bytes into their digests, so deriving keys does not retain it, but a
// fingerprint stored in a cache entry must never be released. Nil is a
// no-op.
func (f *BlockFP) Release() {
	if f != nil {
		blockFPPool.Put(f)
	}
}

// HasCopies reports the memoized copy-sensitivity of the block.
func (f *BlockFP) HasCopies() bool { return f.hasCopies }

// Size returns the bytes held by the memoized encoding, for cache cost
// accounting of entries that retain a fingerprint. Nil-safe.
func (f *BlockFP) Size() int {
	if f == nil {
		return 0
	}
	return len(f.enc)
}

// BlockFP splices a memoized block encoding into the stream; the
// resulting key is identical to calling Block on the original block.
func (h *Hasher) BlockFP(f *BlockFP) { h.buf = append(h.buf, f.enc...) }

// DDGKey is the memoized-block form of the package-level DDGKey.
func (f *BlockFP) DDGKey(lat machine.Latencies, carried bool, memFlowLatency int) Key {
	h := NewHasher(StageDDG)
	h.BlockFP(f)
	h.Bool(carried)
	h.Int(int64(memFlowLatency))
	h.Latencies(lat)
	return h.Key(StageDDG)
}

// ModuloKey is the memoized-block form of the package-level ModuloKey.
// disk requests a disk-capable key (SHA-256 alongside the memo sum);
// pass it as cache.Disk() != nil so the expensive digest is computed
// only when a persistent tier can actually consume it.
func (f *BlockFP) ModuloKey(cfg *machine.Config, carried bool, memFlowLatency int,
	clusterOf []int, budgetRatio int, lifetime bool, maxII int, disk bool) Key {
	h := NewHasher(StageModulo)
	h.BlockFP(f)
	h.Bool(carried)
	h.Int(int64(memFlowLatency))
	h.SchedConfig(cfg, f.hasCopies)
	if clusterOf != nil {
		h.Bool(true)
		h.Ints(clusterOf)
	} else {
		h.Bool(false)
	}
	h.Int(int64(budgetRatio))
	h.Bool(lifetime)
	h.Int(int64(maxII))
	return h.KeyTiered(StageModulo, disk)
}

// HasCopies reports whether the block contains inter-cluster copy
// operations — the condition under which the copy model becomes relevant
// to scheduling.
func HasCopies(b *ir.Block) bool {
	for _, op := range b.Ops {
		if op.Code == ir.Copy {
			return true
		}
	}
	return false
}

// DDGKey fingerprints a dependence-graph construction: the block, the
// graph options that shape edges (carried dependences, the memory
// flow-latency override) and the latency table — the only part of the
// machine ddg.Build reads. Width, clustering and copy model do not
// affect graph structure, so graphs are shared across every machine with
// the paper's latencies.
func DDGKey(b *ir.Block, lat machine.Latencies, carried bool, memFlowLatency int) Key {
	f := FingerprintBlock(b)
	defer f.Release()
	return f.DDGKey(lat, carried, memFlowLatency)
}

// ModuloKey fingerprints a modulo-scheduling run: the block and the
// graph-shaping options (which determine the dependence graph the
// scheduler consumes), the scheduler-relevant machine slice, and the
// scheduling options (cluster pinning, budget, lifetime mode, II cap).
// disk additionally takes the SHA-256 the persistent tier's record
// names require (see Hasher.KeyDisk).
func ModuloKey(b *ir.Block, cfg *machine.Config, carried bool, memFlowLatency int,
	clusterOf []int, budgetRatio int, lifetime bool, maxII int, disk bool) Key {
	f := FingerprintBlock(b)
	defer f.Release()
	return f.ModuloKey(cfg, carried, memFlowLatency, clusterOf, budgetRatio, lifetime, maxII, disk)
}
