package modulo

import (
	"slices"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/scratch"
)

// runScratch is one scheduling run's reusable working set: the per-op
// arrays, the typed priority heap, and the flattened occupancy cells.
// It lives in the compile arena (slot scratch.Modulo) or a package pool
// and is dirty between runs; tryII re-initializes everything it reads.
// Successful schedules copy their Time/Cluster out into fresh slices, so
// results never alias this scratch.
type runScratch struct {
	height, time, clus, lastTime []int
	inQueue                      []bool
	heap                         []int
	// cells backs the occupancy tables of one attempt, flattened:
	// functional units at [row*nclus+cl], copy ports at
	// [ii*nclus + row*nclus+cl], busses at [2*ii*nclus + row].
	cells [][]int
	// fu/ports tally per-cluster demand in resMII.
	fu, ports []int
	order     []int // compactLifetimes visit order
}

var runPool = newPool(func() *runScratch { return new(runScratch) })

// attempt is the mutable scheduling state for one candidate II.
type attempt struct {
	st     *state
	sc     *runScratch
	ii     int
	nclus  int
	height []int
	time   []int // -1 when unscheduled
	clus   []int
	// lastTime forces progress on repeated placements of the same op
	// (Rau's "schedule no earlier than last time + 1" rule).
	lastTime []int
	// cells aliases sc.cells, sized for this II (see runScratch layout).
	cells   [][]int
	inQueue []bool
}

func (a *attempt) fuCell(row, cl int) int   { return row*a.nclus + cl }
func (a *attempt) copyCell(row, cl int) int { return a.ii*a.nclus + row*a.nclus + cl }
func (a *attempt) busCell(row int) int      { return 2*a.ii*a.nclus + row }

// ctxPollInterval is how many placements pass between context polls
// inside an II attempt: frequent enough that even one attempt on a large
// unrolled loop notices an expired deadline within microseconds, rare
// enough that the check never shows up in profiles.
const ctxPollInterval = 64

// tryII attempts to find a modulo schedule at the given II within the
// placement budget. It returns (schedule, true, nil) on success and a
// non-nil error only when the run's context is cancelled mid-attempt.
func (st *state) tryII(ii, budget int) (*Schedule, bool, error) {
	sc := st.sc
	nclus := st.cfg.Clusters
	ncells := 2*ii*nclus + ii
	if cap(sc.cells) < ncells {
		cells := make([][]int, ncells, 2*ncells)
		copy(cells, sc.cells[:cap(sc.cells)])
		sc.cells = cells
	}
	sc.cells = sc.cells[:ncells]
	for i := range sc.cells {
		sc.cells[i] = sc.cells[i][:0]
	}
	sc.time = scratch.Ints(sc.time, st.n)
	sc.clus = scratch.Ints(sc.clus, st.n)
	sc.lastTime = scratch.Ints(sc.lastTime, st.n)
	sc.inQueue = scratch.Bools(sc.inQueue, st.n)
	a := &attempt{
		st:       st,
		sc:       sc,
		ii:       ii,
		nclus:    nclus,
		height:   st.heights(ii),
		time:     sc.time,
		clus:     sc.clus,
		lastTime: sc.lastTime,
		cells:    sc.cells,
		inQueue:  sc.inQueue,
	}
	for i := 0; i < st.n; i++ {
		a.time[i] = -1
		a.clus[i] = 0
		a.lastTime[i] = -1
		a.inQueue[i] = false
	}
	sc.heap = sc.heap[:0]
	for i := 0; i < st.n; i++ {
		a.enqueue(i)
	}

	for len(sc.heap) > 0 && budget > 0 {
		if st.ctx != nil && budget%ctxPollInterval == 0 {
			if err := st.ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		idx := a.heapPop()
		a.inQueue[idx] = false
		budget--
		estart := a.earliestStart(idx)
		slot, cluster, found := a.findSlot(idx, estart)
		forced := !found
		if forced {
			slot = estart
			if a.lastTime[idx] >= 0 && slot <= a.lastTime[idx] {
				slot = a.lastTime[idx] + 1
			}
			cluster = a.forcedCluster(idx)
		}
		a.place(idx, slot, cluster, forced)
		a.evictViolatedSuccessors(idx)
	}
	if len(sc.heap) > 0 {
		return nil, false, nil // budget exhausted
	}
	if st.opt.Lifetime {
		a.compactLifetimes()
	}
	// Copy the schedule out of scratch: results outlive the arena.
	s := &Schedule{II: ii, Time: make([]int, st.n), Cluster: make([]int, st.n)}
	copy(s.Time, a.time)
	copy(s.Cluster, a.clus)
	for i := range s.Time {
		if end := s.Time[i] + st.cfg.Latency(st.g.Ops[i]); end > s.Length {
			s.Length = end
		}
	}
	return s, true, nil
}

// heapLess orders operation indices by decreasing height, ties to the
// lower index, so scheduling is deterministic. The order is total (index
// tiebreak), so the pop sequence matches any correct heap implementation.
func (a *attempt) heapLess(x, y int) bool {
	if a.height[x] != a.height[y] {
		return a.height[x] > a.height[y]
	}
	return x < y
}

func (a *attempt) heapPush(x int) {
	h := append(a.sc.heap, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !a.heapLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	a.sc.heap = h
}

func (a *attempt) heapPop() int {
	h := a.sc.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && a.heapLess(h[r], h[l]) {
			c = r
		}
		if !a.heapLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	a.sc.heap = h
	return top
}

func (a *attempt) enqueue(i int) {
	if !a.inQueue[i] {
		a.heapPush(i)
		a.inQueue[i] = true
	}
}

// earliestStart returns the earliest cycle at which idx may issue given its
// currently scheduled predecessors: max(0, time(p) + lat - II*dist).
func (a *attempt) earliestStart(idx int) int {
	est := 0
	for _, e := range a.st.g.In[idx] {
		if a.time[e.From] < 0 || e.From == idx {
			continue
		}
		if v := a.time[e.From] + e.Latency - a.ii*e.Distance; v > est {
			est = v
		}
	}
	return est
}

// findSlot scans the acceptance window [estart, estart+II) for a cycle with
// a free resource for idx. It returns the cycle, the cluster used, and
// whether a slot was found.
//
// In lifetime-sensitive mode, when idx has scheduled consumers the window
// is scanned downward from the latest cycle those consumers tolerate, so
// the value is produced just in time and its register lifetime stays
// short; otherwise (and always in Rau mode) the scan runs upward from the
// earliest start.
func (a *attempt) findSlot(idx, estart int) (int, int, bool) {
	want := a.st.wantCluster(idx)
	if a.st.opt.Lifetime {
		if lstart, ok := a.latestStart(idx); ok {
			hi := lstart
			if cap := estart + a.ii - 1; hi > cap {
				hi = cap
			}
			for t := hi; t >= estart; t-- {
				if cl, ok := a.rowHasRoom(idx, t%a.ii, want); ok {
					return t, cl, true
				}
			}
			return 0, 0, false
		}
	}
	for t := estart; t < estart+a.ii; t++ {
		row := t % a.ii
		if cl, ok := a.rowHasRoom(idx, row, want); ok {
			return t, cl, true
		}
	}
	return 0, 0, false
}

// latestStart returns the latest cycle at which idx can issue without
// violating a dependence into an already-scheduled successor; ok is false
// when no successor is scheduled.
func (a *attempt) latestStart(idx int) (int, bool) {
	lstart, any := int(^uint(0)>>1), false
	for _, e := range a.st.g.Out[idx] {
		if e.To == idx || a.time[e.To] < 0 {
			continue
		}
		if v := a.time[e.To] - e.Latency + a.ii*e.Distance; v < lstart {
			lstart = v
			any = true
		}
	}
	return lstart, any
}

// rowHasRoom checks resource availability for idx at a kernel row. For
// AnyCluster requests the least-loaded cluster with room is returned.
func (a *attempt) rowHasRoom(idx, row, want int) (int, bool) {
	cfg := a.st.cfg
	if a.st.usesCopyPort(idx) {
		if cfg.Busses > 0 && len(a.cells[a.busCell(row)]) >= cfg.Busses {
			return 0, false
		}
		cl := want
		if cl == AnyCluster {
			cl = 0
		}
		if cfg.CopyPortsPerCluster > 0 && len(a.cells[a.copyCell(row, cl)]) >= cfg.CopyPortsPerCluster {
			return 0, false
		}
		return cl, true
	}
	if want != AnyCluster {
		if a.fuFits(row, want, idx) {
			return want, true
		}
		return 0, false
	}
	best, bestUsed := -1, cfg.FUsPerCluster()
	for cl := 0; cl < cfg.Clusters; cl++ {
		if u := len(a.cells[a.fuCell(row, cl)]); u < bestUsed && a.fuFits(row, cl, idx) {
			best, bestUsed = cl, u
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// fuFits reports whether op idx can join the functional-unit occupants of
// (row, cluster): a simple count on homogeneous machines, a per-kind
// demand check against the cluster's typed units on heterogeneous ones.
func (a *attempt) fuFits(row, cl, idx int) bool {
	cfg := a.st.cfg
	occupants := a.cells[a.fuCell(row, cl)]
	if !cfg.Heterogeneous() {
		return len(occupants) < cfg.FUsPerCluster()
	}
	if len(occupants) >= cfg.FUsPerCluster() {
		return false
	}
	var demand [machine.NumKinds]int
	demand[machine.OpKind(a.st.g.Ops[idx])]++
	for _, o := range occupants {
		demand[machine.OpKind(a.st.g.Ops[o])]++
	}
	return cfg.KindFits(demand)
}

// forcedCluster picks the cluster for a forced placement.
func (a *attempt) forcedCluster(idx int) int {
	want := a.st.wantCluster(idx)
	if want != AnyCluster {
		return want
	}
	return 0
}

// place schedules idx at the given cycle and cluster. When forced, existing
// occupants of the target resources are evicted, lowest priority first,
// until the resource fits.
func (a *attempt) place(idx, t, cluster int, forced bool) {
	cfg := a.st.cfg
	row := t % a.ii
	if a.st.usesCopyPort(idx) {
		bus, cp := a.busCell(row), a.copyCell(row, cluster)
		if forced {
			if cfg.Busses > 0 {
				for len(a.cells[bus]) >= cfg.Busses {
					a.unschedule(a.lowestPriority(a.cells[bus]))
				}
			}
			if cfg.CopyPortsPerCluster > 0 {
				for len(a.cells[cp]) >= cfg.CopyPortsPerCluster {
					a.unschedule(a.lowestPriority(a.cells[cp]))
				}
			}
		}
		a.cells[cp] = append(a.cells[cp], idx)
		a.cells[bus] = append(a.cells[bus], idx)
	} else {
		fu := a.fuCell(row, cluster)
		if forced {
			for !a.fuFits(row, cluster, idx) && len(a.cells[fu]) > 0 {
				a.unschedule(a.lowestPriority(a.cells[fu]))
			}
		}
		a.cells[fu] = append(a.cells[fu], idx)
	}
	a.time[idx] = t
	a.clus[idx] = cluster
	a.lastTime[idx] = t
	a.st.placements++
}

// lowestPriority returns the occupant with the smallest height (ties to the
// higher index, so earlier ops survive).
func (a *attempt) lowestPriority(occupants []int) int {
	best := occupants[0]
	for _, o := range occupants[1:] {
		if a.height[o] < a.height[best] || (a.height[o] == a.height[best] && o > best) {
			best = o
		}
	}
	return best
}

// unschedule removes idx from the schedule and the occupancy tables and
// requeues it.
func (a *attempt) unschedule(idx int) {
	t := a.time[idx]
	if t < 0 {
		return
	}
	row := t % a.ii
	cl := a.clus[idx]
	if a.st.usesCopyPort(idx) {
		cp, bus := a.copyCell(row, cl), a.busCell(row)
		a.cells[cp] = removeOne(a.cells[cp], idx)
		a.cells[bus] = removeOne(a.cells[bus], idx)
	} else {
		fu := a.fuCell(row, cl)
		a.cells[fu] = removeOne(a.cells[fu], idx)
	}
	a.time[idx] = -1
	a.enqueue(idx)
	a.st.evictions++
}

func removeOne(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// evictViolatedSuccessors unschedules every scheduled successor whose
// dependence on idx the new placement violates. Predecessor constraints
// hold by construction because placements never precede earliestStart.
func (a *attempt) evictViolatedSuccessors(idx int) {
	for _, e := range a.st.g.Out[idx] {
		if e.To == idx || a.time[e.To] < 0 {
			continue
		}
		if a.time[e.To] < a.time[idx]+e.Latency-a.ii*e.Distance {
			a.unschedule(e.To)
		}
	}
}

// compactLifetimes is the lifetime-sensitive mode's post-pass: with the
// schedule complete, each value-producing operation is pushed as late as
// its consumers and the resource table allow, whenever that strictly
// shrinks the total register lifetime. Moving a producer later shortens
// its results' lifetimes but can lengthen its operands' (when this op is
// their last consumer); the move is taken only when the net change is
// negative, so the pass monotonically improves pressure and terminates.
func (a *attempt) compactLifetimes() {
	g := a.st.g
	n := a.st.n
	for pass := 0; pass < 2; pass++ {
		a.sc.order = scratch.Ints(a.sc.order, n)
		order := a.sc.order
		for i := range order {
			order[i] = i
		}
		slices.SortFunc(order, func(x, y int) int {
			if a.time[x] != a.time[y] {
				return a.time[y] - a.time[x] // later cycles first
			}
			return x - y
		})
		for _, idx := range order {
			if len(g.Ops[idx].Defs) == 0 {
				continue // stores produce nothing; moving them cannot help
			}
			lstart, ok := a.latestStart(idx)
			if !ok || lstart <= a.time[idx] {
				continue
			}
			for t := lstart; t > a.time[idx]; t-- {
				if a.lifetimeDelta(idx, t) >= 0 {
					continue
				}
				cl := a.clus[idx]
				want := a.st.wantCluster(idx)
				a.unscheduleQuiet(idx)
				if c, free := a.rowHasRoom(idx, t%a.ii, want); free {
					a.place(idx, t, c, false)
					break
				}
				a.place(idx, a.lastTime[idx], cl, false) // put it back
			}
		}
	}
}

// unscheduleQuiet removes idx from the occupancy tables without requeueing
// it (compaction bookkeeping, not a scheduling retry).
func (a *attempt) unscheduleQuiet(idx int) {
	t := a.time[idx]
	row := t % a.ii
	cl := a.clus[idx]
	if a.st.usesCopyPort(idx) {
		cp, bus := a.copyCell(row, cl), a.busCell(row)
		a.cells[cp] = removeOne(a.cells[cp], idx)
		a.cells[bus] = removeOne(a.cells[bus], idx)
	} else {
		fu := a.fuCell(row, cl)
		a.cells[fu] = removeOne(a.cells[fu], idx)
	}
	a.lastTime[idx] = t
	a.time[idx] = -1
}

// lifetimeDelta returns the change in total register lifetime if idx moved
// from its current cycle to t (positive means worse).
func (a *attempt) lifetimeDelta(idx, t int) int {
	g := a.st.g
	shift := t - a.time[idx]
	delta := 0
	// Results: the lifetime of each consumed def starts later.
	for _, e := range g.Out[idx] {
		if e.Kind == ddg.True && e.From == idx {
			delta -= shift
			break // one def; its start moves once regardless of fanout
		}
	}
	// Operands: if idx holds (or comes to hold) the maximal use term of a
	// register it reads, that register's lifetime end grows.
	for _, in := range g.In[idx] {
		if in.Kind != ddg.True || in.From == idx {
			continue
		}
		myTerm := a.time[idx] + in.Distance*a.ii
		maxTerm := myTerm
		for _, e := range g.Out[in.From] {
			if e.Kind != ddg.True || e.Reg != in.Reg || e.To == idx {
				continue
			}
			if a.time[e.To] < 0 {
				continue
			}
			if v := a.time[e.To] + e.Distance*a.ii; v > maxTerm {
				maxTerm = v
			}
		}
		if newTerm := myTerm + shift; newTerm > maxTerm {
			delta += newTerm - max(maxTerm, myTerm)
		}
	}
	return delta
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
