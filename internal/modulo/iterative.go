package modulo

import (
	"container/heap"
	"sort"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// attempt is the mutable scheduling state for one candidate II.
type attempt struct {
	st     *state
	ii     int
	height []int
	time   []int // -1 when unscheduled
	clus   []int
	// lastTime forces progress on repeated placements of the same op
	// (Rau's "schedule no earlier than last time + 1" rule).
	lastTime []int
	// Occupancy per kernel row: fuRows[row][cluster] and
	// copyRows[row][cluster] list the op indices holding a slot there;
	// busRows[row] lists copy ops holding a bus.
	fuRows   [][][]int
	copyRows [][][]int
	busRows  [][]int
	pq       *prioHeap
	inQueue  []bool
}

// ctxPollInterval is how many placements pass between context polls
// inside an II attempt: frequent enough that even one attempt on a large
// unrolled loop notices an expired deadline within microseconds, rare
// enough that the check never shows up in profiles.
const ctxPollInterval = 64

// tryII attempts to find a modulo schedule at the given II within the
// placement budget. It returns (schedule, true, nil) on success and a
// non-nil error only when the run's context is cancelled mid-attempt.
func (st *state) tryII(ii, budget int) (*Schedule, bool, error) {
	a := &attempt{
		st:       st,
		ii:       ii,
		height:   st.heights(ii),
		time:     make([]int, st.n),
		clus:     make([]int, st.n),
		lastTime: make([]int, st.n),
		fuRows:   make([][][]int, ii),
		copyRows: make([][][]int, ii),
		busRows:  make([][]int, ii),
		inQueue:  make([]bool, st.n),
	}
	for r := 0; r < ii; r++ {
		a.fuRows[r] = make([][]int, st.cfg.Clusters)
		a.copyRows[r] = make([][]int, st.cfg.Clusters)
	}
	for i := 0; i < st.n; i++ {
		a.time[i] = -1
		a.lastTime[i] = -1
	}
	a.pq = &prioHeap{height: a.height}
	for i := 0; i < st.n; i++ {
		a.enqueue(i)
	}

	for a.pq.Len() > 0 && budget > 0 {
		if st.ctx != nil && budget%ctxPollInterval == 0 {
			if err := st.ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		idx := heap.Pop(a.pq).(int)
		a.inQueue[idx] = false
		budget--
		estart := a.earliestStart(idx)
		slot, cluster, found := a.findSlot(idx, estart)
		forced := !found
		if forced {
			slot = estart
			if a.lastTime[idx] >= 0 && slot <= a.lastTime[idx] {
				slot = a.lastTime[idx] + 1
			}
			cluster = a.forcedCluster(idx)
		}
		a.place(idx, slot, cluster, forced)
		a.evictViolatedSuccessors(idx)
	}
	if a.pq.Len() > 0 {
		return nil, false, nil // budget exhausted
	}
	if st.opt.Lifetime {
		a.compactLifetimes()
	}
	s := &Schedule{II: ii, Time: a.time, Cluster: a.clus}
	for i := range a.time {
		if end := a.time[i] + st.cfg.Latency(st.g.Ops[i]); end > s.Length {
			s.Length = end
		}
	}
	return s, true, nil
}

func (a *attempt) enqueue(i int) {
	if !a.inQueue[i] {
		heap.Push(a.pq, i)
		a.inQueue[i] = true
	}
}

// earliestStart returns the earliest cycle at which idx may issue given its
// currently scheduled predecessors: max(0, time(p) + lat - II*dist).
func (a *attempt) earliestStart(idx int) int {
	est := 0
	for _, e := range a.st.g.In[idx] {
		if a.time[e.From] < 0 || e.From == idx {
			continue
		}
		if v := a.time[e.From] + e.Latency - a.ii*e.Distance; v > est {
			est = v
		}
	}
	return est
}

// findSlot scans the acceptance window [estart, estart+II) for a cycle with
// a free resource for idx. It returns the cycle, the cluster used, and
// whether a slot was found.
//
// In lifetime-sensitive mode, when idx has scheduled consumers the window
// is scanned downward from the latest cycle those consumers tolerate, so
// the value is produced just in time and its register lifetime stays
// short; otherwise (and always in Rau mode) the scan runs upward from the
// earliest start.
func (a *attempt) findSlot(idx, estart int) (int, int, bool) {
	want := a.st.wantCluster(idx)
	if a.st.opt.Lifetime {
		if lstart, ok := a.latestStart(idx); ok {
			hi := lstart
			if cap := estart + a.ii - 1; hi > cap {
				hi = cap
			}
			for t := hi; t >= estart; t-- {
				if cl, ok := a.rowHasRoom(idx, t%a.ii, want); ok {
					return t, cl, true
				}
			}
			return 0, 0, false
		}
	}
	for t := estart; t < estart+a.ii; t++ {
		row := t % a.ii
		if cl, ok := a.rowHasRoom(idx, row, want); ok {
			return t, cl, true
		}
	}
	return 0, 0, false
}

// latestStart returns the latest cycle at which idx can issue without
// violating a dependence into an already-scheduled successor; ok is false
// when no successor is scheduled.
func (a *attempt) latestStart(idx int) (int, bool) {
	lstart, any := int(^uint(0)>>1), false
	for _, e := range a.st.g.Out[idx] {
		if e.To == idx || a.time[e.To] < 0 {
			continue
		}
		if v := a.time[e.To] - e.Latency + a.ii*e.Distance; v < lstart {
			lstart = v
			any = true
		}
	}
	return lstart, any
}

// rowHasRoom checks resource availability for idx at a kernel row. For
// AnyCluster requests the least-loaded cluster with room is returned.
func (a *attempt) rowHasRoom(idx, row, want int) (int, bool) {
	cfg := a.st.cfg
	if a.st.usesCopyPort(idx) {
		if cfg.Busses > 0 && len(a.busRows[row]) >= cfg.Busses {
			return 0, false
		}
		cl := want
		if cl == AnyCluster {
			cl = 0
		}
		if cfg.CopyPortsPerCluster > 0 && len(a.copyRows[row][cl]) >= cfg.CopyPortsPerCluster {
			return 0, false
		}
		return cl, true
	}
	if want != AnyCluster {
		if a.fuFits(row, want, idx) {
			return want, true
		}
		return 0, false
	}
	best, bestUsed := -1, cfg.FUsPerCluster()
	for cl := 0; cl < cfg.Clusters; cl++ {
		if u := len(a.fuRows[row][cl]); u < bestUsed && a.fuFits(row, cl, idx) {
			best, bestUsed = cl, u
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// fuFits reports whether op idx can join the functional-unit occupants of
// (row, cluster): a simple count on homogeneous machines, a per-kind
// demand check against the cluster's typed units on heterogeneous ones.
func (a *attempt) fuFits(row, cl, idx int) bool {
	cfg := a.st.cfg
	occupants := a.fuRows[row][cl]
	if !cfg.Heterogeneous() {
		return len(occupants) < cfg.FUsPerCluster()
	}
	if len(occupants) >= cfg.FUsPerCluster() {
		return false
	}
	var demand [machine.NumKinds]int
	demand[machine.OpKind(a.st.g.Ops[idx])]++
	for _, o := range occupants {
		demand[machine.OpKind(a.st.g.Ops[o])]++
	}
	return cfg.KindFits(demand)
}

// forcedCluster picks the cluster for a forced placement.
func (a *attempt) forcedCluster(idx int) int {
	want := a.st.wantCluster(idx)
	if want != AnyCluster {
		return want
	}
	return 0
}

// place schedules idx at the given cycle and cluster. When forced, existing
// occupants of the target resources are evicted, lowest priority first,
// until the resource fits.
func (a *attempt) place(idx, t, cluster int, forced bool) {
	cfg := a.st.cfg
	row := t % a.ii
	if a.st.usesCopyPort(idx) {
		if forced {
			if cfg.Busses > 0 {
				for len(a.busRows[row]) >= cfg.Busses {
					a.unschedule(a.lowestPriority(a.busRows[row]))
				}
			}
			if cfg.CopyPortsPerCluster > 0 {
				for len(a.copyRows[row][cluster]) >= cfg.CopyPortsPerCluster {
					a.unschedule(a.lowestPriority(a.copyRows[row][cluster]))
				}
			}
		}
		a.copyRows[row][cluster] = append(a.copyRows[row][cluster], idx)
		a.busRows[row] = append(a.busRows[row], idx)
	} else {
		if forced {
			for !a.fuFits(row, cluster, idx) && len(a.fuRows[row][cluster]) > 0 {
				a.unschedule(a.lowestPriority(a.fuRows[row][cluster]))
			}
		}
		a.fuRows[row][cluster] = append(a.fuRows[row][cluster], idx)
	}
	a.time[idx] = t
	a.clus[idx] = cluster
	a.lastTime[idx] = t
	a.st.placements++
}

// lowestPriority returns the occupant with the smallest height (ties to the
// higher index, so earlier ops survive).
func (a *attempt) lowestPriority(occupants []int) int {
	best := occupants[0]
	for _, o := range occupants[1:] {
		if a.height[o] < a.height[best] || (a.height[o] == a.height[best] && o > best) {
			best = o
		}
	}
	return best
}

// unschedule removes idx from the schedule and the occupancy tables and
// requeues it.
func (a *attempt) unschedule(idx int) {
	t := a.time[idx]
	if t < 0 {
		return
	}
	row := t % a.ii
	cl := a.clus[idx]
	if a.st.usesCopyPort(idx) {
		a.copyRows[row][cl] = removeOne(a.copyRows[row][cl], idx)
		a.busRows[row] = removeOne(a.busRows[row], idx)
	} else {
		a.fuRows[row][cl] = removeOne(a.fuRows[row][cl], idx)
	}
	a.time[idx] = -1
	a.enqueue(idx)
	a.st.evictions++
}

func removeOne(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// evictViolatedSuccessors unschedules every scheduled successor whose
// dependence on idx the new placement violates. Predecessor constraints
// hold by construction because placements never precede earliestStart.
func (a *attempt) evictViolatedSuccessors(idx int) {
	for _, e := range a.st.g.Out[idx] {
		if e.To == idx || a.time[e.To] < 0 {
			continue
		}
		if a.time[e.To] < a.time[idx]+e.Latency-a.ii*e.Distance {
			a.unschedule(e.To)
		}
	}
}

// compactLifetimes is the lifetime-sensitive mode's post-pass: with the
// schedule complete, each value-producing operation is pushed as late as
// its consumers and the resource table allow, whenever that strictly
// shrinks the total register lifetime. Moving a producer later shortens
// its results' lifetimes but can lengthen its operands' (when this op is
// their last consumer); the move is taken only when the net change is
// negative, so the pass monotonically improves pressure and terminates.
func (a *attempt) compactLifetimes() {
	g := a.st.g
	n := a.st.n
	for pass := 0; pass < 2; pass++ {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			if a.time[order[x]] != a.time[order[y]] {
				return a.time[order[x]] > a.time[order[y]]
			}
			return order[x] < order[y]
		})
		for _, idx := range order {
			if len(g.Ops[idx].Defs) == 0 {
				continue // stores produce nothing; moving them cannot help
			}
			lstart, ok := a.latestStart(idx)
			if !ok || lstart <= a.time[idx] {
				continue
			}
			for t := lstart; t > a.time[idx]; t-- {
				if a.lifetimeDelta(idx, t) >= 0 {
					continue
				}
				cl := a.clus[idx]
				want := a.st.wantCluster(idx)
				a.unscheduleQuiet(idx)
				if c, free := a.rowHasRoom(idx, t%a.ii, want); free {
					a.place(idx, t, c, false)
					break
				}
				a.place(idx, a.lastTime[idx], cl, false) // put it back
			}
		}
	}
}

// unscheduleQuiet removes idx from the occupancy tables without requeueing
// it (compaction bookkeeping, not a scheduling retry).
func (a *attempt) unscheduleQuiet(idx int) {
	t := a.time[idx]
	row := t % a.ii
	cl := a.clus[idx]
	if a.st.usesCopyPort(idx) {
		a.copyRows[row][cl] = removeOne(a.copyRows[row][cl], idx)
		a.busRows[row] = removeOne(a.busRows[row], idx)
	} else {
		a.fuRows[row][cl] = removeOne(a.fuRows[row][cl], idx)
	}
	a.lastTime[idx] = t
	a.time[idx] = -1
}

// lifetimeDelta returns the change in total register lifetime if idx moved
// from its current cycle to t (positive means worse).
func (a *attempt) lifetimeDelta(idx, t int) int {
	g := a.st.g
	shift := t - a.time[idx]
	delta := 0
	// Results: the lifetime of each consumed def starts later.
	for _, e := range g.Out[idx] {
		if e.Kind == ddg.True && e.From == idx {
			delta -= shift
			break // one def; its start moves once regardless of fanout
		}
	}
	// Operands: if idx holds (or comes to hold) the maximal use term of a
	// register it reads, that register's lifetime end grows.
	for _, in := range g.In[idx] {
		if in.Kind != ddg.True || in.From == idx {
			continue
		}
		myTerm := a.time[idx] + in.Distance*a.ii
		maxTerm := myTerm
		for _, e := range g.Out[in.From] {
			if e.Kind != ddg.True || e.Reg != in.Reg || e.To == idx {
				continue
			}
			if a.time[e.To] < 0 {
				continue
			}
			if v := a.time[e.To] + e.Distance*a.ii; v > maxTerm {
				maxTerm = v
			}
		}
		if newTerm := myTerm + shift; newTerm > maxTerm {
			delta += newTerm - max(maxTerm, myTerm)
		}
	}
	return delta
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// prioHeap orders operation indices by decreasing height, ties to the lower
// index, so scheduling is deterministic.
type prioHeap struct {
	items  []int
	height []int
}

func (h *prioHeap) Len() int { return len(h.items) }
func (h *prioHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.height[a] != h.height[b] {
		return h.height[a] > h.height[b]
	}
	return a < b
}
func (h *prioHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *prioHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *prioHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
