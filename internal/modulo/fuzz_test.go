package modulo

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// FuzzModuloSchedule feeds the iterative modulo scheduler loops drawn from
// arbitrary generator seeds — far outside the curated suite seeds the unit
// tests use — on every paper machine, and holds it to its contract: the
// returned schedule passes the post-hoc validity Check at its returned II,
// the II never beats the dependence-graph RecMII bound, never exceeds the
// serial fallback bound, and scheduling is deterministic.
func FuzzModuloSchedule(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(0x5EC95), uint8(3))
	f.Add(int64(-1), uint8(255))
	cfgs := append([]*machine.Config{machine.Ideal16()}, machine.PaperConfigs()...)
	f.Fuzz(func(t *testing.T, seed int64, cfgIdx uint8) {
		loop := loopgen.Generate(loopgen.Params{N: 1, Seed: seed})[0]
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		g := ddg.Build(loop.Body, cfg, ddg.Options{Carried: true})
		s, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatalf("seed %d on %s: %v", seed, cfg.Name, err)
		}
		if err := Check(s, g, cfg, Options{}); err != nil {
			t.Fatalf("seed %d on %s: %v", seed, cfg.Name, err)
		}
		if s.II < g.RecMII() {
			t.Fatalf("seed %d on %s: II %d below RecMII %d", seed, cfg.Name, s.II, g.RecMII())
		}
		st := &state{g: g, cfg: cfg, opt: Options{}, n: len(g.Ops)}
		if s.II > st.serialII() {
			t.Fatalf("seed %d on %s: II %d beyond serial bound %d", seed, cfg.Name, s.II, st.serialII())
		}
		s2, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s2.II != s.II {
			t.Fatalf("seed %d on %s: nondeterministic II %d vs %d", seed, cfg.Name, s.II, s2.II)
		}
		for i := range s.Time {
			if s.Time[i] != s2.Time[i] || s.Cluster[i] != s2.Cluster[i] {
				t.Fatalf("seed %d on %s: schedules differ at op %d", seed, cfg.Name, i)
			}
		}
	})
}
