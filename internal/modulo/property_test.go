package modulo

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// TestSuiteSchedulesAreValid is the scheduler's main property test: every
// loop of a suite slice, scheduled on every paper machine (monolithic and
// clustered-free-placement), must pass the post-hoc validity Check and
// never beat its graph's RecMII.
func TestSuiteSchedulesAreValid(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 40, Seed: 99})
	cfgs := append([]*machine.Config{machine.Ideal16()}, machine.PaperConfigs()...)
	for _, l := range loops {
		for _, cfg := range cfgs {
			g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
			s, err := Run(context.Background(), g, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			if err := Check(s, g, cfg, Options{}); err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			if s.II < g.RecMII() {
				t.Errorf("%s on %s: II %d below RecMII %d", l.Name, cfg.Name, s.II, g.RecMII())
			}
		}
	}
}

// TestSchedulerDeterministic re-runs scheduling and demands identical
// output: the experiment tables must be reproducible bit for bit.
func TestSchedulerDeterministic(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 10, Seed: 3})
	cfg := machine.Ideal16()
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		a, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.II != b.II {
			t.Fatalf("%s: IIs differ: %d vs %d", l.Name, a.II, b.II)
		}
		for i := range a.Time {
			if a.Time[i] != b.Time[i] || a.Cluster[i] != b.Cluster[i] {
				t.Fatalf("%s: schedules differ at op %d", l.Name, i)
			}
		}
	}
}

// TestMonolithicIINeverWorseThanSerial sanity-checks the II search: the
// iterative scheduler must never return anything beyond the serial bound.
func TestMonolithicIINeverWorseThanSerial(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 25, Seed: 17})
	cfg := machine.Ideal16()
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		st := &state{g: g, cfg: cfg, opt: Options{}, n: len(g.Ops)}
		s, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.II > st.serialII() {
			t.Errorf("%s: II %d beyond serial bound %d", l.Name, s.II, st.serialII())
		}
	}
}
