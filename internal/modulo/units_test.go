package modulo

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func TestHeterogeneousUnitsBoundII(t *testing.T) {
	// 8 loads on one C6x-like cluster: one D unit (plus no Any units)
	// means II >= 8 for memory traffic alone, even though 4-wide issue
	// would allow II 2.
	cfg := machine.C6xLike(machine.Embedded)
	l := ir.NewLoop("mem")
	b := ir.NewLoopBuilder(l)
	var pins []int
	for k := 0; k < 8; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 8, Offset: k})
		pins = append(pins, 0)
	}
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	s, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	if s.II != 8 {
		t.Errorf("II = %d, want 8 (one memory unit per cluster)", s.II)
	}
}

func TestHeterogeneousMixedKernel(t *testing.T) {
	// 2 loads + 1 mul + 2 adds + 1 store per cluster-iteration: demand
	// mem=3, mul=1, alu=2 on units [alu alu mul mem] -> II >= 3 from the
	// D unit.
	cfg := machine.C6xLike(machine.Embedded)
	l := ir.NewLoop("mix")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	m := b.Mul(x, y)
	s1 := b.Add(m, x)
	s2 := b.Add(s1, y)
	b.Store(s2, ir.MemRef{Base: "c", Coeff: 1})
	pins := []int{0, 0, 0, 0, 0, 0}
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	sch, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sch, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	if sch.II != 3 {
		t.Errorf("II = %d, want 3 (three memory ops, one D unit)", sch.II)
	}
}

func TestHeterogeneousSuiteValid(t *testing.T) {
	cfg := machine.C6xLike(machine.Embedded)
	for _, l := range loopgen.Generate(loopgen.Params{N: 20, Seed: 37}) {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		s, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if err := Check(s, g, cfg, Options{}); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}

func TestKindFits(t *testing.T) {
	cfg := machine.C6xLike(machine.Embedded) // per cluster: alu,alu,mul,mem
	fits := func(mem, mul, alu, any int) bool {
		var d [machine.NumKinds]int
		d[machine.MemoryKind] = mem
		d[machine.MultiplyKind] = mul
		d[machine.ALUKind] = alu
		d[machine.AnyKind] = any
		return cfg.KindFits(d)
	}
	if !fits(1, 1, 2, 0) {
		t.Error("full complement must fit")
	}
	if fits(2, 0, 0, 0) {
		t.Error("two memory ops on one D unit fit")
	}
	if fits(0, 2, 0, 0) {
		t.Error("two multiplies on one M unit fit")
	}
	if fits(0, 0, 3, 0) {
		t.Error("three ALU ops on two L/S units fit")
	}
	if !fits(0, 0, 2, 0) {
		t.Error("two ALU ops must fit")
	}
}

func TestOpKind(t *testing.T) {
	cases := []struct {
		op   *ir.Op
		want machine.FUKind
	}{
		{&ir.Op{Code: ir.Load}, machine.MemoryKind},
		{&ir.Op{Code: ir.Store}, machine.MemoryKind},
		{&ir.Op{Code: ir.Mul}, machine.MultiplyKind},
		{&ir.Op{Code: ir.Div}, machine.MultiplyKind},
		{&ir.Op{Code: ir.Add}, machine.ALUKind},
		{&ir.Op{Code: ir.Copy}, machine.ALUKind},
		{&ir.Op{Code: ir.Select}, machine.ALUKind},
	}
	for _, c := range cases {
		if got := machine.OpKind(c.op); got != c.want {
			t.Errorf("OpKind(%s) = %s, want %s", c.op.Code, got, c.want)
		}
	}
}
