// Package modulo implements Rau-style iterative modulo scheduling
// (Rau, MICRO-27 1994), the software pipelining method the paper uses
// (Section 2): a schedule for one loop iteration is chosen so that, when
// repeated every II cycles, no resource or dependence constraint is
// violated.
//
// The scheduler handles both of the paper's machine settings:
//
//   - the ideal monolithic machine (a single multi-ported register bank),
//     used to build the "ideal schedule" that drives RCG construction and
//     serves as the degradation baseline; and
//   - the clustered machines, where each operation is pinned to the cluster
//     owning its registers, embedded-model copies consume functional-unit
//     issue slots on their destination cluster, and copy-unit-model copies
//     consume a dedicated copy port on the destination cluster plus one
//     inter-cluster bus for their issue cycle.
//
// The implementation follows Rau's algorithm: height-based priority
// recomputed per candidate II, an acceptance window of II cycles starting
// at the earliest start implied by scheduled predecessors, forced placement
// with eviction when the window has no free slot, a budget of placements
// per II, and II escalation on failure. A serial fallback schedule
// guarantees termination for any well-formed loop.
package modulo

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// pool is a small typed wrapper over sync.Pool for the package's fallback
// scratch (when no arena is supplied).
type pool[T any] struct{ p sync.Pool }

func newPool[T any](mk func() T) *pool[T] {
	return &pool[T]{p: sync.Pool{New: func() any { return mk() }}}
}

func (p *pool[T]) get() T  { return p.p.Get().(T) }
func (p *pool[T]) put(v T) { p.p.Put(v) }

// AnyCluster lets the scheduler choose the cluster for an operation.
const AnyCluster = -1

// Options tunes the scheduler.
type Options struct {
	// ClusterOf pins each operation (by index) to a cluster; nil or an
	// AnyCluster entry lets the scheduler pick the least-loaded cluster.
	// On a monolithic machine it is ignored.
	ClusterOf []int
	// BudgetRatio multiplies the operation count to produce the placement
	// budget per candidate II (Rau suggests small constants; default 6).
	BudgetRatio int
	// MaxII caps the II search; 0 derives a cap from the serial schedule
	// length. If the search passes the cap the serial fallback is used.
	MaxII int
	// Lifetime enables lifetime-sensitive placement in the spirit of
	// swing modulo scheduling (Llosa et al., PACT'96 — the scheduler
	// Nystrom and Eichenberger used, which "attempts to reduce register
	// requirements", Section 6.3): an operation with already-scheduled
	// consumers is placed as late as its consumers allow, shrinking the
	// def-to-use distance, instead of as early as its producers allow.
	// The II search is unchanged; only value lifetimes (and hence
	// register pressure) differ.
	Lifetime bool
	// Seed optionally consults a cross-compile II-seed table (see seed.go):
	// the search starts from the II a previous structurally identical
	// problem settled on instead of at MinII, and successful searches are
	// recorded back. Nil disables seeding; the schedule produced is
	// identical either way.
	Seed *SeedTable
	// Tracer records a "modulo.run" span per scheduling run, with the
	// II search's attempt/placement/eviction counts; nil disables.
	Tracer *trace.Tracer
	// Scratch optionally supplies the compile's scratch arena so repeated
	// runs reuse the scheduler's working buffers; nil falls back to a
	// shared pool. Returned schedules never alias scratch memory.
	Scratch *scratch.Arena
}

// Schedule is a modulo schedule: operation i issues at absolute cycle
// Time[i] on cluster Cluster[i]; the kernel repeats every II cycles.
type Schedule struct {
	II int
	// Time holds the absolute issue cycle per operation index.
	Time []int
	// Cluster holds the cluster per operation (0 on monolithic machines).
	Cluster []int
	// Length is the single-iteration span: max(Time[i]+latency(i)).
	Length int
}

// Row returns the kernel row (instruction index within the kernel) of op.
func (s *Schedule) Row(op int) int { return s.Time[op] % s.II }

// Stage returns the pipeline stage of op.
func (s *Schedule) Stage(op int) int { return s.Time[op] / s.II }

// Stages returns the number of pipeline stages (kernel copies in flight).
func (s *Schedule) Stages() int {
	if s.II == 0 {
		return 0
	}
	return (s.Length + s.II - 1) / s.II
}

// IPC returns kernel operations issued per cycle: ops / II.
func (s *Schedule) IPC() float64 {
	if s.II == 0 {
		return 0
	}
	return float64(len(s.Time)) / float64(s.II)
}

// Kernel renders the kernel rows with the operations issued in each,
// annotated with stage and cluster, for the examples and cmd tools.
func (s *Schedule) Kernel(ops []*ir.Op) string {
	rows := make([][]int, s.II)
	for i := range ops {
		r := s.Row(i)
		rows[r] = append(rows[r], i)
	}
	var sb strings.Builder
	for r, ids := range rows {
		fmt.Fprintf(&sb, "cycle %2d:", r)
		if len(ids) == 0 {
			sb.WriteString("  (empty)")
		}
		for _, id := range ids {
			fmt.Fprintf(&sb, "  [c%d s%d] %s;", s.Cluster[id], s.Stage(id), ops[id])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Run modulo-schedules the loop dependence graph g on machine cfg.
//
// The II search polls ctx at every candidate-II attempt and periodically
// inside each attempt's placement loop, so a cancelled or expired context
// stops a long search promptly. The returned error then wraps ctx.Err()
// together with the II the search had reached — the "partial progress"
// contract the compile service relies on for request deadlines.
func Run(ctx context.Context, g *ddg.Graph, cfg *machine.Config, opt Options) (*Schedule, error) {
	n := len(g.Ops)
	if n == 0 {
		return &Schedule{II: 1, Time: nil, Cluster: nil}, nil
	}
	if opt.ClusterOf != nil && len(opt.ClusterOf) != n {
		return nil, fmt.Errorf("modulo: ClusterOf has %d entries for %d ops", len(opt.ClusterOf), n)
	}
	ratio := opt.BudgetRatio
	if ratio <= 0 {
		ratio = 6
	}
	sp := opt.Tracer.StartSpan("modulo.run")
	st := &state{g: g, cfg: cfg, opt: opt, n: n}
	sc, arenaOwned := scratch.For(opt.Scratch, scratch.Modulo, func() *runScratch { return new(runScratch) })
	if !arenaOwned {
		sc = runPool.get()
		defer runPool.put(sc)
	}
	st.sc = sc
	serial := st.serialII()
	maxII := opt.MaxII
	if maxII <= 0 {
		maxII = serial
	}
	minII := st.minII()
	done := func(s *Schedule, fellBack bool) *Schedule {
		if sp != nil {
			fb := int64(0)
			if fellBack {
				fb = 1
			}
			sp.Int("ops", int64(n)).Int("minII", int64(minII)).Int("ii", int64(s.II)).
				Int("attempts", int64(st.attempts)).Int("placements", int64(st.placements)).
				Int("evictions", int64(st.evictions)).Int("serialFallback", fb).End()
			tr := opt.Tracer
			tr.Add("modulo.attempts", int64(st.attempts))
			tr.Add("modulo.placements", int64(st.placements))
			tr.Add("modulo.evictions", int64(st.evictions))
			tr.Add("modulo.serial_fallbacks", fb)
		}
		return s
	}
	st.ctx = ctx
	startII := minII
	var sk seedKey
	if opt.Seed != nil {
		sk = st.seedKeyOf(ratio, maxII)
		startII = st.startII(sk, minII, maxII)
	}
	for ii := startII; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			done(&Schedule{II: ii}, false)
			return nil, fmt.Errorf("modulo: II search stopped at II=%d (minII=%d, %d placements): %w",
				ii, minII, st.placements, err)
		}
		st.attempts++
		s, ok, err := st.tryII(ii, ratio*n)
		if err != nil {
			done(&Schedule{II: ii}, false)
			return nil, fmt.Errorf("modulo: II search stopped at II=%d (minII=%d, %d placements): %w",
				ii, minII, st.placements, err)
		}
		if ok {
			opt.Seed.record(sk, s.II)
			return done(s, false), nil
		}
	}
	// The whole [startII, maxII] range failed. When the walk covered the
	// full range from minII, that exhausts this key's search space — a
	// fact the seed key covers exactly (maxII is hashed into it) — so
	// record it as maxII+1 and the next identical run skips the doomed
	// walk and goes straight to the serial fallback (see startII).
	if opt.Seed != nil && startII == minII {
		opt.Seed.record(sk, maxII+1)
	}
	// Guaranteed fallback: the serial schedule at II == sum of latencies.
	return done(st.serialSchedule(serial), true), nil
}

// MinII returns the scheduler's proven lower bound on the initiation
// interval for g on cfg under opt's cluster pinning: the maximum of the
// recurrence-constrained RecMII and the resource-constrained MII
// (per-cluster functional units, typed units, copy ports and busses).
// Every feasible modulo schedule has II >= MinII, which makes it the
// optimality certificate the exact solver (internal/exact) and its
// telemetry lean on: a schedule with II == MinII is optimal, no search
// needed. Only ClusterOf and Scratch are consulted from opt.
func MinII(g *ddg.Graph, cfg *machine.Config, opt Options) int {
	n := len(g.Ops)
	if n == 0 {
		return 1
	}
	st := &state{g: g, cfg: cfg, opt: opt, n: n}
	sc, arenaOwned := scratch.For(opt.Scratch, scratch.Modulo, func() *runScratch { return new(runScratch) })
	if !arenaOwned {
		sc = runPool.get()
		defer runPool.put(sc)
	}
	st.sc = sc
	return st.minII()
}

// state carries the per-run immutable inputs, plus the II search's
// effort tally (how many candidate IIs were attempted, how many operation
// placements were made, how many scheduled operations were evicted by a
// forced placement or a violated dependence) reported via Options.Tracer.
type state struct {
	g   *ddg.Graph
	cfg *machine.Config
	opt Options
	n   int
	sc  *runScratch
	// ctx is polled inside the placement loop so one over-budget II
	// attempt on a large loop cannot outlive the caller's deadline.
	ctx context.Context

	attempts, placements, evictions int
}

func (st *state) wantCluster(i int) int {
	if st.cfg.Monolithic() {
		return 0
	}
	if st.opt.ClusterOf == nil {
		return AnyCluster
	}
	return st.opt.ClusterOf[i]
}

// usesCopyPort reports whether op i is routed through the copy-unit
// resources rather than a functional-unit slot.
func (st *state) usesCopyPort(i int) bool {
	return st.g.Ops[i].Code == ir.Copy &&
		!st.cfg.Monolithic() &&
		st.cfg.Model == machine.CopyUnit
}

// minII returns max(RecMII, resource MII) for the run's cluster pinning.
func (st *state) minII() int {
	rec := st.g.RecMIIScratch(st.opt.Scratch)
	res := st.resMII()
	if rec > res {
		return rec
	}
	return res
}

// resMII lower-bounds II from resource usage: per-cluster functional-unit
// slots (per unit kind on heterogeneous machines), per-cluster copy ports
// and the shared busses (copy-unit model).
func (st *state) resMII() int {
	if st.cfg.Monolithic() || st.opt.ClusterOf == nil {
		res := ddg.ResMII(st.n, st.cfg.Width)
		if st.cfg.Heterogeneous() {
			if v := st.kindMII(nil); v > res {
				res = v
			}
		}
		return res
	}
	per := st.cfg.FUsPerCluster()
	st.sc.fu = scratch.Ints(st.sc.fu, st.cfg.Clusters)
	st.sc.ports = scratch.Ints(st.sc.ports, st.cfg.Clusters)
	fu, ports := st.sc.fu, st.sc.ports
	scratch.FillInts(fu, 0)
	scratch.FillInts(ports, 0)
	totalCopies := 0
	for i := 0; i < st.n; i++ {
		c := st.opt.ClusterOf[i]
		if c < 0 || c >= st.cfg.Clusters {
			c = 0
		}
		if st.usesCopyPort(i) {
			ports[c]++
			totalCopies++
		} else {
			fu[c]++
		}
	}
	res := 1
	for c := 0; c < st.cfg.Clusters; c++ {
		if v := ceilDiv(fu[c], per); v > res {
			res = v
		}
		if st.cfg.CopyPortsPerCluster > 0 {
			if v := ceilDiv(ports[c], st.cfg.CopyPortsPerCluster); v > res {
				res = v
			}
		}
	}
	if st.cfg.Busses > 0 {
		if v := ceilDiv(totalCopies, st.cfg.Busses); v > res {
			res = v
		}
	}
	if st.cfg.Heterogeneous() {
		for c := 0; c < st.cfg.Clusters; c++ {
			cl := c
			if v := st.kindMII(&cl); v > res {
				res = v
			}
		}
	}
	return res
}

// kindMII lower-bounds II from typed-unit capacity: operations of kind k
// can use at most (units_k + units_any) slots per cluster-cycle. cluster
// nil pools the whole machine (free placement).
func (st *state) kindMII(cluster *int) int {
	var demand [machine.NumKinds]int
	for i := 0; i < st.n; i++ {
		if st.usesCopyPort(i) {
			continue
		}
		if cluster != nil {
			c := st.opt.ClusterOf[i]
			if c < 0 || c >= st.cfg.Clusters {
				c = 0
			}
			if c != *cluster {
				continue
			}
		}
		demand[machine.OpKind(st.g.Ops[i])]++
	}
	units := st.cfg.UnitCounts()
	mult := 1
	if cluster == nil {
		mult = st.cfg.Clusters
	}
	res := 1
	for k := machine.FUKind(1); k < machine.NumKinds; k++ {
		cap := (units[k] + units[machine.AnyKind]) * mult
		if cap == 0 {
			continue
		}
		if v := ceilDiv(demand[k], cap); v > res {
			res = v
		}
	}
	return res
}

func ceilDiv(a, b int) int {
	if a == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// serialII returns the guaranteed-schedulable II: the sum of latencies.
func (st *state) serialII() int {
	sum := 0
	for _, op := range st.g.Ops {
		sum += st.cfg.Latency(op)
	}
	if sum < 1 {
		sum = 1
	}
	return sum
}

// serialSchedule places operations one per cycle at latency-prefix-sum
// times; it satisfies every dependence and resource constraint at II ==
// sum(latencies) and anchors the fallback path.
func (st *state) serialSchedule(ii int) *Schedule {
	s := &Schedule{II: ii, Time: make([]int, st.n), Cluster: make([]int, st.n)}
	t := 0
	for i, op := range st.g.Ops {
		s.Time[i] = t
		if c := st.wantCluster(i); c != AnyCluster {
			s.Cluster[i] = c
		}
		t += st.cfg.Latency(op)
		if end := s.Time[i] + st.cfg.Latency(op); end > s.Length {
			s.Length = end
		}
	}
	return s
}

// heights computes the per-operation priority for a candidate II: the
// longest (latency - II*distance)-weighted path to any sink, floored at the
// operation's own latency. With II >= RecMII there is no positive cycle, so
// Bellman-Ford style relaxation converges within n rounds.
func (st *state) heights(ii int) []int {
	st.sc.height = scratch.Ints(st.sc.height, st.n)
	h := st.sc.height
	for i, op := range st.g.Ops {
		h[i] = st.cfg.Latency(op)
	}
	for round := 0; round < st.n; round++ {
		changed := false
		for from := st.n - 1; from >= 0; from-- {
			for _, e := range st.g.Out[from] {
				if v := h[e.To] + e.Latency - ii*e.Distance; v > h[from] {
					h[from] = v
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return h
}
