package modulo

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func expandFixture(t *testing.T) (*ir.Loop, *ddg.Graph, *Schedule, *machine.Config) {
	t.Helper()
	cfg := machine.Ideal16()
	l := ir.NewLoop("exp")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Mul(x, x)
	z := b.Add(y, y)
	b.Store(z, ir.MemRef{Base: "c", Coeff: 1})
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, g, s, cfg
}

func TestExpandCoversEveryInstanceOnce(t *testing.T) {
	l, _, s, _ := expandFixture(t)
	for _, trip := range []int{s.Stages(), s.Stages() + 1, 10, 37} {
		e, err := Expand(s, l.Body, trip)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := e.InstanceCount(), trip*len(l.Body.Ops); got != want {
			t.Errorf("trip %d: %d instances, want %d", trip, got, want)
		}
	}
}

func TestExpandTimingMatchesSchedule(t *testing.T) {
	// Every instance of iteration m must issue exactly at m*II + Time[op]:
	// the defining property of a modulo schedule.
	l, _, s, _ := expandFixture(t)
	e, err := Expand(s, l.Body, 12)
	if err != nil {
		t.Fatal(err)
	}
	iters := e.Iterations()
	if len(iters) != 12 {
		t.Fatalf("expansion executes %d iterations, want 12", len(iters))
	}
	for iter, cycles := range iters {
		if len(cycles) != len(l.Body.Ops) {
			t.Fatalf("iteration %d executes %d of %d ops", iter, len(cycles), len(l.Body.Ops))
		}
		for op, c := range cycles {
			if want := iter*s.II + s.Time[op]; c != want {
				t.Errorf("iteration %d op %d at cycle %d, want %d", iter, op, c, want)
			}
		}
	}
}

func TestExpandTotalCycles(t *testing.T) {
	l, _, s, _ := expandFixture(t)
	e, err := Expand(s, l.Body, 20)
	if err != nil {
		t.Fatal(err)
	}
	if want := 19*s.II + s.Length; e.TotalCycles != want {
		t.Errorf("total cycles = %d, want %d", e.TotalCycles, want)
	}
	if e.KernelReps != 20-e.Stages+1 {
		t.Errorf("kernel reps = %d", e.KernelReps)
	}
}

func TestExpandRejectsShortTrips(t *testing.T) {
	l, _, s, _ := expandFixture(t)
	if s.Stages() < 2 {
		t.Skip("fixture pipeline too shallow")
	}
	if _, err := Expand(s, l.Body, s.Stages()-1); err == nil {
		t.Error("trip below stage count accepted")
	}
}

func TestExpandCodeGrowth(t *testing.T) {
	l, _, s, _ := expandFixture(t)
	e, err := Expand(s, l.Body, 10)
	if err != nil {
		t.Fatal(err)
	}
	growth := e.CodeGrowth(len(l.Body.Ops))
	// Emitted slots: prelude + kernel + postlude = (stages-1)*ops missing
	// tails... at minimum one full kernel (1x) and at most stages x body.
	if growth < 1 || growth > float64(e.Stages)+1 {
		t.Errorf("code growth %f outside [1, stages+1]", growth)
	}
	if !strings.Contains(e.String(), "kernel repeats") {
		t.Error("String() missing repetition count")
	}
}

func TestExpandSuiteProperty(t *testing.T) {
	cfg := machine.Ideal16()
	for _, l := range loopgen.Generate(loopgen.Params{N: 20, Seed: 21}) {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		s, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trip := s.Stages() + 5
		e, err := Expand(s, l.Body, trip)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if e.InstanceCount() != trip*len(l.Body.Ops) {
			t.Errorf("%s: instance count off", l.Name)
		}
		for iter, cycles := range e.Iterations() {
			for op, c := range cycles {
				if c != iter*s.II+s.Time[op] {
					t.Fatalf("%s: iteration %d op %d issues at %d, want %d",
						l.Name, iter, op, c, iter*s.II+s.Time[op])
				}
			}
		}
	}
}
