package modulo

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// TestSeededMatchesUnseeded is the seed table's correctness property: for
// every loop of a suite slice on every paper machine, the schedule from a
// seeded run (warm table, so the search starts at the recorded II) must be
// identical to the unseeded one — the seed may only skip attempts, never
// change the answer.
func TestSeededMatchesUnseeded(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: 17})
	cfgs := append([]*machine.Config{machine.Ideal16()}, machine.PaperConfigs()...)
	table := NewSeedTable(0)
	for _, l := range loops {
		for _, cfg := range cfgs {
			g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
			plain, err := Run(context.Background(), g, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			// Cold pass populates the table; warm pass must start from the
			// recorded II and still reproduce the unseeded schedule exactly.
			cold, err := Run(context.Background(), g, cfg, Options{Seed: table})
			if err != nil {
				t.Fatalf("%s on %s (cold seeded): %v", l.Name, cfg.Name, err)
			}
			warm, err := Run(context.Background(), g, cfg, Options{Seed: table})
			if err != nil {
				t.Fatalf("%s on %s (warm seeded): %v", l.Name, cfg.Name, err)
			}
			for name, s := range map[string]*Schedule{"cold": cold, "warm": warm} {
				if !reflect.DeepEqual(plain, s) {
					t.Fatalf("%s on %s: %s seeded schedule diverges from unseeded:\n plain %+v\n got   %+v",
						l.Name, cfg.Name, name, plain, s)
				}
			}
		}
	}
	st := table.Stats()
	if st.Records == 0 || st.Lookups == 0 {
		t.Fatalf("seed table never engaged: %+v", st)
	}
}

// TestSeedSkipsAttempts pins the point of the table: a warm re-run of a
// problem whose search needed several candidate IIs must attempt exactly
// one.
func TestSeedSkipsAttempts(t *testing.T) {
	// 40 loads on a 16-wide machine: ResMII 3, and the search succeeds at
	// the first attempt, so force distance from minII with a recurrence
	// that RecMII underestimates. Simplest reliable shape: a loop where
	// tryII fails at minII. Build one and verify via the attempt counters.
	loops := loopgen.Generate(loopgen.Params{N: 60, Seed: 5})
	cfg := machine.MustClustered16(4, machine.CopyUnit)
	table := NewSeedTable(0)
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})

		if _, err := Run(context.Background(), g, cfg, Options{Seed: table}); err != nil {
			t.Fatalf("%s cold: %v", l.Name, err)
		}
		warmSt := seedProbe(t, g, cfg, table)
		if warmSt != nil && warmSt.attempts > 1 {
			t.Fatalf("%s: warm seeded search attempted %d IIs", l.Name, warmSt.attempts)
		}
	}
	if st := table.Stats(); st.SavedAttempts == 0 {
		t.Skip("suite slice never escalated past MinII; nothing to measure")
	}
}

// seedProbe replays Run's seeded II search by hand and returns the state
// so tests can read the attempt tally. Problems the table never recorded
// (the cold search fell back to serial) return nil — re-walking the IIs is
// correct there, not a regression.
func seedProbe(t *testing.T, g *ddg.Graph, cfg *machine.Config, table *SeedTable) *state {
	t.Helper()
	st := &state{g: g, cfg: cfg, opt: Options{Seed: table}, n: len(g.Ops)}
	sc := runPool.get()
	defer runPool.put(sc)
	st.sc = sc
	st.ctx = context.Background()
	serial := st.serialII()
	minII := st.minII()
	sk := st.seedKeyOf(6, serial)
	if _, ok := table.lookup(sk); !ok {
		return nil
	}
	start := st.startII(sk, minII, serial)
	for ii := start; ii <= serial; ii++ {
		st.attempts++
		_, ok, err := st.tryII(ii, 6*st.n)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
	}
	return st
}

// TestSeedTableNilSafe: a nil table must behave as "no seeding" for every
// method — the unconditional threading in the pipeline depends on it.
func TestSeedTableNilSafe(t *testing.T) {
	var nt *SeedTable
	if ii, ok := nt.lookup(seedKey{1, 2}); ok || ii != 0 {
		t.Fatal("nil table reported a hit")
	}
	nt.record(seedKey{1, 2}, 5)
	if st := nt.Stats(); st != (SeedStats{}) {
		t.Fatalf("nil table has stats: %+v", st)
	}
	if nt.Len() != 0 {
		t.Fatal("nil table has entries")
	}
}

// TestSeedTableBound: the capacity bound evicts oldest-first per shard and
// the counters account for it.
func TestSeedTableBound(t *testing.T) {
	table := NewSeedTable(seedShards) // one entry per shard
	for i := 0; i < 4; i++ {
		table.record(seedKey{lo: 0, hi: uint64(i)}, i+2) // same shard (lo selects)
	}
	if got := table.Len(); got != 1 {
		t.Fatalf("shard holds %d entries, want 1", got)
	}
	if ii, ok := table.lookup(seedKey{lo: 0, hi: 3}); !ok || ii != 5 {
		t.Fatalf("newest entry missing: ii=%d ok=%v", ii, ok)
	}
	if _, ok := table.lookup(seedKey{lo: 0, hi: 0}); ok {
		t.Fatal("oldest entry survived eviction")
	}
	st := table.Stats()
	if st.Records != 4 || st.Evictions != 3 {
		t.Fatalf("stats %+v, want 4 records / 3 evictions", st)
	}

	// Overwriting a live key must not evict or grow the ring.
	table.record(seedKey{lo: 0, hi: 3}, 9)
	if ii, _ := table.lookup(seedKey{lo: 0, hi: 3}); ii != 9 {
		t.Fatalf("overwrite lost: ii=%d", ii)
	}
	if st := table.Stats(); st.Evictions != 3 {
		t.Fatalf("overwrite evicted: %+v", st)
	}
}

// TestSeedKeyCoversInputs: distinct scheduling problems must get distinct
// keys — each consulted input perturbs the key.
func TestSeedKeyCoversInputs(t *testing.T) {
	l := loopgen.Generate(loopgen.Params{N: 1, Seed: 11})[0]
	base := machine.Ideal16()
	g := ddg.Build(l.Body, base, ddg.Options{Carried: true})
	key := func(cfg *machine.Config, opt Options, ratio, maxII int) seedKey {
		st := &state{g: g, cfg: cfg, opt: opt, n: len(g.Ops)}
		return st.seedKeyOf(ratio, maxII)
	}
	ref := key(base, Options{}, 6, 40)
	seen := map[seedKey]string{ref: "base"}
	add := func(name string, k seedKey) {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}

	wide := *base
	wide.Width = 8
	add("width", key(&wide, Options{}, 6, 40))

	lat := *base
	lat.Lat.Load = 7
	add("latency", key(&lat, Options{}, 6, 40))

	pins := make([]int, len(g.Ops))
	add("pins", key(base, Options{ClusterOf: pins}, 6, 40))
	add("ratio", key(base, Options{}, 7, 40))
	add("maxII", key(base, Options{}, 6, 41))
	add("lifetime", key(base, Options{Lifetime: true}, 6, 40))

	if key(base, Options{}, 6, 40) != ref {
		t.Error("key is not deterministic")
	}
}
