package modulo

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
)

func buildGraph(l *ir.Loop, cfg *machine.Config) *ddg.Graph {
	return ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
}

func accumulator(class ir.Class) *ir.Loop {
	l := ir.NewLoop("acc")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(class)
	ld := b.Load(class, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	return l
}

func TestAccumulatorReachesRecMII(t *testing.T) {
	cfg := machine.Ideal16()
	l := accumulator(ir.Float)
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if s.II != 2 {
		t.Errorf("II = %d, want RecMII 2 (float add latency)", s.II)
	}
}

func TestResourceBoundLoop(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("res")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 40; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 40, Offset: k})
	}
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if s.II != 3 {
		t.Errorf("II = %d, want ResMII 3 (40 ops / 16 wide)", s.II)
	}
	if ipc := s.IPC(); ipc < 13 {
		t.Errorf("IPC = %f, want 40/3", ipc)
	}
}

func TestPinnedTriadLaneAchievesMinII(t *testing.T) {
	// One triad lane pinned to a single 4-wide cluster: II 2 must be
	// achievable (modulo variable expansion assumed by the allocator).
	cfg := machine.MustClustered16(4, machine.Embedded)
	l := ir.NewLoop("lane")
	b := ir.NewLoopBuilder(l)
	s0 := l.NewReg(ir.Float)
	la := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	m := b.Mul(la, s0)
	sum := b.Add(m, lb)
	b.Store(sum, ir.MemRef{Base: "c", Coeff: 1})
	g := buildGraph(l, cfg)
	pins := []int{0, 0, 0, 0, 0}
	sch, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sch, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	if sch.II != 2 {
		t.Fatalf("II = %d, want 2", sch.II)
	}
}

func TestClusterPinningRespected(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	l := ir.NewLoop("pin")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 8; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 8, Offset: k})
	}
	g := buildGraph(l, cfg)
	pins := []int{0, 1, 2, 3, 0, 1, 2, 3}
	s, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	for i, want := range pins {
		if s.Cluster[i] != want {
			t.Errorf("op %d on cluster %d, pinned %d", i, s.Cluster[i], want)
		}
	}
}

func TestCopyUnitPortsLimitII(t *testing.T) {
	// 2-cluster copy-unit machine: 1 copy port per cluster, 2 busses. Six
	// copies into cluster 0 cannot issue in fewer than 6 rows.
	cfg := machine.MustClustered16(2, machine.CopyUnit)
	l := ir.NewLoop("ports")
	b := ir.NewLoopBuilder(l)
	var pins []int
	for k := 0; k < 6; k++ {
		src := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 6, Offset: k})
		pins = append(pins, 1) // loads on cluster 1
		c := b.Copy(src)
		pins = append(pins, 0) // copies into cluster 0
		b.Store(c, ir.MemRef{Base: "c", Coeff: 6, Offset: k})
		pins = append(pins, 0)
	}
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	if s.II < 6 {
		t.Errorf("II = %d; 6 copies through 1 port need II >= 6", s.II)
	}
}

func TestEmbeddedCopiesConsumeSlots(t *testing.T) {
	// Embedded model: copies are ordinary ops. 9 ops pinned to one 2-wide
	// cluster (8-cluster machine) force II >= ceil(9/2) = 5.
	cfg := machine.MustClustered16(8, machine.Embedded)
	l := ir.NewLoop("slots")
	b := ir.NewLoopBuilder(l)
	var pins []int
	for k := 0; k < 9; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 9, Offset: k})
		pins = append(pins, 3)
	}
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{ClusterOf: pins})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(s, g, cfg, Options{ClusterOf: pins}); err != nil {
		t.Fatal(err)
	}
	if s.II != 5 {
		t.Errorf("II = %d, want 5", s.II)
	}
}

func TestIIAtLeastMinII(t *testing.T) {
	cfg := machine.Ideal16()
	l := accumulator(ir.Int)
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II < g.RecMII() {
		t.Errorf("II %d below RecMII %d", s.II, g.RecMII())
	}
}

func TestEmptyLoop(t *testing.T) {
	cfg := machine.Ideal16()
	g := ddg.Build(&ir.Block{}, cfg, ddg.Options{Carried: true})
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 1 {
		t.Errorf("empty loop II = %d", s.II)
	}
}

func TestSerialFallbackIsValid(t *testing.T) {
	// Force the fallback by exhausting the search range: MaxII below
	// MinII means no iterative attempt can succeed.
	cfg := machine.Ideal16()
	l := accumulator(ir.Float)
	g := buildGraph(l, cfg)
	st := &state{g: g, cfg: cfg, opt: Options{}, n: len(g.Ops)}
	s := st.serialSchedule(st.serialII())
	if err := Check(s, g, cfg, Options{}); err != nil {
		t.Fatalf("serial fallback invalid: %v", err)
	}
}

func TestScheduleAccessors(t *testing.T) {
	cfg := machine.Ideal16()
	l := accumulator(ir.Float)
	g := buildGraph(l, cfg)
	s, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Ops {
		if s.Row(i) != s.Time[i]%s.II || s.Stage(i) != s.Time[i]/s.II {
			t.Errorf("row/stage arithmetic wrong for op %d", i)
		}
	}
	if s.Stages() < 1 {
		t.Error("stage count must be positive")
	}
	k := s.Kernel(g.Ops)
	if !strings.Contains(k, "cycle") || !strings.Contains(k, "load") {
		t.Errorf("kernel rendering missing content:\n%s", k)
	}
}

func TestCheckRejectsBadSchedules(t *testing.T) {
	cfg := machine.Ideal16()
	l := accumulator(ir.Float)
	g := buildGraph(l, cfg)
	good, err := Run(context.Background(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Schedule{II: good.II, Time: append([]int(nil), good.Time...), Cluster: append([]int(nil), good.Cluster...)}
	bad.Time[1] = bad.Time[0] // add issues with its operand's load
	if err := Check(bad, g, cfg, Options{}); err == nil {
		t.Error("Check accepted a dependence violation")
	}
	short := &Schedule{II: 1, Time: []int{0}, Cluster: []int{0}}
	if err := Check(short, g, cfg, Options{}); err == nil {
		t.Error("Check accepted a truncated schedule")
	}
	zero := &Schedule{II: 0, Time: make([]int, len(g.Ops)), Cluster: make([]int, len(g.Ops))}
	if err := Check(zero, g, cfg, Options{}); err == nil {
		t.Error("Check accepted II 0")
	}
}

func TestCheckRejectsOversubscribedRow(t *testing.T) {
	cfg := machine.Example2x1() // 1 FU per cluster
	l := ir.NewLoop("over")
	b := ir.NewLoopBuilder(l)
	b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 2, Offset: 0})
	b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 2, Offset: 1})
	g := buildGraph(l, cfg)
	s := &Schedule{II: 1, Time: []int{0, 0}, Cluster: []int{0, 0}, Length: 1}
	if err := Check(s, g, cfg, Options{}); err == nil {
		t.Error("Check accepted two ops on a 1-FU cluster in one row")
	}
}
