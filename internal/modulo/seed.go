package modulo

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/xxh"
)

// This file implements the II-seed table: a small cross-compile memo that
// remembers, per scheduling problem, the initiation interval the search
// settled on, so the next structurally identical compile starts its II
// search there instead of at MinII.
//
// Soundness rests on determinism: Run is a pure function of the inputs the
// seed key covers, so if a previous run with the same key succeeded at II
// == r, every candidate in [MinII, r) failed then and will fail again now.
// Starting at r therefore skips only doomed attempts and produces the
// byte-identical schedule the unseeded search would — the property
// TestSeededMatchesUnseeded pins. A stale or evicted entry merely costs
// the skipped attempts back; a recorded II below MinII is ignored.
//
// Exhaustion is recorded too: when a full walk from MinII fails every
// candidate up to MaxII and falls back to the serial schedule, the table
// stores MaxII+1. MaxII is part of the key, so the fact is exact — the
// next identical run skips the entire doomed walk and goes straight to
// the (deterministic) serial fallback. This is where seeding pays most:
// the loops that exhaust the range are precisely the ones that re-walk
// it on every compile.

// seedLo and seedHi are the two XXH64 seeds that split one canonical
// encoding into a 128-bit key, making cross-problem collisions — the only
// way a seed could mislead the search — negligible.
const (
	seedLo = 0x9e3779b97f4a7c15
	seedHi = 0xc2b2ae3d27d4eb4f
)

// seedKey is the 128-bit identity of one scheduling problem.
type seedKey struct{ lo, hi uint64 }

const seedShards = 16

// defaultSeedCap bounds the table at 64Ki entries (~1.5 MiB): far beyond
// any benchmark suite's distinct-loop count, small enough to sit in a
// long-lived server without accounting.
const defaultSeedCap = 1 << 16

// SeedTable is a bounded, sharded map from scheduling problem to the II
// its search settled on. All methods are safe for concurrent use and on a
// nil receiver (a nil table never hits and records nothing), so callers
// thread it unconditionally.
type SeedTable struct {
	shards [seedShards]seedShard

	lookups   atomic.Int64
	found     atomic.Int64
	hits      atomic.Int64
	records   atomic.Int64
	evictions atomic.Int64
	saved     atomic.Int64
}

// seedShard holds one shard's entries plus a FIFO ring of their keys; when
// the shard is full the oldest insertion is evicted. FIFO (rather than an
// access-ordered policy) keeps record() a single map write — the table is
// consulted on every schedule, so cheap beats clever here.
type seedShard struct {
	mu   sync.Mutex
	m    map[seedKey]int
	ring []seedKey
	next int
	cap  int
}

// NewSeedTable returns a table bounded at capacity entries; capacity <= 0
// selects the default (64Ki).
func NewSeedTable(capacity int) *SeedTable {
	if capacity <= 0 {
		capacity = defaultSeedCap
	}
	per := (capacity + seedShards - 1) / seedShards
	if per < 1 {
		per = 1
	}
	t := &SeedTable{}
	for i := range t.shards {
		t.shards[i].cap = per
	}
	return t
}

// SeedStats is a point-in-time snapshot of the table's effectiveness.
type SeedStats struct {
	// Lookups counts consultations. Found is lookups that located an
	// entry at all — the table's coverage of the workload, which in a
	// warm steady state should approach 1. Hits is the strict subset of
	// Found whose entry was usable — a success strictly above the
	// search's MinII, or a recorded exhaustion of the whole
	// [MinII, MaxII] range. Found-but-not-Hit means the search settled
	// at MinII last time, so the seed confirms the start point without
	// skipping anything: on workloads where most loops schedule at MinII
	// the hit rate is legitimately near zero while coverage is full —
	// read the two together before concluding the table is broken.
	Lookups, Found, Hits int64
	// Records counts successful searches written back; Evictions counts
	// entries displaced by the capacity bound.
	Records, Evictions int64
	// SavedAttempts totals the candidate-II attempts the seeds skipped —
	// the table's whole value, directly comparable to modulo.attempts.
	SavedAttempts int64
}

// Stats snapshots the counters; zero on a nil table.
func (t *SeedTable) Stats() SeedStats {
	if t == nil {
		return SeedStats{}
	}
	return SeedStats{
		Lookups:       t.lookups.Load(),
		Found:         t.found.Load(),
		Hits:          t.hits.Load(),
		Records:       t.records.Load(),
		Evictions:     t.evictions.Load(),
		SavedAttempts: t.saved.Load(),
	}
}

// Len reports the current entry count across all shards.
func (t *SeedTable) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// lookup returns the recorded II for k, if any.
func (t *SeedTable) lookup(k seedKey) (int, bool) {
	if t == nil {
		return 0, false
	}
	t.lookups.Add(1)
	s := &t.shards[k.lo%seedShards]
	s.mu.Lock()
	ii, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		t.found.Add(1)
	}
	return ii, ok
}

// record stores k → ii, evicting the shard's oldest insertion when full.
// Overwriting an existing key (a re-search after an eviction elsewhere
// changed nothing) does not consume ring space.
func (t *SeedTable) record(k seedKey, ii int) {
	if t == nil {
		return
	}
	s := &t.shards[k.lo%seedShards]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[seedKey]int)
	}
	if _, exists := s.m[k]; exists {
		s.m[k] = ii
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		old := s.ring[s.next]
		delete(s.m, old)
		s.ring[s.next] = k
		s.next = (s.next + 1) % len(s.ring)
		t.evictions.Add(1)
	} else {
		s.ring = append(s.ring, k)
	}
	s.m[k] = ii
	s.mu.Unlock()
	t.records.Add(1)
}

// seedBufPool recycles the canonical-encoding buffer across runs; the key
// is two hashes of a transient byte string, so nothing retains it.
var seedBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// seedKeyOf canonically encodes every input Run's outcome depends on —
// the graph's scheduling-relevant shape, the machine's scheduling slice,
// and the resolved search parameters — and hashes it twice. Anything the
// search consults must appear here: a missed field would let two distinct
// problems share a key, and a seed from one could skip a feasible II of
// the other.
func (st *state) seedKeyOf(ratio, maxII int) seedKey {
	bp := seedBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	put := func(v int64) { b = binary.AppendVarint(b, v) }

	put(int64(st.n))
	for _, op := range st.g.Ops {
		put(int64(op.Code))
		put(int64(op.Class))
	}
	for i := 0; i < st.n; i++ {
		out := st.g.Out[i]
		put(int64(len(out)))
		for _, e := range out {
			put(int64(e.To))
			put(int64(e.Kind))
			put(int64(e.Latency))
			put(int64(e.Distance))
		}
	}

	cfg := st.cfg
	put(int64(cfg.Width))
	put(int64(cfg.Clusters))
	put(int64(cfg.Model))
	put(int64(cfg.CopyPortsPerCluster))
	put(int64(cfg.Busses))
	put(int64(len(cfg.Units)))
	for _, u := range cfg.Units {
		put(int64(u))
	}
	lat := cfg.Lat
	for _, v := range [...]int{
		lat.Load, lat.Store,
		lat.IntMul, lat.IntDiv, lat.IntOther,
		lat.FloatMul, lat.FloatDiv, lat.FloatOther,
		lat.CopyInt, lat.CopyFloat,
	} {
		put(int64(v))
	}

	if st.opt.ClusterOf == nil {
		put(0)
	} else {
		put(1)
		for _, c := range st.opt.ClusterOf {
			put(int64(c))
		}
	}
	put(int64(ratio))
	if st.opt.Lifetime {
		put(1)
	} else {
		put(0)
	}
	put(int64(maxII))

	k := seedKey{lo: xxh.Sum64Seed(b, seedLo), hi: xxh.Sum64Seed(b, seedHi)}
	*bp = b
	seedBufPool.Put(bp)
	return k
}

// startII consults the seed table and returns the II the search should
// start from. A recorded success in (minII, maxII] starts the walk there;
// a recorded exhaustion (maxII+1 — every candidate in [minII, maxII]
// failed last time, and maxII is part of the key) returns maxII+1 so Run
// skips the walk entirely and falls straight to the serial schedule. It
// also reports the hit/miss to the tracer and credits skipped attempts.
func (st *state) startII(k seedKey, minII, maxII int) int {
	tr := st.opt.Tracer
	ii, ok := st.opt.Seed.lookup(k)
	if !ok || ii <= minII {
		// A recorded II at minII saves nothing; count it as a miss so the
		// hit rate measures usefulness, not key presence.
		tr.Add("modulo.seed.misses", 1)
		return minII
	}
	tr.Add("modulo.seed.hits", 1)
	st.opt.Seed.hits.Add(1)
	if ii > maxII {
		ii = maxII + 1 // recorded exhaustion: skip the whole doomed walk
	}
	st.opt.Seed.saved.Add(int64(ii - minII))
	return ii
}
