package modulo

import (
	"errors"
	"fmt"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// ErrInvalidSchedule is wrapped by every Check failure.
var ErrInvalidSchedule = errors.New("modulo: invalid schedule")

// Check verifies that s is a legal modulo schedule of g on cfg under the
// cluster pinning of opt: every dependence constraint
// time(to) >= time(from) + latency - II*distance holds, every operation
// sits on its pinned cluster, no kernel row oversubscribes a cluster's
// functional units, and copy-unit copies respect port and bus limits.
// It is the post-hoc oracle used by the test suite's property tests.
func Check(s *Schedule, g *ddg.Graph, cfg *machine.Config, opt Options) error {
	n := len(g.Ops)
	if len(s.Time) != n || len(s.Cluster) != n {
		return fmt.Errorf("%w: schedule covers %d/%d ops", ErrInvalidSchedule, len(s.Time), n)
	}
	if s.II < 1 {
		return fmt.Errorf("%w: II %d < 1", ErrInvalidSchedule, s.II)
	}
	st := &state{g: g, cfg: cfg, opt: opt, n: n}
	for i := 0; i < n; i++ {
		if s.Time[i] < 0 {
			return fmt.Errorf("%w: op %d unscheduled", ErrInvalidSchedule, i)
		}
		if s.Cluster[i] < 0 || s.Cluster[i] >= cfg.Clusters {
			return fmt.Errorf("%w: op %d on cluster %d of %d", ErrInvalidSchedule, i, s.Cluster[i], cfg.Clusters)
		}
		if want := st.wantCluster(i); want != AnyCluster && s.Cluster[i] != want {
			return fmt.Errorf("%w: op %d (%s) on cluster %d, pinned to %d", ErrInvalidSchedule, i, g.Ops[i], s.Cluster[i], want)
		}
	}
	for from := 0; from < n; from++ {
		for _, e := range g.Out[from] {
			if s.Time[e.To] < s.Time[from]+e.Latency-s.II*e.Distance {
				return fmt.Errorf("%w: %s dependence %d->%d violated: t%d=%d, t%d=%d, lat=%d, omega=%d, II=%d",
					ErrInvalidSchedule, e.Kind, from, e.To, from, s.Time[from], e.To, s.Time[e.To], e.Latency, e.Distance, s.II)
			}
		}
	}
	// Resource usage per kernel row.
	fu := make([][]int, s.II)
	ports := make([][]int, s.II)
	bus := make([]int, s.II)
	demand := make([][][machine.NumKinds]int, s.II)
	for r := range fu {
		fu[r] = make([]int, cfg.Clusters)
		ports[r] = make([]int, cfg.Clusters)
		demand[r] = make([][machine.NumKinds]int, cfg.Clusters)
	}
	for i := 0; i < n; i++ {
		r := s.Time[i] % s.II
		if st.usesCopyPort(i) {
			ports[r][s.Cluster[i]]++
			bus[r]++
		} else {
			fu[r][s.Cluster[i]]++
			demand[r][s.Cluster[i]][machine.OpKind(g.Ops[i])]++
		}
	}
	per := cfg.FUsPerCluster()
	for r := 0; r < s.II; r++ {
		for c := 0; c < cfg.Clusters; c++ {
			if fu[r][c] > per {
				return fmt.Errorf("%w: row %d cluster %d issues %d ops on %d FUs", ErrInvalidSchedule, r, c, fu[r][c], per)
			}
			if cfg.Heterogeneous() && !cfg.KindFits(demand[r][c]) {
				return fmt.Errorf("%w: row %d cluster %d unit-kind demand %v exceeds %v",
					ErrInvalidSchedule, r, c, demand[r][c], cfg.UnitCounts())
			}
			if cfg.CopyPortsPerCluster > 0 && ports[r][c] > cfg.CopyPortsPerCluster {
				return fmt.Errorf("%w: row %d cluster %d uses %d of %d copy ports", ErrInvalidSchedule, r, c, ports[r][c], cfg.CopyPortsPerCluster)
			}
		}
		if cfg.Busses > 0 && bus[r] > cfg.Busses {
			return fmt.Errorf("%w: row %d uses %d of %d busses", ErrInvalidSchedule, r, bus[r], cfg.Busses)
		}
	}
	return nil
}
