package modulo

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// lifetimeSum totals def-to-last-use distances across all registers — the
// quantity the lifetime-sensitive mode minimizes (register pressure is
// its average divided by the II).
func lifetimeSum(g *ddg.Graph, s *Schedule) int {
	start := make(map[interface{}]int)
	end := make(map[interface{}]int)
	for i, op := range g.Ops {
		for _, d := range op.Defs {
			if _, ok := start[d]; !ok {
				start[d] = s.Time[i]
			}
		}
	}
	for from := range g.Ops {
		for _, e := range g.Out[from] {
			if e.Kind != ddg.True {
				continue
			}
			if t := s.Time[e.To] + e.Distance*s.II + 1; t > end[e.Reg] {
				end[e.Reg] = t
			}
		}
	}
	sum := 0
	for r, st := range start {
		if e, ok := end[r]; ok && e > st {
			sum += e - st
		}
	}
	return sum
}

// TestLifetimeModeValidAndNoWorseII checks the swing-flavored mode on the
// suite: every schedule stays valid, and the II never regresses versus
// Rau mode (the mode only changes placement within the same II search).
func TestLifetimeModeValidAndNoWorseII(t *testing.T) {
	cfg := machine.Ideal16()
	loops := loopgen.Generate(loopgen.Params{N: 30, Seed: loopgen.DefaultParams().Seed})
	totalRau, totalSwing := 0, 0
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		rau, err := Run(context.Background(), g, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		swing, err := Run(context.Background(), g, cfg, Options{Lifetime: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(swing, g, cfg, Options{Lifetime: true}); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if swing.II > rau.II {
			t.Errorf("%s: lifetime mode II %d vs Rau %d", l.Name, swing.II, rau.II)
		}
		totalRau += lifetimeSum(g, rau)
		totalSwing += lifetimeSum(g, swing)
	}
	if totalSwing > totalRau {
		t.Errorf("lifetime mode lengthened total lifetimes: %d vs %d", totalSwing, totalRau)
	}
	t.Logf("total lifetime: Rau %d, lifetime-sensitive %d (%.1f%% shorter)",
		totalRau, totalSwing, 100*(1-float64(totalSwing)/float64(totalRau)))
}

// TestLifetimeCompactionDeterministic re-runs and compares exactly.
func TestLifetimeCompactionDeterministic(t *testing.T) {
	cfg := machine.Ideal16()
	l := loopgen.Generate(loopgen.Params{N: 8, Seed: 13})[5]
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	a, err := Run(context.Background(), g, cfg, Options{Lifetime: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, cfg, Options{Lifetime: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Time {
		if a.Time[i] != b.Time[i] {
			t.Fatalf("lifetime mode nondeterministic at op %d", i)
		}
	}
}

// TestLifetimeModeClustered exercises the mode under cluster pinning.
func TestLifetimeModeClustered(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	loops := loopgen.Generate(loopgen.Params{N: 10, Seed: 23})
	for _, l := range loops {
		g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
		pins := make([]int, len(g.Ops))
		for i := range pins {
			pins[i] = i % 4
		}
		s, err := Run(context.Background(), g, cfg, Options{Lifetime: true, ClusterOf: pins})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(s, g, cfg, Options{ClusterOf: pins}); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}
