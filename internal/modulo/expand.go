package modulo

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// This file generates the full software-pipelined code shape from a modulo
// schedule: "after a schedule has been found, code to set up the software
// pipeline (prelude) and drain the pipeline (postlude) are added"
// (Section 2). The expansion is what a code generator would emit for a
// machine without predicated kernel-only execution: (Stages-1) partial
// kernel copies ramping up, a steady-state kernel repeated once per
// remaining iteration, and (Stages-1) partial copies draining.

// Instance is one operation instance inside expanded pipeline code: the
// operation (by index into the scheduled block) executing on behalf of a
// specific loop iteration.
type Instance struct {
	// Op indexes the scheduled block's operations.
	Op int
	// Iter is the loop iteration the instance belongs to (0-based).
	Iter int
}

// Expansion is the flattened software pipeline for a concrete trip count.
type Expansion struct {
	// II and Stages echo the schedule.
	II, Stages int
	// Trip is the concrete iteration count expanded for.
	Trip int
	// Prelude holds (Stages-1)*II cycles of ramp-up, one slice per cycle.
	Prelude [][]Instance
	// Kernel holds the II steady-state cycles. Each instance's Iter is
	// relative: the r-th kernel repetition executes instance {Op, Iter+r}.
	Kernel [][]Instance
	// KernelReps is how many times the kernel row block repeats
	// (Trip - Stages + 1).
	KernelReps int
	// Postlude holds the drain cycles after the last kernel repetition.
	Postlude [][]Instance
	// TotalCycles is the whole pipelined execution time:
	// (Trip-1)*II + schedule length.
	TotalCycles int
}

// Expand flattens schedule s of the given block for trip iterations.
// trip must be at least the stage count (shorter loops would not fill the
// pipeline; real compilers emit the unpipelined loop for those).
func Expand(s *Schedule, block *ir.Block, trip int) (*Expansion, error) {
	if len(s.Time) != len(block.Ops) {
		return nil, fmt.Errorf("modulo: schedule covers %d ops, block has %d", len(s.Time), len(block.Ops))
	}
	stages := s.Stages()
	if stages == 0 {
		stages = 1
	}
	if trip < stages {
		return nil, fmt.Errorf("modulo: trip count %d below stage count %d; pipeline never fills", trip, stages)
	}
	e := &Expansion{
		II:         s.II,
		Stages:     stages,
		Trip:       trip,
		KernelReps: trip - stages + 1,
	}
	ramp := (stages - 1) * s.II

	// Prelude: cycles [0, ramp). Instance (op, iter) issues at absolute
	// cycle iter*II + Time[op].
	e.Prelude = make([][]Instance, ramp)
	for op := range block.Ops {
		for iter := 0; iter < stages-1; iter++ {
			t := iter*s.II + s.Time[op]
			if t < ramp {
				e.Prelude[t] = append(e.Prelude[t], Instance{Op: op, Iter: iter})
			}
		}
	}

	// Kernel: the steady-state window [ramp, ramp+II). The first
	// repetition executes instance (op, stages-1-stage(op)) in row
	// Time[op] mod II; later repetitions shift Iter by the repetition
	// index.
	e.Kernel = make([][]Instance, s.II)
	for op := range block.Ops {
		row := s.Row(op)
		e.Kernel[row] = append(e.Kernel[row], Instance{Op: op, Iter: stages - 1 - s.Stage(op)})
	}

	// Postlude: everything issuing at or after cycle trip*II — the
	// instances of the final stages-1 iterations that the kernel's last
	// repetition has not already issued.
	drainStart := trip * s.II
	drainLen := 0
	for op := range block.Ops {
		for iter := trip - stages + 1; iter < trip; iter++ {
			t := iter*s.II + s.Time[op]
			if rel := t - drainStart; rel >= 0 && rel+1 > drainLen {
				drainLen = rel + 1
			}
		}
	}
	e.Postlude = make([][]Instance, drainLen)
	for op := range block.Ops {
		for iter := trip - stages + 1; iter < trip; iter++ {
			t := iter*s.II + s.Time[op]
			if rel := t - drainStart; rel >= 0 {
				e.Postlude[rel] = append(e.Postlude[rel], Instance{Op: op, Iter: iter})
			}
		}
	}
	e.TotalCycles = (trip-1)*s.II + s.Length
	return e, nil
}

// InstanceCount returns the total operation instances across prelude,
// kernel repetitions and postlude. For a correct expansion it equals
// Trip * ops.
func (e *Expansion) InstanceCount() int {
	n := 0
	for _, row := range e.Prelude {
		n += len(row)
	}
	for _, row := range e.Kernel {
		n += len(row) * e.KernelReps
	}
	for _, row := range e.Postlude {
		n += len(row)
	}
	return n
}

// CodeGrowth returns the static code expansion factor of pipelining: the
// number of emitted operation slots (prelude + one kernel + postlude)
// divided by the original loop body size.
func (e *Expansion) CodeGrowth(bodyOps int) float64 {
	emitted := 0
	for _, row := range e.Prelude {
		emitted += len(row)
	}
	for _, row := range e.Kernel {
		emitted += len(row)
	}
	for _, row := range e.Postlude {
		emitted += len(row)
	}
	if bodyOps == 0 {
		return 0
	}
	return float64(emitted) / float64(bodyOps)
}

// Iterations reconstructs, per loop iteration, the set of issue cycles of
// its operation instances — the oracle the tests use to prove that the
// expansion executes every iteration exactly once with the schedule's
// relative timing.
func (e *Expansion) Iterations() map[int]map[int]int {
	out := make(map[int]map[int]int)
	record := func(inst Instance, cycle int) {
		m := out[inst.Iter]
		if m == nil {
			m = make(map[int]int)
			out[inst.Iter] = m
		}
		m[inst.Op] = cycle
	}
	for c, row := range e.Prelude {
		for _, inst := range row {
			record(inst, c)
		}
	}
	ramp := len(e.Prelude)
	for rep := 0; rep < e.KernelReps; rep++ {
		for r, row := range e.Kernel {
			for _, inst := range row {
				record(Instance{Op: inst.Op, Iter: inst.Iter + rep}, ramp+rep*e.II+r)
			}
		}
	}
	drainStart := e.Trip * e.II
	for c, row := range e.Postlude {
		for _, inst := range row {
			record(inst, drainStart+c)
		}
	}
	return out
}

// String renders the pipeline shape compactly.
func (e *Expansion) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "software pipeline: II=%d stages=%d trip=%d total=%d cycles\n",
		e.II, e.Stages, e.Trip, e.TotalCycles)
	dump := func(name string, rows [][]Instance, base int) {
		for c, row := range rows {
			if len(row) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%s %3d:", name, base+c)
			for _, inst := range row {
				fmt.Fprintf(&sb, " op%d@i%d", inst.Op, inst.Iter)
			}
			sb.WriteByte('\n')
		}
	}
	dump("prelude ", e.Prelude, 0)
	dump("kernel  ", e.Kernel, 0)
	fmt.Fprintf(&sb, "(kernel repeats %d times)\n", e.KernelReps)
	dump("postlude", e.Postlude, 0)
	return sb.String()
}
