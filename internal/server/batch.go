package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// This file implements POST /v1/compile/batch: many loops through one
// request. The batch body is decoded in a single pass, then every item
// becomes an independent compile on the shared worker pool — batch items
// enter the queue with blocking backpressure (pool.submitWait) instead
// of the single endpoint's 429 shedding, so a large batch trickles
// through at pool speed without starving interactive requests of their
// fast-fail behavior. Each item runs under its own deadline and fails
// item-level: one malformed or timed-out loop yields one BatchItem with
// an error, never a failed batch.
//
// Three response modes share the handler:
//
//   - buffered JSON (default): one BatchResponse, items in request order;
//   - NDJSON streaming (?stream=1 or Accept: application/x-ndjson): one
//     BatchItem JSON line per loop in completion order, flushed as each
//     compile finishes, so a client can pipeline its own consumption;
//   - binary (Content-Type/Accept: application/x-swp-bin): one batch
//     response frame whose items stream in completion order — the frame
//     layout is identical buffered or streamed, so the client decodes it
//     either way (wire.DecodeResponse reassembles request order).

const (
	// MaxBatchItems caps the loops in one batch request.
	MaxBatchItems = 1024
	// maxBatchBody bounds the batch request body; at ~1KiB per typical
	// loop this comfortably fits a full MaxBatchItems batch.
	maxBatchBody = 8 << 20
)

// ndjsonContentType is the streaming response MIME type; requesting it
// via Accept is equivalent to ?stream=1.
const ndjsonContentType = wire.ContentTypeNDJSON

func (s *Server) batchHandler(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	reqF, respF, extraType, ok := s.negotiate(w, r, ndjsonContentType)
	if !ok {
		return
	}
	var req BatchRequest
	if reqF == wire.FormatBinary {
		data, release, err := readBody(r, maxBatchBody)
		if err != nil {
			writeResponse(w, http.StatusBadRequest, &ErrorResponse{Error: "reading request: " + err.Error()}, respF)
			return
		}
		err = wire.DecodeBatchRequest(data, &req)
		release()
		if err != nil {
			writeResponse(w, http.StatusBadRequest, &ErrorResponse{Error: "decoding request: " + err.Error()}, respF)
			return
		}
	} else if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody)).Decode(&req); err != nil {
		writeResponse(w, http.StatusBadRequest, &ErrorResponse{Error: "decoding request: " + err.Error()}, respF)
		return
	}
	if len(req.Items) == 0 {
		writeResponse(w, http.StatusBadRequest, &ErrorResponse{Error: "batch has no items"}, respF)
		return
	}
	if len(req.Items) > MaxBatchItems {
		writeResponse(w, http.StatusBadRequest, &ErrorResponse{
			Error: fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Items), MaxBatchItems),
		}, respF)
		return
	}
	stream := r.URL.Query().Get("stream") == "1" ||
		extraType == ndjsonContentType ||
		strings.Contains(r.Header.Get("Accept"), ndjsonContentType)

	// Fold the shared defaults into every item up front: the cluster
	// router fingerprints the folded form, so a defaulted and an explicit
	// spelling of the same compile route to the same replica.
	for i := range req.Items {
		req.Apply(&req.Items[i], fmt.Sprintf("loop%d", i))
	}

	// Fan the items out. Local goroutines only wait (parse + queue +
	// block on the worker); the CPU-bound compiles themselves stay
	// bounded by the pool, so a 1024-item batch holds 1024 cheap waiters
	// and at most `workers` running compiles. In cluster mode the batch
	// is first split by ring owner: each remote group streams through
	// its owner concurrently (one sub-request per replica), items owned
	// by this process run locally, and everything merges back through
	// one channel — request-ordered below for the buffered mode,
	// completion-ordered for the streaming modes.
	results := make(chan BatchItem, len(req.Items))
	local := func(idx int, item CompileRequest) {
		go func() {
			code, body := s.compileOne(r.Context(), &item, s.pool.submitWait)
			bi := BatchItem{Index: idx, Code: code}
			if resp, ok := body.(*CompileResponse); ok {
				bi.Result = resp
			} else if er, ok := body.(*ErrorResponse); ok {
				bi.Error = er
			}
			results <- bi
		}()
	}
	if s.routed(r) {
		rt := s.cfg.Cluster
		for _, g := range rt.SplitBatch(req.Items) {
			if g.Peer == rt.Self() {
				for i, idx := range g.Indices {
					local(idx, g.Items[i])
				}
				continue
			}
			go func(g cluster.BatchGroup) {
				rt.CompileBatch(r.Context(), g, func(bi wire.BatchItem) { results <- bi })
			}(g)
		}
	} else {
		for i := range req.Items {
			local(i, req.Items[i])
		}
	}

	errs := 0
	fl, _ := w.(http.Flusher)
	switch {
	case respF == wire.FormatBinary:
		// One batch response frame, items streamed in completion order.
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		bp := wire.GetBuffer()
		buf := wire.AppendBatchResponseHeader(*bp, len(req.Items))
		_, _ = w.Write(buf)
		for range req.Items {
			bi := <-results
			if bi.Error != nil {
				errs++
			}
			buf = wire.AppendBatchResponseItem(buf[:0], &bi)
			_, _ = w.Write(buf)
			if fl != nil {
				fl.Flush()
			}
		}
		*bp = buf
		wire.PutBuffer(bp)
	case stream:
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for range req.Items {
			bi := <-results
			if bi.Error != nil {
				errs++
			}
			_ = enc.Encode(&bi) // Encoder terminates each value with \n
			if fl != nil {
				fl.Flush()
			}
		}
	default:
		items := make([]BatchItem, len(req.Items))
		for range req.Items {
			bi := <-results
			items[bi.Index] = bi
			if bi.Error != nil {
				errs++
			}
		}
		writeJSON(w, http.StatusOK, &BatchResponse{Items: items, Errors: errs})
	}

	s.metrics.observeBatch(len(req.Items), time.Since(started))
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("batch items=%d errors=%d wire=%s stream=%v dur=%s",
			len(req.Items), errs, respF, stream, time.Since(started).Round(time.Microsecond))
	}
}
