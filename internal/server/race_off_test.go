//go:build !race

package server

const raceDelayFactor = 1
