package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/scratch"
)

// ErrQueueFull is returned by submit when the queue is at capacity; the
// HTTP layer maps it to 429 so overload sheds instead of piling up.
var ErrQueueFull = errors.New("server: compile queue full")

// task is one queued compilation. run executes under the request context;
// the worker closes done afterwards. A task whose context dies while
// still queued is skipped (ran stays false) — the waiting handler sees
// the context error, and the worker moves straight to the next task.
type task struct {
	ctx  context.Context
	run  func(context.Context, *scratch.Arena)
	done chan struct{}
	ran  bool
}

// pool is a fixed set of worker goroutines over a bounded queue. Both
// bounds are the service's control surface: workers caps concurrent
// CPU-bound compiles at the core count, the queue absorbs bursts, and a
// full queue is reported to the caller instead of growing without bound.
type pool struct {
	tasks    chan *task
	wg       sync.WaitGroup
	inFlight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64

	mu     sync.RWMutex // serializes submit against close
	closed bool
}

// newPool starts workers goroutines (<=0 means GOMAXPROCS) behind a queue
// of depth queueDepth (<=0 means 2x workers).
func newPool(workers, queueDepth int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = 2 * workers
	}
	p := &pool{tasks: make(chan *task, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	// One scratch arena per worker: compiles on this goroutine run
	// strictly one at a time, so they can share stage buffers for the
	// life of the pool.
	ar := scratch.Get()
	defer ar.Release()
	for t := range p.tasks {
		p.queued.Add(-1)
		if t.ctx.Err() == nil {
			p.inFlight.Add(1)
			t.ran = true
			t.run(t.ctx, ar)
			p.inFlight.Add(-1)
		}
		close(t.done)
	}
}

// submit enqueues t without blocking; a full queue or a closed pool is an
// immediate ErrQueueFull.
func (p *pool) submit(t *task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrQueueFull
	}
	select {
	case p.tasks <- t:
		p.queued.Add(1)
		return nil
	default:
		p.rejected.Add(1)
		return ErrQueueFull
	}
}

// submitWait enqueues t, blocking until queue space frees up or the
// task's context dies. Batch items use it instead of submit so a large
// batch trickles through the bounded queue with backpressure rather than
// shedding itself with 429s; single requests keep the non-blocking
// submit so interactive latency stays flat under load. A closed pool is
// still an immediate ErrQueueFull.
func (p *pool) submitWait(t *task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrQueueFull
	}
	select {
	case p.tasks <- t:
		p.queued.Add(1)
		return nil
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}

// close stops intake and waits for queued and running tasks to finish.
// http.Server.Shutdown has already stopped new connections by the time
// this runs, so the drain is bounded by the queue depth.
func (p *pool) close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
